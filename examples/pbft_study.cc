// Studying system behaviour with distributed triggers (§7.3).
//
// Uses LFI not to find bugs but to characterize a distributed system: how
// does PBFT's performance respond to degraded network conditions, and what
// does a targeted DoS do to it? Both questions are answered by swapping the
// DistributedController policy -- the application binaries never change.

#include <cstdio>
#include <memory>
#include <vector>

#include "apps/pbft/pbft.h"
#include "core/distributed.h"
#include "core/runtime.h"
#include "core/scenario.h"
#include "core/stock_triggers.h"

namespace {

double MeasureThroughput(lfi::DistributedController* controller, uint64_t seed) {
  lfi::VirtualFs fs;
  lfi::VirtualNet net(seed);
  lfi::PbftConfig config;
  config.debug_build = true;
  lfi::PbftCluster cluster(&fs, &net, config);
  if (!cluster.Start()) {
    return 0;
  }
  auto scenario = *lfi::Scenario::Parse(R"(
<scenario>
  <trigger id="dist" class="DistributedTrigger"/>
  <function name="sendto" return="-1" errno="EIO"><reftrigger ref="dist"/></function>
  <function name="recvfrom" return="-1" errno="EIO"><reftrigger ref="dist"/></function>
</scenario>)");
  std::vector<std::unique_ptr<lfi::Runtime>> runtimes;
  for (int i = 0; i < cluster.n(); ++i) {
    if (controller != nullptr) {
      cluster.replica(i).libc().SetService(lfi::DistributedController::kServiceName,
                                           controller);
    }
    runtimes.push_back(std::make_unique<lfi::Runtime>(scenario));
    cluster.replica(i).libc().set_interposer(runtimes.back().get());
  }
  const int kTicks = 3000;
  cluster.RunWorkload(1000000, kTicks);
  return 1000.0 * cluster.client().completed() / kTicks;
}

}  // namespace

int main() {
  lfi::EnsureStockTriggersRegistered();
  std::printf("=== Studying PBFT with distributed triggers ===\n\n");

  double baseline = MeasureThroughput(nullptr, 1);
  std::printf("baseline (LFI attached, no faults):   %7.1f reqs/1k ticks\n", baseline);

  for (double p : {0.05, 0.2, 0.5}) {
    lfi::RandomLossController loss(p, 42);
    double tput = MeasureThroughput(&loss, 1);
    std::printf("degraded network (p=%.2f):            %7.1f reqs/1k ticks (%.2fx slowdown)\n",
                p, tput, tput > 0 ? baseline / tput : 0.0);
  }

  lfi::BlackoutController blackout("replica3");
  double tput = MeasureThroughput(&blackout, 1);
  std::printf("DoS: replica3 blacked out:            %7.1f reqs/1k ticks (f=1 tolerated)\n",
              tput);

  lfi::RotatingBlackoutController rotation({"replica0", "replica1", "replica2", "replica3"},
                                           500);
  double rot = MeasureThroughput(&rotation, 1);
  std::printf("DoS: rotating 500-fault bursts:       %7.1f reqs/1k ticks (%.2fx slowdown)\n",
              rot, rot > 0 ? baseline / rot : 0.0);

  std::printf("\nThe rotating attack targets the view-change protocol and hurts far more\n"
              "than losing a whole replica -- the paper's §7.3 observation.\n");
  return 0;
}
