// Quickstart: inject your first fault in five minutes.
//
// Sets up a virtual process, writes the smallest useful injection scenario
// (fail the 3rd read() with EINTR), installs the LFI runtime, and shows the
// injection log. Build and run:  ./build/examples/quickstart

#include <cstdio>

#include "core/runtime.h"
#include "core/scenario.h"
#include "core/stock_triggers.h"
#include "util/errno_codes.h"
#include "vlib/virtual_libc.h"

int main() {
  lfi::EnsureStockTriggersRegistered();

  // A process and a file to read.
  lfi::VirtualFs fs;
  lfi::VirtualNet net;
  lfi::VirtualLibc libc(&fs, &net, "quickstart");
  fs.MkDir("/data");
  fs.WriteFile("/data/input", "hello fault injection!");

  // The scenario: the 3rd call to read() fails with -1/EINTR.
  const char* kScenario = R"(
    <scenario>
      <trigger id="third" class="CallCountTrigger">
        <args><count>3</count></args>
      </trigger>
      <function name="read" argc="3" return="-1" errno="EINTR">
        <reftrigger ref="third"/>
      </function>
    </scenario>)";
  std::string error;
  auto scenario = lfi::Scenario::Parse(kScenario, &error);
  if (!scenario) {
    std::fprintf(stderr, "scenario error: %s\n", error.c_str());
    return 1;
  }

  // Install the runtime -- the LD_PRELOAD moment.
  lfi::Runtime runtime(*scenario);
  libc.set_interposer(&runtime);

  // The "application": read the file 2 bytes at a time, retrying on EINTR
  // like well-behaved code should.
  int fd = libc.Open("/data/input", lfi::kORdOnly);
  std::string content;
  int retries = 0;
  while (true) {
    char buf[2];
    long n = libc.Read(fd, buf, sizeof buf);
    if (n < 0) {
      if (libc.verrno() == lfi::kEINTR) {
        ++retries;
        continue;  // recovery code LFI just exercised
      }
      std::fprintf(stderr, "read failed: %s\n", lfi::ErrnoName(libc.verrno()).c_str());
      return 1;
    }
    if (n == 0) {
      break;
    }
    content.append(buf, static_cast<size_t>(n));
  }
  libc.Close(fd);
  libc.set_interposer(nullptr);

  std::printf("read back: \"%s\" (with %d EINTR retr%s)\n", content.c_str(), retries,
              retries == 1 ? "y" : "ies");
  std::printf("\nLFI injection log:\n%s", runtime.log().ToString().c_str());
  std::printf("\nreplay scenario for injection #1:\n%s",
              runtime.log().ReplayScenario(0).ToXml().c_str());
  return content == "hello fault injection!" && retries == 1 ? 0 : 1;
}
