// Writing a custom trigger (§3.1) and composing stock triggers (§4.2).
//
// Reimplements the paper's running example both ways:
//   1. a monolithic ReadPipe1K4KwithMutex trigger written from scratch with
//      DECLARE_TRIGGER, tracking mutex state and probing the fd with fstat;
//   2. the equivalent composition of the parametrized ReadPipe trigger and
//      the reusable WithMutex trigger, glued together in scenario XML.
// Both scenarios inject in exactly the same situations.

#include <cstdio>

#include "core/custom_triggers.h"
#include "core/runtime.h"
#include "core/scenario.h"
#include "core/stock_triggers.h"
#include "core/trigger.h"
#include "util/errno_codes.h"
#include "vlib/virtual_libc.h"

namespace {

// A from-scratch custom trigger, exactly as a tool user would write one.
// (The library also ships this example as lfi::ReadPipe1K4KwithMutex.)
DECLARE_TRIGGER(MyReadPipeTrigger) {
 public:
  bool Eval(lfi::VirtualLibc* libc, const std::string& lib_func_name,
            const lfi::ArgSpan& args) override {
    if (lib_func_name == "pthread_mutex_lock") {
      ++lock_count_;
    } else if (lib_func_name == "pthread_mutex_unlock") {
      --lock_count_;
    } else if (lib_func_name == "read" && lock_count_ > 0 && args.size() >= 3) {
      lfi::VStat st;
      if (libc->Fstat(static_cast<int>(args[0]), &st) == 0) {
        return st.is_fifo && args[2] >= 1024 && args[2] <= 4096;
      }
    }
    return false;
  }

 private:
  int lock_count_ = 0;
};
LFI_REGISTER_TRIGGER(MyReadPipeTrigger);

constexpr const char* kMonolithic = R"(
<scenario>
  <trigger id="t" class="MyReadPipeTrigger"/>
  <function name="read" argc="3" return="-1" errno="EINVAL"><reftrigger ref="t"/></function>
  <function name="pthread_mutex_lock" return="unused" errno="unused"><reftrigger ref="t"/></function>
  <function name="pthread_mutex_unlock" return="unused" errno="unused"><reftrigger ref="t"/></function>
</scenario>)";

// The same behaviour by composition (§4.2), no new code required.
constexpr const char* kComposed = R"(
<scenario>
  <trigger id="readTrig2" class="ReadPipe">
    <args>
      <low>1024</low>
      <high>4096</high>
    </args>
  </trigger>
  <trigger id="mutexTrig" class="WithMutex"/>
  <function name="read" argc="3" return="-1" errno="EINVAL">
    <reftrigger ref="readTrig2"/>
    <reftrigger ref="mutexTrig"/>
  </function>
  <function name="pthread_mutex_lock" return="unused" errno="unused">
    <reftrigger ref="mutexTrig"/>
  </function>
  <function name="pthread_mutex_unlock" return="unused" errno="unused">
    <reftrigger ref="mutexTrig"/>
  </function>
</scenario>)";

// Exercises reads in four situations; returns a signature string of which
// ones failed.
std::string Probe(lfi::VirtualLibc& libc) {
  std::string signature;
  int pipefd[2];
  libc.Pipe(pipefd);
  std::string payload(2048, 'x');
  char buf[8192];
  lfi::VMutex mutex{"m", 0};

  auto attempt = [&](bool hold_mutex, unsigned long size) {
    libc.Write(pipefd[1], payload.data(), payload.size());
    libc.Lseek(pipefd[0], 0, lfi::kSeekSet);
    if (hold_mutex) {
      libc.MutexLock(&mutex);
    }
    long n = libc.Read(pipefd[0], buf, size);
    if (hold_mutex) {
      libc.MutexUnlock(&mutex);
    }
    signature += n < 0 ? 'F' : '.';
  };

  attempt(false, 2048);  // pipe, in range, no mutex      -> pass
  attempt(true, 2048);   // pipe, in range, mutex held    -> FAIL
  attempt(true, 8192);   // pipe, out of range, mutex held -> pass
  // Regular file, in range, mutex held -> pass.
  libc.fs()->WriteFile("/plain", payload);
  int fd = libc.Open("/plain", lfi::kORdOnly);
  libc.MutexLock(&mutex);
  long n = libc.Read(fd, buf, 2048);
  libc.MutexUnlock(&mutex);
  signature += n < 0 ? 'F' : '.';
  libc.Close(fd);
  return signature;
}

}  // namespace

int main() {
  lfi::EnsureStockTriggersRegistered();
  lfi::EnsureCustomTriggersRegistered();  // pulls in ReadPipe/WithMutex
  std::string signatures[2];
  const char* names[2] = {"monolithic custom trigger", "composed stock triggers"};
  const char* xmls[2] = {kMonolithic, kComposed};

  for (int i = 0; i < 2; ++i) {
    lfi::VirtualFs fs;
    lfi::VirtualNet net;
    lfi::VirtualLibc libc(&fs, &net, "demo");
    auto scenario = lfi::Scenario::Parse(xmls[i]);
    lfi::Runtime runtime(*scenario);
    libc.set_interposer(&runtime);
    signatures[i] = Probe(libc);
    libc.set_interposer(nullptr);
    std::printf("%-28s -> %s   (. = passed, F = fault injected)\n", names[i],
                signatures[i].c_str());
  }
  bool equivalent = signatures[0] == signatures[1] && signatures[0] == ".F..";
  std::printf("\nBoth formulations inject in exactly the same situations: %s\n",
              equivalent ? "yes" : "NO");
  return equivalent ? 0 : 1;
}
