// The fully automatic pipeline (§2, §5): profile a library binary, analyze an
// application binary for unchecked call sites, generate injection scenarios,
// run them against the application's workload, and diagnose the crash from
// the injection log -- no source code of the target needed at any step.
//
// The target is mini-Git; the pipeline rediscovers its readdir-after-failed-
// opendir crash (Table 1).

#include <cstdio>

#include "analysis/callsite_analyzer.h"
#include "apps/git/git.h"
#include "core/controller.h"
#include "core/scenario_gen.h"
#include "util/errno_codes.h"
#include "core/stock_triggers.h"
#include "profiler/profiler.h"
#include "profiler/stub_gen.h"
#include "vlib/library_profiles.h"

int main() {
  lfi::EnsureStockTriggersRegistered();

  // Step 1: profile libc -- from its binary.
  lfi::Image libc_binary = lfi::GenerateLibraryImage(lfi::LibcProfile());
  lfi::LibraryProfiler profiler;
  lfi::FaultProfile profile = profiler.Profile(libc_binary);
  std::printf("step 1: profiled %zu functions from the %s binary\n",
              profile.functions().size(), libc_binary.module_name().c_str());
  const lfi::FunctionProfile* opendir_profile = profile.Find("opendir");
  std::printf("        e.g. opendir() fails with retval=0 and errno in {");
  for (size_t i = 0; i < opendir_profile->errors[0].errnos.size(); ++i) {
    std::printf("%s%s", i ? ", " : "",
                lfi::ErrnoName(opendir_profile->errors[0].errnos[i]).c_str());
  }
  std::printf("}\n\n");

  // Step 2: analyze the application binary.
  const lfi::AppBinary& app = lfi::GitBinary();
  lfi::CallSiteAnalyzer analyzer;
  size_t full = 0;
  size_t partial = 0;
  size_t unchecked = 0;
  std::vector<lfi::CallSiteReport> vulnerable;
  for (const auto& [name, fn] : profile.functions()) {
    for (auto& report : analyzer.Analyze(app.image(), name, fn.ErrorCodes())) {
      switch (report.check_class) {
        case lfi::CheckClass::kFull:
          ++full;
          break;
        case lfi::CheckClass::kPartial:
          ++partial;
          break;
        case lfi::CheckClass::kNone:
          ++unchecked;
          vulnerable.push_back(std::move(report));
          break;
      }
    }
  }
  std::printf("step 2: analyzed %s (%zu instructions): C_yes=%zu  C_part=%zu  C_not=%zu\n\n",
              app.image().module_name().c_str(), app.image().instruction_count(), full,
              partial, unchecked);

  // Step 3: generate and run a scenario per vulnerable site.
  std::printf("step 3: injecting at each unchecked site against the default test suite\n");
  int crashes = 0;
  for (const auto& report : vulnerable) {
    lfi::Scenario scenario = lfi::GenerateSiteScenario(report, profile);
    if (scenario.functions().empty()) {
      continue;
    }
    lfi::VirtualFs fs;
    lfi::VirtualNet net;
    lfi::MiniGit git(&fs, &net, "/repo");
    lfi::TestController controller(scenario);
    lfi::TestOutcome outcome =
        controller.RunTest(&git.libc(), [&] { return git.RunDefaultTestSuite(); });
    if (outcome.crashed()) {
      ++crashes;
      std::printf("  CRASH  %-10s at %s+0x%x -> %s\n", report.site.function.c_str(),
                  report.site.enclosing.c_str(), report.site.offset,
                  outcome.crash_where.c_str());
      if (report.site.function == "opendir") {
        std::printf("         log: %s", outcome.log_text.c_str());
      }
    }
  }
  std::printf("\n%d crash(es) found fully automatically.\n", crashes);
  return crashes > 0 ? 0 : 1;
}
