// lfi_tool: the command-line face of the tool chain, operating on SimELF
// binaries on disk exactly the way the released LFI operated on ELF files.
//
//   lfi_tool emit-libc <out.self>            write the libc binary to disk
//   lfi_tool emit-app {git|bind|mysql|pbft|bfs|httpd} <out.self>
//   lfi_tool disasm <binary.self>            disassembly listing
//   lfi_tool profile <library.self>          fault profile XML to stdout
//   lfi_tool analyze <app.self> <library.self> [function]
//                                            call-site report + generated
//                                            injection scenarios (C_not)
//
// Every campaign-shaped subcommand below is one CampaignSpec handed to one
// CampaignDriver (src/apps/common); the tool only parses options and prints
// the CampaignOutcome.
//
//   lfi_tool campaign {git|mysql|bind|pbft|bfs|all} [workers]
//       [--workers W] [--exhaustive] [--journal PATH] [--json]
//                                            the §7.1 bug campaign
//   lfi_tool explore {git|mysql|bind|pbft|bfs}
//       [--strategy exhaustive|random|coverage] [--budget N] [--seed S]
//       [--workers W] [--journal PATH] [--shard I/N] [--shards N]
//       [--epoch-len K] [--json]             feedback-driven exploration;
//                                            --shard runs one dealt shard of
//                                            the stream (manual multi-machine
//                                            sharding); --shards N with the
//                                            coverage strategy runs the
//                                            epoch-synchronized distributed
//                                            campaign (requires --epoch-len K
//                                            merged batches per epoch)
//   lfi_tool shard {git|mysql|bind|pbft|bfs} --shards N --journal PATH
//       [--strategy exhaustive|random|coverage] [--budget N] [--seed S]
//       [--workers W] [--epoch-len K] [--json]
//                                            multi-process campaign: spawns N
//                                            child lfi_tool processes, one
//                                            per shard, then merges their
//                                            journals into PATH (coverage
//                                            strategy: epoch-synchronized,
//                                            needs --epoch-len K)
//   lfi_tool merge <out.xml> <in.xml...> [--json]
//                                            merge shard journals into one
//                                            resumable campaign journal
//   lfi_tool resume <journal> [--workers W] [--shards N] [--json]
//                                            continue a killed journaled
//                                            campaign bit-identically;
//                                            --shards N re-enters epoch
//                                            orchestration for epoch-
//                                            synchronized journals
//   lfi_tool replay <journal> [record[:injection]] [--json]
//                                            re-inject a journaled injection
//                                            from disk alone and check it
//                                            reproduces the recorded crash
//   lfi_tool journal info <path> [--json]    inspect a journal artifact,
//                                            including a per-epoch breakdown
//                                            for epoch-synchronized journals;
//                                            exits nonzero if stream indexes
//                                            fail to advance or epochs
//                                            overlap/regress
//   lfi_tool journal convert <in> <out> [--format xml|extent]
//                                            rewrite a journal in the other
//                                            encoding (default) or the named
//                                            one, losslessly
//   lfi_tool journal doctor <path> [--repair] [--json]
//                                            diagnose a journal artifact:
//                                            torn tails, stale/missing extent
//                                            footers, epoch invariant
//                                            violations, a campaign identity
//                                            naming an unknown target system,
//                                            and orphaned shard/
//                                            frontier artifacts. --repair
//                                            truncates torn tails, reseals
//                                            the footer, and removes orphans.
//                                            Exit: 0 healthy/repaired, 1
//                                            unreadable, 2 usage, 3
//                                            repairable issues found, 4
//                                            invariant violation
//   lfi_tool run-spec <spec.xml>             run a serialized CampaignSpec
//                                            (the shard orchestrator's
//                                            parent->child wire format)
//
// Campaign-shaped subcommands also accept the supervision options
// --child-timeout-ms MS, --max-retries R, --backoff-ms MS (shard child
// deadline/retry policy), --job-timeout-ms MS (per-job hang detection), and
// --failpoints SPEC (deterministic fault injection into the orchestrator
// itself; see src/util/failpoint.h for the spec syntax). None of these enter
// the campaign identity.
//
// Journal-writing subcommands accept --format xml|extent to pick the on-disk
// encoding of journals they create (docs/journal-format.md); the default is
// the binary extent format, with XML kept as the debug/interchange encoding.
// Reads always auto-detect.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "analysis/callsite_analyzer.h"
#include "apps/bfs/bfs.h"
#include "apps/bind/bind.h"
#include "apps/common/bug_campaign.h"
#include "apps/common/campaign_driver.h"
#include "apps/common/campaign_spec.h"
#include "apps/git/git.h"
#include "apps/httpd/httpd.h"
#include "apps/mysql/mysql.h"
#include "apps/pbft/pbft.h"
#include "core/analysis_cache.h"
#include "core/journal.h"
#include "core/scenario_gen.h"
#include "core/stock_triggers.h"
#include "profiler/profiler.h"
#include "profiler/stub_gen.h"
#include "util/string_util.h"
#include "vlib/library_profiles.h"

namespace {

bool WriteFileBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return out.good();
}

std::optional<lfi::Image> ReadImage(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  auto image = lfi::Image::Deserialize(bytes);
  if (!image) {
    std::fprintf(stderr, "%s is not a valid SimELF image\n", path.c_str());
  }
  return image;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  lfi_tool emit-libc <out.self>\n"
               "  lfi_tool emit-app {git|bind|mysql|pbft|bfs|httpd} <out.self>\n"
               "  lfi_tool disasm <binary.self>\n"
               "  lfi_tool profile <library.self>\n"
               "  lfi_tool analyze <app.self> <library.self> [function]\n"
               "  lfi_tool campaign {git|mysql|bind|pbft|bfs|all} [workers] [--workers W]\n"
               "                    [--exhaustive] [--journal PATH] [--format xml|extent]\n"
               "                    [--json]\n"
               "  lfi_tool explore {git|mysql|bind|pbft|bfs} [--strategy "
               "exhaustive|random|coverage]\n"
               "                   [--budget N] [--seed S] [--workers W] [--journal PATH]\n"
               "                   [--format xml|extent] [--shard I/N] [--shards N]\n"
               "                   [--epoch-len K] [--json]\n"
               "  lfi_tool shard {git|mysql|bind|pbft|bfs} --shards N --journal PATH\n"
               "                 [--strategy exhaustive|random|coverage] [--budget N]\n"
               "                 [--seed S] [--workers W] [--epoch-len K]\n"
               "                 [--format xml|extent] [--json]\n"
               "  lfi_tool merge <out> <in...> [--format xml|extent] [--json]\n"
               "  lfi_tool resume <journal> [--workers W] [--shards N] [--json]\n"
               "  lfi_tool replay <journal> [record[:injection]] [--json]\n"
               "  lfi_tool journal info <path> [--json]\n"
               "  lfi_tool journal convert <in> <out> [--format xml|extent]\n"
               "  lfi_tool journal doctor <path> [--repair] [--json]\n"
               "  lfi_tool run-spec <spec.xml>\n"
               "campaign subcommands also accept supervision options:\n"
               "  --child-timeout-ms MS --max-retries R --backoff-ms MS\n"
               "  --job-timeout-ms MS --failpoints SPEC --cold-start\n");
  return 2;
}

// Options shared by the campaign-shaped subcommands, parsed by the one
// parser so every subcommand accepts the same spellings -- including --json
// -- and rejects unknown options the same way. A bare integer is accepted as
// the worker count (the historical `campaign <system> <workers>` form).
struct ToolOptions {
  int workers = 1;
  lfi::ExploreStrategy strategy = lfi::ExploreStrategy::kExhaustive;
  size_t budget = 0;
  uint64_t seed = 1;
  bool exhaustive = false;
  std::string journal;
  size_t shard_index = lfi::CampaignSpec::kNoShard;  // --shard I/N
  size_t shard_count = 1;                            // --shard I/N or --shards N
  size_t epoch_len = 0;    // --epoch-len K (epoch-synchronized coverage runs)
  size_t abort_after = 0;  // undocumented test hook (CI kill-and-resume)
  // Supervision policy (campaign_spec.h): shard child deadlines and
  // retry/backoff, per-job hang detection, and deterministic failpoints.
  uint64_t child_timeout_ms = 0;
  size_t max_retries = 2;
  uint64_t backoff_ms = 50;
  uint64_t job_timeout_ms = 0;
  std::string failpoints;
  // --cold-start: fresh target per job (the warm-pool ablation baseline).
  bool cold_start = false;
  bool json = false;
  // --format: encoding for journals the command writes. nullopt = the
  // default (extent for fresh journals; merge/convert derive theirs from
  // their inputs).
  std::optional<lfi::JournalFormat> format;
};

// Parses args[start..] into `out`. Returns false (after printing the
// offender) on unknown options or missing values.
bool ParseToolOptions(const std::vector<std::string>& args, size_t start, ToolOptions* out) {
  for (size_t i = start; i < args.size(); ++i) {
    auto value = [&](const char* flag) -> const std::string* {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        return nullptr;
      }
      return &args[++i];
    };
    if (args[i] == "--json") {
      out->json = true;
    } else if (args[i] == "--exhaustive") {
      out->exhaustive = true;
    } else if (args[i] == "--cold-start") {
      out->cold_start = true;
    } else if (args[i] == "--strategy") {
      const std::string* v = value("--strategy");
      if (v == nullptr) {
        return false;
      }
      auto strategy = lfi::ParseExploreStrategy(*v);
      if (!strategy) {
        std::fprintf(stderr, "unknown strategy '%s'\n", v->c_str());
        return false;
      }
      out->strategy = *strategy;
    } else if (args[i] == "--budget") {
      const std::string* v = value("--budget");
      if (v == nullptr) {
        return false;
      }
      auto parsed = lfi::ParseInt(*v);
      if (!parsed || *parsed < 0) {
        std::fprintf(stderr, "bad --budget value '%s'\n", v->c_str());
        return false;
      }
      out->budget = static_cast<size_t>(*parsed);
    } else if (args[i] == "--seed") {
      const std::string* v = value("--seed");
      if (v == nullptr) {
        return false;
      }
      auto parsed = lfi::ParseInt(*v);
      if (!parsed || *parsed < 0) {
        std::fprintf(stderr, "bad --seed value '%s'\n", v->c_str());
        return false;
      }
      out->seed = static_cast<uint64_t>(*parsed);
    } else if (args[i] == "--workers") {
      const std::string* v = value("--workers");
      if (v == nullptr) {
        return false;
      }
      auto parsed = lfi::ParseInt(*v);  // <= 0 is meaningful: one per hw thread
      if (!parsed) {
        std::fprintf(stderr, "bad --workers value '%s'\n", v->c_str());
        return false;
      }
      out->workers = static_cast<int>(*parsed);
    } else if (args[i] == "--journal") {
      const std::string* v = value("--journal");
      if (v == nullptr) {
        return false;
      }
      out->journal = *v;
    } else if (args[i] == "--shards") {
      const std::string* v = value("--shards");
      if (v == nullptr) {
        return false;
      }
      auto parsed = lfi::ParseInt(*v);
      if (!parsed || *parsed < 1) {
        std::fprintf(stderr, "bad --shards value '%s'\n", v->c_str());
        return false;
      }
      out->shard_count = static_cast<size_t>(*parsed);
    } else if (args[i] == "--epoch-len") {
      const std::string* v = value("--epoch-len");
      if (v == nullptr) {
        return false;
      }
      auto parsed = lfi::ParseInt(*v);
      if (!parsed || *parsed < 1) {
        std::fprintf(stderr, "bad --epoch-len value '%s'\n", v->c_str());
        return false;
      }
      out->epoch_len = static_cast<size_t>(*parsed);
    } else if (args[i] == "--shard") {
      const std::string* v = value("--shard");
      if (v == nullptr) {
        return false;
      }
      std::vector<std::string> parts = lfi::Split(*v, '/');
      auto index = parts.size() == 2 ? lfi::ParseInt(parts[0]) : std::nullopt;
      auto count = parts.size() == 2 ? lfi::ParseInt(parts[1]) : std::nullopt;
      if (!index || !count || *index < 0 || *count < 1 || *index >= *count) {
        std::fprintf(stderr, "bad --shard value '%s' (want I/N with I < N)\n", v->c_str());
        return false;
      }
      out->shard_index = static_cast<size_t>(*index);
      out->shard_count = static_cast<size_t>(*count);
    } else if (args[i] == "--format") {
      const std::string* v = value("--format");
      if (v == nullptr) {
        return false;
      }
      auto format = lfi::ParseJournalFormat(*v);
      if (!format) {
        std::fprintf(stderr, "unknown journal format '%s' (xml|extent)\n", v->c_str());
        return false;
      }
      out->format = *format;
    } else if (args[i] == "--child-timeout-ms") {
      const std::string* v = value("--child-timeout-ms");
      if (v == nullptr) {
        return false;
      }
      auto parsed = lfi::ParseInt(*v);
      if (!parsed || *parsed < 0) {
        std::fprintf(stderr, "bad --child-timeout-ms value '%s'\n", v->c_str());
        return false;
      }
      out->child_timeout_ms = static_cast<uint64_t>(*parsed);
    } else if (args[i] == "--max-retries") {
      const std::string* v = value("--max-retries");
      if (v == nullptr) {
        return false;
      }
      auto parsed = lfi::ParseInt(*v);
      if (!parsed || *parsed < 0) {
        std::fprintf(stderr, "bad --max-retries value '%s'\n", v->c_str());
        return false;
      }
      out->max_retries = static_cast<size_t>(*parsed);
    } else if (args[i] == "--backoff-ms") {
      const std::string* v = value("--backoff-ms");
      if (v == nullptr) {
        return false;
      }
      auto parsed = lfi::ParseInt(*v);
      if (!parsed || *parsed < 0) {
        std::fprintf(stderr, "bad --backoff-ms value '%s'\n", v->c_str());
        return false;
      }
      out->backoff_ms = static_cast<uint64_t>(*parsed);
    } else if (args[i] == "--job-timeout-ms") {
      const std::string* v = value("--job-timeout-ms");
      if (v == nullptr) {
        return false;
      }
      auto parsed = lfi::ParseInt(*v);
      if (!parsed || *parsed < 0) {
        std::fprintf(stderr, "bad --job-timeout-ms value '%s'\n", v->c_str());
        return false;
      }
      out->job_timeout_ms = static_cast<uint64_t>(*parsed);
    } else if (args[i] == "--failpoints") {
      const std::string* v = value("--failpoints");
      if (v == nullptr) {
        return false;
      }
      out->failpoints = *v;
    } else if (args[i] == "--abort-after") {
      const std::string* v = value("--abort-after");
      if (v == nullptr) {
        return false;
      }
      auto parsed = lfi::ParseInt(*v);
      if (!parsed || *parsed < 0) {
        std::fprintf(stderr, "bad --abort-after value '%s'\n", v->c_str());
        return false;
      }
      out->abort_after = static_cast<size_t>(*parsed);
    } else if (auto workers = lfi::ParseInt(args[i])) {
      out->workers = static_cast<int>(*workers);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", args[i].c_str());
      return false;
    }
  }
  return true;
}

lfi::CampaignSpec SpecFromOptions(lfi::CampaignMode mode, const std::string& system,
                                  const ToolOptions& options) {
  lfi::CampaignSpec spec;
  spec.system = system;
  spec.mode = mode;
  spec.strategy = options.strategy;
  spec.exhaustive = options.exhaustive;
  spec.budget = options.budget;
  spec.seed = options.seed;
  spec.workers = options.workers;
  spec.journal_path = options.journal;
  spec.shard_index = options.shard_index;
  spec.shard_count = options.shard_count;
  spec.epoch_len = options.epoch_len;
  spec.json = options.json;
  spec.format = options.format.value_or(lfi::JournalFormat::kExtent);
  spec.abort_after_records = options.abort_after;
  spec.child_timeout_ms = options.child_timeout_ms;
  spec.max_retries = options.max_retries;
  spec.backoff_ms = options.backoff_ms;
  spec.job_timeout_ms = options.job_timeout_ms;
  spec.failpoints = options.failpoints;
  spec.cold_start = options.cold_start;
  return spec;
}

// --- outcome printing -------------------------------------------------------

// Machine-readable FoundBug records, one JSON object per bug.
std::string BugsJson(const std::vector<lfi::FoundBug>& bugs) {
  std::string out = "[";
  for (size_t i = 0; i < bugs.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += lfi::StrFormat(
        "{\"system\":\"%s\",\"kind\":\"%s\",\"where\":\"%s\",\"injected\":\"%s\"}",
        lfi::JsonEscape(bugs[i].system).c_str(), lfi::JsonEscape(bugs[i].kind).c_str(),
        lfi::JsonEscape(bugs[i].where).c_str(), lfi::JsonEscape(bugs[i].injected).c_str());
  }
  out += "]";
  return out;
}

void PrintBugTable(const std::vector<lfi::FoundBug>& bugs) {
  std::printf("%-7s %-20s %-55s %s\n", "system", "kind", "where", "injected");
  for (const lfi::FoundBug& bug : bugs) {
    std::printf("%-7s %-20s %-55s %s\n", bug.system.c_str(), bug.kind.c_str(),
                bug.where.c_str(), bug.injected.c_str());
  }
  std::printf("%zu distinct bug(s)\n", bugs.size());
}

std::string CoverageJson(const lfi::CoverageMap& coverage) {
  lfi::CoverageMap::Stats stats = coverage.ComputeStats();
  return lfi::StrFormat(
      "{\"recovery_blocks\":%zu,\"covered_recovery_blocks\":%zu,"
      "\"total_blocks\":%zu,\"covered_blocks\":%zu,\"covered_lines\":%d}",
      stats.recovery_blocks, stats.covered_recovery_blocks, stats.total_blocks,
      stats.covered_blocks, stats.covered_lines);
}

std::string ShardsJson(const std::vector<lfi::MergeInputStats>& shards) {
  std::string out = "[";
  for (size_t i = 0; i < shards.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += lfi::StrFormat(
        "{\"shard\":%lld,\"journal\":\"%s\",\"records\":%zu,"
        "\"scenarios_run\":%zu,\"bugs\":%zu}",
        shards[i].shard_index == static_cast<size_t>(-1)
            ? -1LL
            : static_cast<long long>(shards[i].shard_index),
        lfi::JsonEscape(shards[i].path).c_str(), shards[i].records, shards[i].scenarios_run,
        shards[i].bugs);
  }
  out += "]";
  return out;
}

void PrintShardTable(const std::vector<lfi::MergeInputStats>& shards) {
  for (const lfi::MergeInputStats& shard : shards) {
    std::printf("shard %s: %zu record(s), %zu scenario(s) run, %zu bug(s)  [%s]\n",
                shard.shard_index == static_cast<size_t>(-1)
                    ? "?"
                    : lfi::StrFormat("%zu", shard.shard_index).c_str(),
                shard.records, shard.scenarios_run, shard.bugs, shard.path.c_str());
  }
}

void PrintExplorationSummary(const char* command, const std::string& system,
                             const char* strategy, size_t budget, uint64_t seed,
                             const lfi::CampaignOutcome& outcome, bool json) {
  lfi::CoverageMap::Stats stats = outcome.coverage.ComputeStats();
  if (json) {
    std::string extra;
    if (!outcome.shards.empty()) {
      extra = lfi::StrFormat(",\"journal\":\"%s\",\"shards\":%s",
                             lfi::JsonEscape(outcome.journal_path).c_str(),
                             ShardsJson(outcome.shards).c_str());
    }
    std::printf(
        "{\"command\":\"%s\",\"system\":\"%s\",\"strategy\":\"%s\","
        "\"budget\":%zu,\"seed\":%llu,\"scenarios_run\":%zu,"
        "\"coverage\":%s,\"bugs\":%s,\"count\":%zu%s}\n",
        command, lfi::JsonEscape(system).c_str(), strategy, budget, (unsigned long long)seed,
        outcome.scenarios_run, CoverageJson(outcome.coverage).c_str(),
        BugsJson(outcome.bugs).c_str(), outcome.bugs.size(), extra.c_str());
  } else {
    if (!outcome.shards.empty()) {
      PrintShardTable(outcome.shards);
      std::printf("merged journal: %s\n", outcome.journal_path.c_str());
    }
    std::printf("strategy %s, %zu scenario(s) run (budget %zu, seed %llu)\n", strategy,
                outcome.scenarios_run, budget, (unsigned long long)seed);
    std::printf("recovery blocks covered: %zu/%zu   blocks covered: %zu/%zu\n",
                stats.covered_recovery_blocks, stats.recovery_blocks, stats.covered_blocks,
                stats.total_blocks);
    PrintBugTable(outcome.bugs);
  }
}

int PrintReplayOutcome(const lfi::CampaignOutcome& outcome, bool json) {
  std::string system = lfi::MetaValue(outcome.metadata, "system", "");
  std::string replays_json = "[";
  for (size_t i = 0; i < outcome.replays.size(); ++i) {
    const lfi::ReplayOutcome& replay = outcome.replays[i];
    if (json) {
      if (i > 0) {
        replays_json += ",";
      }
      replays_json += lfi::StrFormat(
          "{\"record\":%zu,\"injection\":%zu,\"function\":\"%s\",\"call\":%llu,"
          "\"crashed\":%s,\"where\":\"%s\",\"reproduced\":%s}",
          replay.record, replay.injection, lfi::JsonEscape(replay.function).c_str(),
          static_cast<unsigned long long>(replay.call_number),
          replay.crashed ? "true" : "false", lfi::JsonEscape(replay.where).c_str(),
          replay.informational ? "null" : (replay.reproduced ? "true" : "false"));
    } else {
      std::printf("record %zu injection %zu: %s call %llu -> %s%s\n", replay.record,
                  replay.injection, replay.function.c_str(),
                  static_cast<unsigned long long>(replay.call_number),
                  replay.crashed ? ("crash at " + replay.where).c_str() : "no crash",
                  !replay.informational
                      ? (replay.reproduced ? " [reproduced]" : " [MISMATCH]")
                  : replay.distributed && replay.recorded_bug
                      ? " [distributed record: informational]"
                      : "");
    }
  }
  replays_json += "]";
  if (json) {
    std::printf(
        "{\"command\":\"replay\",\"system\":\"%s\",\"replays\":%s,"
        "\"expected\":%zu,\"reproduced\":%zu}\n",
        lfi::JsonEscape(system).c_str(), replays_json.c_str(), outcome.replays_expected,
        outcome.replays_reproduced);
  } else {
    std::printf("%zu/%zu recorded crash site(s) reproduced from disk\n",
                outcome.replays_reproduced, outcome.replays_expected);
  }
  return outcome.ok ? 0 : 1;
}

// Runs a spec through the driver and prints its outcome in the shape the
// subcommand historically used. `command` names the subcommand in JSON
// output ("campaign", "explore", "shard", "resume", "replay").
int RunSpec(const char* command, lfi::CampaignSpec spec, const std::string& tool_path) {
  bool json = spec.json;
  lfi::CampaignDriver driver(std::move(spec));
  driver.set_tool_path(tool_path);
  std::string error;
  auto outcome = driver.Run(&error);
  if (!outcome) {
    std::fprintf(stderr, "%s failed: %s\n", command, error.c_str());
    return driver.spec().Validate().empty() ? 1 : 2;
  }
  switch (driver.spec().mode) {
    case lfi::CampaignMode::kTable1:
      if (json) {
        std::printf("{\"command\":\"%s\",\"system\":\"%s\",\"bugs\":%s,\"count\":%zu}\n",
                    command, lfi::JsonEscape(driver.spec().system).c_str(),
                    BugsJson(outcome->bugs).c_str(), outcome->bugs.size());
      } else {
        PrintBugTable(outcome->bugs);
      }
      return 0;
    case lfi::CampaignMode::kExplore:
      PrintExplorationSummary(command, driver.spec().system,
                              lfi::ExploreStrategyName(driver.spec().strategy),
                              driver.spec().budget, driver.spec().seed, *outcome, json);
      return 0;
    case lfi::CampaignMode::kResume: {
      // The campaign identity comes from the journal header (that is the
      // point of resume); "campaign" doubles as the strategy name for
      // table1-mode journals, as it always has.
      const lfi::JournalMetadata& meta = outcome->metadata;
      std::string strategy =
          lfi::MetaValue(meta, "strategy", lfi::MetaValue(meta, "command", "campaign"));
      size_t budget = static_cast<size_t>(
          std::strtoull(lfi::MetaValue(meta, "budget", "0").c_str(), nullptr, 0));
      uint64_t seed = std::strtoull(lfi::MetaValue(meta, "seed", "0").c_str(), nullptr, 0);
      PrintExplorationSummary(command, lfi::MetaValue(meta, "system", "?"), strategy.c_str(),
                              budget, seed, *outcome, json);
      return 0;
    }
    case lfi::CampaignMode::kReplay:
      return PrintReplayOutcome(*outcome, json);
  }
  return 0;
}

int RunMergeCommand(const std::vector<std::string>& args, size_t start) {
  std::vector<std::string> inputs;
  ToolOptions options;
  size_t i = start + 1;
  for (; i < args.size() && !lfi::StartsWith(args[i], "--"); ++i) {
    inputs.push_back(args[i]);
  }
  if (!ParseToolOptions(args, i, &options)) {
    return Usage();
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "merge needs at least one input journal\n");
    return Usage();
  }
  std::string error;
  auto outcome = lfi::MergeCampaignJournals(inputs, args[start], &error, options.format);
  if (!outcome) {
    std::fprintf(stderr, "merge failed: %s\n", error.c_str());
    return 1;
  }
  std::string strategy = lfi::MetaValue(
      outcome->metadata, "strategy", lfi::MetaValue(outcome->metadata, "command", "campaign"));
  size_t budget = static_cast<size_t>(
      std::strtoull(lfi::MetaValue(outcome->metadata, "budget", "0").c_str(), nullptr, 0));
  uint64_t seed =
      std::strtoull(lfi::MetaValue(outcome->metadata, "seed", "0").c_str(), nullptr, 0);
  PrintExplorationSummary("merge", lfi::MetaValue(outcome->metadata, "system", "?"),
                          strategy.c_str(), budget, seed, *outcome, options.json);
  return 0;
}

int RunJournalConvertCommand(const std::string& input, const std::string& output,
                             const ToolOptions& options) {
  std::string error;
  size_t records = 0;
  lfi::JournalFormat written = lfi::JournalFormat::kExtent;
  if (!lfi::ConvertJournal(input, output, options.format, &error, &records, &written)) {
    std::fprintf(stderr, "convert failed: %s\n", error.c_str());
    return 1;
  }
  if (options.json) {
    std::printf(
        "{\"command\":\"journal-convert\",\"input\":\"%s\",\"output\":\"%s\","
        "\"format\":\"%s\",\"records\":%zu}\n",
        lfi::JsonEscape(input).c_str(), lfi::JsonEscape(output).c_str(),
        lfi::JournalFormatName(written), records);
  } else {
    std::printf("wrote %s (%s, %zu record(s))\n", output.c_str(),
                lfi::JournalFormatName(written), records);
  }
  return 0;
}

// One epoch of an epoch-synchronized journal, as `journal info` reports it:
// how many records the epoch merged and what it contributed beyond every
// earlier epoch (first-seen bugs, newly covered blocks).
struct EpochInfoRow {
  size_t epoch = 0;
  size_t records = 0;
  size_t gated = 0;
  size_t bugs = 0;                 // bugs first exposed in this epoch
  size_t new_recovery_blocks = 0;  // recovery blocks first covered here
  size_t new_blocks = 0;           // blocks first covered here
};

// Walks the records once, building the per-epoch breakdown and validating
// the epoch wire invariants (journal.h JournalRecord::epoch): stream indexes
// strictly advance and epochs never regress or interleave, so every epoch
// owns a disjoint stream-index range. Returns false (after printing the
// offending record) on violation -- a journal that fails here was merged
// from overlapping shard artifacts and must not be trusted.
bool BuildEpochBreakdown(const std::string& path, const lfi::CampaignJournal& journal,
                         std::vector<EpochInfoRow>* rows) {
  std::set<lfi::FoundBug> seen_bugs;
  lfi::CoverageMap cumulative;
  lfi::CoverageMap::Stats prior = cumulative.ComputeStats();
  auto close_row = [&](EpochInfoRow* row) {
    lfi::CoverageMap::Stats now = cumulative.ComputeStats();
    row->new_recovery_blocks = now.covered_recovery_blocks - prior.covered_recovery_blocks;
    row->new_blocks = now.covered_blocks - prior.covered_blocks;
    prior = now;
    rows->push_back(*row);
  };
  EpochInfoRow row;
  bool open = false;
  size_t prev_stream = lfi::JournalRecord::kNoStreamIndex;
  size_t prev_epoch = lfi::kNoEpoch;
  for (size_t i = 0; i < journal.records().size(); ++i) {
    const lfi::JournalRecord& record = journal.records()[i];
    if (record.stream_index != lfi::JournalRecord::kNoStreamIndex) {
      if (prev_stream != lfi::JournalRecord::kNoStreamIndex &&
          record.stream_index <= prev_stream) {
        std::fprintf(stderr,
                     "invalid journal %s: record %zu stream index %zu does not advance past "
                     "%zu (overlapping or reordered shard records)\n",
                     path.c_str(), i, record.stream_index, prev_stream);
        return false;
      }
      prev_stream = record.stream_index;
    }
    if (record.epoch != lfi::kNoEpoch && prev_epoch != lfi::kNoEpoch &&
        record.epoch < prev_epoch) {
      std::fprintf(stderr,
                   "invalid journal %s: record %zu regresses to epoch %zu after epoch %zu\n",
                   path.c_str(), i, record.epoch, prev_epoch);
      return false;
    }
    if (record.epoch == lfi::kNoEpoch && prev_epoch != lfi::kNoEpoch) {
      std::fprintf(stderr,
                   "invalid journal %s: record %zu has no epoch after epoch-stamped records\n",
                   path.c_str(), i);
      return false;
    }
    if (record.epoch == lfi::kNoEpoch) {
      continue;  // ordinary journal record; no breakdown row
    }
    prev_epoch = record.epoch;
    if (open && record.epoch != row.epoch) {
      close_row(&row);
      row = EpochInfoRow();
      open = false;
    }
    if (!open) {
      row.epoch = record.epoch;
      open = true;
    }
    ++row.records;
    if (record.gated) {
      ++row.gated;
      continue;
    }
    for (const lfi::FoundBug& bug : record.result.bugs) {
      if (seen_bugs.insert(bug).second) {
        ++row.bugs;
      }
    }
    cumulative.Absorb(record.result.coverage);
  }
  if (open) {
    close_row(&row);
  }
  return true;
}

int RunJournalInfoCommand(const std::string& path, const ToolOptions& options) {
  std::string error;
  auto journal = lfi::CampaignJournal::Load(path, &error);
  if (!journal) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  size_t gated = 0;
  size_t injections = 0;
  std::set<lfi::FoundBug> bugs;
  lfi::CoverageMap coverage;
  for (const lfi::JournalRecord& record : journal->records()) {
    if (record.gated) {
      ++gated;
      continue;
    }
    injections += record.result.injections;
    bugs.insert(record.result.bugs.begin(), record.result.bugs.end());
    coverage.Absorb(record.result.coverage);
  }
  std::vector<lfi::FoundBug> sorted(bugs.begin(), bugs.end());
  std::vector<EpochInfoRow> epochs;
  if (!BuildEpochBreakdown(path, *journal, &epochs)) {
    return 1;
  }
  if (options.json) {
    std::string meta_json = "{";
    for (size_t i = 0; i < journal->metadata().size(); ++i) {
      if (i > 0) {
        meta_json += ",";
      }
      meta_json += lfi::StrFormat("\"%s\":\"%s\"",
                                  lfi::JsonEscape(journal->metadata()[i].first).c_str(),
                                  lfi::JsonEscape(journal->metadata()[i].second).c_str());
    }
    meta_json += "}";
    std::string epochs_json = "[";
    for (size_t i = 0; i < epochs.size(); ++i) {
      if (i > 0) {
        epochs_json += ",";
      }
      epochs_json += lfi::StrFormat(
          "{\"epoch\":%zu,\"records\":%zu,\"gated\":%zu,\"new_bugs\":%zu,"
          "\"new_recovery_blocks\":%zu,\"new_blocks\":%zu}",
          epochs[i].epoch, epochs[i].records, epochs[i].gated, epochs[i].bugs,
          epochs[i].new_recovery_blocks, epochs[i].new_blocks);
    }
    epochs_json += "]";
    std::printf(
        "{\"command\":\"journal-info\",\"path\":\"%s\",\"meta\":%s,"
        "\"records\":%zu,\"gated\":%zu,\"scenarios_run\":%zu,\"injections\":%zu,"
        "\"coverage\":%s,\"epochs\":%s,\"bugs\":%s,\"count\":%zu}\n",
        lfi::JsonEscape(path).c_str(), meta_json.c_str(), journal->records().size(), gated,
        journal->records().size() - gated, injections, CoverageJson(coverage).c_str(),
        epochs_json.c_str(), BugsJson(sorted).c_str(), sorted.size());
  } else {
    std::printf("journal %s\n", path.c_str());
    for (const auto& [key, value] : journal->metadata()) {
      std::printf("  %-12s %s\n", key.c_str(), value.c_str());
    }
    lfi::CoverageMap::Stats stats = coverage.ComputeStats();
    std::printf("%zu record(s) (%zu gated), %zu injection(s)\n", journal->records().size(),
                gated, injections);
    std::printf("recovery blocks covered: %zu/%zu   blocks covered: %zu/%zu\n",
                stats.covered_recovery_blocks, stats.recovery_blocks, stats.covered_blocks,
                stats.total_blocks);
    if (!epochs.empty()) {
      std::printf("%-7s %-9s %-7s %-9s %-20s %s\n", "epoch", "records", "gated", "new bugs",
                  "new recovery blocks", "new blocks");
      for (const EpochInfoRow& row : epochs) {
        std::printf("%-7zu %-9zu %-7zu %-9zu %-20zu %zu\n", row.epoch, row.records, row.gated,
                    row.bugs, row.new_recovery_blocks, row.new_blocks);
      }
    }
    PrintBugTable(sorted);
  }
  return 0;
}

// --- journal doctor ---------------------------------------------------------

// One defect `journal doctor` diagnosed. Repairable defects (torn tails,
// stale footers, orphaned artifacts) are fixed by --repair; invariant
// violations are not -- a journal merged from overlapping shard artifacts
// cannot be mechanically un-merged.
struct DoctorIssue {
  std::string kind;
  std::string detail;
  bool repairable = false;
  bool repaired = false;
};

std::optional<uint64_t> FileSizeBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return std::nullopt;
  }
  return static_cast<uint64_t>(in.tellg());
}

bool FileExists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return in.good();
}

// Sibling artifacts a sharded/epoch campaign writes next to its merged
// journal. Once the merged journal is finalized they are dead weight -- the
// merge consumed them -- so the doctor reports them as orphans (and --repair
// removes them). While the journal is torn/unfinalized they may still feed a
// recovery and are left alone. Scans are contiguous-from-zero, matching how
// the orchestrator numbers shards and epochs.
std::vector<std::string> FindSiblingArtifacts(const std::string& journal_path) {
  constexpr size_t kScanLimit = 256;  // shards or epochs; far above any real run
  std::vector<std::string> found;
  auto probe = [&](const std::string& path) {
    if (FileExists(path)) {
      found.push_back(path);
      return true;
    }
    return false;
  };
  probe(journal_path + ".tmp");
  probe(journal_path + ".spec");
  for (size_t shard = 0; shard < kScanLimit; ++shard) {
    std::string base = lfi::StrFormat("%s.shard%zu", journal_path.c_str(), shard);
    bool any = probe(base);
    any |= probe(base + ".spec");
    any |= probe(base + ".tmp");
    if (!any) {
      break;
    }
  }
  for (size_t epoch = 0; epoch < kScanLimit; ++epoch) {
    std::string prefix = lfi::StrFormat("%s.epoch%zu", journal_path.c_str(), epoch);
    bool any = probe(prefix + ".frontier");
    any |= probe(prefix + ".frontier.tmp");
    for (size_t shard = 0; shard < kScanLimit; ++shard) {
      std::string base = lfi::StrFormat("%s.shard%zu", prefix.c_str(), shard);
      bool shard_any = probe(base);
      shard_any |= probe(base + ".spec");
      shard_any |= probe(base + ".tmp");
      if (!shard_any) {
        break;
      }
      any = true;
    }
    if (!any) {
      break;
    }
  }
  return found;
}

int RunJournalDoctorCommand(const std::string& path, bool repair, const ToolOptions& options) {
  std::string error;
  auto size = FileSizeBytes(path);
  if (!size) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  auto journal = lfi::CampaignJournal::Load(path, &error);
  if (!journal) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  std::vector<DoctorIssue> issues;
  bool invariant_violation = false;
  // A sealed extent journal's footer legitimately lives past intact_bytes
  // (the truncation point appends continue from), so bytes past it are a
  // torn tail only when the footer was NOT valid -- any garbage appended
  // after a valid footer invalidates it, forcing the scan path here.
  bool torn = journal->sealed() ? journal->format() == lfi::JournalFormat::kXml &&
                                      *size > journal->intact_bytes()
                                : *size > journal->intact_bytes();
  if (torn) {
    issues.push_back({"torn-tail",
                      lfi::StrFormat("%llu byte(s) past the last %s boundary",
                                     static_cast<unsigned long long>(*size) -
                                         static_cast<unsigned long long>(
                                             journal->intact_bytes()),
                                     journal->format() == lfi::JournalFormat::kExtent
                                         ? "sealed extent"
                                         : "complete record"),
                      /*repairable=*/true});
  }
  if (!journal->sealed()) {
    issues.push_back({"stale-footer",
                      "extent footer missing or invalid (journal was not finalized); "
                      "records were recovered by scan",
                      /*repairable=*/true});
  }
  std::vector<EpochInfoRow> epochs;
  if (!BuildEpochBreakdown(path, *journal, &epochs)) {
    invariant_violation = true;
    issues.push_back({"invariant-violation",
                      "stream-index/epoch invariants violated (details above); the "
                      "journal was merged from overlapping or reordered shard artifacts",
                      /*repairable=*/false});
  }
  // The campaign identity must name a system this build can re-run: resume
  // and replay both dispatch on it, so a journal whose header names anything
  // else (a typo, or a journal from a newer build) is dead on arrival. A
  // journal with no "system" key at all is not campaign-shaped (merge
  // fixtures, hand-written artifacts) and is left alone.
  std::string recorded_system = journal->Meta("system", "");
  if (!recorded_system.empty() && !lfi::IsCampaignSystem(recorded_system)) {
    invariant_violation = true;
    std::string known;
    for (const std::string& name : lfi::CampaignSystemNames()) {
      known += (known.empty() ? "" : "|") + name;
    }
    issues.push_back({"unknown-system",
                      lfi::StrFormat("campaign identity names system '%s', which this build "
                                     "cannot re-run (%s); resume and replay will refuse it",
                                     recorded_system.c_str(), known.c_str()),
                      /*repairable=*/false});
  }
  // Orphan detection only applies to a finalized journal: a torn one may
  // still need its siblings to finish recovering.
  std::vector<std::string> orphans;
  if ((journal->sealed() || repair) && !invariant_violation) {
    orphans = FindSiblingArtifacts(path);
  }
  if (!orphans.empty()) {
    std::string detail = lfi::StrFormat("%zu stale sibling artifact(s):", orphans.size());
    for (const std::string& orphan : orphans) {
      detail += " " + orphan;
    }
    issues.push_back({"orphaned-artifacts", detail, /*repairable=*/true});
  }

  size_t repaired = 0;
  if (repair && !invariant_violation) {
    bool needs_reseal = torn || !journal->sealed();
    if (needs_reseal) {
      // OpenAppend truncates the torn tail (and the old footer); Finalize
      // reseals. The record set is exactly what Load recovered.
      if (!journal->OpenAppend(path, &error) || !journal->Finalize(&error)) {
        std::fprintf(stderr, "repair failed: %s\n", error.c_str());
        return 1;
      }
    }
    for (const std::string& orphan : orphans) {
      std::remove(orphan.c_str());
    }
    for (DoctorIssue& issue : issues) {
      if (issue.repairable) {
        issue.repaired = true;
        ++repaired;
      }
    }
  }

  bool healthy = issues.empty();
  if (options.json) {
    std::string issues_json = "[";
    for (size_t i = 0; i < issues.size(); ++i) {
      if (i > 0) {
        issues_json += ",";
      }
      issues_json += lfi::StrFormat(
          "{\"kind\":\"%s\",\"detail\":\"%s\",\"repairable\":%s,\"repaired\":%s}",
          lfi::JsonEscape(issues[i].kind).c_str(), lfi::JsonEscape(issues[i].detail).c_str(),
          issues[i].repairable ? "true" : "false", issues[i].repaired ? "true" : "false");
    }
    issues_json += "]";
    std::printf(
        "{\"command\":\"journal-doctor\",\"path\":\"%s\",\"format\":\"%s\","
        "\"records\":%zu,\"intact_bytes\":%zu,\"file_bytes\":%llu,\"sealed\":%s,"
        "\"issues\":%s,\"healthy\":%s,\"repaired\":%zu}\n",
        lfi::JsonEscape(path).c_str(), lfi::JournalFormatName(journal->format()),
        journal->records().size(), journal->intact_bytes(),
        static_cast<unsigned long long>(*size), journal->sealed() ? "true" : "false",
        issues_json.c_str(), healthy ? "true" : "false", repaired);
  } else {
    std::printf("journal %s: %s, %zu record(s), %llu byte(s) (%zu intact)\n", path.c_str(),
                lfi::JournalFormatName(journal->format()), journal->records().size(),
                static_cast<unsigned long long>(*size), journal->intact_bytes());
    for (const DoctorIssue& issue : issues) {
      std::printf("  %s: %s%s\n", issue.kind.c_str(), issue.detail.c_str(),
                  issue.repaired        ? " [repaired]"
                  : issue.repairable ? " [repairable: rerun with --repair]"
                                     : " [NOT repairable]");
    }
    if (healthy) {
      std::printf("healthy\n");
    } else if (repaired == issues.size()) {
      std::printf("%zu issue(s) repaired\n", repaired);
    } else {
      std::printf("%zu issue(s) found\n", issues.size());
    }
  }
  if (invariant_violation) {
    return 4;
  }
  if (healthy || (repair && repaired == issues.size())) {
    return 0;
  }
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  lfi::EnsureStockTriggersRegistered();
  std::string tool_path = argv[0] != nullptr ? argv[0] : "";
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    return Usage();
  }
  const std::string& cmd = args[0];

  if (cmd == "emit-libc" && args.size() == 2) {
    lfi::Image libc = lfi::GenerateLibraryImage(lfi::LibcProfile());
    if (!WriteFileBytes(args[1], libc.Serialize())) {
      return 1;
    }
    std::printf("wrote %s (%zu functions, %zu instructions)\n", args[1].c_str(),
                libc.symbols().size(), libc.instruction_count());
    return 0;
  }
  if (cmd == "emit-app" && args.size() == 3) {
    const lfi::AppBinary* binary = nullptr;
    if (args[1] == "git") {
      binary = &lfi::GitBinary();
    } else if (args[1] == "bind") {
      binary = &lfi::BindBinary();
    } else if (args[1] == "mysql") {
      binary = &lfi::MysqlBinary();
    } else if (args[1] == "pbft") {
      binary = &lfi::PbftBinary();
    } else if (args[1] == "bfs") {
      binary = &lfi::BfsBinary();
    } else if (args[1] == "httpd") {
      binary = &lfi::HttpdBinary();
    } else {
      return Usage();
    }
    if (!WriteFileBytes(args[2], binary->image().Serialize())) {
      return 1;
    }
    std::printf("wrote %s (%zu call sites)\n", args[2].c_str(), binary->sites().size());
    return 0;
  }
  if (cmd == "disasm" && args.size() == 2) {
    auto image = ReadImage(args[1]);
    if (!image) {
      return 1;
    }
    std::printf("%s", image->Disassemble().c_str());
    return 0;
  }
  if (cmd == "profile" && args.size() == 2) {
    auto image = ReadImage(args[1]);
    if (!image) {
      return 1;
    }
    lfi::LibraryProfiler profiler;
    std::printf("%s", profiler.Profile(*image).ToXml().c_str());
    return 0;
  }
  if (cmd == "analyze" && (args.size() == 3 || args.size() == 4)) {
    auto app = ReadImage(args[1]);
    auto lib = ReadImage(args[2]);
    if (!app || !lib) {
      return 1;
    }
    lfi::AnalysisCache& cache = lfi::AnalysisCache::Instance();
    const lfi::FaultProfile& profile = cache.Profile(
        lib->module_name(), [&] { return lfi::LibraryProfiler().Profile(*lib); });
    std::string only = args.size() == 4 ? args[3] : "";
    std::vector<lfi::CallSiteReport> all;
    if (only.empty()) {
      all = cache.Reports(*app, profile);
    } else {
      // Filtered query: analyze just the one function instead of paying for
      // a full cached pass this one-shot process would never reuse.
      lfi::CallSiteAnalyzer analyzer;
      if (const lfi::FunctionProfile* fn = profile.Find(only)) {
        all = analyzer.Analyze(*app, only, fn->ErrorCodes());
      }
    }
    std::printf("%-12s %-10s %-24s %s\n", "function", "offset", "in", "class");
    for (const auto& r : all) {
      std::printf("%-12s 0x%-8x %-24s %s\n", r.site.function.c_str(), r.site.offset,
                  r.site.enclosing.c_str(), lfi::CheckClassName(r.check_class));
    }
    lfi::GeneratedScenarios scenarios = lfi::GenerateScenarios(all, profile);
    std::printf("\n<!-- injection scenario for the %zu completely unchecked site(s) -->\n",
                scenarios.unchecked.functions().size());
    std::printf("%s", scenarios.unchecked.ToXml().c_str());
    return 0;
  }

  // --- campaign-shaped subcommands: spec parsing + one driver call ----------

  if ((cmd == "campaign" || cmd == "explore" || cmd == "shard") && args.size() >= 2) {
    ToolOptions options;
    if (!ParseToolOptions(args, 2, &options)) {
      return Usage();
    }
    lfi::CampaignMode mode =
        cmd == "campaign" ? lfi::CampaignMode::kTable1 : lfi::CampaignMode::kExplore;
    lfi::CampaignSpec spec = SpecFromOptions(mode, args[1], options);
    if (cmd == "shard" && spec.shard_index != lfi::CampaignSpec::kNoShard) {
      // Accepting --shard here would silently run one shard's fraction of
      // the campaign into the merged-journal path and exit 0.
      std::fprintf(stderr,
                   "shard orchestrates every shard; use --shards N (run a single shard "
                   "by hand with `explore --shard I/N`)\n");
      return Usage();
    }
    if (cmd == "shard" && spec.shard_count < 2) {
      std::fprintf(stderr, "shard needs --shards N (N >= 2)\n");
      return Usage();
    }
    return RunSpec(cmd.c_str(), std::move(spec), tool_path);
  }
  if (cmd == "resume" && args.size() >= 2) {
    ToolOptions options;
    if (!ParseToolOptions(args, 2, &options)) {
      return Usage();
    }
    lfi::CampaignSpec spec = SpecFromOptions(lfi::CampaignMode::kResume, "", options);
    spec.journal_path = args[1];
    return RunSpec("resume", std::move(spec), tool_path);
  }
  if (cmd == "replay" && args.size() >= 2) {
    // The optional positional selector must precede any options.
    std::string selector;
    size_t start = 2;
    if (args.size() >= 3 && !lfi::StartsWith(args[2], "--")) {
      selector = args[2];
      start = 3;
    }
    ToolOptions options;
    if (!ParseToolOptions(args, start, &options)) {
      return Usage();
    }
    lfi::CampaignSpec spec = SpecFromOptions(lfi::CampaignMode::kReplay, "", options);
    spec.journal_path = args[1];
    spec.replay_selector = selector;
    return RunSpec("replay", std::move(spec), tool_path);
  }
  if (cmd == "merge" && args.size() >= 3) {
    return RunMergeCommand(args, 1);
  }
  if (cmd == "journal" && args.size() >= 3 && args[1] == "info") {
    ToolOptions options;
    if (!ParseToolOptions(args, 3, &options)) {
      return Usage();
    }
    return RunJournalInfoCommand(args[2], options);
  }
  if (cmd == "journal" && args.size() >= 4 && args[1] == "convert") {
    ToolOptions options;
    if (!ParseToolOptions(args, 4, &options)) {
      return Usage();
    }
    return RunJournalConvertCommand(args[2], args[3], options);
  }
  if (cmd == "journal" && args.size() >= 3 && args[1] == "doctor") {
    // --repair is doctor-only; strip it before the shared option parser.
    bool repair = false;
    std::vector<std::string> rest;
    for (size_t i = 3; i < args.size(); ++i) {
      if (args[i] == "--repair") {
        repair = true;
      } else {
        rest.push_back(args[i]);
      }
    }
    ToolOptions options;
    if (!ParseToolOptions(rest, 0, &options)) {
      return Usage();
    }
    return RunJournalDoctorCommand(args[2], repair, options);
  }
  if (cmd == "run-spec" && args.size() == 2) {
    std::ifstream in(args[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open spec %s\n", args[1].c_str());
      return 1;
    }
    std::string xml((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    std::string error;
    auto spec = lfi::CampaignSpec::Parse(xml, &error);
    if (!spec) {
      std::fprintf(stderr, "bad spec %s: %s\n", args[1].c_str(), error.c_str());
      return 1;
    }
    return RunSpec("run-spec", std::move(*spec), tool_path);
  }
  return Usage();
}
