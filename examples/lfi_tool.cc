// lfi_tool: the command-line face of the tool chain, operating on SimELF
// binaries on disk exactly the way the released LFI operated on ELF files.
//
//   lfi_tool emit-libc <out.self>            write the libc binary to disk
//   lfi_tool emit-app {git|bind|mysql|pbft|httpd} <out.self>
//   lfi_tool disasm <binary.self>            disassembly listing
//   lfi_tool profile <library.self>          fault profile XML to stdout
//   lfi_tool analyze <app.self> <library.self> [function]
//                                            call-site report + generated
//                                            injection scenarios (C_not)
//   lfi_tool campaign {git|mysql|bind|pbft|all} [workers] [--json]
//                                            run the §7.1 bug campaign on the
//                                            parallel engine; workers <= 0
//                                            means one per hardware thread
//   lfi_tool explore {git|mysql|bind|pbft}
//       [--strategy exhaustive|random|coverage] [--budget N] [--seed S]
//       [--workers W] [--json]
//                                            feedback-driven scenario
//                                            exploration: stream scenarios
//                                            from the chosen strategy and
//                                            report bugs + recovery coverage.
//                                            Same seed+strategy+budget is
//                                            bit-identical at any worker
//                                            count.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/callsite_analyzer.h"
#include "apps/bind/bind.h"
#include "apps/common/bug_campaign.h"
#include "apps/git/git.h"
#include "apps/httpd/httpd.h"
#include "apps/mysql/mysql.h"
#include "apps/pbft/pbft.h"
#include "core/analysis_cache.h"
#include "core/scenario_gen.h"
#include "core/stock_triggers.h"
#include "profiler/profiler.h"
#include "profiler/stub_gen.h"
#include "util/string_util.h"
#include "vlib/library_profiles.h"

namespace {

bool WriteFileBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return out.good();
}

std::optional<lfi::Image> ReadImage(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  auto image = lfi::Image::Deserialize(bytes);
  if (!image) {
    std::fprintf(stderr, "%s is not a valid SimELF image\n", path.c_str());
  }
  return image;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  lfi_tool emit-libc <out.self>\n"
               "  lfi_tool emit-app {git|bind|mysql|pbft|httpd} <out.self>\n"
               "  lfi_tool disasm <binary.self>\n"
               "  lfi_tool profile <library.self>\n"
               "  lfi_tool analyze <app.self> <library.self> [function]\n"
               "  lfi_tool campaign {git|mysql|bind|pbft|all} [workers] [--json]\n"
               "  lfi_tool explore {git|mysql|bind|pbft} [--strategy "
               "exhaustive|random|coverage]\n"
               "                   [--budget N] [--seed S] [--workers W] [--json]\n");
  return 2;
}

// Machine-readable FoundBug records, one JSON object per bug.
std::string BugsJson(const std::vector<lfi::FoundBug>& bugs) {
  std::string out = "[";
  for (size_t i = 0; i < bugs.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += lfi::StrFormat(
        "{\"system\":\"%s\",\"kind\":\"%s\",\"where\":\"%s\",\"injected\":\"%s\"}",
        lfi::JsonEscape(bugs[i].system).c_str(), lfi::JsonEscape(bugs[i].kind).c_str(),
        lfi::JsonEscape(bugs[i].where).c_str(), lfi::JsonEscape(bugs[i].injected).c_str());
  }
  out += "]";
  return out;
}

void PrintBugTable(const std::vector<lfi::FoundBug>& bugs) {
  std::printf("%-7s %-20s %-55s %s\n", "system", "kind", "where", "injected");
  for (const lfi::FoundBug& bug : bugs) {
    std::printf("%-7s %-20s %-55s %s\n", bug.system.c_str(), bug.kind.c_str(),
                bug.where.c_str(), bug.injected.c_str());
  }
  std::printf("%zu distinct bug(s)\n", bugs.size());
}

int RunCampaignCommand(const std::string& system, int workers, bool json) {
  lfi::CampaignConfig config;
  config.workers = workers;
  std::vector<lfi::FoundBug> bugs;
  if (system == "git") {
    bugs = lfi::RunGitCampaign(config);
  } else if (system == "mysql") {
    bugs = lfi::RunMysqlCampaign(config);
  } else if (system == "bind") {
    bugs = lfi::RunBindCampaign(config);
  } else if (system == "pbft") {
    bugs = lfi::RunPbftCampaign(config);
  } else if (system == "all") {
    bugs = lfi::RunFullCampaign(config);
  } else {
    return Usage();
  }
  if (json) {
    std::printf("{\"command\":\"campaign\",\"system\":\"%s\",\"bugs\":%s,\"count\":%zu}\n",
                lfi::JsonEscape(system).c_str(), BugsJson(bugs).c_str(), bugs.size());
  } else {
    PrintBugTable(bugs);
  }
  return 0;
}

int RunExploreCommand(const std::string& system, const lfi::ExploreConfig& config, bool json) {
  std::optional<lfi::ExplorationResult> result = lfi::ExploreCampaign(system, config);
  if (!result) {
    return Usage();
  }
  lfi::CoverageMap::Stats stats = result->coverage.ComputeStats();
  if (json) {
    std::printf(
        "{\"command\":\"explore\",\"system\":\"%s\",\"strategy\":\"%s\","
        "\"budget\":%zu,\"seed\":%llu,\"scenarios_run\":%zu,"
        "\"coverage\":{\"recovery_blocks\":%zu,\"covered_recovery_blocks\":%zu,"
        "\"total_blocks\":%zu,\"covered_blocks\":%zu,\"covered_lines\":%d},"
        "\"bugs\":%s,\"count\":%zu}\n",
        lfi::JsonEscape(system).c_str(), lfi::ExploreStrategyName(config.strategy),
        config.budget, (unsigned long long)config.seed, result->scenarios_run,
        stats.recovery_blocks, stats.covered_recovery_blocks, stats.total_blocks,
        stats.covered_blocks, stats.covered_lines, BugsJson(result->bugs).c_str(),
        result->bugs.size());
  } else {
    std::printf("strategy %s, %zu scenario(s) run (budget %zu, seed %llu)\n",
                lfi::ExploreStrategyName(config.strategy), result->scenarios_run,
                config.budget, (unsigned long long)config.seed);
    std::printf("recovery blocks covered: %zu/%zu   blocks covered: %zu/%zu\n",
                stats.covered_recovery_blocks, stats.recovery_blocks, stats.covered_blocks,
                stats.total_blocks);
    PrintBugTable(result->bugs);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  lfi::EnsureStockTriggersRegistered();
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    return Usage();
  }
  const std::string& cmd = args[0];

  if (cmd == "emit-libc" && args.size() == 2) {
    lfi::Image libc = lfi::GenerateLibraryImage(lfi::LibcProfile());
    if (!WriteFileBytes(args[1], libc.Serialize())) {
      return 1;
    }
    std::printf("wrote %s (%zu functions, %zu instructions)\n", args[1].c_str(),
                libc.symbols().size(), libc.instruction_count());
    return 0;
  }
  if (cmd == "emit-app" && args.size() == 3) {
    const lfi::AppBinary* binary = nullptr;
    if (args[1] == "git") {
      binary = &lfi::GitBinary();
    } else if (args[1] == "bind") {
      binary = &lfi::BindBinary();
    } else if (args[1] == "mysql") {
      binary = &lfi::MysqlBinary();
    } else if (args[1] == "pbft") {
      binary = &lfi::PbftBinary();
    } else if (args[1] == "httpd") {
      binary = &lfi::HttpdBinary();
    } else {
      return Usage();
    }
    if (!WriteFileBytes(args[2], binary->image().Serialize())) {
      return 1;
    }
    std::printf("wrote %s (%zu call sites)\n", args[2].c_str(), binary->sites().size());
    return 0;
  }
  if (cmd == "disasm" && args.size() == 2) {
    auto image = ReadImage(args[1]);
    if (!image) {
      return 1;
    }
    std::printf("%s", image->Disassemble().c_str());
    return 0;
  }
  if (cmd == "profile" && args.size() == 2) {
    auto image = ReadImage(args[1]);
    if (!image) {
      return 1;
    }
    lfi::LibraryProfiler profiler;
    std::printf("%s", profiler.Profile(*image).ToXml().c_str());
    return 0;
  }
  if (cmd == "analyze" && (args.size() == 3 || args.size() == 4)) {
    auto app = ReadImage(args[1]);
    auto lib = ReadImage(args[2]);
    if (!app || !lib) {
      return 1;
    }
    lfi::AnalysisCache& cache = lfi::AnalysisCache::Instance();
    const lfi::FaultProfile& profile = cache.Profile(
        lib->module_name(), [&] { return lfi::LibraryProfiler().Profile(*lib); });
    std::string only = args.size() == 4 ? args[3] : "";
    std::vector<lfi::CallSiteReport> all;
    if (only.empty()) {
      all = cache.Reports(*app, profile);
    } else {
      // Filtered query: analyze just the one function instead of paying for
      // a full cached pass this one-shot process would never reuse.
      lfi::CallSiteAnalyzer analyzer;
      if (const lfi::FunctionProfile* fn = profile.Find(only)) {
        all = analyzer.Analyze(*app, only, fn->ErrorCodes());
      }
    }
    std::printf("%-12s %-10s %-24s %s\n", "function", "offset", "in", "class");
    for (const auto& r : all) {
      std::printf("%-12s 0x%-8x %-24s %s\n", r.site.function.c_str(), r.site.offset,
                  r.site.enclosing.c_str(), lfi::CheckClassName(r.check_class));
    }
    lfi::GeneratedScenarios scenarios = lfi::GenerateScenarios(all, profile);
    std::printf("\n<!-- injection scenario for the %zu completely unchecked site(s) -->\n",
                scenarios.unchecked.functions().size());
    std::printf("%s", scenarios.unchecked.ToXml().c_str());
    return 0;
  }
  if (cmd == "campaign" && args.size() >= 2) {
    int workers = 1;
    bool json = false;
    for (size_t i = 2; i < args.size(); ++i) {
      if (args[i] == "--json") {
        json = true;
      } else if (auto parsed = lfi::ParseInt(args[i])) {
        workers = static_cast<int>(*parsed);
      } else {
        std::fprintf(stderr, "unknown campaign option '%s'\n", args[i].c_str());
        return Usage();
      }
    }
    return RunCampaignCommand(args[1], workers, json);
  }
  if (cmd == "explore" && args.size() >= 2) {
    lfi::ExploreConfig config;
    bool json = false;
    for (size_t i = 2; i < args.size(); ++i) {
      if (args[i] == "--json") {
        json = true;
      } else if (args[i] == "--strategy" && i + 1 < args.size()) {
        auto strategy = lfi::ParseExploreStrategy(args[++i]);
        if (!strategy) {
          std::fprintf(stderr, "unknown strategy '%s'\n", args[i].c_str());
          return Usage();
        }
        config.strategy = *strategy;
      } else if (args[i] == "--budget" && i + 1 < args.size()) {
        config.budget = static_cast<size_t>(std::atoll(args[++i].c_str()));
      } else if (args[i] == "--seed" && i + 1 < args.size()) {
        config.seed = static_cast<uint64_t>(std::atoll(args[++i].c_str()));
      } else if (args[i] == "--workers" && i + 1 < args.size()) {
        config.workers = std::atoi(args[++i].c_str());
      } else {
        std::fprintf(stderr, "unknown explore option '%s'\n", args[i].c_str());
        return Usage();
      }
    }
    return RunExploreCommand(args[1], config, json);
  }
  return Usage();
}
