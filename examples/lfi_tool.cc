// lfi_tool: the command-line face of the tool chain, operating on SimELF
// binaries on disk exactly the way the released LFI operated on ELF files.
//
//   lfi_tool emit-libc <out.self>            write the libc binary to disk
//   lfi_tool emit-app {git|bind|mysql|pbft|httpd} <out.self>
//   lfi_tool disasm <binary.self>            disassembly listing
//   lfi_tool profile <library.self>          fault profile XML to stdout
//   lfi_tool analyze <app.self> <library.self> [function]
//                                            call-site report + generated
//                                            injection scenarios (C_not)
//   lfi_tool campaign {git|mysql|bind|pbft|all} [workers]
//       [--workers W] [--journal PATH] [--json]
//                                            run the §7.1 bug campaign on the
//                                            parallel engine; workers <= 0
//                                            means one per hardware thread
//   lfi_tool explore {git|mysql|bind|pbft}
//       [--strategy exhaustive|random|coverage] [--budget N] [--seed S]
//       [--workers W] [--journal PATH] [--json]
//                                            feedback-driven scenario
//                                            exploration. Same seed+strategy+
//                                            budget is bit-identical at any
//                                            worker count; --journal persists
//                                            every merged scenario/log/bug/
//                                            coverage record to disk.
//   lfi_tool resume <journal> [--workers W] [--json]
//                                            continue a killed journaled
//                                            campaign: replays the journal
//                                            through the engine and finishes
//                                            bit-identical to an
//                                            uninterrupted run
//   lfi_tool replay <journal> [record[:injection]] [--json]
//                                            re-inject a journaled injection
//                                            from disk alone (deterministic
//                                            call-count replay) and check it
//                                            reproduces the recorded crash
//                                            site

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "analysis/callsite_analyzer.h"
#include "apps/bind/bind.h"
#include "apps/common/bug_campaign.h"
#include "apps/git/git.h"
#include "apps/httpd/httpd.h"
#include "apps/mysql/mysql.h"
#include "apps/pbft/pbft.h"
#include "core/analysis_cache.h"
#include "core/journal.h"
#include "core/scenario_gen.h"
#include "core/stock_triggers.h"
#include "profiler/profiler.h"
#include "profiler/stub_gen.h"
#include "util/string_util.h"
#include "vlib/library_profiles.h"

namespace {

bool WriteFileBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return out.good();
}

std::optional<lfi::Image> ReadImage(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  auto image = lfi::Image::Deserialize(bytes);
  if (!image) {
    std::fprintf(stderr, "%s is not a valid SimELF image\n", path.c_str());
  }
  return image;
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  lfi_tool emit-libc <out.self>\n"
               "  lfi_tool emit-app {git|bind|mysql|pbft|httpd} <out.self>\n"
               "  lfi_tool disasm <binary.self>\n"
               "  lfi_tool profile <library.self>\n"
               "  lfi_tool analyze <app.self> <library.self> [function]\n"
               "  lfi_tool campaign {git|mysql|bind|pbft|all} [workers] [--workers W]\n"
               "                    [--journal PATH] [--json]\n"
               "  lfi_tool explore {git|mysql|bind|pbft} [--strategy "
               "exhaustive|random|coverage]\n"
               "                   [--budget N] [--seed S] [--workers W] [--journal PATH]\n"
               "                   [--json]\n"
               "  lfi_tool resume <journal> [--workers W] [--json]\n"
               "  lfi_tool replay <journal> [record[:injection]] [--json]\n");
  return 2;
}

// Options shared by the campaign-shaped subcommands (campaign, explore,
// resume, replay), parsed by the one parser so every subcommand accepts the
// same spellings -- including --json -- and rejects unknown options the same
// way. A bare integer is accepted as the worker count (the historical
// `campaign <system> <workers>` form).
struct ToolOptions {
  int workers = 1;
  lfi::ExploreStrategy strategy = lfi::ExploreStrategy::kExhaustive;
  size_t budget = 0;
  uint64_t seed = 1;
  std::string journal;
  size_t abort_after = 0;  // undocumented test hook (CI kill-and-resume)
  bool json = false;
};

// Parses args[start..] into `out`. Returns false (after printing the
// offender) on unknown options or missing values.
bool ParseToolOptions(const std::vector<std::string>& args, size_t start, ToolOptions* out) {
  for (size_t i = start; i < args.size(); ++i) {
    auto value = [&](const char* flag) -> const std::string* {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        return nullptr;
      }
      return &args[++i];
    };
    if (args[i] == "--json") {
      out->json = true;
    } else if (args[i] == "--strategy") {
      const std::string* v = value("--strategy");
      if (v == nullptr) {
        return false;
      }
      auto strategy = lfi::ParseExploreStrategy(*v);
      if (!strategy) {
        std::fprintf(stderr, "unknown strategy '%s'\n", v->c_str());
        return false;
      }
      out->strategy = *strategy;
    } else if (args[i] == "--budget") {
      const std::string* v = value("--budget");
      if (v == nullptr) {
        return false;
      }
      auto parsed = lfi::ParseInt(*v);
      if (!parsed || *parsed < 0) {
        std::fprintf(stderr, "bad --budget value '%s'\n", v->c_str());
        return false;
      }
      out->budget = static_cast<size_t>(*parsed);
    } else if (args[i] == "--seed") {
      const std::string* v = value("--seed");
      if (v == nullptr) {
        return false;
      }
      auto parsed = lfi::ParseInt(*v);
      if (!parsed || *parsed < 0) {
        std::fprintf(stderr, "bad --seed value '%s'\n", v->c_str());
        return false;
      }
      out->seed = static_cast<uint64_t>(*parsed);
    } else if (args[i] == "--workers") {
      const std::string* v = value("--workers");
      if (v == nullptr) {
        return false;
      }
      auto parsed = lfi::ParseInt(*v);  // <= 0 is meaningful: one per hw thread
      if (!parsed) {
        std::fprintf(stderr, "bad --workers value '%s'\n", v->c_str());
        return false;
      }
      out->workers = static_cast<int>(*parsed);
    } else if (args[i] == "--journal") {
      const std::string* v = value("--journal");
      if (v == nullptr) {
        return false;
      }
      out->journal = *v;
    } else if (args[i] == "--abort-after") {
      const std::string* v = value("--abort-after");
      if (v == nullptr) {
        return false;
      }
      auto parsed = lfi::ParseInt(*v);
      if (!parsed || *parsed < 0) {
        std::fprintf(stderr, "bad --abort-after value '%s'\n", v->c_str());
        return false;
      }
      out->abort_after = static_cast<size_t>(*parsed);
    } else if (auto workers = lfi::ParseInt(args[i])) {
      out->workers = static_cast<int>(*workers);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", args[i].c_str());
      return false;
    }
  }
  return true;
}

// Machine-readable FoundBug records, one JSON object per bug.
std::string BugsJson(const std::vector<lfi::FoundBug>& bugs) {
  std::string out = "[";
  for (size_t i = 0; i < bugs.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += lfi::StrFormat(
        "{\"system\":\"%s\",\"kind\":\"%s\",\"where\":\"%s\",\"injected\":\"%s\"}",
        lfi::JsonEscape(bugs[i].system).c_str(), lfi::JsonEscape(bugs[i].kind).c_str(),
        lfi::JsonEscape(bugs[i].where).c_str(), lfi::JsonEscape(bugs[i].injected).c_str());
  }
  out += "]";
  return out;
}

void PrintBugTable(const std::vector<lfi::FoundBug>& bugs) {
  std::printf("%-7s %-20s %-55s %s\n", "system", "kind", "where", "injected");
  for (const lfi::FoundBug& bug : bugs) {
    std::printf("%-7s %-20s %-55s %s\n", bug.system.c_str(), bug.kind.c_str(),
                bug.where.c_str(), bug.injected.c_str());
  }
  std::printf("%zu distinct bug(s)\n", bugs.size());
}

std::string CoverageJson(const lfi::CoverageMap& coverage) {
  lfi::CoverageMap::Stats stats = coverage.ComputeStats();
  return lfi::StrFormat(
      "{\"recovery_blocks\":%zu,\"covered_recovery_blocks\":%zu,"
      "\"total_blocks\":%zu,\"covered_blocks\":%zu,\"covered_lines\":%d}",
      stats.recovery_blocks, stats.covered_recovery_blocks, stats.total_blocks,
      stats.covered_blocks, stats.covered_lines);
}

int RunCampaignCommand(const std::string& system, const ToolOptions& options) {
  lfi::CampaignConfig config;
  config.workers = options.workers;
  config.journal_path = options.journal;
  config.abort_after_records = options.abort_after;
  if (system == "all" && !options.journal.empty()) {
    std::fprintf(stderr,
                 "campaign all cannot be journaled (four engines, no single job stream); "
                 "journal one system at a time\n");
    return 2;
  }
  std::vector<lfi::FoundBug> bugs;
  try {
    if (system == "git") {
      bugs = lfi::RunGitCampaign(config);
    } else if (system == "mysql") {
      bugs = lfi::RunMysqlCampaign(config);
    } else if (system == "bind") {
      bugs = lfi::RunBindCampaign(config);
    } else if (system == "pbft") {
      bugs = lfi::RunPbftCampaign(config);
    } else if (system == "all") {
      bugs = lfi::RunFullCampaign(config);
    } else {
      return Usage();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "campaign failed: %s\n", e.what());
    return 1;
  }
  if (options.json) {
    std::printf("{\"command\":\"campaign\",\"system\":\"%s\",\"bugs\":%s,\"count\":%zu}\n",
                lfi::JsonEscape(system).c_str(), BugsJson(bugs).c_str(), bugs.size());
  } else {
    PrintBugTable(bugs);
  }
  return 0;
}

void PrintExplorationResult(const char* command, const std::string& system,
                            const char* strategy, size_t budget, uint64_t seed,
                            const lfi::ExplorationResult& result, bool json) {
  lfi::CoverageMap::Stats stats = result.coverage.ComputeStats();
  if (json) {
    std::printf(
        "{\"command\":\"%s\",\"system\":\"%s\",\"strategy\":\"%s\","
        "\"budget\":%zu,\"seed\":%llu,\"scenarios_run\":%zu,"
        "\"coverage\":%s,\"bugs\":%s,\"count\":%zu}\n",
        command, lfi::JsonEscape(system).c_str(), strategy, budget,
        (unsigned long long)seed, result.scenarios_run, CoverageJson(result.coverage).c_str(),
        BugsJson(result.bugs).c_str(), result.bugs.size());
  } else {
    std::printf("strategy %s, %zu scenario(s) run (budget %zu, seed %llu)\n", strategy,
                result.scenarios_run, budget, (unsigned long long)seed);
    std::printf("recovery blocks covered: %zu/%zu   blocks covered: %zu/%zu\n",
                stats.covered_recovery_blocks, stats.recovery_blocks, stats.covered_blocks,
                stats.total_blocks);
    PrintBugTable(result.bugs);
  }
}

int RunExploreCommand(const std::string& system, const ToolOptions& options) {
  lfi::ExploreConfig config;
  config.workers = options.workers;
  config.strategy = options.strategy;
  config.budget = options.budget;
  config.seed = options.seed;
  config.journal_path = options.journal;
  config.abort_after_records = options.abort_after;
  std::optional<lfi::ExplorationResult> result;
  try {
    result = lfi::ExploreCampaign(system, config);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "explore failed: %s\n", e.what());
    return 1;
  }
  if (!result) {
    return Usage();
  }
  PrintExplorationResult("explore", system, lfi::ExploreStrategyName(config.strategy),
                         config.budget, config.seed, *result, options.json);
  return 0;
}

int RunResumeCommand(const std::string& path, const ToolOptions& options) {
  std::string error;
  lfi::JournalMetadata metadata;
  std::optional<lfi::ExplorationResult> result =
      lfi::ResumeCampaign(path, options.workers, &error, &metadata);
  if (!result) {
    std::fprintf(stderr, "resume failed: %s\n", error.c_str());
    return 1;
  }
  std::string strategy =
      lfi::MetaValue(metadata, "strategy", lfi::MetaValue(metadata, "command", "campaign"));
  size_t budget =
      std::strtoull(lfi::MetaValue(metadata, "budget", "0").c_str(), nullptr, 0);
  uint64_t seed = std::strtoull(lfi::MetaValue(metadata, "seed", "0").c_str(), nullptr, 0);
  PrintExplorationResult("resume", lfi::MetaValue(metadata, "system", "?"), strategy.c_str(),
                         budget, seed, *result, options.json);
  return 0;
}

int RunReplayCommand(const std::string& path, const std::string& selector,
                     const ToolOptions& options) {
  std::string error;
  auto journal = lfi::CampaignJournal::Load(path, &error);
  if (!journal) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  std::string system = journal->Meta("system", "");
  bool explore_workload = journal->Meta("command", "explore") != "campaign";
  lfi::CampaignEngine::ResultRunner runner = lfi::SystemJobRunner(system, explore_workload);
  if (!runner) {
    std::fprintf(stderr, "journal names unknown system '%s'\n", system.c_str());
    return 1;
  }

  // Which journaled injections to replay: every record that injected, or
  // the one the selector picks ("record" or "record:injection").
  struct Target {
    size_t record;
    size_t injection;
  };
  std::vector<Target> targets;
  const std::vector<lfi::JournalRecord>& records = journal->records();
  if (!selector.empty()) {
    std::vector<std::string> parts = lfi::Split(selector, ':');
    auto record = lfi::ParseInt(parts[0]);
    if (!record || parts.size() > 2 || *record < 0 ||
        static_cast<size_t>(*record) >= records.size()) {
      std::fprintf(stderr, "bad record selector '%s' (journal has %zu records)\n",
                   selector.c_str(), records.size());
      return 1;
    }
    const lfi::InjectionLog& log = records[*record].result.log;
    if (log.empty()) {
      std::fprintf(stderr, "record %lld injected nothing; nothing to replay\n",
                   static_cast<long long>(*record));
      return 1;
    }
    size_t injection = log.size() - 1;
    if (parts.size() == 2) {
      auto parsed = lfi::ParseInt(parts[1]);
      if (!parsed || *parsed < 0 || static_cast<size_t>(*parsed) >= log.size()) {
        std::fprintf(stderr, "record %lld has %zu injection(s)\n",
                     static_cast<long long>(*record), log.size());
        return 1;
      }
      injection = static_cast<size_t>(*parsed);
    }
    targets.push_back({static_cast<size_t>(*record), injection});
  } else {
    for (size_t i = 0; i < records.size(); ++i) {
      if (!records[i].result.log.empty()) {
        // The last injection is the one the run died on (when it died).
        targets.push_back({i, records[i].result.log.size() - 1});
      }
    }
  }

  size_t expected = 0;
  size_t matched = 0;
  std::string replays_json = "[";
  for (size_t t = 0; t < targets.size(); ++t) {
    const lfi::JournalRecord& record = records[targets[t].record];
    const lfi::InjectionRecord& injection = record.result.log.records()[targets[t].injection];
    lfi::CampaignJob job;
    job.scenario = record.result.log.ReplayScenario(targets[t].injection);
    job.label = lfi::StrFormat("replay %zu:%zu of %s", targets[t].record,
                               targets[t].injection, path.c_str());
    job.seed = record.seed;
    lfi::JobResult replayed = runner(job);

    // A record that exposed bugs must reproduce at least one of its crash
    // sites from disk alone; injection-only records just report what ran.
    // Records whose log spans several processes (the distributed pbft fuzz
    // phase interposes every replica) cannot be reproduced faithfully by
    // the single-process replay harness -- the call-count trigger would
    // land on the wrong replica's Nth call -- so they are informational.
    std::set<std::string> processes;
    for (const lfi::InjectionRecord& logged : record.result.log.records()) {
      processes.insert(logged.process);
    }
    bool single_process = processes.size() <= 1;
    bool has_expectation = !record.result.bugs.empty() && single_process;
    bool match = false;
    for (const lfi::FoundBug& want : record.result.bugs) {
      for (const lfi::FoundBug& got : replayed.bugs) {
        match |= want.system == got.system && want.kind == got.kind && want.where == got.where;
      }
    }
    expected += has_expectation ? 1 : 0;
    matched += (has_expectation && match) ? 1 : 0;

    std::string where = replayed.bugs.empty() ? "" : replayed.bugs.front().where;
    if (options.json) {
      if (t > 0) {
        replays_json += ",";
      }
      replays_json += lfi::StrFormat(
          "{\"record\":%zu,\"injection\":%zu,\"function\":\"%s\",\"call\":%llu,"
          "\"crashed\":%s,\"where\":\"%s\",\"reproduced\":%s}",
          targets[t].record, targets[t].injection, lfi::JsonEscape(injection.function).c_str(),
          static_cast<unsigned long long>(injection.call_number),
          replayed.bugs.empty() ? "false" : "true", lfi::JsonEscape(where).c_str(),
          has_expectation ? (match ? "true" : "false") : "null");
    } else {
      std::printf("record %zu injection %zu: %s call %llu -> %s%s\n", targets[t].record,
                  targets[t].injection, injection.function.c_str(),
                  static_cast<unsigned long long>(injection.call_number),
                  replayed.bugs.empty() ? "no crash" : ("crash at " + where).c_str(),
                  has_expectation ? (match ? " [reproduced]" : " [MISMATCH]")
                  : !single_process && !record.result.bugs.empty()
                      ? " [distributed record: informational]"
                      : "");
    }
  }
  replays_json += "]";
  if (options.json) {
    std::printf(
        "{\"command\":\"replay\",\"system\":\"%s\",\"replays\":%s,"
        "\"expected\":%zu,\"reproduced\":%zu}\n",
        lfi::JsonEscape(system).c_str(), replays_json.c_str(), expected, matched);
  } else {
    std::printf("%zu/%zu recorded crash site(s) reproduced from disk\n", matched, expected);
  }
  return matched == expected ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  lfi::EnsureStockTriggersRegistered();
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.empty()) {
    return Usage();
  }
  const std::string& cmd = args[0];

  if (cmd == "emit-libc" && args.size() == 2) {
    lfi::Image libc = lfi::GenerateLibraryImage(lfi::LibcProfile());
    if (!WriteFileBytes(args[1], libc.Serialize())) {
      return 1;
    }
    std::printf("wrote %s (%zu functions, %zu instructions)\n", args[1].c_str(),
                libc.symbols().size(), libc.instruction_count());
    return 0;
  }
  if (cmd == "emit-app" && args.size() == 3) {
    const lfi::AppBinary* binary = nullptr;
    if (args[1] == "git") {
      binary = &lfi::GitBinary();
    } else if (args[1] == "bind") {
      binary = &lfi::BindBinary();
    } else if (args[1] == "mysql") {
      binary = &lfi::MysqlBinary();
    } else if (args[1] == "pbft") {
      binary = &lfi::PbftBinary();
    } else if (args[1] == "httpd") {
      binary = &lfi::HttpdBinary();
    } else {
      return Usage();
    }
    if (!WriteFileBytes(args[2], binary->image().Serialize())) {
      return 1;
    }
    std::printf("wrote %s (%zu call sites)\n", args[2].c_str(), binary->sites().size());
    return 0;
  }
  if (cmd == "disasm" && args.size() == 2) {
    auto image = ReadImage(args[1]);
    if (!image) {
      return 1;
    }
    std::printf("%s", image->Disassemble().c_str());
    return 0;
  }
  if (cmd == "profile" && args.size() == 2) {
    auto image = ReadImage(args[1]);
    if (!image) {
      return 1;
    }
    lfi::LibraryProfiler profiler;
    std::printf("%s", profiler.Profile(*image).ToXml().c_str());
    return 0;
  }
  if (cmd == "analyze" && (args.size() == 3 || args.size() == 4)) {
    auto app = ReadImage(args[1]);
    auto lib = ReadImage(args[2]);
    if (!app || !lib) {
      return 1;
    }
    lfi::AnalysisCache& cache = lfi::AnalysisCache::Instance();
    const lfi::FaultProfile& profile = cache.Profile(
        lib->module_name(), [&] { return lfi::LibraryProfiler().Profile(*lib); });
    std::string only = args.size() == 4 ? args[3] : "";
    std::vector<lfi::CallSiteReport> all;
    if (only.empty()) {
      all = cache.Reports(*app, profile);
    } else {
      // Filtered query: analyze just the one function instead of paying for
      // a full cached pass this one-shot process would never reuse.
      lfi::CallSiteAnalyzer analyzer;
      if (const lfi::FunctionProfile* fn = profile.Find(only)) {
        all = analyzer.Analyze(*app, only, fn->ErrorCodes());
      }
    }
    std::printf("%-12s %-10s %-24s %s\n", "function", "offset", "in", "class");
    for (const auto& r : all) {
      std::printf("%-12s 0x%-8x %-24s %s\n", r.site.function.c_str(), r.site.offset,
                  r.site.enclosing.c_str(), lfi::CheckClassName(r.check_class));
    }
    lfi::GeneratedScenarios scenarios = lfi::GenerateScenarios(all, profile);
    std::printf("\n<!-- injection scenario for the %zu completely unchecked site(s) -->\n",
                scenarios.unchecked.functions().size());
    std::printf("%s", scenarios.unchecked.ToXml().c_str());
    return 0;
  }
  if (cmd == "campaign" && args.size() >= 2) {
    ToolOptions options;
    if (!ParseToolOptions(args, 2, &options)) {
      return Usage();
    }
    return RunCampaignCommand(args[1], options);
  }
  if (cmd == "explore" && args.size() >= 2) {
    ToolOptions options;
    if (!ParseToolOptions(args, 2, &options)) {
      return Usage();
    }
    return RunExploreCommand(args[1], options);
  }
  if (cmd == "resume" && args.size() >= 2) {
    ToolOptions options;
    if (!ParseToolOptions(args, 2, &options)) {
      return Usage();
    }
    return RunResumeCommand(args[1], options);
  }
  if (cmd == "replay" && args.size() >= 2) {
    // The optional positional selector must precede any options.
    std::string selector;
    size_t start = 2;
    if (args.size() >= 3 && !lfi::StartsWith(args[2], "--")) {
      selector = args[2];
      start = 3;
    }
    ToolOptions options;
    if (!ParseToolOptions(args, start, &options)) {
      return Usage();
    }
    return RunReplayCommand(args[1], selector, options);
  }
  return Usage();
}
