#include "apps/bind/bind.h"

#include <cstring>

#include "util/errno_codes.h"
#include "util/string_util.h"
#include "vlib/sim_crash.h"

namespace lfi {
namespace {

uint32_t Site(const char* name) { return BindBinary().SiteOffset(name); }

}  // namespace

const AppBinary& BindBinary() {
  static const AppBinary* binary = [] {
    AppBinaryBuilder b(MiniBind::kModule, /*filler_seed=*/0xb1d);
    // Zone loading.
    b.AddSite({"bind.zone.open", "load_zone", "open", CheckPattern::kCheckIneq, {}});
    b.AddSite({"bind.zone.read", "load_zone", "read", CheckPattern::kCheckIneq, {}});
    b.AddSite({"bind.zone.close", "load_zone", "close", CheckPattern::kCheckEqAll, {-1}});
    // Query path.
    b.AddSite({"bind.server.socket", "start_server", "socket", CheckPattern::kCheckIneq, {}});
    b.AddSite({"bind.server.bind", "start_server", "bind", CheckPattern::kCheckEqAll, {-1}});
    b.AddSite({"bind.server.recvfrom", "pump_queries", "recvfrom", CheckPattern::kCheckIneq, {}});
    b.AddSite({"bind.server.sendto", "pump_queries", "sendto", CheckPattern::kCheckIneq, {}});
    // Stats channel (Table 1 bug: both libxml results used unchecked).
    b.AddSite({"bind.stats.newwriter", "statschannel_render", "xmlNewTextWriterDoc",
               CheckPattern::kNoCheck, {}});
    b.AddSite({"bind.stats.writeelem", "statschannel_render", "xmlTextWriterWriteElement",
               CheckPattern::kNoCheck, {}});
    // dst module: 17 checked mallocs (Table 4 population; all 17 live in the
    // C++ implementation too). The *recovery* is what is buggy, which no
    // static return-check analysis can see -- exactly the paper's point.
    for (int i = 0; i < MiniBind::kDstAllocations; ++i) {
      b.AddSite({StrFormat("bind.dst.malloc%02d", i), "dst_lib_init", "malloc",
                 CheckPattern::kCheckZeroEq, {}});
    }
    // Table 4 populations: 6 unlink (all checked), 6 open (5 checked plainly
    // + 1 checked via helper => the analyzer's one false positive), 39 close.
    b.AddSite({"bind.journal.unlink", "clean_journal", "unlink", CheckPattern::kCheckEqAll, {-1}});
    for (int i = 0; i < 5; ++i) {
      b.AddSite({StrFormat("bind.unlink%d", i), StrFormat("zone_maint_%d", i / 3), "unlink",
                 CheckPattern::kCheckEqAll, {-1}});
    }
    for (int i = 0; i < 4; ++i) {
      b.AddSite({StrFormat("bind.open%d", i), StrFormat("conf_io_%d", i / 2), "open",
                 CheckPattern::kCheckIneq, {}});
    }
    b.AddSite({"bind.open_helper", "conf_io_2", "open", CheckPattern::kCheckViaHelper, {}});
    for (int i = 0; i < 38; ++i) {
      b.AddSite({StrFormat("bind.close%02d", i), StrFormat("sock_io_%d", i / 6), "close",
                 CheckPattern::kCheckEqAll, {-1}});
    }
    return new AppBinary(b.Build());
  }();
  return *binary;
}

MiniBind::MiniBind(VirtualFs* fs, VirtualNet* net, std::string confdir)
    : libc_(fs, net, kModule), confdir_(std::move(confdir)) {
  fs->MkDir(confdir_);
  RegisterCoverageBlocks();
}

MiniBind::~MiniBind() {
  for (void* p : dst_tables_) {
    libc_.Free(p);
  }
}

void MiniBind::RegisterCoverageBlocks() {
  struct BlockSpec {
    const char* id;
    bool recovery;
    int lines;
  };
  static const BlockSpec kBlocks[] = {
      {"bind.zone.body", false, 25},
      {"bind.zone.err_open", true, 5},
      {"bind.zone.err_read", true, 6},
      {"bind.zone.err_close", true, 4},
      {"bind.server.body", false, 16},
      {"bind.server.err_socket", true, 4},
      {"bind.server.err_bind", true, 5},
      {"bind.pump.body", false, 20},
      {"bind.pump.err_recv", true, 6},
      {"bind.pump.err_send", true, 5},
      {"bind.stats.body", false, 18},
      {"bind.dst.body", false, 22},
      {"bind.dst.err_alloc", true, 8},
      {"bind.journal.body", false, 10},
      {"bind.journal.err_unlink", true, 4},
      {"bind.resolve.body", false, 8},
      {"bind.resolve.nxdomain", true, 4},
  };
  for (const auto& blk : kBlocks) {
    coverage_.RegisterBlock(blk.id, blk.recovery, blk.lines);
  }
}

bool MiniBind::LoadZone(const std::string& path) {
  ScopedFrame frame(&libc_.stack(), kModule, "load_zone");
  coverage_.Hit("bind.zone.body");
  frame.set_offset(Site("bind.zone.open"));
  int fd = libc_.Open(path, kORdOnly);
  if (fd < 0) {
    coverage_.Hit("bind.zone.err_open");
    return false;
  }
  std::string data;
  char buf[512];
  while (true) {
    frame.set_offset(Site("bind.zone.read"));
    long n = libc_.Read(fd, buf, sizeof buf);
    if (n < 0) {
      if (libc_.verrno() == kEINTR) {
        continue;  // correct EINTR retry (recovery code)
      }
      coverage_.Hit("bind.zone.err_read");
      libc_.Close(fd);
      return false;
    }
    if (n == 0) {
      break;
    }
    data.append(buf, static_cast<size_t>(n));
  }
  frame.set_offset(Site("bind.zone.close"));
  if (libc_.Close(fd) == -1) {
    coverage_.Hit("bind.zone.err_close");
    return false;
  }
  for (const std::string& line : Split(data, '\n')) {
    auto fields = SplitWhitespace(line);
    if (fields.size() >= 2 && fields[0][0] != ';') {
      zone_[fields[0]] = fields[1];
    }
  }
  return true;
}

bool MiniBind::StartServer(int port) {
  ScopedFrame frame(&libc_.stack(), kModule, "start_server");
  coverage_.Hit("bind.server.body");
  frame.set_offset(Site("bind.server.socket"));
  server_fd_ = libc_.Socket();
  if (server_fd_ < 0) {
    coverage_.Hit("bind.server.err_socket");
    return false;
  }
  frame.set_offset(Site("bind.server.bind"));
  if (libc_.BindSocket(server_fd_, port) == -1) {
    coverage_.Hit("bind.server.err_bind");
    return false;
  }
  server_port_ = port;
  return true;
}

std::optional<std::string> MiniBind::Resolve(const std::string& name) {
  coverage_.Hit("bind.resolve.body");
  auto it = zone_.find(name);
  if (it == zone_.end()) {
    coverage_.Hit("bind.resolve.nxdomain");
    ++nxdomain_count_;
    return std::nullopt;
  }
  ++queries_served_;
  return it->second;
}

int MiniBind::PumpQueries() {
  ScopedFrame frame(&libc_.stack(), kModule, "pump_queries");
  coverage_.Hit("bind.pump.body");
  int processed = 0;
  while (true) {
    char buf[512];
    int src_port = -1;
    frame.set_offset(Site("bind.server.recvfrom"));
    long n = libc_.RecvFrom(server_fd_, buf, sizeof buf, &src_port);
    if (n < 0) {
      if (libc_.verrno() == kEAGAIN) {
        break;  // queue drained
      }
      coverage_.Hit("bind.pump.err_recv");
      break;
    }
    std::string msg(buf, static_cast<size_t>(n));
    std::string reply;
    if (msg == "STATS") {
      reply = HandleStatsRequest();
    } else if (StartsWith(msg, "Q ")) {
      auto answer = Resolve(msg.substr(2));
      reply = answer ? "A " + *answer : "NXDOMAIN";
    } else {
      reply = "FORMERR";
    }
    frame.set_offset(Site("bind.server.sendto"));
    long sent = libc_.SendTo(server_fd_, reply.data(), reply.size(), src_port);
    if (sent < 0) {
      coverage_.Hit("bind.pump.err_send");
    }
    ++processed;
  }
  return processed;
}

std::string MiniBind::HandleStatsRequest() {
  ScopedFrame frame(&libc_.stack(), kModule, "statschannel_render");
  coverage_.Hit("bind.stats.body");
  frame.set_offset(Site("bind.stats.newwriter"));
  VXmlWriter* writer = libc_.XmlNewTextWriterDoc();
  // BUG (Table 1): the writer is not checked. When xmlNewTextWriterDoc
  // fails while a user retrieves statistics over HTTP, the server crashes
  // (statschannel.c).
  frame.set_offset(Site("bind.stats.writeelem"));
  libc_.XmlWriterWriteElement(writer, "queries", StrFormat("%llu", (unsigned long long)queries_served_));
  libc_.XmlWriterWriteElement(writer, "nxdomain", StrFormat("%llu", (unsigned long long)nxdomain_count_));
  libc_.XmlWriterWriteElement(writer, "zones", StrFormat("%zu", zone_.size()));
  return libc_.XmlFreeTextWriter(writer);
}

bool MiniBind::DstLibInit() {
  ScopedFrame frame(&libc_.stack(), kModule, "dst_lib_init");
  coverage_.Hit("bind.dst.body");
  dst_tables_.clear();
  for (int i = 0; i < kDstAllocations; ++i) {
    frame.set_offset(Site(StrFormat("bind.dst.malloc%02d", i).c_str()));
    void* table = libc_.Malloc(128 + static_cast<unsigned long>(i) * 16);
    if (table == nullptr) {
      // The return IS checked -- but the recovery is wrong (Table 1,
      // dst_api.c): it tears down via dst_lib_destroy(), whose REQUIRE()
      // fires because dst_initialized is not set until init completes.
      coverage_.Hit("bind.dst.err_alloc");
      DstLibDestroy();
      return false;
    }
    dst_tables_.push_back(table);
  }
  dst_initialized_ = true;
  return true;
}

void MiniBind::DstLibDestroy() {
  // REQUIRE(dst_initialized) -- the first statement, as in dst_api.c.
  SimAssert(dst_initialized_, "dst_lib_destroy: REQUIRE(dst_initialized)");
  for (void* p : dst_tables_) {
    libc_.Free(p);
  }
  dst_tables_.clear();
  dst_initialized_ = false;
}

int MiniBind::CleanJournalFiles() {
  ScopedFrame frame(&libc_.stack(), kModule, "clean_journal");
  coverage_.Hit("bind.journal.body");
  int removed = 0;
  for (const std::string& name : libc_.fs()->ListDir(confdir_)) {
    if (!EndsWith(name, ".jnl")) {
      continue;
    }
    frame.set_offset(Site("bind.journal.unlink"));
    if (libc_.Unlink(confdir_ + "/" + name) == -1) {
      coverage_.Hit("bind.journal.err_unlink");
      continue;
    }
    ++removed;
  }
  return removed;
}

bool MiniBind::RunDefaultTestSuite() {
  libc_.fs()->WriteFile(confdir_ + "/example.zone",
                        "www.example.com 10.0.0.1\n"
                        "mail.example.com 10.0.0.2\n"
                        "; comment line\n"
                        "ns1.example.com 10.0.0.3\n");
  if (!LoadZone(confdir_ + "/example.zone")) {
    return false;
  }
  if (!StartServer(53)) {
    return false;
  }
  if (!DstLibInit()) {
    return false;
  }

  // A resolver client drives the query workload.
  VirtualLibc client(libc_.fs(), libc_.net(), "dig");
  int cfd = client.Socket();
  if (cfd < 0 || client.BindSocket(cfd, 5353) == -1) {
    return false;
  }
  const char* kQueries[] = {"Q www.example.com", "Q mail.example.com", "Q nope.example.com",
                            "STATS", "Q ns1.example.com"};
  for (const char* q : kQueries) {
    if (client.SendTo(cfd, q, std::strlen(q), 53) < 0) {
      return false;
    }
  }
  if (PumpQueries() != 5) {
    return false;
  }
  char buf[512];
  int replies = 0;
  while (client.RecvFrom(cfd, buf, sizeof buf, nullptr) >= 0) {
    ++replies;
  }
  if (replies != 5) {
    return false;
  }

  // Zone maintenance: journal cleanup.
  libc_.fs()->WriteFile(confdir_ + "/example.zone.jnl", "journal");
  if (CleanJournalFiles() != 1) {
    return false;
  }
  return true;
}

}  // namespace lfi
