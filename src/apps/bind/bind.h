// mini-BIND: the BIND 9.6.1 stand-in.
//
// A DNS server over the virtual UDP fabric: zone files are parsed from the
// virtual filesystem, queries are served from the zone table, and a
// statistics channel renders server counters as XML "over HTTP". It carries
// BIND's two Table 1 bugs at the same library calls:
//
//   - the stats channel crashes when xmlNewTextWriterDoc() fails while a
//     user retrieves statistics (the writer is used unchecked);
//   - dst_lib_init() *does* check its malloc() returns, but its recovery
//     path calls dst_lib_destroy(), whose first statement is a REQUIRE()
//     assertion that the dst module is initialized -- which it is not yet,
//     so the recovery itself aborts the process (buggy recovery code, the
//     paper's showcase of why recovery paths need testing).

#ifndef LFI_APPS_BIND_BIND_H_
#define LFI_APPS_BIND_BIND_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "apps/common/app_binary.h"
#include "coverage/coverage.h"
#include "vlib/virtual_libc.h"

namespace lfi {

const AppBinary& BindBinary();

class MiniBind {
 public:
  static constexpr const char* kModule = "mini-bind";
  static constexpr int kDstAllocations = 17;  // Table 4: 17 malloc sites

  MiniBind(VirtualFs* fs, VirtualNet* net, std::string confdir);
  ~MiniBind();

  VirtualLibc& libc() { return libc_; }
  CoverageMap& coverage() { return coverage_; }

  // Parses a zone file of "name value" lines into the zone table.
  bool LoadZone(const std::string& path);

  // Binds the server socket.
  bool StartServer(int port);
  // Drains and answers every pending query ("Q <name>" -> value or NXDOMAIN;
  // "STATS" -> the XML statistics document). Returns #messages processed.
  int PumpQueries();

  // Resolves one name locally (the query fast path).
  std::optional<std::string> Resolve(const std::string& name);

  // Renders the statistics channel document (the xmlNewTextWriterDoc bug).
  std::string HandleStatsRequest();

  // The dst crypto module: init checks every malloc but recovers wrongly.
  bool DstLibInit();
  void DstLibDestroy();
  bool dst_initialized() const { return dst_initialized_; }

  // Removes journal/temp files (the Table 4 unlink population's live sites).
  int CleanJournalFiles();

  // The default test suite (Table 3 workload).
  bool RunDefaultTestSuite();

  // --- warm-instance snapshot --------------------------------------------
  // dst_tables_ holds raw heap pointers owned by the virtual libc; the libc
  // restore is applied first (releasing post-snapshot blocks), then the
  // pointer vector itself is rolled back so both views stay consistent.
  struct Snapshot {
    VirtualLibc::Snapshot libc;
    CoverageMap coverage;
    std::map<std::string, std::string> zone;
    int server_fd = -1;
    int server_port = -1;
    uint64_t queries_served = 0;
    uint64_t nxdomain_count = 0;
    bool dst_initialized = false;
    std::vector<void*> dst_tables;
  };
  Snapshot TakeSnapshot() const {
    return {libc_.TakeSnapshot(), coverage_,        zone_,    server_fd_,       server_port_,
            queries_served_,      nxdomain_count_, dst_initialized_, dst_tables_};
  }
  bool Restore(const Snapshot& snapshot) {
    bool ok = libc_.Restore(snapshot.libc);
    coverage_ = snapshot.coverage;
    zone_ = snapshot.zone;
    server_fd_ = snapshot.server_fd;
    server_port_ = snapshot.server_port;
    queries_served_ = snapshot.queries_served;
    nxdomain_count_ = snapshot.nxdomain_count;
    dst_initialized_ = snapshot.dst_initialized;
    dst_tables_ = snapshot.dst_tables;
    return ok;
  }

 private:
  void RegisterCoverageBlocks();

  VirtualLibc libc_;
  CoverageMap coverage_;
  std::string confdir_;
  std::map<std::string, std::string> zone_;
  int server_fd_ = -1;
  int server_port_ = -1;
  uint64_t queries_served_ = 0;
  uint64_t nxdomain_count_ = 0;
  bool dst_initialized_ = false;
  std::vector<void*> dst_tables_;
};

}  // namespace lfi

#endif  // LFI_APPS_BIND_BIND_H_
