#include "apps/common/shard_supervisor.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#define LFI_HAVE_FORK 1
#endif

#include "util/failpoint.h"
#include "util/string_util.h"

namespace lfi {

const char* ChildExitName(ChildExit exit) {
  switch (exit) {
    case ChildExit::kClean:
      return "clean";
    case ChildExit::kNonZero:
      return "nonzero-exit";
    case ChildExit::kSignaled:
      return "signaled";
    case ChildExit::kTimedOut:
      return "timed-out";
    case ChildExit::kSpawnFailed:
      return "spawn-failed";
  }
  return "?";
}

namespace {

using Clock = std::chrono::steady_clock;

bool PathExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f != nullptr) {
    std::fclose(f);
  }
  return f != nullptr;
}

// What a respawned attempt actually runs: the journal left by the failed
// attempt is salvage, not garbage -- resume it (torn-tail recovery discards
// at most the record/extent being written when the child died, and a
// complete journal replays wholly from disk). The failpoint schedule is
// stripped: a retry models a replacement host, not one that fails forever.
CampaignSpec RespawnSpec(const CampaignSpec& spec) {
  CampaignSpec fresh = spec;
  fresh.failpoints.clear();
  fresh.resume = PathExists(fresh.journal_path);
  return fresh;
}

}  // namespace

#ifdef LFI_HAVE_FORK

namespace {

// Blocks SIGCHLD for the supervision loop's lifetime (restoring the prior
// mask on exit). With the signal blocked, a child exit that races a sweep is
// left pending and wakes the next sigtimedwait immediately -- the supervisor
// sleeps between events instead of polling, which matters on small hosts
// where a polling parent steals cycles from its own children.
struct SigchldBlock {
  sigset_t set{};
  sigset_t old{};
  SigchldBlock() {
    sigemptyset(&set);
    sigaddset(&set, SIGCHLD);
    sigprocmask(SIG_BLOCK, &set, &old);
  }
  ~SigchldBlock() { sigprocmask(SIG_SETMASK, &old, nullptr); }
};

struct Supervised {
  size_t slot = 0;    // position in the children list (reporting only)
  CampaignSpec spec;  // the original spec (attempt 1 runs it verbatim)
  std::string spec_file;
  pid_t pid = -1;
  Clock::time_point deadline{};
  Clock::time_point restart_at{};
  bool running = false;
  bool awaiting_restart = false;
  bool done = false;
  bool failed = false;
  size_t attempts = 0;
  uint64_t next_backoff_ms = 0;
  ChildExit last_exit = ChildExit::kClean;
  int status = 0;
};

constexpr uint64_t kBackoffCapMs = 10000;

}  // namespace

bool ShardSupervisor::Run(const std::vector<CampaignSpec>& children, std::string* error,
                          std::vector<Report>* reports) {
  auto fail = [&](std::string message) {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return false;
  };
  std::vector<Supervised> states(children.size());
  for (size_t shard = 0; shard < children.size(); ++shard) {
    states[shard].slot = shard;
    states[shard].spec = children[shard];
    states[shard].next_backoff_ms = options_.backoff_ms;
  }

  auto fill_reports = [&](bool fallback) {
    if (reports == nullptr) {
      return;
    }
    reports->clear();
    for (size_t shard = 0; shard < states.size(); ++shard) {
      Report report;
      report.shard = shard;
      report.attempts = states[shard].attempts;
      report.last_exit = states[shard].last_exit;
      report.status = states[shard].status;
      report.ran_in_process = fallback;
      reports->push_back(report);
    }
  };

  SigchldBlock sigchld;  // blocked for the whole loop; children unblock

  // Spawns one attempt. False only when fork itself fails -- the signal to
  // abandon process supervision and fall back in-process.
  auto spawn = [&](Supervised& state) -> bool {
    ++state.attempts;
    CampaignSpec spec = state.attempts == 1 ? state.spec : RespawnSpec(state.spec);
    if (FailpointFired("supervisor.fork")) {
      state.last_exit = ChildExit::kSpawnFailed;
      return false;
    }
    if (!options_.tool_path.empty()) {
      // Exec mode: the spec file is the wire format. Rewritten per attempt
      // (a respawn's spec differs: resume on, failpoints off).
      state.spec_file = spec.journal_path + ".spec";
      std::ofstream out(state.spec_file);
      out << spec.ToXml();
      if (!out.good()) {
        state.last_exit = ChildExit::kSpawnFailed;
        return false;
      }
    }
    pid_t pid = fork();
    if (pid < 0) {
      state.last_exit = ChildExit::kSpawnFailed;
      return false;
    }
    if (pid == 0) {
      // Child. The supervisor's signal mask is not its business; its stdout
      // joins stderr so the orchestrator's own stdout (possibly --json)
      // stays clean in both spawn modes.
      sigprocmask(SIG_SETMASK, &sigchld.old, nullptr);
      dup2(STDERR_FILENO, STDOUT_FILENO);
      if (!options_.tool_path.empty()) {
        // execlp: argv[0] may be a bare name found via PATH; exec the same
        // search.
        execlp(options_.tool_path.c_str(), options_.tool_path.c_str(), "run-spec",
               state.spec_file.c_str(), static_cast<char*>(nullptr));
        _exit(127);
      }
      // Fork-without-exec: this process IS the child. The forked image
      // inherited the parent's armed failpoints; the spec is authoritative
      // (the driver re-arms a non-empty schedule, replacing the set), so an
      // empty one must explicitly disarm or a stripped respawn would
      // re-fire the fault that killed attempt one.
      if (spec.failpoints.empty()) {
        Failpoints::Instance().Clear();
      }
      std::string child_error;
      bool ok = runner_ && runner_(spec, &child_error);
      if (!ok) {
        std::fprintf(stderr, "shard %zu: %s\n", state.slot,
                     runner_ ? child_error.c_str() : "no in-process runner");
      }
      std::_Exit(ok ? 0 : 1);
    }
    state.pid = pid;
    state.running = true;
    state.awaiting_restart = false;
    if (options_.child_timeout_ms != 0) {
      state.deadline = Clock::now() + std::chrono::milliseconds(options_.child_timeout_ms);
    }
    return true;
  };

  // A failed attempt either schedules a respawn (capped exponential
  // backoff) or, past max_retries, marks the child permanently failed.
  std::string first_error;
  auto on_failure = [&](size_t shard, Supervised& state) {
    state.running = false;
    if (state.attempts <= options_.max_retries) {
      state.awaiting_restart = true;
      state.restart_at = Clock::now() + std::chrono::milliseconds(state.next_backoff_ms);
      std::fprintf(stderr,
                   "supervisor: shard %zu attempt %zu %s (status %d); respawning in %llums\n",
                   shard, state.attempts, ChildExitName(state.last_exit), state.status,
                   static_cast<unsigned long long>(state.next_backoff_ms));
      state.next_backoff_ms = std::min<uint64_t>(state.next_backoff_ms * 2, kBackoffCapMs);
      return;
    }
    state.done = true;
    state.failed = true;
    if (first_error.empty()) {
      first_error = StrFormat(
          "shard %zu failed after %zu attempt(s): last attempt %s (status %d); its "
          "journal (if any) is left for inspection",
          shard, state.attempts, ChildExitName(state.last_exit), state.status);
    }
  };

  // Reaps started children (SIGKILL first) so the in-process fallback never
  // races a live child for the same journal file.
  auto kill_started = [&] {
    for (Supervised& state : states) {
      if (state.running) {
        kill(state.pid, SIGKILL);
        int status = 0;
        waitpid(state.pid, &status, 0);
        state.running = false;
      }
    }
  };

  // First spawn wave. A fork failure here (real or failpoint) degrades the
  // whole run to sequential in-process execution -- a slower campaign beats
  // a dead one, and the children that did start are killed and their
  // journals salvaged by the fallback's resume re-check.
  for (Supervised& state : states) {
    if (!spawn(state)) {
      kill_started();
      std::fprintf(stderr,
                   "supervisor: spawn failed (%s); running all %zu shard(s) "
                   "sequentially in-process\n",
                   ChildExitName(state.last_exit), states.size());
      bool ok = RunFallback(children, error, reports);
      return ok;
    }
  }

  // The supervision loop: non-blocking reaps, deadline kills, scheduled
  // respawns. A permanently failed child does not abort the sweep -- the
  // remaining children run to completion so their sealed journals survive
  // for a later resume.
  while (true) {
    for (size_t shard = 0; shard < states.size(); ++shard) {
      Supervised& state = states[shard];
      if (state.done) {
        continue;
      }
      if (state.awaiting_restart) {
        if (Clock::now() >= state.restart_at && !spawn(state)) {
          // Respawn-time fork failure: no processes of ours are running for
          // this shard; treat it as one more failed attempt.
          on_failure(shard, state);
        }
        continue;
      }
      int status = 0;
      pid_t reaped = waitpid(state.pid, &status, WNOHANG);
      if (reaped == state.pid) {
        state.running = false;
        if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
          state.last_exit = ChildExit::kClean;
          state.status = 0;
          state.done = true;
        } else if (WIFSIGNALED(status)) {
          state.last_exit = ChildExit::kSignaled;
          state.status = WTERMSIG(status);
          on_failure(shard, state);
        } else {
          state.last_exit = ChildExit::kNonZero;
          state.status = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
          on_failure(shard, state);
        }
        continue;
      }
      if (options_.child_timeout_ms != 0 && Clock::now() > state.deadline) {
        // Hung (or straggling) child: kill it and let the retry policy
        // decide. The sealed prefix of its journal survives the SIGKILL.
        kill(state.pid, SIGKILL);
        waitpid(state.pid, &status, 0);
        state.running = false;
        state.last_exit = ChildExit::kTimedOut;
        state.status = SIGKILL;
        on_failure(shard, state);
      }
    }
    // Completion is judged after the sweep, not before it: the sweep that
    // reaps the last child must break here instead of sleeping out a
    // heartbeat it will never be woken from (its SIGCHLD is already spent).
    bool all_done = true;
    for (const Supervised& state : states) {
      all_done &= state.done;
    }
    if (all_done) {
      break;
    }
    // Sleep until the nearest timed event (a deadline or a scheduled
    // respawn), capped at poll_interval_ms. An exiting child leaves SIGCHLD
    // pending, which wakes sigtimedwait immediately -- event-driven, not
    // polling, so the supervisor doesn't steal cycles from its own children
    // on small hosts.
    Clock::time_point next_event =
        Clock::now() + std::chrono::milliseconds(options_.poll_interval_ms);
    for (const Supervised& state : states) {
      if (state.done) {
        continue;
      }
      if (state.awaiting_restart) {
        next_event = std::min(next_event, state.restart_at);
      } else if (state.running && options_.child_timeout_ms != 0) {
        next_event = std::min(next_event, state.deadline);
      }
    }
    Clock::duration wait = next_event - Clock::now();
    if (wait > Clock::duration::zero()) {
#if defined(__linux__)
      auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(wait).count();
      struct timespec ts;
      ts.tv_sec = static_cast<time_t>(ns / 1000000000);
      ts.tv_nsec = static_cast<long>(ns % 1000000000);
      // EAGAIN (timed out) and EINTR both just mean "sweep again"; a pending
      // SIGCHLD is consumed here and the sweep's WNOHANG waitpid reaps it.
      sigtimedwait(&sigchld.set, nullptr, &ts);
#else
      // No sigtimedwait: short poll so child exits are still noticed fast.
      std::this_thread::sleep_for(
          std::min<Clock::duration>(wait, std::chrono::milliseconds(5)));
#endif
    }
  }

  fill_reports(/*fallback=*/false);
  if (!first_error.empty()) {
    return fail(std::move(first_error));
  }
  for (const Supervised& state : states) {
    if (!state.spec_file.empty()) {
      std::remove(state.spec_file.c_str());
    }
  }
  return true;
}

#else  // !LFI_HAVE_FORK

bool ShardSupervisor::Run(const std::vector<CampaignSpec>& children, std::string* error,
                          std::vector<Report>* reports) {
  // No processes to supervise: one thread per child, unsupervised (no
  // deadlines, no retries -- deterministic artifacts, no isolation).
  auto fail = [&](std::string message) {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return false;
  };
  std::vector<std::string> errors(children.size());
  std::vector<char> ok(children.size(), 1);
  std::vector<std::thread> threads;
  threads.reserve(children.size());
  for (size_t shard = 0; shard < children.size(); ++shard) {
    threads.emplace_back([&, shard] {
      if (!runner_ || !runner_(children[shard], &errors[shard])) {
        ok[shard] = 0;
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  if (reports != nullptr) {
    reports->clear();
    for (size_t shard = 0; shard < children.size(); ++shard) {
      Report report;
      report.shard = shard;
      report.attempts = 1;
      report.last_exit = ok[shard] ? ChildExit::kClean : ChildExit::kNonZero;
      report.status = ok[shard] ? 0 : 1;
      reports->push_back(report);
    }
  }
  for (size_t shard = 0; shard < children.size(); ++shard) {
    if (!ok[shard]) {
      return fail(StrFormat("shard %zu failed: %s; its journal (if any) is left for "
                            "inspection",
                            shard, errors[shard].c_str()));
    }
  }
  return true;
}

#endif  // LFI_HAVE_FORK

bool ShardSupervisor::RunFallback(const std::vector<CampaignSpec>& children,
                                  std::string* error, std::vector<Report>* reports) {
  auto fail = [&](std::string message) {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return false;
  };
  if (!runner_) {
    return fail("spawn failed and no in-process runner is available");
  }
  std::string saved_scope = Failpoints::Instance().scope();
  if (reports != nullptr) {
    reports->clear();
  }
  bool all_ok = true;
  std::string first_error;
  for (size_t shard = 0; shard < children.size(); ++shard) {
    // Sequential, stripped of failpoints, resume re-checked: a child killed
    // by the degraded switch-over picks its sealed journal back up.
    CampaignSpec spec = RespawnSpec(children[shard]);
    std::string child_error;
    bool ok = runner_(spec, &child_error);
    // The runner scopes the registry to the child it just ran; undo that so
    // the orchestrator's own (scopeless) evaluations stay unaffected.
    Failpoints::Instance().SetScope(saved_scope);
    if (reports != nullptr) {
      Report report;
      report.shard = shard;
      report.attempts = 1;
      report.last_exit = ok ? ChildExit::kClean : ChildExit::kNonZero;
      report.status = ok ? 0 : 1;
      report.ran_in_process = true;
      reports->push_back(report);
    }
    if (!ok) {
      all_ok = false;
      if (first_error.empty()) {
        first_error = StrFormat("shard %zu failed in-process after spawn failure: %s; its "
                                "journal (if any) is left for inspection",
                                shard, child_error.c_str());
      }
    }
  }
  if (!all_ok) {
    return fail(std::move(first_error));
  }
  return true;
}

}  // namespace lfi
