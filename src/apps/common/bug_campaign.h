// The §7.1 testing campaign: what "LFI entirely on its own" runs.
//
// For each target system the campaign
//   1. profiles the libraries (shared through the AnalysisCache),
//   2. runs the call-site analyzer on the application binary and generates
//      injection scenarios for the unchecked sites (C_not),
//   3. runs each scenario against the system's default workload under the
//      controller, recording crashes, and
//   4. follows up with random injection (the way the MySQL and dst bugs were
//      found: buggy *recovery* sits behind correctly checked calls, which no
//      static classification flags), plus an integrity check for silent data
//      loss (the Git setenv bug).
//
// Scenarios are independent controller runs, so every campaign executes on
// the CampaignEngine's worker pool; `CampaignConfig::workers` picks the
// degree of parallelism and the result is identical for any worker count.
// The result is the Table 1 bug list, deduplicated by crash site.

#ifndef LFI_APPS_COMMON_BUG_CAMPAIGN_H_
#define LFI_APPS_COMMON_BUG_CAMPAIGN_H_

#include <vector>

#include "core/campaign_engine.h"

namespace lfi {

struct CampaignConfig {
  int workers = 1;  // CampaignEngine worker pool; <= 0 = one per hardware thread
  // Runs every generated scenario instead of stopping the fuzz phases at the
  // historical bug counts. The dedup makes the result a superset of the
  // default run; throughput benchmarks use this so serial and parallel runs
  // execute identical work.
  bool exhaustive = false;
};

std::vector<FoundBug> RunGitCampaign(const CampaignConfig& config = {});
std::vector<FoundBug> RunMysqlCampaign(const CampaignConfig& config = {});
std::vector<FoundBug> RunBindCampaign(const CampaignConfig& config = {});
std::vector<FoundBug> RunPbftCampaign(const CampaignConfig& config = {});

// All four systems; returns the deduplicated union.
std::vector<FoundBug> RunFullCampaign(const CampaignConfig& config = {});

}  // namespace lfi

#endif  // LFI_APPS_COMMON_BUG_CAMPAIGN_H_
