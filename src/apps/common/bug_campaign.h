// The §7.1 testing campaign: what "LFI entirely on its own" runs.
//
// For each target system the campaign
//   1. profiles the libraries (from their binaries),
//   2. runs the call-site analyzer on the application binary and generates
//      injection scenarios for the unchecked sites (C_not),
//   3. runs each scenario against the system's default workload under the
//      controller, recording crashes, and
//   4. follows up with random injection (the way the MySQL and dst bugs were
//      found: buggy *recovery* sits behind correctly checked calls, which no
//      static classification flags), plus an integrity check for silent data
//      loss (the Git setenv bug).
//
// The result is the Table 1 bug list, deduplicated by crash site.

#ifndef LFI_APPS_COMMON_BUG_CAMPAIGN_H_
#define LFI_APPS_COMMON_BUG_CAMPAIGN_H_

#include <string>
#include <tuple>
#include <vector>

#include "vlib/sim_crash.h"

namespace lfi {

struct FoundBug {
  std::string system;       // "git", "mysql", "bind", "pbft"
  std::string kind;         // "SIGSEGV", "double mutex unlock", "data loss", ...
  std::string where;        // crash site / corruption description
  std::string injected;     // the fault that exposed it, e.g. "opendir=NULL@list_branches"
  bool operator<(const FoundBug& o) const {
    return std::tie(system, kind, where) < std::tie(o.system, o.kind, o.where);
  }
};

std::vector<FoundBug> RunGitCampaign();
std::vector<FoundBug> RunMysqlCampaign();
std::vector<FoundBug> RunBindCampaign();
std::vector<FoundBug> RunPbftCampaign();

// All four systems; returns the deduplicated union.
std::vector<FoundBug> RunFullCampaign();

}  // namespace lfi

#endif  // LFI_APPS_COMMON_BUG_CAMPAIGN_H_
