// The §7.1 testing campaign: what "LFI entirely on its own" runs.
//
// For each target system the campaign
//   1. profiles the libraries (shared through the AnalysisCache),
//   2. runs the call-site analyzer on the application binary and generates
//      injection scenarios for the unchecked sites (C_not),
//   3. runs each scenario against the system's default workload under the
//      controller, recording crashes, and
//   4. follows up with random injection (the way the MySQL and dst bugs were
//      found: buggy *recovery* sits behind correctly checked calls, which no
//      static classification flags), plus an integrity check for silent data
//      loss (the Git setenv bug).
//
// Everything below is a compatibility wrapper: the campaign surface proper
// is CampaignSpec (campaign_spec.h) -- one declarative description of a
// campaign -- executed by CampaignDriver (campaign_driver.h), which owns
// source construction, engine options, journaling, resume, and reporting.
// Each historical free function builds the equivalent spec and runs the
// driver, so existing call sites compile and behave unchanged.

#ifndef LFI_APPS_COMMON_BUG_CAMPAIGN_H_
#define LFI_APPS_COMMON_BUG_CAMPAIGN_H_

#include <optional>
#include <string>
#include <vector>

#include "apps/common/campaign_spec.h"
#include "core/campaign_engine.h"

namespace lfi {

struct CampaignConfig {
  int workers = 1;  // CampaignEngine worker pool; <= 0 = one per hardware thread
  // Runs every generated scenario instead of stopping the fuzz phases at the
  // historical bug counts. The dedup makes the result a superset of the
  // default run; throughput benchmarks use this so serial and parallel runs
  // execute identical work.
  bool exhaustive = false;
  // Non-empty: persist the campaign to a journal at this path; with resume
  // also set, replay an existing journal first and continue where it
  // stopped (core/journal.h). Ignored by RunFullCampaign -- the union
  // campaign interleaves four engines and has no single job stream.
  std::string journal_path = {};
  bool resume = false;
  size_t abort_after_records = 0;  // kill-and-resume test hook
};

std::vector<FoundBug> RunGitCampaign(const CampaignConfig& config = {});
std::vector<FoundBug> RunMysqlCampaign(const CampaignConfig& config = {});
std::vector<FoundBug> RunBindCampaign(const CampaignConfig& config = {});
std::vector<FoundBug> RunPbftCampaign(const CampaignConfig& config = {});

// All four systems; returns the deduplicated union.
std::vector<FoundBug> RunFullCampaign(const CampaignConfig& config = {});

// --- Feedback-driven exploration -------------------------------------------

// ExploreStrategy and its name table live in campaign_spec.h (included
// above); this header re-exports them for source compatibility.

struct ExploreConfig {
  int workers = 1;
  ExploreStrategy strategy = ExploreStrategy::kExhaustive;
  // Scenario budget. 0 = the strategy's natural size: everything the
  // analyzer generated for exhaustive, 64 scenarios for random/coverage.
  size_t budget = 0;
  uint64_t seed = 1;  // drives random selection and per-job Runtime seeds
  // Non-empty: persist the exploration to a campaign journal at this path;
  // with resume also set, replay an existing journal first and continue
  // where it stopped (core/journal.h). Resume requires the same system,
  // strategy, budget, and seed the journal header records -- lfi_tool's
  // `resume` subcommand reads them back from the header.
  std::string journal_path = {};
  bool resume = false;
  size_t abort_after_records = 0;  // kill-and-resume test hook
};

// Runs the chosen strategy against one system's default workload and returns
// bugs, cumulative coverage, and the number of scenarios executed. Same
// seed + strategy + budget => bit-identical results at any worker count.
ExplorationResult ExploreGitCampaign(const ExploreConfig& config = {});
ExplorationResult ExploreMysqlCampaign(const ExploreConfig& config = {});
ExplorationResult ExploreBindCampaign(const ExploreConfig& config = {});
ExplorationResult ExplorePbftCampaign(const ExploreConfig& config = {});

// Dispatch by system name (any CampaignSystemNames() member); nullopt for an
// unknown system.
std::optional<ExplorationResult> ExploreCampaign(const std::string& system,
                                                 const ExploreConfig& config);

// --- Campaign journal workflows ---------------------------------------------

// The per-system JobResult runner the campaigns stream through: the default
// workload harness that `lfi_tool replay` and JournalSource-seeded runs use
// to execute a journaled scenario. `explore_workload` selects the (larger)
// exploration workload where the two differ (pbft). Null for unknown systems.
CampaignEngine::ResultRunner SystemJobRunner(const std::string& system,
                                             bool explore_workload = true);

// Resumes the campaign a journal header describes (command, system,
// strategy, budget, seed are read back from the file): re-runs it with
// `workers` workers, replaying the journal and continuing where it stopped.
// The result is bit-identical to the uninterrupted run. Nullopt (with
// *error set) on unreadable journals or unknown systems. `metadata`, when
// non-null, receives the journal header (so callers need not load the file
// again just to describe the campaign).
std::optional<ExplorationResult> ResumeCampaign(const std::string& journal_path, int workers,
                                                std::string* error = nullptr,
                                                JournalMetadata* metadata = nullptr);

}  // namespace lfi

#endif  // LFI_APPS_COMMON_BUG_CAMPAIGN_H_
