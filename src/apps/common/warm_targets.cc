#include "apps/common/warm_targets.h"

#include <utility>

#include "apps/bfs/bfs.h"
#include "apps/bind/bind.h"
#include "apps/git/git.h"
#include "apps/mysql/mysql.h"
#include "apps/pbft/pbft.h"
#include "core/controller.h"
#include "core/distributed.h"
#include "util/string_util.h"
#include "vlib/vfs.h"
#include "vlib/vnet.h"

namespace lfi {
namespace {

// The run's behavioural identity for the feedback loop: the exact fault
// sequence injected, plus the crash site when the run died.
std::string OutcomeFingerprint(TestController& controller, const TestOutcome& outcome) {
  std::string fp =
      controller.runtime() != nullptr ? controller.runtime()->log().Fingerprint() : "";
  if (outcome.crashed()) {
    fp += "!" + outcome.crash_where;
  }
  return fp;
}

// The controller's runtime outlives RunTest, so the job's injection log can
// be moved out instead of copied -- the controller dies with the core call.
void MoveLogInto(JobResult* result, TestController& controller) {
  if (controller.runtime() != nullptr) {
    result->log = std::move(controller.runtime()->mutable_log());
  }
}

}  // namespace

// --- runner cores ------------------------------------------------------------

JobResult RunGitJobOn(MiniGit& git, const CampaignJob& job) {
  JobResult result;
  TestController controller(job.scenario, SeededOptions(job.seed));
  TestOutcome outcome =
      controller.RunTest(&git.libc(), [&] { return git.RunDefaultTestSuite(); });
  if (outcome.crashed()) {
    result.bugs.push_back(
        {"git", CrashKindName(outcome.crash_kind), outcome.crash_where, job.label});
  } else if (outcome.injections > 0 && !git.Fsck()) {
    // The fault was absorbed but the repository is corrupt: silent data
    // loss (the setenv/hook bug).
    result.bugs.push_back(
        {"git", "data loss", "repository corrupted by hook environment", job.label});
  }
  result.coverage = std::move(git.coverage());
  result.fingerprint = OutcomeFingerprint(controller, outcome);
  result.injections = outcome.injections;
  MoveLogInto(&result, controller);
  return result;
}

JobResult RunMysqlJobOn(MiniMysql& mysql, const CampaignJob& job) {
  JobResult result;
  TestController controller(job.scenario, SeededOptions(job.seed));
  TestOutcome outcome = controller.RunTest(&mysql.libc(), [&] {
    mysql.libc().fs()->WriteFile("/mysql/share/errmsg.sys",
                                 "OK\nCan't create table\nDuplicate key\n");
    if (!mysql.Startup()) {
      return false;
    }
    return mysql.MergeBig();
  });
  if (outcome.crashed()) {
    result.bugs.push_back(
        {"mysql", CrashKindName(outcome.crash_kind), outcome.crash_where, job.label});
  }
  result.coverage = std::move(mysql.coverage());
  result.fingerprint = OutcomeFingerprint(controller, outcome);
  result.injections = outcome.injections;
  MoveLogInto(&result, controller);
  return result;
}

JobResult RunBindJobOn(MiniBind& bind, const CampaignJob& job) {
  JobResult result;
  TestController controller(job.scenario, SeededOptions(job.seed));
  TestOutcome outcome =
      controller.RunTest(&bind.libc(), [&] { return bind.RunDefaultTestSuite(); });
  if (outcome.crashed()) {
    result.bugs.push_back(
        {"bind", CrashKindName(outcome.crash_kind), outcome.crash_where, job.label});
  }
  result.coverage = std::move(bind.coverage());
  result.fingerprint = OutcomeFingerprint(controller, outcome);
  result.injections = outcome.injections;
  MoveLogInto(&result, controller);
  return result;
}

JobResult RunBindDstJobOn(MiniBind& bind, const CampaignJob& job) {
  JobResult result;
  TestController controller(job.scenario, SeededOptions(job.seed));
  TestOutcome outcome = controller.RunTest(&bind.libc(), [&] { return bind.DstLibInit(); });
  if (outcome.crashed()) {
    result.bugs.push_back(
        {"bind", CrashKindName(outcome.crash_kind), outcome.crash_where, job.label});
  }
  result.coverage = std::move(bind.coverage());
  result.fingerprint = OutcomeFingerprint(controller, outcome);
  result.injections = outcome.injections;
  MoveLogInto(&result, controller);
  return result;
}

JobResult RunPbftJobOn(PbftCluster& cluster, const CampaignJob& job, int requests,
                       int max_ticks) {
  JobResult result;
  TestController controller(job.scenario, SeededOptions(job.seed));
  TestOutcome outcome = controller.RunTest(&cluster.replica(0).libc(), [&] {
    cluster.RunWorkload(requests, max_ticks);
    cluster.replica(0).Shutdown();
    return cluster.client().completed() >= requests;
  });
  if (outcome.crashed()) {
    result.bugs.push_back(
        {"pbft", CrashKindName(outcome.crash_kind), outcome.crash_where, job.label});
  } else if (cluster.crashed()) {
    result.bugs.push_back({"pbft", "SIGSEGV", cluster.crash_reason(), job.label});
  }
  result.coverage = cluster.Coverage();
  result.fingerprint = OutcomeFingerprint(controller, outcome);
  result.injections = outcome.injections;
  MoveLogInto(&result, controller);
  return result;
}

JobResult RunPbftDistributedJobOn(PbftCluster& cluster, const CampaignJob& job) {
  JobResult result;
  RandomLossController controller(0.35, job.seed);
  std::vector<std::unique_ptr<Runtime>> runtimes;
  for (int i = 0; i < cluster.n(); ++i) {
    cluster.replica(i).libc().SetService(DistributedController::kServiceName, &controller);
    runtimes.push_back(std::make_unique<Runtime>(job.scenario));
    cluster.replica(i).libc().set_interposer(runtimes.back().get());
  }
  cluster.RunWorkload(/*requests=*/30, /*max_ticks=*/4000);
  if (cluster.crashed()) {
    result.bugs.push_back({"pbft", "SIGSEGV", cluster.crash_reason(), job.label});
  }
  result.coverage = cluster.Coverage();
  for (const auto& runtime : runtimes) {
    std::string fp = runtime->log().Fingerprint();
    if (!fp.empty()) {
      if (!result.fingerprint.empty()) {
        result.fingerprint += "|";
      }
      result.fingerprint += fp;
    }
    result.injections += runtime->injections();
    // One journaled log for the whole cluster, in replica order; the
    // per-record process name keeps the replicas apart.
    for (const InjectionRecord& record : runtime->log().records()) {
      result.log.Record(record);
    }
  }
  if (cluster.crashed()) {
    result.fingerprint += "!" + cluster.crash_reason();
  }
  // Detach the interposers before the runtimes go out of scope: a warm
  // instance must never carry a dangling interposer into its Reset().
  for (int i = 0; i < cluster.n(); ++i) {
    cluster.replica(i).libc().set_interposer(nullptr);
  }
  return result;
}

JobResult RunBfsJobOn(BfsCluster& cluster, const CampaignJob& job, int max_ticks) {
  JobResult result;
  TestController controller(job.scenario, SeededOptions(job.seed));
  TestOutcome outcome = controller.RunTest(&cluster.server().libc(), [&] {
    cluster.RunWorkload(max_ticks);
    return cluster.AllClientsDone();
  });
  if (outcome.crashed()) {
    result.bugs.push_back(
        {"bfs", CrashKindName(outcome.crash_kind), outcome.crash_where, job.label});
  } else if (cluster.crashed()) {
    result.bugs.push_back({"bfs", "SIGSEGV", cluster.crash_reason(), job.label});
  } else if (outcome.injections > 0) {
    // The faults were absorbed and every client got its answers; the oracle
    // decides whether the store still matches the acknowledged history.
    std::string inconsistency = cluster.CheckConsistency();
    if (!inconsistency.empty()) {
      result.bugs.push_back({"bfs", "consistency", inconsistency, job.label});
    }
  }
  result.coverage = cluster.Coverage();
  result.fingerprint = OutcomeFingerprint(controller, outcome);
  result.injections = outcome.injections;
  MoveLogInto(&result, controller);
  return result;
}

JobResult RunBfsMuxJobOn(BfsCluster& cluster, const CampaignJob& job) {
  JobResult result;
  VirtualNet* net = cluster.net();
  // Seed-derived fault rates; Reset() restores the snapshot's zeroes, and
  // rearming here is deterministic, so warm and cold runs stay bit-identical.
  net->set_partial_send_probability(0.01 * static_cast<double>(1 + job.seed % 6));
  net->set_partial_recv_probability(0.01 * static_cast<double>(1 + (job.seed / 6) % 5));
  uint64_t sends_before = net->partial_send_count();
  uint64_t recvs_before = net->partial_recv_count();
  cluster.RunWorkload(/*max_ticks=*/1200);
  net->set_partial_send_probability(0.0);
  net->set_partial_recv_probability(0.0);
  uint64_t faults = (net->partial_send_count() - sends_before) +
                    (net->partial_recv_count() - recvs_before);
  if (cluster.crashed()) {
    result.bugs.push_back({"bfs", "SIGSEGV", cluster.crash_reason(), job.label});
  } else if (faults > 0) {
    std::string inconsistency = cluster.CheckConsistency();
    if (!inconsistency.empty()) {
      result.bugs.push_back({"bfs", "consistency", inconsistency, job.label});
    }
  }
  result.coverage = cluster.Coverage();
  result.fingerprint = StrFormat("mux:%llu", static_cast<unsigned long long>(faults));
  if (cluster.crashed()) {
    result.fingerprint += "!" + cluster.crash_reason();
  }
  result.injections = faults;
  return result;
}

// --- cold one-shot runners ---------------------------------------------------

JobResult RunGitJob(const CampaignJob& job) {
  VirtualFs fs;
  VirtualNet net;
  MiniGit git(&fs, &net, "/repo");
  return RunGitJobOn(git, job);
}

JobResult RunMysqlJob(const CampaignJob& job) {
  VirtualFs fs;
  VirtualNet net;
  MiniMysql mysql(&fs, &net, "/mysql");
  return RunMysqlJobOn(mysql, job);
}

JobResult RunBindJob(const CampaignJob& job) {
  VirtualFs fs;
  VirtualNet net;
  MiniBind bind(&fs, &net, "/etc/bind");
  return RunBindJobOn(bind, job);
}

JobResult RunBindDstJob(const CampaignJob& job) {
  VirtualFs fs;
  VirtualNet net;
  MiniBind bind(&fs, &net, "/etc/bind");
  return RunBindDstJobOn(bind, job);
}

namespace {

JobResult RunPbftJobWith(const CampaignJob& job, int requests, int max_ticks) {
  VirtualFs fs;
  VirtualNet net;
  PbftConfig pbft_config;
  PbftCluster cluster(&fs, &net, pbft_config);
  if (!cluster.Start()) {
    return JobResult{};
  }
  return RunPbftJobOn(cluster, job, requests, max_ticks);
}

BfsConfig BfsConfigFor(int rounds) {
  BfsConfig config;
  config.rounds = rounds;
  return config;
}

JobResult RunBfsJobWith(const CampaignJob& job, int rounds, int max_ticks) {
  VirtualFs fs;
  VirtualNet net;
  BfsCluster cluster(&fs, &net, BfsConfigFor(rounds));
  if (!cluster.Start()) {
    return JobResult{};
  }
  return RunBfsJobOn(cluster, job, max_ticks);
}

}  // namespace

JobResult RunPbftJob(const CampaignJob& job) {
  return RunPbftJobWith(job, /*requests=*/8, /*max_ticks=*/2000);
}

JobResult RunPbftExploreJob(const CampaignJob& job) {
  return RunPbftJobWith(job, /*requests=*/20, /*max_ticks=*/3000);
}

JobResult RunPbftDistributedJob(const CampaignJob& job) {
  VirtualFs fs;
  VirtualNet net;
  PbftConfig pbft_config;
  pbft_config.debug_build = false;
  PbftCluster cluster(&fs, &net, pbft_config);
  if (!cluster.Start()) {
    return JobResult{};
  }
  return RunPbftDistributedJobOn(cluster, job);
}

JobResult RunBfsJob(const CampaignJob& job) {
  return RunBfsJobWith(job, /*rounds=*/2, /*max_ticks=*/600);
}

JobResult RunBfsExploreJob(const CampaignJob& job) {
  return RunBfsJobWith(job, /*rounds=*/3, /*max_ticks=*/900);
}

JobResult RunBfsMuxJob(const CampaignJob& job) {
  VirtualFs fs;
  VirtualNet net;
  BfsCluster cluster(&fs, &net, BfsConfigFor(/*rounds=*/2));
  if (!cluster.Start()) {
    return JobResult{};
  }
  return RunBfsMuxJobOn(cluster, job);
}

// --- warm targets ------------------------------------------------------------

namespace {

// One warm instance: the target plus its private virtual environment, frozen
// at the post-setup snapshot point, replaying the shared core per job.
template <typename App>
class SnapshotWarmTarget : public WarmTarget {
 public:
  using Build = std::function<std::unique_ptr<App>(VirtualFs*, VirtualNet*)>;
  using Core = std::function<JobResult(App&, const CampaignJob&)>;

  SnapshotWarmTarget(const Build& build, Core core)
      : app_(build(&fs_, &net_)),
        core_(std::move(core)),
        fs_snapshot_(fs_.TakeSnapshot()),
        net_snapshot_(net_.TakeSnapshot()),
        app_snapshot_(app_->TakeSnapshot()) {}

  JobResult Run(const CampaignJob& job) override { return core_(*app_, job); }

  bool Reset() override {
    fs_.Restore(fs_snapshot_);
    net_.Restore(net_snapshot_);
    return app_->Restore(app_snapshot_);
  }

 private:
  VirtualFs fs_;
  VirtualNet net_;
  std::unique_ptr<App> app_;
  Core core_;
  // Declared after app_: snapshots are taken once construction (the setup
  // phase, injection disarmed -- no interposer is installed yet) completed.
  VirtualFs::Snapshot fs_snapshot_;
  VirtualNet::Snapshot net_snapshot_;
  typename App::Snapshot app_snapshot_;
};

std::unique_ptr<PbftCluster> BuildStartedCluster(VirtualFs* fs, VirtualNet* net,
                                                 bool debug_build) {
  PbftConfig config;
  config.debug_build = debug_build;
  auto cluster = std::make_unique<PbftCluster>(fs, net, config);
  // Start() binds the replica and client sockets; with no interposer
  // installed it cannot fail, matching the cold runners' disarmed bring-up.
  cluster->Start();
  return cluster;
}

}  // namespace

WarmPool::Factory GitWarmFactory() {
  return [] {
    return std::make_unique<SnapshotWarmTarget<MiniGit>>(
        [](VirtualFs* fs, VirtualNet* net) {
          return std::make_unique<MiniGit>(fs, net, "/repo");
        },
        RunGitJobOn);
  };
}

WarmPool::Factory MysqlWarmFactory() {
  return [] {
    return std::make_unique<SnapshotWarmTarget<MiniMysql>>(
        [](VirtualFs* fs, VirtualNet* net) {
          return std::make_unique<MiniMysql>(fs, net, "/mysql");
        },
        RunMysqlJobOn);
  };
}

WarmPool::Factory BindWarmFactory() {
  return [] {
    return std::make_unique<SnapshotWarmTarget<MiniBind>>(
        [](VirtualFs* fs, VirtualNet* net) {
          return std::make_unique<MiniBind>(fs, net, "/etc/bind");
        },
        RunBindJobOn);
  };
}

WarmPool::Factory BindDstWarmFactory() {
  return [] {
    return std::make_unique<SnapshotWarmTarget<MiniBind>>(
        [](VirtualFs* fs, VirtualNet* net) {
          return std::make_unique<MiniBind>(fs, net, "/etc/bind");
        },
        RunBindDstJobOn);
  };
}

WarmPool::Factory PbftWarmFactory(int requests, int max_ticks) {
  return [requests, max_ticks] {
    return std::make_unique<SnapshotWarmTarget<PbftCluster>>(
        [](VirtualFs* fs, VirtualNet* net) {
          return BuildStartedCluster(fs, net, /*debug_build=*/false);
        },
        [requests, max_ticks](PbftCluster& cluster, const CampaignJob& job) {
          return RunPbftJobOn(cluster, job, requests, max_ticks);
        });
  };
}

WarmPool::Factory PbftDistributedWarmFactory() {
  return [] {
    return std::make_unique<SnapshotWarmTarget<PbftCluster>>(
        [](VirtualFs* fs, VirtualNet* net) {
          return BuildStartedCluster(fs, net, /*debug_build=*/false);
        },
        RunPbftDistributedJobOn);
  };
}

namespace {

std::unique_ptr<BfsCluster> BuildStartedBfsCluster(VirtualFs* fs, VirtualNet* net,
                                                   int rounds) {
  auto cluster = std::make_unique<BfsCluster>(fs, net, BfsConfigFor(rounds));
  // Same disarmed-bring-up contract as pbft: no interposer is installed yet,
  // so socket setup, volume format, and lease-key derivation cannot fail.
  cluster->Start();
  return cluster;
}

}  // namespace

WarmPool::Factory BfsWarmFactory(int rounds, int max_ticks) {
  return [rounds, max_ticks] {
    return std::make_unique<SnapshotWarmTarget<BfsCluster>>(
        [rounds](VirtualFs* fs, VirtualNet* net) {
          return BuildStartedBfsCluster(fs, net, rounds);
        },
        [max_ticks](BfsCluster& cluster, const CampaignJob& job) {
          return RunBfsJobOn(cluster, job, max_ticks);
        });
  };
}

WarmPool::Factory BfsMuxWarmFactory() {
  return [] {
    return std::make_unique<SnapshotWarmTarget<BfsCluster>>(
        [](VirtualFs* fs, VirtualNet* net) {
          return BuildStartedBfsCluster(fs, net, /*rounds=*/2);
        },
        RunBfsMuxJobOn);
  };
}

// --- ExecutionLayer ----------------------------------------------------------

ExecutionLayer::ExecutionLayer(const std::string& system, bool explore_workload,
                               bool cold_start)
    : cold_start_(cold_start) {
  if (cold_start_) {
    if (system == "git") {
      runner_ = RunGitJob;
    } else if (system == "mysql") {
      runner_ = RunMysqlJob;
    } else if (system == "bind") {
      runner_ = RunBindJob;
      bind_dst_runner_ = RunBindDstJob;
    } else if (system == "pbft") {
      runner_ = explore_workload ? RunPbftExploreJob : RunPbftJob;
      pbft_distributed_runner_ = RunPbftDistributedJob;
    } else if (system == "bfs") {
      runner_ = explore_workload ? RunBfsExploreJob : RunBfsJob;
      bfs_mux_runner_ = RunBfsMuxJob;
    }
    return;
  }
  if (system == "git") {
    pool_ = std::make_unique<WarmPool>(GitWarmFactory());
  } else if (system == "mysql") {
    pool_ = std::make_unique<WarmPool>(MysqlWarmFactory());
  } else if (system == "bind") {
    pool_ = std::make_unique<WarmPool>(BindWarmFactory());
    bind_dst_pool_ = std::make_unique<WarmPool>(BindDstWarmFactory());
    bind_dst_runner_ = bind_dst_pool_->AsRunner();
  } else if (system == "pbft") {
    pool_ = std::make_unique<WarmPool>(explore_workload ? PbftWarmFactory(20, 3000)
                                                        : PbftWarmFactory(8, 2000));
    pbft_distributed_pool_ = std::make_unique<WarmPool>(PbftDistributedWarmFactory());
    pbft_distributed_runner_ = pbft_distributed_pool_->AsRunner();
  } else if (system == "bfs") {
    pool_ = std::make_unique<WarmPool>(explore_workload ? BfsWarmFactory(3, 900)
                                                        : BfsWarmFactory(2, 600));
    bfs_mux_pool_ = std::make_unique<WarmPool>(BfsMuxWarmFactory());
    bfs_mux_runner_ = bfs_mux_pool_->AsRunner();
  }
  if (pool_ != nullptr) {
    runner_ = pool_->AsRunner();
  }
}

WarmPool::Stats ExecutionLayer::pool_stats() const {
  return pool_ != nullptr ? pool_->stats() : WarmPool::Stats{};
}

}  // namespace lfi
