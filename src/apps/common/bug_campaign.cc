#include "apps/common/bug_campaign.h"

#include <memory>
#include <set>

#include "analysis/callsite_analyzer.h"
#include "apps/bind/bind.h"
#include "apps/git/git.h"
#include "apps/mysql/mysql.h"
#include "apps/pbft/pbft.h"
#include "core/controller.h"
#include "core/custom_triggers.h"
#include "core/distributed.h"
#include "core/scenario_gen.h"
#include "core/stock_triggers.h"
#include "util/errno_codes.h"
#include "util/string_util.h"
#include "vlib/library_profiles.h"

namespace lfi {
namespace {

std::string SiteLabel(const CallSiteReport& report) {
  return StrFormat("%s@%s+0x%x", report.site.function.c_str(), report.site.enclosing.c_str(),
                   report.site.offset);
}

// Runs the analyzer over every profiled function of `binary` and returns the
// generated single-site scenarios for the non-fully-checked sites.
std::vector<std::pair<Scenario, std::string>> AnalyzerScenarios(const AppBinary& binary,
                                                                const FaultProfile& profile) {
  std::vector<std::pair<Scenario, std::string>> out;
  CallSiteAnalyzer analyzer;
  for (const auto& [name, fn] : profile.functions()) {
    for (const CallSiteReport& report :
         analyzer.Analyze(binary.image(), name, fn.ErrorCodes())) {
      if (report.check_class == CheckClass::kFull) {
        continue;
      }
      Scenario scenario = GenerateSiteScenario(report, profile);
      if (!scenario.functions().empty()) {
        out.emplace_back(std::move(scenario), SiteLabel(report));
      }
    }
  }
  return out;
}

Scenario RandomScenario(const std::string& function, int64_t retval, int errno_value,
                        double probability, uint64_t seed) {
  Scenario s;
  TriggerDecl decl;
  decl.id = "rand";
  decl.class_name = "RandomTrigger";
  auto args = std::make_unique<XmlNode>("args");
  args->AddChild("probability")->set_text(StrFormat("%g", probability));
  args->AddChild("seed")->set_text(StrFormat("%llu", (unsigned long long)seed));
  decl.args = std::shared_ptr<XmlNode>(args.release());
  s.AddTrigger(std::move(decl));
  FunctionAssoc assoc;
  assoc.function = function;
  assoc.retval = retval;
  assoc.errno_value = errno_value;
  assoc.triggers.push_back(TriggerRef{"rand", false});
  s.AddFunction(std::move(assoc));
  return s;
}

Scenario CallCountScenario(const std::string& function, uint64_t count, int64_t retval,
                           int errno_value) {
  Scenario s;
  TriggerDecl decl;
  decl.id = "nth";
  decl.class_name = "CallCountTrigger";
  auto args = std::make_unique<XmlNode>("args");
  args->AddChild("count")->set_text(StrFormat("%llu", (unsigned long long)count));
  decl.args = std::shared_ptr<XmlNode>(args.release());
  s.AddTrigger(std::move(decl));
  FunctionAssoc assoc;
  assoc.function = function;
  assoc.retval = retval;
  assoc.errno_value = errno_value;
  assoc.triggers.push_back(TriggerRef{"nth", false});
  s.AddFunction(std::move(assoc));
  return s;
}

}  // namespace

std::vector<FoundBug> RunGitCampaign() {
  EnsureStockTriggersRegistered();
  std::set<FoundBug> bugs;
  FaultProfile profile = LibcProfile();

  for (auto& [scenario, label] : AnalyzerScenarios(GitBinary(), profile)) {
    VirtualFs fs;
    VirtualNet net;
    MiniGit git(&fs, &net, "/repo");
    TestController controller(scenario);
    TestOutcome outcome =
        controller.RunTest(&git.libc(), [&] { return git.RunDefaultTestSuite(); });
    if (outcome.crashed()) {
      bugs.insert({"git", CrashKindName(outcome.crash_kind), outcome.crash_where, label});
    } else if (outcome.injections > 0 && !git.Fsck()) {
      // The fault was absorbed but the repository is corrupt: silent data
      // loss (the setenv/hook bug).
      bugs.insert({"git", "data loss", "repository corrupted by hook environment", label});
    }
  }
  return {bugs.begin(), bugs.end()};
}

std::vector<FoundBug> RunMysqlCampaign() {
  EnsureStockTriggersRegistered();
  std::set<FoundBug> bugs;
  FaultProfile profile = LibcProfile();

  auto workload = [](MiniMysql& mysql) {
    mysql.libc().fs()->WriteFile("/mysql/share/errmsg.sys",
                                 "OK\nCan't create table\nDuplicate key\n");
    if (!mysql.Startup()) {
      return false;
    }
    return mysql.MergeBig();
  };

  // Phase 1: analyzer-generated scenarios.
  for (auto& [scenario, label] : AnalyzerScenarios(MysqlBinary(), profile)) {
    VirtualFs fs;
    VirtualNet net;
    MiniMysql mysql(&fs, &net, "/mysql");
    TestController controller(scenario);
    TestOutcome outcome = controller.RunTest(&mysql.libc(), [&] { return workload(mysql); });
    if (outcome.crashed()) {
      bugs.insert({"mysql", CrashKindName(outcome.crash_kind), outcome.crash_where, label});
    }
  }

  // Phase 2: random injection (the paper ran 1,000 random tests against
  // MySQL and distilled 35 crashes into the two Table 1 bugs).
  int runs = 0;
  for (const char* function : {"close", "read"}) {
    const FunctionProfile* fn = profile.Find(function);
    int64_t retval = fn->errors.front().retval;
    int errno_value = fn->errors.front().errnos.empty() ? 0 : kEIO;
    for (uint64_t seed = 1; seed <= 50; ++seed) {
      ++runs;
      VirtualFs fs;
      VirtualNet net;
      MiniMysql mysql(&fs, &net, "/mysql");
      TestController controller(RandomScenario(function, retval, errno_value, 0.1, seed));
      TestOutcome outcome = controller.RunTest(&mysql.libc(), [&] { return workload(mysql); });
      if (outcome.crashed()) {
        bugs.insert({"mysql", CrashKindName(outcome.crash_kind), outcome.crash_where,
                     StrFormat("random 10%% on %s (seed %llu)", function,
                               (unsigned long long)seed)});
      }
    }
  }
  (void)runs;
  return {bugs.begin(), bugs.end()};
}

std::vector<FoundBug> RunBindCampaign() {
  EnsureStockTriggersRegistered();
  std::set<FoundBug> bugs;
  FaultProfile libc_profile = LibcProfile();
  FaultProfile libxml_profile = LibxmlProfile();

  auto workload = [](MiniBind& bind) { return bind.RunDefaultTestSuite(); };

  for (const FaultProfile* profile : {&libc_profile, &libxml_profile}) {
    for (auto& [scenario, label] : AnalyzerScenarios(BindBinary(), *profile)) {
      VirtualFs fs;
      VirtualNet net;
      MiniBind bind(&fs, &net, "/etc/bind");
      TestController controller(scenario);
      TestOutcome outcome = controller.RunTest(&bind.libc(), [&] { return workload(bind); });
      if (outcome.crashed()) {
        bugs.insert({"bind", CrashKindName(outcome.crash_kind), outcome.crash_where, label});
      }
    }
  }

  // Exhaustive malloc sweep over dst_lib_init: the call *is* checked (so the
  // analyzer reports it fully checked), but the recovery path is broken.
  for (uint64_t k = 1; k <= MiniBind::kDstAllocations; ++k) {
    VirtualFs fs;
    VirtualNet net;
    MiniBind bind(&fs, &net, "/etc/bind");
    TestController controller(CallCountScenario("malloc", k, 0, kENOMEM));
    TestOutcome outcome = controller.RunTest(&bind.libc(), [&] { return bind.DstLibInit(); });
    if (outcome.crashed()) {
      bugs.insert({"bind", CrashKindName(outcome.crash_kind), outcome.crash_where,
                   StrFormat("malloc #%llu = NULL in dst_lib_init", (unsigned long long)k)});
    }
  }
  return {bugs.begin(), bugs.end()};
}

std::vector<FoundBug> RunPbftCampaign() {
  EnsureStockTriggersRegistered();
  std::set<FoundBug> bugs;
  FaultProfile profile = LibcProfile();

  // Phase 1: analyzer scenarios against replica 0 (shutdown checkpoint bug).
  for (auto& [scenario, label] : AnalyzerScenarios(PbftBinary(), profile)) {
    VirtualFs fs;
    VirtualNet net;
    PbftConfig config;
    PbftCluster cluster(&fs, &net, config);
    if (!cluster.Start()) {
      continue;
    }
    TestController controller(scenario);
    TestOutcome outcome = controller.RunTest(&cluster.replica(0).libc(), [&] {
      cluster.RunWorkload(/*requests=*/8, /*max_ticks=*/2000);
      cluster.replica(0).Shutdown();
      return cluster.client().completed() >= 8;
    });
    if (outcome.crashed()) {
      bugs.insert({"pbft", CrashKindName(outcome.crash_kind), outcome.crash_where, label});
    } else if (cluster.crashed()) {
      bugs.insert({"pbft", "SIGSEGV", cluster.crash_reason(), label});
    }
  }

  // Phase 2: distributed random faults in sendto/recvfrom across replicas
  // (release build). Message loss leaves prepare certificates without their
  // payloads; the crash manifests during the view change.
  Scenario dist;
  {
    TriggerDecl decl;
    decl.id = "dist";
    decl.class_name = "DistributedTrigger";
    dist.AddTrigger(decl);
    for (const char* function : {"sendto", "recvfrom"}) {
      FunctionAssoc assoc;
      assoc.function = function;
      assoc.retval = -1;
      assoc.errno_value = kEIO;
      assoc.triggers.push_back(TriggerRef{"dist", false});
      dist.AddFunction(assoc);
    }
  }
  for (uint64_t seed = 1; seed <= 20 && bugs.size() < 2; ++seed) {
    VirtualFs fs;
    VirtualNet net;
    PbftConfig config;
    config.debug_build = false;
    PbftCluster cluster(&fs, &net, config);
    if (!cluster.Start()) {
      continue;
    }
    RandomLossController controller(0.35, seed);
    std::vector<std::unique_ptr<Runtime>> runtimes;
    for (int i = 0; i < cluster.n(); ++i) {
      cluster.replica(i).libc().SetService(DistributedController::kServiceName, &controller);
      runtimes.push_back(std::make_unique<Runtime>(dist));
      cluster.replica(i).libc().set_interposer(runtimes.back().get());
    }
    cluster.RunWorkload(/*requests=*/30, /*max_ticks=*/4000);
    if (cluster.crashed()) {
      bugs.insert({"pbft", "SIGSEGV", cluster.crash_reason(),
                   StrFormat("random sendto/recvfrom faults, seed %llu",
                             (unsigned long long)seed)});
    }
  }
  return {bugs.begin(), bugs.end()};
}

std::vector<FoundBug> RunFullCampaign() {
  std::set<FoundBug> all;
  for (auto campaign : {RunGitCampaign, RunMysqlCampaign, RunBindCampaign, RunPbftCampaign}) {
    for (const FoundBug& bug : campaign()) {
      all.insert(bug);
    }
  }
  return {all.begin(), all.end()};
}

}  // namespace lfi
