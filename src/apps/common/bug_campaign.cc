// Compatibility wrappers: each historical campaign entry point builds the
// equivalent CampaignSpec and hands it to CampaignDriver. The per-system
// harnesses, job lists, and engine wiring all live in campaign_driver.cc.

#include "apps/common/bug_campaign.h"

#include <stdexcept>
#include <utility>

#include "apps/common/campaign_driver.h"

namespace lfi {
namespace {

CampaignSpec Table1Spec(const char* system, const CampaignConfig& config) {
  CampaignSpec spec;
  spec.system = system;
  spec.mode = CampaignMode::kTable1;
  spec.exhaustive = config.exhaustive;
  spec.workers = config.workers;
  spec.journal_path = config.journal_path;
  spec.resume = config.resume;
  spec.abort_after_records = config.abort_after_records;
  return spec;
}

CampaignSpec ExploreSpec(const char* system, const ExploreConfig& config) {
  CampaignSpec spec;
  spec.system = system;
  spec.mode = CampaignMode::kExplore;
  spec.strategy = config.strategy;
  spec.budget = config.budget;
  spec.seed = config.seed;
  spec.workers = config.workers;
  spec.journal_path = config.journal_path;
  spec.resume = config.resume;
  spec.abort_after_records = config.abort_after_records;
  return spec;
}

// The historical functions threw engine exceptions (journal divergence,
// I/O) instead of returning errors; rethrow what the driver caught so
// existing callers and tests see the same behaviour.
CampaignOutcome RunOrThrow(CampaignSpec spec) {
  CampaignDriver driver(std::move(spec));
  std::string error;
  auto outcome = driver.Run(&error);
  if (!outcome) {
    throw std::runtime_error(error);
  }
  return std::move(*outcome);
}

ExplorationResult ToExploration(CampaignOutcome outcome) {
  ExplorationResult result;
  result.bugs = std::move(outcome.bugs);
  result.coverage = std::move(outcome.coverage);
  result.scenarios_run = outcome.scenarios_run;
  return result;
}

}  // namespace

std::vector<FoundBug> RunGitCampaign(const CampaignConfig& config) {
  return RunOrThrow(Table1Spec("git", config)).bugs;
}

std::vector<FoundBug> RunMysqlCampaign(const CampaignConfig& config) {
  return RunOrThrow(Table1Spec("mysql", config)).bugs;
}

std::vector<FoundBug> RunBindCampaign(const CampaignConfig& config) {
  return RunOrThrow(Table1Spec("bind", config)).bugs;
}

std::vector<FoundBug> RunPbftCampaign(const CampaignConfig& config) {
  return RunOrThrow(Table1Spec("pbft", config)).bugs;
}

std::vector<FoundBug> RunFullCampaign(const CampaignConfig& config) {
  CampaignConfig per_system = config;
  per_system.journal_path.clear();
  per_system.resume = false;
  return RunOrThrow(Table1Spec("all", per_system)).bugs;
}

ExplorationResult ExploreGitCampaign(const ExploreConfig& config) {
  return ToExploration(RunOrThrow(ExploreSpec("git", config)));
}

ExplorationResult ExploreMysqlCampaign(const ExploreConfig& config) {
  return ToExploration(RunOrThrow(ExploreSpec("mysql", config)));
}

ExplorationResult ExploreBindCampaign(const ExploreConfig& config) {
  return ToExploration(RunOrThrow(ExploreSpec("bind", config)));
}

ExplorationResult ExplorePbftCampaign(const ExploreConfig& config) {
  return ToExploration(RunOrThrow(ExploreSpec("pbft", config)));
}

std::optional<ExplorationResult> ExploreCampaign(const std::string& system,
                                                 const ExploreConfig& config) {
  if (!IsCampaignSystem(system)) {
    return std::nullopt;
  }
  return ToExploration(RunOrThrow(ExploreSpec(system.c_str(), config)));
}

std::optional<ExplorationResult> ResumeCampaign(const std::string& journal_path, int workers,
                                                std::string* error,
                                                JournalMetadata* metadata) {
  CampaignSpec spec;
  spec.mode = CampaignMode::kResume;
  spec.journal_path = journal_path;
  spec.workers = workers;
  CampaignDriver driver(std::move(spec));
  auto outcome = driver.Run(error);
  if (!outcome) {
    return std::nullopt;
  }
  if (metadata != nullptr) {
    *metadata = outcome->metadata;
  }
  return ToExploration(std::move(*outcome));
}

}  // namespace lfi
