#include "apps/common/bug_campaign.h"

#include <memory>
#include <set>

#include "apps/bind/bind.h"
#include "apps/git/git.h"
#include "apps/mysql/mysql.h"
#include "apps/pbft/pbft.h"
#include "core/analysis_cache.h"
#include "core/controller.h"
#include "core/custom_triggers.h"
#include "core/distributed.h"
#include "core/stock_triggers.h"
#include "util/errno_codes.h"
#include "util/string_util.h"
#include "vlib/library_profiles.h"

namespace lfi {
namespace {

// Ground-truth profiles, memoized process-wide so concurrent workers and
// repeated campaigns share one copy (stub_gen/profiler round-trip them
// exactly, so ground truth and recovered profiles are interchangeable).
const FaultProfile& CachedLibcProfile() {
  return AnalysisCache::Instance().Profile("libc", LibcProfile);
}

const FaultProfile& CachedLibxmlProfile() {
  return AnalysisCache::Instance().Profile("libxml2", LibxmlProfile);
}

}  // namespace

std::vector<FoundBug> RunGitCampaign(const CampaignConfig& config) {
  EnsureStockTriggersRegistered();
  std::vector<CampaignJob> jobs = AnalyzerJobs(GitBinary().image(), CachedLibcProfile());

  CampaignEngine engine({.workers = config.workers});
  return engine.Run(jobs, [](const CampaignJob& job) {
    std::vector<FoundBug> bugs;
    VirtualFs fs;
    VirtualNet net;
    MiniGit git(&fs, &net, "/repo");
    TestController controller(job.scenario, SeededOptions(job.seed));
    TestOutcome outcome =
        controller.RunTest(&git.libc(), [&] { return git.RunDefaultTestSuite(); });
    if (outcome.crashed()) {
      bugs.push_back({"git", CrashKindName(outcome.crash_kind), outcome.crash_where, job.label});
    } else if (outcome.injections > 0 && !git.Fsck()) {
      // The fault was absorbed but the repository is corrupt: silent data
      // loss (the setenv/hook bug).
      bugs.push_back({"git", "data loss", "repository corrupted by hook environment", job.label});
    }
    return bugs;
  });
}

std::vector<FoundBug> RunMysqlCampaign(const CampaignConfig& config) {
  EnsureStockTriggersRegistered();
  const FaultProfile& profile = CachedLibcProfile();

  auto workload = [](MiniMysql& mysql) {
    mysql.libc().fs()->WriteFile("/mysql/share/errmsg.sys",
                                 "OK\nCan't create table\nDuplicate key\n");
    if (!mysql.Startup()) {
      return false;
    }
    return mysql.MergeBig();
  };

  // Phase 1: analyzer-generated scenarios.
  std::vector<CampaignJob> jobs = AnalyzerJobs(MysqlBinary().image(), profile);

  // Phase 2: random injection (the paper ran 1,000 random tests against
  // MySQL and distilled 35 crashes into the two Table 1 bugs).
  for (const char* function : {"close", "read"}) {
    const FunctionProfile* fn = profile.Find(function);
    int64_t retval = fn->errors.front().retval;
    int errno_value = fn->errors.front().errnos.empty() ? 0 : kEIO;
    for (uint64_t seed = 1; seed <= 50; ++seed) {
      CampaignJob job;
      job.scenario = MakeRandomScenario(function, retval, errno_value, 0.1, seed);
      job.label =
          StrFormat("random 10%% on %s (seed %llu)", function, (unsigned long long)seed);
      job.seed = seed;
      jobs.push_back(std::move(job));
    }
  }

  CampaignEngine engine({.workers = config.workers});
  return engine.Run(jobs, [&workload](const CampaignJob& job) {
    std::vector<FoundBug> bugs;
    VirtualFs fs;
    VirtualNet net;
    MiniMysql mysql(&fs, &net, "/mysql");
    TestController controller(job.scenario, SeededOptions(job.seed));
    TestOutcome outcome = controller.RunTest(&mysql.libc(), [&] { return workload(mysql); });
    if (outcome.crashed()) {
      bugs.push_back(
          {"mysql", CrashKindName(outcome.crash_kind), outcome.crash_where, job.label});
    }
    return bugs;
  });
}

std::vector<FoundBug> RunBindCampaign(const CampaignConfig& config) {
  EnsureStockTriggersRegistered();

  // Analyzer scenarios against both library profiles.
  std::vector<CampaignJob> jobs = AnalyzerJobs(BindBinary().image(), CachedLibcProfile());
  for (CampaignJob& job : AnalyzerJobs(BindBinary().image(), CachedLibxmlProfile())) {
    jobs.push_back(std::move(job));
  }

  // Exhaustive malloc sweep over dst_lib_init: the call *is* checked (so the
  // analyzer reports it fully checked), but the recovery path is broken.
  // These run a different workload, so they carry their own runner.
  for (uint64_t k = 1; k <= MiniBind::kDstAllocations; ++k) {
    CampaignJob job;
    job.scenario = MakeCallCountScenario("malloc", k, 0, kENOMEM);
    job.label = StrFormat("malloc #%llu = NULL in dst_lib_init", (unsigned long long)k);
    job.seed = k;
    job.run = [](const CampaignJob& self) {
      std::vector<FoundBug> bugs;
      VirtualFs fs;
      VirtualNet net;
      MiniBind bind(&fs, &net, "/etc/bind");
      TestController controller(self.scenario, SeededOptions(self.seed));
      TestOutcome outcome = controller.RunTest(&bind.libc(), [&] { return bind.DstLibInit(); });
      if (outcome.crashed()) {
        bugs.push_back(
            {"bind", CrashKindName(outcome.crash_kind), outcome.crash_where, self.label});
      }
      return bugs;
    };
    jobs.push_back(std::move(job));
  }

  CampaignEngine engine({.workers = config.workers});
  return engine.Run(jobs, [](const CampaignJob& job) {
    std::vector<FoundBug> bugs;
    VirtualFs fs;
    VirtualNet net;
    MiniBind bind(&fs, &net, "/etc/bind");
    TestController controller(job.scenario, SeededOptions(job.seed));
    TestOutcome outcome =
        controller.RunTest(&bind.libc(), [&] { return bind.RunDefaultTestSuite(); });
    if (outcome.crashed()) {
      bugs.push_back({"bind", CrashKindName(outcome.crash_kind), outcome.crash_where, job.label});
    }
    return bugs;
  });
}

std::vector<FoundBug> RunPbftCampaign(const CampaignConfig& config) {
  EnsureStockTriggersRegistered();

  // Phase 1: analyzer scenarios against replica 0 (shutdown checkpoint bug).
  std::vector<CampaignJob> jobs = AnalyzerJobs(PbftBinary().image(), CachedLibcProfile());

  // Phase 2: distributed random faults in sendto/recvfrom across replicas
  // (release build). Message loss leaves prepare certificates without their
  // payloads; the crash manifests during the view change. The serial
  // campaign stopped fuzzing once two bugs were on the list; max_bugs plus
  // skip_when_saturated reproduces that cutoff deterministically.
  Scenario dist;
  {
    TriggerDecl decl;
    decl.id = "dist";
    decl.class_name = "DistributedTrigger";
    dist.AddTrigger(decl);
    for (const char* function : {"sendto", "recvfrom"}) {
      FunctionAssoc assoc;
      assoc.function = function;
      assoc.retval = -1;
      assoc.errno_value = kEIO;
      assoc.triggers.push_back(TriggerRef{"dist", false});
      dist.AddFunction(assoc);
    }
  }
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    CampaignJob job;
    job.scenario = dist;
    job.label =
        StrFormat("random sendto/recvfrom faults, seed %llu", (unsigned long long)seed);
    job.seed = seed;
    job.skip_when_saturated = !config.exhaustive;
    job.run = [](const CampaignJob& self) {
      std::vector<FoundBug> bugs;
      VirtualFs fs;
      VirtualNet net;
      PbftConfig pbft_config;
      pbft_config.debug_build = false;
      PbftCluster cluster(&fs, &net, pbft_config);
      if (!cluster.Start()) {
        return bugs;
      }
      RandomLossController controller(0.35, self.seed);
      std::vector<std::unique_ptr<Runtime>> runtimes;
      for (int i = 0; i < cluster.n(); ++i) {
        cluster.replica(i).libc().SetService(DistributedController::kServiceName, &controller);
        runtimes.push_back(std::make_unique<Runtime>(self.scenario));
        cluster.replica(i).libc().set_interposer(runtimes.back().get());
      }
      cluster.RunWorkload(/*requests=*/30, /*max_ticks=*/4000);
      if (cluster.crashed()) {
        bugs.push_back({"pbft", "SIGSEGV", cluster.crash_reason(), self.label});
      }
      return bugs;
    };
    jobs.push_back(std::move(job));
  }

  CampaignEngine engine(
      {.workers = config.workers, .max_bugs = config.exhaustive ? size_t{0} : size_t{2}});
  return engine.Run(jobs, [](const CampaignJob& job) {
    std::vector<FoundBug> bugs;
    VirtualFs fs;
    VirtualNet net;
    PbftConfig pbft_config;
    PbftCluster cluster(&fs, &net, pbft_config);
    if (!cluster.Start()) {
      return bugs;
    }
    TestController controller(job.scenario, SeededOptions(job.seed));
    TestOutcome outcome = controller.RunTest(&cluster.replica(0).libc(), [&] {
      cluster.RunWorkload(/*requests=*/8, /*max_ticks=*/2000);
      cluster.replica(0).Shutdown();
      return cluster.client().completed() >= 8;
    });
    if (outcome.crashed()) {
      bugs.push_back({"pbft", CrashKindName(outcome.crash_kind), outcome.crash_where, job.label});
    } else if (cluster.crashed()) {
      bugs.push_back({"pbft", "SIGSEGV", cluster.crash_reason(), job.label});
    }
    return bugs;
  });
}

std::vector<FoundBug> RunFullCampaign(const CampaignConfig& config) {
  std::set<FoundBug> all;
  for (auto campaign : {RunGitCampaign, RunMysqlCampaign, RunBindCampaign, RunPbftCampaign}) {
    for (const FoundBug& bug : campaign(config)) {
      all.insert(bug);
    }
  }
  return {all.begin(), all.end()};
}

}  // namespace lfi
