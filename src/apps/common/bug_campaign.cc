#include "apps/common/bug_campaign.h"

#include <cstdlib>
#include <memory>
#include <set>
#include <stdexcept>

#include "apps/bind/bind.h"
#include "apps/git/git.h"
#include "apps/mysql/mysql.h"
#include "apps/pbft/pbft.h"
#include "core/analysis_cache.h"
#include "core/controller.h"
#include "core/custom_triggers.h"
#include "core/distributed.h"
#include "core/exploration.h"
#include "core/journal.h"
#include "core/stock_triggers.h"
#include "util/errno_codes.h"
#include "util/string_util.h"
#include "vlib/library_profiles.h"

namespace lfi {
namespace {

// Ground-truth profiles, memoized process-wide so concurrent workers and
// repeated campaigns share one copy (stub_gen/profiler round-trip them
// exactly, so ground truth and recovered profiles are interchangeable).
const FaultProfile& CachedLibcProfile() {
  return AnalysisCache::Instance().Profile("libc", LibcProfile);
}

const FaultProfile& CachedLibxmlProfile() {
  return AnalysisCache::Instance().Profile("libxml2", LibxmlProfile);
}

// The run's behavioural identity for the feedback loop: the exact fault
// sequence injected, plus the crash site when the run died.
std::string OutcomeFingerprint(TestController& controller, const TestOutcome& outcome) {
  std::string fp =
      controller.runtime() != nullptr ? controller.runtime()->log().Fingerprint() : "";
  if (outcome.crashed()) {
    fp += "!" + outcome.crash_where;
  }
  return fp;
}

// --- per-system job runners (JobResult: bugs + coverage + fingerprint) -----

JobResult RunGitJob(const CampaignJob& job) {
  JobResult result;
  VirtualFs fs;
  VirtualNet net;
  MiniGit git(&fs, &net, "/repo");
  TestController controller(job.scenario, SeededOptions(job.seed));
  TestOutcome outcome =
      controller.RunTest(&git.libc(), [&] { return git.RunDefaultTestSuite(); });
  if (outcome.crashed()) {
    result.bugs.push_back(
        {"git", CrashKindName(outcome.crash_kind), outcome.crash_where, job.label});
  } else if (outcome.injections > 0 && !git.Fsck()) {
    // The fault was absorbed but the repository is corrupt: silent data
    // loss (the setenv/hook bug).
    result.bugs.push_back(
        {"git", "data loss", "repository corrupted by hook environment", job.label});
  }
  result.coverage = git.coverage();
  result.fingerprint = OutcomeFingerprint(controller, outcome);
  result.injections = outcome.injections;
  if (controller.runtime() != nullptr) {
    result.log = controller.runtime()->log();
  }
  return result;
}

JobResult RunMysqlJob(const CampaignJob& job) {
  JobResult result;
  VirtualFs fs;
  VirtualNet net;
  MiniMysql mysql(&fs, &net, "/mysql");
  TestController controller(job.scenario, SeededOptions(job.seed));
  TestOutcome outcome = controller.RunTest(&mysql.libc(), [&] {
    mysql.libc().fs()->WriteFile("/mysql/share/errmsg.sys",
                                 "OK\nCan't create table\nDuplicate key\n");
    if (!mysql.Startup()) {
      return false;
    }
    return mysql.MergeBig();
  });
  if (outcome.crashed()) {
    result.bugs.push_back(
        {"mysql", CrashKindName(outcome.crash_kind), outcome.crash_where, job.label});
  }
  result.coverage = mysql.coverage();
  result.fingerprint = OutcomeFingerprint(controller, outcome);
  result.injections = outcome.injections;
  if (controller.runtime() != nullptr) {
    result.log = controller.runtime()->log();
  }
  return result;
}

JobResult RunBindJob(const CampaignJob& job) {
  JobResult result;
  VirtualFs fs;
  VirtualNet net;
  MiniBind bind(&fs, &net, "/etc/bind");
  TestController controller(job.scenario, SeededOptions(job.seed));
  TestOutcome outcome =
      controller.RunTest(&bind.libc(), [&] { return bind.RunDefaultTestSuite(); });
  if (outcome.crashed()) {
    result.bugs.push_back(
        {"bind", CrashKindName(outcome.crash_kind), outcome.crash_where, job.label});
  }
  result.coverage = bind.coverage();
  result.fingerprint = OutcomeFingerprint(controller, outcome);
  result.injections = outcome.injections;
  if (controller.runtime() != nullptr) {
    result.log = controller.runtime()->log();
  }
  return result;
}

// The BIND dst_lib_init malloc sweep runs a different workload, so those
// jobs are self-contained.
JobResult RunBindDstJob(const CampaignJob& job) {
  JobResult result;
  VirtualFs fs;
  VirtualNet net;
  MiniBind bind(&fs, &net, "/etc/bind");
  TestController controller(job.scenario, SeededOptions(job.seed));
  TestOutcome outcome = controller.RunTest(&bind.libc(), [&] { return bind.DstLibInit(); });
  if (outcome.crashed()) {
    result.bugs.push_back(
        {"bind", CrashKindName(outcome.crash_kind), outcome.crash_where, job.label});
  }
  result.coverage = bind.coverage();
  result.fingerprint = OutcomeFingerprint(controller, outcome);
  result.injections = outcome.injections;
  if (controller.runtime() != nullptr) {
    result.log = controller.runtime()->log();
  }
  return result;
}

// One pbft scenario against replica 0, the cluster on the default workload
// plus the graceful shutdown (the unchecked-fopen path). `requests` sizes
// the workload: the Table 1 campaign uses 8; exploration uses enough to
// cross the checkpoint interval so checkpoint recovery code is reachable.
JobResult RunPbftJobWith(const CampaignJob& job, int requests, int max_ticks) {
  JobResult result;
  VirtualFs fs;
  VirtualNet net;
  PbftConfig pbft_config;
  PbftCluster cluster(&fs, &net, pbft_config);
  if (!cluster.Start()) {
    return result;
  }
  TestController controller(job.scenario, SeededOptions(job.seed));
  TestOutcome outcome = controller.RunTest(&cluster.replica(0).libc(), [&] {
    cluster.RunWorkload(requests, max_ticks);
    cluster.replica(0).Shutdown();
    return cluster.client().completed() >= requests;
  });
  if (outcome.crashed()) {
    result.bugs.push_back(
        {"pbft", CrashKindName(outcome.crash_kind), outcome.crash_where, job.label});
  } else if (cluster.crashed()) {
    result.bugs.push_back({"pbft", "SIGSEGV", cluster.crash_reason(), job.label});
  }
  result.coverage = cluster.Coverage();
  result.fingerprint = OutcomeFingerprint(controller, outcome);
  result.injections = outcome.injections;
  if (controller.runtime() != nullptr) {
    result.log = controller.runtime()->log();
  }
  return result;
}

JobResult RunPbftJob(const CampaignJob& job) {
  return RunPbftJobWith(job, /*requests=*/8, /*max_ticks=*/2000);
}

JobResult RunPbftExploreJob(const CampaignJob& job) {
  return RunPbftJobWith(job, /*requests=*/20, /*max_ticks=*/3000);
}

// Distributed random message loss across all replicas (release build): the
// §7.3 phase that exposes the view-change bug.
JobResult RunPbftDistributedJob(const CampaignJob& job) {
  JobResult result;
  VirtualFs fs;
  VirtualNet net;
  PbftConfig pbft_config;
  pbft_config.debug_build = false;
  PbftCluster cluster(&fs, &net, pbft_config);
  if (!cluster.Start()) {
    return result;
  }
  RandomLossController controller(0.35, job.seed);
  std::vector<std::unique_ptr<Runtime>> runtimes;
  for (int i = 0; i < cluster.n(); ++i) {
    cluster.replica(i).libc().SetService(DistributedController::kServiceName, &controller);
    runtimes.push_back(std::make_unique<Runtime>(job.scenario));
    cluster.replica(i).libc().set_interposer(runtimes.back().get());
  }
  cluster.RunWorkload(/*requests=*/30, /*max_ticks=*/4000);
  if (cluster.crashed()) {
    result.bugs.push_back({"pbft", "SIGSEGV", cluster.crash_reason(), job.label});
  }
  result.coverage = cluster.Coverage();
  for (const auto& runtime : runtimes) {
    std::string fp = runtime->log().Fingerprint();
    if (!fp.empty()) {
      if (!result.fingerprint.empty()) {
        result.fingerprint += "|";
      }
      result.fingerprint += fp;
    }
    result.injections += runtime->injections();
    // One journaled log for the whole cluster, in replica order; the
    // per-record process name keeps the replicas apart.
    for (const InjectionRecord& record : runtime->log().records()) {
      result.log.Record(record);
    }
  }
  if (cluster.crashed()) {
    result.fingerprint += "!" + cluster.crash_reason();
  }
  return result;
}

// --- exploration plumbing ---------------------------------------------------

std::vector<std::string> SiteFunctions(const std::vector<CallSiteReport>& reports) {
  std::set<std::string> functions;
  for (const CallSiteReport& report : reports) {
    functions.insert(report.site.function);
  }
  return {functions.begin(), functions.end()};
}

// Engine options for a journaled campaign (Table 1 mode). The metadata is
// the campaign's identity: `lfi_tool resume` reads it back, and the engine
// refuses to resume a journal recorded under different values.
CampaignEngine::Options CampaignEngineOptions(const CampaignConfig& config,
                                              const char* system, size_t max_bugs) {
  CampaignEngine::Options options;
  options.workers = config.workers;
  options.max_bugs = max_bugs;
  options.journal_path = config.journal_path;
  options.resume = config.resume;
  options.abort_after_records = config.abort_after_records;
  if (!config.journal_path.empty()) {
    options.journal_meta = {{"command", "campaign"},
                            {"system", system},
                            {"exhaustive", config.exhaustive ? "true" : "false"}};
  }
  return options;
}

// `profiles` covers every library the app links (bind spans libc +
// libxml2); reports and exhaustive jobs concatenate in profile-list order.
ExplorationResult ExploreWith(const char* system, const AppBinary& binary,
                              const std::vector<const FaultProfile*>& profiles,
                              const CampaignEngine::ResultRunner& runner,
                              const ExploreConfig& config) {
  EnsureStockTriggersRegistered();
  std::vector<CallSiteReport> reports;
  for (const FaultProfile* profile : profiles) {
    const std::vector<CallSiteReport>& cached =
        AnalysisCache::Instance().Reports(binary.image(), *profile);
    reports.insert(reports.end(), cached.begin(), cached.end());
  }
  // The strategies look functions up in one profile; with several libraries
  // build a combined view (profiles never share function names here -- and
  // if they did, the first library would win, matching link order).
  const FaultProfile* lookup = profiles.front();
  FaultProfile combined("combined");
  if (profiles.size() > 1) {
    for (auto it = profiles.rbegin(); it != profiles.rend(); ++it) {
      for (const auto& [name, fn] : (*it)->functions()) {
        combined.AddFunction(fn);
      }
    }
    lookup = &combined;
  }
  CampaignEngine::Options engine_options;
  engine_options.workers = config.workers;
  engine_options.journal_path = config.journal_path;
  engine_options.resume = config.resume;
  engine_options.abort_after_records = config.abort_after_records;
  if (!config.journal_path.empty()) {
    engine_options.journal_meta = {
        {"command", "explore"},
        {"system", system},
        {"strategy", ExploreStrategyName(config.strategy)},
        {"budget", StrFormat("%zu", config.budget)},
        {"seed", StrFormat("0x%llx", static_cast<unsigned long long>(config.seed))},
    };
  }
  CampaignEngine engine(engine_options);
  switch (config.strategy) {
    case ExploreStrategy::kExhaustive: {
      std::vector<CampaignJob> jobs;
      for (const FaultProfile* profile : profiles) {
        for (CampaignJob& job : AnalyzerJobs(binary.image(), *profile)) {
          jobs.push_back(std::move(job));
        }
      }
      ExhaustiveSource source(std::move(jobs), config.budget);
      return engine.Run(source, runner);
    }
    case ExploreStrategy::kRandom: {
      RandomSweepSource source(*lookup, SiteFunctions(reports),
                               config.budget != 0 ? config.budget : 64, config.seed);
      return engine.Run(source, runner);
    }
    case ExploreStrategy::kCoverage: {
      CoverageGuidedSource::Options options;
      options.budget = config.budget != 0 ? config.budget : 64;
      options.seed = config.seed;
      CoverageGuidedSource source(reports, *lookup, options);
      return engine.Run(source, runner);
    }
  }
  return {};
}

}  // namespace

std::vector<FoundBug> RunGitCampaign(const CampaignConfig& config) {
  EnsureStockTriggersRegistered();
  ExhaustiveSource source(AnalyzerJobs(GitBinary().image(), CachedLibcProfile()));
  CampaignEngine engine(CampaignEngineOptions(config, "git", /*max_bugs=*/0));
  return engine.Run(source, RunGitJob).bugs;
}

std::vector<FoundBug> RunMysqlCampaign(const CampaignConfig& config) {
  EnsureStockTriggersRegistered();
  const FaultProfile& profile = CachedLibcProfile();

  // Phase 1: analyzer-generated scenarios.
  std::vector<CampaignJob> jobs = AnalyzerJobs(MysqlBinary().image(), profile);

  // Phase 2: random injection (the paper ran 1,000 random tests against
  // MySQL and distilled 35 crashes into the two Table 1 bugs).
  for (const char* function : {"close", "read"}) {
    const FunctionProfile* fn = profile.Find(function);
    int64_t retval = fn->errors.front().retval;
    int errno_value = fn->errors.front().errnos.empty() ? 0 : kEIO;
    for (uint64_t seed = 1; seed <= 50; ++seed) {
      CampaignJob job;
      job.scenario = MakeRandomScenario(function, retval, errno_value, 0.1, seed);
      job.label =
          StrFormat("random 10%% on %s (seed %llu)", function, (unsigned long long)seed);
      job.seed = seed;
      jobs.push_back(std::move(job));
    }
  }

  ExhaustiveSource source(std::move(jobs));
  CampaignEngine engine(CampaignEngineOptions(config, "mysql", /*max_bugs=*/0));
  return engine.Run(source, RunMysqlJob).bugs;
}

std::vector<FoundBug> RunBindCampaign(const CampaignConfig& config) {
  EnsureStockTriggersRegistered();

  // Analyzer scenarios against both library profiles.
  std::vector<CampaignJob> jobs = AnalyzerJobs(BindBinary().image(), CachedLibcProfile());
  for (CampaignJob& job : AnalyzerJobs(BindBinary().image(), CachedLibxmlProfile())) {
    jobs.push_back(std::move(job));
  }

  // Exhaustive malloc sweep over dst_lib_init: the call *is* checked (so the
  // analyzer reports it fully checked), but the recovery path is broken.
  // These run a different workload, so they carry their own runner.
  for (uint64_t k = 1; k <= MiniBind::kDstAllocations; ++k) {
    CampaignJob job;
    job.scenario = MakeCallCountScenario("malloc", k, 0, kENOMEM);
    job.label = StrFormat("malloc #%llu = NULL in dst_lib_init", (unsigned long long)k);
    job.seed = k;
    job.explore = RunBindDstJob;
    jobs.push_back(std::move(job));
  }

  ExhaustiveSource source(std::move(jobs));
  CampaignEngine engine(CampaignEngineOptions(config, "bind", /*max_bugs=*/0));
  return engine.Run(source, RunBindJob).bugs;
}

std::vector<FoundBug> RunPbftCampaign(const CampaignConfig& config) {
  EnsureStockTriggersRegistered();

  // Phase 1: analyzer scenarios against replica 0 (shutdown checkpoint bug).
  std::vector<CampaignJob> jobs = AnalyzerJobs(PbftBinary().image(), CachedLibcProfile());

  // Phase 2: distributed random faults in sendto/recvfrom across replicas
  // (release build). Message loss leaves prepare certificates without their
  // payloads; the crash manifests during the view change. The serial
  // campaign stopped fuzzing once two bugs were on the list; max_bugs plus
  // skip_when_saturated reproduces that cutoff deterministically.
  Scenario dist;
  {
    TriggerDecl decl;
    decl.id = "dist";
    decl.class_name = "DistributedTrigger";
    dist.AddTrigger(decl);
    for (const char* function : {"sendto", "recvfrom"}) {
      FunctionAssoc assoc;
      assoc.function = function;
      assoc.retval = -1;
      assoc.errno_value = kEIO;
      assoc.triggers.push_back(TriggerRef{"dist", false});
      dist.AddFunction(assoc);
    }
  }
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    CampaignJob job;
    job.scenario = dist;
    job.label =
        StrFormat("random sendto/recvfrom faults, seed %llu", (unsigned long long)seed);
    job.seed = seed;
    job.skip_when_saturated = !config.exhaustive;
    job.explore = RunPbftDistributedJob;
    jobs.push_back(std::move(job));
  }

  ExhaustiveSource source(std::move(jobs));
  CampaignEngine engine(CampaignEngineOptions(
      config, "pbft", /*max_bugs=*/config.exhaustive ? size_t{0} : size_t{2}));
  return engine.Run(source, RunPbftJob).bugs;
}

std::vector<FoundBug> RunFullCampaign(const CampaignConfig& config) {
  // Four engines share no job stream, so one journal cannot cover the
  // union campaign; journal per system instead.
  CampaignConfig per_system = config;
  per_system.journal_path.clear();
  per_system.resume = false;
  std::set<FoundBug> all;
  for (auto campaign : {RunGitCampaign, RunMysqlCampaign, RunBindCampaign, RunPbftCampaign}) {
    for (const FoundBug& bug : campaign(per_system)) {
      all.insert(bug);
    }
  }
  return {all.begin(), all.end()};
}

const char* ExploreStrategyName(ExploreStrategy strategy) {
  switch (strategy) {
    case ExploreStrategy::kExhaustive:
      return "exhaustive";
    case ExploreStrategy::kRandom:
      return "random";
    case ExploreStrategy::kCoverage:
      return "coverage";
  }
  return "?";
}

std::optional<ExploreStrategy> ParseExploreStrategy(const std::string& name) {
  if (name == "exhaustive") {
    return ExploreStrategy::kExhaustive;
  }
  if (name == "random") {
    return ExploreStrategy::kRandom;
  }
  if (name == "coverage") {
    return ExploreStrategy::kCoverage;
  }
  return std::nullopt;
}

ExplorationResult ExploreGitCampaign(const ExploreConfig& config) {
  return ExploreWith("git", GitBinary(), {&CachedLibcProfile()}, RunGitJob, config);
}

ExplorationResult ExploreMysqlCampaign(const ExploreConfig& config) {
  return ExploreWith("mysql", MysqlBinary(), {&CachedLibcProfile()}, RunMysqlJob, config);
}

ExplorationResult ExploreBindCampaign(const ExploreConfig& config) {
  return ExploreWith("bind", BindBinary(), {&CachedLibcProfile(), &CachedLibxmlProfile()},
                     RunBindJob, config);
}

ExplorationResult ExplorePbftCampaign(const ExploreConfig& config) {
  return ExploreWith("pbft", PbftBinary(), {&CachedLibcProfile()}, RunPbftExploreJob, config);
}

std::optional<ExplorationResult> ExploreCampaign(const std::string& system,
                                                 const ExploreConfig& config) {
  if (system == "git") {
    return ExploreGitCampaign(config);
  }
  if (system == "mysql") {
    return ExploreMysqlCampaign(config);
  }
  if (system == "bind") {
    return ExploreBindCampaign(config);
  }
  if (system == "pbft") {
    return ExplorePbftCampaign(config);
  }
  return std::nullopt;
}

CampaignEngine::ResultRunner SystemJobRunner(const std::string& system,
                                             bool explore_workload) {
  EnsureStockTriggersRegistered();
  if (system == "git") {
    return RunGitJob;
  }
  if (system == "mysql") {
    return RunMysqlJob;
  }
  if (system == "bind") {
    return RunBindJob;
  }
  if (system == "pbft") {
    return explore_workload ? RunPbftExploreJob : RunPbftJob;
  }
  return nullptr;
}

std::optional<ExplorationResult> ResumeCampaign(const std::string& journal_path, int workers,
                                                std::string* error,
                                                JournalMetadata* metadata) {
  auto fail = [&](std::string message) -> std::optional<ExplorationResult> {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return std::nullopt;
  };
  auto journal = CampaignJournal::Load(journal_path, error);
  if (!journal) {
    return std::nullopt;
  }
  if (metadata != nullptr) {
    *metadata = journal->metadata();
  }
  std::string command = journal->Meta("command", "explore");
  std::string system = journal->Meta("system", "");
  try {
    if (command == "campaign") {
      CampaignConfig config;
      config.workers = workers;
      config.exhaustive = journal->Meta("exhaustive", "false") == "true";
      config.journal_path = journal_path;
      config.resume = true;
      ExplorationResult out;
      if (system == "git") {
        out.bugs = RunGitCampaign(config);
      } else if (system == "mysql") {
        out.bugs = RunMysqlCampaign(config);
      } else if (system == "bind") {
        out.bugs = RunBindCampaign(config);
      } else if (system == "pbft") {
        out.bugs = RunPbftCampaign(config);
      } else {
        return fail("journal names unknown campaign system '" + system + "'");
      }
      return out;
    }
    ExploreConfig config;
    config.workers = workers;
    auto strategy = ParseExploreStrategy(journal->Meta("strategy", "exhaustive"));
    if (!strategy) {
      return fail("journal records unknown strategy '" + journal->Meta("strategy", "") + "'");
    }
    config.strategy = *strategy;
    config.budget =
        static_cast<size_t>(std::strtoull(journal->Meta("budget", "0").c_str(), nullptr, 0));
    config.seed = std::strtoull(journal->Meta("seed", "1").c_str(), nullptr, 0);
    config.journal_path = journal_path;
    config.resume = true;
    auto result = ExploreCampaign(system, config);
    if (!result) {
      return fail("journal names unknown system '" + system + "'");
    }
    return result;
  } catch (const std::exception& e) {
    // The engine throws on unusable journals (divergence, I/O); surface it
    // as a CLI-friendly error instead of tearing down the process.
    return fail(e.what());
  }
}

}  // namespace lfi
