#include "apps/common/campaign_spec.h"

#include <cstdlib>

#include "core/journal.h"
#include "util/string_util.h"

namespace lfi {
namespace {

std::string SeedToString(uint64_t seed) {
  // Full-range uint64 (ParseInt's int64 range would reject the top bit); hex
  // keeps the round trip exact and matches the journal header encoding.
  return StrFormat("0x%llx", static_cast<unsigned long long>(seed));
}

uint64_t SeedFromString(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 0);
}

size_t SizeFromString(const std::string& s) {
  return static_cast<size_t>(std::strtoull(s.c_str(), nullptr, 0));
}

}  // namespace

const char* CampaignModeName(CampaignMode mode) {
  switch (mode) {
    case CampaignMode::kTable1:
      return "table1";
    case CampaignMode::kExplore:
      return "explore";
    case CampaignMode::kResume:
      return "resume";
    case CampaignMode::kReplay:
      return "replay";
  }
  return "?";
}

std::optional<CampaignMode> ParseCampaignMode(const std::string& name) {
  // "campaign" is the historical journal-header spelling of table1 mode;
  // accepting it keeps pre-redesign journals resumable.
  if (name == "table1" || name == "campaign") {
    return CampaignMode::kTable1;
  }
  if (name == "explore") {
    return CampaignMode::kExplore;
  }
  if (name == "resume") {
    return CampaignMode::kResume;
  }
  if (name == "replay") {
    return CampaignMode::kReplay;
  }
  return std::nullopt;
}

const char* ExploreStrategyName(ExploreStrategy strategy) {
  switch (strategy) {
    case ExploreStrategy::kExhaustive:
      return "exhaustive";
    case ExploreStrategy::kRandom:
      return "random";
    case ExploreStrategy::kCoverage:
      return "coverage";
  }
  return "?";
}

std::optional<ExploreStrategy> ParseExploreStrategy(const std::string& name) {
  if (name == "exhaustive") {
    return ExploreStrategy::kExhaustive;
  }
  if (name == "random") {
    return ExploreStrategy::kRandom;
  }
  if (name == "coverage") {
    return ExploreStrategy::kCoverage;
  }
  return std::nullopt;
}

const std::vector<std::string>& CampaignSystemNames() {
  static const std::vector<std::string> names = {"git", "mysql", "bind", "pbft", "bfs"};
  return names;
}

bool IsCampaignSystem(const std::string& name) {
  for (const std::string& known : CampaignSystemNames()) {
    if (name == known) {
      return true;
    }
  }
  return false;
}

std::string CampaignSpec::Validate() const {
  bool journal_driven = mode == CampaignMode::kResume || mode == CampaignMode::kReplay;
  if (journal_driven) {
    if (journal_path.empty()) {
      return std::string(CampaignModeName(mode)) + " needs the journal path to operate on";
    }
    if (shard_index != kNoShard) {
      // A shard journal carries its own shard coordinates in the header;
      // resume re-derives them from the artifact.
      return std::string(CampaignModeName(mode)) +
             " takes its shard coordinates from the journal header, not the spec";
    }
    if (shard_count > 1 && mode != CampaignMode::kResume) {
      return "replay takes its shard coordinates from the journal header, not the spec";
    }
    return "";
  }
  if (epoch_len != 0 &&
      (mode != CampaignMode::kExplore || strategy != ExploreStrategy::kCoverage)) {
    return "epoch-len synchronizes coverage feedback; it only applies to "
           "explore --strategy coverage";
  }
  if (epoch_index != kNoEpoch && epoch_len == 0) {
    return "an epoch index only makes sense inside an epoch-len campaign";
  }
  if (!frontier_path.empty() && epoch_len == 0) {
    return "a frontier snapshot only makes sense inside an epoch-len campaign";
  }
  if (mode == CampaignMode::kExplore && strategy == ExploreStrategy::kCoverage &&
      shard_index != kNoShard && (epoch_index == kNoEpoch || frontier_path.empty())) {
    return "a coverage shard child runs one epoch of an orchestrated campaign: it needs "
           "the epoch ordinal and frontier snapshot the orchestrator provides (run-spec)";
  }
  if (system.empty()) {
    return "no target system named";
  }
  if (!IsCampaignSystem(system) &&
      !(system == "all" && mode == CampaignMode::kTable1)) {
    return "unknown system '" + system + "' (git|mysql|bind|pbft|bfs" +
           (mode == CampaignMode::kTable1 ? "|all)" : ")");
  }
  if (system == "all" && !journal_path.empty()) {
    return "campaign all cannot be journaled (one engine per system, no single job stream); "
           "journal one system at a time";
  }
  if (shard_count == 0) {
    return "shard count must be at least 1";
  }
  if (shard_index != kNoShard && shard_index >= shard_count) {
    return StrFormat("shard index %zu is out of range for %zu shard(s)", shard_index,
                     shard_count);
  }
  if (shard_count > 1) {
    if (journal_path.empty()) {
      return "sharded campaigns need --journal PATH (the per-shard artifacts and the "
             "merged campaign live there)";
    }
    if (system == "all") {
      return "shard one system at a time";
    }
    if (mode == CampaignMode::kExplore && strategy == ExploreStrategy::kCoverage &&
        epoch_len == 0) {
      return "coverage-guided exploration closes a global feedback loop no shard can see; "
             "run it with --epoch-len K (epoch-synchronized feedback), single-process, or "
             "shard its recorded journal / the exhaustive|random strategies";
    }
    if (mode == CampaignMode::kTable1 && !exhaustive) {
      return "sharded table1 campaigns need exhaustive=true: the historical fuzz cutoff "
             "is a global property no shard can see";
    }
  }
  if (resume && journal_path.empty()) {
    return "resume needs a journal path";
  }
  return "";
}

void CampaignSpec::AppendXml(XmlNode* parent) const {
  XmlNode* node = parent->AddChild("campaignspec");
  node->SetAttr("system", system);
  node->SetAttr("mode", CampaignModeName(mode));
  if (mode == CampaignMode::kExplore) {
    node->SetAttr("strategy", ExploreStrategyName(strategy));
  }
  if (exhaustive) {
    node->SetAttr("exhaustive", "true");
  }
  if (budget != 0) {
    node->SetAttr("budget", StrFormat("%zu", budget));
  }
  if (seed != 1) {
    node->SetAttr("seed", SeedToString(seed));
  }
  if (workers != 1) {
    node->SetAttr("workers", StrFormat("%d", workers));
  }
  if (!journal_path.empty()) {
    node->SetAttr("journal", journal_path);
  }
  if (resume) {
    node->SetAttr("resume", "true");
  }
  if (shard_index != kNoShard) {
    node->SetAttr("shard", StrFormat("%zu", shard_index));
  }
  if (shard_count != 1) {
    node->SetAttr("shards", StrFormat("%zu", shard_count));
  }
  if (epoch_len != 0) {
    node->SetAttr("epoch-len", StrFormat("%zu", epoch_len));
  }
  if (epoch_index != kNoEpoch) {
    node->SetAttr("epoch", StrFormat("%zu", epoch_index));
  }
  if (!frontier_path.empty()) {
    node->SetAttr("frontier", frontier_path);
  }
  if (json) {
    node->SetAttr("json", "true");
  }
  if (child_timeout_ms != 0) {
    node->SetAttr("child-timeout-ms", StrFormat("%llu", static_cast<unsigned long long>(
                                                            child_timeout_ms)));
  }
  if (max_retries != 2) {
    node->SetAttr("max-retries", StrFormat("%zu", max_retries));
  }
  if (backoff_ms != 50) {
    node->SetAttr("backoff-ms", StrFormat("%llu", static_cast<unsigned long long>(backoff_ms)));
  }
  if (job_timeout_ms != 0) {
    node->SetAttr("job-timeout-ms",
                  StrFormat("%llu", static_cast<unsigned long long>(job_timeout_ms)));
  }
  if (cold_start) {
    node->SetAttr("cold-start", "true");
  }
  if (!failpoints.empty()) {
    node->SetAttr("failpoints", failpoints);
  }
  if (format != JournalFormat::kExtent) {
    node->SetAttr("format", JournalFormatName(format));
  }
  if (!replay_selector.empty()) {
    node->SetAttr("selector", replay_selector);
  }
  if (abort_after_records != 0) {
    node->SetAttr("abort-after", StrFormat("%zu", abort_after_records));
  }
}

std::string CampaignSpec::ToXml() const { return ToXmlElement(*this); }

std::optional<CampaignSpec> CampaignSpec::FromNode(const XmlNode& node, std::string* error) {
  auto fail = [&](std::string message) -> std::optional<CampaignSpec> {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return std::nullopt;
  };
  if (node.name() != "campaignspec") {
    return fail("campaign spec element must be <campaignspec>");
  }
  CampaignSpec spec;
  spec.system = node.AttrOr("system", "");
  auto mode = ParseCampaignMode(node.AttrOr("mode", "explore"));
  if (!mode) {
    return fail("unknown campaign mode '" + node.AttrOr("mode", "") + "'");
  }
  spec.mode = *mode;
  auto strategy = ParseExploreStrategy(node.AttrOr("strategy", "exhaustive"));
  if (!strategy) {
    return fail("unknown strategy '" + node.AttrOr("strategy", "") + "'");
  }
  spec.strategy = *strategy;
  spec.exhaustive = node.AttrOr("exhaustive", "false") == "true";
  spec.budget = SizeFromString(node.AttrOr("budget", "0"));
  spec.seed = SeedFromString(node.AttrOr("seed", "1"));
  if (auto workers = node.IntAttr("workers")) {
    spec.workers = static_cast<int>(*workers);
  }
  spec.journal_path = node.AttrOr("journal", "");
  spec.resume = node.AttrOr("resume", "false") == "true";
  if (auto shard = node.Attr("shard")) {
    spec.shard_index = SizeFromString(*shard);
  }
  spec.shard_count = SizeFromString(node.AttrOr("shards", "1"));
  spec.epoch_len = SizeFromString(node.AttrOr("epoch-len", "0"));
  if (auto epoch = node.Attr("epoch")) {
    spec.epoch_index = SizeFromString(*epoch);
  }
  spec.frontier_path = node.AttrOr("frontier", "");
  spec.json = node.AttrOr("json", "false") == "true";
  spec.child_timeout_ms = SeedFromString(node.AttrOr("child-timeout-ms", "0"));
  spec.max_retries = SizeFromString(node.AttrOr("max-retries", "2"));
  spec.backoff_ms = SeedFromString(node.AttrOr("backoff-ms", "50"));
  spec.job_timeout_ms = SeedFromString(node.AttrOr("job-timeout-ms", "0"));
  spec.cold_start = node.AttrOr("cold-start", "false") == "true";
  spec.failpoints = node.AttrOr("failpoints", "");
  auto format = ParseJournalFormat(node.AttrOr("format", "extent"));
  if (!format) {
    return fail("unknown journal format '" + node.AttrOr("format", "") + "' (xml|extent)");
  }
  spec.format = *format;
  spec.replay_selector = node.AttrOr("selector", "");
  spec.abort_after_records = SizeFromString(node.AttrOr("abort-after", "0"));
  return spec;
}

std::optional<CampaignSpec> CampaignSpec::Parse(const std::string& xml, std::string* error) {
  return ParseXmlElement<CampaignSpec>(xml, error);
}

JournalMetadata CampaignSpec::ToJournalMeta() const {
  JournalMetadata meta;
  if (mode == CampaignMode::kTable1) {
    // Historical key order and spellings: journals written before the spec
    // existed resume against exactly this identity.
    meta = {{"command", "campaign"},
            {"system", system},
            {"exhaustive", exhaustive ? "true" : "false"}};
  } else {
    meta = {{"command", "explore"},
            {"system", system},
            {"strategy", ExploreStrategyName(strategy)},
            {"budget", StrFormat("%zu", budget)},
            {"seed", SeedToString(seed)}};
    if (epoch_len != 0) {
      // Part of the identity: the epoch length decides the feedback
      // schedule, so journals with different epoch-len are different
      // campaigns (journal.cc's merge identity lists this key).
      meta.emplace_back("epoch-len", StrFormat("%zu", epoch_len));
    }
  }
  if (shard_index != kNoShard) {
    meta.emplace_back("shard", StrFormat("%zu", shard_index));
    meta.emplace_back("shards", StrFormat("%zu", shard_count));
  }
  if (epoch_index != kNoEpoch) {
    // Shard-artifact coordinate, like shard/shards: stripped on merge.
    meta.emplace_back("epoch", StrFormat("%zu", epoch_index));
  }
  return meta;
}

std::optional<CampaignSpec> CampaignSpec::FromJournalMeta(const JournalMetadata& meta,
                                                          std::string* error) {
  auto fail = [&](std::string message) -> std::optional<CampaignSpec> {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return std::nullopt;
  };
  CampaignSpec spec;
  auto mode = ParseCampaignMode(MetaValue(meta, "command", "explore"));
  if (!mode || (*mode != CampaignMode::kTable1 && *mode != CampaignMode::kExplore)) {
    return fail("journal records unknown command '" + MetaValue(meta, "command", "") + "'");
  }
  spec.mode = *mode;
  spec.system = MetaValue(meta, "system", "");
  spec.exhaustive = MetaValue(meta, "exhaustive", "false") == "true";
  auto strategy = ParseExploreStrategy(MetaValue(meta, "strategy", "exhaustive"));
  if (!strategy) {
    return fail("journal records unknown strategy '" + MetaValue(meta, "strategy", "") + "'");
  }
  spec.strategy = *strategy;
  spec.budget = SizeFromString(MetaValue(meta, "budget", "0"));
  spec.seed = SeedFromString(MetaValue(meta, "seed", "1"));
  spec.epoch_len = SizeFromString(MetaValue(meta, "epoch-len", "0"));
  std::string shard = MetaValue(meta, "shard", "");
  if (!shard.empty()) {
    spec.shard_index = SizeFromString(shard);
    spec.shard_count = SizeFromString(MetaValue(meta, "shards", "1"));
  }
  std::string epoch = MetaValue(meta, "epoch", "");
  if (!epoch.empty()) {
    spec.epoch_index = SizeFromString(epoch);
  }
  return spec;
}

std::string CampaignSpec::ShardJournalPath(size_t shard) const {
  return journal_path + StrFormat(".shard%zu", shard);
}

std::string CampaignSpec::EpochShardJournalPath(size_t epoch, size_t shard) const {
  return journal_path + StrFormat(".epoch%zu.shard%zu", epoch, shard);
}

std::string CampaignSpec::EpochFrontierPath(size_t epoch) const {
  return journal_path + StrFormat(".epoch%zu.frontier", epoch);
}

}  // namespace lfi
