// Per-system job execution: shared runner cores, warm-target factories, and
// the ExecutionLayer that picks warm pools or cold one-shot runners.
//
// Every workload the campaign driver dispatches exists in exactly one copy --
// a *runner core* operating on an already-constructed target (`RunGitJobOn`,
// `RunPbftJobOn`, ...). The cold runners wrap a core in construct-run-destroy
// (one fresh target per job, the paper's fresh-process-per-test model); the
// warm targets wrap the same core in construct-once + snapshot + restore
// (core/warm_pool.h). Because both paths execute the identical core against a
// target in the identical post-setup state, bugs, coverage, fingerprints, and
// journal bytes cannot diverge between them.
//
// Snapshot points (== the state a cold runner hands to the workload):
//   git, mysql, bind:  after application construction. Everything else --
//       the mysql errmsg write + Startup(), git's test suite, bind's zone
//       loading -- happens inside the faulted workload, so it must re-run
//       per job.
//   pbft:  after cluster construction *and* Start() (socket bring-up), which
//       the cold runners also perform before installing the interposer.

#ifndef LFI_APPS_COMMON_WARM_TARGETS_H_
#define LFI_APPS_COMMON_WARM_TARGETS_H_

#include <memory>
#include <string>

#include "core/campaign_engine.h"
#include "core/warm_pool.h"

namespace lfi {

class MiniGit;
class MiniMysql;
class MiniBind;
class PbftCluster;
class BfsCluster;

// --- runner cores (one per workload kind) ----------------------------------

JobResult RunGitJobOn(MiniGit& git, const CampaignJob& job);
JobResult RunMysqlJobOn(MiniMysql& mysql, const CampaignJob& job);
JobResult RunBindJobOn(MiniBind& bind, const CampaignJob& job);
JobResult RunBindDstJobOn(MiniBind& bind, const CampaignJob& job);
// `requests`/`max_ticks` size the workload (8/2000 for the Table 1 campaign,
// 20/3000 for exploration -- enough to cross the checkpoint interval).
JobResult RunPbftJobOn(PbftCluster& cluster, const CampaignJob& job, int requests,
                       int max_ticks);
JobResult RunPbftDistributedJobOn(PbftCluster& cluster, const CampaignJob& job);
// `max_ticks` bounds the multi-client workload (600 for the Table 1
// campaign, 900 for exploration's longer scripts). Runs the consistency
// oracle's remount audit after every non-crashed injected run.
JobResult RunBfsJobOn(BfsCluster& cluster, const CampaignJob& job, int max_ticks);
// The partial-transfer phase: arms the vnet partial-send/recv fault sites
// (seed-derived probabilities) instead of a library-fault scenario, so the
// connection mux's recovery paths are exercised end to end.
JobResult RunBfsMuxJobOn(BfsCluster& cluster, const CampaignJob& job);

// --- cold one-shot runners (construct, run, destroy) ------------------------
// The replay path and the --cold-start ablation run these; they are also the
// fallback semantics the warm pool must be byte-identical to.

JobResult RunGitJob(const CampaignJob& job);
JobResult RunMysqlJob(const CampaignJob& job);
JobResult RunBindJob(const CampaignJob& job);
JobResult RunBindDstJob(const CampaignJob& job);
JobResult RunPbftJob(const CampaignJob& job);
JobResult RunPbftExploreJob(const CampaignJob& job);
JobResult RunPbftDistributedJob(const CampaignJob& job);
JobResult RunBfsJob(const CampaignJob& job);
JobResult RunBfsExploreJob(const CampaignJob& job);
JobResult RunBfsMuxJob(const CampaignJob& job);

// --- warm-target factories ---------------------------------------------------
// One factory per (system, workload kind): constructs the target, runs its
// injection-disarmed setup, snapshots, and serves jobs through the shared
// core. Handed to WarmPool.

WarmPool::Factory GitWarmFactory();
WarmPool::Factory MysqlWarmFactory();
WarmPool::Factory BindWarmFactory();
WarmPool::Factory BindDstWarmFactory();
WarmPool::Factory PbftWarmFactory(int requests, int max_ticks);
WarmPool::Factory PbftDistributedWarmFactory();
WarmPool::Factory BfsWarmFactory(int rounds, int max_ticks);
WarmPool::Factory BfsMuxWarmFactory();

// --- the execution layer -----------------------------------------------------
// Owns the campaign's warm pools (lifetime: one engine run -- shard and epoch
// children each build their own) and hands out the ResultRunners the engine
// and the Table 1 job builders plug in. With `cold_start` (the ablation knob,
// spec attribute cold-start) every runner is the one-shot cold function
// instead, so `lfi_tool --cold-start` byte-compares against the default.
class ExecutionLayer {
 public:
  ExecutionLayer(const std::string& system, bool explore_workload, bool cold_start);

  // The campaign-wide runner for `system`'s default (or exploration) workload.
  const CampaignEngine::ResultRunner& runner() const { return runner_; }
  // Self-contained-job runners (empty unless `system` defines them): the
  // bind dst_lib_init sweep and the distributed pbft fuzz phase.
  const CampaignEngine::ResultRunner& bind_dst_runner() const { return bind_dst_runner_; }
  const CampaignEngine::ResultRunner& pbft_distributed_runner() const {
    return pbft_distributed_runner_;
  }
  const CampaignEngine::ResultRunner& bfs_mux_runner() const { return bfs_mux_runner_; }

  bool cold_start() const { return cold_start_; }
  // Main-pool counters (zeroes under cold_start): how much bring-up the warm
  // layer actually amortized.
  WarmPool::Stats pool_stats() const;

 private:
  bool cold_start_;
  std::unique_ptr<WarmPool> pool_;
  std::unique_ptr<WarmPool> bind_dst_pool_;
  std::unique_ptr<WarmPool> pbft_distributed_pool_;
  std::unique_ptr<WarmPool> bfs_mux_pool_;
  CampaignEngine::ResultRunner runner_;
  CampaignEngine::ResultRunner bind_dst_runner_;
  CampaignEngine::ResultRunner pbft_distributed_runner_;
  CampaignEngine::ResultRunner bfs_mux_runner_;
};

}  // namespace lfi

#endif  // LFI_APPS_COMMON_WARM_TARGETS_H_
