// The declarative campaign description.
//
// A CampaignSpec is the one value that fully identifies a fault-injection
// campaign: which system, which mode (the paper's Table 1 list, feedback
// exploration, resuming or replaying a journal), which strategy/budget/seed,
// how parallel, where the journal lives, and -- for multi-process campaigns
// -- which shard of the work this process owns. Everything that used to be
// spread across CampaignConfig, ExploreConfig, CampaignEngine::Options
// wiring, and lfi_tool's per-subcommand parsing collapses into this struct;
// CampaignDriver (campaign_driver.h) executes it.
//
// Specs round-trip through the XML subsystem (<campaignspec .../>), which is
// also the parent->child wire format of `lfi_tool shard`: the orchestrator
// serializes one spec per shard and each child runs `lfi_tool run-spec`.
// They equally round-trip through a campaign journal's header metadata, so
// `resume` can rebuild the whole spec from the artifact alone.
//
// This header also owns the one copy of the name<->enum parse tables
// (system, mode, strategy) that lfi_tool and the campaign library used to
// duplicate.

#ifndef LFI_APPS_COMMON_CAMPAIGN_SPEC_H_
#define LFI_APPS_COMMON_CAMPAIGN_SPEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/campaign_engine.h"
#include "xml/xml.h"

namespace lfi {

// What the campaign does with its scenarios.
enum class CampaignMode {
  kTable1,   // the §7.1 bug campaign: the historical job list, run to the end
  kExplore,  // feedback-driven exploration under a strategy/budget/seed
  kResume,   // continue a journaled campaign (identity read from the header)
  kReplay,   // re-inject journaled faults from disk and check reproduction
};

const char* CampaignModeName(CampaignMode mode);
std::optional<CampaignMode> ParseCampaignMode(const std::string& name);

// How kExplore produces scenarios (core/exploration.h implements these).
enum class ExploreStrategy {
  kExhaustive,  // the analyzer's job list, in order (the paper's behaviour)
  kRandom,      // seeded random sweep over (function, error mode, ordinal)
  kCoverage,    // coverage-guided: feedback steers sites and mutations
};

const char* ExploreStrategyName(ExploreStrategy strategy);
std::optional<ExploreStrategy> ParseExploreStrategy(const std::string& name);

// The campaign target systems, in canonical order. "all" (the union
// campaign) is accepted by Table 1 mode but is not a member.
const std::vector<std::string>& CampaignSystemNames();
bool IsCampaignSystem(const std::string& name);

struct CampaignSpec {
  static constexpr size_t kNoShard = static_cast<size_t>(-1);

  std::string system;  // "git"|"mysql"|"bind"|"pbft"|"bfs", or "all" (table1 only)
  CampaignMode mode = CampaignMode::kExplore;
  ExploreStrategy strategy = ExploreStrategy::kExhaustive;
  // Table 1 mode: run every generated scenario instead of stopping the fuzz
  // phases at the historical bug counts. Required when sharding table1 work
  // (the saturation cutoff is a global property no shard can see).
  bool exhaustive = false;
  size_t budget = 0;   // explore: 0 = the strategy's natural size
  uint64_t seed = 1;   // drives random selection and per-job Runtime seeds
  int workers = 1;     // engine worker pool; <= 0 = one per hardware thread
  // Journal artifact: written by table1/explore runs, read (and continued /
  // replayed) by resume/replay. Required when shard_count > 1.
  std::string journal_path;
  // With journal_path: replay an existing journal first and continue where
  // it stopped (kResume sets this implicitly after reading the header).
  bool resume = false;
  // Multi-process sharding. shard_count > 1 with shard_index unset makes
  // CampaignDriver orchestrate: run every shard (spawning child processes
  // when it knows the lfi_tool path), then merge the per-shard journals.
  // With shard_index set, this process runs only that shard of the
  // deterministic stream into ShardJournalPath-style artifacts.
  size_t shard_index = kNoShard;
  size_t shard_count = 1;
  // Epoch-synchronized exploration: with epoch_len != 0 the coverage-guided
  // frontier runs open-loop for epoch_len merged batches, then all feedback
  // for the epoch folds in at once. This makes the feedback schedule a pure
  // function of the spec -- the property that lets shard_count > 1 combine
  // with the coverage strategy (shards run whole epochs blind, the
  // orchestrator merges and reseeds between epochs) while staying
  // bit-identical to the single-process run. Part of the campaign identity
  // (journal key "epoch-len") whenever nonzero.
  size_t epoch_len = 0;
  // Shard-child runs of one epoch carry the epoch ordinal so their journal
  // records are stamped (and their artifacts labelled) correctly. Never part
  // of the merged identity -- MergeJournals strips it with the shard keys.
  size_t epoch_index = kNoEpoch;
  // Epoch children: path of the frontier snapshot (FrontierState XML) the
  // child reseeds its source from before running. Never journaled.
  std::string frontier_path;
  bool json = false;  // machine-readable reporting (CLI presentation hint)
  // --- supervision policy (apps/common/shard_supervisor.h) -----------------
  // Execution environment, never campaign identity: none of these enter
  // ToJournalMeta, so a journal recorded under any timeout/retry/failpoint
  // schedule resumes and byte-compares against any other.
  //
  // Wall-clock deadline per spawned shard child; a child past it is
  // SIGKILLed and retried. 0 derives one from job_timeout_ms (per-epoch job
  // count + slack) when that is set, else no deadline.
  uint64_t child_timeout_ms = 0;
  // Respawns per failed shard child (crash, nonzero exit, timeout) before
  // the campaign fails loudly. A respawn resumes the dead child's sealed
  // journal prefix, so retries never change the merged bytes.
  size_t max_retries = 2;
  uint64_t backoff_ms = 50;  // first respawn delay; doubles, capped
  // Engine-level hang detection: wall-clock budget per job. A job past it is
  // abandoned and reported as a deterministic FoundBug kind "hang"
  // (CampaignEngine::Options::job_timeout_ms). 0 = off.
  uint64_t job_timeout_ms = 0;
  // Ablation knob: run every job against a freshly built target (the paper's
  // fresh-process-per-test model) instead of the default warm snapshot/reset
  // pools (apps/common/warm_targets.h). Execution environment, never campaign
  // identity -- warm and cold runs produce byte-identical journals, so this
  // is not in ToJournalMeta; it IS on the spec wire so spawned shard children
  // inherit the choice.
  bool cold_start = false;
  // Failpoint schedule (util/failpoint.h spec syntax) armed by the driver
  // and inherited by spawned children over the spec wire format. Chaos
  // testing only; stripped from supervisor respawns.
  std::string failpoints;
  // On-disk encoding for journals this campaign creates (fresh runs, shard
  // artifacts, the merged journal). Reads auto-detect, and resume keeps the
  // existing file's encoding, so this is an artifact preference -- never
  // part of the campaign identity (not in ToJournalMeta).
  JournalFormat format = JournalFormat::kExtent;
  // Replay mode: "record[:injection]" selecting one journaled injection;
  // empty replays every record that injected.
  std::string replay_selector;
  size_t abort_after_records = 0;  // kill-and-resume test hook (engine)

  bool operator==(const CampaignSpec&) const = default;

  // "" when the spec is runnable; otherwise a CLI-friendly description of
  // what is wrong (unknown system, coverage strategy sharded, ...).
  std::string Validate() const;

  // XML round trip (<campaignspec .../>): canonical -- defaults are omitted
  // and Parse(ToXml(s)) == s byte-stably. The shard orchestrator's wire
  // format.
  void AppendXml(XmlNode* parent) const;
  std::string ToXml() const;
  static std::optional<CampaignSpec> FromNode(const XmlNode& node,
                                              std::string* error = nullptr);
  static std::optional<CampaignSpec> Parse(const std::string& xml,
                                           std::string* error = nullptr);

  // Journal identity: the header a journaled run of this spec records
  // (matching the historical key order, so old journals still resume), and
  // the inverse `lfi_tool resume` uses. Environment-only fields (workers,
  // json, abort hook) are deliberately not part of the identity.
  JournalMetadata ToJournalMeta() const;
  static std::optional<CampaignSpec> FromJournalMeta(const JournalMetadata& meta,
                                                     std::string* error = nullptr);

  // Canonical per-shard artifact path: "<journal_path>.shard<i>".
  std::string ShardJournalPath(size_t shard) const;

  // Epoch-protocol artifact paths: the sealed per-epoch shard journal
  // "<journal_path>.epoch<e>.shard<i>" and the frontier snapshot
  // "<journal_path>.epoch<e>.frontier" the epoch's children reseed from.
  std::string EpochShardJournalPath(size_t epoch, size_t shard) const;
  std::string EpochFrontierPath(size_t epoch) const;
};

}  // namespace lfi

#endif  // LFI_APPS_COMMON_CAMPAIGN_SPEC_H_
