#include "apps/common/campaign_driver.h"

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <memory>
#include <set>
#include <stdexcept>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#define LFI_HAVE_FORK 1
#endif

#include "apps/bfs/bfs.h"
#include "apps/bind/bind.h"
#include "apps/common/bug_campaign.h"
#include "apps/common/shard_supervisor.h"
#include "apps/common/warm_targets.h"
#include "apps/git/git.h"
#include "apps/mysql/mysql.h"
#include "apps/pbft/pbft.h"
#include "core/analysis_cache.h"
#include "core/controller.h"
#include "core/custom_triggers.h"
#include "core/distributed.h"
#include "core/exploration.h"
#include "core/stock_triggers.h"
#include "util/errno_codes.h"
#include "util/failpoint.h"
#include "util/string_util.h"
#include "vlib/library_profiles.h"

namespace lfi {
namespace {

// Ground-truth profiles, memoized process-wide so concurrent workers and
// repeated campaigns share one copy (stub_gen/profiler round-trip them
// exactly, so ground truth and recovered profiles are interchangeable).
const FaultProfile& CachedLibcProfile() {
  return AnalysisCache::Instance().Profile("libc", LibcProfile);
}

const FaultProfile& CachedLibxmlProfile() {
  return AnalysisCache::Instance().Profile("libxml2", LibxmlProfile);
}

// --- Table 1 job lists ------------------------------------------------------
// The job runners themselves live in apps/common/warm_targets.cc: one shared
// core per workload, wrapped either cold (construct-run-destroy) or warm
// (snapshot/reset pools). Builders receive the campaign's ExecutionLayer so
// self-contained jobs (job.explore) plug into the same warm pools.

std::vector<CampaignJob> GitTable1Jobs(bool exhaustive, ExecutionLayer& exec) {
  (void)exhaustive;
  (void)exec;
  return AnalyzerJobs(GitBinary().image(), CachedLibcProfile());
}

std::vector<CampaignJob> MysqlTable1Jobs(bool exhaustive, ExecutionLayer& exec) {
  (void)exhaustive;
  (void)exec;
  const FaultProfile& profile = CachedLibcProfile();

  // Phase 1: analyzer-generated scenarios.
  std::vector<CampaignJob> jobs = AnalyzerJobs(MysqlBinary().image(), profile);

  // Phase 2: random injection (the paper ran 1,000 random tests against
  // MySQL and distilled 35 crashes into the two Table 1 bugs).
  for (const char* function : {"close", "read"}) {
    const FunctionProfile* fn = profile.Find(function);
    int64_t retval = fn->errors.front().retval;
    int errno_value = fn->errors.front().errnos.empty() ? 0 : kEIO;
    for (uint64_t seed = 1; seed <= 50; ++seed) {
      CampaignJob job;
      job.scenario = MakeRandomScenario(function, retval, errno_value, 0.1, seed);
      job.label =
          StrFormat("random 10%% on %s (seed %llu)", function, (unsigned long long)seed);
      job.seed = seed;
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

std::vector<CampaignJob> BindTable1Jobs(bool exhaustive, ExecutionLayer& exec) {
  (void)exhaustive;

  // Analyzer scenarios against both library profiles.
  std::vector<CampaignJob> jobs = AnalyzerJobs(BindBinary().image(), CachedLibcProfile());
  for (CampaignJob& job : AnalyzerJobs(BindBinary().image(), CachedLibxmlProfile())) {
    jobs.push_back(std::move(job));
  }

  // Exhaustive malloc sweep over dst_lib_init: the call *is* checked (so the
  // analyzer reports it fully checked), but the recovery path is broken.
  // These run a different workload, so they carry their own runner.
  for (uint64_t k = 1; k <= MiniBind::kDstAllocations; ++k) {
    CampaignJob job;
    job.scenario = MakeCallCountScenario("malloc", k, 0, kENOMEM);
    job.label = StrFormat("malloc #%llu = NULL in dst_lib_init", (unsigned long long)k);
    job.seed = k;
    job.explore = exec.bind_dst_runner();
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<CampaignJob> PbftTable1Jobs(bool exhaustive, ExecutionLayer& exec) {
  // Phase 1: analyzer scenarios against replica 0 (shutdown checkpoint bug).
  std::vector<CampaignJob> jobs = AnalyzerJobs(PbftBinary().image(), CachedLibcProfile());

  // Phase 2: distributed random faults in sendto/recvfrom across replicas
  // (release build). Message loss leaves prepare certificates without their
  // payloads; the crash manifests during the view change. The serial
  // campaign stopped fuzzing once two bugs were on the list; max_bugs plus
  // skip_when_saturated reproduces that cutoff deterministically.
  Scenario dist;
  {
    TriggerDecl decl;
    decl.id = "dist";
    decl.class_name = "DistributedTrigger";
    dist.AddTrigger(decl);
    for (const char* function : {"sendto", "recvfrom"}) {
      FunctionAssoc assoc;
      assoc.function = function;
      assoc.retval = -1;
      assoc.errno_value = kEIO;
      assoc.triggers.push_back(TriggerRef{"dist", false});
      dist.AddFunction(assoc);
    }
  }
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    CampaignJob job;
    job.scenario = dist;
    job.label =
        StrFormat("random sendto/recvfrom faults, seed %llu", (unsigned long long)seed);
    job.seed = seed;
    job.skip_when_saturated = !exhaustive;
    job.explore = exec.pbft_distributed_runner();
    jobs.push_back(std::move(job));
  }
  return jobs;
}

std::vector<CampaignJob> BfsTable1Jobs(bool exhaustive, ExecutionLayer& exec) {
  // Phase 1: analyzer scenarios against the server's libc call sites (the
  // unchecked durability-barrier fopen surfaces here).
  std::vector<CampaignJob> jobs = AnalyzerJobs(BfsBinary().image(), CachedLibcProfile());

  // Phase 2: partial-transfer faults on the vnet fabric itself. These are not
  // library faults -- the runner arms the network's short-write/short-read
  // sites directly -- so they carry their own runner, like bind's dst sweep.
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    CampaignJob job;
    job.label = StrFormat("partial send/recv over vnet, seed %llu", (unsigned long long)seed);
    job.seed = seed;
    job.skip_when_saturated = !exhaustive;
    job.explore = exec.bfs_mux_runner();
    jobs.push_back(std::move(job));
  }
  return jobs;
}

// --- the system table -------------------------------------------------------

// Everything system-specific the driver needs, in one row per target. This
// is the one copy of the dispatch lfi_tool and bug_campaign.cc used to
// repeat as parallel if-chains.
struct SystemEntry {
  const char* name;
  const AppBinary& (*binary)();
  std::vector<const FaultProfile*> (*profiles)();
  JobResult (*table1_runner)(const CampaignJob&);   // default workload, cold
  JobResult (*explore_runner)(const CampaignJob&);  // exploration workload, cold
  std::vector<CampaignJob> (*table1_jobs)(bool exhaustive, ExecutionLayer& exec);
  size_t table1_max_bugs;  // historical fuzz cutoff; 0 = run everything
};

std::vector<const FaultProfile*> LibcOnly() { return {&CachedLibcProfile()}; }
std::vector<const FaultProfile*> LibcAndLibxml() {
  return {&CachedLibcProfile(), &CachedLibxmlProfile()};
}

const SystemEntry kSystems[] = {
    {"git", GitBinary, LibcOnly, RunGitJob, RunGitJob, GitTable1Jobs, 0},
    {"mysql", MysqlBinary, LibcOnly, RunMysqlJob, RunMysqlJob, MysqlTable1Jobs, 0},
    {"bind", BindBinary, LibcAndLibxml, RunBindJob, RunBindJob, BindTable1Jobs, 0},
    {"pbft", PbftBinary, LibcOnly, RunPbftJob, RunPbftExploreJob, PbftTable1Jobs, 2},
    {"bfs", BfsBinary, LibcOnly, RunBfsJob, RunBfsExploreJob, BfsTable1Jobs, 0},
};

const SystemEntry* FindSystem(const std::string& name) {
  for (const SystemEntry& entry : kSystems) {
    if (name == entry.name) {
      return &entry;
    }
  }
  return nullptr;
}

std::vector<std::string> SiteFunctions(const std::vector<CallSiteReport>& reports) {
  std::set<std::string> functions;
  for (const CallSiteReport& report : reports) {
    functions.insert(report.site.function);
  }
  return {functions.begin(), functions.end()};
}

// Engine options for a (possibly journaled) spec; the journal header is the
// spec's identity, so `lfi_tool resume` can rebuild the spec from the file.
CampaignEngine::Options EngineOptions(const CampaignSpec& spec, size_t max_bugs) {
  CampaignEngine::Options options;
  options.workers = spec.workers;
  options.max_bugs = max_bugs;
  options.journal_path = spec.journal_path;
  options.resume = spec.resume;
  options.journal_format = spec.format;
  options.abort_after_records = spec.abort_after_records;
  // An epoch shard child's whole run lies inside one already-scheduled epoch
  // (the frontier snapshot fixed the schedule), so the engine runs it
  // open-loop with a fixed epoch stamp; the single-process epoch campaign
  // instead lets the engine drive the epoch boundaries itself.
  options.epoch_len = spec.epoch_index != kNoEpoch ? 0 : spec.epoch_len;
  options.epoch = spec.epoch_index;
  // Hang detection: never part of the identity, so journals recorded under
  // any timeout byte-compare against any other.
  options.job_timeout_ms = spec.job_timeout_ms;
  options.system = spec.system;
  if (!spec.journal_path.empty()) {
    options.journal_meta = spec.ToJournalMeta();
  }
  return options;
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f != nullptr) {
    std::fclose(f);
  }
  return f != nullptr;
}

// The analyzer inputs an exploration strategy consumes: every library's call
// site reports concatenated in profile order (deterministic, so plan report
// indices are stable across processes), plus one profile to look functions
// up in -- a combined view when the system links several libraries (profiles
// never share function names here; if they did, the first library would win,
// matching link order).
struct ExploreInputs {
  std::vector<const FaultProfile*> profiles;
  std::vector<CallSiteReport> reports;
  FaultProfile combined{"combined"};
  bool use_combined = false;

  const FaultProfile& lookup() const { return use_combined ? combined : *profiles.front(); }
};

ExploreInputs BuildExploreInputs(const SystemEntry& entry) {
  ExploreInputs inputs;
  inputs.profiles = entry.profiles();
  for (const FaultProfile* profile : inputs.profiles) {
    const std::vector<CallSiteReport>& cached =
        AnalysisCache::Instance().Reports(entry.binary().image(), *profile);
    inputs.reports.insert(inputs.reports.end(), cached.begin(), cached.end());
  }
  if (inputs.profiles.size() > 1) {
    for (auto it = inputs.profiles.rbegin(); it != inputs.profiles.rend(); ++it) {
      for (const auto& [name, fn] : (*it)->functions()) {
        inputs.combined.AddFunction(fn);
      }
    }
    inputs.use_combined = true;
  }
  return inputs;
}

// Points the process-wide AnalysisCache at the campaign's persistent
// on-disk cache directory (unless the user already chose one via
// LFI_ANALYSIS_CACHE), and exports the choice so spawned shard children
// inherit it: every child then loads the binary analysis from disk instead
// of re-running the analyzer at startup.
void ConfigureAnalysisCacheDir(const std::string& journal_path) {
  if (journal_path.empty() || std::getenv("LFI_ANALYSIS_CACHE") != nullptr) {
    return;
  }
  std::string dir = journal_path + ".acache";
  AnalysisCache::Instance().SetPersistDir(dir);
#ifdef LFI_HAVE_FORK
  setenv("LFI_ANALYSIS_CACHE", dir.c_str(), /*overwrite=*/0);
#endif
}

CampaignOutcome FromExploration(ExplorationResult result, const CampaignSpec& spec) {
  CampaignOutcome outcome;
  outcome.bugs = std::move(result.bugs);
  outcome.coverage = std::move(result.coverage);
  outcome.scenarios_run = result.scenarios_run;
  outcome.journal_path = spec.journal_path;
  return outcome;
}

}  // namespace

CampaignEngine::ResultRunner SystemJobRunner(const std::string& system,
                                             bool explore_workload) {
  EnsureStockTriggersRegistered();
  const SystemEntry* entry = FindSystem(system);
  if (entry == nullptr) {
    return nullptr;
  }
  return explore_workload ? entry->explore_runner : entry->table1_runner;
}

std::optional<CampaignOutcome> CampaignDriver::Run(std::string* error) {
  auto fail = [&](std::string message) -> std::optional<CampaignOutcome> {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return std::nullopt;
  };
  std::string invalid = spec_.Validate();
  if (!invalid.empty()) {
    return fail(std::move(invalid));
  }
  // Chaos hooks, armed before anything fallible runs. The spec carries the
  // schedule over the wire to spawned children (Arm replaces the whole set,
  // so a forked child re-arming its inherited registry is idempotent);
  // scope names this process so "epoch1.shard2:..." entries fire only in
  // the child they script.
  if (!spec_.failpoints.empty()) {
    std::string fp_error;
    if (!Failpoints::Instance().Arm(spec_.failpoints, &fp_error)) {
      return fail("bad failpoint spec: " + fp_error);
    }
  }
  if (spec_.shard_index != CampaignSpec::kNoShard) {
    Failpoints::Instance().SetScope(
        spec_.epoch_index != kNoEpoch
            ? StrFormat("epoch%zu.shard%zu", spec_.epoch_index, spec_.shard_index)
            : StrFormat("shard%zu", spec_.shard_index));
    if (FailpointFired("child.start")) {
      return fail("failpoint child.start fired");
    }
  }
  EnsureStockTriggersRegistered();
  try {
    bool orchestrates = spec_.shard_count > 1 && spec_.shard_index == CampaignSpec::kNoShard &&
                        (spec_.mode == CampaignMode::kTable1 || spec_.mode == CampaignMode::kExplore);
    if (orchestrates) {
      if (spec_.mode == CampaignMode::kExplore && spec_.strategy == ExploreStrategy::kCoverage) {
        // Validate guaranteed epoch_len != 0 for this combination.
        return RunEpochOrchestration(error);
      }
      return RunShardOrchestration(error);
    }
    switch (spec_.mode) {
      case CampaignMode::kTable1:
        return RunTable1(error);
      case CampaignMode::kExplore:
        return RunExplore(error);
      case CampaignMode::kResume:
        return RunResume(error);
      case CampaignMode::kReplay:
        return RunReplay(error);
    }
    return fail("unreachable campaign mode");
  } catch (const std::exception& e) {
    // The engine throws on unusable journals (divergence, I/O); surface it
    // as a CLI-friendly error instead of tearing down the process.
    return fail(e.what());
  }
}

std::optional<CampaignOutcome> CampaignDriver::RunTable1(std::string* error) {
  if (spec_.system == "all") {
    // The per-system engines share no job stream, so one journal cannot cover the
    // union campaign (Validate already refused a journal path).
    std::set<FoundBug> all;
    size_t scenarios = 0;
    for (const SystemEntry& entry : kSystems) {
      CampaignSpec per_system = spec_;
      per_system.system = entry.name;
      CampaignDriver driver(per_system);
      auto outcome = driver.Run(error);
      if (!outcome) {
        return std::nullopt;
      }
      all.insert(outcome->bugs.begin(), outcome->bugs.end());
      scenarios += outcome->scenarios_run;
    }
    CampaignOutcome outcome;
    outcome.bugs = {all.begin(), all.end()};
    outcome.scenarios_run = scenarios;
    return outcome;
  }

  const SystemEntry* entry = FindSystem(spec_.system);
  // The execution layer (warm pools unless --cold-start) must outlive the
  // engine run: jobs built below capture its runners.
  ExecutionLayer exec(spec_.system, /*explore_workload=*/false, spec_.cold_start);
  std::vector<CampaignJob> jobs = entry->table1_jobs(spec_.exhaustive, exec);
  size_t max_bugs = spec_.exhaustive ? 0 : entry->table1_max_bugs;
  CampaignEngine engine(EngineOptions(spec_, max_bugs));
  ExhaustiveSource source(std::move(jobs));
  if (spec_.shard_index != CampaignSpec::kNoShard) {
    ShardSource sharded(source, spec_.shard_index, spec_.shard_count);
    return FromExploration(engine.Run(sharded, exec.runner()), spec_);
  }
  return FromExploration(engine.Run(source, exec.runner()), spec_);
}

std::optional<CampaignOutcome> CampaignDriver::RunExplore(std::string* error) {
  auto fail = [&](std::string message) -> std::optional<CampaignOutcome> {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return std::nullopt;
  };
  const SystemEntry* entry = FindSystem(spec_.system);
  ExploreInputs inputs = BuildExploreInputs(*entry);
  CampaignEngine engine(EngineOptions(spec_, /*max_bugs=*/0));
  ExecutionLayer exec(spec_.system, /*explore_workload=*/true, spec_.cold_start);
  auto run = [&](ScenarioSource& source) -> CampaignOutcome {
    if (spec_.shard_index != CampaignSpec::kNoShard) {
      ShardSource sharded(source, spec_.shard_index, spec_.shard_count);
      return FromExploration(engine.Run(sharded, exec.runner()), spec_);
    }
    return FromExploration(engine.Run(source, exec.runner()), spec_);
  };
  switch (spec_.strategy) {
    case ExploreStrategy::kExhaustive: {
      std::vector<CampaignJob> jobs;
      for (const FaultProfile* profile : inputs.profiles) {
        for (CampaignJob& job : AnalyzerJobs(entry->binary().image(), *profile)) {
          jobs.push_back(std::move(job));
        }
      }
      ExhaustiveSource source(std::move(jobs), spec_.budget);
      return run(source);
    }
    case ExploreStrategy::kRandom: {
      RandomSweepSource source(inputs.lookup(), SiteFunctions(inputs.reports),
                               spec_.budget != 0 ? spec_.budget : 64, spec_.seed);
      return run(source);
    }
    case ExploreStrategy::kCoverage: {
      CoverageGuidedSource::Options options;
      options.budget = spec_.budget != 0 ? spec_.budget : 64;
      options.seed = spec_.seed;
      std::optional<FrontierState> frontier;
      if (spec_.epoch_index != kNoEpoch) {
        // Epoch shard child: reseed the frontier the orchestrator exported
        // at the epoch boundary and re-derive the epoch's job stream
        // open-loop. The schedule limit is where the epoch ends in the
        // unsharded stream; a frontier that runs dry earlier stops earlier,
        // exactly like the single-process run's early epoch flush.
        std::ifstream in(spec_.frontier_path);
        std::string xml((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
        if (xml.empty()) {
          return fail("cannot read frontier snapshot " + spec_.frontier_path);
        }
        std::string frontier_error;
        frontier = FrontierState::Parse(xml, &frontier_error);
        if (!frontier) {
          return fail("bad frontier snapshot " + spec_.frontier_path + ": " + frontier_error);
        }
        options.open_loop = true;
        options.schedule_limit =
            frontier->scheduled + spec_.epoch_len * CampaignEngine::Options::kDefaultBatchSize;
      }
      CoverageGuidedSource source(inputs.reports, inputs.lookup(), options);
      if (frontier) {
        source.ImportFrontier(*frontier);
      }
      return run(source);
    }
  }
  return CampaignOutcome{};
}

std::optional<CampaignOutcome> CampaignDriver::RunResume(std::string* error) {
  auto journal = CampaignJournal::Load(spec_.journal_path, error);
  if (!journal) {
    return std::nullopt;
  }
  auto recorded = CampaignSpec::FromJournalMeta(journal->metadata(), error);
  if (!recorded) {
    return std::nullopt;
  }
  recorded->workers = spec_.workers;
  recorded->journal_path = spec_.journal_path;
  recorded->resume = true;
  // `resume --shards N` resumes a merged epoch-synchronized journal as a
  // distributed campaign again (the journal's identity doesn't record the
  // shard count -- it is an execution choice, not part of the identity).
  if (spec_.shard_count > 1 && recorded->epoch_len == 0) {
    if (error != nullptr) {
      *error = "--shards on resume applies to epoch-synchronized (epoch-len) campaigns; "
               "this journal resumes single-process";
    }
    return std::nullopt;
  }
  recorded->shard_count = spec_.shard_count;
  // Resume never re-encodes: the engine keeps appending in whatever format
  // the file already uses.
  recorded->format = journal->format();
  recorded->json = spec_.json;
  recorded->abort_after_records = spec_.abort_after_records;
  // Supervision policy is environment, not identity: the resuming run's
  // flags win, and a resume never inherits the killed run's failpoints.
  recorded->child_timeout_ms = spec_.child_timeout_ms;
  recorded->max_retries = spec_.max_retries;
  recorded->backoff_ms = spec_.backoff_ms;
  recorded->job_timeout_ms = spec_.job_timeout_ms;
  recorded->cold_start = spec_.cold_start;
  recorded->failpoints = spec_.failpoints;
  CampaignDriver driver(*recorded);
  auto outcome = driver.Run(error);
  if (outcome) {
    outcome->metadata = journal->metadata();
  }
  return outcome;
}

std::optional<CampaignOutcome> CampaignDriver::RunReplay(std::string* error) {
  auto fail = [&](std::string message) -> std::optional<CampaignOutcome> {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return std::nullopt;
  };
  auto journal = CampaignJournal::Load(spec_.journal_path, error);
  if (!journal) {
    return std::nullopt;
  }
  std::string system = journal->Meta("system", "");
  bool explore_workload = journal->Meta("command", "explore") != "campaign";
  CampaignEngine::ResultRunner runner = SystemJobRunner(system, explore_workload);
  if (!runner) {
    return fail("journal names unknown system '" + system + "'");
  }

  // Which journaled injections to replay: every record that injected, or
  // the one the selector picks ("record" or "record:injection").
  struct Target {
    size_t record;
    size_t injection;
    // Whole-record replays re-inject the record's full fault sequence;
    // explicit "record:injection" selectors re-inject just the one fault.
    bool whole_record;
  };
  std::vector<Target> targets;
  const std::vector<JournalRecord>& records = journal->records();
  if (!spec_.replay_selector.empty()) {
    std::vector<std::string> parts = Split(spec_.replay_selector, ':');
    auto record = ParseInt(parts[0]);
    if (!record || parts.size() > 2 || *record < 0 ||
        static_cast<size_t>(*record) >= records.size()) {
      return fail(StrFormat("bad record selector '%s' (journal has %zu records)",
                            spec_.replay_selector.c_str(), records.size()));
    }
    const InjectionLog& log = records[*record].result.log;
    if (log.empty()) {
      return fail(StrFormat("record %lld injected nothing; nothing to replay",
                            static_cast<long long>(*record)));
    }
    size_t injection = log.size() - 1;
    bool whole_record = parts.size() != 2;
    if (parts.size() == 2) {
      auto parsed = ParseInt(parts[1]);
      if (!parsed || *parsed < 0 || static_cast<size_t>(*parsed) >= log.size()) {
        return fail(StrFormat("record %lld has %zu injection(s)",
                              static_cast<long long>(*record), log.size()));
      }
      injection = static_cast<size_t>(*parsed);
    }
    targets.push_back({static_cast<size_t>(*record), injection, whole_record});
  } else {
    for (size_t i = 0; i < records.size(); ++i) {
      if (!records[i].result.log.empty()) {
        // The last injection is the one the run died on (when it died); the
        // replay re-injects the whole sequence leading up to it.
        targets.push_back({i, records[i].result.log.size() - 1, /*whole_record=*/true});
      }
    }
  }

  CampaignOutcome outcome;
  outcome.journal_path = spec_.journal_path;
  outcome.metadata = journal->metadata();
  for (const Target& target : targets) {
    const JournalRecord& record = records[target.record];
    const InjectionRecord& injection = record.result.log.records()[target.injection];
    CampaignJob job;
    // Whole-record replays re-inject the full logged sequence: a survived
    // multi-injection run (the bfs consistency corruptions) only reproduces
    // when every earlier fault lands too, keeping the call numbering aligned
    // with the log. A single-injection selector keeps the narrower scenario.
    job.scenario = target.whole_record ? record.result.log.FullReplayScenario()
                                       : record.result.log.ReplayScenario(target.injection);
    job.label = StrFormat("replay %zu:%zu of %s", target.record, target.injection,
                          spec_.journal_path.c_str());
    job.seed = record.seed;
    JobResult replayed = runner(job);

    // A record that exposed bugs must reproduce at least one of its crash
    // sites from disk alone; injection-only records just report what ran.
    // Records whose log spans several processes (the distributed pbft fuzz
    // phase interposes every replica) cannot be reproduced faithfully by
    // the single-process replay harness -- the call-count trigger would
    // land on the wrong replica's Nth call -- so they are informational.
    std::set<std::string> processes;
    for (const InjectionRecord& logged : record.result.log.records()) {
      processes.insert(logged.process);
    }
    bool single_process = processes.size() <= 1;
    bool has_expectation = !record.result.bugs.empty() && single_process;
    bool match = false;
    for (const FoundBug& want : record.result.bugs) {
      for (const FoundBug& got : replayed.bugs) {
        match |= want.system == got.system && want.kind == got.kind && want.where == got.where;
      }
    }

    ReplayOutcome replay;
    replay.record = target.record;
    replay.injection = target.injection;
    replay.function = injection.function;
    replay.call_number = injection.call_number;
    replay.crashed = !replayed.bugs.empty();
    replay.where = replayed.bugs.empty() ? "" : replayed.bugs.front().where;
    replay.recorded_bug = !record.result.bugs.empty();
    replay.distributed = !single_process;
    replay.informational = !has_expectation;
    replay.reproduced = has_expectation && match;
    outcome.replays_expected += has_expectation ? 1 : 0;
    outcome.replays_reproduced += (has_expectation && match) ? 1 : 0;
    outcome.replays.push_back(std::move(replay));
  }
  outcome.ok = outcome.replays_reproduced == outcome.replays_expected;
  return outcome;
}

std::optional<CampaignOutcome> CampaignDriver::RunShardOrchestration(std::string* error) {
  auto fail = [&](std::string message) -> std::optional<CampaignOutcome> {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return std::nullopt;
  };
  // Refuse to clobber artifacts before any shard spends work (the engine
  // applies the same rule per shard journal).
  if (FileExists(spec_.journal_path)) {
    return fail("journal " + spec_.journal_path +
                " already exists; resume it to continue the campaign, or delete it to "
                "start fresh");
  }
  ConfigureAnalysisCacheDir(spec_.journal_path);

  std::vector<CampaignSpec> children;
  std::vector<std::string> shard_paths;
  for (size_t shard = 0; shard < spec_.shard_count; ++shard) {
    CampaignSpec child = spec_;
    child.shard_index = shard;
    child.journal_path = spec_.ShardJournalPath(shard);
    child.json = false;
    child.abort_after_records = 0;
    // A leftover shard journal is a killed orchestration's completed work:
    // resume it instead of discarding it. Finished shards replay entirely
    // from disk; a journal recorded under a different campaign identity
    // makes the child's engine refuse, which surfaces as the shard failing.
    child.resume = FileExists(child.journal_path);
    shard_paths.push_back(child.journal_path);
    children.push_back(std::move(child));
  }

  // Every shard sees at most the whole budget's job stream, so the budget
  // is the (conservative) per-child job bound the derived deadline uses.
  if (!RunShardChildren(children, spec_.budget, error)) {
    return std::nullopt;
  }

  JournalMetadata metadata;
  std::vector<MergeInputStats> stats;
  auto merged =
      MergeJournals(shard_paths, spec_.journal_path, error, &metadata, &stats, spec_.format);
  if (!merged) {
    return std::nullopt;
  }
  CampaignOutcome outcome = FromExploration(std::move(*merged), spec_);
  outcome.metadata = std::move(metadata);
  outcome.shards = std::move(stats);
  return outcome;
}

bool CampaignDriver::RunShardChildren(const std::vector<CampaignSpec>& children,
                                      size_t jobs_hint, std::string* error) {
  ShardSupervisor::Options options;
  options.tool_path = tool_path_;
  options.max_retries = spec_.max_retries;
  options.backoff_ms = spec_.backoff_ms;
  // The per-child deadline: explicit wins; otherwise derive one from the
  // per-job budget (a child runs at most jobs_hint jobs plus startup/merge
  // slack). No budget at all = no deadline -- hang detection is opt-in.
  options.child_timeout_ms = spec_.child_timeout_ms;
  if (options.child_timeout_ms == 0 && spec_.job_timeout_ms != 0) {
    size_t jobs = jobs_hint != 0 ? jobs_hint : 64;
    options.child_timeout_ms = spec_.job_timeout_ms * static_cast<uint64_t>(jobs + 2);
  }
  ShardSupervisor supervisor(options,
                             [](const CampaignSpec& child, std::string* child_error) {
                               CampaignDriver driver(child);
                               return driver.Run(child_error).has_value();
                             });
  return supervisor.Run(children, error);
}

std::optional<CampaignOutcome> CampaignDriver::RunEpochOrchestration(std::string* error) {
  auto fail = [&](std::string message) -> std::optional<CampaignOutcome> {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return std::nullopt;
  };
  const size_t batch_size = CampaignEngine::Options::kDefaultBatchSize;

  // Resume loads the merged journal (possibly torn by a kill) and replays
  // its complete epochs through the loop below; a fresh run refuses to
  // clobber an existing artifact.
  std::vector<JournalRecord> loaded;
  JournalFormat format = spec_.format;
  if (spec_.resume) {
    auto journal = CampaignJournal::Load(spec_.journal_path, error);
    if (!journal) {
      return std::nullopt;
    }
    for (const auto& [key, value] : spec_.ToJournalMeta()) {
      std::string recorded = journal->Meta(key, "");
      if (recorded != value) {
        return fail("journal " + spec_.journal_path + " records a campaign with " + key +
                    "='" + recorded + "', not '" + value + "'; resuming it would diverge");
      }
    }
    loaded = journal->records();
    format = journal->format();
  } else if (FileExists(spec_.journal_path)) {
    return fail("journal " + spec_.journal_path +
                " already exists; resume it to continue the campaign, or delete it to "
                "start fresh");
  }
  ConfigureAnalysisCacheDir(spec_.journal_path);

  const SystemEntry* entry = FindSystem(spec_.system);
  ExploreInputs inputs = BuildExploreInputs(*entry);
  CoverageGuidedSource::Options master_options;
  master_options.budget = spec_.budget != 0 ? spec_.budget : 64;
  master_options.seed = spec_.seed;
  CoverageGuidedSource master(inputs.reports, inputs.lookup(), master_options);

  // The merged journal is written exactly the way the single-process
  // --epoch-len run writes its own: the same header (no shard keys), records
  // appended in stream order as epochs merge, one Finalize at the very end.
  // On resume the file is rewritten from record zero -- appending the loaded
  // records unchanged reseals extents at the same boundaries, so the rewrite
  // is bit-identical and cleanly discards any torn tail the kill left.
  CampaignJournal merged;
  if (!merged.Create(spec_.journal_path, spec_.ToJournalMeta(), error, format)) {
    return std::nullopt;
  }
  MergeFoldState fold;
  std::deque<JournalRecord> replay(loaded.begin(), loaded.end());
  size_t appended_live = 0;
  std::vector<MergeInputStats> shard_stats(spec_.shard_count);
  std::vector<std::set<FoundBug>> shard_bugs(spec_.shard_count);
  for (size_t shard = 0; shard < spec_.shard_count; ++shard) {
    shard_stats[shard].path = spec_.journal_path + StrFormat(".epoch*.shard%zu", shard);
    shard_stats[shard].shard_index = shard;
  }

  for (size_t epoch = 0;; ++epoch) {
    // The epoch's schedule is a pure function of the frontier: snapshot it
    // first, then enumerate the epoch's jobs from the master source exactly
    // as the single-process engine would -- up to epoch_len batches, ending
    // early if the frontier runs dry (feedback for these jobs arrives only
    // after the epoch merges, so enumeration is open-loop by construction).
    FrontierState frontier = master.ExportFrontier();
    std::vector<CampaignJob> jobs;
    size_t batches = 0;
    while (batches < spec_.epoch_len) {
      std::vector<CampaignJob> next = master.NextBatch(batch_size);
      if (next.empty()) {
        break;
      }
      ++batches;
      for (CampaignJob& job : next) {
        jobs.push_back(std::move(job));
      }
    }
    if (jobs.empty()) {
      break;  // frontier exhausted or budget reached: the campaign is over
    }

    if (replay.size() >= jobs.size()) {
      // The merged journal fully covers this epoch: replay it. Loaded
      // records substitute for child work, and the master receives the
      // epoch's feedback exactly as if the epoch had just merged.
      for (size_t i = 0; i < jobs.size(); ++i) {
        const JournalRecord& record = replay[i];
        if (record.label != jobs[i].label || record.stream_index != jobs[i].stream_index ||
            record.epoch != epoch) {
          return fail(StrFormat(
              "journal %s does not align with the regenerated stream at record %zu "
              "('%s' where the frontier schedules '%s'); it was not recorded by this spec",
              spec_.journal_path.c_str(), fold.records + i, record.label.c_str(),
              jobs[i].label.c_str()));
        }
      }
      for (size_t i = 0; i < jobs.size(); ++i) {
        JournalRecord record = std::move(replay.front());
        replay.pop_front();
        // The engine's fold, continued across the rewrite: the recomputed
        // feedback equals the recorded copy, so the bytes do not change.
        RunFeedback feedback;
        if (!record.gated) {
          for (const FoundBug& bug : record.result.bugs) {
            feedback.new_bug |= fold.bugs.insert(bug).second;
          }
          feedback.injections = record.result.injections;
          feedback.fingerprint = record.result.fingerprint;
          feedback.new_blocks = record.result.coverage.NewlyCoveredVersus(fold.coverage);
          fold.coverage.Absorb(record.result.coverage);
          ++fold.scenarios_run;
          record.feedback = feedback;
        }
        if (!merged.Append(record)) {
          return fail("journal append failed rewriting " + spec_.journal_path +
                      ": disk full or I/O error");
        }
        ++fold.records;
        fold.next_stream_index = record.stream_index + 1;
        master.OnFeedback(jobs[i], feedback);
      }
      continue;
    }
    // The first epoch the merged journal does not fully cover runs live. Its
    // partial records (the kill's torn tail) are discarded: the sealed
    // per-epoch shard journals are the durable copy the epoch is rebuilt
    // from, and a shard whose journal already completed replays it from disk
    // without re-executing anything.
    replay.clear();

    // The frontier export is tmp+rename like every artifact a child (or a
    // resumed orchestrator) may read: a crash mid-write must never leave a
    // half-written snapshot where a complete one is expected.
    std::string frontier_path = spec_.EpochFrontierPath(epoch);
    {
      std::string tmp_path = frontier_path + ".tmp";
      std::ofstream out(tmp_path);
      out << frontier.ToXml();
      bool ok = out.good();
      out.close();
      if (FailpointFired("frontier.write")) {
        ok = false;
      }
      if (!ok || std::rename(tmp_path.c_str(), frontier_path.c_str()) != 0) {
        return fail("cannot write frontier snapshot " + frontier_path);
      }
    }

    std::vector<CampaignSpec> children;
    for (size_t shard = 0; shard < spec_.shard_count; ++shard) {
      CampaignSpec child = spec_;
      child.shard_index = shard;
      child.epoch_index = epoch;
      child.journal_path = spec_.EpochShardJournalPath(epoch, shard);
      child.frontier_path = frontier_path;
      child.json = false;
      child.abort_after_records = 0;
      // A leftover epoch-shard journal is a killed orchestration's completed
      // work: resume it (a complete one replays wholly from disk).
      child.resume = FileExists(child.journal_path);
      children.push_back(std::move(child));
    }
    if (!RunShardChildren(children, jobs.size(), error)) {
      return std::nullopt;
    }

    std::vector<CampaignJournal> epoch_journals;
    for (const CampaignSpec& child : children) {
      auto journal = CampaignJournal::Load(child.journal_path, error);
      if (!journal) {
        return std::nullopt;
      }
      epoch_journals.push_back(std::move(*journal));
    }
    std::vector<JournalRecord> merged_records;
    if (!MergeRecordsInto(merged, epoch_journals, &fold, error, &merged_records)) {
      return std::nullopt;
    }
    if (merged_records.size() != jobs.size()) {
      return fail(StrFormat("epoch %zu merged %zu records but the frontier scheduled %zu "
                            "jobs; a shard child diverged from the schedule",
                            epoch, merged_records.size(), jobs.size()));
    }
    for (size_t i = 0; i < jobs.size(); ++i) {
      if (merged_records[i].label != jobs[i].label ||
          merged_records[i].stream_index != jobs[i].stream_index) {
        return fail(StrFormat("epoch %zu record %zu is '%s' where the frontier scheduled "
                              "'%s'; a shard child diverged from the schedule",
                              epoch, i, merged_records[i].label.c_str(),
                              jobs[i].label.c_str()));
      }
    }
    for (size_t shard = 0; shard < epoch_journals.size(); ++shard) {
      MergeInputStats& stats = shard_stats[shard];
      stats.records += epoch_journals[shard].records().size();
      for (const JournalRecord& record : epoch_journals[shard].records()) {
        if (!record.gated) {
          ++stats.scenarios_run;
        }
        for (const FoundBug& bug : record.result.bugs) {
          shard_bugs[shard].insert(bug);
        }
      }
      stats.bugs = shard_bugs[shard].size();
    }
    // The epoch boundary: the whole epoch's feedback reaches the master
    // frontier at once, in stream order -- exactly the single-process
    // engine's deferred epoch flush.
    for (size_t i = 0; i < jobs.size(); ++i) {
      master.OnFeedback(jobs[i], merged_records[i].feedback);
    }
    appended_live += merged_records.size();
    if (spec_.abort_after_records != 0 && appended_live >= spec_.abort_after_records) {
      // The kill-and-resume test hook, mirroring the engine's: die without
      // finalizing. The sealed shard journals plus the merged journal's
      // sealed extents are exactly what resume rebuilds from.
      std::_Exit(3);
    }
  }

  if (!replay.empty()) {
    return fail(StrFormat("journal %s has %zu records past the regenerated stream's end; "
                          "it was not recorded by this spec",
                          spec_.journal_path.c_str(), replay.size()));
  }
  if (!merged.Finalize(error)) {
    return std::nullopt;
  }
  CampaignOutcome outcome;
  outcome.bugs = {fold.bugs.begin(), fold.bugs.end()};
  outcome.coverage = std::move(fold.coverage);
  outcome.scenarios_run = fold.scenarios_run;
  outcome.journal_path = spec_.journal_path;
  outcome.metadata = spec_.ToJournalMeta();
  outcome.shards = std::move(shard_stats);
  return outcome;
}

std::optional<CampaignOutcome> MergeCampaignJournals(const std::vector<std::string>& inputs,
                                                     const std::string& output_path,
                                                     std::string* error,
                                                     std::optional<JournalFormat> format) {
  JournalMetadata metadata;
  std::vector<MergeInputStats> stats;
  auto merged = MergeJournals(inputs, output_path, error, &metadata, &stats, format);
  if (!merged) {
    return std::nullopt;
  }
  CampaignOutcome outcome;
  outcome.bugs = std::move(merged->bugs);
  outcome.coverage = std::move(merged->coverage);
  outcome.scenarios_run = merged->scenarios_run;
  outcome.journal_path = output_path;
  outcome.metadata = std::move(metadata);
  outcome.shards = std::move(stats);
  return outcome;
}

}  // namespace lfi
