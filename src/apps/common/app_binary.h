// Application binaries and their call-site tables.
//
// Every target application ships in two coupled representations:
//   1. a C++ implementation that runs against the virtual libc, and
//   2. a SimELF binary image -- what the paper's analyzer sees -- generated
//      from a declarative call-site table.
// The table names every library call site and its error-checking pattern;
// the builder emits ISA code realizing the pattern and records each site's
// byte offset. The C++ implementation marks its active call site by name
// (AppBinary::SiteOffset feeds ScopedFrame::set_offset), so the offsets the
// analyzer reports are exactly the offsets the call-stack triggers match at
// run time. The table is also the ground truth for the Table 4 accuracy
// evaluation.

#ifndef LFI_APPS_COMMON_APP_BINARY_H_
#define LFI_APPS_COMMON_APP_BINARY_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "image/image.h"

namespace lfi {

// How the (synthetic) application code checks a library call's result.
enum class CheckPattern {
  kCheckEqAll,       // cmpi+je on every error code -> fully checked
  kCheckIneq,        // cmpi 0 / jl (or sign test) -> fully checked
  kCheckZeroEq,      // test r0,r0 + je -> pointer null check (fully, E={0})
  kCheckSome,        // equality checks on a strict subset -> partially checked
  kNoCheck,          // result ignored -> unchecked
  kCheckOutsideE,    // checks literals outside E -> unchecked per Algorithm 1
  kCheckViaHelper,   // moves the result to an argument register and calls a
                     // helper that performs the check; a real check the
                     // intra-procedural analyzer cannot see -> analyzer says
                     // unchecked, ground truth says checked (false positive)
};

struct CallSiteSpec {
  std::string site_name;       // unique, e.g. "git.read_ref.opendir"
  std::string enclosing;       // emitted function symbol
  std::string function;        // library function called
  CheckPattern pattern = CheckPattern::kNoCheck;
  std::vector<int64_t> codes;  // codes to check (meaning depends on pattern)

  // Ground truth for the accuracy evaluation: does the application actually
  // check this call's error return?
  bool actually_checked() const {
    return pattern != CheckPattern::kNoCheck && pattern != CheckPattern::kCheckOutsideE;
  }
};

class AppBinary {
 public:
  AppBinary() = default;
  AppBinary(Image image, std::map<std::string, uint32_t> site_offsets,
            std::vector<CallSiteSpec> sites)
      : image_(std::move(image)),
        site_offsets_(std::move(site_offsets)),
        sites_(std::move(sites)) {}

  const Image& image() const { return image_; }
  const std::vector<CallSiteSpec>& sites() const { return sites_; }

  // Byte offset of the named call site; 0xffffffff when unknown.
  uint32_t SiteOffset(const std::string& site_name) const;

  const CallSiteSpec* FindSite(const std::string& site_name) const;

  // All sites calling `function`, in emission order (matching the order the
  // analyzer reports them).
  std::vector<const CallSiteSpec*> SitesFor(const std::string& function) const;

 private:
  Image image_;
  std::map<std::string, uint32_t> site_offsets_;
  std::vector<CallSiteSpec> sites_;
};

// Builds the binary from a site table. Filler instructions and the check
// patterns are emitted deterministically; `filler_seed` varies inter-site
// padding so binaries do not look degenerate.
class AppBinaryBuilder {
 public:
  explicit AppBinaryBuilder(std::string module_name, uint64_t filler_seed = 17);

  // Adds one call site. Sites with the same `enclosing` name are grouped
  // into one emitted function, in insertion order.
  void AddSite(CallSiteSpec spec);

  // Emits, assembles and resolves offsets. Aborts on internal errors (the
  // table is compiled in, so failures are bugs, not input errors).
  AppBinary Build();

 private:
  std::string module_name_;
  uint64_t filler_seed_;
  std::vector<CallSiteSpec> sites_;
};

}  // namespace lfi

#endif  // LFI_APPS_COMMON_APP_BINARY_H_
