// The campaign driver: one executor for every CampaignSpec.
//
// CampaignDriver owns everything the per-system free functions and
// lfi_tool's subcommands used to wire by hand: source construction (the
// Table 1 job lists or an exploration strategy), engine options, journal
// creation/resume, replay, and result reporting. Run() returns one
// CampaignOutcome -- bugs, cumulative coverage, the journal artifact, and
// per-shard/per-replay accounting -- whatever the mode.
//
// Multi-process campaigns are a property of the spec, not separate wiring:
// a spec with shard_count > 1 and no shard_index makes Run() orchestrate --
// every shard executes the same deterministic spec with shard=i/N (dealt by
// scenario fingerprint, core/exploration.h ShardSource) into
// spec.ShardJournalPath(i), either as spawned `lfi_tool run-spec` child
// processes (set_tool_path) or in-process, and the per-shard journals are
// then merged (core/journal.h MergeJournals) into spec.journal_path as a
// valid, resumable single-process journal.
//
// The historical RunGitCampaign/.../ExplorePbftCampaign/ResumeCampaign free
// functions (bug_campaign.h) are one-line wrappers over this driver.

#ifndef LFI_APPS_COMMON_CAMPAIGN_DRIVER_H_
#define LFI_APPS_COMMON_CAMPAIGN_DRIVER_H_

#include <optional>
#include <string>
#include <vector>

#include "apps/common/campaign_spec.h"
#include "core/campaign_engine.h"
#include "core/journal.h"

namespace lfi {

// One journaled injection re-run by replay mode.
struct ReplayOutcome {
  size_t record = 0;     // journal record index
  size_t injection = 0;  // injection index within the record's log
  std::string function;  // what was re-injected, for reporting
  uint64_t call_number = 0;
  bool crashed = false;     // the re-run exposed a bug
  std::string where;        // its crash site, when it did
  bool recorded_bug = false;  // the journal record had exposed a bug
  bool distributed = false;   // the record's log spans several processes
  bool informational = false;  // no reproduction expectation (clean or
                               // multi-process record); excluded from ok
  bool reproduced = false;  // a recorded crash site was matched
};

// What a driven campaign yields, whatever the mode.
struct CampaignOutcome {
  std::vector<FoundBug> bugs;
  CoverageMap coverage;
  size_t scenarios_run = 0;
  // The journal written (table1/explore/shard) or consumed (resume/replay);
  // "" when the run was not journaled.
  std::string journal_path;
  // The journal header (resume/replay/shard: what the artifact records).
  JournalMetadata metadata;
  // Shard orchestration: one entry per shard, from its merged journal.
  std::vector<MergeInputStats> shards;
  // Replay mode: per-injection detail plus the pass/fail summary.
  std::vector<ReplayOutcome> replays;
  size_t replays_expected = 0;
  size_t replays_reproduced = 0;
  // False only when replay mode failed to reproduce an expected crash site.
  bool ok = true;
};

class CampaignDriver {
 public:
  explicit CampaignDriver(CampaignSpec spec) : spec_(std::move(spec)) {}

  // Path to the lfi_tool binary (argv[0]): shard orchestration spawns
  // `<tool_path> run-spec <spec.xml>` child processes, one per shard. Empty
  // (the default) runs the shards in-process, sequentially -- same results,
  // no process isolation.
  void set_tool_path(std::string path) { tool_path_ = std::move(path); }

  const CampaignSpec& spec() const { return spec_; }

  // Executes the spec. Returns nullopt with *error set on invalid specs,
  // unusable journals, or failed shard children; engine exceptions
  // (journal divergence, I/O) are surfaced the same way.
  std::optional<CampaignOutcome> Run(std::string* error = nullptr);

 private:
  std::optional<CampaignOutcome> RunTable1(std::string* error);
  std::optional<CampaignOutcome> RunExplore(std::string* error);
  std::optional<CampaignOutcome> RunResume(std::string* error);
  std::optional<CampaignOutcome> RunReplay(std::string* error);
  std::optional<CampaignOutcome> RunShardOrchestration(std::string* error);
  // Epoch-synchronized distributed coverage-guided exploration (the spec has
  // shard_count > 1, the coverage strategy, and epoch_len > 0): runs the
  // spawn -> merge -> reseed loop docs/architecture.md specifies, producing a
  // merged journal byte-identical to the single-process --epoch-len run.
  std::optional<CampaignOutcome> RunEpochOrchestration(std::string* error);
  // Runs one child campaign per spec under the ShardSupervisor
  // (apps/common/shard_supervisor.h): exec'd `lfi_tool run-spec` processes
  // when the tool path is known, fork-without-exec child processes
  // otherwise (threads on non-POSIX). The supervisor applies the spec's
  // deadline/retry/backoff policy; `jobs_hint` (jobs a child may run, 0 =
  // unknown) sizes the derived per-child deadline when the spec sets
  // job_timeout_ms but no child_timeout_ms. False + *error when a child
  // exhausts its retries.
  bool RunShardChildren(const std::vector<CampaignSpec>& children, size_t jobs_hint,
                        std::string* error);

  CampaignSpec spec_;
  std::string tool_path_;
};

// Merges journals through MergeJournals and reports the result as a
// CampaignOutcome (`lfi_tool merge`). `format` picks the output encoding;
// nullopt keeps the first input's.
std::optional<CampaignOutcome> MergeCampaignJournals(
    const std::vector<std::string>& inputs, const std::string& output_path,
    std::string* error = nullptr, std::optional<JournalFormat> format = std::nullopt);

}  // namespace lfi

#endif  // LFI_APPS_COMMON_CAMPAIGN_DRIVER_H_
