// Fault-tolerant shard child supervision.
//
// The orchestration paths in CampaignDriver (plain shard/merge and the epoch
// protocol) hand their per-shard child specs to this supervisor instead of
// the old fork-and-block loop. The supervisor owns the child lifecycle:
//
//   spawn -> running -> reaped clean                      (done)
//                    -> nonzero exit / killed by signal   -> backoff -> respawn
//                    -> deadline exceeded -> SIGKILL      -> backoff -> respawn
//   spawn fails      -> kill + reap started children, run every child
//                       sequentially in-process (degraded, never fatal)
//
// Respawns are capped exponential backoff up to Options::max_retries; a
// respawned child re-checks its journal on disk and resumes it, so the
// crashed attempt's sealed prefix is salvaged and only unfinished work
// re-executes -- every record is seeded and dealt deterministically, which is
// why the final merged journal stays byte-identical to an unfailed run under
// any failure schedule. Failpoint schedules (CampaignSpec::failpoints) are
// stripped from respawned children: a retry models a fresh replacement host,
// not a machine that crashes the same way forever.
//
// Children run as processes two ways: `<tool_path> run-spec <spec.xml>`
// (exec; the spec file is the wire format) when the tool path is known, or
// fork-without-exec running `runner(spec)` in the child when it is not --
// which gives library embeddings and the test suite real killable,
// hangable, supervisable processes. Non-POSIX builds fall back to one
// thread per child, unsupervised (no deadlines, no retries).

#ifndef LFI_APPS_COMMON_SHARD_SUPERVISOR_H_
#define LFI_APPS_COMMON_SHARD_SUPERVISOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "apps/common/campaign_spec.h"

namespace lfi {

// How a supervised child attempt ended.
enum class ChildExit {
  kClean,        // exit(0)
  kNonZero,      // exited with a nonzero status
  kSignaled,     // killed by a signal (a crash)
  kTimedOut,     // exceeded its deadline; the supervisor SIGKILLed it
  kSpawnFailed,  // fork itself failed
};

const char* ChildExitName(ChildExit exit);

class ShardSupervisor {
 public:
  struct Options {
    // Path of the lfi_tool binary to exec (`run-spec`); "" forks without
    // exec and runs the ChildRunner in the child process.
    std::string tool_path;
    // Wall-clock deadline per child attempt; 0 = none. An attempt past its
    // deadline is SIGKILLed and classified kTimedOut.
    uint64_t child_timeout_ms = 0;
    // Respawns per child after a failed attempt (0 = fail on the first).
    size_t max_retries = 2;
    // First respawn delay; doubles per respawn, capped at 10s.
    uint64_t backoff_ms = 50;
    // Heartbeat cap on the supervision sweep's event wait. The supervisor
    // sleeps until the nearest deadline/respawn timer or a SIGCHLD (child
    // exits wake it immediately where sigtimedwait exists), so this is a
    // safety backstop, not a polling rate -- it only bounds how stale a
    // sweep can get if an edge is missed.
    uint64_t poll_interval_ms = 100;
  };

  // Per-child accounting, for reporting and tests.
  struct Report {
    size_t shard = 0;
    size_t attempts = 0;  // spawns, including the first
    ChildExit last_exit = ChildExit::kClean;
    int status = 0;  // exit code (kNonZero) or signal number (kSignaled/kTimedOut)
    bool ran_in_process = false;  // spawn-failure fallback executed this child
  };

  // Runs one child campaign in the calling process: the body of a
  // fork-without-exec child, and the spawn-failure fallback. Must be
  // self-contained given the spec (CampaignDriver::Run is the one used).
  using ChildRunner = std::function<bool(const CampaignSpec&, std::string*)>;

  ShardSupervisor(Options options, ChildRunner runner)
      : options_(std::move(options)), runner_(std::move(runner)) {}

  // Supervises one child per spec to completion. False + *error when a child
  // exhausted its retries (other children still run to completion first, so
  // their sealed journals survive for resume) or the in-process fallback
  // failed. `reports`, when given, receives one entry per child.
  bool Run(const std::vector<CampaignSpec>& children, std::string* error,
           std::vector<Report>* reports = nullptr);

 private:
  bool RunFallback(const std::vector<CampaignSpec>& children, std::string* error,
                   std::vector<Report>* reports);

  Options options_;
  ChildRunner runner_;
};

}  // namespace lfi

#endif  // LFI_APPS_COMMON_SHARD_SUPERVISOR_H_
