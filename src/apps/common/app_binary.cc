#include "apps/common/app_binary.h"

#include <cstdio>
#include <cstdlib>

#include "image/assembler.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace lfi {

uint32_t AppBinary::SiteOffset(const std::string& site_name) const {
  auto it = site_offsets_.find(site_name);
  return it == site_offsets_.end() ? 0xffffffffu : it->second;
}

const CallSiteSpec* AppBinary::FindSite(const std::string& site_name) const {
  for (const auto& s : sites_) {
    if (s.site_name == site_name) {
      return &s;
    }
  }
  return nullptr;
}

std::vector<const CallSiteSpec*> AppBinary::SitesFor(const std::string& function) const {
  std::vector<const CallSiteSpec*> out;
  for (const auto& s : sites_) {
    if (s.function == function) {
      out.push_back(&s);
    }
  }
  return out;
}

AppBinaryBuilder::AppBinaryBuilder(std::string module_name, uint64_t filler_seed)
    : module_name_(std::move(module_name)), filler_seed_(filler_seed) {}

void AppBinaryBuilder::AddSite(CallSiteSpec spec) { sites_.push_back(std::move(spec)); }

AppBinary AppBinaryBuilder::Build() {
  // Group sites by enclosing function, preserving first-appearance order.
  std::vector<std::string> function_order;
  std::map<std::string, std::vector<const CallSiteSpec*>> by_function;
  for (const auto& site : sites_) {
    if (by_function.find(site.enclosing) == by_function.end()) {
      function_order.push_back(site.enclosing);
    }
    by_function[site.enclosing].push_back(&site);
  }

  Rng rng(filler_seed_);
  std::string asm_text = StrFormat("module %s\n", module_name_.c_str());
  std::map<std::string, uint32_t> offsets;
  size_t instr_count = 0;  // every emitted instruction line is 8 bytes
  int label_counter = 0;
  bool need_helper = false;

  auto emit = [&](const std::string& line) {
    asm_text += "  " + line + "\n";
    ++instr_count;
  };
  auto label = [&](const std::string& name) { asm_text += name + ":\n"; };

  for (const auto& fn : function_order) {
    asm_text += StrFormat("func %s\n", fn.c_str());
    for (const CallSiteSpec* site : by_function[fn]) {
      // A little realistic preamble before each call.
      int filler = static_cast<int>(rng.NextBelow(3));
      for (int i = 0; i < filler; ++i) {
        emit(StrFormat("movi r%d, %d", 2 + static_cast<int>(rng.NextBelow(4)),
                       static_cast<int>(rng.NextBelow(100))));
      }
      offsets[site->site_name] = static_cast<uint32_t>(instr_count * kInstrSize);
      emit("call " + site->function);

      std::string done = StrFormat(".done%d", label_counter++);
      switch (site->pattern) {
        case CheckPattern::kCheckEqAll:
        case CheckPattern::kCheckSome:
        case CheckPattern::kCheckOutsideE:
          for (int64_t code : site->codes) {
            std::string err = StrFormat(".err%d", label_counter++);
            emit(StrFormat("cmpi r0, %lld", static_cast<long long>(code)));
            emit("je " + err);
            std::string cont = StrFormat(".cont%d", label_counter++);
            emit("jmp " + cont);
            label(err);
            emit("movi r1, 1");  // recovery code placeholder
            emit("jmp " + done);
            label(cont);
          }
          break;
        case CheckPattern::kCheckIneq: {
          std::string err = StrFormat(".err%d", label_counter++);
          emit("cmpi r0, 0");
          emit("jl " + err);
          emit("jmp " + done);
          label(err);
          emit("movi r1, 1");
          break;
        }
        case CheckPattern::kCheckZeroEq: {
          std::string err = StrFormat(".err%d", label_counter++);
          emit("test r0, r0");
          emit("je " + err);
          emit("jmp " + done);
          label(err);
          emit("movi r1, 1");
          break;
        }
        case CheckPattern::kNoCheck:
          // Result ignored; keep using other registers.
          emit("movi r1, 0");
          break;
        case CheckPattern::kCheckViaHelper:
          // The check happens inside a helper: invisible to the
          // intra-procedural dataflow analysis.
          emit("mov r1, r0");
          emit("call check_result_helper");
          need_helper = true;
          break;
      }
      label(done);
      emit("nop");
    }
    emit("ret");
    asm_text += "end\n";
  }

  if (need_helper) {
    asm_text += "func check_result_helper\n";
    asm_text += "  cmpi r1, 0\n  jl .bad\n  ret\n.bad:\n  movi r1, 1\n  ret\nend\n";
  }

  AsmError error;
  auto image = Assemble(asm_text, &error);
  if (!image) {
    std::fprintf(stderr, "AppBinaryBuilder(%s): %s at line %d\n", module_name_.c_str(),
                 error.message.c_str(), error.line);
    std::abort();
  }
  return AppBinary(std::move(*image), std::move(offsets), sites_);
}

}  // namespace lfi
