#include "apps/pbft/pbft.h"

#include <cstring>

#include "util/errno_codes.h"
#include "util/sha1.h"
#include "util/string_util.h"
#include "vlib/sim_crash.h"

namespace lfi {
namespace {

uint32_t Site(const char* name) { return PbftBinary().SiteOffset(name); }

std::string Digest(const std::string& payload) { return Sha1::HexDigest(payload).substr(0, 16); }

// Session-key derivation (the authenticators of the PBFT paper): both ends
// of a node pair stretch the pair identity into a shared MAC key by iterated
// hashing. Deliberately expensive -- in the Castro-Liskov implementation the
// keys are established with public-key signatures, so key establishment
// dominates replica bring-up; the round count here is sized to keep that
// true for this model (bring-up costs more than one workload). This is
// exactly the per-test cost the paper's fresh-process model pays and the
// warm-instance snapshot amortizes. Pure computation, no library calls, so
// it is never an injection site.
constexpr int kKeyStretchRounds = 1536;

std::string DeriveSessionKey(int port_a, int port_b) {
  std::string key = StrFormat("pbft-session-key|%d|%d", port_a < port_b ? port_a : port_b,
                              port_a < port_b ? port_b : port_a);
  for (int round = 0; round < kKeyStretchRounds; ++round) {
    key = Sha1::HexDigest(key);
  }
  return key;
}

}  // namespace

const AppBinary& PbftBinary() {
  static const AppBinary* binary = [] {
    AppBinaryBuilder b(PbftReplica::kModule, /*filler_seed=*/0xbf7);
    b.AddSite({"pbft.replica.socket", "replica_init", "socket", CheckPattern::kCheckIneq, {}});
    b.AddSite({"pbft.replica.bind", "replica_init", "bind", CheckPattern::kCheckEqAll, {-1}});
    b.AddSite({"pbft.replica.recvfrom", "handle_messages", "recvfrom",
               CheckPattern::kCheckIneq, {}});
    // Release build: sends are fire-and-forget (the debug build's send check
    // is compiled out -- the source of the view-change bug).
    b.AddSite({"pbft.replica.sendto", "send_message", "sendto", CheckPattern::kNoCheck, {}});
    // Periodic checkpoints check their fopen...
    b.AddSite({"pbft.checkpoint.fopen", "save_checkpoint", "fopen",
               CheckPattern::kCheckZeroEq, {}});
    b.AddSite({"pbft.checkpoint.fwrite", "save_checkpoint", "fwrite",
               CheckPattern::kCheckIneq, {}});
    b.AddSite({"pbft.checkpoint.fclose", "save_checkpoint", "fclose",
               CheckPattern::kCheckEqAll, {-1}});
    // ...the shutdown path does not (Table 1: fwrite on the NULL FILE* of a
    // previously failed fopen).
    b.AddSite({"pbft.shutdown.fopen", "shutdown_checkpoint", "fopen",
               CheckPattern::kNoCheck, {}});
    b.AddSite({"pbft.shutdown.fwrite", "shutdown_checkpoint", "fwrite",
               CheckPattern::kNoCheck, {}});
    b.AddSite({"pbft.shutdown.fclose", "shutdown_checkpoint", "fclose",
               CheckPattern::kCheckEqAll, {-1}});
    // Table 4 population: 6 fopen sites total (2 above + 4 checked here).
    for (int i = 0; i < 4; ++i) {
      b.AddSite({StrFormat("pbft.fopen%d", i), StrFormat("key_io_%d", i / 2), "fopen",
                 CheckPattern::kCheckZeroEq, {}});
    }
    return new AppBinary(b.Build());
  }();
  return *binary;
}

// --- PbftReplica ---------------------------------------------------------------

PbftReplica::PbftReplica(VirtualFs* fs, VirtualNet* net, int id, const PbftConfig& config)
    : libc_(fs, net, StrFormat("replica%d", id)), config_(config), id_(id) {
  if (!fs->DirExists("/pbft")) {
    fs->MkDir("/pbft");
  }
  RegisterCoverageBlocks();
}

void PbftReplica::RegisterCoverageBlocks() {
  struct BlockSpec {
    const char* id;
    bool recovery;
    int lines;
  };
  // The recovery blocks are the paths that run only when a library call
  // failed or a message never arrived: receive retries, checkpoint error
  // handling, lost-payload retrieval, state transfer, and the view change.
  static constexpr BlockSpec kBlocks[] = {
      {"pbft.recv.body", false, 4},
      {"pbft.recv.err_retry", true, 3},
      {"pbft.recv.err_backoff", true, 2},
      {"pbft.exec.body", false, 8},
      {"pbft.checkpoint.body", false, 6},
      {"pbft.checkpoint.err_fopen", true, 2},
      {"pbft.checkpoint.err_short", true, 3},
      {"pbft.fetch.missing_payload", true, 4},
      {"pbft.state.adopt", true, 6},
      {"pbft.viewchange.start", true, 4},
      {"pbft.viewchange.new_primary", true, 7},
      {"pbft.viewchange.halt", true, 2},
      {"pbft.shutdown.body", false, 4},
  };
  for (const BlockSpec& blk : kBlocks) {
    coverage_.RegisterBlock(blk.id, blk.recovery, blk.lines);
  }
}

PbftReplica::SeqState& PbftReplica::Seq(int64_t seq) { return log_[seq]; }

bool PbftReplica::Start() {
  ScopedFrame frame(&libc_.stack(), kModule, "replica_init");
  frame.set_offset(Site("pbft.replica.socket"));
  fd_ = libc_.Socket();
  if (fd_ < 0) {
    return false;
  }
  frame.set_offset(Site("pbft.replica.bind"));
  if (libc_.BindSocket(fd_, kPbftBasePort + id_) != 0) {
    return false;
  }
  // Establish the pairwise session keys with every peer and the client.
  for (int peer = 0; peer < config_.n; ++peer) {
    if (peer != id_) {
      session_keys_[kPbftBasePort + peer] =
          DeriveSessionKey(kPbftBasePort + id_, kPbftBasePort + peer);
    }
  }
  session_keys_[kPbftClientPort] = DeriveSessionKey(kPbftBasePort + id_, kPbftClientPort);
  return true;
}

void PbftReplica::SendTo(int port, const std::string& msg) {
  ScopedFrame frame(&libc_.stack(), kModule, "send_message");
  frame.set_offset(Site("pbft.replica.sendto"));
  // Fire-and-forget (release build): result intentionally unchecked.
  libc_.SendTo(fd_, msg.data(), msg.size(), port);
}

void PbftReplica::Multicast(const std::string& msg) {
  for (int i = 0; i < config_.n; ++i) {
    if (i != id_) {
      SendTo(kPbftBasePort + i, msg);
    }
  }
}

void PbftReplica::Step() {
  if (halted_) {
    return;
  }
  ++ticks_;
  int64_t executed_before = executed_count_;

  // Drain the socket.
  {
    ScopedFrame frame(&libc_.stack(), kModule, "handle_messages");
    int consecutive_failures = 0;
    for (int budget = 0; budget < 256; ++budget) {
      char buf[2048];
      int src_port = -1;
      frame.set_offset(Site("pbft.replica.recvfrom"));
      long n = libc_.RecvFrom(fd_, buf, sizeof buf, &src_port);
      if (n < 0) {
        if (libc_.verrno() == kEAGAIN) {
          break;  // queue drained
        }
        // Transient receive failure: that datagram is lost; retry a few
        // times, then back off until the next tick.
        static const CoverageMap::BlockId kBlkPbftRecvErrRetry = CoverageMap::InternBlock("pbft.recv.err_retry");
        coverage_.Hit(kBlkPbftRecvErrRetry);
        if (++consecutive_failures >= 8) {
          static const CoverageMap::BlockId kBlkPbftRecvErrBackoff = CoverageMap::InternBlock("pbft.recv.err_backoff");
          coverage_.Hit(kBlkPbftRecvErrBackoff);
          break;
        }
        continue;
      }
      consecutive_failures = 0;
      static const CoverageMap::BlockId kBlkPbftRecvBody = CoverageMap::InternBlock("pbft.recv.body");
      coverage_.Hit(kBlkPbftRecvBody);
      // Authenticate the sender: a datagram from a port we hold no session
      // key for fails the MAC check and is discarded.
      if (session_keys_.find(src_port) == session_keys_.end()) {
        continue;
      }
      HandleMessage(std::string(buf, static_cast<size_t>(n)), src_port);
      if (halted_) {
        return;
      }
    }
  }

  // View-change timer: pending work without progress.
  bool pending = !pending_client_.empty();
  for (const auto& [seq, st] : log_) {
    if (!st.executed && (st.pre_prepared || !st.prepares.empty() || !st.commits.empty())) {
      pending = true;
      break;
    }
  }
  if (executed_count_ > executed_before || !pending) {
    idle_ticks_ = 0;
  } else {
    ++idle_ticks_;
    if (idle_ticks_ > config_.view_change_timeout && !view_change_sent_) {
      StartViewChange();
    }
  }
  if (ticks_ % config_.resend_interval == 0) {
    Retransmit();
  }
}

void PbftReplica::HandleMessage(const std::string& msg, int src_port) {
  std::vector<std::string> parts = Split(msg, '|');
  if (parts.empty()) {
    return;
  }
  const std::string& type = parts[0];
  if (type == "REQ" && parts.size() >= 4) {
    bool forwarded = parts.size() >= 5 && parts[4] == "1";
    OnRequest(parts[2], static_cast<int>(*ParseInt(parts[3])), forwarded);
  } else if (type == "PP" && parts.size() >= 5) {
    OnPrePrepare(static_cast<int>(*ParseInt(parts[1])), *ParseInt(parts[2]), parts[3], parts[4]);
  } else if (type == "P" && parts.size() >= 5) {
    OnPrepare(static_cast<int>(*ParseInt(parts[1])), *ParseInt(parts[2]), parts[3],
              static_cast<int>(*ParseInt(parts[4])), src_port);
  } else if (type == "C" && parts.size() >= 5) {
    OnCommit(static_cast<int>(*ParseInt(parts[1])), *ParseInt(parts[2]), parts[3],
             static_cast<int>(*ParseInt(parts[4])), src_port);
  } else if (type == "FETCH" && parts.size() >= 3) {
    // Missing-message retrieval (PBFT's message/state-transfer mechanism):
    // answer with the pre-prepare if we hold the payload.
    auto seq = ParseInt(parts[1]);
    auto requester = ParseInt(parts[2]);
    if (seq && requester) {
      if (*seq <= low_watermark_) {
        SendStateTo(kPbftBasePort + static_cast<int>(*requester));
      } else {
        auto it = log_.find(*seq);
        if (it != log_.end() && it->second.request != nullptr) {
          SendTo(kPbftBasePort + static_cast<int>(*requester),
                 StrFormat("PP|%d|%lld|%s|%s", view_, static_cast<long long>(*seq),
                           it->second.digest.c_str(), it->second.request->c_str()));
        }
      }
    }
  } else if (type == "STATE" && parts.size() >= 4) {
    auto executed = ParseInt(parts[1]);
    auto view = ParseInt(parts[3]);
    if (executed && view) {
      OnStateTransfer(*executed, parts[2], static_cast<int>(*view));
    }
  } else if (type == "VC" && parts.size() >= 3) {
    OnViewChange(static_cast<int>(*ParseInt(parts[1])), static_cast<int>(*ParseInt(parts[2])));
  } else if (type == "NV" && parts.size() >= 3) {
    OnNewView(static_cast<int>(*ParseInt(parts[1])), parts[2]);
  }
}

void PbftReplica::OnRequest(const std::string& payload, int client_port, bool forwarded) {
  std::string digest = Digest(payload);
  if (executed_digests_.count(digest) != 0) {
    // Duplicate of an executed request: re-send the cached reply.
    auto cached = reply_cache_.find(digest);
    if (cached != reply_cache_.end()) {
      SendTo(cached->second.first, cached->second.second);
    }
    return;
  }
  pending_client_[digest] = client_port;
  if (!is_primary()) {
    if (!forwarded) {
      // Client broadcast: relay to the primary and start suspecting it.
      std::string fwd = StrFormat("REQ|0|%s|%d|1", payload.c_str(), client_port);
      SendTo(kPbftBasePort + (view_ % config_.n), fwd);
    }
    return;
  }
  // Already ordered? Re-announce the assignment.
  for (auto& [seq, st] : log_) {
    if (st.digest == digest) {
      if (st.request != nullptr) {
        Multicast(StrFormat("PP|%d|%lld|%s|%s", view_, static_cast<long long>(seq),
                            digest.c_str(), st.request->c_str()));
      }
      return;
    }
  }
  int64_t seq = ++next_seq_;
  SeqState& st = Seq(seq);
  st.digest = digest;
  st.request = std::make_unique<std::string>(payload);
  st.pre_prepared = true;
  st.prepares.insert(id_);
  Multicast(StrFormat("PP|%d|%lld|%s|%s", view_, static_cast<long long>(seq), digest.c_str(),
                      payload.c_str()));
}

void PbftReplica::CatchUpView(int view) {
  // A protocol message from a later view is evidence that a view change
  // completed elsewhere; adopt it (real PBFT would verify the new-view
  // proof, which the simulation elides).
  if (view > view_) {
    ++view_changes_;
    view_ = view;
    view_change_votes_.clear();
    view_change_sent_ = false;
    idle_ticks_ = 0;
  }
}

void PbftReplica::SendStateTo(int port) {
  if (port < 0) {
    return;
  }
  SendTo(port, StrFormat("STATE|%lld|%s|%d", static_cast<long long>(low_watermark_),
                         checkpoint_digest_.c_str(), view_));
}

void PbftReplica::OnStateTransfer(int64_t executed, const std::string& digest, int view) {
  // Checkpoint-based state transfer: adopt a peer's stable checkpoint when it
  // is ahead of ours (the real protocol verifies 2f+1 checkpoint signatures;
  // the simulation trusts its honest replicas).
  CatchUpView(view);
  if (executed <= executed_count_) {
    return;
  }
  static const CoverageMap::BlockId kBlkPbftStateAdopt = CoverageMap::InternBlock("pbft.state.adopt");
  coverage_.Hit(kBlkPbftStateAdopt);
  executed_count_ = executed;
  state_digest_ = digest;
  low_watermark_ = executed;
  log_.erase(log_.begin(), log_.upper_bound(low_watermark_));
  pending_client_.clear();  // anything executed elsewhere was answered there
  checkpoint_digest_ = digest;
  idle_ticks_ = 0;
}

void PbftReplica::OnPrePrepare(int view, int64_t seq, const std::string& digest,
                               const std::string& payload) {
  CatchUpView(view);
  if (view != view_ || seq <= low_watermark_) {
    return;
  }
  SeqState& st = Seq(seq);
  if (st.executed) {
    return;  // stale retransmission
  }
  if (st.pre_prepared && st.digest != digest) {
    return;  // conflicting assignment from a faulty primary: ignore
  }
  st.digest = digest;
  if (st.request == nullptr) {
    st.request = std::make_unique<std::string>(payload);
  }
  st.pre_prepared = true;
  st.prepares.insert(view_ % config_.n);  // the primary's implicit prepare
  st.prepares.insert(id_);
  if (seq > next_seq_) {
    next_seq_ = seq;
  }
  Multicast(StrFormat("P|%d|%lld|%s|%d", view_, static_cast<long long>(seq), digest.c_str(),
                      id_));
  OnPrepare(view_, seq, digest, id_, -1);
}

void PbftReplica::OnPrepare(int view, int64_t seq, const std::string& digest, int replica,
                            int src_port) {
  CatchUpView(view);
  if (seq <= low_watermark_) {
    SendStateTo(src_port);  // the sender lags behind our stable checkpoint
    return;
  }
  if (view != view_) {
    return;
  }
  SeqState& st = Seq(seq);
  if (!st.digest.empty() && st.digest != digest) {
    return;
  }
  if (st.executed && src_port >= 0) {
    // The sender lags behind on a sequence we already executed: gossip our
    // commit back so it can assemble its certificate.
    SendTo(src_port, StrFormat("C|%d|%lld|%s|%d", view_, static_cast<long long>(seq),
                               st.digest.c_str(), id_));
    return;
  }
  st.digest = digest;
  st.prepares.insert(replica);
  // prepared(m, v, n): 2f prepares matching the pre-prepare.
  if (static_cast<int>(st.prepares.size()) >= 2 * config_.f && st.commits.count(id_) == 0) {
    st.commits.insert(id_);
    Multicast(StrFormat("C|%d|%lld|%s|%d", view_, static_cast<long long>(seq), digest.c_str(),
                        id_));
    OnCommit(view, seq, digest, id_, -1);
  }
}

void PbftReplica::OnCommit(int view, int64_t seq, const std::string& digest, int replica,
                           int src_port) {
  CatchUpView(view);
  if (seq <= low_watermark_) {
    SendStateTo(src_port);
    return;
  }
  if (view != view_) {
    return;
  }
  SeqState& st = Seq(seq);
  if (!st.digest.empty() && st.digest != digest) {
    return;
  }
  if (st.executed && src_port >= 0) {
    SendTo(src_port, StrFormat("C|%d|%lld|%s|%d", view_, static_cast<long long>(seq),
                               st.digest.c_str(), id_));
    return;
  }
  st.digest = digest;
  st.commits.insert(replica);
  // committed-local: 2f+1 commits.
  if (static_cast<int>(st.commits.size()) >= 2 * config_.f + 1) {
    st.committed = true;
    TryExecute();
  }
}

void PbftReplica::TryExecute() {
  while (true) {
    auto it = log_.find(executed_count_ + 1);
    if (it == log_.end() || !it->second.committed || it->second.executed) {
      break;
    }
    SeqState& st = it->second;
    if (st.request == nullptr) {
      break;  // payload never arrived; wait for retransmission or view change
    }
    st.executed = true;
    static const CoverageMap::BlockId kBlkPbftExecBody = CoverageMap::InternBlock("pbft.exec.body");
    coverage_.Hit(kBlkPbftExecBody);
    ++executed_count_;
    executed_digests_.insert(st.digest);
    state_digest_ = Digest(state_digest_ + st.digest);
    // Request payload: "<timestamp>#<client_port>#<op>" (the client id is
    // part of the request, as in PBFT).
    std::vector<std::string> fields = Split(*st.request, '#');
    if (fields.size() >= 2) {
      auto port = ParseInt(fields[1]);
      if (port) {
        std::string reply = StrFormat("REPLY|%d|%s|%d|%s", view_, fields[0].c_str(), id_,
                                      state_digest_.c_str());
        SendTo(static_cast<int>(*port), reply);
        reply_cache_[st.digest] = {static_cast<int>(*port), reply};
      }
    }
    pending_client_.erase(st.digest);
    MaybeCheckpoint();
  }
}

void PbftReplica::MaybeCheckpoint() {
  if (executed_count_ % config_.checkpoint_interval != 0) {
    return;
  }
  ScopedFrame frame(&libc_.stack(), kModule, "save_checkpoint");
  coverage_.Hit("pbft.checkpoint.body");
  std::string path = StrFormat("/pbft/replica%d.ckpt", id_);
  frame.set_offset(Site("pbft.checkpoint.fopen"));
  VFile* f = libc_.FOpen(path, "w");
  if (f == nullptr) {
    // Periodic checkpoints check their fopen; retried next interval.
    coverage_.Hit("pbft.checkpoint.err_fopen");
    return;
  }
  std::string record = StrFormat("%lld %s\n", static_cast<long long>(executed_count_),
                                 state_digest_.c_str());
  frame.set_offset(Site("pbft.checkpoint.fwrite"));
  unsigned long written = libc_.FWrite(record.data(), record.size(), f);
  frame.set_offset(Site("pbft.checkpoint.fclose"));
  libc_.FClose(f);
  if (written == record.size()) {
    low_watermark_ = executed_count_;
    checkpoint_digest_ = state_digest_;
    log_.erase(log_.begin(), log_.upper_bound(low_watermark_));
  } else {
    // Short write: keep the previous stable checkpoint and the full log.
    coverage_.Hit("pbft.checkpoint.err_short");
  }
}

void PbftReplica::StartViewChange() {
  coverage_.Hit("pbft.viewchange.start");
  view_change_sent_ = true;
  view_change_votes_.insert(id_);
  Multicast(StrFormat("VC|%d|%d", view_ + 1, id_));
  OnViewChange(view_ + 1, id_);
}

void PbftReplica::OnViewChange(int view, int replica) {
  if (view != view_ + 1) {
    return;
  }
  view_change_votes_.insert(replica);
  if (static_cast<int>(view_change_votes_.size()) >= 2 * config_.f + 1) {
    int new_primary = view % config_.n;
    ++view_changes_;
    view_ = view;
    view_change_votes_.clear();
    view_change_sent_ = false;
    idle_ticks_ = 0;
    if (new_primary == id_) {
      BecomePrimaryOfNewView();
    }
  }
}

void PbftReplica::BecomePrimaryOfNewView() {
  coverage_.Hit("pbft.viewchange.new_primary");
  // Carry forward every request with prepare evidence, per the view-change
  // protocol. The prepare/commit certificates may reference messages this
  // replica never received (their PRE-PREPAREs were lost to network faults).
  std::string carried;
  for (auto& [seq, st] : log_) {
    if (st.executed || (st.prepares.empty() && st.commits.empty())) {
      continue;
    }
    if (config_.debug_build) {
      // Debug build: the message log is validated first; on a gap the
      // replica halts with an error exit code (the paper's observation that
      // the bug does not manifest in the debug build).
      if (st.request == nullptr) {
        coverage_.Hit("pbft.viewchange.halt");
        halted_ = true;
        return;
      }
    }
    // BUG (Table 1, release build): the committed message is accessed
    // without checking that it was ever received.
    std::string* request = MustDeref(st.request.get(), "view change: committed message access");
    carried += StrFormat("%lld:%s:%s;", static_cast<long long>(seq), st.digest.c_str(),
                         request->c_str());
    st.prepares.insert(id_);
  }
  Multicast(StrFormat("NV|%d|%s", view_, carried.c_str()));
  // Re-propose the carried requests under the new view.
  for (auto& [seq, st] : log_) {
    if (!st.executed && st.request != nullptr) {
      Multicast(StrFormat("PP|%d|%lld|%s|%s", view_, static_cast<long long>(seq),
                          st.digest.c_str(), st.request->c_str()));
    }
  }
}

void PbftReplica::OnNewView(int view, const std::string& carried) {
  if (view <= view_ - 1 || view % config_.n == id_) {
    return;
  }
  if (view > view_) {
    ++view_changes_;
    view_ = view;
    view_change_votes_.clear();
    view_change_sent_ = false;
    idle_ticks_ = 0;
  }
  for (const std::string& entry : Split(carried, ';')) {
    if (entry.empty()) {
      continue;
    }
    std::vector<std::string> fields = Split(entry, ':');
    if (fields.size() < 3) {
      continue;
    }
    auto seq = ParseInt(fields[0]);
    if (seq) {
      OnPrePrepare(view_, *seq, fields[1], fields[2]);
    }
  }
}

void PbftReplica::Retransmit() {
  if (view_change_sent_) {
    // Keep announcing the vote until the view change completes; lost VC
    // messages must not wedge the protocol.
    Multicast(StrFormat("VC|%d|%d", view_ + 1, id_));
  }
  // Re-multicast the highest-phase message for every incomplete sequence, so
  // the protocol makes progress under heavy message loss.
  for (auto& [seq, st] : log_) {
    if (st.executed || st.digest.empty()) {
      continue;
    }
    if (st.request == nullptr) {
      // We have evidence for this sequence but never received the payload:
      // fetch it from the peers (PBFT message retrieval).
      coverage_.Hit("pbft.fetch.missing_payload");
      Multicast(StrFormat("FETCH|%lld|%d", static_cast<long long>(seq), id_));
      continue;
    }
    if (st.commits.count(id_) != 0) {
      Multicast(StrFormat("C|%d|%lld|%s|%d", view_, static_cast<long long>(seq),
                          st.digest.c_str(), id_));
    } else if (st.pre_prepared) {
      if (is_primary() && st.request != nullptr) {
        Multicast(StrFormat("PP|%d|%lld|%s|%s", view_, static_cast<long long>(seq),
                            st.digest.c_str(), st.request->c_str()));
      } else {
        Multicast(StrFormat("P|%d|%lld|%s|%d", view_, static_cast<long long>(seq),
                            st.digest.c_str(), id_));
      }
    }
  }
}

void PbftReplica::Shutdown() {
  ScopedFrame frame(&libc_.stack(), kModule, "shutdown_checkpoint");
  coverage_.Hit("pbft.shutdown.body");
  std::string path = StrFormat("/pbft/replica%d.final", id_);
  frame.set_offset(Site("pbft.shutdown.fopen"));
  VFile* f = libc_.FOpen(path, "w");
  // BUG (Table 1): the fopen result is not checked before writing the final
  // checkpoint; an injected failure hands fwrite a NULL stream.
  std::string record = StrFormat("final %lld %s\n", static_cast<long long>(executed_count_),
                                 state_digest_.c_str());
  frame.set_offset(Site("pbft.shutdown.fwrite"));
  libc_.FWrite(record.data(), record.size(), f);
  frame.set_offset(Site("pbft.shutdown.fclose"));
  libc_.FClose(f);
}

std::map<int64_t, PbftReplica::SeqState> PbftReplica::CloneLog(
    const std::map<int64_t, SeqState>& log) {
  std::map<int64_t, SeqState> copy;
  for (const auto& [seq, state] : log) {
    SeqState& s = copy[seq];
    s.digest = state.digest;
    if (state.request != nullptr) {
      s.request = std::make_unique<std::string>(*state.request);
    }
    s.prepares = state.prepares;
    s.commits = state.commits;
    s.pre_prepared = state.pre_prepared;
    s.committed = state.committed;
    s.executed = state.executed;
  }
  return copy;
}

PbftReplica::Snapshot PbftReplica::TakeSnapshot() const {
  Snapshot snapshot;
  snapshot.libc = libc_.TakeSnapshot();
  snapshot.coverage = coverage_;
  snapshot.fd = fd_;
  snapshot.session_keys = session_keys_;
  snapshot.view = view_;
  snapshot.next_seq = next_seq_;
  snapshot.executed_count = executed_count_;
  snapshot.low_watermark = low_watermark_;
  snapshot.log = CloneLog(log_);
  snapshot.pending_client = pending_client_;
  snapshot.executed_digests = executed_digests_;
  snapshot.reply_cache = reply_cache_;
  snapshot.view_change_votes = view_change_votes_;
  snapshot.view_change_sent = view_change_sent_;
  snapshot.idle_ticks = idle_ticks_;
  snapshot.ticks = ticks_;
  snapshot.halted = halted_;
  snapshot.view_changes = view_changes_;
  snapshot.state_digest = state_digest_;
  snapshot.checkpoint_digest = checkpoint_digest_;
  return snapshot;
}

bool PbftReplica::Restore(const Snapshot& snapshot) {
  coverage_ = snapshot.coverage;
  fd_ = snapshot.fd;
  session_keys_ = snapshot.session_keys;
  view_ = snapshot.view;
  next_seq_ = snapshot.next_seq;
  executed_count_ = snapshot.executed_count;
  low_watermark_ = snapshot.low_watermark;
  log_ = CloneLog(snapshot.log);
  pending_client_ = snapshot.pending_client;
  executed_digests_ = snapshot.executed_digests;
  reply_cache_ = snapshot.reply_cache;
  view_change_votes_ = snapshot.view_change_votes;
  view_change_sent_ = snapshot.view_change_sent;
  idle_ticks_ = snapshot.idle_ticks;
  ticks_ = snapshot.ticks;
  halted_ = snapshot.halted;
  view_changes_ = snapshot.view_changes;
  state_digest_ = snapshot.state_digest;
  checkpoint_digest_ = snapshot.checkpoint_digest;
  return libc_.Restore(snapshot.libc);
}

// --- PbftClient ----------------------------------------------------------------

PbftClient::PbftClient(VirtualFs* fs, VirtualNet* net, const PbftConfig& config)
    : libc_(fs, net, "pbft-client"), config_(config) {}

bool PbftClient::Start() {
  fd_ = libc_.Socket();
  if (fd_ < 0) {
    return false;
  }
  if (libc_.BindSocket(fd_, kPbftClientPort) != 0) {
    return false;
  }
  // Establish the session keys with every replica (see PbftReplica::Start).
  for (int peer = 0; peer < config_.n; ++peer) {
    session_keys_[kPbftBasePort + peer] =
        DeriveSessionKey(kPbftClientPort, kPbftBasePort + peer);
  }
  return true;
}

void PbftClient::Step() {
  // Collect replies for the outstanding request.
  while (outstanding_) {
    char buf[512];
    int src_port = -1;
    long n = libc_.RecvFrom(fd_, buf, sizeof buf, &src_port);
    if (n < 0) {
      break;
    }
    // Authenticate the replying replica (same MAC check as the replicas).
    if (session_keys_.find(src_port) == session_keys_.end()) {
      continue;
    }
    std::vector<std::string> parts = Split(std::string(buf, static_cast<size_t>(n)), '|');
    if (parts.size() >= 4 && parts[0] == "REPLY") {
      auto ts = ParseInt(parts[2]);
      if (ts && *ts == timestamp_) {
        reply_votes_.insert(static_cast<int>(*ParseInt(parts[3])));
        if (static_cast<int>(reply_votes_.size()) >= config_.f + 1) {
          ++completed_;
          outstanding_ = false;
          reply_votes_.clear();
        }
      }
    }
  }

  if (!outstanding_) {
    if (max_requests_ > 0 && timestamp_ >= max_requests_) {
      return;  // workload complete; stop issuing
    }
    // Issue the next request to the (believed) primary.
    ++timestamp_;
    outstanding_ = true;
    broadcast_mode_ = false;
    ticks_since_send_ = 0;
    std::string payload =
        StrFormat("%lld#%d#op", static_cast<long long>(timestamp_), kPbftClientPort);
    std::string msg = StrFormat("REQ|0|%s|%d|0", payload.c_str(), kPbftClientPort);
    libc_.SendTo(fd_, msg.data(), msg.size(), kPbftBasePort);  // view-0 primary
    return;
  }

  // Retransmit: after the first timeout, broadcast to all replicas (which
  // forward to the primary and start suspecting it), per the protocol.
  if (++ticks_since_send_ >= 4) {
    ticks_since_send_ = 0;
    broadcast_mode_ = true;
    std::string payload =
        StrFormat("%lld#%d#op", static_cast<long long>(timestamp_), kPbftClientPort);
    std::string msg = StrFormat("REQ|0|%s|%d|0", payload.c_str(), kPbftClientPort);
    for (int i = 0; i < config_.n; ++i) {
      libc_.SendTo(fd_, msg.data(), msg.size(), kPbftBasePort + i);
    }
  }
}

// --- PbftCluster -----------------------------------------------------------------

PbftCluster::PbftCluster(VirtualFs* fs, VirtualNet* net, const PbftConfig& config)
    : config_(config), net_(net) {
  net_->set_tick_delivery(true);  // uniform one-tick message latency
  for (int i = 0; i < config.n; ++i) {
    replicas_.push_back(std::make_unique<PbftReplica>(fs, net, i, config));
  }
  client_ = std::make_unique<PbftClient>(fs, net, config);
}

bool PbftCluster::Start() {
  for (auto& r : replicas_) {
    if (!r->Start()) {
      return false;
    }
  }
  return client_->Start();
}

CoverageMap PbftCluster::Coverage() const {
  CoverageMap merged;
  for (const auto& r : replicas_) {
    merged.Absorb(r->coverage());
  }
  return merged;
}

PbftCluster::Snapshot PbftCluster::TakeSnapshot() const {
  Snapshot snapshot;
  snapshot.replicas.reserve(replicas_.size());
  for (const auto& r : replicas_) {
    snapshot.replicas.push_back(r->TakeSnapshot());
  }
  snapshot.client = client_->TakeSnapshot();
  snapshot.crashed = crashed_;
  snapshot.crash_reason = crash_reason_;
  snapshot.crashed_replica = crashed_replica_;
  return snapshot;
}

bool PbftCluster::Restore(const Snapshot& snapshot) {
  if (snapshot.replicas.size() != replicas_.size()) {
    return false;
  }
  bool ok = true;
  for (size_t i = 0; i < replicas_.size(); ++i) {
    ok = replicas_[i]->Restore(snapshot.replicas[i]) && ok;
  }
  ok = client_->Restore(snapshot.client) && ok;
  crashed_ = snapshot.crashed;
  crash_reason_ = snapshot.crash_reason;
  crashed_replica_ = snapshot.crashed_replica;
  return ok;
}

int PbftCluster::RunWorkload(int requests, int max_ticks) {
  client_->set_max_requests(requests);
  int ticks = 0;
  auto step_all = [&]() -> bool {
    ++ticks;
    net_->AdvanceTick();  // deliver everything sent during the previous tick
    client_->Step();
    for (auto& r : replicas_) {
      try {
        r->Step();
      } catch (const SimCrash& crash) {
        crashed_ = true;
        crash_reason_ = crash.what();
        crashed_replica_ = r->id();
        return false;
      }
    }
    return true;
  };
  while (client_->completed() < requests && ticks < max_ticks) {
    if (!step_all()) {
      return ticks;
    }
  }
  // Drain: let the backups finish executing the tail of the workload.
  for (int i = 0; i < 20 && ticks < max_ticks; ++i) {
    if (!step_all()) {
      return ticks;
    }
  }
  return ticks;
}

}  // namespace lfi
