// PBFT: a from-scratch Practical Byzantine Fault Tolerance implementation
// (Castro & Liskov, OSDI'99), the paper's fourth target system.
//
// A cluster of 3f+1 replicas (f=1 throughout, as in §7.3) serves client
// requests over the virtual UDP fabric with the standard three-phase
// protocol: the primary orders a request with PRE-PREPARE, backups multicast
// PREPARE, 2f matching prepares advance to COMMIT, 2f+1 commits execute the
// request and answer the client. Periodic checkpoints truncate the message
// log, and a view-change protocol replaces an unresponsive primary. The
// cluster runs as a discrete-event simulation: one Step() per process per
// tick, throughput measured in ticks.
//
// The two Table 1 bugs live at the paper's call sites:
//   - the shutdown path writes the final checkpoint through an fopen whose
//     result is never checked, so an injected fopen failure crashes fwrite;
//   - the view-change path accesses a previously committed message it never
//     received (messages lost to injected sendto/recvfrom faults). The
//     *debug* build checks the message log and halts cleanly; the release
//     build skips the check and segfaults -- the build-dependent bug.

#ifndef LFI_APPS_PBFT_PBFT_H_
#define LFI_APPS_PBFT_PBFT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "apps/common/app_binary.h"
#include "coverage/coverage.h"
#include "vlib/virtual_libc.h"

namespace lfi {

const AppBinary& PbftBinary();

inline constexpr int kPbftBasePort = 9000;
inline constexpr int kPbftClientPort = 8999;

struct PbftConfig {
  int n = 4;                      // replicas (3f+1)
  int f = 1;
  bool debug_build = false;       // true: checked view-change (halts, no crash)
  int checkpoint_interval = 16;   // executions between checkpoints
  int view_change_timeout = 24;   // idle ticks with pending work before VC
  int resend_interval = 6;        // ticks between protocol retransmissions
};

class PbftReplica {
 public:
  static constexpr const char* kModule = "pbft-replica";

  PbftReplica(VirtualFs* fs, VirtualNet* net, int id, const PbftConfig& config);

  VirtualLibc& libc() { return libc_; }
  CoverageMap& coverage() { return coverage_; }
  int id() const { return id_; }
  int view() const { return view_; }
  bool is_primary() const { return view_ % config_.n == id_; }
  int64_t executed() const { return executed_count_; }
  bool halted() const { return halted_; }
  int view_changes() const { return view_changes_; }

  // Socket bring-up plus session-key establishment: like the Castro-Liskov
  // implementation this stands in for, every pair of nodes shares a symmetric
  // MAC key, derived here by iterated hashing. That derivation is the
  // expensive part of replica bring-up -- the cost the fresh-process-per-test
  // model pays on every single test, and what the warm-instance snapshot
  // (TakeSnapshot/Restore below) amortizes to one copy of the key table.
  bool Start();
  // One simulation tick: drain the socket, run timers, retransmit.
  void Step();
  // Graceful shutdown: writes the final checkpoint (the unchecked-fopen bug).
  void Shutdown();

  // --- warm-instance snapshot --------------------------------------------
  // Move-only (the message log owns request payloads through unique_ptr);
  // defined after the class so it can name the private SeqState. Restore()
  // deep-copies out of the snapshot, so one snapshot serves many restores.
  struct Snapshot;
  Snapshot TakeSnapshot() const;
  bool Restore(const Snapshot& snapshot);

 private:
  struct SeqState {
    std::string digest;
    std::unique_ptr<std::string> request;  // payload; null when never received
    std::set<int> prepares;
    std::set<int> commits;
    bool pre_prepared = false;
    bool committed = false;
    bool executed = false;
  };

  void Multicast(const std::string& msg);
  void SendTo(int port, const std::string& msg);
  void HandleMessage(const std::string& msg, int src_port);
  void OnRequest(const std::string& payload, int client_port, bool forwarded);
  void OnPrePrepare(int view, int64_t seq, const std::string& digest,
                    const std::string& payload);
  void OnPrepare(int view, int64_t seq, const std::string& digest, int replica, int src_port);
  void OnCommit(int view, int64_t seq, const std::string& digest, int replica, int src_port);
  void CatchUpView(int view);
  void SendStateTo(int port);
  void OnStateTransfer(int64_t executed, const std::string& digest, int view);
  void OnViewChange(int view, int replica);
  void OnNewView(int view, const std::string& carried);
  void TryExecute();
  void MaybeCheckpoint();
  void StartViewChange();
  void BecomePrimaryOfNewView();
  void Retransmit();
  SeqState& Seq(int64_t seq);
  void RegisterCoverageBlocks();
  // Deep copy of the message log (SeqState owns its payload).
  static std::map<int64_t, SeqState> CloneLog(const std::map<int64_t, SeqState>& log);

  VirtualLibc libc_;
  CoverageMap coverage_;
  PbftConfig config_;
  int id_;
  int fd_ = -1;
  // Established by Start(): peer port -> shared MAC key. Datagrams from
  // ports without a session key are discarded on receipt.
  std::map<int, std::string> session_keys_;
  int view_ = 0;
  int64_t next_seq_ = 0;       // primary: last assigned sequence
  int64_t executed_count_ = 0;
  int64_t low_watermark_ = 0;
  std::map<int64_t, SeqState> log_;
  std::map<std::string, int> pending_client_;  // digest -> client port
  std::set<std::string> executed_digests_;
  // Reply cache (digest -> client port, reply), re-sent on duplicates, as in
  // PBFT's last-reply cache.
  std::map<std::string, std::pair<int, std::string>> reply_cache_;
  std::set<int> view_change_votes_;            // for view_+1
  bool view_change_sent_ = false;
  int idle_ticks_ = 0;
  int ticks_ = 0;
  bool halted_ = false;
  int view_changes_ = 0;
  std::string state_digest_ = "genesis";
  std::string checkpoint_digest_ = "genesis";
};

// Out-of-class so it can name the private SeqState (member type has access).
struct PbftReplica::Snapshot {
  VirtualLibc::Snapshot libc;
  CoverageMap coverage;
  int fd = -1;
  std::map<int, std::string> session_keys;
  int view = 0;
  int64_t next_seq = 0;
  int64_t executed_count = 0;
  int64_t low_watermark = 0;
  std::map<int64_t, SeqState> log;
  std::map<std::string, int> pending_client;
  std::set<std::string> executed_digests;
  std::map<std::string, std::pair<int, std::string>> reply_cache;
  std::set<int> view_change_votes;
  bool view_change_sent = false;
  int idle_ticks = 0;
  int ticks = 0;
  bool halted = false;
  int view_changes = 0;
  std::string state_digest;
  std::string checkpoint_digest;
};

class PbftClient {
 public:
  static constexpr const char* kModule = "pbft-client";

  PbftClient(VirtualFs* fs, VirtualNet* net, const PbftConfig& config);

  VirtualLibc& libc() { return libc_; }
  bool Start();
  // One tick: collect replies, issue/retransmit the current request.
  void Step();
  int completed() const { return completed_; }
  // Caps how many requests the client issues (0 = unlimited).
  void set_max_requests(int max_requests) { max_requests_ = max_requests; }

  // --- warm-instance snapshot --------------------------------------------
  struct Snapshot {
    VirtualLibc::Snapshot libc;
    int fd = -1;
    std::map<int, std::string> session_keys;
    int64_t timestamp = 0;
    bool outstanding = false;
    int ticks_since_send = 0;
    bool broadcast_mode = false;
    std::set<int> reply_votes;
    int completed = 0;
    int max_requests = 0;
  };
  Snapshot TakeSnapshot() const {
    return {libc_.TakeSnapshot(), fd_,          session_keys_, timestamp_,
            outstanding_,         ticks_since_send_, broadcast_mode_,
            reply_votes_,         completed_,    max_requests_};
  }
  bool Restore(const Snapshot& snapshot) {
    fd_ = snapshot.fd;
    session_keys_ = snapshot.session_keys;
    timestamp_ = snapshot.timestamp;
    outstanding_ = snapshot.outstanding;
    ticks_since_send_ = snapshot.ticks_since_send;
    broadcast_mode_ = snapshot.broadcast_mode;
    reply_votes_ = snapshot.reply_votes;
    completed_ = snapshot.completed;
    max_requests_ = snapshot.max_requests;
    return libc_.Restore(snapshot.libc);
  }

 private:
  VirtualLibc libc_;
  PbftConfig config_;
  int fd_ = -1;
  std::map<int, std::string> session_keys_;  // replica port -> shared MAC key
  int64_t timestamp_ = 0;
  bool outstanding_ = false;
  int ticks_since_send_ = 0;
  bool broadcast_mode_ = false;
  std::set<int> reply_votes_;
  int completed_ = 0;
  int max_requests_ = 0;
};

// Harness: a full cluster plus one client, stepped in lockstep.
class PbftCluster {
 public:
  PbftCluster(VirtualFs* fs, VirtualNet* net, const PbftConfig& config);

  bool Start();
  PbftReplica& replica(int i) { return *replicas_[static_cast<size_t>(i)]; }
  PbftClient& client() { return *client_; }
  int n() const { return config_.n; }

  // Union of every replica's coverage map (replicas register identical block
  // tables, so recovery coverage reads as one program, like the paper's
  // per-process gcov data folded together).
  CoverageMap Coverage() const;

  // Runs until `requests` complete or `max_ticks` elapse; returns ticks used.
  int RunWorkload(int requests, int max_ticks);

  // True when any replica crashed out of the event loop (SimCrash recorded).
  bool crashed() const { return crashed_; }
  const std::string& crash_reason() const { return crash_reason_; }
  int crashed_replica() const { return crashed_replica_; }

  // --- warm-instance snapshot --------------------------------------------
  // Snapshots every replica, the client, and the cluster-level crash record.
  // The fabric (VirtualNet) is snapshotted separately by the warm target.
  // Restore() returns false when any process is non-restorable.
  struct Snapshot {
    std::vector<PbftReplica::Snapshot> replicas;
    PbftClient::Snapshot client;
    bool crashed = false;
    std::string crash_reason;
    int crashed_replica = -1;
  };
  Snapshot TakeSnapshot() const;
  bool Restore(const Snapshot& snapshot);

 private:
  PbftConfig config_;
  VirtualNet* net_;
  std::vector<std::unique_ptr<PbftReplica>> replicas_;
  std::unique_ptr<PbftClient> client_;
  bool crashed_ = false;
  std::string crash_reason_;
  int crashed_replica_ = -1;
};

}  // namespace lfi

#endif  // LFI_APPS_PBFT_PBFT_H_
