// BFS: a block-layer client/server filesystem over the virtual network --
// the fifth campaign target, and the first whose correctness oracle is
// stateful across the simulated clients of a job.
//
// One BfsServer owns a fixed-size-block store inside the shared VirtualFs
// (CRC'd superblock, per-file inode records, data blocks) and serves
// open/read/write/unlink/fsync/close requests from several BfsClients over
// the datagram fabric. Requests and replies travel through a length-prefixed,
// CRC'd connection mux (BfsMux): the fabric can deliver *partial* sends and
// receives (vnet partial-transfer fault sites), so both ends carry real
// recovery code -- suffix resend on short writes, reassembly-buffer drops on
// CRC mismatch, stall flushes, bounded client retry with reconnect.
//
// The two planted bugs live at the paper's kind of call sites:
//   - the FSYNC durability barrier writes the superblock through an fopen
//     whose result is never checked, so an injected fopen failure hands
//     fwrite a NULL stream (the crash bug, found by the analyzer);
//   - the inode-update path *checks* its fwrite and defers a short write to
//     the next metadata sync -- but records the client's connection handle
//     where the inode number belongs, and the sync silently skips unknown
//     ids. The client got its ACK, the data blocks are on disk, and the
//     stale inode surfaces only at remount: silent corruption that only the
//     consistency oracle (BfsOracle) turns into a deterministic FoundBug.
//
// The oracle replays the client-visible history against an in-memory model:
// every acknowledged READ is checked against acknowledged WRITEs during the
// run, and after the workload the store is remounted straight from the
// VirtualFs (no library calls, so no injections) and audited file by file.
// Files with any client-visibly failed operation are indeterminate -- the
// server may or may not have applied them -- and are excluded, so the
// oracle never flags legitimate fault absorption.

#ifndef LFI_APPS_BFS_BFS_H_
#define LFI_APPS_BFS_BFS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "apps/common/app_binary.h"
#include "coverage/coverage.h"
#include "vlib/virtual_libc.h"

namespace lfi {

const AppBinary& BfsBinary();

inline constexpr int kBfsServerPort = 7100;
inline constexpr int kBfsClientBasePort = 7101;
inline constexpr size_t kBfsBlockSize = 32;
inline constexpr size_t kBfsMaxFrame = 4096;

struct BfsConfig {
  int clients = 2;          // concurrent clients (>= 2 exercises the shared file)
  int rounds = 2;           // sequential write/read rounds per client
  int max_retries = 6;      // client attempts per op before giving up
  int retry_interval = 4;   // ticks between client retransmissions
  int stall_ticks = 6;      // reassembly-buffer ticks without progress -> flush
  int sync_interval = 4;    // server ops between periodic metadata syncs
};

// The connection mux's receive side: per-peer reassembly of the byte stream
// the datagram fabric (possibly partially) delivered, framed as
// [u32 length | u32 crc32 | payload]. Short transfers surface as CRC
// mismatches or stalled buffers; both recoveries drop the buffer and rely on
// the request/reply retry protocol above. Pure bookkeeping -- no library
// calls -- so the mux itself is never an injection site.
class BfsMux {
 public:
  explicit BfsMux(CoverageMap* coverage) : coverage_(coverage) {}

  static std::string EncodeFrame(const std::string& payload);

  // Appends a received datagram's bytes to `src_port`'s buffer and extracts
  // every complete, CRC-valid frame.
  void Accept(int src_port, const std::string& bytes);
  // One tick of stall detection: a non-empty buffer that made no progress
  // for stall_ticks is flushed (its tail was lost to a partial transfer).
  void Tick(int stall_ticks);
  // Drops one peer's buffered bytes (client reconnect).
  void ClearPeer(int src_port);

  std::vector<std::pair<int, std::string>> TakeFrames();

  struct Snapshot {
    std::map<int, std::pair<std::string, int>> buffers;  // port -> (bytes, stall)
    std::vector<std::pair<int, std::string>> ready;
  };
  Snapshot TakeSnapshot() const;
  void Restore(const Snapshot& snapshot);

 private:
  struct Buffer {
    std::string bytes;
    int stall = 0;
  };
  void ExtractFrames(int src_port, Buffer* buf);

  CoverageMap* coverage_;
  std::map<int, Buffer> buffers_;
  std::vector<std::pair<int, std::string>> ready_;
};

// One scripted client operation.
struct BfsOp {
  enum Kind { kOpen, kWrite, kRead, kFsync, kUnlink, kClose, kBarrier };
  Kind kind = kOpen;
  std::string name;     // open/unlink
  int slot = 0;         // client-local handle slot
  size_t offset = 0;    // write/read
  std::string data;     // write payload
  size_t len = 0;       // read length
  int wait_client = -1; // barrier: wait until this client's script finished
};

// The stateful consistency oracle: the in-memory model of the acknowledged
// history, the during-run read checks, and the remount audit. Plain data --
// cluster snapshots copy it wholesale.
class BfsOracle {
 public:
  explicit BfsOracle(int clients) : client_done_(static_cast<size_t>(clients), false) {}

  void OnOpenAck(const std::string& name);
  void OnWriteAck(const std::string& name, size_t offset, const std::string& data);
  void OnReadAck(const std::string& name, size_t offset, size_t len, const std::string& data);
  void OnUnlinkAck(const std::string& name);
  // A client-visibly failed operation: the server may or may not have
  // applied it, so the file leaves the checkable model.
  void OnOpFailed(const std::string& name);

  void MarkClientDone(int client) { client_done_[static_cast<size_t>(client)] = true; }
  bool ClientDone(int client) const { return client_done_[static_cast<size_t>(client)]; }

  // Remounts the store straight from the filesystem (no libc, no injection)
  // and compares every determinate file against the model. Appends to the
  // during-run error list; FirstError() reports the oldest inconsistency.
  void Audit(const VirtualFs& fs);
  const std::vector<std::string>& errors() const { return errors_; }
  std::string FirstError() const { return errors_.empty() ? "" : errors_.front(); }

 private:
  struct FileModel {
    std::string content;
    bool exists = false;
    bool indeterminate = false;
  };
  std::map<std::string, FileModel> files_;
  std::vector<std::string> errors_;
  std::vector<bool> client_done_;
};

class BfsServer {
 public:
  static constexpr const char* kModule = "bfs-server";

  BfsServer(VirtualFs* fs, VirtualNet* net, const BfsConfig& config);

  VirtualLibc& libc() { return libc_; }
  CoverageMap& coverage() { return coverage_; }

  // Socket bring-up, volume format, and per-client lease-key derivation (the
  // expensive part of bring-up the warm-instance snapshot amortizes, like
  // pbft's session keys). Runs injection-disarmed in both the cold and warm
  // paths.
  bool Start();
  // One simulation tick: drain the socket through the mux, serve complete
  // requests, run the periodic metadata sync.
  void Step();

  uint64_t applied_ops() const { return applied_ops_; }

  struct Snapshot;
  Snapshot TakeSnapshot() const;
  bool Restore(const Snapshot& snapshot);

 private:
  struct Inode {
    std::string name;
    std::string content;
    bool used = false;
  };
  struct Dedup {
    int64_t last_seq = -1;
    std::string last_reply;
  };

  void HandleRequest(const std::string& payload, int src_port);
  std::string ApplyOp(int64_t seq, const std::vector<std::string>& parts, int src_port);
  std::string OpOpen(int64_t seq, const std::string& name);
  std::string OpWrite(int64_t seq, int handle, size_t offset, const std::string& data);
  std::string OpRead(int64_t seq, int handle, size_t offset, size_t len);
  std::string OpFsync(int64_t seq, int handle);
  std::string OpUnlink(int64_t seq, const std::string& name);
  std::string OpClose(int64_t seq, int handle);

  bool SendFrame(int dst_port, const std::string& payload);
  bool WriteBlock(size_t ino, size_t blk, const std::string& data);
  std::optional<std::string> ReadBlock(size_t ino, size_t blk, size_t want);
  // Serializes inodes_[ino] (or a free-slot tombstone when unused) to its
  // CRC'd on-disk record. False when both the open and the write path failed.
  bool WriteInode(size_t ino);
  // Deferred-metadata sync plus the checked superblock rewrite.
  void SyncMeta();
  // The FSYNC durability barrier (the unchecked-fopen crash bug).
  void FlushSuper();
  std::string SuperRecord() const;

  VirtualLibc libc_;
  CoverageMap coverage_;
  BfsConfig config_;
  BfsMux mux_;
  int fd_ = -1;
  std::map<int, std::string> client_keys_;  // client port -> lease token
  std::vector<Inode> inodes_;
  std::map<int, size_t> handles_;  // connection handle -> inode number
  int next_handle_ = 100;          // distinct from the inode id space
  std::set<size_t> dirty_inodes_;  // deferred metadata rewrites
  std::map<int, Dedup> dedup_;     // client port -> last applied request
  uint64_t generation_ = 0;
  uint64_t applied_ops_ = 0;
  int ops_since_sync_ = 0;
};

struct BfsServer::Snapshot {
  VirtualLibc::Snapshot libc;
  CoverageMap coverage;
  BfsMux::Snapshot mux;
  int fd = -1;
  std::map<int, std::string> client_keys;
  std::vector<Inode> inodes;
  std::map<int, size_t> handles;
  int next_handle = 100;
  std::set<size_t> dirty_inodes;
  std::map<int, Dedup> dedup;
  uint64_t generation = 0;
  uint64_t applied_ops = 0;
  int ops_since_sync = 0;
};

class BfsClient {
 public:
  static constexpr const char* kModule = "bfs-client";

  BfsClient(VirtualFs* fs, VirtualNet* net, int id, const BfsConfig& config,
            BfsOracle* oracle);

  VirtualLibc& libc() { return libc_; }
  CoverageMap& coverage() { return coverage_; }

  bool Start();
  // One tick: collect replies, drive the scripted operation state machine.
  void Step();
  bool Done() const { return script_pos_ >= script_.size(); }
  size_t completed_ops() const { return completed_ops_; }

  struct Snapshot {
    VirtualLibc::Snapshot libc;
    CoverageMap coverage;
    BfsMux::Snapshot mux;
    int fd = -1;
    std::string token;
    size_t script_pos = 0;
    int64_t seq = 0;
    bool outstanding = false;
    int attempts = 0;
    int ticks_since_send = 0;
    std::vector<int> handles;
    size_t completed_ops = 0;
  };
  Snapshot TakeSnapshot() const;
  bool Restore(const Snapshot& snapshot);

 private:
  void BuildScript();
  void IssueCurrent();
  void SendRequest(const std::string& request);
  void OnReply(const std::string& payload);
  void CompleteOp(bool ok, const std::string& reply_data);
  // The file the op at `pos` targets, or "" (close/barrier).
  std::string OpFile(size_t pos) const;
  void Advance();

  VirtualLibc libc_;
  CoverageMap coverage_;
  BfsConfig config_;
  BfsMux mux_;
  BfsOracle* oracle_;
  int id_;
  int fd_ = -1;
  std::string token_;
  std::vector<BfsOp> script_;
  size_t script_pos_ = 0;
  int64_t seq_ = 0;
  bool outstanding_ = false;
  std::string pending_request_;
  int attempts_ = 0;
  int ticks_since_send_ = 0;
  std::vector<int> handles_;  // slot -> server handle, -1 = unset
  size_t completed_ops_ = 0;
};

// Harness: one server plus config.clients scripted clients, stepped in
// lockstep over a tick-synchronous fabric.
class BfsCluster {
 public:
  BfsCluster(VirtualFs* fs, VirtualNet* net, const BfsConfig& config);

  bool Start();
  BfsServer& server() { return *server_; }
  BfsClient& client(int i) { return *clients_[static_cast<size_t>(i)]; }
  int clients() const { return config_.clients; }
  VirtualNet* net() { return net_; }

  // Union of the server's and every client's coverage (identical block
  // tables, so recovery coverage reads as one program).
  CoverageMap Coverage() const;

  // Runs until every client script finished or `max_ticks` elapse.
  int RunWorkload(int max_ticks);
  bool AllClientsDone() const;

  bool crashed() const { return crashed_; }
  const std::string& crash_reason() const { return crash_reason_; }

  // Runs the remount audit and returns the oldest inconsistency between the
  // acknowledged client history and the store ("" = consistent).
  std::string CheckConsistency();

  struct Snapshot {
    BfsServer::Snapshot server;
    std::vector<BfsClient::Snapshot> clients;
    BfsOracle oracle;
    bool crashed = false;
    std::string crash_reason;
  };
  Snapshot TakeSnapshot() const;
  bool Restore(const Snapshot& snapshot);

 private:
  BfsConfig config_;
  VirtualFs* fs_;
  VirtualNet* net_;
  BfsOracle oracle_;
  std::unique_ptr<BfsServer> server_;
  std::vector<std::unique_ptr<BfsClient>> clients_;
  bool crashed_ = false;
  std::string crash_reason_;
};

}  // namespace lfi

#endif  // LFI_APPS_BFS_BFS_H_
