#include "apps/bfs/bfs.h"

#include <algorithm>
#include <cstring>

#include "util/binary_io.h"
#include "util/errno_codes.h"
#include "util/sha1.h"
#include "util/string_util.h"
#include "vlib/sim_crash.h"

namespace lfi {
namespace {

uint32_t Site(const char* name) { return BfsBinary().SiteOffset(name); }

// Lease-key derivation: server and client independently stretch the client's
// port identity into a shared request token by iterated hashing. Like pbft's
// session keys, this is deliberately expensive so bring-up dominates a single
// workload -- the cost the warm-instance snapshot amortizes. Pure
// computation, no library calls, so it is never an injection site.
constexpr int kLeaseStretchRounds = 512;

std::string DeriveLeaseKey(int client_port) {
  std::string key = StrFormat("bfs-lease|%d", client_port);
  for (int round = 0; round < kLeaseStretchRounds; ++round) {
    key = Sha1::HexDigest(key);
  }
  return key;
}

// Deterministic '|'-free payload bytes for scripted writes.
std::string MakePayload(int client, int round, size_t len) {
  std::string base = StrFormat("c%d-r%d-", client, round);
  std::string out;
  while (out.size() < len) {
    out += base;
  }
  out.resize(len);
  return out;
}

struct BlockSpec {
  const char* id;
  bool recovery;
  int lines;
};

// The shared basic-block table; server and every client register the same
// blocks so cluster-wide recovery coverage reads as one program (the pbft
// replica convention).
constexpr BlockSpec kBfsBlocks[] = {
    // server: socket drain
    {"bfs.recv.body", false, 4},
    {"bfs.recv.err_retry", true, 3},
    {"bfs.recv.err_backoff", true, 2},
    // connection mux (both ends)
    {"bfs.mux.frame", false, 5},
    {"bfs.mux.desync", true, 3},
    {"bfs.mux.crc_drop", true, 3},
    {"bfs.mux.stall_flush", true, 2},
    {"bfs.mux.resend", true, 3},
    // server: frame send
    {"bfs.send.err_retry", true, 2},
    {"bfs.send.err_drop", true, 2},
    // server: request dispatch
    {"bfs.op.body", false, 6},
    {"bfs.op.dup_replay", true, 3},
    // server: block store
    {"bfs.block.err_open", true, 2},
    {"bfs.block.err_short", true, 3},
    {"bfs.block.retry_ok", true, 2},
    {"bfs.read.err_open", true, 2},
    {"bfs.read.err_short", true, 3},
    {"bfs.read.retry_ok", true, 2},
    // server: metadata
    {"bfs.inode.err_open", true, 2},
    {"bfs.inode.err_short", true, 2},
    {"bfs.inode.defer", true, 4},
    {"bfs.unlink.tombstone", true, 3},
    {"bfs.unlink.orphan", true, 2},
    {"bfs.sync.body", false, 5},
    {"bfs.sync.err_open", true, 2},
    {"bfs.sync.err_short", true, 2},
    {"bfs.fsync.body", false, 4},
    // client state machine
    {"bfs.client.issue", false, 3},
    {"bfs.client.op_done", false, 3},
    {"bfs.client.retry", true, 2},
    {"bfs.client.reconnect", true, 3},
    {"bfs.client.giveup", true, 2},
    {"bfs.client.resend", true, 2},
};

void RegisterBfsBlocks(CoverageMap* map) {
  for (const BlockSpec& blk : kBfsBlocks) {
    map->RegisterBlock(blk.id, blk.recovery, blk.lines);
  }
}

std::string InodePath(size_t ino) { return StrFormat("/bfs/inode%zu", ino); }
std::string BlockPath(size_t ino, size_t blk) { return StrFormat("/bfs/d%zu.%zu", ino, blk); }

std::string OkReply(int64_t seq, const std::string& data) {
  return StrFormat("%lld|OK|%s", static_cast<long long>(seq), data.c_str());
}
std::string ErrReply(int64_t seq, const char* msg) {
  return StrFormat("%lld|ERR|%s", static_cast<long long>(seq), msg);
}

}  // namespace

const AppBinary& BfsBinary() {
  static const AppBinary* binary = [] {
    AppBinaryBuilder b("bfs-server", /*filler_seed=*/71);
    b.AddSite({"bfs.server.socket", "server_init", "socket", CheckPattern::kCheckIneq, {}});
    b.AddSite({"bfs.server.bind", "server_init", "bind", CheckPattern::kCheckEqAll, {-1}});
    b.AddSite({"bfs.server.recvfrom", "serve_requests", "recvfrom", CheckPattern::kCheckIneq, {}});
    b.AddSite({"bfs.server.sendto", "send_frame", "sendto", CheckPattern::kCheckIneq, {}});
    b.AddSite({"bfs.block.fopen", "write_block", "fopen", CheckPattern::kCheckZeroEq, {}});
    b.AddSite({"bfs.block.fwrite", "write_block", "fwrite", CheckPattern::kCheckIneq, {}});
    b.AddSite({"bfs.block.fclose", "write_block", "fclose", CheckPattern::kCheckEqAll, {-1}});
    b.AddSite({"bfs.read.fopen", "read_block", "fopen", CheckPattern::kCheckZeroEq, {}});
    b.AddSite({"bfs.read.fread", "read_block", "fread", CheckPattern::kCheckIneq, {}});
    b.AddSite({"bfs.read.fclose", "read_block", "fclose", CheckPattern::kCheckEqAll, {-1}});
    // The inode path *checks* its stream calls -- its defer recovery is where
    // the silent-corruption bug hides, out of the analyzer's reach.
    b.AddSite({"bfs.inode.fopen", "write_inode", "fopen", CheckPattern::kCheckZeroEq, {}});
    b.AddSite({"bfs.inode.fwrite", "write_inode", "fwrite", CheckPattern::kCheckIneq, {}});
    b.AddSite({"bfs.inode.fclose", "write_inode", "fclose", CheckPattern::kCheckEqAll, {-1}});
    b.AddSite({"bfs.unlink.blocks", "remove_file", "unlink", CheckPattern::kCheckEqAll, {-1}});
    b.AddSite({"bfs.unlink.unlink", "remove_file", "unlink", CheckPattern::kCheckEqAll, {-1}});
    b.AddSite({"bfs.meta.fopen", "sync_meta", "fopen", CheckPattern::kCheckZeroEq, {}});
    b.AddSite({"bfs.meta.fwrite", "sync_meta", "fwrite", CheckPattern::kCheckIneq, {}});
    b.AddSite({"bfs.meta.fclose", "sync_meta", "fclose", CheckPattern::kCheckEqAll, {-1}});
    // The FSYNC durability barrier ignores its fopen and fwrite results: the
    // unchecked sites the analyzer flags, and the crash bug behind them.
    b.AddSite({"bfs.super.fopen", "flush_super", "fopen", CheckPattern::kNoCheck, {}});
    b.AddSite({"bfs.super.fwrite", "flush_super", "fwrite", CheckPattern::kNoCheck, {}});
    b.AddSite({"bfs.super.fclose", "flush_super", "fclose", CheckPattern::kCheckEqAll, {-1}});
    return new AppBinary(b.Build());
  }();
  return *binary;
}

// --- BfsMux ----------------------------------------------------------------

std::string BfsMux::EncodeFrame(const std::string& payload) {
  ByteWriter w;
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU32(Crc32(payload));
  w.PutBytes(payload);
  return w.TakeBuffer();
}

void BfsMux::Accept(int src_port, const std::string& bytes) {
  Buffer& buf = buffers_[src_port];
  buf.bytes += bytes;
  buf.stall = 0;  // progress, even if no frame completes yet
  ExtractFrames(src_port, &buf);
}

void BfsMux::ExtractFrames(int src_port, Buffer* buf) {
  while (buf->bytes.size() >= 8) {
    ByteReader r(buf->bytes);
    uint32_t len = r.GetU32();
    uint32_t crc = r.GetU32();
    if (len > kBfsMaxFrame) {
      // A partial transfer desynchronized the stream: the length field is
      // mid-frame garbage. Drop the buffer; the request/reply retry protocol
      // re-fills it from a clean frame boundary.
      coverage_->Hit("bfs.mux.desync");
      buf->bytes.clear();
      return;
    }
    if (buf->bytes.size() < 8 + len) {
      return;  // incomplete frame: wait for the rest (or a stall flush)
    }
    std::string payload = buf->bytes.substr(8, len);
    if (Crc32(payload) != crc) {
      coverage_->Hit("bfs.mux.crc_drop");
      buf->bytes.clear();
      return;
    }
    coverage_->Hit("bfs.mux.frame");
    buf->bytes.erase(0, 8 + len);
    ready_.emplace_back(src_port, std::move(payload));
  }
}

void BfsMux::Tick(int stall_ticks) {
  for (auto& [port, buf] : buffers_) {
    if (buf.bytes.empty()) {
      buf.stall = 0;
      continue;
    }
    if (++buf.stall >= stall_ticks) {
      // The tail of a frame never arrived (partial send/recv ate it).
      coverage_->Hit("bfs.mux.stall_flush");
      buf.bytes.clear();
      buf.stall = 0;
    }
  }
}

void BfsMux::ClearPeer(int src_port) { buffers_.erase(src_port); }

std::vector<std::pair<int, std::string>> BfsMux::TakeFrames() {
  std::vector<std::pair<int, std::string>> out;
  out.swap(ready_);
  return out;
}

BfsMux::Snapshot BfsMux::TakeSnapshot() const {
  Snapshot snapshot;
  for (const auto& [port, buf] : buffers_) {
    snapshot.buffers[port] = {buf.bytes, buf.stall};
  }
  snapshot.ready = ready_;
  return snapshot;
}

void BfsMux::Restore(const Snapshot& snapshot) {
  buffers_.clear();
  for (const auto& [port, state] : snapshot.buffers) {
    buffers_[port] = Buffer{state.first, state.second};
  }
  ready_ = snapshot.ready;
}

// --- BfsOracle -------------------------------------------------------------

void BfsOracle::OnOpenAck(const std::string& name) { files_[name].exists = true; }

void BfsOracle::OnWriteAck(const std::string& name, size_t offset, const std::string& data) {
  FileModel& f = files_[name];
  if (f.indeterminate) {
    return;
  }
  f.exists = true;
  if (f.content.size() < offset) {
    f.content.resize(offset, '.');  // same gap fill as the server
  }
  if (f.content.size() < offset + data.size()) {
    f.content.resize(offset + data.size());
  }
  f.content.replace(offset, data.size(), data);
}

void BfsOracle::OnReadAck(const std::string& name, size_t offset, size_t len,
                          const std::string& data) {
  auto it = files_.find(name);
  if (it == files_.end() || it->second.indeterminate || !it->second.exists) {
    return;
  }
  const std::string& content = it->second.content;
  std::string expected;
  if (offset < content.size()) {
    expected = content.substr(offset, std::min(len, content.size() - offset));
  }
  if (data != expected) {
    errors_.push_back(StrFormat("read %s@%zu+%zu diverges from the acknowledged write history",
                                name.c_str(), offset, len));
  }
}

void BfsOracle::OnUnlinkAck(const std::string& name) {
  FileModel& f = files_[name];
  f.exists = false;
  f.content.clear();
}

void BfsOracle::OnOpFailed(const std::string& name) {
  if (!name.empty()) {
    files_[name].indeterminate = true;
  }
}

void BfsOracle::Audit(const VirtualFs& fs) {
  // Decode the store straight from the filesystem -- no library calls, so
  // the audit itself can never be injected into.
  struct DiskFile {
    std::string content;
    bool crc_ok = true;
  };
  std::map<std::string, DiskFile> disk;
  for (const std::string& entry : fs.ListDir("/bfs")) {
    if (!StartsWith(entry, "inode")) {
      continue;
    }
    const VfsFile* file = fs.GetFile("/bfs/" + entry);
    if (file == nullptr) {
      continue;
    }
    std::vector<std::string> parts = Split(file->data, '|');
    if (parts.size() != 4) {
      continue;  // malformed record: the model comparison reports the loss
    }
    std::string payload = parts[0] + "|" + parts[1] + "|" + parts[2];
    std::optional<int64_t> reccrc = ParseInt(parts[3]);
    if (!reccrc || static_cast<uint32_t>(*reccrc) != Crc32(payload)) {
      continue;
    }
    if (parts[0] == "!free") {
      continue;  // tombstoned slot
    }
    std::optional<int64_t> size = ParseInt(parts[1]);
    std::optional<int64_t> datacrc = ParseInt(parts[2]);
    std::optional<int64_t> ino = ParseInt(entry.substr(5));
    if (!size || *size < 0 || !datacrc || !ino) {
      continue;
    }
    DiskFile df;
    for (size_t blk = 0; df.content.size() < static_cast<size_t>(*size); ++blk) {
      const VfsFile* b = fs.GetFile(BlockPath(static_cast<size_t>(*ino), blk));
      if (b == nullptr) {
        break;
      }
      df.content += b->data;
    }
    if (df.content.size() > static_cast<size_t>(*size)) {
      df.content.resize(static_cast<size_t>(*size));
    }
    df.crc_ok = df.content.size() == static_cast<size_t>(*size) &&
                Crc32(df.content) == static_cast<uint32_t>(*datacrc);
    disk[parts[0]] = std::move(df);
  }

  // Compare every determinate model file; map order keeps messages stable.
  for (const auto& [name, model] : files_) {
    if (model.indeterminate) {
      continue;
    }
    auto it = disk.find(name);
    if (!model.exists) {
      if (it != disk.end()) {
        errors_.push_back(StrFormat("remount: unlinked %s still in the store", name.c_str()));
      }
      continue;
    }
    if (it == disk.end()) {
      errors_.push_back(StrFormat("remount: %s missing from the store", name.c_str()));
    } else if (!it->second.crc_ok) {
      errors_.push_back(StrFormat("remount: %s data diverges from its inode CRC", name.c_str()));
    } else if (it->second.content != model.content) {
      errors_.push_back(StrFormat("remount: %s holds %zu byte(s), acknowledged history says %zu",
                                  name.c_str(), it->second.content.size(),
                                  model.content.size()));
    }
  }
}

// --- BfsServer -------------------------------------------------------------

BfsServer::BfsServer(VirtualFs* fs, VirtualNet* net, const BfsConfig& config)
    : libc_(fs, net, "bfs-server"), config_(config), mux_(&coverage_) {
  RegisterBfsBlocks(&coverage_);
}

bool BfsServer::Start() {
  {
    ScopedFrame frame(&libc_.stack(), kModule, "server_init");
    frame.set_offset(Site("bfs.server.socket"));
    fd_ = libc_.Socket();
    if (fd_ < 0) {
      return false;
    }
    frame.set_offset(Site("bfs.server.bind"));
    if (libc_.BindSocket(fd_, kBfsServerPort) == -1) {
      return false;
    }
  }
  // Format the volume and derive every client's lease key. Bring-up runs
  // before any test controller installs, so none of this is injectable --
  // the same disarmed-bring-up contract as pbft's BuildStartedCluster.
  libc_.MkDir("/bfs");
  VFile* f = libc_.FOpen("/bfs/super", "w");
  if (f != nullptr) {
    std::string record = SuperRecord();
    libc_.FWrite(record.data(), record.size(), f);
    libc_.FClose(f);
  }
  for (int i = 0; i < config_.clients; ++i) {
    int port = kBfsClientBasePort + i;
    client_keys_[port] = DeriveLeaseKey(port);
  }
  return true;
}

void BfsServer::Step() {
  {
    ScopedFrame frame(&libc_.stack(), kModule, "serve_requests");
    int consecutive_failures = 0;
    for (int budget = 0; budget < 256; ++budget) {
      char buf[2048];
      int src_port = -1;
      frame.set_offset(Site("bfs.server.recvfrom"));
      long n = libc_.RecvFrom(fd_, buf, sizeof(buf), &src_port);
      if (n < 0) {
        if (libc_.verrno() == kEAGAIN) {
          break;  // drained
        }
        coverage_.Hit("bfs.recv.err_retry");
        if (++consecutive_failures >= 8) {
          // Persistent receive failure: back off for this tick rather than
          // spinning; queued requests survive until the next drain.
          coverage_.Hit("bfs.recv.err_backoff");
          break;
        }
        continue;
      }
      consecutive_failures = 0;
      coverage_.Hit("bfs.recv.body");
      mux_.Accept(src_port, std::string(buf, static_cast<size_t>(n)));
    }
  }
  for (auto& [src_port, payload] : mux_.TakeFrames()) {
    HandleRequest(payload, src_port);
  }
  mux_.Tick(config_.stall_ticks);
}

bool BfsServer::SendFrame(int dst_port, const std::string& payload) {
  std::string wire = BfsMux::EncodeFrame(payload);
  ScopedFrame frame(&libc_.stack(), kModule, "send_frame");
  size_t off = 0;
  int failures = 0;
  while (off < wire.size()) {
    frame.set_offset(Site("bfs.server.sendto"));
    long n = libc_.SendTo(fd_, wire.data() + off, wire.size() - off, dst_port);
    if (n < 0) {
      coverage_.Hit("bfs.send.err_retry");
      if (++failures >= 4) {
        // Give up on this reply; the client's retry re-requests it and the
        // dedup cache resends without reapplying.
        coverage_.Hit("bfs.send.err_drop");
        return false;
      }
      continue;
    }
    if (static_cast<size_t>(n) < wire.size() - off) {
      // Short write: the fabric accepted a prefix; resend from the honest
      // byte count, exactly what the partial-send fault site demands.
      coverage_.Hit("bfs.mux.resend");
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

void BfsServer::HandleRequest(const std::string& payload, int src_port) {
  std::vector<std::string> parts = Split(payload, '|');
  if (parts.size() < 5) {
    return;
  }
  std::optional<int64_t> cid = ParseInt(parts[0]);
  std::optional<int64_t> seq = ParseInt(parts[1]);
  if (!cid || !seq) {
    return;
  }
  auto key = client_keys_.find(src_port);
  if (key == client_keys_.end() || key->second.substr(0, 8) != parts[2]) {
    return;  // unauthenticated peer
  }
  Dedup& dd = dedup_[src_port];
  if (*seq == dd.last_seq) {
    // Lost-reply retry: resend the cached reply, never reapply the op.
    coverage_.Hit("bfs.op.dup_replay");
    SendFrame(src_port, dd.last_reply);
    return;
  }
  if (*seq < dd.last_seq) {
    return;  // stale duplicate
  }
  coverage_.Hit("bfs.op.body");
  std::string reply = ApplyOp(*seq, parts, src_port);
  dd.last_seq = *seq;
  dd.last_reply = reply;
  ++applied_ops_;
  SendFrame(src_port, reply);
  if (++ops_since_sync_ >= config_.sync_interval) {
    ops_since_sync_ = 0;
    SyncMeta();
  }
}

std::string BfsServer::ApplyOp(int64_t seq, const std::vector<std::string>& parts,
                               int src_port) {
  (void)src_port;
  const std::string& op = parts[3];
  if (op == "OPEN") {
    return OpOpen(seq, parts[4]);
  }
  if (op == "UNLINK") {
    return OpUnlink(seq, parts[4]);
  }
  std::optional<int64_t> handle = ParseInt(parts[4]);
  if (!handle) {
    return ErrReply(seq, "badreq");
  }
  if (op == "FSYNC") {
    return OpFsync(seq, static_cast<int>(*handle));
  }
  if (op == "CLOSE") {
    return OpClose(seq, static_cast<int>(*handle));
  }
  if (parts.size() < 7) {
    return ErrReply(seq, "badreq");
  }
  std::optional<int64_t> offset = ParseInt(parts[5]);
  if (!offset || *offset < 0) {
    return ErrReply(seq, "badreq");
  }
  if (op == "WRITE") {
    return OpWrite(seq, static_cast<int>(*handle), static_cast<size_t>(*offset), parts[6]);
  }
  if (op == "READ") {
    std::optional<int64_t> len = ParseInt(parts[6]);
    if (!len || *len < 0) {
      return ErrReply(seq, "badreq");
    }
    return OpRead(seq, static_cast<int>(*handle), static_cast<size_t>(*offset),
                  static_cast<size_t>(*len));
  }
  return ErrReply(seq, "badop");
}

std::string BfsServer::OpOpen(int64_t seq, const std::string& name) {
  for (size_t i = 0; i < inodes_.size(); ++i) {
    if (inodes_[i].used && inodes_[i].name == name) {
      int h = next_handle_++;
      handles_[h] = i;
      return OkReply(seq, StrFormat("%d", h));
    }
  }
  size_t ino = inodes_.size();
  inodes_.push_back(Inode{name, "", true});
  int h = next_handle_++;
  handles_[h] = ino;
  if (!WriteInode(ino)) {
    // Short metadata write: defer the rewrite to the next metadata sync.
    // BUG (Table 1): this records the client's connection *handle* where the
    // inode number belongs; SyncMeta() skips ids it does not recognize, so
    // the deferred rewrite never happens and the on-disk inode stays stale.
    // The client still gets its ACK -- silent corruption the consistency
    // oracle surfaces at remount.
    coverage_.Hit("bfs.inode.defer");
    dirty_inodes_.insert(static_cast<size_t>(h));
  }
  return OkReply(seq, StrFormat("%d", h));
}

std::string BfsServer::OpWrite(int64_t seq, int handle, size_t offset,
                               const std::string& data) {
  auto it = handles_.find(handle);
  if (it == handles_.end()) {
    return ErrReply(seq, "badhandle");
  }
  size_t ino = it->second;
  Inode& nd = inodes_[ino];
  std::string next = nd.content;
  if (next.size() < offset) {
    next.resize(offset, '.');
  }
  if (next.size() < offset + data.size()) {
    next.resize(offset + data.size());
  }
  next.replace(offset, data.size(), data);
  if (!data.empty()) {
    size_t first = offset / kBfsBlockSize;
    size_t last = (offset + data.size() - 1) / kBfsBlockSize;
    for (size_t blk = first; blk <= last; ++blk) {
      if (!WriteBlock(ino, blk, next.substr(blk * kBfsBlockSize, kBfsBlockSize))) {
        // Data did not make it down after retry: fail the op client-visibly
        // and keep the in-memory image at the last acknowledged state.
        return ErrReply(seq, "io");
      }
    }
  }
  nd.content = std::move(next);
  if (!WriteInode(ino)) {
    // Same deferred-rewrite recovery as OpOpen -- and the same BUG: the
    // handle goes into the dirty set instead of the inode number.
    coverage_.Hit("bfs.inode.defer");
    dirty_inodes_.insert(static_cast<size_t>(handle));
  }
  return OkReply(seq, "");
}

std::string BfsServer::OpRead(int64_t seq, int handle, size_t offset, size_t len) {
  auto it = handles_.find(handle);
  if (it == handles_.end()) {
    return ErrReply(seq, "badhandle");
  }
  size_t ino = it->second;
  const Inode& nd = inodes_[ino];
  if (offset >= nd.content.size() || len == 0) {
    return OkReply(seq, "");
  }
  size_t n = std::min(len, nd.content.size() - offset);
  // Serve from the store, not memory: corruption on disk must be visible in
  // replies, or the oracle's during-run checks would test nothing.
  size_t first = offset / kBfsBlockSize;
  size_t last = (offset + n - 1) / kBfsBlockSize;
  std::string assembled;
  for (size_t blk = first; blk <= last; ++blk) {
    size_t want = std::min(kBfsBlockSize, nd.content.size() - blk * kBfsBlockSize);
    std::optional<std::string> piece = ReadBlock(ino, blk, want);
    if (!piece) {
      return ErrReply(seq, "io");
    }
    assembled += *piece;
  }
  return OkReply(seq, assembled.substr(offset - first * kBfsBlockSize, n));
}

std::string BfsServer::OpFsync(int64_t seq, int handle) {
  if (handles_.find(handle) == handles_.end()) {
    return ErrReply(seq, "badhandle");
  }
  SyncMeta();
  FlushSuper();
  return OkReply(seq, "");
}

std::string BfsServer::OpUnlink(int64_t seq, const std::string& name) {
  size_t ino = inodes_.size();
  for (size_t i = 0; i < inodes_.size(); ++i) {
    if (inodes_[i].used && inodes_[i].name == name) {
      ino = i;
      break;
    }
  }
  if (ino == inodes_.size()) {
    return ErrReply(seq, "noent");
  }
  Inode& nd = inodes_[ino];
  size_t nblocks = (nd.content.size() + kBfsBlockSize - 1) / kBfsBlockSize;
  bool inode_gone = false;
  {
    ScopedFrame frame(&libc_.stack(), kModule, "remove_file");
    for (size_t blk = 0; blk < nblocks; ++blk) {
      frame.set_offset(Site("bfs.unlink.blocks"));
      if (libc_.Unlink(BlockPath(ino, blk)) != 0) {
        // Orphaned data block: harmless (nothing references it), collected
        // by the next format.
        coverage_.Hit("bfs.unlink.orphan");
      }
    }
    frame.set_offset(Site("bfs.unlink.unlink"));
    inode_gone = libc_.Unlink(InodePath(ino)) == 0;
  }
  nd.used = false;
  nd.name.clear();
  nd.content.clear();
  for (auto hit = handles_.begin(); hit != handles_.end();) {
    hit = hit->second == ino ? handles_.erase(hit) : std::next(hit);
  }
  if (!inode_gone) {
    // Failed metadata unlink: persist a free-slot tombstone instead, so a
    // remount cannot resurrect the file.
    coverage_.Hit("bfs.unlink.tombstone");
    if (!WriteInode(ino)) {
      // Not durably removed; defer (by inode number -- this path gets it
      // right) and report the op failed rather than lie about durability.
      dirty_inodes_.insert(ino);
      return ErrReply(seq, "busy");
    }
  }
  return OkReply(seq, "");
}

std::string BfsServer::OpClose(int64_t seq, int handle) {
  if (handles_.erase(handle) == 0) {
    return ErrReply(seq, "badhandle");
  }
  return OkReply(seq, "");
}

bool BfsServer::WriteBlock(size_t ino, size_t blk, const std::string& data) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    ScopedFrame frame(&libc_.stack(), kModule, "write_block");
    frame.set_offset(Site("bfs.block.fopen"));
    VFile* f = libc_.FOpen(BlockPath(ino, blk), "w");
    if (f == nullptr) {
      coverage_.Hit("bfs.block.err_open");
      continue;
    }
    frame.set_offset(Site("bfs.block.fwrite"));
    unsigned long wrote = libc_.FWrite(data.data(), data.size(), f);
    frame.set_offset(Site("bfs.block.fclose"));
    libc_.FClose(f);
    if (wrote == data.size()) {
      if (attempt > 0) {
        coverage_.Hit("bfs.block.retry_ok");
      }
      return true;
    }
    // Short write: retry the whole block -- fixed-size blocks make the
    // rewrite idempotent.
    coverage_.Hit("bfs.block.err_short");
  }
  return false;
}

std::optional<std::string> BfsServer::ReadBlock(size_t ino, size_t blk, size_t want) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    ScopedFrame frame(&libc_.stack(), kModule, "read_block");
    frame.set_offset(Site("bfs.read.fopen"));
    VFile* f = libc_.FOpen(BlockPath(ino, blk), "r");
    if (f == nullptr) {
      coverage_.Hit("bfs.read.err_open");
      continue;
    }
    char buf[kBfsBlockSize];
    frame.set_offset(Site("bfs.read.fread"));
    unsigned long n = libc_.FRead(buf, want, f);
    frame.set_offset(Site("bfs.read.fclose"));
    libc_.FClose(f);
    if (n == want) {
      if (attempt > 0) {
        coverage_.Hit("bfs.read.retry_ok");
      }
      return std::string(buf, want);
    }
    coverage_.Hit("bfs.read.err_short");
  }
  return std::nullopt;
}

bool BfsServer::WriteInode(size_t ino) {
  const Inode& nd = inodes_[ino];
  std::string payload =
      nd.used ? StrFormat("%s|%zu|%u", nd.name.c_str(), nd.content.size(), Crc32(nd.content))
              : StrFormat("!free|0|%u", Crc32(""));
  std::string record = payload + StrFormat("|%u", Crc32(payload));
  ScopedFrame frame(&libc_.stack(), kModule, "write_inode");
  frame.set_offset(Site("bfs.inode.fopen"));
  VFile* f = libc_.FOpen(InodePath(ino), "w");
  if (f == nullptr) {
    coverage_.Hit("bfs.inode.err_open");
    return false;
  }
  frame.set_offset(Site("bfs.inode.fwrite"));
  unsigned long wrote = libc_.FWrite(record.data(), record.size(), f);
  frame.set_offset(Site("bfs.inode.fclose"));
  libc_.FClose(f);
  if (wrote != record.size()) {
    coverage_.Hit("bfs.inode.err_short");
    return false;
  }
  return true;
}

void BfsServer::SyncMeta() {
  ScopedFrame frame(&libc_.stack(), kModule, "sync_meta");
  coverage_.Hit("bfs.sync.body");
  std::set<size_t> deferred;
  deferred.swap(dirty_inodes_);
  for (size_t id : deferred) {
    if (id >= inodes_.size()) {
      continue;  // id no longer names a live slot; nothing to rewrite
    }
    if (!WriteInode(id)) {
      dirty_inodes_.insert(id);  // still failing: keep deferring
    }
  }
  ++generation_;
  std::string record = SuperRecord();
  frame.set_offset(Site("bfs.meta.fopen"));
  VFile* f = libc_.FOpen("/bfs/super", "w");
  if (f == nullptr) {
    coverage_.Hit("bfs.sync.err_open");
    return;
  }
  frame.set_offset(Site("bfs.meta.fwrite"));
  unsigned long wrote = libc_.FWrite(record.data(), record.size(), f);
  frame.set_offset(Site("bfs.meta.fclose"));
  libc_.FClose(f);
  if (wrote != record.size()) {
    coverage_.Hit("bfs.sync.err_short");
  }
}

void BfsServer::FlushSuper() {
  ScopedFrame frame(&libc_.stack(), kModule, "flush_super");
  coverage_.Hit("bfs.fsync.body");
  ++generation_;
  std::string record = SuperRecord();
  frame.set_offset(Site("bfs.super.fopen"));
  // BUG (Table 1): the durability barrier never checks fopen -- an injected
  // failure hands FWrite a NULL stream and the server segfaults mid-FSYNC.
  VFile* f = libc_.FOpen("/bfs/super", "w");
  frame.set_offset(Site("bfs.super.fwrite"));
  libc_.FWrite(record.data(), record.size(), f);
  frame.set_offset(Site("bfs.super.fclose"));
  libc_.FClose(f);
}

std::string BfsServer::SuperRecord() const {
  size_t live = 0;
  for (const Inode& nd : inodes_) {
    live += nd.used ? 1 : 0;
  }
  std::string payload =
      StrFormat("bfs1|%llu|%zu", static_cast<unsigned long long>(generation_), live);
  return payload + StrFormat("|%u", Crc32(payload));
}

BfsServer::Snapshot BfsServer::TakeSnapshot() const {
  return Snapshot{libc_.TakeSnapshot(),
                  coverage_,
                  mux_.TakeSnapshot(),
                  fd_,
                  client_keys_,
                  inodes_,
                  handles_,
                  next_handle_,
                  dirty_inodes_,
                  dedup_,
                  generation_,
                  applied_ops_,
                  ops_since_sync_};
}

bool BfsServer::Restore(const Snapshot& snapshot) {
  if (!libc_.Restore(snapshot.libc)) {
    return false;
  }
  coverage_ = snapshot.coverage;
  mux_.Restore(snapshot.mux);
  fd_ = snapshot.fd;
  client_keys_ = snapshot.client_keys;
  inodes_ = snapshot.inodes;
  handles_ = snapshot.handles;
  next_handle_ = snapshot.next_handle;
  dirty_inodes_ = snapshot.dirty_inodes;
  dedup_ = snapshot.dedup;
  generation_ = snapshot.generation;
  applied_ops_ = snapshot.applied_ops;
  ops_since_sync_ = snapshot.ops_since_sync;
  return true;
}

// --- BfsClient -------------------------------------------------------------

BfsClient::BfsClient(VirtualFs* fs, VirtualNet* net, int id, const BfsConfig& config,
                     BfsOracle* oracle)
    : libc_(fs, net, StrFormat("bfs-client-%d", id)),
      config_(config),
      mux_(&coverage_),
      oracle_(oracle),
      id_(id) {
  RegisterBfsBlocks(&coverage_);
  handles_.assign(3, -1);
  BuildScript();
}

void BfsClient::BuildScript() {
  const std::string priv = StrFormat("/c%d.dat", id_);
  auto add = [&](BfsOp op) { script_.push_back(std::move(op)); };
  // Private phase: sequential writes read back after each round, then an
  // interior overwrite that dirties already-written blocks.
  add({BfsOp::kOpen, priv, 0, 0, "", 0, -1});
  for (int k = 0; k < config_.rounds; ++k) {
    add({BfsOp::kWrite, priv, 0, static_cast<size_t>(k) * 40, MakePayload(id_, k, 40), 0, -1});
    add({BfsOp::kRead, priv, 0, static_cast<size_t>(k) * 40, "", 40, -1});
  }
  add({BfsOp::kWrite, priv, 0, 16, MakePayload(id_, 90, 24), 0, -1});
  add({BfsOp::kRead, priv, 0, 0, "", static_cast<size_t>(config_.rounds) * 40, -1});
  add({BfsOp::kFsync, priv, 0, 0, "", 0, -1});
  if (id_ == 0) {
    // Shared phase, producer side; then the unlink surface on a temp file.
    add({BfsOp::kOpen, "/shared.dat", 1, 0, "", 0, -1});
    add({BfsOp::kWrite, "/shared.dat", 1, 0, MakePayload(0, 77, 48), 0, -1});
    add({BfsOp::kFsync, "/shared.dat", 1, 0, "", 0, -1});
    add({BfsOp::kClose, "", 1, 0, "", 0, -1});
    add({BfsOp::kOpen, "/t0.tmp", 2, 0, "", 0, -1});
    add({BfsOp::kWrite, "/t0.tmp", 2, 0, MakePayload(0, 55, 20), 0, -1});
    add({BfsOp::kFsync, "/t0.tmp", 2, 0, "", 0, -1});
    add({BfsOp::kClose, "", 2, 0, "", 0, -1});
    add({BfsOp::kUnlink, "/t0.tmp", 0, 0, "", 0, -1});
  } else {
    // Shared phase, consumer side: gated on the producer finishing, so the
    // cross-client read order is deterministic.
    add({BfsOp::kBarrier, "", 0, 0, "", 0, 0});
    add({BfsOp::kOpen, "/shared.dat", 1, 0, "", 0, -1});
    add({BfsOp::kRead, "/shared.dat", 1, 0, "", 48, -1});
    add({BfsOp::kClose, "", 1, 0, "", 0, -1});
  }
  add({BfsOp::kClose, "", 0, 0, "", 0, -1});
}

bool BfsClient::Start() {
  fd_ = libc_.Socket();
  if (fd_ < 0) {
    return false;
  }
  if (libc_.BindSocket(fd_, kBfsClientBasePort + id_) == -1) {
    return false;
  }
  token_ = DeriveLeaseKey(kBfsClientBasePort + id_).substr(0, 8);
  return true;
}

void BfsClient::Step() {
  for (int budget = 0; budget < 64; ++budget) {
    char buf[2048];
    int src_port = -1;
    long n = libc_.RecvFrom(fd_, buf, sizeof(buf), &src_port);
    if (n < 0) {
      break;
    }
    if (src_port != kBfsServerPort) {
      continue;
    }
    mux_.Accept(src_port, std::string(buf, static_cast<size_t>(n)));
  }
  for (auto& [src_port, payload] : mux_.TakeFrames()) {
    (void)src_port;
    OnReply(payload);
  }
  mux_.Tick(config_.stall_ticks);
  if (Done()) {
    return;
  }
  const BfsOp& op = script_[script_pos_];
  if (op.kind == BfsOp::kBarrier) {
    if (oracle_->ClientDone(op.wait_client)) {
      Advance();
    }
    return;
  }
  if (!outstanding_) {
    IssueCurrent();
    return;
  }
  if (++ticks_since_send_ < config_.retry_interval) {
    return;
  }
  ticks_since_send_ = 0;
  ++attempts_;
  if (attempts_ > config_.max_retries) {
    // The server is unreachable (or this op keeps failing in flight): mark
    // the op failed and move on; the oracle treats the file as
    // indeterminate from here.
    coverage_.Hit("bfs.client.giveup");
    CompleteOp(false, "");
    return;
  }
  if (attempts_ % 3 == 0) {
    // Reconnect: drop the half-assembled reply stream before retrying, as a
    // real client would after reopening its connection.
    coverage_.Hit("bfs.client.reconnect");
    mux_.ClearPeer(kBfsServerPort);
  }
  coverage_.Hit("bfs.client.retry");
  SendRequest(pending_request_);
}

void BfsClient::IssueCurrent() {
  const BfsOp& op = script_[script_pos_];
  int64_t seq = ++seq_;
  std::string req;
  switch (op.kind) {
    case BfsOp::kOpen:
      req = StrFormat("%d|%lld|%s|OPEN|%s", id_, static_cast<long long>(seq), token_.c_str(),
                      op.name.c_str());
      break;
    case BfsOp::kUnlink:
      req = StrFormat("%d|%lld|%s|UNLINK|%s", id_, static_cast<long long>(seq), token_.c_str(),
                      op.name.c_str());
      break;
    case BfsOp::kWrite:
    case BfsOp::kRead:
    case BfsOp::kFsync:
    case BfsOp::kClose: {
      int h = handles_[static_cast<size_t>(op.slot)];
      if (h < 0) {
        // The open that should have filled this slot failed; the dependent
        // op cannot run.
        CompleteOp(false, "");
        return;
      }
      if (op.kind == BfsOp::kWrite) {
        req = StrFormat("%d|%lld|%s|WRITE|%d|%zu|%s", id_, static_cast<long long>(seq),
                        token_.c_str(), h, op.offset, op.data.c_str());
      } else if (op.kind == BfsOp::kRead) {
        req = StrFormat("%d|%lld|%s|READ|%d|%zu|%zu", id_, static_cast<long long>(seq),
                        token_.c_str(), h, op.offset, op.len);
      } else if (op.kind == BfsOp::kFsync) {
        req = StrFormat("%d|%lld|%s|FSYNC|%d", id_, static_cast<long long>(seq), token_.c_str(),
                        h);
      } else {
        req = StrFormat("%d|%lld|%s|CLOSE|%d", id_, static_cast<long long>(seq), token_.c_str(),
                        h);
      }
      break;
    }
    case BfsOp::kBarrier:
      return;  // handled in Step
  }
  coverage_.Hit("bfs.client.issue");
  pending_request_ = req;
  outstanding_ = true;
  attempts_ = 1;
  ticks_since_send_ = 0;
  SendRequest(req);
}

void BfsClient::SendRequest(const std::string& request) {
  std::string wire = BfsMux::EncodeFrame(request);
  size_t off = 0;
  int stalls = 0;
  while (off < wire.size() && stalls < 4) {
    long n = libc_.SendTo(fd_, wire.data() + off, wire.size() - off, kBfsServerPort);
    if (n <= 0) {
      ++stalls;
      continue;
    }
    if (static_cast<size_t>(n) < wire.size() - off) {
      coverage_.Hit("bfs.client.resend");
    }
    off += static_cast<size_t>(n);
  }
}

void BfsClient::OnReply(const std::string& payload) {
  if (!outstanding_) {
    return;
  }
  std::vector<std::string> parts = Split(payload, '|');
  if (parts.size() < 2) {
    return;
  }
  std::optional<int64_t> seq = ParseInt(parts[0]);
  if (!seq || *seq != seq_) {
    return;  // reply to an earlier incarnation of this request stream
  }
  CompleteOp(parts[1] == "OK", parts.size() >= 3 ? parts[2] : "");
}

void BfsClient::CompleteOp(bool ok, const std::string& reply_data) {
  const BfsOp& op = script_[script_pos_];
  outstanding_ = false;
  const std::string file = OpFile(script_pos_);
  if (!ok) {
    if (!file.empty()) {
      oracle_->OnOpFailed(file);
    }
  } else {
    ++completed_ops_;
    coverage_.Hit("bfs.client.op_done");
    switch (op.kind) {
      case BfsOp::kOpen: {
        std::optional<int64_t> h = ParseInt(reply_data);
        handles_[static_cast<size_t>(op.slot)] = h ? static_cast<int>(*h) : -1;
        oracle_->OnOpenAck(op.name);
        break;
      }
      case BfsOp::kWrite:
        oracle_->OnWriteAck(file, op.offset, op.data);
        break;
      case BfsOp::kRead:
        oracle_->OnReadAck(file, op.offset, op.len, reply_data);
        break;
      case BfsOp::kUnlink:
        oracle_->OnUnlinkAck(op.name);
        break;
      case BfsOp::kFsync:
      case BfsOp::kClose:
      case BfsOp::kBarrier:
        break;
    }
  }
  Advance();
}

std::string BfsClient::OpFile(size_t pos) const { return script_[pos].name; }

void BfsClient::Advance() {
  ++script_pos_;
  attempts_ = 0;
  ticks_since_send_ = 0;
  if (Done()) {
    oracle_->MarkClientDone(id_);
  }
}

BfsClient::Snapshot BfsClient::TakeSnapshot() const {
  return Snapshot{libc_.TakeSnapshot(),
                  coverage_,
                  mux_.TakeSnapshot(),
                  fd_,
                  token_,
                  script_pos_,
                  seq_,
                  outstanding_,
                  attempts_,
                  ticks_since_send_,
                  handles_,
                  completed_ops_};
}

bool BfsClient::Restore(const Snapshot& snapshot) {
  if (!libc_.Restore(snapshot.libc)) {
    return false;
  }
  coverage_ = snapshot.coverage;
  mux_.Restore(snapshot.mux);
  fd_ = snapshot.fd;
  token_ = snapshot.token;
  script_pos_ = snapshot.script_pos;
  seq_ = snapshot.seq;
  outstanding_ = snapshot.outstanding;
  attempts_ = snapshot.attempts;
  ticks_since_send_ = snapshot.ticks_since_send;
  handles_ = snapshot.handles;
  completed_ops_ = snapshot.completed_ops;
  pending_request_.clear();
  if (outstanding_) {
    // The request text is a pure function of the op and seq; rebuilding it
    // keeps the snapshot free of redundant state.
    outstanding_ = false;
    ticks_since_send_ = config_.retry_interval;  // reissue on the next tick
  }
  return true;
}

// --- BfsCluster ------------------------------------------------------------

BfsCluster::BfsCluster(VirtualFs* fs, VirtualNet* net, const BfsConfig& config)
    : config_(config), fs_(fs), net_(net), oracle_(config.clients) {
  net_->set_tick_delivery(true);
  server_ = std::make_unique<BfsServer>(fs, net, config_);
  for (int i = 0; i < config_.clients; ++i) {
    clients_.push_back(std::make_unique<BfsClient>(fs, net, i, config_, &oracle_));
  }
}

bool BfsCluster::Start() {
  if (!server_->Start()) {
    return false;
  }
  for (auto& client : clients_) {
    if (!client->Start()) {
      return false;
    }
  }
  return true;
}

CoverageMap BfsCluster::Coverage() const {
  CoverageMap out;
  out.Absorb(server_->coverage());
  for (const auto& client : clients_) {
    out.Absorb(client->coverage());
  }
  return out;
}

bool BfsCluster::AllClientsDone() const {
  for (const auto& client : clients_) {
    if (!client->Done()) {
      return false;
    }
  }
  return true;
}

int BfsCluster::RunWorkload(int max_ticks) {
  int ticks = 0;
  while (ticks < max_ticks && !AllClientsDone() && !crashed_) {
    ++ticks;
    net_->AdvanceTick();
    try {
      server_->Step();
      for (auto& client : clients_) {
        client->Step();
      }
    } catch (const SimCrash& crash) {
      crashed_ = true;
      crash_reason_ = crash.what();
      break;
    }
  }
  return ticks;
}

std::string BfsCluster::CheckConsistency() {
  oracle_.Audit(*fs_);
  return oracle_.FirstError();
}

BfsCluster::Snapshot BfsCluster::TakeSnapshot() const {
  Snapshot snapshot{server_->TakeSnapshot(), {}, oracle_, crashed_, crash_reason_};
  for (const auto& client : clients_) {
    snapshot.clients.push_back(client->TakeSnapshot());
  }
  return snapshot;
}

bool BfsCluster::Restore(const Snapshot& snapshot) {
  if (snapshot.clients.size() != clients_.size()) {
    return false;
  }
  if (!server_->Restore(snapshot.server)) {
    return false;
  }
  for (size_t i = 0; i < clients_.size(); ++i) {
    if (!clients_[i]->Restore(snapshot.clients[i])) {
      return false;
    }
  }
  oracle_ = snapshot.oracle;
  crashed_ = snapshot.crashed;
  crash_reason_ = snapshot.crash_reason;
  return true;
}

}  // namespace lfi
