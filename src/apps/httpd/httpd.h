// mini-httpd: the Apache 2.2.14 stand-in for the trigger-overhead study.
//
// Serves two workloads through an ap_process_request_internal()-shaped
// request path: static files (apr_file_read in a chunk loop -- I/O bound,
// many library calls per second) and "PHP" requests (compute bound -- fewer
// library calls per unit of time), matching the two workloads of Table 5.
// Requests carry a request_rec with a method_number (GET/POST), published to
// the trigger-visible globals the way the paper's adapted application-state
// trigger reads Apache's request_rec. Some reads happen under a held mutex
// (trigger 5's target), and /ext/ URIs route through a dynamically loaded
// module ("mod_ext"), giving the call-stack triggers something to
// distinguish.

#ifndef LFI_APPS_HTTPD_HTTPD_H_
#define LFI_APPS_HTTPD_HTTPD_H_

#include <string>

#include "apps/common/app_binary.h"
#include "vlib/virtual_libc.h"

namespace lfi {

const AppBinary& HttpdBinary();

inline constexpr int kMethodGet = 0;
inline constexpr int kMethodPost = 1;

struct RequestRec {
  std::string uri;
  int method_number = kMethodGet;
  std::string body;
};

class MiniHttpd {
 public:
  static constexpr const char* kModule = "httpd-core";
  static constexpr const char* kExtModule = "mod_ext";

  MiniHttpd(VirtualFs* fs, VirtualNet* net, std::string docroot);

  VirtualLibc& libc() { return libc_; }

  // Populates the document root with a static page and a "PHP" script.
  void InstallDefaultSite();

  // The full request path (ap_process_request_internal). Returns the
  // response body, or an error page on failure.
  std::string ProcessRequest(const RequestRec& request);

  uint64_t requests_served() const { return requests_served_; }

 private:
  std::string ServeStatic(const std::string& path);
  std::string ServePhp(const std::string& path, const RequestRec& request);
  std::string ServeExtModule(const RequestRec& request);

  VirtualLibc libc_;
  std::string docroot_;
  VMutex accept_mutex_{"accept_mutex", 0};
  uint64_t requests_served_ = 0;
};

}  // namespace lfi

#endif  // LFI_APPS_HTTPD_HTTPD_H_
