#include "apps/httpd/httpd.h"

#include "util/errno_codes.h"
#include "util/sha1.h"
#include "util/string_util.h"

namespace lfi {
namespace {

uint32_t Site(const char* name) { return HttpdBinary().SiteOffset(name); }

}  // namespace

const AppBinary& HttpdBinary() {
  static const AppBinary* binary = [] {
    AppBinaryBuilder b(MiniHttpd::kModule, /*filler_seed=*/0xa9ac);
    b.AddSite({"httpd.static.open", "default_handler", "open", CheckPattern::kCheckIneq, {}});
    b.AddSite({"httpd.static.read", "default_handler", "apr_file_read",
               CheckPattern::kCheckIneq, {}});
    b.AddSite({"httpd.static.close", "default_handler", "close", CheckPattern::kCheckEqAll, {-1}});
    b.AddSite({"httpd.php.open", "php_handler", "open", CheckPattern::kCheckIneq, {}});
    b.AddSite({"httpd.php.read", "php_handler", "apr_file_read", CheckPattern::kCheckIneq, {}});
    b.AddSite({"httpd.php.close", "php_handler", "close", CheckPattern::kCheckEqAll, {-1}});
    b.AddSite({"httpd.lock", "ap_process_request_internal", "pthread_mutex_lock",
               CheckPattern::kCheckEqAll, {kEDEADLK}});
    b.AddSite({"httpd.unlock", "ap_process_request_internal", "pthread_mutex_unlock",
               CheckPattern::kNoCheck, {}});
    b.AddSite({"httpd.ext.open", "ext_handler", "open", CheckPattern::kCheckIneq, {}});
    b.AddSite({"httpd.ext.read", "ext_handler", "apr_file_read", CheckPattern::kCheckIneq, {}});
    b.AddSite({"httpd.ext.close", "ext_handler", "close", CheckPattern::kCheckEqAll, {-1}});
    return new AppBinary(b.Build());
  }();
  return *binary;
}

MiniHttpd::MiniHttpd(VirtualFs* fs, VirtualNet* net, std::string docroot)
    : libc_(fs, net, kModule), docroot_(std::move(docroot)) {
  fs->MkDir(docroot_);
}

void MiniHttpd::InstallDefaultSite() {
  std::string page = "<html><body>";
  for (int i = 0; i < 40; ++i) {
    page += StrFormat("<p>static content line %d</p>", i);
  }
  page += "</body></html>";
  libc_.fs()->WriteFile(docroot_ + "/index.html", page);
  libc_.fs()->WriteFile(docroot_ + "/page.php",
                        "<?php for ($i = 0; $i < 64; $i++) { hash($seed); } ?>");
  libc_.fs()->WriteFile(docroot_ + "/ext/data.bin", std::string(256, '\x7f'));
}

std::string MiniHttpd::ServeStatic(const std::string& path) {
  ScopedFrame frame(&libc_.stack(), kModule, "default_handler");
  frame.set_offset(Site("httpd.static.open"));
  int fd = libc_.Open(path, kORdOnly);
  if (fd < 0) {
    return "404 Not Found";
  }
  std::string body;
  char buf[256];
  while (true) {
    frame.set_offset(Site("httpd.static.read"));
    long n = libc_.AprFileRead(fd, buf, sizeof buf);
    if (n < 0) {
      libc_.Close(fd);
      return "500 Internal Server Error";
    }
    if (n == 0) {
      break;
    }
    body.append(buf, static_cast<size_t>(n));
  }
  frame.set_offset(Site("httpd.static.close"));
  libc_.Close(fd);
  return body;
}

std::string MiniHttpd::ServePhp(const std::string& path, const RequestRec& request) {
  ScopedFrame frame(&libc_.stack(), kModule, "php_handler");
  frame.set_offset(Site("httpd.php.open"));
  int fd = libc_.Open(path, kORdOnly);
  if (fd < 0) {
    return "404 Not Found";
  }
  std::string script;
  char buf[128];
  while (true) {
    frame.set_offset(Site("httpd.php.read"));
    long n = libc_.AprFileRead(fd, buf, sizeof buf);
    if (n <= 0) {
      break;
    }
    script.append(buf, static_cast<size_t>(n));
  }
  frame.set_offset(Site("httpd.php.close"));
  libc_.Close(fd);

  // "Execute" the script: compute-bound work, few library calls.
  std::string state = script + request.body;
  for (int i = 0; i < 64; ++i) {
    state = Sha1::HexDigest(state);
  }
  return "<html>" + state + "</html>";
}

std::string MiniHttpd::ServeExtModule(const RequestRec& request) {
  // Dynamically-loaded module: its frames carry the mod_ext module name, so
  // call-stack triggers scoped to httpd-core exclude it.
  ScopedFrame frame(&libc_.stack(), kExtModule, "ext_handler");
  frame.set_offset(Site("httpd.ext.open"));
  int fd = libc_.Open(docroot_ + request.uri, kORdOnly);
  if (fd < 0) {
    return "404 Not Found";
  }
  char buf[64];
  frame.set_offset(Site("httpd.ext.read"));
  long n = libc_.AprFileRead(fd, buf, sizeof buf);
  frame.set_offset(Site("httpd.ext.close"));
  libc_.Close(fd);
  return n >= 0 ? "ext ok" : "ext error";
}

std::string MiniHttpd::ProcessRequest(const RequestRec& request) {
  ScopedFrame frame(&libc_.stack(), kModule, "ap_process_request_internal");
  // Publish the request_rec fields the application-state trigger examines.
  libc_.SetGlobal("request.method_number", request.method_number);
  ++requests_served_;

  // The accept/request mutex: part of each request's library-call mix.
  frame.set_offset(Site("httpd.lock"));
  libc_.MutexLock(&accept_mutex_);
  std::string response;
  if (StartsWith(request.uri, "/ext/")) {
    response = ServeExtModule(request);
  } else if (EndsWith(request.uri, ".php")) {
    response = ServePhp(docroot_ + request.uri, request);
  } else {
    response = ServeStatic(docroot_ + request.uri);
  }
  frame.set_offset(Site("httpd.unlock"));
  libc_.MutexUnlock(&accept_mutex_);
  return response;
}

}  // namespace lfi
