#include "apps/git/git.h"

#include <cstring>

#include "util/errno_codes.h"
#include "util/sha1.h"
#include "util/string_util.h"

namespace lfi {
namespace {

uint32_t Site(const char* name) { return GitBinary().SiteOffset(name); }

}  // namespace

const AppBinary& GitBinary() {
  static const AppBinary* binary = [] {
    AppBinaryBuilder b(MiniGit::kModule, /*filler_seed=*/0x617);

    // Object store plumbing (checked; exercised by the C++ implementation).
    b.AddSite({"git.write_object.open", "write_object", "open", CheckPattern::kCheckIneq, {}});
    b.AddSite({"git.write_object.write", "write_object", "write", CheckPattern::kCheckIneq, {}});
    b.AddSite({"git.write_object.close", "write_object", "close", CheckPattern::kCheckEqAll, {-1}});
    b.AddSite({"git.read_object.open", "read_object", "open", CheckPattern::kCheckIneq, {}});
    b.AddSite({"git.read_object.read", "read_object", "read", CheckPattern::kCheckIneq, {}});
    b.AddSite({"git.read_object.close", "read_object", "close", CheckPattern::kCheckEqAll, {-1}});
    b.AddSite({"git.index.open", "write_index", "open", CheckPattern::kCheckIneq, {}});
    b.AddSite({"git.index.write", "write_index", "write", CheckPattern::kCheckIneq, {}});
    b.AddSite({"git.index.close", "write_index", "close", CheckPattern::kCheckEqAll, {-1}});
    b.AddSite({"git.index.read_open", "read_index", "open", CheckPattern::kCheckIneq, {}});
    b.AddSite({"git.index.read", "read_index", "read", CheckPattern::kCheckIneq, {}});
    b.AddSite({"git.ref.open", "update_ref", "open", CheckPattern::kCheckIneq, {}});
    b.AddSite({"git.ref.write", "update_ref", "write", CheckPattern::kCheckIneq, {}});
    b.AddSite({"git.ref.close", "update_ref", "close", CheckPattern::kCheckEqAll, {-1}});
    b.AddSite({"git.ref.read_open", "resolve_ref", "open", CheckPattern::kCheckIneq, {}});
    b.AddSite({"git.ref.read", "resolve_ref", "read", CheckPattern::kCheckIneq, {}});
    b.AddSite(
        {"git.resolve_ref.readlink", "resolve_ref", "readlink", CheckPattern::kCheckIneq, {}});

    // Table 1 bug sites.
    b.AddSite({"git.branches.opendir", "list_branches", "opendir", CheckPattern::kNoCheck, {}});
    b.AddSite({"git.branches.readdir", "list_branches", "readdir", CheckPattern::kNoCheck, {}});
    b.AddSite({"git.hook.unsetenv", "run_hook", "unsetenv", CheckPattern::kCheckEqAll, {-1}});
    b.AddSite({"git.hook.setenv", "run_hook", "setenv", CheckPattern::kNoCheck, {}});
    b.AddSite({"git.hook.open", "run_hook", "open", CheckPattern::kCheckIneq, {}});
    b.AddSite({"git.hook.write", "run_hook", "write", CheckPattern::kNoCheck, {}});
    b.AddSite({"git.hook.close", "run_hook", "close", CheckPattern::kCheckEqAll, {-1}});
    b.AddSite({"git.xmerge.malloc567", "xdl_do_merge", "malloc", CheckPattern::kNoCheck, {}});
    b.AddSite({"git.xmerge.malloc571", "xdl_do_merge", "malloc", CheckPattern::kNoCheck, {}});
    b.AddSite({"git.xpatience.malloc191", "patience_diff", "malloc", CheckPattern::kNoCheck, {}});

    // Table 4 populations. Git: 25 malloc sites total (3 unchecked above +
    // 22 checked here), 127 close sites (3 + 5 above are named; pad to 127),
    // 7 readlink sites (1 named above + 6 here). All ground-truth labels are
    // carried by the CheckPattern.
    for (int i = 0; i < 22; ++i) {
      b.AddSite({StrFormat("git.alloc%02d", i), StrFormat("alloc_helper_%d", i / 4), "malloc",
                 CheckPattern::kCheckZeroEq, {}});
    }
    for (int i = 0; i < 122; ++i) {
      b.AddSite({StrFormat("git.close%03d", i), StrFormat("io_helper_%d", i / 8), "close",
                 CheckPattern::kCheckEqAll, {-1}});
    }
    for (int i = 0; i < 6; ++i) {
      b.AddSite({StrFormat("git.readlink%d", i), StrFormat("link_helper_%d", i / 3), "readlink",
                 CheckPattern::kCheckIneq, {}});
    }
    return new AppBinary(b.Build());
  }();
  return *binary;
}

MiniGit::MiniGit(VirtualFs* fs, VirtualNet* net, std::string repo_root)
    : libc_(fs, net, kModule), repo_root_(std::move(repo_root)) {
  RegisterCoverageBlocks();
}

void MiniGit::RegisterCoverageBlocks() {
  struct BlockSpec {
    const char* id;
    bool recovery;
    int lines;
  };
  static const BlockSpec kBlocks[] = {
      {"git.init.body", false, 14},
      {"git.write_object.body", false, 22},
      {"git.write_object.err_open", true, 5},
      {"git.write_object.err_write", true, 6},
      {"git.write_object.err_close", true, 4},
      {"git.read_object.body", false, 18},
      {"git.read_object.err_open", true, 4},
      {"git.read_object.err_read", true, 6},
      {"git.add.body", false, 12},
      {"git.add.err_object", true, 4},
      {"git.index.body", false, 10},
      {"git.index.err_open", true, 4},
      {"git.index.err_write", true, 5},
      {"git.commit.body", false, 26},
      {"git.commit.err_tree", true, 5},
      {"git.commit.err_ref", true, 6},
      {"git.ref.body", false, 9},
      {"git.ref.err_open", true, 4},
      {"git.ref.err_write", true, 5},
      {"git.resolve_ref.body", false, 11},
      {"git.resolve_ref.err_link", true, 4},
      {"git.resolve_ref.err_open", true, 4},
      {"git.branches.body", false, 8},
      {"git.hook.body", false, 13},
      {"git.hook.err_open", true, 4},
      {"git.merge.body", false, 30},
      {"git.merge.err_read", true, 5},
      {"git.patience.body", false, 16},
      {"git.diff.body", false, 12},
      {"git.diff.err_read", true, 4},
      {"git.fsck.body", false, 15},
      {"git.fsck.err_missing", true, 6},
  };
  for (const auto& blk : kBlocks) {
    coverage_.RegisterBlock(blk.id, blk.recovery, blk.lines);
  }
}

std::string MiniGit::ObjectPath(const std::string& id) const {
  return repo_root_ + "/.git/objects/" + id.substr(0, 2) + "/" + id.substr(2);
}

bool MiniGit::Init() {
  coverage_.Hit("git.init.body");
  VirtualFs* fs = libc_.fs();
  fs->MkDir(repo_root_);
  fs->MkDir(repo_root_ + "/.git");
  fs->MkDir(repo_root_ + "/.git/objects");
  fs->MkDir(repo_root_ + "/.git/refs");
  fs->MkDir(repo_root_ + "/.git/refs/heads");
  // HEAD is a symbolic ref, resolved with readlink().
  VfsFile head;
  head.symlink_target = "refs/heads/master";
  fs->WriteFile(repo_root_ + "/.git/HEAD", "");
  fs->GetMutableFile(repo_root_ + "/.git/HEAD")->symlink_target = "refs/heads/master";
  fs->WriteFile(repo_root_ + "/.git/index", "");
  return true;
}

std::optional<std::string> MiniGit::WriteObject(const std::string& type,
                                                const std::string& content) {
  ScopedFrame frame(&libc_.stack(), kModule, "write_object");
  static const CoverageMap::BlockId kBlkGitWriteObjectBody = CoverageMap::InternBlock("git.write_object.body");
  coverage_.Hit(kBlkGitWriteObjectBody);
  std::string payload = type + " " + StrFormat("%zu", content.size()) + '\0' + content;
  std::string id = Sha1::HexDigest(payload);

  std::string dir = repo_root_ + "/.git/objects/" + id.substr(0, 2);
  if (!libc_.fs()->DirExists(dir)) {
    libc_.fs()->MkDir(dir);
  }
  frame.set_offset(Site("git.write_object.open"));
  int fd = libc_.Open(ObjectPath(id), kOWrOnly | kOCreate | kOTrunc);
  if (fd < 0) {
    coverage_.Hit("git.write_object.err_open");
    return std::nullopt;
  }
  frame.set_offset(Site("git.write_object.write"));
  long n = libc_.Write(fd, payload.data(), payload.size());
  if (n < 0 || static_cast<size_t>(n) != payload.size()) {
    coverage_.Hit("git.write_object.err_write");
    libc_.Close(fd);
    libc_.Unlink(ObjectPath(id));
    return std::nullopt;
  }
  frame.set_offset(Site("git.write_object.close"));
  if (libc_.Close(fd) == -1) {
    coverage_.Hit("git.write_object.err_close");
    return std::nullopt;
  }
  return id;
}

std::optional<std::string> MiniGit::ReadObject(const std::string& id, std::string* type) {
  ScopedFrame frame(&libc_.stack(), kModule, "read_object");
  static const CoverageMap::BlockId kBlkGitReadObjectBody = CoverageMap::InternBlock("git.read_object.body");
  coverage_.Hit(kBlkGitReadObjectBody);
  if (id.size() != 40) {
    coverage_.Hit("git.read_object.err_open");
    return std::nullopt;
  }
  frame.set_offset(Site("git.read_object.open"));
  int fd = libc_.Open(ObjectPath(id), kORdOnly);
  if (fd < 0) {
    coverage_.Hit("git.read_object.err_open");
    return std::nullopt;
  }
  std::string payload;
  char buf[256];
  while (true) {
    frame.set_offset(Site("git.read_object.read"));
    long n = libc_.Read(fd, buf, sizeof buf);
    if (n < 0) {
      if (libc_.verrno() == kEINTR) {
        continue;  // correctly retried (recovery code)
      }
      coverage_.Hit("git.read_object.err_read");
      libc_.Close(fd);
      return std::nullopt;
    }
    if (n == 0) {
      break;
    }
    payload.append(buf, static_cast<size_t>(n));
  }
  frame.set_offset(Site("git.read_object.close"));
  libc_.Close(fd);

  size_t nul = payload.find('\0');
  if (nul == std::string::npos) {
    coverage_.Hit("git.read_object.err_read");
    return std::nullopt;
  }
  std::string header = payload.substr(0, nul);
  size_t space = header.find(' ');
  if (type != nullptr && space != std::string::npos) {
    *type = header.substr(0, space);
  }
  return payload.substr(nul + 1);
}

bool MiniGit::Add(const std::string& path, const std::string& content) {
  coverage_.Hit("git.add.body");
  auto id = WriteObject("blob", content);
  if (!id) {
    coverage_.Hit("git.add.err_object");
    return false;
  }
  // Append to the index.
  ScopedFrame frame(&libc_.stack(), kModule, "write_index");
  static const CoverageMap::BlockId kBlkGitIndexBody = CoverageMap::InternBlock("git.index.body");
  coverage_.Hit(kBlkGitIndexBody);
  frame.set_offset(Site("git.index.open"));
  int fd = libc_.Open(repo_root_ + "/.git/index", kOWrOnly | kOCreate | kOAppend);
  if (fd < 0) {
    coverage_.Hit("git.index.err_open");
    return false;
  }
  std::string line = path + " " + *id + "\n";
  frame.set_offset(Site("git.index.write"));
  long n = libc_.Write(fd, line.data(), line.size());
  if (n < 0) {
    coverage_.Hit("git.index.err_write");
    libc_.Close(fd);
    return false;
  }
  frame.set_offset(Site("git.index.close"));
  libc_.Close(fd);
  return true;
}

std::optional<std::string> MiniGit::Commit(const std::string& message) {
  coverage_.Hit("git.commit.body");
  // Tree = current index content.
  ScopedFrame frame(&libc_.stack(), kModule, "read_index");
  frame.set_offset(Site("git.index.read_open"));
  int fd = libc_.Open(repo_root_ + "/.git/index", kORdOnly);
  std::string index_data;
  if (fd >= 0) {
    char buf[256];
    while (true) {
      frame.set_offset(Site("git.index.read"));
      long n = libc_.Read(fd, buf, sizeof buf);
      if (n <= 0) {
        break;
      }
      index_data.append(buf, static_cast<size_t>(n));
    }
    libc_.Close(fd);
  }
  auto tree_id = WriteObject("tree", index_data);
  if (!tree_id) {
    coverage_.Hit("git.commit.err_tree");
    return std::nullopt;
  }
  auto parent = HeadCommit();
  std::string body = "tree " + *tree_id + "\n";
  if (parent) {
    body += "parent " + *parent + "\n";
  }
  body += "\n" + message + "\n";
  auto commit_id = WriteObject("commit", body);
  if (!commit_id) {
    coverage_.Hit("git.commit.err_tree");
    return std::nullopt;
  }

  // Update the current branch ref.
  {
    ScopedFrame ref_frame(&libc_.stack(), kModule, "update_ref");
    static const CoverageMap::BlockId kBlkGitRefBody = CoverageMap::InternBlock("git.ref.body");
    coverage_.Hit(kBlkGitRefBody);
    ref_frame.set_offset(Site("git.ref.open"));
    int ref_fd = libc_.Open(repo_root_ + "/.git/refs/heads/master", kOWrOnly | kOCreate | kOTrunc);
    if (ref_fd < 0) {
      coverage_.Hit("git.ref.err_open");
      coverage_.Hit("git.commit.err_ref");
      return std::nullopt;
    }
    ref_frame.set_offset(Site("git.ref.write"));
    long n = libc_.Write(ref_fd, commit_id->data(), commit_id->size());
    if (n < 0) {
      coverage_.Hit("git.ref.err_write");
      coverage_.Hit("git.commit.err_ref");
      libc_.Close(ref_fd);
      return std::nullopt;
    }
    ref_frame.set_offset(Site("git.ref.close"));
    libc_.Close(ref_fd);
  }
  RunHook("post-commit");
  return commit_id;
}

std::optional<std::string> MiniGit::HeadCommit() {
  ScopedFrame frame(&libc_.stack(), kModule, "resolve_ref");
  coverage_.Hit("git.resolve_ref.body");
  char target[128];
  frame.set_offset(Site("git.resolve_ref.readlink"));
  long n = libc_.ReadLink(repo_root_ + "/.git/HEAD", target, sizeof target);
  if (n < 0) {
    coverage_.Hit("git.resolve_ref.err_link");
    return std::nullopt;
  }
  std::string ref_path = repo_root_ + "/.git/" + std::string(target, static_cast<size_t>(n));
  frame.set_offset(Site("git.ref.read_open"));
  int fd = libc_.Open(ref_path, kORdOnly);
  if (fd < 0) {
    coverage_.Hit("git.resolve_ref.err_open");
    return std::nullopt;  // unborn branch
  }
  char buf[64];
  frame.set_offset(Site("git.ref.read"));
  long r = libc_.Read(fd, buf, sizeof buf);
  libc_.Close(fd);
  if (r < 0) {
    coverage_.Hit("git.resolve_ref.err_open");
    return std::nullopt;
  }
  return std::string(buf, static_cast<size_t>(r));
}

std::vector<std::string> MiniGit::ListBranches() {
  ScopedFrame frame(&libc_.stack(), kModule, "list_branches");
  coverage_.Hit("git.branches.body");
  std::vector<std::string> out;
  frame.set_offset(Site("git.branches.opendir"));
  VDir* dir = libc_.OpenDir(repo_root_ + "/.git/refs/heads");
  // BUG (Table 1): `dir` is not checked; a failed opendir (ENOMEM, EMFILE)
  // hands readdir a NULL pointer and the process segfaults.
  frame.set_offset(Site("git.branches.readdir"));
  while (const char* entry = libc_.ReadDir(dir)) {
    out.emplace_back(entry);
  }
  libc_.CloseDir(dir);
  return out;
}

bool MiniGit::CreateBranch(const std::string& name) {
  auto head = HeadCommit();
  if (!head) {
    return false;
  }
  ScopedFrame frame(&libc_.stack(), kModule, "update_ref");
  static const CoverageMap::BlockId kBlkGitRefBody = CoverageMap::InternBlock("git.ref.body");
  coverage_.Hit(kBlkGitRefBody);
  frame.set_offset(Site("git.ref.open"));
  int fd = libc_.Open(repo_root_ + "/.git/refs/heads/" + name, kOWrOnly | kOCreate | kOTrunc);
  if (fd < 0) {
    coverage_.Hit("git.ref.err_open");
    return false;
  }
  frame.set_offset(Site("git.ref.write"));
  long n = libc_.Write(fd, head->data(), head->size());
  if (n < 0) {
    coverage_.Hit("git.ref.err_write");
    libc_.Close(fd);
    return false;
  }
  frame.set_offset(Site("git.ref.close"));
  libc_.Close(fd);
  return true;
}

std::optional<std::string> MiniGit::DiffBlobs(const std::string& id_a, const std::string& id_b) {
  static const CoverageMap::BlockId kBlkGitDiffBody = CoverageMap::InternBlock("git.diff.body");
  coverage_.Hit(kBlkGitDiffBody);
  auto a = ReadObject(id_a);
  auto b = ReadObject(id_b);
  if (!a || !b) {
    coverage_.Hit("git.diff.err_read");
    return std::nullopt;
  }
  return RenderDiff(MyersDiff(SplitLines(*a), SplitLines(*b)));
}

std::optional<MergeResult> MiniGit::Merge(const std::string& base_id, const std::string& ours_id,
                                          const std::string& theirs_id) {
  coverage_.Hit("git.merge.body");
  auto base = ReadObject(base_id);
  auto ours = ReadObject(ours_id);
  auto theirs = ReadObject(theirs_id);
  if (!base || !ours || !theirs) {
    coverage_.Hit("git.merge.err_read");
    return std::nullopt;
  }
  ScopedFrame frame(&libc_.stack(), kModule, "xdl_do_merge");
  return XMerge3(&libc_, &frame, Site("git.xmerge.malloc567"), Site("git.xmerge.malloc571"),
                 SplitLines(*base), SplitLines(*ours), SplitLines(*theirs));
}

std::optional<std::string> MiniGit::PatienceDiffBlobs(const std::string& id_a,
                                                      const std::string& id_b) {
  coverage_.Hit("git.patience.body");
  auto a = ReadObject(id_a);
  auto b = ReadObject(id_b);
  if (!a || !b) {
    coverage_.Hit("git.diff.err_read");
    return std::nullopt;
  }
  ScopedFrame frame(&libc_.stack(), kModule, "patience_diff");
  return RenderDiff(PatienceDiff(&libc_, &frame, Site("git.xpatience.malloc191"), SplitLines(*a),
                                 SplitLines(*b)));
}

void MiniGit::RunHook(const std::string& hook_name) {
  ScopedFrame frame(&libc_.stack(), kModule, "run_hook");
  coverage_.Hit("git.hook.body");
  ++hook_runs_;

  // The child command starts from a scrubbed environment...
  frame.set_offset(Site("git.hook.unsetenv"));
  if (libc_.UnsetEnv("GIT_DIR") == -1) {
    return;
  }
  // ...and BUG (Table 1): the setenv return is not checked. On failure the
  // "external command" below runs with an incomplete environment.
  frame.set_offset(Site("git.hook.setenv"));
  libc_.SetEnv("GIT_DIR", repo_root_ + "/.git", 1);

  // The external command: appends a line to $GIT_DIR/hooks.log. With GIT_DIR
  // missing it falls back to a relative default that resolves *inside the
  // ref namespace* -- silently clobbering refs/heads/master (data loss).
  const char* dir = libc_.GetEnv("GIT_DIR");
  std::string target = dir != nullptr ? std::string(dir) + "/hooks.log"
                                      : repo_root_ + "/.git/refs/heads/master";
  frame.set_offset(Site("git.hook.open"));
  int fd = libc_.Open(target, kOWrOnly | kOCreate | kOAppend);
  if (fd < 0) {
    coverage_.Hit("git.hook.err_open");
    return;
  }
  std::string line = StrFormat("hook %s run %d\n", hook_name.c_str(), hook_runs_);
  frame.set_offset(Site("git.hook.write"));
  libc_.Write(fd, line.data(), line.size());
  frame.set_offset(Site("git.hook.close"));
  libc_.Close(fd);
}

bool MiniGit::Fsck() {
  coverage_.Hit("git.fsck.body");
  for (const std::string& branch : ListBranches()) {
    ScopedFrame frame(&libc_.stack(), kModule, "resolve_ref");
    frame.set_offset(Site("git.ref.read_open"));
    int fd = libc_.Open(repo_root_ + "/.git/refs/heads/" + branch, kORdOnly);
    if (fd < 0) {
      coverage_.Hit("git.fsck.err_missing");
      return false;
    }
    char buf[64];
    frame.set_offset(Site("git.ref.read"));
    long n = libc_.Read(fd, buf, sizeof buf);
    libc_.Close(fd);
    if (n != 40) {
      coverage_.Hit("git.fsck.err_missing");
      return false;
    }
    std::string type;
    auto obj = ReadObject(std::string(buf, 40), &type);
    if (!obj || type != "commit") {
      coverage_.Hit("git.fsck.err_missing");
      return false;
    }
  }
  return true;
}

bool MiniGit::RunDefaultTestSuite() {
  if (!Init()) {
    return false;
  }
  if (!Add("README", "hello\nworld\n") || !Add("src/main.c", "int main() {\n  return 0;\n}\n")) {
    return false;
  }
  auto c1 = Commit("initial import");
  if (!c1) {
    return false;
  }
  if (!Add("README", "hello\nbrave\nworld\n")) {
    return false;
  }
  auto c2 = Commit("update readme");
  if (!c2) {
    return false;
  }
  if (!CreateBranch("topic")) {
    return false;
  }
  auto branches = ListBranches();
  if (branches.size() != 2) {
    return false;
  }

  // Diff / merge exercise.
  auto base = WriteObject("blob", "a\nb\nc\nd\n");
  auto ours = WriteObject("blob", "a\nB\nc\nd\n");
  auto theirs = WriteObject("blob", "a\nb\nc\nD\n");
  auto conflicting = WriteObject("blob", "a\nX\nc\nd\n");
  if (!base || !ours || !theirs || !conflicting) {
    return false;
  }
  auto diff = DiffBlobs(*base, *ours);
  if (!diff || diff->find("+B") == std::string::npos) {
    return false;
  }
  auto merged = Merge(*base, *ours, *theirs);
  if (!merged || merged->conflict) {
    return false;
  }
  if (JoinLines(merged->lines) != "a\nB\nc\nD\n") {
    return false;
  }
  auto conflict = Merge(*base, *ours, *conflicting);
  if (!conflict || !conflict->conflict) {
    return false;
  }
  auto pdiff = PatienceDiffBlobs(*base, *theirs);
  if (!pdiff || pdiff->find("+D") == std::string::npos) {
    return false;
  }
  return Fsck();
}

}  // namespace lfi
