// mini-Git: the Git 1.6.5.4 stand-in.
//
// A content-addressed version control system with the architecture of the
// real thing: a SHA-1 object store under .git/objects, refs under
// .git/refs/heads, a staging index, commits, Myers diff, an xdiff-style
// 3-way merge, patience diff, hooks run "externally" through the
// environment, and a ref-directory scanner. It carries Git's five Table 1
// bugs at the same library calls:
//
//   - data loss when a hook runs with an incomplete environment because a
//     failed setenv("GIT_DIR") is not checked;
//   - crash calling readdir() with the NULL pointer a failed opendir()
//     returned (branch listing);
//   - three crashes from unchecked malloc() returns in xdiff
//     (xmerge.c:567, xmerge.c:571, xpatience.c:191).
//
// Basic blocks -- including all recovery blocks -- report to a CoverageMap
// so the Table 3 experiment can measure recovery-code coverage.

#ifndef LFI_APPS_GIT_GIT_H_
#define LFI_APPS_GIT_GIT_H_

#include <optional>
#include <string>
#include <vector>

#include "apps/common/app_binary.h"
#include "apps/git/xdiff.h"
#include "coverage/coverage.h"
#include "vlib/virtual_libc.h"

namespace lfi {

// The mini-git application binary (shared, immutable). Contains the Table 4
// populations: 25 malloc sites, 127 close sites, 7 readlink sites, plus the
// bug sites above.
const AppBinary& GitBinary();

class MiniGit {
 public:
  static constexpr const char* kModule = "mini-git";

  MiniGit(VirtualFs* fs, VirtualNet* net, std::string repo_root);

  VirtualLibc& libc() { return libc_; }
  CoverageMap& coverage() { return coverage_; }
  const std::string& repo_root() const { return repo_root_; }

  // --- plumbing ---------------------------------------------------------
  bool Init();
  // Hash-object + write: returns the object id, or nullopt on store failure.
  std::optional<std::string> WriteObject(const std::string& type, const std::string& content);
  std::optional<std::string> ReadObject(const std::string& id, std::string* type = nullptr);

  // --- porcelain --------------------------------------------------------
  bool Add(const std::string& path, const std::string& content);
  std::optional<std::string> Commit(const std::string& message);
  std::optional<std::string> HeadCommit();
  // Scans .git/refs/heads with opendir/readdir. Carries the Table 1 bug: the
  // opendir result is not checked before readdir.
  std::vector<std::string> ListBranches();
  bool CreateBranch(const std::string& name);

  // Myers diff between two stored blobs.
  std::optional<std::string> DiffBlobs(const std::string& id_a, const std::string& id_b);
  // 3-way merge through xmerge (unchecked mallocs at sites 567/571).
  std::optional<MergeResult> Merge(const std::string& base_id, const std::string& ours_id,
                                   const std::string& theirs_id);
  // Patience diff (unchecked malloc at site 191).
  std::optional<std::string> PatienceDiffBlobs(const std::string& id_a, const std::string& id_b);

  // Runs the post-commit hook as an "external command". Carries the Table 1
  // bug: setenv("GIT_DIR") is unchecked, and on failure the command runs
  // with an incomplete environment and corrupts the repository.
  void RunHook(const std::string& hook_name);

  // Repository integrity: every ref resolves to a well-formed commit object.
  bool Fsck();

  // The default test suite shipped with the application (the workload the
  // coverage experiment replays). Returns false on any detected failure.
  bool RunDefaultTestSuite();

  // --- warm-instance snapshot -------------------------------------------
  // Captures the application's full state (libc-visible process state,
  // coverage, hook counter). The owning fs/net are snapshotted separately by
  // the warm target. Restore() returns false when the libc state is
  // non-restorable (see VirtualLibc::Restore); the instance must then be
  // discarded and rebuilt cold.
  struct Snapshot {
    VirtualLibc::Snapshot libc;
    CoverageMap coverage;
    int hook_runs = 0;
  };
  Snapshot TakeSnapshot() const { return {libc_.TakeSnapshot(), coverage_, hook_runs_}; }
  bool Restore(const Snapshot& snapshot) {
    coverage_ = snapshot.coverage;
    hook_runs_ = snapshot.hook_runs;
    return libc_.Restore(snapshot.libc);
  }

 private:
  std::string ObjectPath(const std::string& id) const;
  void RegisterCoverageBlocks();

  VirtualLibc libc_;
  CoverageMap coverage_;
  std::string repo_root_;
  int hook_runs_ = 0;
};

}  // namespace lfi

#endif  // LFI_APPS_GIT_GIT_H_
