// xdiff: the diff/merge engine of mini-Git.
//
// Real Git carries its own diff library (xdiff/) with the Myers algorithm,
// a 3-way merge (xmerge.c) and patience diff (xpatience.c); three of the
// Table 1 bugs are unchecked mallocs at xmerge.c:567, xmerge.c:571 and
// xpatience.c:191. This module reimplements the three algorithms from
// scratch. Working buffers are allocated through the virtual libc at call
// sites named after the paper's line numbers, with the same missing NULL
// checks, so LFI can expose the same crashes.

#ifndef LFI_APPS_GIT_XDIFF_H_
#define LFI_APPS_GIT_XDIFF_H_

#include <string>
#include <vector>

#include "vlib/virtual_libc.h"

namespace lfi {

struct DiffEdit {
  enum class Kind { kKeep, kDelete, kInsert } kind = Kind::kKeep;
  std::string line;
};

// Myers O(ND) diff over lines. Pure algorithm, no library calls.
std::vector<DiffEdit> MyersDiff(const std::vector<std::string>& a,
                                const std::vector<std::string>& b);

// Unified-diff-style rendering of an edit script.
std::string RenderDiff(const std::vector<DiffEdit>& edits);

// Splits text into lines (without terminators); the inverse of JoinLines.
std::vector<std::string> SplitLines(const std::string& text);
std::string JoinLines(const std::vector<std::string>& lines);

struct MergeResult {
  bool conflict = false;
  std::vector<std::string> lines;
};

// xmerge: 3-way merge of `ours` and `theirs` against `base`. Scratch space
// is allocated via `libc` (the xmerge.c:567 / :571 malloc sites). `frame`
// marks the call sites in the application binary.
MergeResult XMerge3(VirtualLibc* libc, ScopedFrame* frame, uint32_t site567, uint32_t site571,
                    const std::vector<std::string>& base, const std::vector<std::string>& ours,
                    const std::vector<std::string>& theirs);

// xpatience: patience diff (unique-line LCS refinement). The histogram
// buffer is allocated via `libc` (the xpatience.c:191 malloc site).
std::vector<DiffEdit> PatienceDiff(VirtualLibc* libc, ScopedFrame* frame, uint32_t site191,
                                   const std::vector<std::string>& a,
                                   const std::vector<std::string>& b);

}  // namespace lfi

#endif  // LFI_APPS_GIT_XDIFF_H_
