#include "apps/git/xdiff.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "vlib/sim_crash.h"

namespace lfi {

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start < text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return out;
}

std::string JoinLines(const std::vector<std::string>& lines) {
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

std::vector<DiffEdit> MyersDiff(const std::vector<std::string>& a,
                                const std::vector<std::string>& b) {
  const int n = static_cast<int>(a.size());
  const int m = static_cast<int>(b.size());
  const int max = n + m;
  // V arrays per D for traceback. Sized 2*max+3 so the k == ±d cases may
  // read V[k±1] without going out of bounds (the classic V[-max-1..max+1]
  // indexing from Myers' paper; with max = 0 the old 2*max+1 sizing made
  // V[k+1] read past the end).
  std::vector<std::vector<int>> trace;
  std::vector<int> v(static_cast<size_t>(2 * max + 3), 0);

  auto vat = [&](std::vector<int>& vec, int k) -> int& {
    return vec[static_cast<size_t>(k + max + 1)];
  };

  int d_final = -1;
  for (int d = 0; d <= max; ++d) {
    trace.push_back(v);
    for (int k = -d; k <= d; k += 2) {
      int x;
      if (k == -d || (k != d && vat(v, k - 1) < vat(v, k + 1))) {
        x = vat(v, k + 1);  // move down (insert)
      } else {
        x = vat(v, k - 1) + 1;  // move right (delete)
      }
      int y = x - k;
      while (x < n && y < m && a[static_cast<size_t>(x)] == b[static_cast<size_t>(y)]) {
        ++x;
        ++y;
      }
      vat(v, k) = x;
      if (x >= n && y >= m) {
        d_final = d;
        break;
      }
    }
    if (d_final >= 0) {
      break;
    }
  }

  // Backtrack.
  std::vector<DiffEdit> edits;
  int x = n;
  int y = m;
  for (int d = d_final; d > 0 && (x > 0 || y > 0); --d) {
    std::vector<int>& pv = trace[static_cast<size_t>(d)];
    int k = x - y;
    int prev_k;
    if (k == -d || (k != d && vat(pv, k - 1) < vat(pv, k + 1))) {
      prev_k = k + 1;
    } else {
      prev_k = k - 1;
    }
    int prev_x = vat(pv, prev_k);
    int prev_y = prev_x - prev_k;
    while (x > prev_x && y > prev_y) {
      edits.push_back({DiffEdit::Kind::kKeep, a[static_cast<size_t>(x - 1)]});
      --x;
      --y;
    }
    if (x == prev_x) {
      edits.push_back({DiffEdit::Kind::kInsert, b[static_cast<size_t>(y - 1)]});
      --y;
    } else {
      edits.push_back({DiffEdit::Kind::kDelete, a[static_cast<size_t>(x - 1)]});
      --x;
    }
  }
  while (x > 0 && y > 0) {
    edits.push_back({DiffEdit::Kind::kKeep, a[static_cast<size_t>(x - 1)]});
    --x;
    --y;
  }
  while (x > 0) {
    edits.push_back({DiffEdit::Kind::kDelete, a[static_cast<size_t>(x - 1)]});
    --x;
  }
  while (y > 0) {
    edits.push_back({DiffEdit::Kind::kInsert, b[static_cast<size_t>(y - 1)]});
    --y;
  }
  std::reverse(edits.begin(), edits.end());
  return edits;
}

std::string RenderDiff(const std::vector<DiffEdit>& edits) {
  std::string out;
  for (const auto& e : edits) {
    switch (e.kind) {
      case DiffEdit::Kind::kKeep:
        out += " ";
        break;
      case DiffEdit::Kind::kDelete:
        out += "-";
        break;
      case DiffEdit::Kind::kInsert:
        out += "+";
        break;
    }
    out += e.line;
    out += '\n';
  }
  return out;
}

namespace {

// One side's change set relative to base, as per-base-line slots: slot i
// describes what replaced base line i; slot base.size() holds a trailing
// insertion. Built from a Myers edit script.
struct SideChanges {
  // changed[i]: base line i was deleted/replaced; replacement[i] holds the
  // inserted lines attached before base line i.
  std::vector<bool> deleted;
  std::vector<std::vector<std::string>> inserted;  // size base+1
};

SideChanges ComputeChanges(const std::vector<std::string>& base,
                           const std::vector<std::string>& side) {
  SideChanges ch;
  ch.deleted.assign(base.size(), false);
  ch.inserted.assign(base.size() + 1, {});
  size_t bi = 0;
  for (const DiffEdit& e : MyersDiff(base, side)) {
    switch (e.kind) {
      case DiffEdit::Kind::kKeep:
        ++bi;
        break;
      case DiffEdit::Kind::kDelete:
        ch.deleted[bi] = true;
        ++bi;
        break;
      case DiffEdit::Kind::kInsert:
        ch.inserted[bi].push_back(e.line);
        break;
    }
  }
  return ch;
}

bool RegionChanged(const SideChanges& ch, size_t i) {
  return (i < ch.deleted.size() && ch.deleted[i]) || !ch.inserted[i].empty();
}

}  // namespace

MergeResult XMerge3(VirtualLibc* libc, ScopedFrame* frame, uint32_t site567, uint32_t site571,
                    const std::vector<std::string>& base, const std::vector<std::string>& ours,
                    const std::vector<std::string>& theirs) {
  // The xmerge.c:567 allocation: the result line-pointer buffer. Real xdiff
  // does `xdl_malloc(...)` here without checking; mini-Git preserves the
  // missing check (the crash is the point).
  size_t cap = base.size() + ours.size() + theirs.size() + 2;
  if (frame != nullptr) {
    frame->set_offset(site567);
  }
  auto* scratch = static_cast<char*>(libc->Malloc(cap * sizeof(char*)));
  MustDeref(scratch, "xmerge.c:567 result buffer");

  // The xmerge.c:571 allocation: the conflict-marker working buffer.
  if (frame != nullptr) {
    frame->set_offset(site571);
  }
  auto* markers = static_cast<char*>(libc->Malloc(cap + 64));
  MustDeref(markers, "xmerge.c:571 marker buffer");

  MergeResult result;
  SideChanges ours_ch = ComputeChanges(base, ours);
  SideChanges theirs_ch = ComputeChanges(base, theirs);

  for (size_t i = 0; i <= base.size(); ++i) {
    bool o = RegionChanged(ours_ch, i);
    bool t = RegionChanged(theirs_ch, i);
    if (o && t) {
      // Both sides touched the same region: identical change or conflict.
      bool same_insert = ours_ch.inserted[i] == theirs_ch.inserted[i];
      bool same_delete = i >= base.size() || ours_ch.deleted[i] == theirs_ch.deleted[i];
      if (same_insert && same_delete) {
        for (const auto& l : ours_ch.inserted[i]) {
          result.lines.push_back(l);
        }
        if (i < base.size() && !ours_ch.deleted[i]) {
          result.lines.push_back(base[i]);
        }
      } else {
        result.conflict = true;
        result.lines.push_back("<<<<<<< ours");
        for (const auto& l : ours_ch.inserted[i]) {
          result.lines.push_back(l);
        }
        if (i < base.size() && !ours_ch.deleted[i]) {
          result.lines.push_back(base[i]);
        }
        result.lines.push_back("=======");
        for (const auto& l : theirs_ch.inserted[i]) {
          result.lines.push_back(l);
        }
        if (i < base.size() && !theirs_ch.deleted[i]) {
          result.lines.push_back(base[i]);
        }
        result.lines.push_back(">>>>>>> theirs");
      }
    } else if (o) {
      for (const auto& l : ours_ch.inserted[i]) {
        result.lines.push_back(l);
      }
      if (i < base.size() && !ours_ch.deleted[i]) {
        result.lines.push_back(base[i]);
      }
    } else if (t) {
      for (const auto& l : theirs_ch.inserted[i]) {
        result.lines.push_back(l);
      }
      if (i < base.size() && !theirs_ch.deleted[i]) {
        result.lines.push_back(base[i]);
      }
    } else if (i < base.size()) {
      result.lines.push_back(base[i]);
    }
  }

  libc->Free(markers);
  libc->Free(scratch);
  return result;
}

std::vector<DiffEdit> PatienceDiff(VirtualLibc* libc, ScopedFrame* frame, uint32_t site191,
                                   const std::vector<std::string>& a,
                                   const std::vector<std::string>& b) {
  // The xpatience.c:191 allocation: the unique-line histogram table,
  // unchecked in real Git.
  if (frame != nullptr) {
    frame->set_offset(site191);
  }
  auto* table = static_cast<char*>(libc->Malloc((a.size() + b.size() + 1) * 16));
  MustDeref(table, "xpatience.c:191 histogram table");
  libc->Free(table);

  // Lines unique in both sides, by content.
  std::map<std::string, std::pair<int, int>> counts;  // line -> (count_a, count_b)
  std::map<std::string, std::pair<size_t, size_t>> pos;
  for (size_t i = 0; i < a.size(); ++i) {
    counts[a[i]].first++;
    pos[a[i]].first = i;
  }
  for (size_t j = 0; j < b.size(); ++j) {
    counts[b[j]].second++;
    pos[b[j]].second = j;
  }
  // Unique common lines ordered by position in a.
  std::vector<std::pair<size_t, size_t>> anchors;  // (pos_a, pos_b)
  for (size_t i = 0; i < a.size(); ++i) {
    auto c = counts[a[i]];
    if (c.first == 1 && c.second == 1) {
      anchors.push_back({i, pos[a[i]].second});
    }
  }
  // Longest increasing subsequence on pos_b (patience sorting).
  std::vector<size_t> tails;             // indices into anchors
  std::vector<long> prev(anchors.size(), -1);
  for (size_t i = 0; i < anchors.size(); ++i) {
    size_t lo = 0;
    size_t hi = tails.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (anchors[tails[mid]].second < anchors[i].second) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo > 0) {
      prev[i] = static_cast<long>(tails[lo - 1]);
    }
    if (lo == tails.size()) {
      tails.push_back(i);
    } else {
      tails[lo] = i;
    }
  }
  std::vector<std::pair<size_t, size_t>> chain;
  if (!tails.empty()) {
    long idx = static_cast<long>(tails.back());
    while (idx >= 0) {
      chain.push_back(anchors[static_cast<size_t>(idx)]);
      idx = prev[static_cast<size_t>(idx)];
    }
    std::reverse(chain.begin(), chain.end());
  }

  // Recurse (via Myers on the segments between anchors -- the classic
  // patience construction).
  std::vector<DiffEdit> edits;
  size_t ai = 0;
  size_t bi = 0;
  auto emit_segment = [&](size_t aend, size_t bend) {
    std::vector<std::string> seg_a(a.begin() + static_cast<long>(ai),
                                   a.begin() + static_cast<long>(aend));
    std::vector<std::string> seg_b(b.begin() + static_cast<long>(bi),
                                   b.begin() + static_cast<long>(bend));
    for (auto& e : MyersDiff(seg_a, seg_b)) {
      edits.push_back(std::move(e));
    }
  };
  for (const auto& [pa, pb] : chain) {
    emit_segment(pa, pb);
    edits.push_back({DiffEdit::Kind::kKeep, a[pa]});
    ai = pa + 1;
    bi = pb + 1;
  }
  emit_segment(a.size(), b.size());
  return edits;
}

}  // namespace lfi
