// mini-MySQL: the MySQL 5.1.44 stand-in.
//
// A small storage engine with the pieces the paper's evaluation touches:
//
//   - mi_create(): table creation under the MyISAM creation mutex. Its error
//     handling releases resources *including the mutex*, but a failed close()
//     fires that cleanup after the normal flow already unlocked -- the double
//     mutex unlock crash of Table 1 (MySQL bug #53268).
//   - the errmsg.sys loader: a failed read() (e.g. EIO) is logged, but the
//     server then accesses the uninitialized message table and crashes
//     (Table 1, MySQL bug #53393; the missing-file variant #25097 was fixed
//     upstream and is handled correctly here too).
//   - an OLTP path (fcntl row locks + indexed reads/writes) that carries the
//     SysBench-style workload of Table 6, and the server globals
//     (thread_count, shutdown_in_progress) its triggers test.
//   - merge_big(): the Table 2 workload -- scans 10 source tables (checked
//     closes; a failure aborts the run) and then builds a merged table via
//     mi_create(), whose 6 post-unlock closes are the vulnerable sites.

#ifndef LFI_APPS_MYSQL_MYSQL_H_
#define LFI_APPS_MYSQL_MYSQL_H_

#include <optional>
#include <string>
#include <vector>

#include "apps/common/app_binary.h"
#include "coverage/coverage.h"
#include "util/rng.h"
#include "vlib/virtual_libc.h"

namespace lfi {

const AppBinary& MysqlBinary();

class MiniMysql {
 public:
  static constexpr const char* kModule = "mini-mysql";
  static constexpr int kMiCreateSegments = 6;
  static constexpr int kMergeSourceTables = 10;

  MiniMysql(VirtualFs* fs, VirtualNet* net, std::string datadir);

  VirtualLibc& libc() { return libc_; }
  CoverageMap& coverage() { return coverage_; }

  // Server startup: loads errmsg.sys and primes the startup log (which
  // formats messages through the table -- the crash site of bug #53393).
  bool Startup();

  // Error message lookup; crashes when the table never initialized.
  const std::string& GetErrMsg(size_t index);

  // MyISAM table creation. Returns 0 on success, -1 on (recovered) error.
  // Double-unlock crash when a post-unlock close fails.
  int MiCreate(const std::string& table);

  // The merge-big workload (Table 2): returns false when aborted by a
  // checked failure before reaching mi_create.
  bool MergeBig();

  // --- OLTP (Table 6 workload) -------------------------------------------
  bool OltpInit(int rows);
  std::optional<std::string> OltpRead(int key);
  bool OltpWrite(int key, const std::string& value);
  // One SysBench-ish transaction: 10 point reads (+2 updates when !read_only).
  bool OltpTransaction(Rng* rng, bool read_only);

  // Server globals, published for the program-state triggers.
  void SetThreadCount(int64_t n);
  void SetShutdownInProgress(bool value);

  // --- warm-instance snapshot --------------------------------------------
  // The errmsg table is captured as (initialized, storage) and its interior
  // pointer recomputed on restore, so a restored instance never aliases the
  // snapshot's storage vector.
  struct Snapshot {
    VirtualLibc::Snapshot libc;
    CoverageMap coverage;
    int create_mutex_held = 0;
    bool errmsg_initialized = false;
    std::vector<std::string> errmsg_storage;
    std::vector<std::string> startup_log;
    int oltp_fd = -1;
    int oltp_rows = 0;
  };
  Snapshot TakeSnapshot() const {
    return {libc_.TakeSnapshot(), coverage_,       create_mutex_.held, errmsg_.initialized,
            errmsg_storage_,      startup_log_,    oltp_fd_,           oltp_rows_};
  }
  bool Restore(const Snapshot& snapshot) {
    coverage_ = snapshot.coverage;
    create_mutex_.held = snapshot.create_mutex_held;
    errmsg_storage_ = snapshot.errmsg_storage;
    errmsg_.initialized = snapshot.errmsg_initialized;
    errmsg_.messages = errmsg_.initialized ? &errmsg_storage_ : nullptr;
    startup_log_ = snapshot.startup_log;
    oltp_fd_ = snapshot.oltp_fd;
    oltp_rows_ = snapshot.oltp_rows;
    return libc_.Restore(snapshot.libc);
  }

 private:
  std::string TablePath(const std::string& table, int segment) const;
  void RegisterCoverageBlocks();

  VirtualLibc libc_;
  CoverageMap coverage_;
  std::string datadir_;
  VMutex create_mutex_{"THR_LOCK_myisam", 0};

  struct ErrMsgTable {
    bool initialized = false;
    std::vector<std::string>* messages = nullptr;
  };
  ErrMsgTable errmsg_;
  std::vector<std::string> errmsg_storage_;
  std::vector<std::string> startup_log_;

  int oltp_fd_ = -1;
  int oltp_rows_ = 0;
  static constexpr size_t kRowWidth = 64;
};

}  // namespace lfi

#endif  // LFI_APPS_MYSQL_MYSQL_H_
