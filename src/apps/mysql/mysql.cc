#include "apps/mysql/mysql.h"

#include <cstring>

#include "util/errno_codes.h"
#include "util/string_util.h"
#include "vlib/sim_crash.h"

namespace lfi {
namespace {

uint32_t Site(const char* name) { return MysqlBinary().SiteOffset(name); }

}  // namespace

const AppBinary& MysqlBinary() {
  static const AppBinary* binary = [] {
    AppBinaryBuilder b(MiniMysql::kModule, /*filler_seed=*/0x5a1);
    // errmsg.sys loader: open checked (bug #25097 fixed upstream), read
    // UNchecked for the crash path -- more precisely, the error is detected
    // and logged but recovery is wrong; at the binary level the retval feeds
    // a logging helper, which the intra-procedural analyzer cannot follow,
    // so this is also the realistic "checked via helper" shape.
    b.AddSite({"mysql.errmsg.open", "read_errmsg", "open", CheckPattern::kCheckIneq, {}});
    b.AddSite({"mysql.errmsg.read", "read_errmsg", "read", CheckPattern::kCheckViaHelper, {}});
    b.AddSite({"mysql.errmsg.close", "read_errmsg", "close", CheckPattern::kCheckEqAll, {-1}});
    // mi_create.
    b.AddSite({"mysql.mi_create.lock", "mi_create", "pthread_mutex_lock",
               CheckPattern::kCheckEqAll, {kEDEADLK}});
    b.AddSite({"mysql.mi_create.open", "mi_create", "open", CheckPattern::kCheckIneq, {}});
    b.AddSite({"mysql.mi_create.write", "mi_create", "write", CheckPattern::kCheckIneq, {}});
    b.AddSite({"mysql.mi_create.unlock", "mi_create", "pthread_mutex_unlock",
               CheckPattern::kNoCheck, {}});
    b.AddSite({"mysql.mi_create.close", "mi_create", "close", CheckPattern::kCheckEqAll, {-1}});
    // merge-big scan loop.
    b.AddSite({"mysql.merge.open", "merge_big", "open", CheckPattern::kCheckIneq, {}});
    b.AddSite({"mysql.merge.read", "merge_big", "read", CheckPattern::kCheckIneq, {}});
    b.AddSite({"mysql.merge.close", "merge_big", "close", CheckPattern::kCheckEqAll, {-1}});
    // OLTP path.
    b.AddSite({"mysql.oltp.open", "oltp_init", "open", CheckPattern::kCheckIneq, {}});
    b.AddSite({"mysql.oltp.fcntl", "oltp_row", "fcntl", CheckPattern::kCheckEqAll, {-1}});
    b.AddSite({"mysql.oltp.lseek", "oltp_row", "lseek", CheckPattern::kCheckIneq, {}});
    b.AddSite({"mysql.oltp.read", "oltp_row", "read", CheckPattern::kCheckIneq, {}});
    b.AddSite({"mysql.oltp.write", "oltp_row", "write", CheckPattern::kCheckIneq, {}});
    return new AppBinary(b.Build());
  }();
  return *binary;
}

MiniMysql::MiniMysql(VirtualFs* fs, VirtualNet* net, std::string datadir)
    : libc_(fs, net, kModule), datadir_(std::move(datadir)) {
  fs->MkDir(datadir_);
  fs->MkDir(datadir_ + "/share");
  RegisterCoverageBlocks();
  SetThreadCount(1);
  SetShutdownInProgress(false);
}

void MiniMysql::RegisterCoverageBlocks() {
  struct BlockSpec {
    const char* id;
    bool recovery;
    int lines;
  };
  static const BlockSpec kBlocks[] = {
      {"mysql.errmsg.body", false, 20},
      {"mysql.errmsg.err_missing", true, 6},
      {"mysql.errmsg.err_read", true, 5},
      {"mysql.mi_create.body", false, 34},
      {"mysql.mi_create.err_open", true, 6},
      {"mysql.mi_create.err_write", true, 7},
      {"mysql.mi_create.err_close", true, 9},
      {"mysql.merge.body", false, 18},
      {"mysql.merge.err_scan", true, 5},
      {"mysql.oltp.body", false, 24},
      {"mysql.oltp.err_lock", true, 5},
      {"mysql.oltp.err_io", true, 6},
  };
  for (const auto& blk : kBlocks) {
    coverage_.RegisterBlock(blk.id, blk.recovery, blk.lines);
  }
}

std::string MiniMysql::TablePath(const std::string& table, int segment) const {
  return StrFormat("%s/%s.MYD.%d", datadir_.c_str(), table.c_str(), segment);
}

bool MiniMysql::Startup() {
  ScopedFrame frame(&libc_.stack(), kModule, "read_errmsg");
  coverage_.Hit("mysql.errmsg.body");

  frame.set_offset(Site("mysql.errmsg.open"));
  int fd = libc_.Open(datadir_ + "/share/errmsg.sys", kORdOnly);
  if (fd < 0) {
    // Bug #25097 was fixed: a *missing* errmsg.sys is reported cleanly.
    coverage_.Hit("mysql.errmsg.err_missing");
    startup_log_.push_back("[ERROR] Can't find messagefile errmsg.sys");
    return false;
  }

  char buf[4096];
  frame.set_offset(Site("mysql.errmsg.read"));
  long n = libc_.Read(fd, buf, sizeof buf);
  if (n < 0) {
    // BUG (#53393): the error is logged, but initialization is skipped and
    // execution continues as if it had succeeded.
    coverage_.Hit("mysql.errmsg.err_read");
    startup_log_.push_back("[ERROR] Error reading messagefile errmsg.sys");
  } else {
    errmsg_storage_ = Split(std::string(buf, static_cast<size_t>(n)), '\n');
    errmsg_.messages = &errmsg_storage_;
    errmsg_.initialized = true;
  }
  frame.set_offset(Site("mysql.errmsg.close"));
  libc_.Close(fd);

  // Prime the startup banner: formats message 0 through the table. When the
  // read above failed, `messages` is still NULL and this dereference is the
  // crash the paper reports.
  startup_log_.push_back("[Note] ready for connections: " + GetErrMsg(0));
  return true;
}

const std::string& MiniMysql::GetErrMsg(size_t index) {
  std::vector<std::string>* table = MustDeref(errmsg_.messages, "errmsg table access");
  if (index >= table->size()) {
    static const std::string kUnknown = "Unknown error";
    return kUnknown;
  }
  return (*table)[index];
}

int MiniMysql::MiCreate(const std::string& table) {
  ScopedFrame frame(&libc_.stack(), kModule, "mi_create");
  coverage_.Hit("mysql.mi_create.body");

  frame.set_offset(Site("mysql.mi_create.lock"));
  if (libc_.MutexLock(&create_mutex_) != 0) {
    return -1;
  }

  int fds[kMiCreateSegments];
  int opened = 0;
  for (int i = 0; i < kMiCreateSegments; ++i) {
    frame.set_offset(Site("mysql.mi_create.open"));
    fds[i] = libc_.Open(TablePath(table, i), kOWrOnly | kOCreate | kOTrunc);
    if (fds[i] < 0) {
      coverage_.Hit("mysql.mi_create.err_open");
      for (int j = 0; j < opened; ++j) {
        libc_.Close(fds[j]);
      }
      libc_.MutexUnlock(&create_mutex_);
      return -1;
    }
    ++opened;
    std::string header = StrFormat("MYI\1 segment %d of %s\n", i, table.c_str());
    frame.set_offset(Site("mysql.mi_create.write"));
    long n = libc_.Write(fds[i], header.data(), header.size());
    if (n < 0) {
      coverage_.Hit("mysql.mi_create.err_write");
      for (int j = 0; j <= i; ++j) {
        libc_.Close(fds[j]);
      }
      libc_.MutexUnlock(&create_mutex_);
      return -1;
    }
  }

  // Normal flow: creation is done, release the creation mutex...
  frame.set_offset(Site("mysql.mi_create.unlock"));
  libc_.MutexUnlock(&create_mutex_);

  // ...then flush/close the segments. BUG (#53268): a failed close jumps to
  // the shared error handler, whose cleanup releases *all* resources --
  // including the mutex the normal flow just released. Double unlock.
  bool failed = false;
  for (int i = 0; i < kMiCreateSegments; ++i) {
    frame.set_offset(Site("mysql.mi_create.close"));
    if (libc_.Close(fds[i]) == -1) {
      failed = true;
      break;
    }
  }
  if (failed) {
    coverage_.Hit("mysql.mi_create.err_close");
    for (int i = 0; i < kMiCreateSegments; ++i) {
      libc_.Unlink(TablePath(table, i));
    }
    libc_.MutexUnlock(&create_mutex_);  // crashes: not held anymore
    return -1;
  }
  return 0;
}

bool MiniMysql::MergeBig() {
  ScopedFrame frame(&libc_.stack(), kModule, "merge_big");
  coverage_.Hit("mysql.merge.body");

  // Phase 1: scan the source tables. Closes are checked; any failure aborts
  // the merge before the vulnerable code is reached.
  for (int i = 0; i < kMergeSourceTables; ++i) {
    std::string path = StrFormat("%s/src%d.MYD", datadir_.c_str(), i);
    if (!libc_.fs()->FileExists(path)) {
      libc_.fs()->WriteFile(path, StrFormat("source table %d\n", i));
    }
    frame.set_offset(Site("mysql.merge.open"));
    int fd = libc_.Open(path, kORdOnly);
    if (fd < 0) {
      coverage_.Hit("mysql.merge.err_scan");
      return false;
    }
    char buf[64];
    frame.set_offset(Site("mysql.merge.read"));
    libc_.Read(fd, buf, sizeof buf);
    frame.set_offset(Site("mysql.merge.close"));
    if (libc_.Close(fd) == -1) {
      coverage_.Hit("mysql.merge.err_scan");
      return false;
    }
  }
  // Phase 2: build the merged table.
  return MiCreate("merged") == 0;
}

bool MiniMysql::OltpInit(int rows) {
  ScopedFrame frame(&libc_.stack(), kModule, "oltp_init");
  coverage_.Hit("mysql.oltp.body");
  std::string data;
  data.reserve(static_cast<size_t>(rows) * kRowWidth);
  for (int i = 0; i < rows; ++i) {
    std::string row = StrFormat("%08d|", i);
    row.resize(kRowWidth - 1, 'x');
    row += "\n";
    data += row;
  }
  libc_.fs()->WriteFile(datadir_ + "/oltp.MYD", std::move(data));
  frame.set_offset(Site("mysql.oltp.open"));
  oltp_fd_ = libc_.Open(datadir_ + "/oltp.MYD", kORdWr);
  if (oltp_fd_ < 0) {
    return false;
  }
  oltp_rows_ = rows;
  return true;
}

std::optional<std::string> MiniMysql::OltpRead(int key) {
  if (oltp_fd_ < 0 || key < 0 || key >= oltp_rows_) {
    return std::nullopt;
  }
  ScopedFrame frame(&libc_.stack(), kModule, "oltp_row");
  frame.set_offset(Site("mysql.oltp.fcntl"));
  if (libc_.Fcntl(oltp_fd_, kFGetLk, key) == -1) {
    coverage_.Hit("mysql.oltp.err_lock");
    return std::nullopt;
  }
  frame.set_offset(Site("mysql.oltp.lseek"));
  if (libc_.Lseek(oltp_fd_, static_cast<long>(key) * static_cast<long>(kRowWidth), kSeekSet) <
      0) {
    coverage_.Hit("mysql.oltp.err_io");
    return std::nullopt;
  }
  char buf[kRowWidth];
  frame.set_offset(Site("mysql.oltp.read"));
  long n = libc_.Read(oltp_fd_, buf, kRowWidth);
  if (n < 0) {
    coverage_.Hit("mysql.oltp.err_io");
    return std::nullopt;
  }
  return std::string(buf, static_cast<size_t>(n));
}

bool MiniMysql::OltpWrite(int key, const std::string& value) {
  if (oltp_fd_ < 0 || key < 0 || key >= oltp_rows_) {
    return false;
  }
  ScopedFrame frame(&libc_.stack(), kModule, "oltp_row");
  frame.set_offset(Site("mysql.oltp.fcntl"));
  if (libc_.Fcntl(oltp_fd_, kFSetLk, key) == -1) {
    coverage_.Hit("mysql.oltp.err_lock");
    return false;
  }
  frame.set_offset(Site("mysql.oltp.lseek"));
  if (libc_.Lseek(oltp_fd_, static_cast<long>(key) * static_cast<long>(kRowWidth), kSeekSet) <
      0) {
    coverage_.Hit("mysql.oltp.err_io");
    return false;
  }
  std::string row = value;
  row.resize(kRowWidth - 1, ' ');
  row += "\n";
  frame.set_offset(Site("mysql.oltp.write"));
  long n = libc_.Write(oltp_fd_, row.data(), row.size());
  if (n < 0) {
    coverage_.Hit("mysql.oltp.err_io");
    return false;
  }
  return true;
}

bool MiniMysql::OltpTransaction(Rng* rng, bool read_only) {
  coverage_.Hit("mysql.oltp.body");
  for (int i = 0; i < 10; ++i) {
    int key = static_cast<int>(rng->NextBelow(static_cast<uint64_t>(oltp_rows_)));
    if (!OltpRead(key)) {
      return false;
    }
  }
  if (!read_only) {
    for (int i = 0; i < 2; ++i) {
      int key = static_cast<int>(rng->NextBelow(static_cast<uint64_t>(oltp_rows_)));
      if (!OltpWrite(key, StrFormat("%08d|updated", key))) {
        return false;
      }
    }
  }
  return true;
}

void MiniMysql::SetThreadCount(int64_t n) { libc_.SetGlobal("thread_count", n); }

void MiniMysql::SetShutdownInProgress(bool value) {
  libc_.SetGlobal("shutdown_in_progress", value ? 1 : 0);
}

}  // namespace lfi
