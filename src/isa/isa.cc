#include "isa/isa.h"

#include "util/string_util.h"

namespace lfi {

const char* OpName(Op op) {
  switch (op) {
    case Op::kNop:
      return "nop";
    case Op::kHalt:
      return "halt";
    case Op::kMovRR:
      return "mov";
    case Op::kMovRI:
      return "movi";
    case Op::kLoad:
      return "load";
    case Op::kStore:
      return "store";
    case Op::kAdd:
      return "add";
    case Op::kSub:
      return "sub";
    case Op::kMul:
      return "mul";
    case Op::kAnd:
      return "and";
    case Op::kOr:
      return "or";
    case Op::kXor:
      return "xor";
    case Op::kAddI:
      return "addi";
    case Op::kCmpRR:
      return "cmp";
    case Op::kCmpRI:
      return "cmpi";
    case Op::kTest:
      return "test";
    case Op::kJmp:
      return "jmp";
    case Op::kJe:
      return "je";
    case Op::kJne:
      return "jne";
    case Op::kJl:
      return "jl";
    case Op::kJle:
      return "jle";
    case Op::kJg:
      return "jg";
    case Op::kJge:
      return "jge";
    case Op::kJs:
      return "js";
    case Op::kJns:
      return "jns";
    case Op::kCall:
      return "call";
    case Op::kCallR:
      return "callr";
    case Op::kRet:
      return "ret";
    case Op::kPush:
      return "push";
    case Op::kPop:
      return "pop";
    case Op::kOpCount:
      break;
  }
  return "?";
}

void EncodeInstruction(const Instruction& instr, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(instr.op));
  out->push_back(instr.rd);
  out->push_back(instr.rs);
  out->push_back(instr.flags);
  uint32_t imm = static_cast<uint32_t>(instr.imm);
  out->push_back(static_cast<uint8_t>(imm));
  out->push_back(static_cast<uint8_t>(imm >> 8));
  out->push_back(static_cast<uint8_t>(imm >> 16));
  out->push_back(static_cast<uint8_t>(imm >> 24));
}

bool DecodeInstruction(const std::vector<uint8_t>& text, size_t offset, Instruction* out) {
  if (offset % kInstrSize != 0 || offset + kInstrSize > text.size()) {
    return false;
  }
  uint8_t op = text[offset];
  if (op >= static_cast<uint8_t>(Op::kOpCount)) {
    return false;
  }
  out->op = static_cast<Op>(op);
  out->rd = text[offset + 1];
  out->rs = text[offset + 2];
  out->flags = text[offset + 3];
  uint32_t imm = static_cast<uint32_t>(text[offset + 4]) |
                 (static_cast<uint32_t>(text[offset + 5]) << 8) |
                 (static_cast<uint32_t>(text[offset + 6]) << 16) |
                 (static_cast<uint32_t>(text[offset + 7]) << 24);
  out->imm = static_cast<int32_t>(imm);
  if (out->rd >= kNumRegisters || out->rs >= kNumRegisters) {
    return false;
  }
  return true;
}

std::string FormatInstruction(const Instruction& i) {
  switch (i.op) {
    case Op::kNop:
    case Op::kHalt:
    case Op::kRet:
      return OpName(i.op);
    case Op::kMovRR:
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kCmpRR:
    case Op::kTest:
      return StrFormat("%s r%d, r%d", OpName(i.op), i.rd, i.rs);
    case Op::kMovRI:
    case Op::kAddI:
    case Op::kCmpRI:
      return StrFormat("%s r%d, %d", OpName(i.op), i.rd, i.imm);
    case Op::kLoad:
      return StrFormat("load r%d, [r%d%+d]", i.rd, i.rs, i.imm);
    case Op::kStore:
      return StrFormat("store [r%d%+d], r%d", i.rd, i.imm, i.rs);
    case Op::kJmp:
    case Op::kJe:
    case Op::kJne:
    case Op::kJl:
    case Op::kJle:
    case Op::kJg:
    case Op::kJge:
    case Op::kJs:
    case Op::kJns:
      return StrFormat("%s 0x%x", OpName(i.op), static_cast<uint32_t>(i.imm));
    case Op::kCall:
      return i.flags == kCallImport ? StrFormat("call @import:%d", i.imm)
                                    : StrFormat("call 0x%x", static_cast<uint32_t>(i.imm));
    case Op::kCallR:
      return StrFormat("callr r%d", i.rs);
    case Op::kPush:
    case Op::kPop:
      return StrFormat("%s r%d", OpName(i.op), i.rd);
    case Op::kOpCount:
      break;
  }
  return "?";
}

}  // namespace lfi
