// A compact virtual instruction set.
//
// The paper's profiler and call-site analyzer run directly on x86 binaries
// (§5, §6). This repository substitutes a small fixed-width ISA so the same
// binary-level analyses -- call-site discovery, partial CFG construction,
// return-value dataflow -- are implemented for real, deterministically, and
// without depending on a host disassembler. The ISA is deliberately x86-shaped
// where it matters to the analyses: a return-value register (r0), a stack
// pointer (r13), flag-setting compares consumed by conditional jumps, direct
// and indirect calls, and loads/stores for register spills.
//
// Encoding: every instruction is exactly 8 bytes:
//   byte 0: opcode
//   byte 1: rd (destination / first operand register)
//   byte 2: rs (source / second operand register)
//   byte 3: flags (kCall: 1 = import target; otherwise 0)
//   bytes 4..7: imm, signed 32-bit little-endian
// Branch targets are absolute byte offsets within the module's text section.
// Direct call targets are either text offsets (flags=0) or import-table
// indices (flags=1); the import table plays the role of the PLT.

#ifndef LFI_ISA_ISA_H_
#define LFI_ISA_ISA_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lfi {

enum class Op : uint8_t {
  kNop = 0,
  kHalt,
  kMovRR,   // rd = rs
  kMovRI,   // rd = imm
  kLoad,    // rd = mem[rs + imm]
  kStore,   // mem[rd + imm] = rs
  kAdd,     // rd += rs
  kSub,     // rd -= rs
  kMul,     // rd *= rs
  kAnd,     // rd &= rs
  kOr,      // rd |= rs
  kXor,     // rd ^= rs
  kAddI,    // rd += imm
  kCmpRR,   // flags := compare(rd, rs)
  kCmpRI,   // flags := compare(rd, imm)
  kTest,    // flags := rd & rs (sets zero/sign)
  kJmp,     // pc = imm
  kJe,      // jump if equal
  kJne,     // jump if not equal
  kJl,      // jump if less (signed)
  kJle,     // jump if less-or-equal
  kJg,      // jump if greater
  kJge,     // jump if greater-or-equal
  kJs,      // jump if sign (negative)
  kJns,     // jump if not sign
  kCall,    // direct call (local text offset or import index, see flags)
  kCallR,   // indirect call through rs
  kRet,
  kPush,    // push rd
  kPop,     // pop rd
  kOpCount,
};

inline constexpr size_t kInstrSize = 8;
inline constexpr int kNumRegisters = 16;
// Calling convention registers (mirrors the x86-64 SysV roles the analyses
// care about).
inline constexpr uint8_t kRetReg = 0;   // return value (rax analogue)
inline constexpr uint8_t kSpReg = 13;   // stack pointer
inline constexpr uint8_t kErrnoReg = 14;  // TLS errno base (see profiler)

// kCall flags values.
inline constexpr uint8_t kCallLocal = 0;
inline constexpr uint8_t kCallImport = 1;

struct Instruction {
  Op op = Op::kNop;
  uint8_t rd = 0;
  uint8_t rs = 0;
  uint8_t flags = 0;
  int32_t imm = 0;

  bool IsConditionalJump() const {
    return op >= Op::kJe && op <= Op::kJns;
  }
  bool IsJump() const { return op == Op::kJmp || IsConditionalJump(); }
  bool IsCall() const { return op == Op::kCall || op == Op::kCallR; }
  // True when control cannot fall through to the next instruction.
  bool IsTerminator() const { return op == Op::kJmp || op == Op::kRet || op == Op::kHalt; }
};

// Returns the lowercase mnemonic ("movi", "je", ...).
const char* OpName(Op op);

// Encodes one instruction into exactly kInstrSize bytes appended to *out.
void EncodeInstruction(const Instruction& instr, std::vector<uint8_t>* out);

// Decodes the instruction at byte offset `offset`. Returns false when the
// offset is out of range, misaligned, or the opcode byte is invalid.
bool DecodeInstruction(const std::vector<uint8_t>& text, size_t offset, Instruction* out);

// Human-readable rendering, e.g. "cmpi r0, -1". Import names, when known, are
// resolved by the caller (see Disassembler in image/).
std::string FormatInstruction(const Instruction& instr);

}  // namespace lfi

#endif  // LFI_ISA_ISA_H_
