#include "vlib/sim_crash.h"

namespace lfi {

const char* CrashKindName(CrashKind kind) {
  switch (kind) {
    case CrashKind::kSegfault:
      return "SIGSEGV";
    case CrashKind::kAbort:
      return "SIGABRT";
    case CrashKind::kAssert:
      return "assertion failure";
    case CrashKind::kDoubleUnlock:
      return "double mutex unlock";
  }
  return "?";
}

}  // namespace lfi
