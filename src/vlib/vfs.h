// In-memory filesystem shared by the applications under test.
//
// A plain path -> file map with directories, FIFOs, and failure knobs. The
// *real* behaviour lives here; transient environment failures (EIO on read,
// ENOSPC on write, ...) are what LFI injects at the boundary above this
// layer, so the filesystem itself is reliable unless configured otherwise.

#ifndef LFI_VLIB_VFS_H_
#define LFI_VLIB_VFS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace lfi {

struct VfsFile {
  std::string data;
  bool is_fifo = false;
  std::string symlink_target;  // non-empty: this entry is a symbolic link
};

class VirtualFs {
 public:
  VirtualFs();

  // Directory operations. Paths are absolute, '/'-separated, normalized by
  // the caller (no "." / ".." handling -- applications use clean paths).
  bool MkDir(const std::string& path);
  bool RmDir(const std::string& path);          // fails when non-empty
  bool DirExists(const std::string& path) const;
  // Names of immediate children (files and dirs) of `path`.
  std::vector<std::string> ListDir(const std::string& path) const;

  // File operations.
  bool FileExists(const std::string& path) const;
  // Creates or truncates.
  void WriteFile(const std::string& path, std::string data, bool is_fifo = false);
  const VfsFile* GetFile(const std::string& path) const;
  VfsFile* GetMutableFile(const std::string& path);
  bool Remove(const std::string& path);
  bool Rename(const std::string& from, const std::string& to);

  // Parent directory must exist for creation to succeed.
  bool ParentExists(const std::string& path) const;

  size_t file_count() const { return files_.size(); }

  // Deep copy of the whole filesystem state. Restore() rolls every file,
  // directory, FIFO, and symlink back to the captured state bit-exactly --
  // the warm-instance execution layer (core/warm_pool.h) snapshots after
  // target bring-up and restores between jobs.
  struct Snapshot {
    std::map<std::string, VfsFile> files;
    std::set<std::string> dirs;
  };
  Snapshot TakeSnapshot() const { return {files_, dirs_}; }
  void Restore(const Snapshot& snapshot) {
    files_ = snapshot.files;
    dirs_ = snapshot.dirs;
  }

 private:
  std::map<std::string, VfsFile> files_;
  std::set<std::string> dirs_;
};

}  // namespace lfi

#endif  // LFI_VLIB_VFS_H_
