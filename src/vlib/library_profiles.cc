#include "vlib/library_profiles.h"

#include "util/errno_codes.h"

namespace lfi {
namespace {

FunctionProfile Fn(std::string name, std::vector<ErrorSpec> errors,
                   std::vector<int64_t> successes, bool computed) {
  FunctionProfile fn;
  fn.name = std::move(name);
  fn.errors = std::move(errors);
  fn.success_constants = std::move(successes);
  fn.has_computed_success = computed;
  return fn;
}

}  // namespace

FaultProfile LibcProfile() {
  FaultProfile p("libc");
  // fd I/O. retval/errno sets mirror the POSIX behaviour of the virtual
  // implementations in virtual_libc.cc.
  p.AddFunction(Fn("open", {{-1, {kENOENT, kEACCES, kEISDIR, kEMFILE, kEINTR}}}, {}, true));
  p.AddFunction(Fn("close", {{-1, {kEBADF, kEIO, kEINTR}}}, {0}, false));
  p.AddFunction(Fn("read", {{-1, {kEAGAIN, kEBADF, kEINTR, kEIO}}}, {0}, true));
  p.AddFunction(Fn("write", {{-1, {kEAGAIN, kEBADF, kEINTR, kEIO, kENOSPC, kEPIPE}}}, {}, true));
  p.AddFunction(Fn("lseek", {{-1, {kEBADF, kEINVAL, kESPIPE}}}, {}, true));
  p.AddFunction(Fn("fstat", {{-1, {kEBADF, kEIO}}}, {0}, false));
  p.AddFunction(Fn("stat", {{-1, {kENOENT, kEACCES, kENAMETOOLONG}}}, {0}, false));
  p.AddFunction(Fn("fcntl", {{-1, {kEBADF, kEINVAL, kEDEADLK, kEAGAIN}}}, {0}, true));
  p.AddFunction(Fn("unlink", {{-1, {kENOENT, kEACCES, kEBUSY, kEIO}}}, {0}, false));
  p.AddFunction(Fn("readlink", {{-1, {kENOENT, kEINVAL, kEACCES}}}, {}, true));
  p.AddFunction(Fn("rename", {{-1, {kENOENT, kEACCES, kEXDEV, kENOSPC}}}, {0}, false));
  p.AddFunction(Fn("mkdir", {{-1, {kEEXIST, kENOENT, kEACCES, kENOSPC}}}, {0}, false));
  p.AddFunction(Fn("rmdir", {{-1, {kENOENT, kENOTEMPTY, kEBUSY}}}, {0}, false));
  p.AddFunction(Fn("pipe", {{-1, {kEMFILE, kENFILE}}}, {0}, false));
  // Streams: fopen/opendir return NULL (0) with errno; fread/fwrite report
  // short counts (0) with the stream error flag.
  p.AddFunction(Fn("fopen", {{0, {kENOENT, kEACCES, kEMFILE, kEINTR, kENOMEM}}}, {}, true));
  p.AddFunction(Fn("fclose", {{-1, {kEBADF, kEIO}}}, {0}, false));
  p.AddFunction(Fn("fread", {{0, {kEIO, kEINTR}}}, {}, true));
  p.AddFunction(Fn("fwrite", {{0, {kEIO, kENOSPC, kEINTR}}}, {}, true));
  p.AddFunction(Fn("fflush", {{-1, {kEBADF, kEIO, kENOSPC}}}, {0}, false));
  p.AddFunction(Fn("opendir", {{0, {kENOENT, kENOTDIR, kEACCES, kEMFILE, kENOMEM}}}, {}, true));
  p.AddFunction(Fn("readdir", {{0, {kEBADF}}}, {}, true));
  p.AddFunction(Fn("closedir", {{-1, {kEBADF}}}, {0}, false));
  // Heap: NULL with ENOMEM.
  p.AddFunction(Fn("malloc", {{0, {kENOMEM}}}, {}, true));
  p.AddFunction(Fn("calloc", {{0, {kENOMEM}}}, {}, true));
  p.AddFunction(Fn("realloc", {{0, {kENOMEM}}}, {}, true));
  // Environment.
  p.AddFunction(Fn("setenv", {{-1, {kEINVAL, kENOMEM}}}, {0}, false));
  p.AddFunction(Fn("unsetenv", {{-1, {kEINVAL}}}, {0}, false));
  // Mutexes: non-zero errno-style return codes.
  p.AddFunction(Fn("pthread_mutex_lock", {{kEDEADLK, {}}, {kEINVAL, {}}}, {0}, false));
  p.AddFunction(Fn("pthread_mutex_unlock", {{kEPERM, {}}, {kEINVAL, {}}}, {0}, false));
  // Sockets.
  p.AddFunction(Fn("socket", {{-1, {kEMFILE, kENFILE, kENOBUFS, kENOMEM}}}, {}, true));
  p.AddFunction(Fn("bind", {{-1, {kEACCES, kEEXIST, kEINVAL}}}, {0}, false));
  p.AddFunction(
      Fn("sendto", {{-1, {kEAGAIN, kEBADF, kECONNRESET, kEINTR, kEMSGSIZE, kENOBUFS}}}, {}, true));
  p.AddFunction(Fn("recvfrom", {{-1, {kEAGAIN, kEBADF, kECONNRESET, kEINTR, kENOMEM}}}, {}, true));
  return p;
}

FaultProfile LibxmlProfile() {
  FaultProfile p("libxml2");
  p.AddFunction(Fn("xmlNewTextWriterDoc", {{0, {kENOMEM}}}, {}, true));
  p.AddFunction(Fn("xmlTextWriterWriteElement", {{-1, {kENOMEM}}}, {0}, false));
  return p;
}

FaultProfile LibaprProfile() {
  FaultProfile p("libapr");
  p.AddFunction(Fn("apr_file_read", {{-1, {kEAGAIN, kEBADF, kEINTR, kEIO}}}, {0}, true));
  p.AddFunction(Fn("apr_stat", {{-1, {kEBADF, kENOENT}}}, {0}, false));
  return p;
}

}  // namespace lfi
