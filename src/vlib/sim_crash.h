// Simulated process failure.
//
// The paper's controller runs the target in a separate process and its
// monitor script observes segfaults, aborts and assertion failures. Here the
// target applications run in-process against the virtual libc, so hardware
// traps must be simulated: dereferencing a null FILE*/DIR*/buffer, a double
// mutex unlock, or an explicit assertion raises SimCrash, which unwinds
// through the application (which, like a real process receiving SIGSEGV,
// cannot catch it meaningfully) up to the test monitor. Only monitor code --
// the controller and the test harness -- may catch SimCrash.

#ifndef LFI_VLIB_SIM_CRASH_H_
#define LFI_VLIB_SIM_CRASH_H_

#include <stdexcept>
#include <string>

namespace lfi {

enum class CrashKind {
  kSegfault,      // null/invalid pointer dereference
  kAbort,         // abort(), e.g. from a failed assertion deep in a library
  kAssert,        // application-level assertion failure
  kDoubleUnlock,  // unlocking a mutex that is not held
};

const char* CrashKindName(CrashKind kind);

class SimCrash : public std::runtime_error {
 public:
  SimCrash(CrashKind kind, std::string where)
      : std::runtime_error(std::string(CrashKindName(kind)) + " in " + where),
        kind_(kind),
        where_(std::move(where)) {}

  CrashKind kind() const { return kind_; }
  const std::string& where() const { return where_; }

 private:
  CrashKind kind_;
  std::string where_;
};

// The moral equivalent of the MMU: returns `p` when non-null, raises a
// simulated segfault otherwise. Buggy application code dereferences library
// results through this helper so missing error checks crash like they would
// on real hardware.
template <typename T>
T* MustDeref(T* p, const char* where) {
  if (p == nullptr) {
    throw SimCrash(CrashKind::kSegfault, where);
  }
  return p;
}

// Application assertion: models REQUIRE()-style macros in BIND and friends.
inline void SimAssert(bool condition, const char* where) {
  if (!condition) {
    throw SimCrash(CrashKind::kAssert, where);
  }
}

}  // namespace lfi

#endif  // LFI_VLIB_SIM_CRASH_H_
