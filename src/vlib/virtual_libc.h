// The virtual libc: the library boundary LFI injects at.
//
// Each application instance (a BIND server, a Git client, a MySQL server, a
// PBFT replica) owns one VirtualLibc, which provides the libc-shaped API the
// application is written against: file descriptors, streams, directories,
// heap, environment, mutexes and datagram sockets, plus the small libxml and
// libapr surfaces BIND and Apache use. Every call funnels through the
// installed Interposer (the LFI runtime) before the real implementation
// executes -- the exact place the paper's LD_PRELOAD shims sit. Calls made
// *by triggers themselves* (e.g. the ReadPipe trigger calling fstat) bypass
// interception, like a dlsym(RTLD_NEXT) call would.
//
// Function-name strings used at the interposition boundary match the paper
// ("read", "pthread_mutex_lock", "apr_file_read", "xmlNewTextWriterDoc", ...).

#ifndef LFI_VLIB_VIRTUAL_LIBC_H_
#define LFI_VLIB_VIRTUAL_LIBC_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "vlib/call_stack.h"
#include "vlib/interposer.h"
#include "vlib/vfs.h"
#include "vlib/vnet.h"

namespace lfi {

// open(2) flags.
inline constexpr int kORdOnly = 0x0;
inline constexpr int kOWrOnly = 0x1;
inline constexpr int kORdWr = 0x2;
inline constexpr int kOCreate = 0x40;
inline constexpr int kOTrunc = 0x200;
inline constexpr int kOAppend = 0x400;
inline constexpr int kONonBlock = 0x800;

// lseek whence.
inline constexpr int kSeekSet = 0;
inline constexpr int kSeekCur = 1;
inline constexpr int kSeekEnd = 2;

// fcntl commands.
inline constexpr int kFGetFl = 1;
inline constexpr int kFSetFl = 2;
inline constexpr int kFGetLk = 5;
inline constexpr int kFSetLk = 6;

struct VStat {
  bool is_fifo = false;
  bool is_dir = false;
  bool is_socket = false;
  uint64_t size = 0;
};

// FILE-stream handle (opaque to applications).
struct VFile {
  int fd = -1;
  bool error = false;
  bool eof = false;
};

// DIR handle.
struct VDir {
  std::vector<std::string> entries;
  size_t pos = 0;
  std::string current;  // storage for the last readdir result
};

// Mutex with bookkeeping; unlocking an unheld mutex crashes (double unlock).
struct VMutex {
  const char* name = "mutex";
  int held = 0;
};

// Minimal libxml-style text-writer handle (BIND stats channel).
struct VXmlWriter {
  std::string buffer;
  std::vector<std::string> open_elements;
};

class VirtualLibc {
 public:
  VirtualLibc(VirtualFs* fs, VirtualNet* net, std::string process_name);
  ~VirtualLibc();

  VirtualLibc(const VirtualLibc&) = delete;
  VirtualLibc& operator=(const VirtualLibc&) = delete;

  // --- LFI hook-up -------------------------------------------------------
  void set_interposer(Interposer* interposer) { interposer_ = interposer; }
  Interposer* interposer() const { return interposer_; }
  CallStack& stack() { return stack_; }
  const CallStack& stack() const { return stack_; }
  const std::string& process_name() const { return process_name_; }

  int verrno() const { return errno_; }
  void set_verrno(int value) { errno_ = value; }

  // --- file descriptors --------------------------------------------------
  int Open(const std::string& path, int flags);
  int Close(int fd);
  long Read(int fd, char* buf, unsigned long count);
  long Write(int fd, const char* buf, unsigned long count);
  long Lseek(int fd, long offset, int whence);
  int Fstat(int fd, VStat* st);
  int Stat(const std::string& path, VStat* st);
  int Fcntl(int fd, int cmd, long arg);
  int Unlink(const std::string& path);
  // Reads a symlink's target into buf; -1/EINVAL when not a symlink.
  long ReadLink(const std::string& path, char* buf, unsigned long size);
  int Rename(const std::string& from, const std::string& to);
  int MkDir(const std::string& path);
  int RmDir(const std::string& path);
  // Creates an anonymous FIFO; both ends share one descriptor pair.
  int Pipe(int fds[2]);

  // --- streams -----------------------------------------------------------
  VFile* FOpen(const std::string& path, const std::string& mode);
  int FClose(VFile* f);
  unsigned long FRead(char* buf, unsigned long count, VFile* f);
  unsigned long FWrite(const char* buf, unsigned long count, VFile* f);
  int FFlush(VFile* f);

  // --- directories -------------------------------------------------------
  VDir* OpenDir(const std::string& path);
  // Returns the next entry name or nullptr at end. Null `dir` segfaults.
  const char* ReadDir(VDir* dir);
  int CloseDir(VDir* dir);

  // --- heap ----------------------------------------------------------------
  void* Malloc(unsigned long size);
  void* Calloc(unsigned long n, unsigned long size);
  void* Realloc(void* p, unsigned long size);
  void Free(void* p);
  size_t live_allocations() const { return allocations_.size(); }

  // --- environment ---------------------------------------------------------
  int SetEnv(const std::string& name, const std::string& value, int overwrite);
  const char* GetEnv(const std::string& name);
  int UnsetEnv(const std::string& name);

  // --- mutexes -------------------------------------------------------------
  int MutexLock(VMutex* m);
  int MutexUnlock(VMutex* m);

  // --- sockets -------------------------------------------------------------
  int Socket();
  int BindSocket(int sockfd, int port);
  long SendTo(int sockfd, const char* buf, unsigned long len, int dst_port);
  // Non-blocking: -1/EAGAIN when the queue is empty.
  long RecvFrom(int sockfd, char* buf, unsigned long len, int* src_port);

  // --- libxml (stats channel) ------------------------------------------------
  VXmlWriter* XmlNewTextWriterDoc();
  int XmlWriterWriteElement(VXmlWriter* w, const std::string& name, const std::string& text);
  // Returns the serialized document and releases the writer.
  std::string XmlFreeTextWriter(VXmlWriter* w);

  // --- libapr (Apache) -------------------------------------------------------
  long AprFileRead(int fd, char* buf, unsigned long count);
  int AprStat(VStat* st, int fd);

  VirtualFs* fs() { return fs_; }
  VirtualNet* net() { return net_; }

  // --- introspection surface for triggers -----------------------------------
  // Applications publish named globals here (the analogue of the symbol/DWARF
  // lookup the paper's program-state trigger performs on real processes).
  // Lookups are heterogeneous: string_view/char* callers never allocate.
  void SetGlobal(std::string_view name, int64_t value) {
    auto it = globals_.find(name);
    if (it == globals_.end()) {
      globals_.emplace(std::string(name), value);
    } else {
      it->second = value;
    }
  }
  std::optional<int64_t> GetGlobal(std::string_view name) const {
    auto it = globals_.find(name);
    return it == globals_.end() ? std::nullopt : std::optional<int64_t>(it->second);
  }

  // Named services attachable to a process, e.g. the distributed-trigger
  // controller a PBFT replica reports to.
  void SetService(std::string_view name, void* service) {
    auto it = services_.find(name);
    if (it == services_.end()) {
      services_.emplace(std::string(name), service);
    } else {
      it->second = service;
    }
  }
  void* GetService(std::string_view name) const {
    auto it = services_.find(name);
    return it == services_.end() ? nullptr : it->second;
  }

  // Number of calls that reached the interposition boundary.
  uint64_t intercepted_calls() const { return intercepted_calls_; }
  // Per-function count of calls that reached the boundary. This is what the
  // call-count trigger consults: "the n-th call to a function". The id
  // overload is the fast path (an array index); the name overload resolves
  // against the process-wide symbol table without interning.
  uint64_t CallCount(FunctionId function) const {
    return function < call_counts_.size() ? call_counts_[function] : 0;
  }
  uint64_t CallCount(std::string_view function) const {
    auto id = SymbolTable::Functions().Find(function);
    return id ? CallCount(*id) : 0;
  }
  // Clears the per-function boundary counts. The test controller calls this
  // at the start of every test, mirroring the paper's fresh process per run.
  void ResetCallCounts() { call_counts_.clear(); }

  // --- snapshot / restore ----------------------------------------------------
  // Captures the process's entire libc-visible state: descriptors, handle
  // contents (streams, DIRs, xml writers), the live-allocation set,
  // environment, globals, services, errno, call counters, and the call
  // stack. Defined after the class (it names the private OpenFd).
  struct Snapshot;
  Snapshot TakeSnapshot() const;

  // Rolls the process back to `snapshot`. Handles and heap blocks created
  // after the snapshot are released; snapshot-era handle *contents* (stream
  // error/eof/offset, DIR cursors, writer buffers) are restored in place.
  // The interposer is detached and in-trigger state cleared.
  //
  // Returns false -- leaving the process unusable -- when the state cannot
  // be rolled back: a snapshot-era heap block, stream, DIR, or writer was
  // released after the snapshot (its address may have been reused, so
  // "re-allocating" it is impossible). Callers fall back to a cold rebuild.
  // Raw heap block *contents* are not captured (sizes are untracked); no
  // target keeps setup-phase heap data across jobs, and a snapshot-era block
  // still live at restore keeps whatever bytes it has.
  bool Restore(const Snapshot& snapshot);

 private:
  struct OpenFd {
    std::string path;
    size_t offset = 0;
    int flags = 0;
    bool is_socket = false;
    int port = -1;
  };

  // Consults the interposer; returns the injected value when a fault fires.
  // `function` is the call site's id, interned once per process via a static
  // local at each call site in virtual_libc.cc; the initializer list is the
  // call's inline argument array -- no heap on this path.
  std::optional<int64_t> Intercept(FunctionId function, std::initializer_list<Word> args);

  OpenFd* Fd(int fd);
  int AllocFd(OpenFd f);

  VirtualFs* fs_;
  VirtualNet* net_;
  std::string process_name_;
  Interposer* interposer_ = nullptr;
  bool in_interposer_ = false;
  CallStack stack_;
  int errno_ = 0;
  uint64_t intercepted_calls_ = 0;
  std::vector<uint64_t> call_counts_;  // dense, indexed by FunctionId
  std::vector<std::optional<OpenFd>> fds_;
  std::set<void*> allocations_;
  std::set<VFile*> open_files_;
  std::set<VDir*> open_dirs_;
  std::set<VXmlWriter*> open_writers_;
  std::map<std::string, std::string, std::less<>> env_;
  std::map<std::string, int64_t, std::less<>> globals_;
  std::map<std::string, void*, std::less<>> services_;
  int next_pipe_id_ = 0;
};

// Out-of-class so it can name the private OpenFd (a member type has access).
// Handle state is keyed by the live pointer and holds a value copy of what it
// pointed at when the snapshot was taken.
struct VirtualLibc::Snapshot {
  CallStack stack;
  int errno_value = 0;
  uint64_t intercepted_calls = 0;
  std::vector<uint64_t> call_counts;
  std::vector<std::optional<OpenFd>> fds;
  std::set<void*> allocations;
  std::map<VFile*, VFile> open_files;
  std::map<VDir*, VDir> open_dirs;
  std::map<VXmlWriter*, VXmlWriter> open_writers;
  std::map<std::string, std::string, std::less<>> env;
  std::map<std::string, int64_t, std::less<>> globals;
  std::map<std::string, void*, std::less<>> services;
  int next_pipe_id = 0;
};

}  // namespace lfi

#endif  // LFI_VLIB_VIRTUAL_LIBC_H_
