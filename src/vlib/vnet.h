// Virtual datagram network.
//
// A loopback UDP-style fabric connecting the replicas of the distributed
// applications (PBFT). Endpoints are small integer ports; each port owns a
// message queue. Like the paper's setup, *deteriorated network conditions*
// are produced by LFI injecting failures into sendto/recvfrom at the library
// boundary -- the fabric itself is reliable by default, with optional
// physical-loss knobs for experiments that want baseline noise.

#ifndef LFI_VLIB_VNET_H_
#define LFI_VLIB_VNET_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "util/rng.h"

namespace lfi {

struct Datagram {
  int src_port = 0;
  std::string payload;
};

class VirtualNet {
 public:
  explicit VirtualNet(uint64_t seed = 1) : rng_(seed) {}

  // Binds a queue for `port`; returns false when already bound.
  bool Bind(int port);
  void Unbind(int port);
  bool IsBound(int port) const;

  // Delivers `payload` to `dst_port`. Returns bytes accepted (always the
  // payload size unless the destination is unbound or physical loss fires).
  // An unbound destination silently drops, like UDP.
  long Send(int src_port, int dst_port, const std::string& payload);

  // Pops the next datagram for `port`; false when the queue is empty.
  bool Receive(int port, Datagram* out);

  size_t QueueDepth(int port) const;

  // Physical-loss probability applied to every Send (default 0).
  void set_loss_probability(double p) { loss_probability_ = p; }

  // Partial-transfer fault sites. When partial-send fires, Send() delivers
  // only a strict prefix of the payload (1 <= k < size) and returns the
  // honest short count k -- the sender sees exactly what a short write()
  // reports and must resend from offset k. When partial-recv fires,
  // Receive() hands over only a strict prefix of the head datagram and the
  // remainder is gone -- the receiver sees an honest short read and must
  // detect the gap (frame length/CRC) and recover. Payloads shorter than
  // two bytes cannot be split and pass through whole. Both draw from the
  // same snapshotted rng_ as physical loss, so restores replay the fault
  // stream bit-exactly.
  void set_partial_send_probability(double p) { partial_send_probability_ = p; }
  void set_partial_recv_probability(double p) { partial_recv_probability_ = p; }
  uint64_t partial_send_count() const { return partial_sends_; }
  uint64_t partial_recv_count() const { return partial_recvs_; }

  // Tick-synchronous delivery: when enabled, Send() stages datagrams and
  // AdvanceTick() makes them receivable, giving every message a uniform
  // one-tick latency. Discrete-event simulations (PBFT) use this so results
  // do not depend on the order processes are stepped within a tick.
  void set_tick_delivery(bool enabled) { tick_delivery_ = enabled; }
  void AdvanceTick();

  uint64_t delivered_count() const { return delivered_; }
  uint64_t dropped_count() const { return dropped_; }

  // Deep copy of the whole fabric state: bound ports (queue-map keys *are*
  // the bindings), queued and staged datagrams, delivery mode, loss RNG
  // state, and the counters. Restore() rolls all of it back bit-exactly, so
  // a restored warm instance's message timing and physical-loss stream are
  // indistinguishable from a fresh bring-up.
  struct Snapshot {
    std::map<int, std::deque<Datagram>> queues;
    std::vector<std::pair<int, Datagram>> staged;
    bool tick_delivery = false;
    Rng rng;
    double loss_probability = 0.0;
    double partial_send_probability = 0.0;
    double partial_recv_probability = 0.0;
    uint64_t delivered = 0;
    uint64_t dropped = 0;
    uint64_t partial_sends = 0;
    uint64_t partial_recvs = 0;
  };
  Snapshot TakeSnapshot() const {
    return {queues_,  staged_,  tick_delivery_,  rng_,           loss_probability_,
            partial_send_probability_, partial_recv_probability_, delivered_,
            dropped_, partial_sends_, partial_recvs_};
  }
  void Restore(const Snapshot& snapshot) {
    queues_ = snapshot.queues;
    staged_ = snapshot.staged;
    tick_delivery_ = snapshot.tick_delivery;
    rng_ = snapshot.rng;
    loss_probability_ = snapshot.loss_probability;
    partial_send_probability_ = snapshot.partial_send_probability;
    partial_recv_probability_ = snapshot.partial_recv_probability;
    delivered_ = snapshot.delivered;
    dropped_ = snapshot.dropped;
    partial_sends_ = snapshot.partial_sends;
    partial_recvs_ = snapshot.partial_recvs;
  }

 private:
  std::map<int, std::deque<Datagram>> queues_;
  std::vector<std::pair<int, Datagram>> staged_;
  bool tick_delivery_ = false;
  Rng rng_;
  double loss_probability_ = 0.0;
  double partial_send_probability_ = 0.0;
  double partial_recv_probability_ = 0.0;
  uint64_t delivered_ = 0;
  uint64_t dropped_ = 0;
  uint64_t partial_sends_ = 0;
  uint64_t partial_recvs_ = 0;
};

}  // namespace lfi

#endif  // LFI_VLIB_VNET_H_
