#include "vlib/vfs.h"

#include "util/string_util.h"

namespace lfi {
namespace {

std::string ParentOf(const std::string& path) {
  size_t pos = path.find_last_of('/');
  if (pos == std::string::npos || pos == 0) {
    return "/";
  }
  return path.substr(0, pos);
}

}  // namespace

VirtualFs::VirtualFs() { dirs_.insert("/"); }

bool VirtualFs::MkDir(const std::string& path) {
  if (path.empty() || DirExists(path) || FileExists(path) || !ParentExists(path)) {
    return false;
  }
  dirs_.insert(path);
  return true;
}

bool VirtualFs::RmDir(const std::string& path) {
  if (!DirExists(path) || path == "/") {
    return false;
  }
  if (!ListDir(path).empty()) {
    return false;
  }
  dirs_.erase(path);
  return true;
}

bool VirtualFs::DirExists(const std::string& path) const { return dirs_.count(path) != 0; }

std::vector<std::string> VirtualFs::ListDir(const std::string& path) const {
  std::vector<std::string> out;
  std::string prefix = path == "/" ? "/" : path + "/";
  auto consider = [&](const std::string& p) {
    if (!StartsWith(p, prefix) || p == path) {
      return;
    }
    std::string rest = p.substr(prefix.size());
    if (rest.empty() || rest.find('/') != std::string::npos) {
      return;
    }
    out.push_back(rest);
  };
  for (const auto& [p, f] : files_) {
    consider(p);
  }
  for (const auto& d : dirs_) {
    consider(d);
  }
  return out;
}

bool VirtualFs::FileExists(const std::string& path) const { return files_.count(path) != 0; }

void VirtualFs::WriteFile(const std::string& path, std::string data, bool is_fifo) {
  files_[path] = VfsFile{std::move(data), is_fifo};
}

const VfsFile* VirtualFs::GetFile(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

VfsFile* VirtualFs::GetMutableFile(const std::string& path) {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

bool VirtualFs::Remove(const std::string& path) { return files_.erase(path) != 0; }

bool VirtualFs::Rename(const std::string& from, const std::string& to) {
  auto it = files_.find(from);
  if (it == files_.end() || !ParentExists(to)) {
    return false;
  }
  files_[to] = std::move(it->second);
  files_.erase(it);
  return true;
}

bool VirtualFs::ParentExists(const std::string& path) const {
  return DirExists(ParentOf(path));
}

}  // namespace lfi
