#include "vlib/vnet.h"

namespace lfi {

bool VirtualNet::Bind(int port) {
  if (queues_.count(port) != 0) {
    return false;
  }
  queues_[port];
  return true;
}

void VirtualNet::Unbind(int port) { queues_.erase(port); }

bool VirtualNet::IsBound(int port) const { return queues_.count(port) != 0; }

long VirtualNet::Send(int src_port, int dst_port, const std::string& payload) {
  auto it = queues_.find(dst_port);
  if (it == queues_.end()) {
    ++dropped_;
    return static_cast<long>(payload.size());  // UDP: fire and forget
  }
  if (loss_probability_ > 0.0 && rng_.Chance(loss_probability_)) {
    ++dropped_;
    return static_cast<long>(payload.size());
  }
  if (tick_delivery_) {
    staged_.emplace_back(dst_port, Datagram{src_port, payload});
  } else {
    it->second.push_back(Datagram{src_port, payload});
  }
  ++delivered_;
  return static_cast<long>(payload.size());
}

void VirtualNet::AdvanceTick() {
  for (auto& [port, dgram] : staged_) {
    auto it = queues_.find(port);
    if (it != queues_.end()) {
      it->second.push_back(std::move(dgram));
    }
  }
  staged_.clear();
}

bool VirtualNet::Receive(int port, Datagram* out) {
  auto it = queues_.find(port);
  if (it == queues_.end() || it->second.empty()) {
    return false;
  }
  *out = std::move(it->second.front());
  it->second.pop_front();
  return true;
}

size_t VirtualNet::QueueDepth(int port) const {
  auto it = queues_.find(port);
  return it == queues_.end() ? 0 : it->second.size();
}

}  // namespace lfi
