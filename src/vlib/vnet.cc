#include "vlib/vnet.h"

namespace lfi {

bool VirtualNet::Bind(int port) {
  if (queues_.count(port) != 0) {
    return false;
  }
  queues_[port];
  return true;
}

void VirtualNet::Unbind(int port) { queues_.erase(port); }

bool VirtualNet::IsBound(int port) const { return queues_.count(port) != 0; }

long VirtualNet::Send(int src_port, int dst_port, const std::string& payload) {
  auto it = queues_.find(dst_port);
  if (it == queues_.end()) {
    ++dropped_;
    return static_cast<long>(payload.size());  // UDP: fire and forget
  }
  if (loss_probability_ > 0.0 && rng_.Chance(loss_probability_)) {
    ++dropped_;
    return static_cast<long>(payload.size());
  }
  std::string delivered_payload = payload;
  if (partial_send_probability_ > 0.0 && payload.size() >= 2 &&
      rng_.Chance(partial_send_probability_)) {
    // Strict prefix: the wire accepted k bytes, the rest never left the host.
    size_t k = 1 + static_cast<size_t>(rng_.NextBelow(payload.size() - 1));
    delivered_payload.resize(k);
    ++partial_sends_;
  }
  long accepted = static_cast<long>(delivered_payload.size());
  if (tick_delivery_) {
    staged_.emplace_back(dst_port, Datagram{src_port, std::move(delivered_payload)});
  } else {
    it->second.push_back(Datagram{src_port, std::move(delivered_payload)});
  }
  ++delivered_;
  return accepted;
}

void VirtualNet::AdvanceTick() {
  for (auto& [port, dgram] : staged_) {
    auto it = queues_.find(port);
    if (it != queues_.end()) {
      it->second.push_back(std::move(dgram));
    }
  }
  staged_.clear();
}

bool VirtualNet::Receive(int port, Datagram* out) {
  auto it = queues_.find(port);
  if (it == queues_.end() || it->second.empty()) {
    return false;
  }
  *out = std::move(it->second.front());
  it->second.pop_front();
  if (partial_recv_probability_ > 0.0 && out->payload.size() >= 2 &&
      rng_.Chance(partial_recv_probability_)) {
    // Strict prefix: the caller gets an honest short read; the tail of this
    // datagram is gone for good, exactly like a truncating recvfrom.
    size_t k = 1 + static_cast<size_t>(rng_.NextBelow(out->payload.size() - 1));
    out->payload.resize(k);
    ++partial_recvs_;
  }
  return true;
}

size_t VirtualNet::QueueDepth(int port) const {
  auto it = queues_.find(port);
  return it == queues_.end() ? 0 : it->second.size();
}

}  // namespace lfi
