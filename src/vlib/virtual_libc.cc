#include "vlib/virtual_libc.h"

#include <cstring>

#include "util/errno_codes.h"
#include "util/string_util.h"
#include "vlib/sim_crash.h"
#include "xml/xml.h"

namespace lfi {

VirtualLibc::VirtualLibc(VirtualFs* fs, VirtualNet* net, std::string process_name)
    : fs_(fs), net_(net), process_name_(std::move(process_name)) {}

VirtualLibc::~VirtualLibc() {
  for (void* p : allocations_) {
    ::operator delete(p);
  }
  for (VFile* f : open_files_) {
    delete f;
  }
  for (VDir* d : open_dirs_) {
    delete d;
  }
  for (VXmlWriter* w : open_writers_) {
    delete w;
  }
}

VirtualLibc::Snapshot VirtualLibc::TakeSnapshot() const {
  Snapshot snapshot;
  snapshot.stack = stack_;
  snapshot.errno_value = errno_;
  snapshot.intercepted_calls = intercepted_calls_;
  snapshot.call_counts = call_counts_;
  snapshot.fds = fds_;
  snapshot.allocations = allocations_;
  for (VFile* f : open_files_) {
    snapshot.open_files.emplace(f, *f);
  }
  for (VDir* d : open_dirs_) {
    snapshot.open_dirs.emplace(d, *d);
  }
  for (VXmlWriter* w : open_writers_) {
    snapshot.open_writers.emplace(w, *w);
  }
  snapshot.env = env_;
  snapshot.globals = globals_;
  snapshot.services = services_;
  snapshot.next_pipe_id = next_pipe_id_;
  return snapshot;
}

bool VirtualLibc::Restore(const Snapshot& snapshot) {
  // Snapshot-era handles and heap blocks must all still be live: a released
  // pointer cannot be conjured back at the same address, so such state is
  // non-restorable and the caller must rebuild from scratch.
  for (void* p : snapshot.allocations) {
    if (allocations_.count(p) == 0) {
      return false;
    }
  }
  for (const auto& [f, copy] : snapshot.open_files) {
    if (open_files_.count(f) == 0) {
      return false;
    }
  }
  for (const auto& [d, copy] : snapshot.open_dirs) {
    if (open_dirs_.count(d) == 0) {
      return false;
    }
  }
  for (const auto& [w, copy] : snapshot.open_writers) {
    if (open_writers_.count(w) == 0) {
      return false;
    }
  }

  // Release everything born after the snapshot, then roll handle contents
  // back in place (stream error/eof flags, DIR cursors, writer buffers).
  for (auto it = allocations_.begin(); it != allocations_.end();) {
    if (snapshot.allocations.count(*it) == 0) {
      ::operator delete(*it);
      it = allocations_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = open_files_.begin(); it != open_files_.end();) {
    if (snapshot.open_files.count(*it) == 0) {
      delete *it;
      it = open_files_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = open_dirs_.begin(); it != open_dirs_.end();) {
    if (snapshot.open_dirs.count(*it) == 0) {
      delete *it;
      it = open_dirs_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = open_writers_.begin(); it != open_writers_.end();) {
    if (snapshot.open_writers.count(*it) == 0) {
      delete *it;
      it = open_writers_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [f, copy] : snapshot.open_files) {
    *f = copy;
  }
  for (const auto& [d, copy] : snapshot.open_dirs) {
    *d = copy;
  }
  for (const auto& [w, copy] : snapshot.open_writers) {
    *w = copy;
  }

  stack_ = snapshot.stack;
  errno_ = snapshot.errno_value;
  intercepted_calls_ = snapshot.intercepted_calls;
  call_counts_ = snapshot.call_counts;
  fds_ = snapshot.fds;
  env_ = snapshot.env;
  globals_ = snapshot.globals;
  services_ = snapshot.services;
  next_pipe_id_ = snapshot.next_pipe_id;
  interposer_ = nullptr;
  in_interposer_ = false;
  return true;
}

std::optional<int64_t> VirtualLibc::Intercept(FunctionId function,
                                              std::initializer_list<Word> args) {
  if (interposer_ == nullptr || in_interposer_) {
    return std::nullopt;  // pass-through: no shim installed, or trigger code
  }
  ++intercepted_calls_;
  if (function >= call_counts_.size()) {
    call_counts_.resize(function + 1, 0);
  }
  ++call_counts_[function];
  in_interposer_ = true;
  InjectionDecision decision = interposer_->OnCall(this, function, ArgSpan(args));
  in_interposer_ = false;
  if (!decision.inject) {
    return std::nullopt;
  }
  if (decision.errno_value != 0) {
    errno_ = decision.errno_value;
  }
  return decision.retval;
}

VirtualLibc::OpenFd* VirtualLibc::Fd(int fd) {
  if (fd < 0 || static_cast<size_t>(fd) >= fds_.size() || !fds_[static_cast<size_t>(fd)]) {
    return nullptr;
  }
  return &*fds_[static_cast<size_t>(fd)];
}

int VirtualLibc::AllocFd(OpenFd f) {
  for (size_t i = 0; i < fds_.size(); ++i) {
    if (!fds_[i]) {
      fds_[i] = std::move(f);
      return static_cast<int>(i);
    }
  }
  fds_.push_back(std::move(f));
  return static_cast<int>(fds_.size()) - 1;
}

// --- file descriptors ------------------------------------------------------

int VirtualLibc::Open(const std::string& path, int flags) {
  static const FunctionId kFn = InternFunction("open");
  if (auto inj = Intercept(kFn, {reinterpret_cast<Word>(&path), static_cast<Word>(flags)})) {
    return static_cast<int>(*inj);
  }
  bool exists = fs_->FileExists(path);
  if (!exists && (flags & kOCreate) == 0) {
    errno_ = kENOENT;
    return -1;
  }
  if (fs_->DirExists(path)) {
    errno_ = kEISDIR;
    return -1;
  }
  if (!exists) {
    if (!fs_->ParentExists(path)) {
      errno_ = kENOENT;
      return -1;
    }
    fs_->WriteFile(path, "");
  } else if ((flags & kOTrunc) != 0) {
    fs_->GetMutableFile(path)->data.clear();
  }
  OpenFd f;
  f.path = path;
  f.flags = flags;
  if ((flags & kOAppend) != 0) {
    f.offset = fs_->GetFile(path)->data.size();
  }
  return AllocFd(std::move(f));
}

int VirtualLibc::Close(int fd) {
  static const FunctionId kFn = InternFunction("close");
  if (auto inj = Intercept(kFn, {static_cast<Word>(fd)})) {
    return static_cast<int>(*inj);
  }
  OpenFd* f = Fd(fd);
  if (f == nullptr) {
    errno_ = kEBADF;
    return -1;
  }
  if (f->is_socket && f->port >= 0) {
    net_->Unbind(f->port);
  }
  fds_[static_cast<size_t>(fd)].reset();
  return 0;
}

long VirtualLibc::Read(int fd, char* buf, unsigned long count) {
  static const FunctionId kFn = InternFunction("read");
  if (auto inj = Intercept(kFn, {static_cast<Word>(fd), reinterpret_cast<Word>(buf),
                                    static_cast<Word>(count)})) {
    return static_cast<long>(*inj);
  }
  OpenFd* f = Fd(fd);
  if (f == nullptr) {
    errno_ = kEBADF;
    return -1;
  }
  const VfsFile* file = fs_->GetFile(f->path);
  if (file == nullptr) {
    errno_ = kEIO;
    return -1;
  }
  if (f->offset >= file->data.size()) {
    return 0;  // EOF
  }
  size_t n = std::min<size_t>(count, file->data.size() - f->offset);
  std::memcpy(buf, file->data.data() + f->offset, n);
  f->offset += n;
  return static_cast<long>(n);
}

long VirtualLibc::Write(int fd, const char* buf, unsigned long count) {
  static const FunctionId kFn = InternFunction("write");
  if (auto inj = Intercept(kFn, {static_cast<Word>(fd), reinterpret_cast<Word>(buf),
                                     static_cast<Word>(count)})) {
    return static_cast<long>(*inj);
  }
  OpenFd* f = Fd(fd);
  if (f == nullptr) {
    errno_ = kEBADF;
    return -1;
  }
  VfsFile* file = fs_->GetMutableFile(f->path);
  if (file == nullptr) {
    errno_ = kEIO;
    return -1;
  }
  if (file->data.size() < f->offset) {
    file->data.resize(f->offset, '\0');
  }
  file->data.replace(f->offset, count, buf, count);
  f->offset += count;
  return static_cast<long>(count);
}

long VirtualLibc::Lseek(int fd, long offset, int whence) {
  static const FunctionId kFn = InternFunction("lseek");
  if (auto inj = Intercept(kFn, {static_cast<Word>(fd), static_cast<Word>(offset),
                                     static_cast<Word>(whence)})) {
    return static_cast<long>(*inj);
  }
  OpenFd* f = Fd(fd);
  if (f == nullptr) {
    errno_ = kEBADF;
    return -1;
  }
  const VfsFile* file = fs_->GetFile(f->path);
  long base = 0;
  switch (whence) {
    case kSeekSet:
      base = 0;
      break;
    case kSeekCur:
      base = static_cast<long>(f->offset);
      break;
    case kSeekEnd:
      base = file == nullptr ? 0 : static_cast<long>(file->data.size());
      break;
    default:
      errno_ = kEINVAL;
      return -1;
  }
  long target = base + offset;
  if (target < 0) {
    errno_ = kEINVAL;
    return -1;
  }
  f->offset = static_cast<size_t>(target);
  return target;
}

int VirtualLibc::Fstat(int fd, VStat* st) {
  static const FunctionId kFn = InternFunction("fstat");
  if (auto inj = Intercept(kFn, {static_cast<Word>(fd), reinterpret_cast<Word>(st)})) {
    return static_cast<int>(*inj);
  }
  OpenFd* f = Fd(fd);
  if (f == nullptr) {
    errno_ = kEBADF;
    return -1;
  }
  *st = VStat{};
  if (f->is_socket) {
    st->is_socket = true;
    return 0;
  }
  const VfsFile* file = fs_->GetFile(f->path);
  if (file != nullptr) {
    st->is_fifo = file->is_fifo;
    st->size = file->data.size();
  }
  return 0;
}

int VirtualLibc::Stat(const std::string& path, VStat* st) {
  static const FunctionId kFn = InternFunction("stat");
  if (auto inj = Intercept(kFn, {reinterpret_cast<Word>(&path), reinterpret_cast<Word>(st)})) {
    return static_cast<int>(*inj);
  }
  *st = VStat{};
  if (fs_->DirExists(path)) {
    st->is_dir = true;
    return 0;
  }
  const VfsFile* file = fs_->GetFile(path);
  if (file == nullptr) {
    errno_ = kENOENT;
    return -1;
  }
  st->is_fifo = file->is_fifo;
  st->size = file->data.size();
  return 0;
}

int VirtualLibc::Fcntl(int fd, int cmd, long arg) {
  static const FunctionId kFn = InternFunction("fcntl");
  if (auto inj = Intercept(kFn, {static_cast<Word>(fd), static_cast<Word>(cmd),
                                     static_cast<Word>(arg)})) {
    return static_cast<int>(*inj);
  }
  OpenFd* f = Fd(fd);
  if (f == nullptr) {
    errno_ = kEBADF;
    return -1;
  }
  switch (cmd) {
    case kFGetFl:
      return f->flags;
    case kFSetFl:
      f->flags = static_cast<int>(arg);
      return 0;
    case kFGetLk:
    case kFSetLk:
      return 0;  // locks always granted on the virtual fs
    default:
      errno_ = kEINVAL;
      return -1;
  }
}

int VirtualLibc::Unlink(const std::string& path) {
  static const FunctionId kFn = InternFunction("unlink");
  if (auto inj = Intercept(kFn, {reinterpret_cast<Word>(&path)})) {
    return static_cast<int>(*inj);
  }
  if (!fs_->Remove(path)) {
    errno_ = kENOENT;
    return -1;
  }
  return 0;
}

long VirtualLibc::ReadLink(const std::string& path, char* buf, unsigned long size) {
  static const FunctionId kFn = InternFunction("readlink");
  if (auto inj = Intercept(kFn, {reinterpret_cast<Word>(&path),
                                        reinterpret_cast<Word>(buf), static_cast<Word>(size)})) {
    return static_cast<long>(*inj);
  }
  const VfsFile* file = fs_->GetFile(path);
  if (file == nullptr) {
    errno_ = kENOENT;
    return -1;
  }
  if (file->symlink_target.empty()) {
    errno_ = kEINVAL;
    return -1;
  }
  size_t n = std::min<size_t>(size, file->symlink_target.size());
  std::memcpy(buf, file->symlink_target.data(), n);
  return static_cast<long>(n);
}

int VirtualLibc::Rename(const std::string& from, const std::string& to) {
  static const FunctionId kFn = InternFunction("rename");
  if (auto inj = Intercept(kFn, {reinterpret_cast<Word>(&from), reinterpret_cast<Word>(&to)})) {
    return static_cast<int>(*inj);
  }
  if (!fs_->Rename(from, to)) {
    errno_ = kENOENT;
    return -1;
  }
  return 0;
}

int VirtualLibc::MkDir(const std::string& path) {
  static const FunctionId kFn = InternFunction("mkdir");
  if (auto inj = Intercept(kFn, {reinterpret_cast<Word>(&path)})) {
    return static_cast<int>(*inj);
  }
  if (!fs_->MkDir(path)) {
    errno_ = fs_->DirExists(path) ? kEEXIST : kENOENT;
    return -1;
  }
  return 0;
}

int VirtualLibc::RmDir(const std::string& path) {
  static const FunctionId kFn = InternFunction("rmdir");
  if (auto inj = Intercept(kFn, {reinterpret_cast<Word>(&path)})) {
    return static_cast<int>(*inj);
  }
  if (!fs_->RmDir(path)) {
    errno_ = fs_->DirExists(path) ? kENOTEMPTY : kENOENT;
    return -1;
  }
  return 0;
}

int VirtualLibc::Pipe(int fds[2]) {
  static const FunctionId kFn = InternFunction("pipe");
  if (auto inj = Intercept(kFn, {reinterpret_cast<Word>(fds)})) {
    return static_cast<int>(*inj);
  }
  std::string path = StrFormat("/pipe/%s.%d", process_name_.c_str(), next_pipe_id_++);
  if (!fs_->DirExists("/pipe")) {
    fs_->MkDir("/pipe");
  }
  fs_->WriteFile(path, "", /*is_fifo=*/true);
  OpenFd rd;
  rd.path = path;
  rd.flags = kORdOnly;
  OpenFd wr;
  wr.path = path;
  wr.flags = kOWrOnly;
  fds[0] = AllocFd(std::move(rd));
  fds[1] = AllocFd(std::move(wr));
  return 0;
}

// --- streams -----------------------------------------------------------------

VFile* VirtualLibc::FOpen(const std::string& path, const std::string& mode) {
  static const FunctionId kFn = InternFunction("fopen");
  if (auto inj = Intercept(kFn, {reinterpret_cast<Word>(&path),
                                     reinterpret_cast<Word>(&mode)})) {
    return reinterpret_cast<VFile*>(static_cast<uintptr_t>(*inj));
  }
  int flags;
  if (mode == "r") {
    flags = kORdOnly;
  } else if (mode == "w") {
    flags = kOWrOnly | kOCreate | kOTrunc;
  } else if (mode == "a") {
    flags = kOWrOnly | kOCreate | kOAppend;
  } else {
    errno_ = kEINVAL;
    return nullptr;
  }
  // Open the descriptor without re-interception (a single logical call).
  bool was_in = in_interposer_;
  in_interposer_ = true;
  int fd = Open(path, flags);
  in_interposer_ = was_in;
  if (fd < 0) {
    return nullptr;
  }
  VFile* f = new VFile{fd, false, false};
  open_files_.insert(f);
  return f;
}

int VirtualLibc::FClose(VFile* f) {
  static const FunctionId kFn = InternFunction("fclose");
  if (auto inj = Intercept(kFn, {reinterpret_cast<Word>(f)})) {
    return static_cast<int>(*inj);
  }
  MustDeref(f, "fclose");
  bool was_in = in_interposer_;
  in_interposer_ = true;
  Close(f->fd);
  in_interposer_ = was_in;
  open_files_.erase(f);
  delete f;
  return 0;
}

unsigned long VirtualLibc::FRead(char* buf, unsigned long count, VFile* f) {
  static const FunctionId kFn = InternFunction("fread");
  if (auto inj = Intercept(kFn, {reinterpret_cast<Word>(buf), static_cast<Word>(count),
                                     reinterpret_cast<Word>(f)})) {
    if (static_cast<long>(*inj) < static_cast<long>(count) && f != nullptr) {
      f->error = true;
    }
    return static_cast<unsigned long>(*inj);
  }
  MustDeref(f, "fread");
  bool was_in = in_interposer_;
  in_interposer_ = true;
  long n = Read(f->fd, buf, count);
  in_interposer_ = was_in;
  if (n < 0) {
    f->error = true;
    return 0;
  }
  if (n == 0) {
    f->eof = true;
  }
  return static_cast<unsigned long>(n);
}

unsigned long VirtualLibc::FWrite(const char* buf, unsigned long count, VFile* f) {
  static const FunctionId kFn = InternFunction("fwrite");
  if (auto inj = Intercept(kFn, {reinterpret_cast<Word>(buf), static_cast<Word>(count),
                                      reinterpret_cast<Word>(f)})) {
    if (static_cast<unsigned long>(*inj) < count && f != nullptr) {
      f->error = true;
    }
    return static_cast<unsigned long>(*inj);
  }
  MustDeref(f, "fwrite");
  bool was_in = in_interposer_;
  in_interposer_ = true;
  long n = Write(f->fd, buf, count);
  in_interposer_ = was_in;
  if (n < 0) {
    f->error = true;
    return 0;
  }
  return static_cast<unsigned long>(n);
}

int VirtualLibc::FFlush(VFile* f) {
  static const FunctionId kFn = InternFunction("fflush");
  if (auto inj = Intercept(kFn, {reinterpret_cast<Word>(f)})) {
    return static_cast<int>(*inj);
  }
  MustDeref(f, "fflush");
  return 0;  // writes are synchronous on the virtual fs
}

// --- directories ---------------------------------------------------------------

VDir* VirtualLibc::OpenDir(const std::string& path) {
  static const FunctionId kFn = InternFunction("opendir");
  if (auto inj = Intercept(kFn, {reinterpret_cast<Word>(&path)})) {
    return reinterpret_cast<VDir*>(static_cast<uintptr_t>(*inj));
  }
  if (!fs_->DirExists(path)) {
    errno_ = fs_->FileExists(path) ? kENOTDIR : kENOENT;
    return nullptr;
  }
  VDir* d = new VDir;
  d->entries = fs_->ListDir(path);
  open_dirs_.insert(d);
  return d;
}

const char* VirtualLibc::ReadDir(VDir* dir) {
  static const FunctionId kFn = InternFunction("readdir");
  if (auto inj = Intercept(kFn, {reinterpret_cast<Word>(dir)})) {
    return reinterpret_cast<const char*>(static_cast<uintptr_t>(*inj));
  }
  MustDeref(dir, "readdir");
  if (dir->pos >= dir->entries.size()) {
    return nullptr;
  }
  dir->current = dir->entries[dir->pos++];
  return dir->current.c_str();
}

int VirtualLibc::CloseDir(VDir* dir) {
  static const FunctionId kFn = InternFunction("closedir");
  if (auto inj = Intercept(kFn, {reinterpret_cast<Word>(dir)})) {
    return static_cast<int>(*inj);
  }
  MustDeref(dir, "closedir");
  open_dirs_.erase(dir);
  delete dir;
  return 0;
}

// --- heap ------------------------------------------------------------------------

void* VirtualLibc::Malloc(unsigned long size) {
  static const FunctionId kFn = InternFunction("malloc");
  if (auto inj = Intercept(kFn, {static_cast<Word>(size)})) {
    return reinterpret_cast<void*>(static_cast<uintptr_t>(*inj));
  }
  void* p = ::operator new(size == 0 ? 1 : size);
  allocations_.insert(p);
  return p;
}

void* VirtualLibc::Calloc(unsigned long n, unsigned long size) {
  static const FunctionId kFn = InternFunction("calloc");
  if (auto inj = Intercept(kFn, {static_cast<Word>(n), static_cast<Word>(size)})) {
    return reinterpret_cast<void*>(static_cast<uintptr_t>(*inj));
  }
  unsigned long total = n * size;
  void* p = ::operator new(total == 0 ? 1 : total);
  std::memset(p, 0, total);
  allocations_.insert(p);
  return p;
}

void* VirtualLibc::Realloc(void* p, unsigned long size) {
  static const FunctionId kFn = InternFunction("realloc");
  if (auto inj = Intercept(kFn, {reinterpret_cast<Word>(p), static_cast<Word>(size)})) {
    return reinterpret_cast<void*>(static_cast<uintptr_t>(*inj));
  }
  void* q = ::operator new(size == 0 ? 1 : size);
  allocations_.insert(q);
  if (p != nullptr) {
    // Sizes are not tracked; the virtual heap copies conservatively little.
    allocations_.erase(p);
    ::operator delete(p);
  }
  return q;
}

void VirtualLibc::Free(void* p) {
  if (p == nullptr) {
    return;
  }
  if (allocations_.erase(p) == 0) {
    throw SimCrash(CrashKind::kAbort, "free(): invalid pointer");
  }
  ::operator delete(p);
}

// --- environment -------------------------------------------------------------------

int VirtualLibc::SetEnv(const std::string& name, const std::string& value, int overwrite) {
  static const FunctionId kFn = InternFunction("setenv");
  if (auto inj = Intercept(kFn, {reinterpret_cast<Word>(&name),
                                      reinterpret_cast<Word>(&value),
                                      static_cast<Word>(overwrite)})) {
    return static_cast<int>(*inj);
  }
  if (name.empty() || name.find('=') != std::string::npos) {
    errno_ = kEINVAL;
    return -1;
  }
  if (overwrite == 0 && env_.count(name) != 0) {
    return 0;
  }
  env_[name] = value;
  return 0;
}

const char* VirtualLibc::GetEnv(const std::string& name) {
  static const FunctionId kFn = InternFunction("getenv");
  if (auto inj = Intercept(kFn, {reinterpret_cast<Word>(&name)})) {
    return reinterpret_cast<const char*>(static_cast<uintptr_t>(*inj));
  }
  auto it = env_.find(name);
  return it == env_.end() ? nullptr : it->second.c_str();
}

int VirtualLibc::UnsetEnv(const std::string& name) {
  static const FunctionId kFn = InternFunction("unsetenv");
  if (auto inj = Intercept(kFn, {reinterpret_cast<Word>(&name)})) {
    return static_cast<int>(*inj);
  }
  env_.erase(name);
  return 0;
}

// --- mutexes ---------------------------------------------------------------------------

int VirtualLibc::MutexLock(VMutex* m) {
  static const FunctionId kFn = InternFunction("pthread_mutex_lock");
  if (auto inj = Intercept(kFn, {reinterpret_cast<Word>(m)})) {
    return static_cast<int>(*inj);
  }
  MustDeref(m, "pthread_mutex_lock");
  ++m->held;
  return 0;
}

int VirtualLibc::MutexUnlock(VMutex* m) {
  static const FunctionId kFn = InternFunction("pthread_mutex_unlock");
  if (auto inj = Intercept(kFn, {reinterpret_cast<Word>(m)})) {
    return static_cast<int>(*inj);
  }
  MustDeref(m, "pthread_mutex_unlock");
  if (m->held <= 0) {
    // Undefined behaviour in POSIX; glibc error-checking mutexes abort, and
    // the MySQL bug in Table 1 manifests exactly this way.
    throw SimCrash(CrashKind::kDoubleUnlock, m->name);
  }
  --m->held;
  return 0;
}

// --- sockets ----------------------------------------------------------------------------

int VirtualLibc::Socket() {
  static const FunctionId kFn = InternFunction("socket");
  if (auto inj = Intercept(kFn, {})) {
    return static_cast<int>(*inj);
  }
  OpenFd f;
  f.is_socket = true;
  return AllocFd(std::move(f));
}

int VirtualLibc::BindSocket(int sockfd, int port) {
  static const FunctionId kFn = InternFunction("bind");
  if (auto inj = Intercept(kFn, {static_cast<Word>(sockfd), static_cast<Word>(port)})) {
    return static_cast<int>(*inj);
  }
  OpenFd* f = Fd(sockfd);
  if (f == nullptr || !f->is_socket) {
    errno_ = kEBADF;
    return -1;
  }
  if (!net_->Bind(port)) {
    errno_ = kEEXIST;
    return -1;
  }
  f->port = port;
  return 0;
}

long VirtualLibc::SendTo(int sockfd, const char* buf, unsigned long len, int dst_port) {
  static const FunctionId kFn = InternFunction("sendto");
  if (auto inj = Intercept(kFn, {static_cast<Word>(sockfd), reinterpret_cast<Word>(buf),
                                      static_cast<Word>(len), static_cast<Word>(dst_port)})) {
    return static_cast<long>(*inj);
  }
  OpenFd* f = Fd(sockfd);
  if (f == nullptr || !f->is_socket) {
    errno_ = kEBADF;
    return -1;
  }
  return net_->Send(f->port, dst_port, std::string(buf, len));
}

long VirtualLibc::RecvFrom(int sockfd, char* buf, unsigned long len, int* src_port) {
  static const FunctionId kFn = InternFunction("recvfrom");
  if (auto inj = Intercept(kFn, {static_cast<Word>(sockfd), reinterpret_cast<Word>(buf),
                                        static_cast<Word>(len),
                                        reinterpret_cast<Word>(src_port)})) {
    // A failed receive consumes the datagram it would have delivered: the
    // injected fault models receiver-side loss (buffer overrun, truncation),
    // so the message is gone, exactly like the paper's "deteriorated network
    // conditions".
    OpenFd* sock = Fd(sockfd);
    if (static_cast<long>(*inj) < 0 && sock != nullptr && sock->is_socket && sock->port >= 0) {
      Datagram dropped;
      net_->Receive(sock->port, &dropped);
    }
    return static_cast<long>(*inj);
  }
  OpenFd* f = Fd(sockfd);
  if (f == nullptr || !f->is_socket || f->port < 0) {
    errno_ = kEBADF;
    return -1;
  }
  Datagram dgram;
  if (!net_->Receive(f->port, &dgram)) {
    errno_ = kEAGAIN;
    return -1;
  }
  size_t n = std::min<size_t>(len, dgram.payload.size());
  std::memcpy(buf, dgram.payload.data(), n);
  if (src_port != nullptr) {
    *src_port = dgram.src_port;
  }
  return static_cast<long>(n);
}

// --- libxml ---------------------------------------------------------------------------------

VXmlWriter* VirtualLibc::XmlNewTextWriterDoc() {
  static const FunctionId kFn = InternFunction("xmlNewTextWriterDoc");
  if (auto inj = Intercept(kFn, {})) {
    return reinterpret_cast<VXmlWriter*>(static_cast<uintptr_t>(*inj));
  }
  VXmlWriter* w = new VXmlWriter;
  w->buffer = "<?xml version=\"1.0\"?>\n";
  open_writers_.insert(w);
  return w;
}

int VirtualLibc::XmlWriterWriteElement(VXmlWriter* w, const std::string& name,
                                       const std::string& text) {
  static const FunctionId kFn = InternFunction("xmlTextWriterWriteElement");
  if (auto inj = Intercept(kFn,
                           {reinterpret_cast<Word>(w), reinterpret_cast<Word>(&name),
                            reinterpret_cast<Word>(&text)})) {
    return static_cast<int>(*inj);
  }
  MustDeref(w, "xmlTextWriterWriteElement");
  w->buffer += "<" + name + ">" + XmlEscape(text) + "</" + name + ">\n";
  return 0;
}

std::string VirtualLibc::XmlFreeTextWriter(VXmlWriter* w) {
  MustDeref(w, "xmlFreeTextWriter");
  std::string out = std::move(w->buffer);
  open_writers_.erase(w);
  delete w;
  return out;
}

// --- libapr -----------------------------------------------------------------------------------

long VirtualLibc::AprFileRead(int fd, char* buf, unsigned long count) {
  static const FunctionId kFn = InternFunction("apr_file_read");
  if (auto inj = Intercept(kFn, {static_cast<Word>(fd), reinterpret_cast<Word>(buf),
                                             static_cast<Word>(count)})) {
    return static_cast<long>(*inj);
  }
  bool was_in = in_interposer_;
  in_interposer_ = true;
  long n = Read(fd, buf, count);
  in_interposer_ = was_in;
  return n;
}

int VirtualLibc::AprStat(VStat* st, int fd) {
  static const FunctionId kFn = InternFunction("apr_stat");
  if (auto inj = Intercept(kFn, {reinterpret_cast<Word>(st), static_cast<Word>(fd)})) {
    return static_cast<int>(*inj);
  }
  bool was_in = in_interposer_;
  in_interposer_ = true;
  int r = Fstat(fd, st);
  in_interposer_ = was_in;
  return r;
}

}  // namespace lfi
