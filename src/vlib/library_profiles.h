// Ground-truth fault profiles for the virtual libraries.
//
// These describe the error behaviour of the virtual libc / libxml / libapr
// implementations: which error return values each function produces and the
// errnos that accompany them. They serve three purposes:
//   1. stub_gen turns them into the library "binaries" the profiler analyzes
//      (tests assert the profiler recovers these profiles exactly);
//   2. the call-site analyzer consumes their error-code sets E;
//   3. injection scenarios draw (retval, errno) pairs from them.

#ifndef LFI_VLIB_LIBRARY_PROFILES_H_
#define LFI_VLIB_LIBRARY_PROFILES_H_

#include "profiler/fault_profile.h"

namespace lfi {

// The virtual libc's profile ("libc").
FaultProfile LibcProfile();

// The virtual libxml's profile ("libxml2").
FaultProfile LibxmlProfile();

// The virtual apr's profile ("libapr").
FaultProfile LibaprProfile();

}  // namespace lfi

#endif  // LFI_VLIB_LIBRARY_PROFILES_H_
