// The virtual call stack.
//
// LFI's call-stack trigger matches injections against the frames active when
// a library call is intercepted (module name + offset, the same identifiers
// the call-site analyzer emits). Applications maintain this stack through
// ScopedFrame guards: each application function pushes a frame on entry, and
// each library call site updates the frame's offset to the call instruction's
// address in the application binary -- the analogue of the return address a
// real backtrace() would show.

#ifndef LFI_VLIB_CALL_STACK_H_
#define LFI_VLIB_CALL_STACK_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lfi {

struct StackFrame {
  std::string module;    // e.g. "mini-git"
  std::string function;  // symbol, e.g. "read_ref"
  uint32_t offset = 0;   // current call-site offset within the module binary

  bool operator==(const StackFrame& o) const = default;
};

class CallStack {
 public:
  void Push(StackFrame frame) { frames_.push_back(std::move(frame)); }
  void Pop() {
    if (!frames_.empty()) {
      frames_.pop_back();
    }
  }
  bool empty() const { return frames_.empty(); }
  size_t depth() const { return frames_.size(); }
  const std::vector<StackFrame>& frames() const { return frames_; }
  StackFrame* top() { return frames_.empty() ? nullptr : &frames_.back(); }
  const StackFrame* top() const { return frames_.empty() ? nullptr : &frames_.back(); }

  // True when any active frame belongs to `module`.
  bool HasModule(const std::string& module) const {
    for (const auto& f : frames_) {
      if (f.module == module) {
        return true;
      }
    }
    return false;
  }

  // True when any active frame is `function` (optionally also matching module).
  bool HasFunction(const std::string& function) const {
    for (const auto& f : frames_) {
      if (f.function == function) {
        return true;
      }
    }
    return false;
  }

 private:
  std::vector<StackFrame> frames_;
};

// RAII frame guard. `set_offset` marks the current call site before each
// library call, mirroring how a return address pinpoints the call site.
class ScopedFrame {
 public:
  ScopedFrame(CallStack* stack, std::string module, std::string function)
      : stack_(stack) {
    stack_->Push(StackFrame{std::move(module), std::move(function), 0});
  }
  ~ScopedFrame() { stack_->Pop(); }
  ScopedFrame(const ScopedFrame&) = delete;
  ScopedFrame& operator=(const ScopedFrame&) = delete;

  void set_offset(uint32_t offset) {
    if (StackFrame* top = stack_->top()) {
      top->offset = offset;
    }
  }

 private:
  CallStack* stack_;
};

}  // namespace lfi

#endif  // LFI_VLIB_CALL_STACK_H_
