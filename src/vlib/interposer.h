// The interposition boundary between applications and virtual libraries.
//
// Every call an application makes into a virtual library (libc, libxml,
// libapr) is funneled through an Interposer before the real implementation
// runs -- the same place the paper's generated shim libraries occupy via
// LD_PRELOAD. The LFI runtime implements this interface; when no interposer
// is installed, calls pass straight through.
//
// The boundary is allocation-free (§7.4: interposition must be cheap enough
// to leave application behaviour undisturbed):
//   - functions cross as pre-interned FunctionIds -- each call site resolves
//     its id once, via a static local, against the process-wide
//     SymbolTable::Functions() -- so the runtime's lookups are array indexes,
//     not string hashes;
//   - arguments cross as machine words in a fixed-capacity inline ArgSpan
//     (the paper's stubs assume word-sized arguments because no prototypes
//     are available); pointer arguments carry the raw pointer value, and
//     triggers that know a function's signature may cast them back, exactly
//     like the va_arg-based triggers in §3.

#ifndef LFI_VLIB_INTERPOSER_H_
#define LFI_VLIB_INTERPOSER_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "util/symbol_table.h"

namespace lfi {

using Word = uint64_t;

// Owning heap-backed argument list. Not used on the interposition fast path
// (that is ArgSpan's job); kept for cold-path producers and tests that
// assemble argument lists incrementally, and for the string-keyed reference
// ablation that reproduces the historical per-call heap cost.
using ArgVec = std::vector<Word>;

// An interned intercepted-function name (dense id into
// SymbolTable::Functions()). Stable for the process lifetime only.
using FunctionId = SymbolId;

inline FunctionId InternFunction(std::string_view name) {
  return SymbolTable::Functions().Intern(name);
}

// The interned spelling of `id`; stable reference, lock-free.
inline const std::string& FunctionName(FunctionId id) {
  return SymbolTable::Functions().Name(id);
}

// The paper's stubs pass at most the six word-sized register arguments of
// the SysV ABI; no intercepted function in the virtual libraries takes more.
inline constexpr size_t kMaxArgs = 6;

// Fixed-capacity inline argument array: the word-sized arguments of one
// intercepted call, stored in place. Copying is a ~48-byte memcpy; building
// one never touches the heap, which is the point -- the seed's
// std::vector<Word> paid an allocation on every intercepted call.
class ArgSpan {
 public:
  constexpr ArgSpan() = default;

  // Both constructors clamp to kMaxArgs (asserting in debug builds): a
  // too-long list is truncated, never written past the inline array.
  ArgSpan(std::initializer_list<Word> args)
      : size_(args.size() < kMaxArgs ? args.size() : kMaxArgs) {
    assert(args.size() <= kMaxArgs);
    size_t i = 0;
    for (Word w : args) {
      if (i == size_) {
        break;
      }
      words_[i++] = w;
    }
  }

  // Cold-path convenience: lets ArgVec-building tests and controllers call
  // straight into ArgSpan consumers.
  ArgSpan(const ArgVec& args) : size_(args.size() < kMaxArgs ? args.size() : kMaxArgs) {
    assert(args.size() <= kMaxArgs);
    for (size_t i = 0; i < size_; ++i) {
      words_[i] = args[i];
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  Word operator[](size_t i) const {
    assert(i < size_);
    return words_[i];
  }
  const Word* begin() const { return words_; }
  const Word* end() const { return words_ + size_; }

  void push_back(Word w) {
    assert(size_ < kMaxArgs);
    if (size_ < kMaxArgs) {
      words_[size_++] = w;  // clamped, like the constructors: never overflow
    }
  }

 private:
  Word words_[kMaxArgs] = {};
  size_t size_ = 0;
};

class VirtualLibc;

// Outcome of consulting the interposer for one intercepted call.
struct InjectionDecision {
  bool inject = false;
  int64_t retval = 0;
  int errno_value = 0;  // 0 = do not touch errno
};

class Interposer {
 public:
  virtual ~Interposer() = default;

  // Called for every intercepted library call, before the implementation.
  // `function` is the call site's pre-interned id (FunctionName() recovers
  // the spelling). `libc` is the calling context (call stack, errno, helper
  // calls for triggers that inspect system state, e.g. fstat on an fd).
  virtual InjectionDecision OnCall(VirtualLibc* libc, FunctionId function,
                                   const ArgSpan& args) = 0;
};

}  // namespace lfi

#endif  // LFI_VLIB_INTERPOSER_H_
