// The interposition boundary between applications and virtual libraries.
//
// Every call an application makes into a virtual library (libc, libxml,
// libapr) is funneled through an Interposer before the real implementation
// runs -- the same place the paper's generated shim libraries occupy via
// LD_PRELOAD. The LFI runtime implements this interface; when no interposer
// is installed, calls pass straight through.
//
// All arguments cross the boundary as machine words (the paper's stubs assume
// word-sized arguments because no prototypes are available); pointer
// arguments carry the raw pointer value, and triggers that know a function's
// signature may cast them back, exactly like the va_arg-based triggers in §3.

#ifndef LFI_VLIB_INTERPOSER_H_
#define LFI_VLIB_INTERPOSER_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace lfi {

using Word = uint64_t;
using ArgVec = std::vector<Word>;

class VirtualLibc;

// Outcome of consulting the interposer for one intercepted call.
struct InjectionDecision {
  bool inject = false;
  int64_t retval = 0;
  int errno_value = 0;  // 0 = do not touch errno
};

class Interposer {
 public:
  virtual ~Interposer() = default;

  // Called for every intercepted library call, before the implementation.
  // `libc` is the calling context (call stack, errno, helper calls for
  // triggers that inspect system state, e.g. fstat on an fd).
  virtual InjectionDecision OnCall(VirtualLibc* libc, std::string_view function,
                                   const ArgVec& args) = 0;
};

}  // namespace lfi

#endif  // LFI_VLIB_INTERPOSER_H_
