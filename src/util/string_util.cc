#include "util/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace lfi {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) {
      out.emplace_back(s.substr(start, i - start));
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) {
    ++b;
  }
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
    --e;
  }
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::optional<int64_t> ParseInt(std::string_view s) {
  s = Trim(s);
  if (s.empty()) {
    return std::nullopt;
  }
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  int base = 10;
  size_t skip = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (s.size() > skip + 2 && s[skip] == '0' && (s[skip + 1] == 'x' || s[skip + 1] == 'X')) {
    base = 16;
  }
  long long v = std::strtoll(buf.c_str(), &end, base);
  if (errno != 0 || end == buf.c_str() || *end != '\0') {
    return std::nullopt;
  }
  return static_cast<int64_t>(v);
}

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string Join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) {
      out.append(sep);
    }
    out.append(items[i]);
  }
  return out;
}

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace lfi
