// Binary encoding primitives for the extent journal (core/extent_journal.h).
//
// Everything here is deterministic and self-contained: LEB128 varints,
// zigzag for signed values, CRC-32 (the IEEE polynomial every archive
// format uses), and a small greedy LZ77 codec so extents can opt into
// compression without an external library. docs/journal-format.md specifies
// the bit layouts; this header is their one implementation.

#ifndef LFI_UTIL_BINARY_IO_H_
#define LFI_UTIL_BINARY_IO_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace lfi {

// CRC-32 (reflected, polynomial 0xEDB88320, init/final XOR 0xFFFFFFFF) of
// `data` -- the checksum zlib, gzip, and PNG compute.
uint32_t Crc32(std::string_view data);

// Maps signed values onto unsigned ones so small magnitudes of either sign
// stay short as varints: 0,-1,1,-2,... -> 0,1,2,3,...
inline uint64_t ZigZagEncode(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^ static_cast<uint64_t>(value >> 63);
}
inline int64_t ZigZagDecode(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^ -static_cast<int64_t>(value & 1);
}

// Append-only little-endian byte sink over a std::string.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      PutU8(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      PutU8(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  // Unsigned LEB128: 7 value bits per byte, high bit = continuation.
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      PutU8(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    PutU8(static_cast<uint8_t>(v));
  }
  void PutSigned(int64_t v) { PutVarint(ZigZagEncode(v)); }
  void PutBytes(std::string_view bytes) { buffer_.append(bytes); }

  const std::string& buffer() const { return buffer_; }
  std::string TakeBuffer() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }
  void Clear() { buffer_.clear(); }

 private:
  std::string buffer_;
};

// Bounds-checked reader over a byte span. Any out-of-range read latches
// ok() to false and returns zeroes; callers check ok() once per region
// instead of after every field.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  uint8_t GetU8() {
    if (pos_ >= data_.size()) {
      ok_ = false;
      return 0;
    }
    return static_cast<uint8_t>(data_[pos_++]);
  }
  uint32_t GetU32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(GetU8()) << (8 * i);
    }
    return v;
  }
  uint64_t GetU64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(GetU8()) << (8 * i);
    }
    return v;
  }
  uint64_t GetVarint() {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      uint8_t byte = GetU8();
      v |= static_cast<uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        return v;
      }
    }
    ok_ = false;  // > 10 continuation bytes: not a valid 64-bit varint
    return 0;
  }
  int64_t GetSigned() { return ZigZagDecode(GetVarint()); }
  std::string_view GetBytes(size_t n) {
    if (n > data_.size() - pos_ || pos_ > data_.size()) {
      ok_ = false;
      return {};
    }
    std::string_view out = data_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ >= data_.size(); }
  size_t pos() const { return pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// Greedy LZ77 with byte-granular tokens (journal-format.md "Compression"):
//   token < 0x80   literal run of token+1 bytes, raw bytes follow
//   token >= 0x80  match of (token & 0x7F) + 4 bytes at varint distance back
// Deterministic for a given input, which the journal's bit-identity
// contracts rely on. Compression never fails; decompression returns nullopt
// on malformed input or when the output does not come to exactly raw_size.
std::string LzCompress(std::string_view data);
std::optional<std::string> LzDecompress(std::string_view data, size_t raw_size);

}  // namespace lfi

#endif  // LFI_UTIL_BINARY_IO_H_
