// Small string helpers shared across the tool chain.

#ifndef LFI_UTIL_STRING_UTIL_H_
#define LFI_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lfi {

// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

// Splits on any run of whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

// Removes leading and trailing whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// Parses a signed integer in decimal, or hex when prefixed with 0x. Returns
// nullopt on any malformed input (no partial parses).
std::optional<int64_t> ParseInt(std::string_view s);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Joins the items with `sep` between them.
std::string Join(const std::vector<std::string>& items, std::string_view sep);

// Lowercases ASCII characters.
std::string AsciiLower(std::string_view s);

// Escapes a string for embedding in a JSON string literal: quotes,
// backslashes, and control characters (as \uXXXX).
std::string JsonEscape(std::string_view s);

}  // namespace lfi

#endif  // LFI_UTIL_STRING_UTIL_H_
