// Deterministic pseudo-random number generation.
//
// Everything in this repository that needs randomness (random triggers, packet
// loss, workload generators) draws from an explicitly seeded Rng so that tests
// and benchmark runs are reproducible bit for bit.

#ifndef LFI_UTIL_RNG_H_
#define LFI_UTIL_RNG_H_

#include <cstdint>

namespace lfi {

// xorshift64* generator. Small, fast, and deterministic across platforms,
// which is all the fault-injection campaign needs (no crypto use).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(Scramble(seed)) {}

  // Returns a uniformly distributed 64-bit value.
  uint64_t Next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545f4914f6cdd1dull;
  }

  // Returns a value in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  // Returns a double uniformly distributed in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) / 9007199254740992.0; }

  // Returns true with the given probability (clamped to [0, 1]).
  bool Chance(double probability) {
    if (probability <= 0.0) {
      return false;
    }
    if (probability >= 1.0) {
      return true;
    }
    return NextDouble() < probability;
  }

  // Returns a value in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

 private:
  // splitmix64 finalizer: decorrelates small sequential seeds (1, 2, 3, ...)
  // so per-trial streams are independent.
  static uint64_t Scramble(uint64_t seed) {
    uint64_t z = seed + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z = z ^ (z >> 31);
    return z ? z : 1;
  }

  uint64_t state_;
};

}  // namespace lfi

#endif  // LFI_UTIL_RNG_H_
