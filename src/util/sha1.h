// SHA-1 message digest (FIPS 180-1).
//
// The mini-Git application (src/apps/git) is a content-addressed object store,
// exactly like the real Git it stands in for, so it needs a real SHA-1. This is
// a from-scratch implementation with a streaming interface.

#ifndef LFI_UTIL_SHA1_H_
#define LFI_UTIL_SHA1_H_

#include <array>
#include <cstdint>
#include <cstddef>
#include <string>
#include <string_view>

namespace lfi {

class Sha1 {
 public:
  static constexpr size_t kDigestSize = 20;

  Sha1();

  // Absorbs more input. May be called any number of times before Finish().
  void Update(const void* data, size_t len);
  void Update(std::string_view s) { Update(s.data(), s.size()); }

  // Completes the digest. The object must not be reused afterwards.
  std::array<uint8_t, kDigestSize> Finish();

  // One-shot convenience: returns the 40-character lowercase hex digest.
  static std::string HexDigest(std::string_view data);

  // Renders a finished digest as 40 lowercase hex characters (what streaming
  // callers pair with Update/Finish to get HexDigest without the one-shot
  // input string).
  static std::string ToHex(const std::array<uint8_t, kDigestSize>& digest);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t h_[5];
  uint64_t total_bits_ = 0;
  uint8_t buffer_[64];
  size_t buffered_ = 0;
};

}  // namespace lfi

#endif  // LFI_UTIL_SHA1_H_
