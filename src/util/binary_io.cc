#include "util/binary_io.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <vector>

namespace lfi {

uint32_t Crc32(std::string_view data) {
  // Slicing-by-8 (zlib's technique): table[k][b] is the CRC of byte b
  // followed by k zero bytes, so eight bytes fold in per iteration. Same
  // polynomial and result as the classic one-byte-per-step table walk --
  // journal checksums cover every extent payload, so this is a measurable
  // slice of journal load time.
  static const std::array<std::array<uint32_t, 256>, 8> kTable = [] {
    std::array<std::array<uint32_t, 256>, 8> table{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) != 0 ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
      }
      table[0][i] = crc;
    }
    for (size_t k = 1; k < 8; ++k) {
      for (uint32_t i = 0; i < 256; ++i) {
        table[k][i] = (table[k - 1][i] >> 8) ^ table[0][table[k - 1][i] & 0xFF];
      }
    }
    return table;
  }();
  auto u32 = [](const unsigned char* p) {
    return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
  };
  uint32_t crc = 0xFFFFFFFFu;
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data.data());
  size_t n = data.size();
  while (n >= 8) {
    uint32_t lo = crc ^ u32(p);
    uint32_t hi = u32(p + 4);
    crc = kTable[7][lo & 0xFF] ^ kTable[6][(lo >> 8) & 0xFF] ^ kTable[5][(lo >> 16) & 0xFF] ^
          kTable[4][lo >> 24] ^ kTable[3][hi & 0xFF] ^ kTable[2][(hi >> 8) & 0xFF] ^
          kTable[1][(hi >> 16) & 0xFF] ^ kTable[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (; n != 0; --n, ++p) {
    crc = kTable[0][(crc ^ *p) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 0x7F + kMinMatch;  // 131
constexpr size_t kMaxLiteralRun = 128;
constexpr int kHashBits = 15;

uint32_t Hash4(std::string_view data, size_t pos) {
  uint32_t v = static_cast<uint8_t>(data[pos]) |
               (static_cast<uint32_t>(static_cast<uint8_t>(data[pos + 1])) << 8) |
               (static_cast<uint32_t>(static_cast<uint8_t>(data[pos + 2])) << 16) |
               (static_cast<uint32_t>(static_cast<uint8_t>(data[pos + 3])) << 24);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void EmitLiterals(std::string_view data, size_t begin, size_t end, std::string* out) {
  while (begin < end) {
    size_t run = std::min(kMaxLiteralRun, end - begin);
    out->push_back(static_cast<char>(run - 1));
    out->append(data.substr(begin, run));
    begin += run;
  }
}

void EmitVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

}  // namespace

std::string LzCompress(std::string_view data) {
  std::string out;
  if (data.empty()) {
    return out;
  }
  out.reserve(data.size() / 2);
  // Last-occurrence hash chain of length one: greedy, fast, deterministic.
  std::vector<uint32_t> table(size_t{1} << kHashBits, 0xFFFFFFFFu);
  size_t literal_start = 0;
  size_t pos = 0;
  while (pos + kMinMatch <= data.size()) {
    uint32_t slot = Hash4(data, pos);
    uint32_t candidate = table[slot];
    table[slot] = static_cast<uint32_t>(pos);
    if (candidate != 0xFFFFFFFFu &&
        data.compare(candidate, kMinMatch, data.substr(pos, kMinMatch)) == 0) {
      size_t limit = std::min(kMaxMatch, data.size() - pos);
      size_t len = kMinMatch;
      while (len < limit && data[candidate + len] == data[pos + len]) {
        ++len;
      }
      EmitLiterals(data, literal_start, pos, &out);
      out.push_back(static_cast<char>(0x80 | (len - kMinMatch)));
      EmitVarint(pos - candidate, &out);
      pos += len;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  EmitLiterals(data, literal_start, data.size(), &out);
  return out;
}

std::optional<std::string> LzDecompress(std::string_view data, size_t raw_size) {
  // Decompression is on the journal-load hot path (every record read passes
  // through here), so this works on raw pointers into a pre-sized buffer
  // rather than through ByteReader/std::string growth: every branch below
  // still bounds-checks against both the input and `raw_size` before it
  // copies.
  std::string out;
  out.resize(raw_size);
  char* dst = out.data();
  size_t w = 0;
  const char* p = data.data();
  const char* const end = p + data.size();
  while (p < end) {
    uint8_t token = static_cast<uint8_t>(*p++);
    if (token < 0x80) {
      size_t run = size_t{token} + 1;
      if (static_cast<size_t>(end - p) < run || raw_size - w < run) {
        return std::nullopt;
      }
      std::memcpy(dst + w, p, run);
      p += run;
      w += run;
    } else {
      size_t len = size_t(token & 0x7F) + kMinMatch;
      uint64_t distance = 0;
      int shift = 0;
      while (true) {
        if (p >= end || shift > 63) {
          return std::nullopt;
        }
        uint8_t b = static_cast<uint8_t>(*p++);
        distance |= uint64_t(b & 0x7F) << shift;
        if ((b & 0x80) == 0) {
          break;
        }
        shift += 7;
      }
      if (distance == 0 || distance > w || raw_size - w < len) {
        return std::nullopt;
      }
      size_t src = w - static_cast<size_t>(distance);
      if (distance >= len) {
        std::memcpy(dst + w, dst + src, len);
      } else {
        // Byte-at-a-time so overlapping matches (distance < len) replicate,
        // the way LZ77 run-length encoding relies on.
        for (size_t i = 0; i < len; ++i) {
          dst[w + i] = dst[src + i];
        }
      }
      w += len;
    }
  }
  if (w != raw_size) {
    return std::nullopt;
  }
  return out;
}

}  // namespace lfi
