#include "util/work_queue.h"

#include <atomic>
#include <exception>
#include <thread>
#include <vector>

namespace lfi {

void WorkStealingQueue::Push(size_t job) {
  std::lock_guard<std::mutex> lock(mu_);
  jobs_.push_back(job);
}

bool WorkStealingQueue::PopFront(size_t* job) {
  std::lock_guard<std::mutex> lock(mu_);
  if (jobs_.empty()) {
    return false;
  }
  *job = jobs_.front();
  jobs_.pop_front();
  return true;
}

bool WorkStealingQueue::StealBack(size_t* job) {
  std::lock_guard<std::mutex> lock(mu_);
  if (jobs_.empty()) {
    return false;
  }
  *job = jobs_.back();
  jobs_.pop_back();
  return true;
}

int WorkerPool::ResolveWorkers(int workers) {
  if (workers > 0) {
    return workers;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void WorkerPool::ParallelFor(int workers, size_t job_count,
                             const std::function<void(size_t job, int worker)>& body) {
  workers = ResolveWorkers(workers);
  if (job_count == 0) {
    return;
  }
  if (workers == 1 || job_count == 1) {
    for (size_t i = 0; i < job_count; ++i) {
      body(i, 0);
    }
    return;
  }
  if (static_cast<size_t>(workers) > job_count) {
    workers = static_cast<int>(job_count);
  }

  std::vector<WorkStealingQueue> queues(static_cast<size_t>(workers));
  for (size_t i = 0; i < job_count; ++i) {
    queues[i % static_cast<size_t>(workers)].Push(i);
  }

  std::atomic<bool> abort{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker_main = [&](int me) {
    size_t job;
    while (!abort.load(std::memory_order_acquire)) {
      bool have = queues[static_cast<size_t>(me)].PopFront(&job);
      if (!have) {
        // Own queue drained: steal the back of the first non-empty sibling.
        for (int step = 1; step < workers && !have; ++step) {
          int victim = (me + step) % workers;
          have = queues[static_cast<size_t>(victim)].StealBack(&job);
        }
      }
      if (!have) {
        return;  // every queue empty: batch done
      }
      try {
        body(job, me);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error == nullptr) {
            first_error = std::current_exception();
          }
        }
        abort.store(true, std::memory_order_release);
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers) - 1);
  for (int i = 1; i < workers; ++i) {
    threads.emplace_back(worker_main, i);
  }
  worker_main(0);
  for (std::thread& t : threads) {
    t.join();
  }
  if (first_error != nullptr) {
    std::rethrow_exception(first_error);
  }
}

}  // namespace lfi
