#include "util/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "util/string_util.h"

namespace lfi {

Failpoints& Failpoints::Instance() {
  static Failpoints* instance = new Failpoints();  // leaked: process lifetime
  return *instance;
}

Failpoints::Failpoints() {
  const char* env = std::getenv("LFI_FAILPOINTS");
  if (env != nullptr && env[0] != '\0') {
    Arm(env);  // a malformed env spec arms nothing; Arm reports via *error
  }
}

bool Failpoints::ParseSpec(const std::string& spec, std::vector<Entry>* out,
                           std::string* error) {
  auto fail = [&](std::string message) {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return false;
  };
  for (const std::string& part : Split(spec, ',')) {
    if (part.empty()) {
      continue;
    }
    Entry entry;
    std::string body = part;
    // "scope:name=action" -- the scope separator is the first ':' before
    // '='; the action's own ':' (exit:N) comes after it.
    size_t eq = body.find('=');
    if (eq == std::string::npos) {
      return fail("failpoint '" + part + "' is missing its =action");
    }
    size_t colon = body.find(':');
    if (colon != std::string::npos && colon < eq) {
      entry.scope = body.substr(0, colon);
      body = body.substr(colon + 1);
      eq = body.find('=');
    }
    entry.name = body.substr(0, eq);
    std::string action = body.substr(eq + 1);
    size_t at = action.rfind('@');
    if (at != std::string::npos) {
      auto hit = ParseInt(action.substr(at + 1));
      if (!hit || *hit < 1) {
        return fail("failpoint '" + part + "' has a bad @hit count");
      }
      entry.fire_at = static_cast<size_t>(*hit);
      action = action.substr(0, at);
    }
    if (action == "error") {
      entry.action = Action::kError;
    } else if (action == "hang") {
      entry.action = Action::kHang;
    } else if (action == "exit" || action.rfind("exit:", 0) == 0) {
      entry.action = Action::kExit;
      if (action.size() > 5) {
        auto code = ParseInt(action.substr(5));
        if (!code) {
          return fail("failpoint '" + part + "' has a bad exit code");
        }
        entry.exit_code = static_cast<int>(*code);
      }
    } else {
      return fail("failpoint '" + part + "' names unknown action '" + action +
                  "' (error|exit[:N]|hang)");
    }
    if (entry.name.empty()) {
      return fail("failpoint '" + part + "' has an empty name");
    }
    out->push_back(std::move(entry));
  }
  return true;
}

bool Failpoints::Arm(const std::string& spec, std::string* error) {
  std::vector<Entry> entries;
  if (!ParseSpec(spec, &entries, error)) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  entries_ = std::move(entries);
  release_hangs_.store(false, std::memory_order_release);
  any_armed_.store(!entries_.empty(), std::memory_order_release);
  return true;
}

void Failpoints::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  any_armed_.store(false, std::memory_order_release);
  release_hangs_.store(true, std::memory_order_release);
}

void Failpoints::SetScope(std::string scope) {
  std::lock_guard<std::mutex> lock(mu_);
  scope_ = std::move(scope);
}

std::string Failpoints::scope() const {
  std::lock_guard<std::mutex> lock(mu_);
  return scope_;
}

bool Failpoints::Fire(const char* name) {
  Action action = Action::kError;
  int exit_code = 0;
  bool fired = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Entry& entry : entries_) {
      if (entry.spent || entry.name != name ||
          (!entry.scope.empty() && entry.scope != scope_)) {
        continue;
      }
      if (++entry.hits < entry.fire_at) {
        continue;
      }
      entry.spent = true;
      action = entry.action;
      exit_code = entry.exit_code;
      fired = true;
      break;
    }
  }
  if (!fired) {
    return false;
  }
  switch (action) {
    case Action::kError:
      return true;
    case Action::kExit:
      // A crash, not an exit: no destructors, no atexit, mid-operation --
      // exactly what the supervisor must tolerate.
      std::_Exit(exit_code);
    case Action::kHang:
      // Parks until Clear() (the watchdog's detach leaves this thread
      // behind; releasing it on Clear keeps test processes leak-free).
      while (!release_hangs_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return true;  // released late: report the operation as failed
  }
  return true;
}

}  // namespace lfi
