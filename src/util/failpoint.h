// Deterministic failpoints: scripted faults in the orchestrator itself.
//
// The campaign layer injects faults into *targets*; this registry injects
// them into the campaign machinery -- fork, journal append/finalize, the
// merge rename, a child's startup -- so the supervision and recovery paths
// (apps/common/shard_supervisor.h) can be chaos-tested deterministically.
// Production code evaluates `FailpointFired("name")` at each fallible
// operation; the call is a cheap atomic check when nothing is armed.
//
// Arming is a comma-separated spec string, from the LFI_FAILPOINTS
// environment variable or CampaignSpec::failpoints:
//
//   [scope:]name=action[@hit]
//
//   action   error     FailpointFired returns true; the caller simulates
//                      the operation failing (its normal error path runs).
//            exit[:N]  the process dies on the spot via _Exit(N) (default
//                      9), no destructors -- a crash.
//            hang      the evaluating thread blocks until Clear() releases
//                      it -- a hung child or job.
//   @hit     fire on the K-th matching evaluation (default 1), once.
//   scope:   only fire in a process whose scope (SetScope) equals this;
//            scopeless entries fire in any process. The campaign driver
//            scopes shard children "shard<I>" / "epoch<E>.shard<I>", so one
//            spec string can script "shard 2 dies in epoch 1" and ride the
//            spec wire format to every child untouched.
//
// Arm() replaces the whole armed set (the spec string is the complete
// schedule), so re-arming an inherited registry in a forked child is
// idempotent. Hit counters are per-entry and one-shot: retried children,
// which the supervisor respawns with the failpoints stripped, run clean.

#ifndef LFI_UTIL_FAILPOINT_H_
#define LFI_UTIL_FAILPOINT_H_

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

namespace lfi {

class Failpoints {
 public:
  // Process-wide registry. First use arms from $LFI_FAILPOINTS (empty or
  // unset = nothing armed) so exec'd children inherit schedules without
  // plumbing.
  static Failpoints& Instance();

  // Replaces the armed set with the entries in `spec` ("" disarms
  // everything, like Clear). False + *error on a malformed spec; the
  // previous set stays armed.
  bool Arm(const std::string& spec, std::string* error = nullptr);

  // Disarms everything and releases threads parked in a hang action.
  void Clear();

  // The process scope matched against entry scope prefixes. "" (the
  // default) matches only scopeless entries.
  void SetScope(std::string scope);
  std::string scope() const;

  // Evaluates the failpoint: false when unarmed, scope-mismatched, or the
  // hit count has not been reached. exit entries _Exit the process here;
  // hang entries block here until Clear(); error entries return true
  // exactly once.
  bool Fire(const char* name);

  bool armed() const { return any_armed_.load(std::memory_order_acquire); }

 private:
  Failpoints();

  enum class Action { kError, kExit, kHang };
  struct Entry {
    std::string scope;  // "" = any process
    std::string name;
    Action action = Action::kError;
    int exit_code = 9;
    size_t fire_at = 1;  // fire on the fire_at-th matching evaluation
    size_t hits = 0;     // matching evaluations so far
    bool spent = false;  // fired already (one-shot)
  };

  static bool ParseSpec(const std::string& spec, std::vector<Entry>* out,
                        std::string* error);

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  std::string scope_;
  std::atomic<bool> any_armed_{false};
  std::atomic<bool> release_hangs_{false};
};

// The evaluation call production code uses. True = the caller must fail the
// operation it guards (the entry's action was `error`).
inline bool FailpointFired(const char* name) {
  Failpoints& fp = Failpoints::Instance();
  return fp.armed() && fp.Fire(name);
}

}  // namespace lfi

#endif  // LFI_UTIL_FAILPOINT_H_
