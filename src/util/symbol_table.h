// Process-wide string interning for the interposition fast path.
//
// The universe of names crossing the LFI hot loop is small and fixed: the
// ~40 intercepted library functions ("read", "malloc", "apr_file_read", ...)
// and the applications' coverage block ids ("git.read_object.body", ...).
// A SymbolTable maps each such name to a dense uint32_t id exactly once, so
// every per-call data structure (association lookup, call counters, coverage
// hit counters) becomes a plain array indexed by id instead of a string-keyed
// map probed with full hashes and compares on every intercepted call.
//
// Concurrency: Intern() and Find() are fully thread-safe (campaign workers
// intern concurrently). Name() is lock-free -- a single atomic load plus an
// array index -- because ids are only ever observed by a thread after a
// happens-before edge from the interning thread (a magic-static initializer,
// the campaign engine's merge mutex, ...), and interned entries are
// append-only and immutable. This is what keeps id->name resolution off the
// contended path: the §7.4 hot loop never takes a lock.
//
// Ids are dense and stable for the lifetime of the process but NOT stable
// across processes (they depend on interning order); anything persisted or
// compared across runs must use the name, never the id.

#ifndef LFI_UTIL_SYMBOL_TABLE_H_
#define LFI_UTIL_SYMBOL_TABLE_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace lfi {

using SymbolId = uint32_t;

class SymbolTable {
 public:
  SymbolTable() = default;
  ~SymbolTable();

  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  // Returns the id for `name`, interning it on first sight. Idempotent:
  // every call with the same name returns the same id.
  SymbolId Intern(std::string_view name);

  // Looks `name` up without interning; nullopt when never interned.
  std::optional<SymbolId> Find(std::string_view name) const;

  // The interned spelling of `id`. The reference is stable for the process
  // lifetime. Lock-free. `id` must come from this table's Intern().
  const std::string& Name(SymbolId id) const {
    return chunks_[id >> kChunkShift].load(std::memory_order_acquire)[id & kChunkMask];
  }

  size_t size() const;

  // The two process-wide id spaces of the fast path.
  static SymbolTable& Functions();  // intercepted library function names
  static SymbolTable& Blocks();     // coverage basic-block ids

 private:
  // Interned names live in fixed-size chunks that are allocated once and
  // never moved, so Name() needs no lock and references never dangle.
  static constexpr size_t kChunkShift = 8;
  static constexpr size_t kChunkSize = size_t{1} << kChunkShift;  // 256 names
  static constexpr size_t kChunkMask = kChunkSize - 1;
  static constexpr size_t kMaxChunks = 4096;  // 1M symbols: far above any use

  mutable std::shared_mutex mu_;
  std::unordered_map<std::string_view, SymbolId> index_;  // views into chunks
  std::atomic<std::string*> chunks_[kMaxChunks] = {};
  size_t size_ = 0;  // guarded by mu_
};

}  // namespace lfi

#endif  // LFI_UTIL_SYMBOL_TABLE_H_
