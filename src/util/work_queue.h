// Work-stealing job scheduling for the parallel campaign engine.
//
// A campaign is a finite batch of independent jobs known up front, so the
// scheduler is deliberately simple: every worker owns a double-ended queue
// seeded round-robin, drains it FIFO from the front, and -- once empty --
// steals from the back of a sibling's queue. Stealing from the opposite end
// keeps contention low (owner and thieves touch different ends) and tends to
// migrate the largest remaining chunks, the classic Cilk/TBB argument.

#ifndef LFI_UTIL_WORK_QUEUE_H_
#define LFI_UTIL_WORK_QUEUE_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>

namespace lfi {

// One worker's deque of job indices. Thread-safe; the owner pops from the
// front, thieves steal from the back.
class WorkStealingQueue {
 public:
  void Push(size_t job);
  bool PopFront(size_t* job);
  bool StealBack(size_t* job);

 private:
  mutable std::mutex mu_;
  std::deque<size_t> jobs_;
};

class WorkerPool {
 public:
  // Maps the user-facing worker-count convention to a concrete count:
  // <= 0 means one worker per hardware thread, anything else is taken as is.
  static int ResolveWorkers(int workers);

  // Runs body(job_index, worker_index) exactly once for every index in
  // [0, job_count), sharded across `workers` threads with work stealing.
  // With one worker the body runs inline on the calling thread, preserving
  // exact serial semantics. The first exception thrown by a body is
  // rethrown on the calling thread after all workers have joined.
  static void ParallelFor(int workers, size_t job_count,
                          const std::function<void(size_t job, int worker)>& body);
};

}  // namespace lfi

#endif  // LFI_UTIL_WORK_QUEUE_H_
