#include "util/symbol_table.h"

#include <mutex>
#include <stdexcept>

namespace lfi {

SymbolTable::~SymbolTable() {
  for (auto& chunk : chunks_) {
    delete[] chunk.load(std::memory_order_relaxed);
  }
}

SymbolId SymbolTable::Intern(std::string_view name) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = index_.find(name);
    if (it != index_.end()) {
      return it->second;  // the steady state: every name after its first use
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(name);
  if (it != index_.end()) {
    return it->second;  // another thread interned it between the locks
  }
  size_t chunk_index = size_ >> kChunkShift;
  if (chunk_index >= kMaxChunks) {
    throw std::length_error("SymbolTable: symbol universe exceeded");
  }
  std::string* chunk = chunks_[chunk_index].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new std::string[kChunkSize];
    chunks_[chunk_index].store(chunk, std::memory_order_release);
  }
  SymbolId id = static_cast<SymbolId>(size_);
  std::string& stored = chunk[size_ & kChunkMask];
  stored.assign(name);
  index_.emplace(std::string_view(stored), id);
  ++size_;
  return id;
}

std::optional<SymbolId> SymbolTable::Find(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(name);
  return it == index_.end() ? std::nullopt : std::optional<SymbolId>(it->second);
}

size_t SymbolTable::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return size_;
}

SymbolTable& SymbolTable::Functions() {
  static SymbolTable* table = new SymbolTable;
  return *table;
}

SymbolTable& SymbolTable::Blocks() {
  static SymbolTable* table = new SymbolTable;
  return *table;
}

}  // namespace lfi
