#include "util/sha1.h"

#include <cstring>

namespace lfi {
namespace {

inline uint32_t Rotl(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

}  // namespace

Sha1::Sha1() {
  h_[0] = 0x67452301u;
  h_[1] = 0xefcdab89u;
  h_[2] = 0x98badcfeu;
  h_[3] = 0x10325476u;
  h_[4] = 0xc3d2e1f0u;
}

void Sha1::ProcessBlock(const uint8_t* block) {
  uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[i * 4]) << 24) |
           (static_cast<uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = Rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  uint32_t a = h_[0];
  uint32_t b = h_[1];
  uint32_t c = h_[2];
  uint32_t d = h_[3];
  uint32_t e = h_[4];

  for (int i = 0; i < 80; ++i) {
    uint32_t f;
    uint32_t k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdcu;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6u;
    }
    uint32_t tmp = Rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = Rotl(b, 30);
    b = a;
    a = tmp;
  }

  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::Update(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  total_bits_ += static_cast<uint64_t>(len) * 8;
  while (len > 0) {
    size_t take = 64 - buffered_;
    if (take > len) {
      take = len;
    }
    std::memcpy(buffer_ + buffered_, p, take);
    buffered_ += take;
    p += take;
    len -= take;
    if (buffered_ == 64) {
      ProcessBlock(buffer_);
      buffered_ = 0;
    }
  }
}

std::array<uint8_t, Sha1::kDigestSize> Sha1::Finish() {
  uint64_t bits = total_bits_;
  uint8_t pad = 0x80;
  Update(&pad, 1);
  uint8_t zero = 0;
  while (buffered_ != 56) {
    Update(&zero, 1);
  }
  uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<uint8_t>(bits >> (56 - i * 8));
  }
  // Bypass Update so total_bits_ is not disturbed by the length field itself.
  std::memcpy(buffer_ + buffered_, len_be, 8);
  ProcessBlock(buffer_);

  std::array<uint8_t, kDigestSize> out;
  for (int i = 0; i < 5; ++i) {
    out[i * 4] = static_cast<uint8_t>(h_[i] >> 24);
    out[i * 4 + 1] = static_cast<uint8_t>(h_[i] >> 16);
    out[i * 4 + 2] = static_cast<uint8_t>(h_[i] >> 8);
    out[i * 4 + 3] = static_cast<uint8_t>(h_[i]);
  }
  return out;
}

std::string Sha1::HexDigest(std::string_view data) {
  Sha1 h;
  h.Update(data);
  return ToHex(h.Finish());
}

std::string Sha1::ToHex(const std::array<uint8_t, kDigestSize>& digest) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(kDigestSize * 2);
  for (uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xf]);
  }
  return out;
}

}  // namespace lfi
