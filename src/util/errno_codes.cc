#include "util/errno_codes.h"

#include <utility>
#include <vector>

#include "util/string_util.h"

namespace lfi {
namespace {

const std::vector<std::pair<int, const char*>>& Table() {
  static const std::vector<std::pair<int, const char*>> kTable = {
      {kEOK, "EOK"},
      {kEPERM, "EPERM"},
      {kENOENT, "ENOENT"},
      {kESRCH, "ESRCH"},
      {kEINTR, "EINTR"},
      {kEIO, "EIO"},
      {kENXIO, "ENXIO"},
      {kEBADF, "EBADF"},
      {kEAGAIN, "EAGAIN"},
      {kENOMEM, "ENOMEM"},
      {kEACCES, "EACCES"},
      {kEFAULT, "EFAULT"},
      {kEBUSY, "EBUSY"},
      {kEEXIST, "EEXIST"},
      {kEXDEV, "EXDEV"},
      {kENODEV, "ENODEV"},
      {kENOTDIR, "ENOTDIR"},
      {kEISDIR, "EISDIR"},
      {kEINVAL, "EINVAL"},
      {kENFILE, "ENFILE"},
      {kEMFILE, "EMFILE"},
      {kENOTTY, "ENOTTY"},
      {kEFBIG, "EFBIG"},
      {kENOSPC, "ENOSPC"},
      {kESPIPE, "ESPIPE"},
      {kEROFS, "EROFS"},
      {kEMLINK, "EMLINK"},
      {kEPIPE, "EPIPE"},
      {kEDOM, "EDOM"},
      {kERANGE, "ERANGE"},
      {kEDEADLK, "EDEADLK"},
      {kENAMETOOLONG, "ENAMETOOLONG"},
      {kENOSYS, "ENOSYS"},
      {kENOTEMPTY, "ENOTEMPTY"},
      {kELOOP, "ELOOP"},
      {kEMSGSIZE, "EMSGSIZE"},
      {kECONNRESET, "ECONNRESET"},
      {kENOBUFS, "ENOBUFS"},
      {kENOTCONN, "ENOTCONN"},
      {kETIMEDOUT, "ETIMEDOUT"},
      {kECONNREFUSED, "ECONNREFUSED"},
      {kEHOSTUNREACH, "EHOSTUNREACH"},
  };
  return kTable;
}

}  // namespace

std::string ErrnoName(int value) {
  for (const auto& [v, name] : Table()) {
    if (v == value) {
      return name;
    }
  }
  return StrFormat("E%d", value);
}

std::optional<int> ErrnoFromName(std::string_view name) {
  for (const auto& [v, n] : Table()) {
    if (name == n) {
      return v;
    }
  }
  // Invert the "E<value>" fallback ErrnoName emits for unnamed errnos, and
  // keep accepting bare decimal values.
  if (!name.empty() && name[0] == 'E') {
    auto fallback = ParseInt(name.substr(1));
    if (fallback && *fallback >= 0 && *fallback < 4096) {
      return static_cast<int>(*fallback);
    }
  }
  auto parsed = ParseInt(name);
  if (parsed && *parsed >= 0 && *parsed < 4096) {
    return static_cast<int>(*parsed);
  }
  return std::nullopt;
}

}  // namespace lfi
