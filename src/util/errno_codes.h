// Virtual-platform errno values.
//
// The virtual libc (src/vlib) communicates error side effects through a
// thread-local errno, exactly like the real platform LFI targets. The values
// mirror Linux numbering; names use a k-prefix because <cerrno> reserves the
// bare identifiers as macros. Scenario files and fault profiles refer to
// errnos by their conventional names ("EINTR"), so bidirectional name/value
// mapping lives here too.

#ifndef LFI_UTIL_ERRNO_CODES_H_
#define LFI_UTIL_ERRNO_CODES_H_

#include <optional>
#include <string>
#include <string_view>

namespace lfi {

inline constexpr int kEOK = 0;
inline constexpr int kEPERM = 1;
inline constexpr int kENOENT = 2;
inline constexpr int kESRCH = 3;
inline constexpr int kEINTR = 4;
inline constexpr int kEIO = 5;
inline constexpr int kENXIO = 6;
inline constexpr int kEBADF = 9;
inline constexpr int kEAGAIN = 11;
inline constexpr int kENOMEM = 12;
inline constexpr int kEACCES = 13;
inline constexpr int kEFAULT = 14;
inline constexpr int kEBUSY = 16;
inline constexpr int kEEXIST = 17;
inline constexpr int kEXDEV = 18;
inline constexpr int kENODEV = 19;
inline constexpr int kENOTDIR = 20;
inline constexpr int kEISDIR = 21;
inline constexpr int kEINVAL = 22;
inline constexpr int kENFILE = 23;
inline constexpr int kEMFILE = 24;
inline constexpr int kENOTTY = 25;
inline constexpr int kEFBIG = 27;
inline constexpr int kENOSPC = 28;
inline constexpr int kESPIPE = 29;
inline constexpr int kEROFS = 30;
inline constexpr int kEMLINK = 31;
inline constexpr int kEPIPE = 32;
inline constexpr int kEDOM = 33;
inline constexpr int kERANGE = 34;
inline constexpr int kEDEADLK = 35;
inline constexpr int kENAMETOOLONG = 36;
inline constexpr int kENOSYS = 38;
inline constexpr int kENOTEMPTY = 39;
inline constexpr int kELOOP = 40;
inline constexpr int kEMSGSIZE = 90;
inline constexpr int kECONNRESET = 104;
inline constexpr int kENOBUFS = 105;
inline constexpr int kENOTCONN = 107;
inline constexpr int kETIMEDOUT = 110;
inline constexpr int kECONNREFUSED = 111;
inline constexpr int kEHOSTUNREACH = 113;

// "EINTR" for kEINTR; "E<value>" for values without a name.
std::string ErrnoName(int value);

// Inverse of ErrnoName; also accepts a decimal value string.
std::optional<int> ErrnoFromName(std::string_view name);

}  // namespace lfi

#endif  // LFI_UTIL_ERRNO_CODES_H_
