// Recovery-code coverage bookkeeping (§7.1, Table 3).
//
// The paper measured, with gcov/lcov, how much *recovery code* -- the blocks
// that run only when a library call fails -- the default test suites cover
// with and without LFI. The applications in this repository register their
// basic blocks here (the substitute for compiler instrumentation), marking
// which ones are recovery blocks and how many source lines each represents,
// and call Hit() on entry. The report distinguishes total coverage from
// recovery coverage, which is what Table 3 tabulates.
//
// Block ids are interned into the process-wide SymbolTable::Blocks(), and a
// map stores hit counts and block metadata in dense vectors indexed by
// BlockId: Hit() is an array increment, and Absorb()/AbsorbHits()/
// NewlyCoveredVersus() are index-based merges (ids are process-global, so
// the same index means the same block in every map). The string_view API is
// unchanged for casual callers; hot instrumentation sites may pre-intern a
// BlockId handle once (InternBlock) and hit through it, skipping even the
// intern lookup. Anything returned as strings (NewlyCoveredVersus, hits())
// is sorted by name, never by id -- ids depend on process-wide interning
// order, which worker scheduling perturbs, and exploration feedback must be
// bit-identical at any worker count.
//
// Concurrency contract: a CoverageMap is deliberately unsynchronized. Every
// campaign job runs against its own application instance and therefore its
// own map, confined to the worker executing the job; cross-thread
// aggregation happens exclusively through Absorb()/AbsorbHits() at the
// campaign engine's deterministic job-order merge point, which is serialized
// by the engine. Never share one map between concurrently running jobs.
// (Interning itself is thread-safe.)

#ifndef LFI_COVERAGE_COVERAGE_H_
#define LFI_COVERAGE_COVERAGE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/symbol_table.h"
#include "xml/xml.h"

namespace lfi {

class CoverageMap {
 public:
  // A pre-interned block handle; process-global, so one static per
  // instrumentation site serves every application instance.
  using BlockId = SymbolId;

  static BlockId InternBlock(std::string_view id) { return SymbolTable::Blocks().Intern(id); }

  // Declares a basic block. `lines` is the block's size in source lines.
  // Registering twice keeps the first registration.
  void RegisterBlock(std::string_view id, bool recovery, int lines);
  void RegisterBlock(BlockId id, bool recovery, int lines);

  // Marks the block executed. Unknown ids auto-register as 1-line normal
  // blocks so instrumentation mistakes do not silently drop data. The
  // BlockId overload is the hot path: an array increment.
  void Hit(std::string_view id) { Hit(InternBlock(id)); }
  void Hit(BlockId id);

  void ResetHits();

  // Merges another map's hit set into this one (cumulative coverage across
  // repeated runs, the way lcov accumulates .gcda data).
  void AbsorbHits(const CoverageMap& other);

  // AbsorbHits plus block registrations: ids known to `other` keep their
  // recovery flag and line count here. This is what a map that starts empty
  // (e.g. the engine's cumulative exploration map) must use, or absorbed
  // recovery blocks would degrade to 1-line normal blocks.
  void Absorb(const CoverageMap& other);

  struct Stats {
    size_t total_blocks = 0;
    size_t covered_blocks = 0;
    int total_lines = 0;
    int covered_lines = 0;
    size_t recovery_blocks = 0;
    size_t covered_recovery_blocks = 0;
    int recovery_lines = 0;
    int covered_recovery_lines = 0;

    double line_coverage() const {
      return total_lines == 0 ? 0.0 : 100.0 * covered_lines / total_lines;
    }
    double recovery_block_coverage() const {
      return recovery_blocks == 0 ? 0.0
                                  : 100.0 * static_cast<double>(covered_recovery_blocks) /
                                        static_cast<double>(recovery_blocks);
    }
  };

  Stats ComputeStats() const;

  // Blocks covered here but not in `baseline` (the "additional coverage LFI
  // achieved" comparison). Sorted by block name.
  std::vector<std::string> NewlyCoveredVersus(const CoverageMap& baseline) const;

  bool WasHit(std::string_view id) const;
  bool WasHit(BlockId id) const { return id < hits_.size() && hits_[id] != 0; }

  // Name-keyed snapshot of the hit counters (sorted, so deterministic across
  // worker counts); materialized on demand -- the live counters are dense.
  std::map<std::string, uint64_t> hits() const;

  // One known block's registration metadata and hit count, keyed by name:
  // the format-neutral snapshot serializers other than the XML one (the
  // binary extent journal, core/extent_journal.cc) read and restore.
  struct BlockInfo {
    std::string name;
    bool recovery = false;
    int lines = 1;
    uint64_t hits = 0;
  };

  // Every known block, sorted by name -- the same determinism rule as
  // AppendXml (ids depend on process-wide interning order; serialized
  // journals must not).
  std::vector<BlockInfo> SortedBlocks() const;

  // RegisterBlock plus an exact hit count: the deserialization inverse of
  // SortedBlocks, so RestoreBlock-ing a snapshot rebuilds an equal map. The
  // BlockId overload is the bulk-restore hot path (core/extent_journal.cc):
  // the caller interned the name once and restores it into many maps.
  void RestoreBlock(const BlockInfo& block);
  void RestoreBlock(BlockId id, bool recovery, int lines, uint64_t hits);

  // Serializes every known block (registration metadata + hit count) as a
  // <coverage> child of `parent`, sorted by block name so output never
  // depends on process-wide interning order. FromNode/Parse invert it:
  // Absorb(Parse(ToXml(m))) is exactly Absorb(m), which is how campaign
  // journal records carry a job's coverage delta.
  void AppendXml(XmlNode* parent) const;
  std::string ToXml() const;
  static std::optional<CoverageMap> FromNode(const XmlNode& node,
                                             std::string* error = nullptr);
  static std::optional<CoverageMap> Parse(const std::string& xml,
                                          std::string* error = nullptr);

 private:
  struct Block {
    bool known = false;  // registered (or auto-registered by a hit)
    bool recovery = false;
    int lines = 1;
  };

  void EnsureBlock(BlockId id);  // grows + auto-registers as a 1-line block

  std::vector<Block> blocks_;   // indexed by BlockId
  std::vector<uint64_t> hits_;  // indexed by BlockId, same size as blocks_
};

}  // namespace lfi

#endif  // LFI_COVERAGE_COVERAGE_H_
