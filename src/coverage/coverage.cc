#include "coverage/coverage.h"

namespace lfi {

void CoverageMap::RegisterBlock(const std::string& id, bool recovery, int lines) {
  blocks_.emplace(id, Block{recovery, lines});
}

void CoverageMap::Hit(const std::string& id) {
  blocks_.emplace(id, Block{false, 1});
  ++hits_[id];
}

void CoverageMap::ResetHits() { hits_.clear(); }

void CoverageMap::AbsorbHits(const CoverageMap& other) {
  for (const auto& [id, count] : other.hits_) {
    blocks_.emplace(id, Block{false, 1});
    hits_[id] += count;
  }
}

void CoverageMap::Absorb(const CoverageMap& other) {
  for (const auto& [id, block] : other.blocks_) {
    blocks_.emplace(id, block);
  }
  AbsorbHits(other);
}

CoverageMap::Stats CoverageMap::ComputeStats() const {
  Stats stats;
  for (const auto& [id, block] : blocks_) {
    ++stats.total_blocks;
    stats.total_lines += block.lines;
    bool hit = hits_.count(id) != 0;
    if (hit) {
      ++stats.covered_blocks;
      stats.covered_lines += block.lines;
    }
    if (block.recovery) {
      ++stats.recovery_blocks;
      stats.recovery_lines += block.lines;
      if (hit) {
        ++stats.covered_recovery_blocks;
        stats.covered_recovery_lines += block.lines;
      }
    }
  }
  return stats;
}

std::vector<std::string> CoverageMap::NewlyCoveredVersus(const CoverageMap& baseline) const {
  std::vector<std::string> out;
  for (const auto& [id, count] : hits_) {
    if (baseline.hits_.count(id) == 0) {
      out.push_back(id);
    }
  }
  return out;
}

bool CoverageMap::WasHit(const std::string& id) const { return hits_.count(id) != 0; }

}  // namespace lfi
