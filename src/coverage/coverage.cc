#include "coverage/coverage.h"

#include <algorithm>

#include "util/string_util.h"

namespace lfi {

void CoverageMap::EnsureBlock(BlockId id) {
  if (id >= blocks_.size()) {
    blocks_.resize(id + 1);
    hits_.resize(id + 1, 0);
  }
  blocks_[id].known = true;
}

void CoverageMap::RegisterBlock(std::string_view id, bool recovery, int lines) {
  RegisterBlock(InternBlock(id), recovery, lines);
}

void CoverageMap::RegisterBlock(BlockId id, bool recovery, int lines) {
  if (id < blocks_.size() && blocks_[id].known) {
    return;  // first registration wins
  }
  EnsureBlock(id);
  blocks_[id].recovery = recovery;
  blocks_[id].lines = lines;
}

void CoverageMap::Hit(BlockId id) {
  if (id >= blocks_.size() || !blocks_[id].known) {
    EnsureBlock(id);  // auto-register as a 1-line normal block
  }
  ++hits_[id];
}

void CoverageMap::ResetHits() { std::fill(hits_.begin(), hits_.end(), 0); }

void CoverageMap::AbsorbHits(const CoverageMap& other) {
  for (BlockId id = 0; id < other.hits_.size(); ++id) {
    if (other.hits_[id] == 0) {
      continue;
    }
    if (id >= blocks_.size() || !blocks_[id].known) {
      EnsureBlock(id);
    }
    hits_[id] += other.hits_[id];
  }
}

void CoverageMap::Absorb(const CoverageMap& other) {
  for (BlockId id = 0; id < other.blocks_.size(); ++id) {
    if (other.blocks_[id].known) {
      RegisterBlock(id, other.blocks_[id].recovery, other.blocks_[id].lines);
    }
  }
  AbsorbHits(other);
}

CoverageMap::Stats CoverageMap::ComputeStats() const {
  Stats stats;
  for (BlockId id = 0; id < blocks_.size(); ++id) {
    const Block& block = blocks_[id];
    if (!block.known) {
      continue;
    }
    ++stats.total_blocks;
    stats.total_lines += block.lines;
    bool hit = hits_[id] != 0;
    if (hit) {
      ++stats.covered_blocks;
      stats.covered_lines += block.lines;
    }
    if (block.recovery) {
      ++stats.recovery_blocks;
      stats.recovery_lines += block.lines;
      if (hit) {
        ++stats.covered_recovery_blocks;
        stats.covered_recovery_lines += block.lines;
      }
    }
  }
  return stats;
}

std::vector<std::string> CoverageMap::NewlyCoveredVersus(const CoverageMap& baseline) const {
  std::vector<std::string> out;
  for (BlockId id = 0; id < hits_.size(); ++id) {
    if (hits_[id] != 0 && !baseline.WasHit(id)) {
      out.push_back(SymbolTable::Blocks().Name(id));
    }
  }
  // Name order, not id order: ids depend on process-wide interning order,
  // which differs across worker schedules; feedback must not.
  std::sort(out.begin(), out.end());
  return out;
}

bool CoverageMap::WasHit(std::string_view id) const {
  auto sym = SymbolTable::Blocks().Find(id);
  return sym && WasHit(*sym);
}

std::map<std::string, uint64_t> CoverageMap::hits() const {
  std::map<std::string, uint64_t> out;
  for (BlockId id = 0; id < hits_.size(); ++id) {
    if (hits_[id] != 0) {
      out.emplace(SymbolTable::Blocks().Name(id), hits_[id]);
    }
  }
  return out;
}

std::vector<CoverageMap::BlockInfo> CoverageMap::SortedBlocks() const {
  std::vector<BlockInfo> out;
  for (BlockId id = 0; id < blocks_.size(); ++id) {
    if (blocks_[id].known) {
      out.push_back({SymbolTable::Blocks().Name(id), blocks_[id].recovery, blocks_[id].lines,
                     hits_[id]});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const BlockInfo& a, const BlockInfo& b) { return a.name < b.name; });
  return out;
}

void CoverageMap::RestoreBlock(const BlockInfo& block) {
  RestoreBlock(InternBlock(block.name), block.recovery, block.lines, block.hits);
}

void CoverageMap::RestoreBlock(BlockId id, bool recovery, int lines, uint64_t hits) {
  RegisterBlock(id, recovery, lines);
  if (hits != 0) {
    EnsureBlock(id);
    hits_[id] = hits;
  }
}

void CoverageMap::AppendXml(XmlNode* parent) const {
  // Name order, like every other string-facing surface of this class: block
  // ids depend on process-wide interning order, serialized journals must not.
  std::vector<std::pair<std::string, BlockId>> known;
  for (BlockId id = 0; id < blocks_.size(); ++id) {
    if (blocks_[id].known) {
      known.emplace_back(SymbolTable::Blocks().Name(id), id);
    }
  }
  std::sort(known.begin(), known.end());
  XmlNode* coverage = parent->AddChild("coverage");
  for (const auto& [name, id] : known) {
    XmlNode* block = coverage->AddChild("block");
    block->SetAttr("id", name);
    if (blocks_[id].recovery) {
      block->SetAttr("recovery", "true");
    }
    block->SetAttr("lines", StrFormat("%d", blocks_[id].lines));
    if (hits_[id] != 0) {
      block->SetAttr("hits", StrFormat("%llu", static_cast<unsigned long long>(hits_[id])));
    }
  }
}

std::string CoverageMap::ToXml() const { return ToXmlElement(*this); }

std::optional<CoverageMap> CoverageMap::FromNode(const XmlNode& node, std::string* error) {
  auto fail = [&](std::string message) -> std::optional<CoverageMap> {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return std::nullopt;
  };
  if (node.name() != "coverage") {
    return fail("coverage element must be <coverage>");
  }
  CoverageMap map;
  for (const XmlNode* block : node.Children("block")) {
    std::string name = block->AttrOr("id", "");
    if (name.empty()) {
      return fail("<block> requires an id attribute");
    }
    bool recovery = block->AttrOr("recovery", "false") == "true";
    int lines = static_cast<int>(block->IntAttr("lines").value_or(1));
    BlockId id = InternBlock(name);
    map.RegisterBlock(id, recovery, lines);
    int64_t hit_count = block->IntAttr("hits").value_or(0);
    if (hit_count > 0) {
      map.EnsureBlock(id);
      map.hits_[id] = static_cast<uint64_t>(hit_count);
    }
  }
  return map;
}

std::optional<CoverageMap> CoverageMap::Parse(const std::string& xml, std::string* error) {
  return ParseXmlElement<CoverageMap>(xml, error);
}

}  // namespace lfi
