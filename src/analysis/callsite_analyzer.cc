#include "analysis/callsite_analyzer.h"

#include <algorithm>

#include "analysis/cfg.h"

namespace lfi {

const char* CheckClassName(CheckClass cls) {
  switch (cls) {
    case CheckClass::kFull:
      return "checked";
    case CheckClass::kPartial:
      return "partially-checked";
    case CheckClass::kNone:
      return "unchecked";
  }
  return "?";
}

std::vector<CallSite> CallSiteAnalyzer::FindCallSites(const Image& image,
                                                      const std::string& function) {
  std::vector<CallSite> sites;
  int import_index = image.ImportIndex(function);
  if (import_index < 0) {
    return sites;
  }
  for (size_t off = 0; off + kInstrSize <= image.text().size(); off += kInstrSize) {
    Instruction instr;
    if (!image.Decode(off, &instr)) {
      continue;
    }
    if (instr.op == Op::kCall && instr.flags == kCallImport && instr.imm == import_index) {
      CallSite site;
      site.module = image.module_name();
      site.offset = static_cast<uint32_t>(off);
      site.function = function;
      const ImageSymbol* sym = image.SymbolContaining(site.offset);
      if (sym != nullptr) {
        site.enclosing = sym->name;
      }
      sites.push_back(std::move(site));
    }
  }
  return sites;
}

std::vector<CallSiteReport> CallSiteAnalyzer::Analyze(const Image& image,
                                                      const std::string& function,
                                                      const std::set<int64_t>& error_codes,
                                                      AnalyzerStats* stats) const {
  std::vector<CallSiteReport> reports;
  for (const CallSite& site : FindCallSites(image, function)) {
    PartialCfg cfg =
        BuildPartialCfg(image, site.offset + kInstrSize, options_.max_postcall_instructions);
    DataflowResult flow = AnalyzeReturnValueFlow(cfg);
    if (stats != nullptr) {
      ++stats->call_sites;
      stats->instructions_visited += cfg.nodes().size();
      stats->dataflow_iterations += flow.iterations;
    }

    CallSiteReport report;
    report.site = site;
    report.checked_eq = flow.chk_eq;
    report.checked_ineq = flow.chk_ineq;
    report.has_ineq_check = flow.has_ineq_check;

    // Chk_eq restricted to the error codes of interest.
    std::set<int64_t> eq_in_e;
    for (int64_t code : flow.chk_eq) {
      if (error_codes.count(code) != 0) {
        eq_in_e.insert(code);
      }
    }
    for (int64_t code : error_codes) {
      if (eq_in_e.count(code) == 0) {
        report.missing_codes.insert(code);
      }
    }

    // Algorithm 1, lines 6-11.
    bool eq_covers_all = std::includes(flow.chk_eq.begin(), flow.chk_eq.end(),
                                       error_codes.begin(), error_codes.end());
    if (eq_covers_all || flow.has_ineq_check) {
      report.check_class = CheckClass::kFull;
      report.missing_codes.clear();
    } else if (!eq_in_e.empty()) {
      report.check_class = CheckClass::kPartial;
    } else {
      report.check_class = CheckClass::kNone;
      // Completely unchecked w.r.t. E, even when codes outside E are checked.
      report.missing_codes = error_codes;
    }
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace lfi
