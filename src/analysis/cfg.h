// Partial control-flow graph construction (§5).
//
// For each call site the analyzer builds a CFG over the instructions that
// *follow* the call -- the paper empirically found 100 post-call instructions
// sufficient -- in order to see how the return value and side effects are
// handled. Indirect branches are ignored (the paper measured only 0.13% of
// branches to be indirect); direct calls are treated as opaque fall-through
// nodes that clobber caller-saved registers.

#ifndef LFI_ANALYSIS_CFG_H_
#define LFI_ANALYSIS_CFG_H_

#include <cstdint>
#include <map>
#include <vector>

#include "image/image.h"

namespace lfi {

struct CfgNode {
  size_t offset = 0;  // byte offset of the instruction in the module text
  Instruction instr;
  std::vector<size_t> succs;  // successor offsets
};

class PartialCfg {
 public:
  const std::map<size_t, CfgNode>& nodes() const { return nodes_; }
  std::map<size_t, CfgNode>& mutable_nodes() { return nodes_; }
  size_t entry() const { return entry_; }
  void set_entry(size_t entry) { entry_ = entry; }
  bool empty() const { return nodes_.empty(); }
  const CfgNode* node(size_t offset) const {
    auto it = nodes_.find(offset);
    return it == nodes_.end() ? nullptr : &it->second;
  }

 private:
  std::map<size_t, CfgNode> nodes_;
  size_t entry_ = 0;
};

inline constexpr size_t kDefaultPostCallWindow = 100;

// Builds the partial CFG starting at `start_offset` (typically the
// instruction after a call), visiting at most `max_instructions` distinct
// instructions. Paths end at ret/halt; branch targets outside the text
// section or decode failures end the path gracefully.
PartialCfg BuildPartialCfg(const Image& image, size_t start_offset,
                           size_t max_instructions = kDefaultPostCallWindow);

}  // namespace lfi

#endif  // LFI_ANALYSIS_CFG_H_
