// Return-value dataflow analysis (§5).
//
// Starting from the instruction after a library call, the analysis follows
// the propagation of the call's return value -- which arrives in r0 -- through
// register-to-register moves and stack spills/reloads, and records every
// literal the value (or a copy of it) is compared against. Comparisons via
// equality (cmpi + je/jne, test + je/jne) populate Chk_eq; comparisons via
// inequality (cmpi + jl/jle/jg/jge, test + js/jns) populate Chk_ineq. The
// analysis is intra-procedural and iterates loops until the set of copies of
// the return value stabilizes (a standard forward may-analysis with union at
// joins), exactly as described in the paper.

#ifndef LFI_ANALYSIS_DATAFLOW_H_
#define LFI_ANALYSIS_DATAFLOW_H_

#include <cstdint>
#include <set>

#include "analysis/cfg.h"

namespace lfi {

// A location that may hold a copy of the tracked return value: a register or
// a stack slot addressed relative to the stack pointer.
struct Location {
  enum class Kind { kReg, kStack } kind = Kind::kReg;
  int32_t id = 0;  // register number, or sp-relative byte offset

  bool operator<(const Location& o) const {
    if (kind != o.kind) {
      return kind < o.kind;
    }
    return id < o.id;
  }
  bool operator==(const Location& o) const { return kind == o.kind && id == o.id; }
};

using LocationSet = std::set<Location>;

struct DataflowResult {
  std::set<int64_t> chk_eq;    // literals compared by equality
  std::set<int64_t> chk_ineq;  // literals compared by inequality (incl. sign tests as 0)
  bool has_ineq_check = false;

  // Total number of fixpoint iterations (for the efficiency evaluation).
  int iterations = 0;
};

// Registers clobbered by a call under the ISA calling convention. Copies of
// the tracked value held in these registers die across a call; stack slots
// survive.
bool IsCallerSaved(int reg);

// Runs the analysis over `cfg`. The tracked value is assumed to be in r0 at
// the CFG entry (the return-value register immediately after the call).
DataflowResult AnalyzeReturnValueFlow(const PartialCfg& cfg);

}  // namespace lfi

#endif  // LFI_ANALYSIS_DATAFLOW_H_
