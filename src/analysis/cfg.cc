#include "analysis/cfg.h"

#include <deque>
#include <set>

namespace lfi {

PartialCfg BuildPartialCfg(const Image& image, size_t start_offset, size_t max_instructions) {
  PartialCfg cfg;
  cfg.set_entry(start_offset);
  std::deque<size_t> worklist;
  std::set<size_t> seen;
  worklist.push_back(start_offset);

  while (!worklist.empty() && cfg.nodes().size() < max_instructions) {
    size_t off = worklist.front();
    worklist.pop_front();
    if (seen.count(off) != 0) {
      continue;
    }
    seen.insert(off);

    Instruction instr;
    if (!image.Decode(off, &instr)) {
      continue;  // ran off the section or hit garbage: end the path
    }
    CfgNode node;
    node.offset = off;
    node.instr = instr;

    size_t fallthrough = off + kInstrSize;
    bool have_fallthrough = fallthrough < image.text().size();

    if (instr.op == Op::kRet || instr.op == Op::kHalt) {
      // terminator: no successors
    } else if (instr.op == Op::kJmp) {
      size_t target = static_cast<size_t>(static_cast<uint32_t>(instr.imm));
      if (target % kInstrSize == 0 && target < image.text().size()) {
        node.succs.push_back(target);
      }
    } else if (instr.IsConditionalJump()) {
      size_t target = static_cast<size_t>(static_cast<uint32_t>(instr.imm));
      if (target % kInstrSize == 0 && target < image.text().size()) {
        node.succs.push_back(target);
      }
      if (have_fallthrough) {
        node.succs.push_back(fallthrough);
      }
    } else {
      // Straight-line instructions, including calls (opaque) and indirect
      // calls (ignored per the paper's prototype).
      if (have_fallthrough) {
        node.succs.push_back(fallthrough);
      }
    }
    for (size_t succ : node.succs) {
      if (seen.count(succ) == 0) {
        worklist.push_back(succ);
      }
    }
    cfg.mutable_nodes()[off] = std::move(node);
  }

  // Drop successor edges that point at instructions we never materialized
  // (window limit), so downstream traversals stay within the node set.
  for (auto& [off, node] : cfg.mutable_nodes()) {
    std::vector<size_t> kept;
    for (size_t succ : node.succs) {
      if (cfg.nodes().count(succ) != 0) {
        kept.push_back(succ);
      }
    }
    node.succs = std::move(kept);
  }
  return cfg;
}

}  // namespace lfi
