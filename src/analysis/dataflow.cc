#include "analysis/dataflow.h"

#include <deque>
#include <map>

namespace lfi {
namespace {

bool Contains(const LocationSet& set, Location loc) { return set.count(loc) != 0; }

Location Reg(int r) { return Location{Location::Kind::kReg, r}; }
Location Slot(int32_t off) { return Location{Location::Kind::kStack, off}; }

// Applies the transfer function of `instr` to the copy set, and records any
// comparison of a copy against a literal. `next_is_*` describe the
// conditional jump(s) that consume the flags this instruction sets.
struct Transfer {
  const CfgNode* node;
  const PartialCfg* cfg;

  // Collects the conditional jumps immediately consuming this node's flags.
  // Flags in this ISA are consumed by the very next instruction(s) in control
  // flow; a chain of conditional jumps (je .a; jl .b) all read the same
  // flags, so we walk successive conditional jumps.
  void CollectFlagConsumers(std::vector<Op>* out) const {
    const CfgNode* cur = node;
    while (true) {
      if (cur->succs.empty()) {
        return;
      }
      // Fall-through successor is the one right after the instruction; for a
      // conditional jump node both successors lead on, but only the textual
      // fall-through can be another flag consumer.
      const CfgNode* next = cfg->node(cur->offset + kInstrSize);
      bool advanced = false;
      for (size_t succ : cur->succs) {
        const CfgNode* s = cfg->node(succ);
        if (s != nullptr && s->instr.IsConditionalJump()) {
          out->push_back(s->instr.op);
        }
      }
      if (next != nullptr && next->instr.IsConditionalJump()) {
        cur = next;
        advanced = true;
      }
      if (!advanced) {
        return;
      }
    }
  }
};

}  // namespace

bool IsCallerSaved(int reg) {
  // r0..r5 are caller-saved (r0 carries the return value); r6..r12 are
  // callee-saved; r13 (sp) and r14 (errno base) are preserved by convention.
  return reg >= 0 && reg <= 5;
}

DataflowResult AnalyzeReturnValueFlow(const PartialCfg& cfg) {
  DataflowResult result;
  if (cfg.empty() || cfg.node(cfg.entry()) == nullptr) {
    return result;
  }

  // IN sets per node offset.
  std::map<size_t, LocationSet> in;
  std::set<size_t> visited;
  in[cfg.entry()].insert(Reg(kRetReg));

  std::deque<size_t> worklist;
  worklist.push_back(cfg.entry());

  auto record_compare = [&](const CfgNode& node, int64_t literal) {
    Transfer t{&node, &cfg};
    std::vector<Op> consumers;
    t.CollectFlagConsumers(&consumers);
    for (Op op : consumers) {
      switch (op) {
        case Op::kJe:
        case Op::kJne:
          result.chk_eq.insert(literal);
          break;
        case Op::kJl:
        case Op::kJle:
        case Op::kJg:
        case Op::kJge:
          result.chk_ineq.insert(literal);
          result.has_ineq_check = true;
          break;
        case Op::kJs:
        case Op::kJns:
          // Sign test: an inequality check against zero.
          result.chk_ineq.insert(0);
          result.has_ineq_check = true;
          break;
        default:
          break;
      }
    }
  };

  while (!worklist.empty()) {
    ++result.iterations;
    if (result.iterations > 100000) {
      break;  // safety valve; partial CFGs are <= a few hundred nodes
    }
    size_t off = worklist.front();
    worklist.pop_front();
    const CfgNode* node = cfg.node(off);
    if (node == nullptr) {
      continue;
    }
    LocationSet set = in[off];
    const Instruction& i = node->instr;

    switch (i.op) {
      case Op::kMovRR:
        if (Contains(set, Reg(i.rs))) {
          set.insert(Reg(i.rd));
        } else {
          set.erase(Reg(i.rd));
        }
        break;
      case Op::kMovRI:
      case Op::kPop:
        set.erase(Reg(i.rd));
        break;
      case Op::kLoad:
        if (i.rs == kSpReg && Contains(set, Slot(i.imm))) {
          set.insert(Reg(i.rd));
        } else {
          set.erase(Reg(i.rd));
        }
        break;
      case Op::kStore:
        if (i.rd == kSpReg) {
          if (Contains(set, Reg(i.rs))) {
            set.insert(Slot(i.imm));
          } else {
            set.erase(Slot(i.imm));
          }
        }
        break;
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kAnd:
      case Op::kOr:
      case Op::kXor:
      case Op::kAddI:
        // Arithmetic destroys the value for error-code comparison purposes.
        set.erase(Reg(i.rd));
        break;
      case Op::kCmpRI:
        if (Contains(set, Reg(i.rd))) {
          record_compare(*node, i.imm);
        }
        break;
      case Op::kTest:
        if (i.rd == i.rs && Contains(set, Reg(i.rd))) {
          // test rX, rX followed by a conditional jump is a zero/sign check.
          Transfer t{node, &cfg};
          std::vector<Op> consumers;
          t.CollectFlagConsumers(&consumers);
          for (Op op : consumers) {
            if (op == Op::kJe || op == Op::kJne) {
              result.chk_eq.insert(0);
            } else if (op == Op::kJs || op == Op::kJns || op == Op::kJl || op == Op::kJle ||
                       op == Op::kJg || op == Op::kJge) {
              result.chk_ineq.insert(0);
              result.has_ineq_check = true;
            }
          }
        }
        break;
      case Op::kCmpRR:
        // Literal comparisons only (per the paper); register-register
        // compares do not contribute checks but also do not kill copies.
        break;
      case Op::kCall:
      case Op::kCallR: {
        // Calls clobber caller-saved registers; copies on the stack survive.
        LocationSet kept;
        for (const Location& loc : set) {
          if (loc.kind == Location::Kind::kStack || !IsCallerSaved(loc.id)) {
            kept.insert(loc);
          }
        }
        set = std::move(kept);
        break;
      }
      default:
        break;
    }

    visited.insert(off);
    for (size_t succ : node->succs) {
      LocationSet& succ_in = in[succ];
      size_t before = succ_in.size();
      succ_in.insert(set.begin(), set.end());
      if (visited.count(succ) == 0 || succ_in.size() > before) {
        worklist.push_back(succ);
      }
    }
  }
  return result;
}

}  // namespace lfi
