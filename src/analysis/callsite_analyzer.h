// Call site analysis (§5, Algorithm 1).
//
// Scans a target binary for all call sites of a library function F, builds a
// partial CFG after each site, runs the return-value dataflow analysis, and
// classifies each site:
//   - fully checked:     Chk_eq ⊇ E  ∨  Chk_ineq ≠ ∅
//   - partially checked: Chk_eq ≠ ∅  ∧  Chk_eq ⊂ E
//   - unchecked:         no error code in E is checked (even if codes outside
//                         E are)
// where E is the set of error return codes from the library's fault profile.
// The analyzer never needs the target's source code.

#ifndef LFI_ANALYSIS_CALLSITE_ANALYZER_H_
#define LFI_ANALYSIS_CALLSITE_ANALYZER_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "analysis/dataflow.h"
#include "image/image.h"

namespace lfi {

struct CallSite {
  std::string module;      // module name of the binary
  uint32_t offset = 0;     // byte offset of the call instruction
  std::string function;    // callee (the intercepted library function)
  std::string enclosing;   // symbol of the containing function, if any
};

enum class CheckClass {
  kFull,     // member of C_yes
  kPartial,  // member of C_part
  kNone,     // member of C_not
};

const char* CheckClassName(CheckClass cls);

struct CallSiteReport {
  CallSite site;
  CheckClass check_class = CheckClass::kNone;
  std::set<int64_t> checked_eq;     // Chk_eq restricted to all observed literals
  std::set<int64_t> checked_ineq;   // literals checked by inequality
  bool has_ineq_check = false;
  std::set<int64_t> missing_codes;  // error codes in E not covered
};

struct AnalyzerStats {
  size_t call_sites = 0;
  size_t instructions_visited = 0;
  int dataflow_iterations = 0;
};

class CallSiteAnalyzer {
 public:
  struct Options {
    size_t max_postcall_instructions = kDefaultPostCallWindow;
  };

  CallSiteAnalyzer() = default;
  explicit CallSiteAnalyzer(Options options) : options_(options) {}

  // All call sites of import `function` in `image`.
  static std::vector<CallSite> FindCallSites(const Image& image, const std::string& function);

  // Runs Algorithm 1 for `function` with error-code set `error_codes`.
  std::vector<CallSiteReport> Analyze(const Image& image, const std::string& function,
                                      const std::set<int64_t>& error_codes,
                                      AnalyzerStats* stats = nullptr) const;

 private:
  Options options_;
};

}  // namespace lfi

#endif  // LFI_ANALYSIS_CALLSITE_ANALYZER_H_
