// Library stub ("binary distribution") generation.
//
// The virtual libraries in this repository have two representations: the C++
// implementation the runtime dispatches to, and a SimELF binary that plays
// the role of the on-disk shared object the paper's profiler analyzes. This
// generator produces the binary from the library's ground-truth fault
// profile: each (retval, errno) error mode becomes a distinct path through
// the stub, selected by an opaque environment register, exactly the shape a
// real library's error paths take. The LibraryProfiler recovers the profile
// from the generated binary; tests assert the round trip is exact.

#ifndef LFI_PROFILER_STUB_GEN_H_
#define LFI_PROFILER_STUB_GEN_H_

#include <string>

#include "image/image.h"
#include "profiler/fault_profile.h"

namespace lfi {

// Emits assembly text for the whole library described by `profile`.
std::string GenerateLibraryAsm(const FaultProfile& profile);

// Assembles the generated text. Aborts only on internal generator bugs, so
// failures surface in tests rather than silently.
Image GenerateLibraryImage(const FaultProfile& profile);

}  // namespace lfi

#endif  // LFI_PROFILER_STUB_GEN_H_
