// Library fault profiles (§2).
//
// A fault profile records, for every function a library exports, the error
// return values the function can produce and the errno side effects that can
// accompany each of them -- e.g. read() can return -1 with errno in {EAGAIN,
// EBADF, EINTR, EIO}, or 0. Profiles are produced automatically by the
// LibraryProfiler from the library binary and are stored as XML, as in the
// paper. The call-site analyzer consumes the profile's error-code set E, and
// injection scenarios draw (retval, errno) pairs from it.

#ifndef LFI_PROFILER_FAULT_PROFILE_H_
#define LFI_PROFILER_FAULT_PROFILE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace lfi {

// One error mode: a return value and the errnos that may accompany it.
struct ErrorSpec {
  int64_t retval = 0;
  std::vector<int> errnos;  // possibly empty (e.g. read() returning 0)

  bool operator==(const ErrorSpec& o) const = default;
};

struct FunctionProfile {
  std::string name;
  std::vector<ErrorSpec> errors;
  // Constant non-error return values seen in the binary (e.g. 0 for success
  // in int-returning functions that cannot fail any other way).
  std::vector<int64_t> success_constants;
  // True when some path returns a computed (non-constant) value, e.g. a byte
  // count or a heap pointer.
  bool has_computed_success = false;

  // E: the set of error return codes, for Algorithm 1.
  std::set<int64_t> ErrorCodes() const;
};

class FaultProfile {
 public:
  FaultProfile() = default;
  explicit FaultProfile(std::string library) : library_(std::move(library)) {}

  const std::string& library() const { return library_; }
  void set_library(std::string library) { library_ = std::move(library); }

  void AddFunction(FunctionProfile fn) { functions_[fn.name] = std::move(fn); }
  const FunctionProfile* Find(const std::string& name) const;
  const std::map<std::string, FunctionProfile>& functions() const { return functions_; }

  // Serializes to the XML profile format; parses it back.
  std::string ToXml() const;
  static std::optional<FaultProfile> FromXml(const std::string& xml, std::string* error = nullptr);

 private:
  std::string library_;
  std::map<std::string, FunctionProfile> functions_;
};

}  // namespace lfi

#endif  // LFI_PROFILER_FAULT_PROFILE_H_
