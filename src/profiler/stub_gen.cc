#include "profiler/stub_gen.h"

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <vector>

#include "image/assembler.h"
#include "util/string_util.h"

namespace lfi {
namespace {

// One concrete path through the stub.
struct Mode {
  bool computed = false;           // return a non-constant value
  int64_t retval = 0;              // when !computed
  std::optional<int> errno_value;  // errno side effect, when any
};

void EmitMode(const Mode& mode, std::string* out) {
  if (mode.computed) {
    *out += "  mov r0, r8\n  ret\n";
    return;
  }
  if (mode.errno_value) {
    *out += StrFormat("  movi r1, %d\n  store [err+0], r1\n", *mode.errno_value);
  }
  *out += StrFormat("  movi r0, %lld\n  ret\n", static_cast<long long>(mode.retval));
}

}  // namespace

std::string GenerateLibraryAsm(const FaultProfile& profile) {
  std::string out = StrFormat("module %s\n\n", profile.library().c_str());
  for (const auto& [name, fn] : profile.functions()) {
    // Enumerate the concrete modes: one per (retval, errno) pair, one per
    // success constant, one computed-success tail when applicable.
    std::vector<Mode> modes;
    for (const ErrorSpec& err : fn.errors) {
      if (err.errnos.empty()) {
        modes.push_back(Mode{false, err.retval, std::nullopt});
      }
      for (int errno_value : err.errnos) {
        modes.push_back(Mode{false, err.retval, errno_value});
      }
    }
    for (int64_t success : fn.success_constants) {
      modes.push_back(Mode{false, success, std::nullopt});
    }
    if (fn.has_computed_success || modes.empty()) {
      modes.push_back(Mode{true, 0, std::nullopt});
    }

    out += StrFormat("func %s\n", name.c_str());
    // r9 stands in for the opaque environment condition selecting the mode at
    // run time; every mode except the last is guarded, the last is the
    // fall-through, so the profiler sees exactly the ground-truth mode set.
    for (size_t i = 0; i + 1 < modes.size(); ++i) {
      out += StrFormat("  cmpi r9, %zu\n  jne .case%zu\n", i, i + 1);
      EmitMode(modes[i], &out);
      out += StrFormat(".case%zu:\n", i + 1);
    }
    EmitMode(modes.back(), &out);
    out += "end\n\n";
  }
  return out;
}

Image GenerateLibraryImage(const FaultProfile& profile) {
  AsmError error;
  auto image = Assemble(GenerateLibraryAsm(profile), &error);
  if (!image) {
    // Generator and assembler disagree: an internal bug, not an input error.
    std::fprintf(stderr, "stub_gen: assembly failed at line %d: %s\n", error.line,
                 error.message.c_str());
    std::abort();
  }
  return std::move(*image);
}

}  // namespace lfi
