#include "profiler/fault_profile.h"

#include <algorithm>

#include "util/errno_codes.h"
#include "util/string_util.h"
#include "xml/xml.h"

namespace lfi {

std::set<int64_t> FunctionProfile::ErrorCodes() const {
  std::set<int64_t> codes;
  for (const ErrorSpec& e : errors) {
    codes.insert(e.retval);
  }
  return codes;
}

const FunctionProfile* FaultProfile::Find(const std::string& name) const {
  auto it = functions_.find(name);
  return it == functions_.end() ? nullptr : &it->second;
}

std::string FaultProfile::ToXml() const {
  XmlDocument doc("profile");
  doc.root()->SetAttr("library", library_);
  for (const auto& [name, fn] : functions_) {
    XmlNode* fn_node = doc.root()->AddChild("function");
    fn_node->SetAttr("name", name);
    for (const ErrorSpec& e : fn.errors) {
      XmlNode* err = fn_node->AddChild("error");
      err->SetAttr("retval", StrFormat("%lld", static_cast<long long>(e.retval)));
      if (!e.errnos.empty()) {
        std::vector<std::string> names;
        names.reserve(e.errnos.size());
        for (int v : e.errnos) {
          names.push_back(ErrnoName(v));
        }
        err->SetAttr("errno", Join(names, ","));
      }
    }
    for (int64_t v : fn.success_constants) {
      XmlNode* ok = fn_node->AddChild("success");
      ok->SetAttr("retval", StrFormat("%lld", static_cast<long long>(v)));
    }
    if (fn.has_computed_success) {
      fn_node->AddChild("success")->SetAttr("retval", "computed");
    }
  }
  return doc.ToString();
}

std::optional<FaultProfile> FaultProfile::FromXml(const std::string& xml, std::string* error) {
  XmlError xml_error;
  auto doc = XmlParse(xml, &xml_error);
  if (!doc || doc->root() == nullptr || doc->root()->name() != "profile") {
    if (error != nullptr) {
      *error = xml_error.message.empty() ? "not a <profile> document" : xml_error.message;
    }
    return std::nullopt;
  }
  FaultProfile profile(doc->root()->AttrOr("library", ""));
  for (const XmlNode* fn_node : doc->root()->Children("function")) {
    FunctionProfile fn;
    fn.name = fn_node->AttrOr("name", "");
    if (fn.name.empty()) {
      if (error != nullptr) {
        *error = "<function> missing name";
      }
      return std::nullopt;
    }
    for (const XmlNode* err : fn_node->Children("error")) {
      ErrorSpec spec;
      auto retval = ParseInt(err->AttrOr("retval", ""));
      if (!retval) {
        if (error != nullptr) {
          *error = "bad <error retval> in " + fn.name;
        }
        return std::nullopt;
      }
      spec.retval = *retval;
      std::string errnos = err->AttrOr("errno", "");
      if (!errnos.empty()) {
        for (const std::string& name : Split(errnos, ',')) {
          auto v = ErrnoFromName(std::string(Trim(name)));
          if (!v) {
            if (error != nullptr) {
              *error = "unknown errno '" + name + "' in " + fn.name;
            }
            return std::nullopt;
          }
          spec.errnos.push_back(*v);
        }
      }
      fn.errors.push_back(std::move(spec));
    }
    for (const XmlNode* ok : fn_node->Children("success")) {
      std::string retval = ok->AttrOr("retval", "");
      if (retval == "computed") {
        fn.has_computed_success = true;
      } else if (auto v = ParseInt(retval)) {
        fn.success_constants.push_back(*v);
      }
    }
    profile.AddFunction(std::move(fn));
  }
  return profile;
}

}  // namespace lfi
