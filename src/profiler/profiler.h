// The library profiler (§2).
//
// Operates directly on a library binary. For each exported function it
// enumerates execution paths (bounded DFS over the function body, with
// light-weight constant propagation) and records:
//   - the constant return values reachable at each ret, and
//   - the errno side effects written on the way there (stores through the
//     TLS errno base register, r14).
// A constant return value is classified as an *error* when it is negative or
// when errno was set on the path producing it -- this covers both the
// -1/errno convention of int-returning calls and the NULL/errno convention of
// pointer-returning calls (malloc, fopen, opendir). Everything else is a
// success constant; paths returning computed values are recorded as computed
// successes. The result is the library's fault profile.

#ifndef LFI_PROFILER_PROFILER_H_
#define LFI_PROFILER_PROFILER_H_

#include "image/image.h"
#include "profiler/fault_profile.h"

namespace lfi {

class LibraryProfiler {
 public:
  struct Options {
    size_t max_paths_per_function = 4096;
    size_t max_path_length = 2048;  // instructions
  };

  LibraryProfiler() = default;
  explicit LibraryProfiler(Options options) : options_(options) {}

  // Profiles every function the image defines.
  FaultProfile Profile(const Image& library) const;

  // Profiles a single function; returns an empty profile entry when the
  // symbol is unknown.
  FunctionProfile ProfileFunction(const Image& library, const std::string& name) const;

 private:
  Options options_;
};

}  // namespace lfi

#endif  // LFI_PROFILER_PROFILER_H_
