#include "profiler/profiler.h"

#include <algorithm>
#include <optional>
#include <set>
#include <vector>

#include "analysis/dataflow.h"

namespace lfi {
namespace {

struct PathState {
  size_t offset;
  std::vector<std::optional<int64_t>> consts;  // per register
  std::set<int> errnos;
  std::set<size_t> visited;  // offsets on this path (loop cut)
  size_t length = 0;
};

struct PathOutcome {
  std::optional<int64_t> retval;
  std::set<int> errnos;
};

}  // namespace

FunctionProfile LibraryProfiler::ProfileFunction(const Image& library,
                                                 const std::string& name) const {
  FunctionProfile fn;
  fn.name = name;
  const ImageSymbol* sym = library.FindSymbol(name);
  if (sym == nullptr) {
    return fn;
  }

  std::vector<PathOutcome> outcomes;
  std::vector<PathState> stack;
  PathState init;
  init.offset = sym->addr;
  init.consts.assign(kNumRegisters, std::nullopt);
  stack.push_back(std::move(init));
  size_t paths = 0;

  while (!stack.empty() && paths < options_.max_paths_per_function) {
    PathState st = std::move(stack.back());
    stack.pop_back();

    while (true) {
      if (st.length > options_.max_path_length || st.visited.count(st.offset) != 0 ||
          st.offset >= sym->addr + sym->size) {
        ++paths;  // abandoned path (loop or fell off the function)
        break;
      }
      st.visited.insert(st.offset);
      ++st.length;
      Instruction instr;
      if (!library.Decode(st.offset, &instr)) {
        ++paths;
        break;
      }
      size_t next = st.offset + kInstrSize;
      bool done = false;
      switch (instr.op) {
        case Op::kMovRI:
          st.consts[instr.rd] = instr.imm;
          break;
        case Op::kMovRR:
          st.consts[instr.rd] = st.consts[instr.rs];
          break;
        case Op::kAddI:
          if (st.consts[instr.rd]) {
            st.consts[instr.rd] = *st.consts[instr.rd] + instr.imm;
          }
          break;
        case Op::kAdd:
        case Op::kSub:
        case Op::kMul:
        case Op::kAnd:
        case Op::kOr:
        case Op::kXor:
        case Op::kLoad:
        case Op::kPop:
          st.consts[instr.rd] = std::nullopt;
          break;
        case Op::kStore:
          if (instr.rd == kErrnoReg && st.consts[instr.rs]) {
            st.errnos.insert(static_cast<int>(*st.consts[instr.rs]));
          }
          break;
        case Op::kCall:
        case Op::kCallR:
          for (int r = 0; r < kNumRegisters; ++r) {
            if (IsCallerSaved(r)) {
              st.consts[static_cast<size_t>(r)] = std::nullopt;
            }
          }
          break;
        case Op::kJmp:
          next = static_cast<size_t>(static_cast<uint32_t>(instr.imm));
          break;
        case Op::kJe:
        case Op::kJne:
        case Op::kJl:
        case Op::kJle:
        case Op::kJg:
        case Op::kJge:
        case Op::kJs:
        case Op::kJns: {
          // Fork: taken branch pushed, fall-through continues inline.
          PathState taken = st;
          taken.offset = static_cast<size_t>(static_cast<uint32_t>(instr.imm));
          stack.push_back(std::move(taken));
          break;
        }
        case Op::kRet:
        case Op::kHalt: {
          PathOutcome outcome;
          outcome.retval = st.consts[kRetReg];
          outcome.errnos = st.errnos;
          outcomes.push_back(std::move(outcome));
          ++paths;
          done = true;
          break;
        }
        default:
          break;
      }
      if (done) {
        break;
      }
      st.offset = next;
    }
  }

  // Aggregate outcomes into the profile entry.
  std::map<int64_t, std::set<int>> error_modes;
  std::set<int64_t> successes;
  for (const PathOutcome& o : outcomes) {
    if (!o.retval) {
      fn.has_computed_success = true;
      continue;
    }
    bool is_error = *o.retval < 0 || !o.errnos.empty();
    if (is_error) {
      error_modes[*o.retval].insert(o.errnos.begin(), o.errnos.end());
    } else {
      successes.insert(*o.retval);
    }
  }
  // pthread-style convention: a function that returns 0 on success and small
  // positive constants on other paths (with no errno side effect) is
  // returning error numbers directly, like pthread_mutex_lock returning
  // EDEADLK. Reclassify those constants as error modes. This is a heuristic,
  // like the rest of the profiler, but it is precise on the libraries here.
  if (!fn.has_computed_success && successes.count(0) != 0) {
    for (auto it = successes.begin(); it != successes.end();) {
      if (*it > 0 && *it <= 255) {
        error_modes[*it];  // error mode with no errno
        it = successes.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& [retval, errnos] : error_modes) {
    ErrorSpec spec;
    spec.retval = retval;
    spec.errnos.assign(errnos.begin(), errnos.end());
    fn.errors.push_back(std::move(spec));
  }
  fn.success_constants.assign(successes.begin(), successes.end());
  return fn;
}

FaultProfile LibraryProfiler::Profile(const Image& library) const {
  FaultProfile profile(library.module_name());
  for (const ImageSymbol& sym : library.symbols()) {
    profile.AddFunction(ProfileFunction(library, sym.name));
  }
  return profile;
}

}  // namespace lfi
