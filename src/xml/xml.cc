#include "xml/xml.h"

#include <cctype>

#include "util/string_util.h"

namespace lfi {

void XmlNode::SetAttr(std::string_view key, std::string_view value) {
  for (auto& kv : attrs_) {
    if (kv.first == key) {
      kv.second = std::string(value);
      return;
    }
  }
  attrs_.emplace_back(std::string(key), std::string(value));
}

std::optional<std::string> XmlNode::Attr(std::string_view key) const {
  for (const auto& kv : attrs_) {
    if (kv.first == key) {
      return kv.second;
    }
  }
  return std::nullopt;
}

std::string XmlNode::AttrOr(std::string_view key, std::string_view def) const {
  auto v = Attr(key);
  return v ? *v : std::string(def);
}

std::optional<int64_t> XmlNode::IntAttr(std::string_view key) const {
  auto v = Attr(key);
  if (!v) {
    return std::nullopt;
  }
  return ParseInt(*v);
}

XmlNode* XmlNode::AddChild(std::string name) {
  children_.push_back(std::make_unique<XmlNode>(std::move(name)));
  return children_.back().get();
}

const XmlNode* XmlNode::Child(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->name() == name) {
      return c.get();
    }
  }
  return nullptr;
}

XmlNode* XmlNode::Child(std::string_view name) {
  for (const auto& c : children_) {
    if (c->name() == name) {
      return c.get();
    }
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::Children(std::string_view name) const {
  std::vector<const XmlNode*> out;
  for (const auto& c : children_) {
    if (c->name() == name) {
      out.push_back(c.get());
    }
  }
  return out;
}

std::string XmlNode::ChildText(std::string_view name, std::string_view def) const {
  const XmlNode* c = Child(name);
  return c ? std::string(Trim(c->text())) : std::string(def);
}

std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        // Control characters as numeric references: a raw newline inside an
        // attribute would be whitespace-normalized by conforming parsers (and
        // trimmed from text by ours), so journal/scenario round trips must
        // never emit one literally.
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("&#x%X;", static_cast<unsigned char>(c));
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void XmlNode::Write(int indent, const XmlSink& sink) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  sink(pad);
  sink("<");
  sink(name_);
  for (const auto& kv : attrs_) {
    sink(" ");
    sink(kv.first);
    sink("=\"");
    sink(XmlEscape(kv.second));
    sink("\"");
  }
  std::string trimmed(Trim(text_));
  if (children_.empty() && trimmed.empty()) {
    sink(" />\n");
    return;
  }
  sink(">");
  if (!trimmed.empty()) {
    sink(XmlEscape(trimmed));
  }
  if (!children_.empty()) {
    sink("\n");
    for (const auto& c : children_) {
      c->Write(indent + 1, sink);
    }
    sink(pad);
  }
  sink("</");
  sink(name_);
  sink(">\n");
}

std::string XmlNode::ToString(int indent) const {
  std::string out;
  Write(indent, [&out](std::string_view chunk) { out.append(chunk); });
  return out;
}

void XmlDocument::Write(const XmlSink& sink) const {
  sink(kDeclaration);
  if (root_) {
    root_->Write(0, sink);
  }
}

std::string XmlDocument::ToString() const {
  std::string out;
  Write([&out](std::string_view chunk) { out.append(chunk); });
  return out;
}

namespace {

class Parser {
 public:
  Parser(std::string_view input, XmlError* error) : in_(input), error_(error) {}

  std::unique_ptr<XmlDocument> Parse() {
    SkipProlog();
    auto root = ParseElement();
    if (!root) {
      return nullptr;
    }
    SkipMisc();
    if (pos_ != in_.size()) {
      return Fail("trailing content after document element");
    }
    auto doc = std::make_unique<XmlDocument>();
    doc->set_root(std::move(root));
    return doc;
  }

 private:
  std::unique_ptr<XmlDocument> Fail(std::string message) {
    if (error_ && error_->message.empty()) {
      error_->message = std::move(message);
      error_->line = line_;
    }
    return nullptr;
  }

  bool FailBool(std::string message) {
    Fail(std::move(message));
    return false;
  }

  bool AtEnd() const { return pos_ >= in_.size(); }
  char Peek() const { return in_[pos_]; }

  char Advance() {
    char c = in_[pos_++];
    if (c == '\n') {
      ++line_;
    }
    return c;
  }

  bool Match(std::string_view s) {
    if (in_.size() - pos_ < s.size() || in_.substr(pos_, s.size()) != s) {
      return false;
    }
    for (size_t i = 0; i < s.size(); ++i) {
      Advance();
    }
    return true;
  }

  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      Advance();
    }
  }

  bool SkipComment() {
    if (!Match("<!--")) {
      return false;
    }
    while (!AtEnd()) {
      if (Match("-->")) {
        return true;
      }
      Advance();
    }
    FailBool("unterminated comment");
    return true;
  }

  bool SkipPi() {
    if (!Match("<?")) {
      return false;
    }
    while (!AtEnd()) {
      if (Match("?>")) {
        return true;
      }
      Advance();
    }
    FailBool("unterminated processing instruction");
    return true;
  }

  bool SkipDoctype() {
    if (!Match("<!DOCTYPE")) {
      return false;
    }
    int depth = 1;
    while (!AtEnd() && depth > 0) {
      char c = Advance();
      if (c == '<') {
        ++depth;
      } else if (c == '>') {
        --depth;
      }
    }
    return true;
  }

  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (AtEnd()) {
        return;
      }
      if (SkipComment() || SkipPi()) {
        continue;
      }
      return;
    }
  }

  void SkipProlog() {
    while (true) {
      SkipWhitespace();
      if (AtEnd()) {
        return;
      }
      if (SkipPi() || SkipComment() || SkipDoctype()) {
        continue;
      }
      return;
    }
  }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  }
  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' || c == '-' ||
           c == '.';
  }

  std::string ParseName() {
    if (AtEnd() || !IsNameStart(Peek())) {
      return "";
    }
    std::string name;
    while (!AtEnd() && IsNameChar(Peek())) {
      name.push_back(Advance());
    }
    return name;
  }

  // Decodes the predefined entities plus decimal/hex character references.
  bool AppendReference(std::string* out) {
    // Called just after consuming '&'.
    std::string ent;
    while (!AtEnd() && Peek() != ';' && ent.size() < 10) {
      ent.push_back(Advance());
    }
    if (AtEnd() || Peek() != ';') {
      return FailBool("malformed entity reference");
    }
    Advance();  // ';'
    if (ent == "lt") {
      out->push_back('<');
    } else if (ent == "gt") {
      out->push_back('>');
    } else if (ent == "amp") {
      out->push_back('&');
    } else if (ent == "quot") {
      out->push_back('"');
    } else if (ent == "apos") {
      out->push_back('\'');
    } else if (!ent.empty() && ent[0] == '#') {
      std::optional<int64_t> code;
      if (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X')) {
        code = ParseInt("0x" + ent.substr(2));
      } else {
        code = ParseInt(ent.substr(1));
      }
      if (!code || *code < 0 || *code > 0x10ffff) {
        return FailBool("bad character reference");
      }
      // Encode as UTF-8.
      uint32_t cp = static_cast<uint32_t>(*code);
      if (cp < 0x80) {
        out->push_back(static_cast<char>(cp));
      } else if (cp < 0x800) {
        out->push_back(static_cast<char>(0xc0 | (cp >> 6)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
      } else if (cp < 0x10000) {
        out->push_back(static_cast<char>(0xe0 | (cp >> 12)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
      } else {
        out->push_back(static_cast<char>(0xf0 | (cp >> 18)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
        out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
        out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
      }
    } else {
      return FailBool("unknown entity &" + ent + ";");
    }
    return true;
  }

  bool ParseAttrValue(std::string* out) {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return FailBool("expected quoted attribute value");
    }
    char quote = Advance();
    while (!AtEnd() && Peek() != quote) {
      char c = Advance();
      if (c == '&') {
        if (!AppendReference(out)) {
          return false;
        }
      } else {
        out->push_back(c);
      }
    }
    if (AtEnd()) {
      return FailBool("unterminated attribute value");
    }
    Advance();  // closing quote
    return true;
  }

  std::unique_ptr<XmlNode> ParseElement() {
    SkipWhitespace();
    if (AtEnd() || Peek() != '<') {
      Fail("expected element");
      return nullptr;
    }
    Advance();  // '<'
    std::string name = ParseName();
    if (name.empty()) {
      Fail("expected element name");
      return nullptr;
    }
    auto node = std::make_unique<XmlNode>(name);
    // Attributes.
    while (true) {
      SkipWhitespace();
      if (AtEnd()) {
        Fail("unterminated start tag");
        return nullptr;
      }
      if (Peek() == '/') {
        Advance();
        if (AtEnd() || Advance() != '>') {
          Fail("malformed empty-element tag");
          return nullptr;
        }
        return node;
      }
      if (Peek() == '>') {
        Advance();
        break;
      }
      std::string attr = ParseName();
      if (attr.empty()) {
        Fail("expected attribute name");
        return nullptr;
      }
      SkipWhitespace();
      if (AtEnd() || Advance() != '=') {
        Fail("expected '=' after attribute name");
        return nullptr;
      }
      SkipWhitespace();
      std::string value;
      if (!ParseAttrValue(&value)) {
        return nullptr;
      }
      node->SetAttr(attr, value);
    }
    // Content.
    while (true) {
      if (AtEnd()) {
        Fail("unterminated element <" + name + ">");
        return nullptr;
      }
      if (Peek() == '<') {
        if (Match("</")) {
          std::string close = ParseName();
          SkipWhitespace();
          if (close != name) {
            Fail("mismatched close tag </" + close + "> for <" + name + ">");
            return nullptr;
          }
          if (AtEnd() || Advance() != '>') {
            Fail("malformed close tag");
            return nullptr;
          }
          return node;
        }
        if (SkipComment()) {
          if (error_ && !error_->message.empty()) {
            return nullptr;
          }
          continue;
        }
        if (Match("<![CDATA[")) {
          std::string text;
          while (!AtEnd()) {
            if (Match("]]>")) {
              break;
            }
            text.push_back(Advance());
          }
          node->append_text(text);
          continue;
        }
        auto child = ParseElement();
        if (!child) {
          return nullptr;
        }
        node->children_ref().push_back(std::move(child));
        continue;
      }
      // Character data.
      std::string text;
      while (!AtEnd() && Peek() != '<') {
        char c = Advance();
        if (c == '&') {
          if (!AppendReference(&text)) {
            return nullptr;
          }
        } else {
          text.push_back(c);
        }
      }
      node->append_text(text);
    }
  }

  std::string_view in_;
  size_t pos_ = 0;
  int line_ = 1;
  XmlError* error_;
};

}  // namespace

std::unique_ptr<XmlDocument> XmlParse(std::string_view input, XmlError* error) {
  XmlError local;
  Parser parser(input, error ? error : &local);
  return parser.Parse();
}

}  // namespace lfi
