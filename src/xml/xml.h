// Minimal XML document model, parser, and writer.
//
// LFI's fault-injection scenarios and library fault profiles are XML documents
// (§4.1 of the paper chose XML so scenarios are both human- and
// machine-readable). The 2010 tool used libxml2; this substrate implements the
// subset the tool chain needs from scratch: elements, attributes, text,
// comments, XML declarations, and the five predefined entities. It is a DOM --
// documents are small (scenario files, profiles), so simplicity wins.

#ifndef LFI_XML_XML_H_
#define LFI_XML_XML_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lfi {

// Receives serialized bytes chunk by chunk. The one canonical serializer
// (WriteXml below) streams through a sink; ToString collects into a string
// and streaming consumers (the scenario fingerprint feeding SHA-1 directly)
// skip the materialized document entirely. Both therefore produce the same
// bytes by construction.
using XmlSink = std::function<void(std::string_view)>;

class XmlNode;
using XmlNodePtr = XmlNode*;

// One element in the tree. Text content is stored on the element itself
// (concatenation of all its text children), which is all the scenario and
// profile formats require; mixed content order is not preserved.
class XmlNode {
 public:
  explicit XmlNode(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }
  void append_text(std::string_view text) { text_.append(text); }

  // Attributes.
  void SetAttr(std::string_view key, std::string_view value);
  std::optional<std::string> Attr(std::string_view key) const;
  // Returns the attribute or `def` when absent.
  std::string AttrOr(std::string_view key, std::string_view def) const;
  // Parses the attribute as an integer; nullopt when absent or malformed.
  std::optional<int64_t> IntAttr(std::string_view key) const;
  const std::vector<std::pair<std::string, std::string>>& attrs() const { return attrs_; }

  // Children.
  XmlNode* AddChild(std::string name);
  const std::vector<std::unique_ptr<XmlNode>>& children() const { return children_; }
  // Mutable access for tree builders (parser, scenario generators).
  std::vector<std::unique_ptr<XmlNode>>& children_ref() { return children_; }
  // First child with the given element name, or nullptr.
  const XmlNode* Child(std::string_view name) const;
  XmlNode* Child(std::string_view name);
  // All children with the given element name.
  std::vector<const XmlNode*> Children(std::string_view name) const;
  // Text of the named child, or `def` when the child is absent.
  std::string ChildText(std::string_view name, std::string_view def = "") const;

  // Serializes this node (and subtree) as indented XML.
  std::string ToString(int indent = 0) const;

  // Streams the same bytes ToString produces into `sink`, without building
  // the intermediate string. ToString is implemented on top of this.
  void Write(int indent, const XmlSink& sink) const;

 private:
  std::string name_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::vector<std::unique_ptr<XmlNode>> children_;
};

// A parsed document. Owns the root element.
class XmlDocument {
 public:
  XmlDocument() = default;
  explicit XmlDocument(std::string root_name) : root_(new XmlNode(std::move(root_name))) {}

  XmlNode* root() { return root_.get(); }
  const XmlNode* root() const { return root_.get(); }
  void set_root(std::unique_ptr<XmlNode> root) { root_ = std::move(root); }
  // Detaches the root (root() becomes null): adopting a parsed subtree
  // without the deep copy CloneXml would cost.
  std::unique_ptr<XmlNode> take_root() { return std::move(root_); }

  // Serializes with an XML declaration.
  std::string ToString() const;

  // Streams the same bytes (declaration + root) into `sink`.
  void Write(const XmlSink& sink) const;

  // The declaration line every serialized document starts with.
  static constexpr std::string_view kDeclaration =
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";

 private:
  std::unique_ptr<XmlNode> root_;
};

// Parse error with 1-based line information.
struct XmlError {
  std::string message;
  int line = 0;
};

// Parses a document. On failure returns nullptr and fills *error (if given).
std::unique_ptr<XmlDocument> XmlParse(std::string_view input, XmlError* error = nullptr);

// Escapes text for use as XML character data / attribute values.
std::string XmlEscape(std::string_view s);

// Renders the single element `obj.AppendXml(parent)` emits, without the
// document declaration: the standalone form of the embedded serialization
// every journal-record artifact (Scenario, InjectionLog, CoverageMap, ...)
// uses.
template <typename T>
std::string ToXmlElement(const T& obj) {
  XmlDocument doc("wrapper");
  obj.AppendXml(doc.root());
  return doc.root()->children().front()->ToString();
}

// Parses `xml` and hands the root element to T::FromNode, turning parser
// failures into the standard line-annotated error message.
template <typename T>
std::optional<T> ParseXmlElement(const std::string& xml, std::string* error = nullptr) {
  XmlError xml_error;
  auto doc = XmlParse(xml, &xml_error);
  if (!doc || doc->root() == nullptr) {
    if (error != nullptr) {
      *error = "XML parse error at line " + std::to_string(xml_error.line) + ": " +
               xml_error.message;
    }
    return std::nullopt;
  }
  return T::FromNode(*doc->root(), error);
}

}  // namespace lfi

#endif  // LFI_XML_XML_H_
