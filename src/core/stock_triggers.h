// The six stock triggers LFI provides out of the box (§3.2).
//
//   CallStackTrigger    -- fires when the virtual call stack matches a set of
//                          user-provided frames (module, hex offset, function);
//                          this is the trigger the call-site analyzer emits.
//   ProgramStateTrigger -- fires when a relation over application globals
//                          holds (e.g. numConnections == maxConnections).
//   CallCountTrigger    -- fires exactly on the n-th evaluation; the building
//                          block of deterministic failure replay.
//   SingletonTrigger    -- fires exactly once; composed at the end of a
//                          conjunction it caps a scenario at one injection.
//   RandomTrigger       -- fires with a configurable probability.
//   DistributedTrigger  -- defers the decision to a central controller with a
//                          global view of the distributed system (§7.3).
//
// All are registered with the TriggerRegistry under their class names, so
// scenarios reference them directly. Including this header (or linking the
// core library) makes them available.

#ifndef LFI_CORE_STOCK_TRIGGERS_H_
#define LFI_CORE_STOCK_TRIGGERS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/trigger.h"
#include "util/rng.h"

namespace lfi {

DECLARE_TRIGGER(CallStackTrigger) {
 public:
  struct FrameSpec {
    std::string module;    // empty = any
    std::string function;  // empty = any
    bool has_offset = false;
    uint32_t offset = 0;
  };

  void Init(const XmlNode* init_data) override;
  bool Eval(VirtualLibc* libc, const std::string& lib_func_name, const ArgSpan& args) override;

 private:
  std::vector<FrameSpec> frames_;
};

DECLARE_TRIGGER(ProgramStateTrigger) {
 public:
  void Init(const XmlNode* init_data) override;
  bool Eval(VirtualLibc* libc, const std::string& lib_func_name, const ArgSpan& args) override;

 private:
  std::string var_;
  std::string var2_;  // compare two globals when set
  std::string op_ = "eq";
  int64_t value_ = 0;
};

DECLARE_TRIGGER(CallCountTrigger) {
 public:
  void Init(const XmlNode* init_data) override;
  bool Eval(VirtualLibc* libc, const std::string& lib_func_name, const ArgSpan& args) override;

 private:
  uint64_t target_ = 1;  // 1-based call ordinal to fire on
};

DECLARE_TRIGGER(SingletonTrigger) {
 public:
  bool Eval(VirtualLibc* libc, const std::string& lib_func_name, const ArgSpan& args) override;

 private:
  bool fired_ = false;
};

DECLARE_TRIGGER(RandomTrigger) {
 public:
  void Init(const XmlNode* init_data) override;
  void Reseed(uint64_t seed) override;
  bool Eval(VirtualLibc* libc, const std::string& lib_func_name, const ArgSpan& args) override;

 private:
  double probability_ = 0.0;
  Rng rng_{0x1f1f1f1f};
  bool seed_from_args_ = false;  // an explicit <seed> pins the stream
};

DECLARE_TRIGGER(DistributedTrigger) {
 public:
  bool Eval(VirtualLibc* libc, const std::string& lib_func_name, const ArgSpan& args) override;
};

// Linking stock_triggers.cc registers all six; this no-op anchors the object
// file against linker dead-stripping when only the registry is used.
void EnsureStockTriggersRegistered();

}  // namespace lfi

#endif  // LFI_CORE_STOCK_TRIGGERS_H_
