#include "core/trigger.h"

namespace lfi {

TriggerRegistry& TriggerRegistry::Instance() {
  static TriggerRegistry* registry = new TriggerRegistry;
  return *registry;
}

void TriggerRegistry::Register(const std::string& class_name, Factory factory) {
  factories_[class_name] = std::move(factory);
}

std::unique_ptr<Trigger> TriggerRegistry::Create(std::string_view class_name) const {
  auto it = factories_.find(class_name);
  if (it == factories_.end()) {
    return nullptr;
  }
  return it->second();
}

bool TriggerRegistry::Knows(std::string_view class_name) const {
  return factories_.count(class_name) != 0;
}

std::vector<std::string> TriggerRegistry::RegisteredClasses() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    out.push_back(name);
  }
  return out;
}

TriggerRegistrar::TriggerRegistrar(const char* class_name, TriggerRegistry::Factory factory) {
  TriggerRegistry::Instance().Register(class_name, std::move(factory));
}

}  // namespace lfi
