// The persistent campaign journal.
//
// LFI's workflow (§2, §4.1) is built on durable artifacts -- XML fault
// profiles, XML scenarios, and a test log developers mine after the run.
// The CampaignJournal extends that to the whole campaign lifecycle: an
// append-only XML file that records, for every job the engine merged, the
// scenario that ran (Scenario::ToXml), the injection log and fingerprint,
// the bugs it exposed, the coverage delta it contributed, and the feedback
// the scenario source was given. Three workflows fall out of one format:
//
//   resume   CampaignEngine::Options{journal_path, resume=true} replays the
//            journal through the engine's deterministic merge -- the source
//            streams and receives feedback exactly as live, but journaled
//            jobs take their results from disk instead of executing -- so a
//            killed campaign continues at the first unjournaled job and
//            finishes bit-identical to an uninterrupted run, at any worker
//            count.
//   replay   Any journaled injection converts to a deterministic call-count
//            scenario (InjectionLog::ReplayScenario) that reproduces the
//            crash from disk alone, in the spirit of the R2-style replay
//            the paper cites (lfi_tool replay).
//   shard    A JournalSource streams the recorded scenarios back as a
//            ScenarioSource, optionally dealing them round-robin across
//            shards, so one campaign's journal can seed or split another.
//
// Two on-disk encodings carry the same records (JournalFormat,
// auto-detected from the file's first bytes; `lfi_tool journal convert`
// round-trips them losslessly):
//
//   kExtent  the default for new journals: a binary stream of CRC-checked,
//            optionally compressed extents of up to 16 records each, closed
//            by a footer index (core/extent_journal.h; byte-level spec in
//            docs/journal-format.md). Extents are flushed whole, so a kill
//            loses at most the extent being filled -- up to 16 records,
//            which resume simply re-executes -- and recovery truncates to
//            the last valid extent boundary.
//   kXml     the debug/interchange encoding: a <journal version="1"> header
//            element carrying campaign metadata (<meta key value/>),
//            followed by one <record> element per merged job, appended and
//            flushed one at a time. A kill loses at most the record being
//            written; Load() drops a torn trailing record by truncating at
//            the last complete one.

#ifndef LFI_CORE_JOURNAL_H_
#define LFI_CORE_JOURNAL_H_

#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/campaign_engine.h"
#include "core/exploration.h"

namespace lfi {

// Header field by key, or `def` when absent (the one metadata lookup both
// CampaignJournal::Meta and callers holding a bare JournalMetadata use).
inline std::string MetaValue(const JournalMetadata& meta, const std::string& key,
                             const std::string& def = "") {
  for (const auto& [k, v] : meta) {
    if (k == key) {
      return v;
    }
  }
  return def;
}

// One merged job: identity (label, seed, scenario), what the run observed,
// and the feedback the source was given at the merge point.
struct JournalRecord {
  static constexpr size_t kNoStreamIndex = static_cast<size_t>(-1);

  std::string label;
  uint64_t seed = 0;
  // Skipped by the engine's max_bugs saturation gate: the job never ran and
  // result/feedback are empty. Recorded anyway so the replay prefix stays
  // index-aligned with the source's deterministic job stream.
  bool gated = false;
  // The job's position in the campaign's global scenario stream (the engine's
  // merge index, or CampaignJob::stream_index for dealt shards of a larger
  // stream). MergeJournals sorts on it to interleave shard journals back
  // into single-process merge order. kNoStreamIndex on records written
  // before the attribute existed.
  size_t stream_index = kNoStreamIndex;
  // Which epoch of an epoch-synchronized campaign (docs/architecture.md)
  // merged this record: feedback from epoch e reached the scenario source
  // only after every record of epoch e. kNoEpoch for ordinary campaigns.
  // Epochs are non-decreasing in record order and their stream-index ranges
  // are disjoint (`lfi_tool journal info` validates both).
  size_t epoch = kNoEpoch;
  Scenario scenario;
  JobResult result;
  RunFeedback feedback;

  void AppendXml(XmlNode* parent) const;
  std::string ToXml() const;
  static std::optional<JournalRecord> FromNode(const XmlNode& node,
                                               std::string* error = nullptr);
};

// One extent's entry in an extent journal's footer index: where its bytes
// live, how many records it holds, and the stream-index range they span --
// enough to seek to and decode any extent without touching the rest of the
// file (core/extent_journal.h).
struct ExtentInfo {
  static constexpr uint64_t kNoIndex = static_cast<uint64_t>(-1);

  uint64_t offset = 0;       // absolute byte offset of the extent header
  uint32_t stored_size = 0;  // payload bytes on disk, after the fixed header
  uint32_t record_count = 0;
  // Smallest/largest stream_index among the extent's records; kNoIndex when
  // no record carries one.
  uint64_t first_index = kNoIndex;
  uint64_t last_index = kNoIndex;
};

class ExtentJournalWriter;

class CampaignJournal {
 public:
  static constexpr int kVersion = 1;

  CampaignJournal();
  ~CampaignJournal();  // finalizes a still-open extent writer (best effort)
  CampaignJournal(CampaignJournal&&);
  CampaignJournal& operator=(CampaignJournal&&);

  // --- reading --------------------------------------------------------------

  // Reads and parses a journal file, auto-detecting the encoding from the
  // first bytes. Tolerates a torn tail (the kill-mid-write artifact):
  // everything after the last complete record (XML) or sealed extent
  // (extent format) is dropped. Fails on missing files, version mismatches,
  // and malformed records.
  static std::optional<CampaignJournal> Load(const std::string& path,
                                             std::string* error = nullptr);

  // Same, from journal bytes already in memory.
  static std::optional<CampaignJournal> Parse(std::string_view text,
                                              std::string* error = nullptr);

  const JournalMetadata& metadata() const { return meta_; }
  // Header field by key, or `def` when absent.
  std::string Meta(const std::string& key, const std::string& def = "") const {
    return MetaValue(meta_, key, def);
  }
  const std::vector<JournalRecord>& records() const { return records_; }
  // The on-disk encoding this journal was loaded from / created with.
  JournalFormat format() const { return format_; }
  // Extent journals: the footer index (or its scan-recovered equivalent),
  // one entry per sealed extent. Empty for XML journals.
  const std::vector<ExtentInfo>& extents() const { return extents_; }
  // Recovery introspection (`lfi_tool journal doctor`): how many bytes of
  // the loaded file were intact (through the last complete record / sealed
  // extent) -- anything past that is a torn tail a kill left behind.
  size_t intact_bytes() const { return intact_bytes_; }
  // Extent journals: the footer index was present and valid, i.e. the
  // journal was finalized and not torn (false = recovered by scan). XML has
  // no finalization marker and always reports true.
  bool sealed() const { return sealed_; }

  // --- writing --------------------------------------------------------------

  // Creates (truncating) `path` and writes the header in the requested
  // encoding. The journal is then writable via Append().
  bool Create(const std::string& path, JournalMetadata meta, std::string* error = nullptr,
              JournalFormat format = JournalFormat::kExtent);

  // Reopens a loaded journal's file for appending (resume), in whatever
  // encoding the file already uses: loaded records stay readable as the
  // replay prefix, new records land after them. The torn tail a kill left
  // -- and, for extent journals, the old footer -- is truncated away first,
  // so the file stays parseable after the resumed run appends past it.
  bool OpenAppend(const std::string& path, std::string* error = nullptr);

  // Serializes and appends one record. XML journals flush per record; the
  // extent encoding buffers and flushes per sealed extent (every
  // ExtentJournalWriter::kRecordsPerExtent records), so a kill loses at
  // most the open extent. Requires Create()/OpenAppend().
  bool Append(const JournalRecord& record);

  // Completes a writable journal: seals the open extent, writes the footer
  // index, flushes, and closes the write stream (no-op beyond a flush for
  // XML). Called by the destructor as a best-effort fallback; campaigns
  // that must surface I/O failures call it explicitly.
  bool Finalize(std::string* error = nullptr);

  bool writable() const;

 private:
  JournalMetadata meta_;
  std::vector<JournalRecord> records_;
  JournalFormat format_ = JournalFormat::kExtent;
  std::vector<ExtentInfo> extents_;
  // How many bytes of the loaded file were intact (through the last
  // complete record / sealed extent); OpenAppend truncates to this before
  // appending.
  size_t intact_bytes_ = 0;
  bool sealed_ = true;
  struct FileCloser {
    void operator()(std::FILE* f) const { std::fclose(f); }
  };
  std::unique_ptr<std::FILE, FileCloser> out_;          // XML append stream
  std::unique_ptr<ExtentJournalWriter> extent_out_;     // extent append stream
};

// Streams a journal's recorded scenarios back as campaign jobs (label, seed,
// scenario -- results are NOT replayed; the jobs run live through whatever
// runner the engine is given), so one campaign's journal can seed another
// campaign or be split across processes. Open-loop: feedback is ignored.
class JournalSource : public ScenarioSource {
 public:
  struct Options {
    // Deal records round-robin across `shard_count` shards and stream only
    // those belonging to `shard_index`. The default streams everything.
    size_t shard_index = 0;
    size_t shard_count = 1;
    // Gated records never executed in the recording run; streaming them
    // re-runs scenarios the original campaign skipped.
    bool include_gated = false;
  };

  explicit JournalSource(const CampaignJournal& journal) : JournalSource(journal, Options()) {}
  JournalSource(const CampaignJournal& journal, Options options);

  std::vector<CampaignJob> NextBatch(size_t max_jobs) override;

  size_t size() const { return jobs_.size(); }

 private:
  std::vector<CampaignJob> jobs_;
  size_t next_ = 0;
};

// --- merging ----------------------------------------------------------------

// What one input journal contributed to a merge (per-shard stats).
struct MergeInputStats {
  std::string path;
  size_t shard_index = static_cast<size_t>(-1);  // the header's "shard" key, if any
  size_t records = 0;
  size_t scenarios_run = 0;  // non-gated records
  size_t bugs = 0;           // crash sites deduplicated within this input
};

// The engine-fold state an incremental merge carries between calls: the
// crash-site dedup set, the cumulative coverage, and how far the merged
// stream has grown. A distributed coverage-guided campaign merges one
// epoch's shard journals per call, so folding from this state -- instead of
// re-folding from record zero like one-shot MergeJournals -- keeps the
// per-epoch cost proportional to the epoch, not the campaign so far.
struct MergeFoldState {
  std::set<FoundBug> bugs;
  CoverageMap coverage;
  size_t scenarios_run = 0;
  size_t records = 0;            // records merged so far
  size_t next_stream_index = 0;  // smallest stream index a new record may claim
};

// The incremental merge step: interleaves `inputs`' records by recorded
// stream index (ties broken by each input's "shard" header key, then local
// position -- input order never matters), rejects overlaps both within the
// batch and against everything `fold` already merged, folds each record
// through the engine's dedup/feedback fold continuing from `fold`, and
// appends the folded records to the writable `output` journal. `fold` is
// advanced in place; `merged_records` (when non-null) receives the folded
// records in merge order, which is how the orchestrator delivers the
// epoch's feedback to its master source. One-shot MergeJournals is exactly
// this with a fresh fold and a fresh output file.
bool MergeRecordsInto(CampaignJournal& output, const std::vector<CampaignJournal>& inputs,
                      MergeFoldState* fold, std::string* error = nullptr,
                      std::vector<JournalRecord>* merged_records = nullptr);

// Merges N journals (typically the per-shard artifacts of one sharded
// campaign) into a single journal at `output_path`:
//
//   1. every input's campaign identity (command, system, strategy, budget,
//      seed, epoch-len, exhaustive) must agree; the output header carries
//      the agreed identity with the shard keys (shard, shards, epoch)
//      dropped, so the merged journal reads as the single-process
//      campaign's own journal;
//   2. records are interleaved deterministically -- sorted by their recorded
//      global stream index (shard header index, then input position, break
//      ties) -- so any input order yields a bit-identical output; and
//   3. the merge re-runs the engine's deterministic fold over the sorted
//      records: crash-site dedup in stream order and per-record feedback
//      recomputed against the rebuilt cumulative coverage, replacing the
//      shard-local feedback each input recorded.
//
// The result is byte-identical to the journal the equivalent single-process
// run writes, and therefore resumable. Refuses to overwrite an existing
// output file. Returns the merged campaign result (bugs, cumulative
// coverage, scenarios run); `metadata`/`stats` receive the output header and
// per-input accounting when non-null. `format` picks the output encoding;
// nullopt writes whatever encoding the first input uses (inputs of mixed
// encodings merge fine -- the format is not part of the campaign identity).
std::optional<ExplorationResult> MergeJournals(
    const std::vector<std::string>& inputs, const std::string& output_path,
    std::string* error = nullptr, JournalMetadata* metadata = nullptr,
    std::vector<MergeInputStats>* stats = nullptr,
    std::optional<JournalFormat> format = std::nullopt);

// --- converting -------------------------------------------------------------

// Rewrites a journal in another encoding, preserving header metadata and
// every record exactly -- converting back yields a byte-identical file (for
// finalized inputs; recovery of a torn input drops its tail first, exactly
// as Load does). `format` defaults to the opposite of the input's encoding.
// Refuses to overwrite an existing output. On success fills `records` and
// `written` (the record count and output encoding) when non-null.
bool ConvertJournal(const std::string& input_path, const std::string& output_path,
                    std::optional<JournalFormat> format = std::nullopt,
                    std::string* error = nullptr, size_t* records = nullptr,
                    JournalFormat* written = nullptr);

}  // namespace lfi

#endif  // LFI_CORE_JOURNAL_H_
