// Warm-instance job execution: snapshot/reset target pools.
//
// A campaign job's wall-clock is dominated by target bring-up: every cold run
// builds a fresh VirtualFs/VirtualNet/application, replays the setup phase,
// and throws it all away after one scenario. This layer amortizes that, the
// way AFL's fork server amortizes execve: a WarmTarget constructs the target
// once with injection disarmed, snapshots the post-setup state (filesystem,
// network fabric, libc-visible process state, application fields, coverage),
// and Reset() rolls everything back bit-exactly between jobs.
//
// The correctness bar is strict: bugs, coverage, fingerprints, and campaign
// journal *bytes* must be identical to cold-start execution at any worker or
// shard count. That holds because (a) the snapshot point is exactly the state
// a cold runner is in when it hands the target to TestController::RunTest,
// and (b) Reset() restores every bit of state a job can mutate -- anything it
// cannot restore (a setup-era handle the job released) makes Reset() return
// false and the pool rebuilds cold instead of reusing a tainted instance.
//
// Pool discipline is checkout/checkin: a worker takes an idle instance (or
// builds one when none is idle), runs the job, resets, and returns it. A
// crashed job is fine -- SimCrash unwinds through RunTest, which detaches the
// interposer, and Reset() erases the wreckage. A job whose Reset() fails is
// dropped. A *hung* job (engine watchdog fired, thread abandoned) never
// checks its instance back in, so the next job simply builds cold; if the
// abandoned thread eventually finishes and its Reset() succeeds, re-pooling
// the instance is legitimate -- it is back in bit-exact snapshot state.

#ifndef LFI_CORE_WARM_POOL_H_
#define LFI_CORE_WARM_POOL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/campaign_engine.h"

namespace lfi {

// One reusable target instance: owns the application plus its virtual
// environment, holds the post-setup snapshot, and knows how to roll back.
class WarmTarget {
 public:
  virtual ~WarmTarget() = default;

  // Runs one job against the warm instance. Equivalent -- bug list, coverage,
  // fingerprint, injection log -- to a cold runner's execution of the same
  // job.
  virtual JobResult Run(const CampaignJob& job) = 0;

  // Rolls the instance back to its post-setup snapshot. Returns false when
  // the state is non-restorable (the job released a setup-era resource); the
  // instance must then be discarded.
  virtual bool Reset() = 0;
};

// A thread-safe pool of warm instances sharing one factory. Sized by demand:
// at most one instance per concurrently running job ever exists, so an
// N-worker engine holds at most N.
class WarmPool {
 public:
  using Factory = std::function<std::unique_ptr<WarmTarget>()>;

  explicit WarmPool(Factory factory) : factory_(std::move(factory)) {}

  WarmPool(const WarmPool&) = delete;
  WarmPool& operator=(const WarmPool&) = delete;

  // Checkout -> Run -> Reset -> checkin. The instance is dropped (and the
  // next job pays a cold build) when Reset() fails or the job escapes with
  // an exception the harness did not absorb.
  JobResult RunJob(const CampaignJob& job);

  // Adapts the pool to the engine's runner seam.
  CampaignEngine::ResultRunner AsRunner() {
    return [this](const CampaignJob& job) { return RunJob(job); };
  }

  struct Stats {
    uint64_t builds = 0;   // factory invocations (cold bring-ups)
    uint64_t runs = 0;     // jobs executed
    uint64_t resets = 0;   // successful rollbacks (instance re-pooled)
    uint64_t dropped = 0;  // instances discarded after a failed Reset()
  };
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  std::unique_ptr<WarmTarget> Checkout();
  void Checkin(std::unique_ptr<WarmTarget> instance);

  Factory factory_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<WarmTarget>> idle_;
  Stats stats_;
};

}  // namespace lfi

#endif  // LFI_CORE_WARM_POOL_H_
