#include "core/scenario.h"

#include <cstdlib>
#include <stdexcept>

#include "util/errno_codes.h"
#include "util/sha1.h"
#include "util/string_util.h"

namespace lfi {

std::unique_ptr<XmlNode> CloneXml(const XmlNode& node) {
  auto copy = std::make_unique<XmlNode>(node.name());
  copy->set_text(node.text());
  for (const auto& [k, v] : node.attrs()) {
    copy->SetAttr(k, v);
  }
  for (const auto& child : node.children()) {
    copy->children_ref().push_back(CloneXml(*child));
  }
  return copy;
}

bool TriggerDecl::operator==(const TriggerDecl& o) const {
  if (id != o.id || class_name != o.class_name) {
    return false;
  }
  if ((args == nullptr) != (o.args == nullptr)) {
    return false;
  }
  return args == nullptr || args->ToString() == o.args->ToString();
}

const TriggerDecl* Scenario::FindTrigger(const std::string& id) const {
  for (const auto& t : triggers_) {
    if (t.id == id) {
      return &t;
    }
  }
  return nullptr;
}

std::string Scenario::ToXml() const {
  XmlDocument doc("scenario");
  WriteXmlInto(doc.root());
  return doc.ToString();
}

void Scenario::AppendXml(XmlNode* parent) const {
  WriteXmlInto(parent->AddChild("scenario"));
}

void Scenario::WriteXmlInto(XmlNode* root) const {
  for (const auto& t : triggers_) {
    XmlNode* node = root->AddChild("trigger");
    node->SetAttr("id", t.id);
    node->SetAttr("class", t.class_name);
    if (t.args) {
      node->children_ref().push_back(CloneXml(*t.args));
    }
  }
  for (const auto& f : functions_) {
    XmlNode* node = root->AddChild("function");
    node->SetAttr("name", f.function);
    if (f.argc > 0) {
      node->SetAttr("argc", StrFormat("%d", f.argc));
    }
    if (f.unused) {
      node->SetAttr("return", "unused");
      node->SetAttr("errno", "unused");
    } else {
      node->SetAttr("return", StrFormat("%lld", static_cast<long long>(f.retval)));
      if (f.errno_value != 0) {
        node->SetAttr("errno", ErrnoName(f.errno_value));
      }
    }
    for (const auto& ref : f.triggers) {
      XmlNode* r = node->AddChild("reftrigger");
      r->SetAttr("ref", ref.ref);
      if (ref.negate) {
        r->SetAttr("negate", "true");
      }
    }
  }
}

std::optional<Scenario> Scenario::Parse(const std::string& xml, std::string* error) {
  auto fail = [&](std::string message) -> std::optional<Scenario> {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return std::nullopt;
  };

  XmlError xml_error;
  auto doc = XmlParse(xml, &xml_error);
  if (!doc) {
    return fail(StrFormat("XML parse error at line %d: %s", xml_error.line,
                          xml_error.message.c_str()));
  }
  const XmlNode* root = doc->root();
  if (root == nullptr || (root->name() != "scenario" && root->name() != "plan")) {
    return fail("scenario root element must be <scenario>");
  }
  return FromNode(*root, error);
}

std::optional<Scenario> Scenario::FromNode(const XmlNode& node, std::string* error) {
  auto fail = [&](std::string message) -> std::optional<Scenario> {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return std::nullopt;
  };

  Scenario scenario;
  for (const auto& child : node.children()) {
    if (child->name() == "trigger") {
      TriggerDecl decl;
      decl.id = child->AttrOr("id", "");
      decl.class_name = child->AttrOr("class", "");
      if (decl.id.empty() || decl.class_name.empty()) {
        return fail("<trigger> requires id and class attributes");
      }
      if (scenario.FindTrigger(decl.id) != nullptr) {
        return fail("duplicate trigger id '" + decl.id + "'");
      }
      if (const XmlNode* args = child->Child("args")) {
        decl.args = std::shared_ptr<XmlNode>(CloneXml(*args).release());
      }
      scenario.AddTrigger(std::move(decl));
    } else if (child->name() == "function") {
      FunctionAssoc assoc;
      assoc.function = child->AttrOr("name", "");
      if (assoc.function.empty()) {
        return fail("<function> requires a name attribute");
      }
      assoc.argc = static_cast<int>(child->IntAttr("argc").value_or(0));
      std::string ret = child->AttrOr("return", child->AttrOr("retval", "unused"));
      if (ret == "unused") {
        assoc.unused = true;
      } else {
        auto v = ParseInt(ret);
        if (!v) {
          return fail("bad return value '" + ret + "' for " + assoc.function);
        }
        assoc.retval = *v;
        std::string err = child->AttrOr("errno", "");
        if (!err.empty() && err != "unused") {
          auto e = ErrnoFromName(err);
          if (!e) {
            return fail("unknown errno '" + err + "' for " + assoc.function);
          }
          assoc.errno_value = *e;
        }
      }
      for (const XmlNode* ref : child->Children("reftrigger")) {
        TriggerRef trigger_ref;
        trigger_ref.ref = ref->AttrOr("ref", "");
        if (trigger_ref.ref.empty()) {
          return fail("<reftrigger> requires a ref attribute");
        }
        trigger_ref.negate = ref->AttrOr("negate", "false") == "true";
        assoc.triggers.push_back(std::move(trigger_ref));
      }
      scenario.AddFunction(std::move(assoc));
    }
    // Unknown elements are ignored for forward compatibility.
  }

  // Validate references.
  for (const auto& f : scenario.functions()) {
    for (const auto& ref : f.triggers) {
      if (scenario.FindTrigger(ref.ref) == nullptr) {
        return fail("function " + f.function + " references undeclared trigger '" + ref.ref +
                    "'");
      }
    }
  }
  return scenario;
}

std::string ScenarioFingerprint(const Scenario& scenario) {
  // The dedup/shard-dealing hot path: stream the canonical document bytes
  // straight into the digest instead of materializing the XML string per
  // scenario. Byte-equality with Sha1::HexDigest(scenario.ToXml()) is
  // guaranteed by sharing the one serializer (XmlNode::Write), and pinned by
  // ScenarioTest.FingerprintMatchesMaterializedXml.
  XmlDocument doc("scenario");
  scenario.WriteXmlInto(doc.root());
  Sha1 sha;
  doc.Write([&sha](std::string_view chunk) { sha.Update(chunk); });
  return Sha1::ToHex(sha.Finish());
}

size_t ScenarioShard(const Scenario& scenario, size_t shard_count) {
  if (shard_count == 0) {
    throw std::invalid_argument("ScenarioShard: shard_count must be > 0");
  }
  // The leading 16 hex digits are 64 uniformly distributed bits; taking them
  // through strtoull keeps the assignment stable across builds and standard
  // libraries (std::hash would not be).
  std::string fingerprint = ScenarioFingerprint(scenario);
  uint64_t bits = std::strtoull(fingerprint.substr(0, 16).c_str(), nullptr, 16);
  return static_cast<size_t>(bits % shard_count);
}

}  // namespace lfi
