// The LFI interposition runtime (§4.3, §6).
//
// Implements the Interposer installed on a VirtualLibc. For every
// intercepted call it looks up the function's associations in O(1)
// (independent of scenario size), evaluates the referenced triggers in
// declaration order with short-circuit conjunction semantics, and -- when a
// whole conjunction votes yes on a non-"unused" association -- injects the
// configured return value and errno side effect, recording the event in the
// injection log. Trigger instances are created eagerly but initialized
// lazily, right before their first evaluation, to keep program startup free
// of LFI overhead.
//
// The per-call path is allocation-free: functions arrive as pre-interned
// FunctionIds, associations and call counters live in dense vectors indexed
// by id, and the fired-trigger id string is only materialized when an
// injection is actually recorded. Two ablations quantify the design (§7.4):
// linear_lookup replaces the O(1) association lookup with a scan, and
// string_keyed_reference reinstates the historical string-keyed maps --
// per-call std::string copy, two string-hash probes, heap-allocated ArgVec
// -- as the before/after baseline of bench_interpose_overhead.

#ifndef LFI_CORE_RUNTIME_H_
#define LFI_CORE_RUNTIME_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/injection_log.h"
#include "core/scenario.h"
#include "core/trigger.h"
#include "vlib/interposer.h"

namespace lfi {

class Runtime : public Interposer {
 public:
  struct Options {
    // Disables short-circuit evaluation (every trigger of a conjunction is
    // evaluated even after one returns false). Exists for the ablation
    // benchmark only; semantics are unchanged for stateless triggers.
    bool disable_short_circuit = false;
    // Uses a linear scan over all associations instead of the id-indexed
    // vector, to quantify the O(1)-lookup design decision.
    bool linear_lookup = false;
    // Reinstates the pre-interning hot path: a std::string copy of the
    // function name, string-keyed hash maps for association lookup and call
    // counts, and a heap-allocated ArgVec per intercepted call. Injection
    // behaviour is bit-identical; only the per-call cost differs. This is
    // the "before" of the §7.4 overhead comparison.
    bool string_keyed_reference = false;
    // Per-scenario RNG seed. When non-zero, every trigger instance is
    // Reseed()ed with a stream derived from this value and its declaration
    // ordinal, making randomized scenarios bit-reproducible regardless of
    // which campaign worker runs them. Zero leaves triggers on their
    // declared or default seeds.
    uint64_t seed = 0;
  };

  // Process-wide lookup-mode defaults, ORed into the options of every
  // Runtime constructed afterwards. Lets equivalence tests and benches run
  // entire campaigns on the ablation paths without threading options through
  // every harness. Set once before a run, reset after; not meant to be
  // flipped while runtimes are being constructed concurrently.
  static void SetLookupModeDefaults(bool linear_lookup, bool string_keyed_reference);

  // Builds the runtime from a scenario. Unknown trigger classes surface in
  // error(); the runtime then behaves as if those triggers always vote no.
  explicit Runtime(const Scenario& scenario) : Runtime(scenario, Options()) {}
  Runtime(const Scenario& scenario, Options options);
  ~Runtime() override;

  InjectionDecision OnCall(VirtualLibc* libc, FunctionId function,
                           const ArgSpan& args) override;

  const InjectionLog& log() const { return log_; }
  InjectionLog& mutable_log() { return log_; }
  const std::string& error() const { return error_; }

  // Telemetry for the overhead evaluation (§7.4).
  uint64_t interceptions() const { return interceptions_; }
  uint64_t trigger_evaluations() const { return trigger_evaluations_; }
  uint64_t injections() const { return injections_; }
  // Calls of `function` intercepted so far.
  uint64_t call_count(std::string_view function) const;

  // Arms/disarms injection globally. Disarmed, triggers still run (so the
  // overhead benches measure pure trigger cost, §7.4: "we did not actually
  // inject faults, but allowed the triggers to pass the calls through").
  void set_armed(bool armed) { armed_ = armed; }
  bool armed() const { return armed_; }

 private:
  struct TriggerInstance {
    TriggerDecl decl;
    std::unique_ptr<Trigger> trigger;
    size_t ordinal = 0;  // declaration position, keys the Reseed stream
    bool initialized = false;
  };
  struct Assoc {
    FunctionAssoc spec;
    FunctionId function_id = 0;              // interned spec.function
    std::vector<TriggerInstance*> triggers;  // resolved refs, conjunction order
    std::vector<bool> negate;
  };

  bool EvalConjunction(Assoc& assoc, VirtualLibc* libc, const std::string& function,
                       const ArgSpan& args);

  // The disjunction over `indices` shared by every lookup mode.
  InjectionDecision Dispatch(VirtualLibc* libc, const std::string& function,
                             const ArgSpan& args, const std::vector<size_t>& indices,
                             uint64_t call_number);

  Options options_;
  std::string error_;
  std::vector<std::unique_ptr<TriggerInstance>> instances_;
  std::vector<Assoc> assocs_;  // declaration order (disjunction across same name)
  // Assoc indices per FunctionId; the single hot-path lookup (one bounds
  // check + one vector index). Sized to the largest scenario function id.
  std::vector<std::vector<size_t>> by_function_;
  std::vector<uint64_t> call_counts_;  // dense, indexed by FunctionId
  // string_keyed_reference ablation state: the seed's maps, rebuilt only
  // when that mode is active.
  std::unordered_map<std::string, std::vector<size_t>> ref_by_function_;
  std::unordered_map<std::string, uint64_t> ref_call_counts_;
  // Triggers of the current conjunction that voted yes; reused across calls
  // so the common no-injection case never allocates. The fired-id string is
  // built from this only when an injection is recorded.
  std::vector<const TriggerInstance*> fired_scratch_;
  InjectionLog log_;
  bool armed_ = true;
  uint64_t interceptions_ = 0;
  uint64_t trigger_evaluations_ = 0;
  uint64_t injections_ = 0;
  uint64_t sequence_ = 0;
};

}  // namespace lfi

#endif  // LFI_CORE_RUNTIME_H_
