#include "core/campaign_engine.h"

#include <atomic>
#include <memory>
#include <optional>
#include <stdexcept>

#include "core/analysis_cache.h"
#include "core/exploration.h"
#include "core/scenario_gen.h"
#include "util/string_util.h"
#include "util/work_queue.h"

namespace lfi {

bool BugSink::Report(const FoundBug& bug) {
  std::lock_guard<std::mutex> lock(mu_);
  return bugs_.insert(bug).second;
}

void BugSink::Report(const std::vector<FoundBug>& bugs) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const FoundBug& bug : bugs) {
    bugs_.insert(bug);
  }
}

size_t BugSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bugs_.size();
}

std::vector<FoundBug> BugSink::Sorted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {bugs_.begin(), bugs_.end()};
}

ExplorationResult CampaignEngine::RunOrdered(const std::vector<CampaignJob>& jobs,
                                             const ResultRunner& runner,
                                             ScenarioSource* source) const {
  // Completed jobs park their results here until every lower-index job has
  // finished; the cursor then folds them into the result in job order. That
  // ordered merge -- not the execution order -- decides dedup winners, the
  // max_bugs cutoff, and what each job newly covered, which is what makes N
  // workers bit-identical to one.
  ExplorationResult out;
  std::set<FoundBug> bugs;
  std::vector<std::optional<JobResult>> pending(jobs.size());
  size_t cursor = 0;
  std::mutex merge_mu;
  std::atomic<bool> saturated{false};

  auto deliver = [&](size_t index, JobResult result) {
    std::lock_guard<std::mutex> lock(merge_mu);
    pending[index] = std::move(result);
    while (cursor < jobs.size() && pending[cursor].has_value()) {
      const CampaignJob& job = jobs[cursor];
      RunFeedback feedback;
      bool gated = job.skip_when_saturated && options_.max_bugs != 0 &&
                   bugs.size() >= options_.max_bugs;
      if (!gated) {
        JobResult& merged = *pending[cursor];
        for (const FoundBug& bug : merged.bugs) {
          feedback.new_bug |= bugs.insert(bug).second;
        }
        feedback.injections = merged.injections;
        feedback.fingerprint = std::move(merged.fingerprint);
        feedback.new_blocks = merged.coverage.NewlyCoveredVersus(out.coverage);
        out.coverage.Absorb(merged.coverage);
        ++out.scenarios_run;
      }
      if (options_.max_bugs != 0 && bugs.size() >= options_.max_bugs) {
        saturated.store(true, std::memory_order_release);
      }
      if (source != nullptr) {
        source->OnFeedback(job, feedback);
      }
      pending[cursor].reset();  // the cursor never revisits a merged slot
      ++cursor;
    }
  };

  WorkerPool::ParallelFor(options_.workers, jobs.size(), [&](size_t index, int worker) {
    (void)worker;
    const CampaignJob& job = jobs[index];
    // Advisory fast-path: once saturated, gated jobs skip execution. The
    // merge-side gate above is the authoritative (deterministic) one; this
    // only avoids wasted work, since late results are discarded anyway.
    if (job.skip_when_saturated && saturated.load(std::memory_order_acquire)) {
      deliver(index, {});
      return;
    }
    deliver(index, job.explore ? job.explore(job) : runner(job));
  });

  out.bugs = {bugs.begin(), bugs.end()};
  return out;
}

std::vector<FoundBug> CampaignEngine::Run(const std::vector<CampaignJob>& jobs,
                                          const JobRunner& runner) const {
  ResultRunner adapted = [&runner](const CampaignJob& job) {
    JobResult result;
    result.bugs = job.run ? job.run(job) : runner(job);
    return result;
  };
  return RunOrdered(jobs, adapted, nullptr).bugs;
}

std::vector<FoundBug> CampaignEngine::Run(const std::vector<CampaignJob>& jobs) const {
  return Run(jobs, [](const CampaignJob& job) -> std::vector<FoundBug> {
    throw std::logic_error("CampaignJob '" + job.label +
                           "' has no runner and none was passed to Run()");
  });
}

ExplorationResult CampaignEngine::Run(ScenarioSource& source, const ResultRunner& runner) const {
  const size_t batch_size = options_.batch_size == 0 ? 8 : options_.batch_size;

  if (!source.needs_feedback()) {
    // Open-loop source: nothing it schedules depends on what ran, so drain
    // it up front and run everything through the eager merge -- no batch
    // barriers, and saturation skips take effect mid-flight.
    std::vector<CampaignJob> jobs;
    while (true) {
      std::vector<CampaignJob> batch = source.NextBatch(batch_size);
      if (batch.empty()) {
        break;
      }
      for (CampaignJob& job : batch) {
        jobs.push_back(std::move(job));
      }
    }
    return RunOrdered(jobs, runner, &source);
  }

  ExplorationResult out;
  std::set<FoundBug> bugs;
  // Written only between batches, read by the workers of the *next* batch:
  // the advisory skip is deterministic because it depends solely on fully
  // merged batches, never on intra-batch completion order.
  bool saturated = false;

  while (true) {
    std::vector<CampaignJob> batch = source.NextBatch(batch_size);
    if (batch.empty()) {
      break;
    }
    std::vector<JobResult> results(batch.size());
    WorkerPool::ParallelFor(options_.workers, batch.size(), [&](size_t index, int worker) {
      (void)worker;
      const CampaignJob& job = batch[index];
      if (job.skip_when_saturated && saturated) {
        return;  // merge-side gate below is the authoritative one
      }
      results[index] = job.explore ? job.explore(job) : runner(job);
    });

    // The deterministic merge point: job order decides dedup winners, the
    // max_bugs cutoff, and -- new versus the batch API -- what each job
    // newly covered, since the cumulative map grows in job order too.
    for (size_t index = 0; index < batch.size(); ++index) {
      const CampaignJob& job = batch[index];
      RunFeedback feedback;
      bool gated = job.skip_when_saturated && options_.max_bugs != 0 &&
                   bugs.size() >= options_.max_bugs;
      if (!gated) {
        JobResult& result = results[index];
        for (const FoundBug& bug : result.bugs) {
          feedback.new_bug |= bugs.insert(bug).second;
        }
        feedback.injections = result.injections;
        feedback.fingerprint = std::move(result.fingerprint);
        feedback.new_blocks = result.coverage.NewlyCoveredVersus(out.coverage);
        out.coverage.Absorb(result.coverage);
        ++out.scenarios_run;
      }
      source.OnFeedback(job, feedback);
    }
    if (options_.max_bugs != 0 && bugs.size() >= options_.max_bugs) {
      saturated = true;
    }
  }

  out.bugs = {bugs.begin(), bugs.end()};
  return out;
}

ExplorationResult CampaignEngine::Run(ScenarioSource& source) const {
  return Run(source, [](const CampaignJob& job) -> JobResult {
    throw std::logic_error("CampaignJob '" + job.label +
                           "' has no explore runner and none was passed to Run()");
  });
}

std::vector<CampaignJob> AnalyzerJobs(const Image& binary, const FaultProfile& profile,
                                      uint64_t seed_base) {
  std::vector<CampaignJob> jobs;
  const std::vector<CallSiteReport>& reports =
      AnalysisCache::Instance().Reports(binary, profile);
  for (const CallSiteReport& report : reports) {
    if (report.check_class == CheckClass::kFull) {
      continue;
    }
    Scenario scenario = GenerateSiteScenario(report, profile);
    if (scenario.functions().empty()) {
      continue;
    }
    CampaignJob job;
    job.scenario = std::move(scenario);
    job.label = StrFormat("%s@%s+0x%x", report.site.function.c_str(),
                          report.site.enclosing.c_str(), report.site.offset);
    job.seed = seed_base + 0x9e3779b97f4a7c15ull * (report.site.offset + 1);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

Scenario MakeRandomScenario(const std::string& function, int64_t retval, int errno_value,
                            double probability, uint64_t seed) {
  Scenario s;
  TriggerDecl decl;
  decl.id = "rand";
  decl.class_name = "RandomTrigger";
  auto args = std::make_unique<XmlNode>("args");
  args->AddChild("probability")->set_text(StrFormat("%g", probability));
  args->AddChild("seed")->set_text(StrFormat("%llu", (unsigned long long)seed));
  decl.args = std::shared_ptr<XmlNode>(args.release());
  s.AddTrigger(std::move(decl));
  FunctionAssoc assoc;
  assoc.function = function;
  assoc.retval = retval;
  assoc.errno_value = errno_value;
  assoc.triggers.push_back(TriggerRef{"rand", false});
  s.AddFunction(std::move(assoc));
  return s;
}

Scenario MakeCallCountScenario(const std::string& function, uint64_t count, int64_t retval,
                               int errno_value) {
  Scenario s;
  TriggerDecl decl;
  decl.id = "nth";
  decl.class_name = "CallCountTrigger";
  auto args = std::make_unique<XmlNode>("args");
  args->AddChild("count")->set_text(StrFormat("%llu", (unsigned long long)count));
  decl.args = std::shared_ptr<XmlNode>(args.release());
  s.AddTrigger(std::move(decl));
  FunctionAssoc assoc;
  assoc.function = function;
  assoc.retval = retval;
  assoc.errno_value = errno_value;
  assoc.triggers.push_back(TriggerRef{"nth", false});
  s.AddFunction(std::move(assoc));
  return s;
}

}  // namespace lfi
