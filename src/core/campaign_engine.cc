#include "core/campaign_engine.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>

#include "core/analysis_cache.h"
#include "core/exploration.h"
#include "core/journal.h"
#include "core/scenario_gen.h"
#include "util/failpoint.h"
#include "util/string_util.h"
#include "util/work_queue.h"

namespace lfi {
namespace {

// The engine's side of the campaign journal: the replay prefix loaded from
// disk plus the append stream for newly merged jobs. Null when the run is
// not journaled.
class JournalHook {
 public:
  // Returns nullptr when Options carries no journal path. Throws
  // std::runtime_error on unusable journals: create/open failures, corrupt
  // files, or resuming a journal whose recorded campaign identity
  // (journal_meta) differs from this run's.
  static std::unique_ptr<JournalHook> Open(const CampaignEngine::Options& options) {
    if (options.journal_path.empty()) {
      return nullptr;
    }
    auto hook = std::unique_ptr<JournalHook>(new JournalHook());
    hook->abort_after_ = options.abort_after_records;
    std::string error;
    bool exists = [&] {
      std::FILE* f = std::fopen(options.journal_path.c_str(), "rb");
      if (f != nullptr) {
        std::fclose(f);
      }
      return f != nullptr;
    }();
    if (options.resume && exists) {
      auto loaded = CampaignJournal::Load(options.journal_path, &error);
      if (!loaded) {
        throw std::runtime_error(error);
      }
      for (const auto& [key, value] : options.journal_meta) {
        std::string recorded = loaded->Meta(key, value);
        if (recorded != value) {
          throw std::runtime_error("journal " + options.journal_path +
                                   " records a campaign with " + key + "='" + recorded +
                                   "', not '" + value + "'; resuming it would diverge");
        }
      }
      hook->journal_ = std::move(*loaded);
      if (!hook->journal_.OpenAppend(options.journal_path, &error)) {
        throw std::runtime_error(error);
      }
      return hook;
    }
    if (exists) {
      // Truncating an existing journal would silently destroy the artifact
      // resume needs -- the likeliest cause is re-running the original
      // command after a kill instead of `resume`.
      throw std::runtime_error("journal " + options.journal_path +
                               " already exists; resume it to continue the campaign, or "
                               "delete it to start fresh");
    }
    // Fresh journal; a resume of a never-created file (killed before the
    // header was written) degenerates to the same thing. journal_format only
    // applies here -- the resume path above inherits whatever encoding the
    // existing file uses.
    if (!hook->journal_.Create(options.journal_path, options.journal_meta, &error,
                               options.journal_format)) {
      throw std::runtime_error(error);
    }
    return hook;
  }

  size_t replay_count() const { return journal_.records().size(); }

  // The journaled result for the job at this global index, nullptr once the
  // stream has moved past the replay prefix.
  const JournalRecord* Replay(size_t index) const {
    return index < journal_.records().size() ? &journal_.records()[index] : nullptr;
  }

  // Resume only makes sense against the same deterministic job stream; a
  // label mismatch means the source diverged from the recording run.
  void CheckAligned(size_t index, const CampaignJob& job) const {
    const JournalRecord* record = Replay(index);
    if (record != nullptr && record->label != job.label) {
      throw std::runtime_error("journal replay diverged at record " + std::to_string(index) +
                               ": journal has '" + record->label + "', source produced '" +
                               job.label + "'");
    }
  }

  // Called at the serialized merge point, in job order, for jobs past the
  // replay prefix. `merge_index` is the engine's global merge position; a job
  // that carries its own stream_index (a dealt shard of a larger stream)
  // keeps it, so the journal records positions in the unsharded stream.
  // `epoch` (kNoEpoch = none) marks which epoch of an epoch-synchronized
  // campaign produced the record.
  void Append(const CampaignJob& job, bool gated, const JobResult& result,
              const RunFeedback& feedback, size_t merge_index, size_t epoch) {
    JournalRecord record;
    record.label = job.label;
    record.seed = job.seed;
    record.gated = gated;
    record.stream_index =
        job.stream_index != CampaignJob::kNoStreamIndex ? job.stream_index : merge_index;
    record.epoch = epoch;
    record.scenario = job.scenario;
    if (!gated) {
      record.result = result;
      record.feedback = feedback;
    }
    if (FailpointFired("engine.record")) {
      throw std::runtime_error("failpoint engine.record fired before record " +
                               std::to_string(replay_count() + appended_));
    }
    if (!journal_.Append(record)) {
      // A swallowed write failure (disk full, I/O error) would break the
      // "loses at most one record" durability contract far beyond one
      // record; fail the campaign loudly instead.
      throw std::runtime_error("journal append failed at record " +
                               std::to_string(replay_count() + appended_) + " ('" + job.label +
                               "'): disk full or I/O error");
    }
    ++appended_;
    if (abort_after_ != 0 && appended_ >= abort_after_) {
      // Kill-and-resume test hook: die the way a crashed campaign process
      // dies -- no destructors, no further flushing.
      std::fprintf(stderr, "journal: simulated kill after %zu appended record(s)\n",
                   appended_);
      std::_Exit(3);
    }
  }

  // Completes the journal once the campaign ends: extent journals seal the
  // open extent and write their footer index here. A failure is as loud as
  // an append failure -- a journal without its tail flushed breaks the
  // durability contract.
  void Finish() {
    std::string error;
    if (!journal_.Finalize(&error)) {
      throw std::runtime_error("journal finalize failed: " + error);
    }
  }

 private:
  JournalHook() = default;

  CampaignJournal journal_;
  size_t appended_ = 0;
  size_t abort_after_ = 0;
};

// Runs one job, under a wall-clock watchdog when Options::job_timeout_ms is
// set. A job past its budget is a target hung under an injected fault: the
// worker thread is abandoned (it owns copies of everything it touches, so
// detaching is safe) and the job reports a deterministic "hang" bug -- site
// and fingerprint derive from the label alone, so the resulting journal
// record is identical however long the wait actually took.
JobResult ExecuteJob(const CampaignJob& job, const CampaignEngine::ResultRunner& runner,
                     const CampaignEngine::Options& options) {
  if (options.job_timeout_ms == 0) {
    FailpointFired("engine.job.run");  // hang-action failpoints park here
    return job.explore ? job.explore(job) : runner(job);
  }
  struct Watch {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool abandoned = false;
    JobResult result;
  };
  auto watch = std::make_shared<Watch>();
  std::thread worker([watch, job, runner] {
    FailpointFired("engine.job.run");  // hang-action failpoints park here
    {
      // A hang failpoint released after the watchdog fired (Failpoints::
      // Clear) must NOT run the job: its closure references engine state
      // the campaign may have torn down by then.
      std::lock_guard<std::mutex> lock(watch->mu);
      if (watch->abandoned) {
        return;
      }
    }
    JobResult result = job.explore ? job.explore(job) : runner(job);
    std::lock_guard<std::mutex> lock(watch->mu);
    watch->result = std::move(result);
    watch->done = true;
    watch->cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(watch->mu);
  if (watch->cv.wait_for(lock, std::chrono::milliseconds(options.job_timeout_ms),
                         [&] { return watch->done; })) {
    lock.unlock();
    worker.join();
    return std::move(watch->result);
  }
  watch->abandoned = true;
  lock.unlock();
  worker.detach();  // the hung run is leaked deliberately; kill on process exit
  JobResult hung;
  hung.bugs.push_back({options.system.empty() ? "campaign" : options.system, "hang",
                       "unresponsive under injected fault: " + job.label, job.label});
  hung.fingerprint = "hang!" + job.label;
  return hung;
}

}  // namespace

void FoundBug::AppendXml(XmlNode* parent) const {
  XmlNode* node = parent->AddChild("bug");
  node->SetAttr("system", system);
  node->SetAttr("kind", kind);
  node->SetAttr("where", where);
  node->SetAttr("injected", injected);
}

std::string FoundBug::ToXml() const { return ToXmlElement(*this); }

std::optional<FoundBug> FoundBug::FromNode(const XmlNode& node, std::string* error) {
  if (node.name() != "bug") {
    if (error != nullptr) {
      *error = "bug element must be <bug>";
    }
    return std::nullopt;
  }
  FoundBug bug;
  bug.system = node.AttrOr("system", "");
  bug.kind = node.AttrOr("kind", "");
  bug.where = node.AttrOr("where", "");
  bug.injected = node.AttrOr("injected", "");
  return bug;
}

std::optional<FoundBug> FoundBug::Parse(const std::string& xml, std::string* error) {
  return ParseXmlElement<FoundBug>(xml, error);
}

bool BugSink::Report(const FoundBug& bug) {
  std::lock_guard<std::mutex> lock(mu_);
  return bugs_.insert(bug).second;
}

void BugSink::Report(const std::vector<FoundBug>& bugs) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const FoundBug& bug : bugs) {
    bugs_.insert(bug);
  }
}

size_t BugSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bugs_.size();
}

std::vector<FoundBug> BugSink::Sorted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {bugs_.begin(), bugs_.end()};
}

ExplorationResult CampaignEngine::RunOrdered(const std::vector<CampaignJob>& jobs,
                                             const ResultRunner& runner,
                                             ScenarioSource* source) const {
  // Completed jobs park their results here until every lower-index job has
  // finished; the cursor then folds them into the result in job order. That
  // ordered merge -- not the execution order -- decides dedup winners, the
  // max_bugs cutoff, and what each job newly covered, which is what makes N
  // workers bit-identical to one.
  ExplorationResult out;
  std::set<FoundBug> bugs;
  std::vector<std::optional<JobResult>> pending(jobs.size());
  size_t cursor = 0;
  std::mutex merge_mu;
  std::atomic<bool> saturated{false};

  std::unique_ptr<JournalHook> journal = JournalHook::Open(options_);
  if (journal != nullptr) {
    for (size_t i = 0; i < jobs.size(); ++i) {
      journal->CheckAligned(i, jobs[i]);
    }
  }

  auto deliver = [&](size_t index, JobResult result) {
    std::lock_guard<std::mutex> lock(merge_mu);
    pending[index] = std::move(result);
    while (cursor < jobs.size() && pending[cursor].has_value()) {
      const CampaignJob& job = jobs[cursor];
      RunFeedback feedback;
      bool gated = job.skip_when_saturated && options_.max_bugs != 0 &&
                   bugs.size() >= options_.max_bugs;
      if (!gated) {
        JobResult& merged = *pending[cursor];
        for (const FoundBug& bug : merged.bugs) {
          feedback.new_bug |= bugs.insert(bug).second;
        }
        feedback.injections = merged.injections;
        feedback.fingerprint = merged.fingerprint;
        feedback.new_blocks = merged.coverage.NewlyCoveredVersus(out.coverage);
        out.coverage.Absorb(merged.coverage);
        ++out.scenarios_run;
      }
      if (options_.max_bugs != 0 && bugs.size() >= options_.max_bugs) {
        saturated.store(true, std::memory_order_release);
      }
      if (journal != nullptr && cursor >= journal->replay_count()) {
        journal->Append(job, gated, *pending[cursor], feedback, cursor, options_.epoch);
      }
      if (source != nullptr) {
        source->OnFeedback(job, feedback);
      }
      pending[cursor].reset();  // the cursor never revisits a merged slot
      ++cursor;
    }
  };

  WorkerPool::ParallelFor(options_.workers, jobs.size(), [&](size_t index, int worker) {
    (void)worker;
    const CampaignJob& job = jobs[index];
    // Journal replay: jobs inside the replay prefix take their recorded
    // result from disk instead of executing.
    if (journal != nullptr) {
      if (const JournalRecord* record = journal->Replay(index)) {
        deliver(index, record->result);
        return;
      }
    }
    // Advisory fast-path: once saturated, gated jobs skip execution. The
    // merge-side gate above is the authoritative (deterministic) one; this
    // only avoids wasted work, since late results are discarded anyway.
    if (job.skip_when_saturated && saturated.load(std::memory_order_acquire)) {
      deliver(index, {});
      return;
    }
    deliver(index, ExecuteJob(job, runner, options_));
  });

  if (journal != nullptr) {
    journal->Finish();
  }
  out.bugs = {bugs.begin(), bugs.end()};
  return out;
}

std::vector<FoundBug> CampaignEngine::Run(const std::vector<CampaignJob>& jobs,
                                          const JobRunner& runner) const {
  ResultRunner adapted = [&runner](const CampaignJob& job) {
    JobResult result;
    result.bugs = job.run ? job.run(job) : runner(job);
    return result;
  };
  return RunOrdered(jobs, adapted, nullptr).bugs;
}

std::vector<FoundBug> CampaignEngine::Run(const std::vector<CampaignJob>& jobs) const {
  return Run(jobs, [](const CampaignJob& job) -> std::vector<FoundBug> {
    throw std::logic_error("CampaignJob '" + job.label +
                           "' has no runner and none was passed to Run()");
  });
}

ExplorationResult CampaignEngine::Run(ScenarioSource& source, const ResultRunner& runner) const {
  const size_t batch_size = options_.batch_size == 0 ? 8 : options_.batch_size;

  if (!source.needs_feedback()) {
    // Open-loop source: nothing it schedules depends on what ran, so drain
    // it up front and run everything through the eager merge -- no batch
    // barriers, and saturation skips take effect mid-flight.
    std::vector<CampaignJob> jobs;
    while (true) {
      std::vector<CampaignJob> batch = source.NextBatch(batch_size);
      if (batch.empty()) {
        break;
      }
      for (CampaignJob& job : batch) {
        jobs.push_back(std::move(job));
      }
    }
    return RunOrdered(jobs, runner, &source);
  }

  ExplorationResult out;
  std::set<FoundBug> bugs;
  // Written only between batches, read by the workers of the *next* batch:
  // the advisory skip is deterministic because it depends solely on fully
  // merged batches, never on intra-batch completion order.
  bool saturated = false;

  std::unique_ptr<JournalHook> journal = JournalHook::Open(options_);
  size_t stream_base = 0;  // global index of this batch's first job

  // Epoch mode (Options::epoch_len > 0): the source schedules open-loop
  // within an epoch -- feedback parks in `deferred` -- and receives the whole
  // epoch's feedback, in job order, only once epoch_len batches merged or the
  // source ran dry. Delivery can refill the source's queues (mutations of
  // fruitful runs), so a dry NextBatch only ends the campaign after the
  // pending epoch flushed and the source stayed dry.
  const size_t epoch_len = options_.epoch_len;
  size_t epoch = epoch_len == 0 ? kNoEpoch : 0;
  size_t batches_this_epoch = 0;
  std::vector<std::pair<CampaignJob, RunFeedback>> deferred;
  auto flush_epoch = [&] {
    for (auto& [job, feedback] : deferred) {
      source.OnFeedback(job, feedback);
    }
    deferred.clear();
    ++epoch;
    batches_this_epoch = 0;
  };

  while (true) {
    std::vector<CampaignJob> batch = source.NextBatch(batch_size);
    if (batch.empty()) {
      if (epoch_len != 0 && !deferred.empty()) {
        flush_epoch();
        continue;
      }
      break;
    }
    if (journal != nullptr) {
      for (size_t index = 0; index < batch.size(); ++index) {
        journal->CheckAligned(stream_base + index, batch[index]);
      }
    }
    std::vector<JobResult> results(batch.size());
    WorkerPool::ParallelFor(options_.workers, batch.size(), [&](size_t index, int worker) {
      (void)worker;
      const CampaignJob& job = batch[index];
      // Journal replay: recorded results substitute for execution.
      if (journal != nullptr) {
        if (const JournalRecord* record = journal->Replay(stream_base + index)) {
          results[index] = record->result;
          return;
        }
      }
      if (job.skip_when_saturated && saturated) {
        return;  // merge-side gate below is the authoritative one
      }
      results[index] = ExecuteJob(job, runner, options_);
    });

    // The deterministic merge point: job order decides dedup winners, the
    // max_bugs cutoff, and -- new versus the batch API -- what each job
    // newly covered, since the cumulative map grows in job order too.
    for (size_t index = 0; index < batch.size(); ++index) {
      const CampaignJob& job = batch[index];
      RunFeedback feedback;
      bool gated = job.skip_when_saturated && options_.max_bugs != 0 &&
                   bugs.size() >= options_.max_bugs;
      if (!gated) {
        JobResult& result = results[index];
        for (const FoundBug& bug : result.bugs) {
          feedback.new_bug |= bugs.insert(bug).second;
        }
        feedback.injections = result.injections;
        feedback.fingerprint = result.fingerprint;
        feedback.new_blocks = result.coverage.NewlyCoveredVersus(out.coverage);
        out.coverage.Absorb(result.coverage);
        ++out.scenarios_run;
      }
      if (journal != nullptr && stream_base + index >= journal->replay_count()) {
        journal->Append(job, gated, results[index], feedback, stream_base + index, epoch);
      }
      if (epoch_len == 0) {
        source.OnFeedback(job, feedback);
      } else {
        deferred.emplace_back(job, std::move(feedback));
      }
    }
    stream_base += batch.size();
    if (options_.max_bugs != 0 && bugs.size() >= options_.max_bugs) {
      saturated = true;
    }
    if (epoch_len != 0 && ++batches_this_epoch >= epoch_len) {
      flush_epoch();
    }
  }

  if (journal != nullptr) {
    journal->Finish();
  }
  out.bugs = {bugs.begin(), bugs.end()};
  return out;
}

ExplorationResult CampaignEngine::Run(ScenarioSource& source) const {
  return Run(source, [](const CampaignJob& job) -> JobResult {
    throw std::logic_error("CampaignJob '" + job.label +
                           "' has no explore runner and none was passed to Run()");
  });
}

std::vector<CampaignJob> AnalyzerJobs(const Image& binary, const FaultProfile& profile,
                                      uint64_t seed_base) {
  std::vector<CampaignJob> jobs;
  const std::vector<CallSiteReport>& reports =
      AnalysisCache::Instance().Reports(binary, profile);
  for (const CallSiteReport& report : reports) {
    if (report.check_class == CheckClass::kFull) {
      continue;
    }
    Scenario scenario = GenerateSiteScenario(report, profile);
    if (scenario.functions().empty()) {
      continue;
    }
    CampaignJob job;
    job.scenario = std::move(scenario);
    job.label = StrFormat("%s@%s+0x%x", report.site.function.c_str(),
                          report.site.enclosing.c_str(), report.site.offset);
    job.seed = seed_base + 0x9e3779b97f4a7c15ull * (report.site.offset + 1);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

Scenario MakeRandomScenario(const std::string& function, int64_t retval, int errno_value,
                            double probability, uint64_t seed) {
  Scenario s;
  TriggerDecl decl;
  decl.id = "rand";
  decl.class_name = "RandomTrigger";
  auto args = std::make_unique<XmlNode>("args");
  args->AddChild("probability")->set_text(StrFormat("%g", probability));
  args->AddChild("seed")->set_text(StrFormat("%llu", (unsigned long long)seed));
  decl.args = std::shared_ptr<XmlNode>(args.release());
  s.AddTrigger(std::move(decl));
  FunctionAssoc assoc;
  assoc.function = function;
  assoc.retval = retval;
  assoc.errno_value = errno_value;
  assoc.triggers.push_back(TriggerRef{"rand", false});
  s.AddFunction(std::move(assoc));
  return s;
}

Scenario MakeCallCountScenario(const std::string& function, uint64_t count, int64_t retval,
                               int errno_value) {
  Scenario s;
  TriggerDecl decl;
  decl.id = "nth";
  decl.class_name = "CallCountTrigger";
  auto args = std::make_unique<XmlNode>("args");
  args->AddChild("count")->set_text(StrFormat("%llu", (unsigned long long)count));
  decl.args = std::shared_ptr<XmlNode>(args.release());
  s.AddTrigger(std::move(decl));
  FunctionAssoc assoc;
  assoc.function = function;
  assoc.retval = retval;
  assoc.errno_value = errno_value;
  assoc.triggers.push_back(TriggerRef{"nth", false});
  s.AddFunction(std::move(assoc));
  return s;
}

}  // namespace lfi
