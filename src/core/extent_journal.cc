#include "core/extent_journal.h"

#include <algorithm>
#include <filesystem>

#include "coverage/coverage.h"
#include "util/string_util.h"

namespace lfi {
namespace {

// --- per-extent string pool -------------------------------------------------
//
// pstring encoding (journal-format.md "Strings"): varint tag; 0 introduces a
// new pool entry (varint length + bytes, id = current pool size), tag >= 1
// references pool entry tag-1. The pool starts empty at every extent.

void PutPooled(const std::string& s, ByteWriter* w,
               std::unordered_map<std::string, uint64_t>* pool) {
  auto it = pool->find(s);
  if (it != pool->end()) {
    w->PutVarint(it->second + 1);
    return;
  }
  w->PutVarint(0);
  w->PutVarint(s.size());
  w->PutBytes(s);
  pool->emplace(s, pool->size());
}

class PoolReader {
 public:
  explicit PoolReader(ByteReader* reader) : reader_(reader) {}

  bool Get(std::string* out) {
    size_t index;
    if (!Next(&index)) {
      return false;
    }
    *out = pool_[index];
    return true;
  }

  // Get() for coverage block names, returning only the interned BlockId: the
  // intern (a global hash lookup) is cached by pool index so it is paid once
  // per extent, not once per record, and back-references skip the string
  // copy entirely -- this is the densest loop in record decoding.
  bool GetBlockId(CoverageMap::BlockId* id) {
    size_t index;
    if (!Next(&index)) {
      return false;
    }
    if (block_ids_[index] == kUninterned) {
      block_ids_[index] = CoverageMap::InternBlock(pool_[index]);
    }
    *id = block_ids_[index];
    return true;
  }

 private:
  static constexpr CoverageMap::BlockId kUninterned =
      static_cast<CoverageMap::BlockId>(-1);

  // Decodes one pstring tag, materializing new pool entries; `*index` is the
  // entry the tag denotes.
  bool Next(size_t* index) {
    uint64_t tag = reader_->GetVarint();
    if (!reader_->ok()) {
      return false;
    }
    if (tag == 0) {
      uint64_t length = reader_->GetVarint();
      std::string_view bytes = reader_->GetBytes(static_cast<size_t>(length));
      if (!reader_->ok()) {
        return false;
      }
      pool_.emplace_back(bytes);
      block_ids_.push_back(kUninterned);
      *index = pool_.size() - 1;
      return true;
    }
    if (tag > pool_.size()) {
      return false;  // forward reference: malformed
    }
    *index = static_cast<size_t>(tag - 1);
    return true;
  }

  ByteReader* reader_;
  std::vector<std::string> pool_;
  std::vector<CoverageMap::BlockId> block_ids_;  // in lockstep with pool_
};

// --- record codec -----------------------------------------------------------

using StringPool = std::unordered_map<std::string, uint64_t>;

void EncodeScenario(const Scenario& scenario, ByteWriter* w, StringPool* pool) {
  w->PutVarint(scenario.triggers().size());
  for (const TriggerDecl& trigger : scenario.triggers()) {
    PutPooled(trigger.id, w, pool);
    PutPooled(trigger.class_name, w, pool);
    if (trigger.args != nullptr) {
      w->PutU8(1);
      // The <args> subtree rides as its serialized XML form -- the same
      // canonical spelling TriggerDecl equality compares by.
      PutPooled(trigger.args->ToString(0), w, pool);
    } else {
      w->PutU8(0);
    }
  }
  w->PutVarint(scenario.functions().size());
  for (const FunctionAssoc& fn : scenario.functions()) {
    PutPooled(fn.function, w, pool);
    w->PutSigned(fn.argc);
    w->PutU8(fn.unused ? 1 : 0);
    w->PutSigned(fn.retval);
    w->PutSigned(fn.errno_value);
    w->PutVarint(fn.triggers.size());
    for (const TriggerRef& ref : fn.triggers) {
      PutPooled(ref.ref, w, pool);
      w->PutU8(ref.negate ? 1 : 0);
    }
  }
}

bool DecodeScenario(ByteReader* r, PoolReader* pool, Scenario* out, std::string* error) {
  auto fail = [&](const char* what) {
    if (error != nullptr) {
      *error = what;
    }
    return false;
  };
  uint64_t triggers = r->GetVarint();
  for (uint64_t i = 0; r->ok() && i < triggers; ++i) {
    TriggerDecl decl;
    if (!pool->Get(&decl.id) || !pool->Get(&decl.class_name)) {
      return fail("bad trigger string");
    }
    if (r->GetU8() != 0) {
      std::string args_xml;
      if (!pool->Get(&args_xml)) {
        return fail("bad trigger args string");
      }
      auto doc = XmlParse(args_xml);
      if (!doc || doc->root() == nullptr) {
        return fail("unparseable trigger <args> payload");
      }
      decl.args = std::shared_ptr<XmlNode>(doc->take_root().release());
    }
    out->AddTrigger(std::move(decl));
  }
  uint64_t functions = r->GetVarint();
  for (uint64_t i = 0; r->ok() && i < functions; ++i) {
    FunctionAssoc assoc;
    if (!pool->Get(&assoc.function)) {
      return fail("bad function name string");
    }
    assoc.argc = static_cast<int>(r->GetSigned());
    assoc.unused = r->GetU8() != 0;
    assoc.retval = r->GetSigned();
    assoc.errno_value = static_cast<int>(r->GetSigned());
    uint64_t refs = r->GetVarint();
    for (uint64_t j = 0; r->ok() && j < refs; ++j) {
      TriggerRef ref;
      if (!pool->Get(&ref.ref)) {
        return fail("bad trigger ref string");
      }
      ref.negate = r->GetU8() != 0;
      assoc.triggers.push_back(std::move(ref));
    }
    out->AddFunction(std::move(assoc));
  }
  return r->ok() || fail("truncated scenario");
}

void EncodeResult(const JobResult& result, ByteWriter* w, StringPool* pool) {
  PutPooled(result.fingerprint, w, pool);
  w->PutVarint(result.injections);
  w->PutVarint(result.bugs.size());
  for (const FoundBug& bug : result.bugs) {
    PutPooled(bug.system, w, pool);
    PutPooled(bug.kind, w, pool);
    PutPooled(bug.where, w, pool);
    PutPooled(bug.injected, w, pool);
  }
  w->PutVarint(result.log.records().size());
  for (const InjectionRecord& record : result.log.records()) {
    w->PutVarint(record.sequence);
    PutPooled(record.function, w, pool);
    w->PutSigned(record.retval);
    w->PutSigned(record.errno_value);
    w->PutVarint(record.trigger_ids.size());
    for (const std::string& id : record.trigger_ids) {
      PutPooled(id, w, pool);
    }
    w->PutVarint(record.call_number);
    w->PutVarint(record.stack.size());
    for (const StackFrame& frame : record.stack) {
      PutPooled(frame.module, w, pool);
      PutPooled(frame.function, w, pool);
      w->PutVarint(frame.offset);
    }
    PutPooled(record.process, w, pool);
  }
  // Coverage: the record's own map in name-sorted order (the same
  // determinism rule as the XML encoding). Block names repeat across an
  // extent's records, so after the first record they are back-references --
  // the coverage-delta encoding that makes extents small.
  std::vector<CoverageMap::BlockInfo> blocks = result.coverage.SortedBlocks();
  w->PutVarint(blocks.size());
  for (const CoverageMap::BlockInfo& block : blocks) {
    PutPooled(block.name, w, pool);
    w->PutVarint((static_cast<uint64_t>(block.lines) << 1) | (block.recovery ? 1 : 0));
    w->PutVarint(block.hits);
  }
}

bool DecodeResult(ByteReader* r, PoolReader* pool, JobResult* out, std::string* error) {
  auto fail = [&](const char* what) {
    if (error != nullptr) {
      *error = what;
    }
    return false;
  };
  if (!pool->Get(&out->fingerprint)) {
    return fail("bad fingerprint string");
  }
  out->injections = static_cast<size_t>(r->GetVarint());
  uint64_t bugs = r->GetVarint();
  for (uint64_t i = 0; r->ok() && i < bugs; ++i) {
    FoundBug bug;
    if (!pool->Get(&bug.system) || !pool->Get(&bug.kind) || !pool->Get(&bug.where) ||
        !pool->Get(&bug.injected)) {
      return fail("bad bug string");
    }
    out->bugs.push_back(std::move(bug));
  }
  uint64_t injections = r->GetVarint();
  for (uint64_t i = 0; r->ok() && i < injections; ++i) {
    InjectionRecord record;
    record.sequence = r->GetVarint();
    if (!pool->Get(&record.function)) {
      return fail("bad injection function string");
    }
    record.retval = r->GetSigned();
    record.errno_value = static_cast<int>(r->GetSigned());
    uint64_t triggers = r->GetVarint();
    for (uint64_t j = 0; r->ok() && j < triggers; ++j) {
      std::string id;
      if (!pool->Get(&id)) {
        return fail("bad injection trigger string");
      }
      record.trigger_ids.push_back(std::move(id));
    }
    record.call_number = r->GetVarint();
    uint64_t frames = r->GetVarint();
    for (uint64_t j = 0; r->ok() && j < frames; ++j) {
      StackFrame frame;
      if (!pool->Get(&frame.module) || !pool->Get(&frame.function)) {
        return fail("bad stack frame string");
      }
      frame.offset = static_cast<uint32_t>(r->GetVarint());
      record.stack.push_back(std::move(frame));
    }
    if (!pool->Get(&record.process)) {
      return fail("bad injection process string");
    }
    out->log.Record(std::move(record));
  }
  uint64_t blocks = r->GetVarint();
  for (uint64_t i = 0; r->ok() && i < blocks; ++i) {
    CoverageMap::BlockId block_id = 0;
    if (!pool->GetBlockId(&block_id)) {
      return fail("bad coverage block string");
    }
    uint64_t meta = r->GetVarint();
    uint64_t hits = r->GetVarint();
    out->coverage.RestoreBlock(block_id, (meta & 1) != 0, static_cast<int>(meta >> 1),
                               hits);
  }
  return r->ok() || fail("truncated result");
}

void EncodeFeedback(const RunFeedback& feedback, ByteWriter* w, StringPool* pool) {
  w->PutU8(feedback.new_bug ? 1 : 0);
  w->PutVarint(feedback.injections);
  PutPooled(feedback.fingerprint, w, pool);
  w->PutVarint(feedback.new_blocks.size());
  for (const std::string& block : feedback.new_blocks) {
    PutPooled(block, w, pool);
  }
}

bool DecodeFeedback(ByteReader* r, PoolReader* pool, RunFeedback* out, std::string* error) {
  auto fail = [&](const char* what) {
    if (error != nullptr) {
      *error = what;
    }
    return false;
  };
  out->new_bug = r->GetU8() != 0;
  out->injections = static_cast<size_t>(r->GetVarint());
  if (!pool->Get(&out->fingerprint)) {
    return fail("bad feedback fingerprint string");
  }
  uint64_t blocks = r->GetVarint();
  for (uint64_t i = 0; r->ok() && i < blocks; ++i) {
    std::string block;
    if (!pool->Get(&block)) {
      return fail("bad feedback block string");
    }
    out->new_blocks.push_back(std::move(block));
  }
  return r->ok() || fail("truncated feedback");
}

void EncodeRecord(const JournalRecord& record, ByteWriter* w, StringPool* pool) {
  w->PutU8(record.gated ? 1 : 0);
  PutPooled(record.label, w, pool);
  w->PutVarint(record.seed);
  w->PutVarint(record.stream_index == JournalRecord::kNoStreamIndex
                   ? 0
                   : static_cast<uint64_t>(record.stream_index) + 1);
  // Format v2: the epoch ordinal (+1; 0 = not epoch-synchronized).
  w->PutVarint(record.epoch == kNoEpoch ? 0 : static_cast<uint64_t>(record.epoch) + 1);
  EncodeScenario(record.scenario, w, pool);
  if (!record.gated) {
    EncodeResult(record.result, w, pool);
    EncodeFeedback(record.feedback, w, pool);
  }
}

bool DecodeRecord(ByteReader* r, PoolReader* pool, JournalRecord* out, std::string* error) {
  out->gated = r->GetU8() != 0;
  if (!pool->Get(&out->label)) {
    if (error != nullptr) {
      *error = "bad record label string";
    }
    return false;
  }
  out->seed = r->GetVarint();
  uint64_t index = r->GetVarint();
  out->stream_index =
      index == 0 ? JournalRecord::kNoStreamIndex : static_cast<size_t>(index - 1);
  uint64_t epoch = r->GetVarint();
  out->epoch = epoch == 0 ? kNoEpoch : static_cast<size_t>(epoch - 1);
  if (!DecodeScenario(r, pool, &out->scenario, error)) {
    return false;
  }
  if (!out->gated) {
    if (!DecodeResult(r, pool, &out->result, error) ||
        !DecodeFeedback(r, pool, &out->feedback, error)) {
      return false;
    }
  }
  return r->ok();
}

// --- file header ------------------------------------------------------------

std::string EncodeFileHeader(const JournalMetadata& meta) {
  ByteWriter meta_block;
  meta_block.PutVarint(meta.size());
  for (const auto& [key, value] : meta) {
    meta_block.PutVarint(key.size());
    meta_block.PutBytes(key);
    meta_block.PutVarint(value.size());
    meta_block.PutBytes(value);
  }
  ByteWriter header;
  header.PutBytes(kExtentFileMagic);
  header.PutU8(kExtentFormatVersion);
  header.PutU8(0);  // reserved flags
  header.PutU32(static_cast<uint32_t>(meta_block.size()));
  uint32_t crc = Crc32(meta_block.buffer());
  header.PutBytes(meta_block.buffer());
  header.PutU32(crc);
  return header.TakeBuffer();
}

// Parses the file header; on success fills meta and returns the offset of
// the first extent.
std::optional<uint64_t> DecodeFileHeader(std::string_view bytes, JournalMetadata* meta,
                                         std::string* error) {
  auto fail = [&](std::string what) -> std::optional<uint64_t> {
    if (error != nullptr) {
      *error = std::move(what);
    }
    return std::nullopt;
  };
  ByteReader reader(bytes);
  if (std::string(reader.GetBytes(4)) != kExtentFileMagic) {
    return fail("not an extent journal (bad magic)");
  }
  uint8_t version = reader.GetU8();
  if (reader.ok() && version != kExtentFormatVersion) {
    return fail(StrFormat("unsupported extent journal version %d (this build reads %d)",
                          version, kExtentFormatVersion));
  }
  reader.GetU8();  // reserved flags
  uint32_t meta_size = reader.GetU32();
  std::string_view meta_bytes = reader.GetBytes(meta_size);
  uint32_t crc = reader.GetU32();
  if (!reader.ok()) {
    return fail("truncated extent journal header");
  }
  if (Crc32(meta_bytes) != crc) {
    return fail("extent journal header checksum mismatch");
  }
  ByteReader meta_reader(meta_bytes);
  uint64_t pairs = meta_reader.GetVarint();
  for (uint64_t i = 0; meta_reader.ok() && i < pairs; ++i) {
    uint64_t key_len = meta_reader.GetVarint();
    std::string_view key = meta_reader.GetBytes(static_cast<size_t>(key_len));
    uint64_t value_len = meta_reader.GetVarint();
    std::string_view value = meta_reader.GetBytes(static_cast<size_t>(value_len));
    if (meta_reader.ok()) {
      meta->emplace_back(std::string(key), std::string(value));
    }
  }
  if (!meta_reader.ok()) {
    return fail("malformed extent journal metadata");
  }
  return reader.pos();
}

// Parses one extent header at `offset`; nullopt when the bytes there do not
// form a complete, plausible header (the scan-recovery stop condition).
// `codec` and `raw_size` are needed to decode; ExtentInfo carries the rest.
struct ExtentHeader {
  ExtentInfo info;
  uint8_t codec = kExtentCodecRaw;
  uint32_t raw_size = 0;
  uint32_t payload_crc = 0;
};

std::optional<ExtentHeader> DecodeExtentHeader(std::string_view bytes, uint64_t offset) {
  if (offset > bytes.size() || bytes.size() - offset < kExtentHeaderBytes) {
    return std::nullopt;
  }
  ByteReader reader(bytes.substr(offset, kExtentHeaderBytes));
  if (std::string(reader.GetBytes(4)) != kExtentMagic) {
    return std::nullopt;
  }
  ExtentHeader header;
  header.codec = reader.GetU8();
  reader.GetU8();
  reader.GetU8();
  reader.GetU8();  // reserved
  header.info.offset = offset;
  header.info.record_count = reader.GetU32();
  header.raw_size = reader.GetU32();
  header.info.stored_size = reader.GetU32();
  header.payload_crc = reader.GetU32();
  header.info.first_index = reader.GetU64();
  header.info.last_index = reader.GetU64();
  if (!reader.ok() || header.codec > kExtentCodecLz ||
      bytes.size() - offset - kExtentHeaderBytes < header.info.stored_size) {
    return std::nullopt;
  }
  return header;
}

}  // namespace

// --- reading ----------------------------------------------------------------

bool IsExtentJournal(std::string_view bytes) {
  return bytes.size() >= kExtentFileMagic.size() &&
         bytes.substr(0, kExtentFileMagic.size()) == kExtentFileMagic;
}

bool DecodeExtentRecords(std::string_view file_bytes, const ExtentInfo& extent,
                         std::vector<JournalRecord>* out, std::string* error) {
  auto fail = [&](std::string what) {
    if (error != nullptr) {
      *error = std::move(what);
    }
    return false;
  };
  auto header = DecodeExtentHeader(file_bytes, extent.offset);
  if (!header || header->info.stored_size != extent.stored_size) {
    return fail(StrFormat("no valid extent at offset %llu",
                          static_cast<unsigned long long>(extent.offset)));
  }
  std::string_view stored =
      file_bytes.substr(extent.offset + kExtentHeaderBytes, header->info.stored_size);
  if (Crc32(stored) != header->payload_crc) {
    return fail(StrFormat("extent at offset %llu fails its checksum",
                          static_cast<unsigned long long>(extent.offset)));
  }
  std::string decompressed;
  std::string_view payload = stored;
  if (header->codec == kExtentCodecLz) {
    auto raw = LzDecompress(stored, header->raw_size);
    if (!raw) {
      return fail(StrFormat("extent at offset %llu fails to decompress",
                            static_cast<unsigned long long>(extent.offset)));
    }
    decompressed = std::move(*raw);
    payload = decompressed;
  } else if (payload.size() != header->raw_size) {
    return fail(StrFormat("extent at offset %llu has inconsistent sizes",
                          static_cast<unsigned long long>(extent.offset)));
  }
  ByteReader reader(payload);
  PoolReader pool(&reader);
  std::string record_error;
  for (uint32_t i = 0; i < header->info.record_count; ++i) {
    JournalRecord record;
    if (!DecodeRecord(&reader, &pool, &record, &record_error)) {
      return fail(StrFormat("extent at offset %llu, record %u: %s",
                            static_cast<unsigned long long>(extent.offset), i,
                            record_error.empty() ? "truncated record" : record_error.c_str()));
    }
    out->push_back(std::move(record));
  }
  if (!reader.AtEnd()) {
    return fail(StrFormat("extent at offset %llu has %zu byte(s) of trailing garbage",
                          static_cast<unsigned long long>(extent.offset),
                          payload.size() - reader.pos()));
  }
  return true;
}

std::optional<ExtentJournalData> ParseExtentJournal(std::string_view bytes,
                                                    std::string* error) {
  auto fail = [&](std::string what) -> std::optional<ExtentJournalData> {
    if (error != nullptr) {
      *error = std::move(what);
    }
    return std::nullopt;
  };
  ExtentJournalData data;
  auto header_end = DecodeFileHeader(bytes, &data.meta, error);
  if (!header_end) {
    return std::nullopt;
  }

  // Footer fast path: a valid trailer at EOF points at the index of every
  // sealed extent, so record recovery is one seek per extent, no scan.
  if (bytes.size() >= *header_end + kExtentTrailerBytes &&
      bytes.substr(bytes.size() - 4) == kExtentTrailerMagic) {
    ByteReader trailer(bytes.substr(bytes.size() - kExtentTrailerBytes));
    uint64_t footer_offset = trailer.GetU64();
    uint32_t footer_size = trailer.GetU32();
    if (footer_offset >= *header_end &&
        footer_offset + footer_size + kExtentTrailerBytes == bytes.size()) {
      ByteReader footer(bytes.substr(footer_offset, footer_size));
      if (std::string(footer.GetBytes(4)) == kExtentFooterMagic) {
        uint32_t index_size = footer.GetU32();
        std::string_view index_bytes = footer.GetBytes(index_size);
        uint32_t index_crc = footer.GetU32();
        if (footer.ok() && footer.AtEnd() && Crc32(index_bytes) == index_crc) {
          ByteReader index(index_bytes);
          uint64_t count = index.GetVarint();
          for (uint64_t i = 0; index.ok() && i < count; ++i) {
            ExtentInfo extent;
            extent.offset = index.GetVarint();
            extent.stored_size = static_cast<uint32_t>(index.GetVarint());
            extent.record_count = static_cast<uint32_t>(index.GetVarint());
            extent.first_index = index.GetVarint() - 1;  // 0 = none wraps to kNoIndex
            extent.last_index = index.GetVarint() - 1;
            data.extents.push_back(extent);
          }
          if (!index.ok() || !index.AtEnd()) {
            return fail("extent journal footer index is malformed");
          }
          // The footer only exists if Finalize completed, so a bad extent
          // behind it is corruption, not a torn tail: fail loudly.
          size_t total_records = 0;
          for (const ExtentInfo& extent : data.extents) {
            total_records += extent.record_count;
          }
          data.records.reserve(total_records);
          for (const ExtentInfo& extent : data.extents) {
            if (!DecodeExtentRecords(bytes, extent, &data.records, error)) {
              return std::nullopt;
            }
          }
          data.intact_bytes = footer_offset;
          data.footer_valid = true;
          return data;
        }
      }
    }
    // An EOF that merely resembles a trailer falls through to the scan.
  }

  // No (valid) footer: the journal is mid-write or was killed. Walk the
  // extent stream and truncate at the first invalid boundary -- a torn
  // extent, a partial footer, or plain garbage all stop the walk the same
  // way.
  uint64_t pos = *header_end;
  while (true) {
    auto header = DecodeExtentHeader(bytes, pos);
    if (!header) {
      break;
    }
    std::vector<JournalRecord> records;
    if (!DecodeExtentRecords(bytes, header->info, &records, nullptr)) {
      break;
    }
    for (JournalRecord& record : records) {
      data.records.push_back(std::move(record));
    }
    data.extents.push_back(header->info);
    pos += kExtentHeaderBytes + header->info.stored_size;
  }
  data.intact_bytes = pos;
  return data;
}

// --- writing ----------------------------------------------------------------

ExtentJournalWriter::~ExtentJournalWriter() {
  if (out_ != nullptr) {
    Finalize(nullptr);
  }
}

bool ExtentJournalWriter::WriteRaw(std::string_view bytes, std::string* error) {
  if (std::fwrite(bytes.data(), 1, bytes.size(), out_.get()) != bytes.size() ||
      std::fflush(out_.get()) != 0) {
    if (error != nullptr) {
      *error = "journal write to " + path_ + " failed: disk full or I/O error";
    }
    return false;
  }
  offset_ += bytes.size();
  return true;
}

bool ExtentJournalWriter::Create(const std::string& path, const JournalMetadata& meta,
                                 std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot create journal " + path;
    }
    return false;
  }
  out_.reset(f);
  path_ = path;
  offset_ = 0;
  return WriteRaw(EncodeFileHeader(meta), error);
}

bool ExtentJournalWriter::OpenAppend(const std::string& path, const ExtentJournalData& loaded,
                                     std::string* error) {
  // Drop everything past the sealed extents: the torn open extent a kill
  // left, or the footer Finalize wrote (it indexes only what came before
  // it, so appends must overwrite it; Finalize writes a fresh one).
  std::error_code ec;
  if (std::filesystem::file_size(path, ec) > loaded.intact_bytes && !ec) {
    std::filesystem::resize_file(path, loaded.intact_bytes, ec);
    if (ec) {
      if (error != nullptr) {
        *error = "cannot truncate journal tail in " + path + ": " + ec.message();
      }
      return false;
    }
  }
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot append to journal " + path;
    }
    return false;
  }
  out_.reset(f);
  path_ = path;
  offset_ = loaded.intact_bytes;
  extents_ = loaded.extents;
  return true;
}

bool ExtentJournalWriter::Append(const JournalRecord& record, std::string* error) {
  if (out_ == nullptr) {
    if (error != nullptr) {
      *error = "journal is not open for writing";
    }
    return false;
  }
  EncodeRecord(record, &payload_, &pool_ids_);
  if (record.stream_index != JournalRecord::kNoStreamIndex) {
    uint64_t index = record.stream_index;
    open_first_ = open_first_ == ExtentInfo::kNoIndex ? index : std::min(open_first_, index);
    open_last_ = open_last_ == ExtentInfo::kNoIndex ? index : std::max(open_last_, index);
  }
  ++open_records_;
  if (open_records_ >= kRecordsPerExtent || payload_.size() >= kMaxOpenPayload) {
    return SealExtent(error);
  }
  return true;
}

bool ExtentJournalWriter::SealExtent(std::string* error) {
  if (open_records_ == 0) {
    return true;
  }
  std::string raw = payload_.TakeBuffer();
  payload_.Clear();
  std::string compressed = LzCompress(raw);
  uint8_t codec = kExtentCodecRaw;
  std::string_view stored = raw;
  if (compressed.size() < raw.size()) {
    codec = kExtentCodecLz;
    stored = compressed;
  }
  ExtentInfo info;
  info.offset = offset_;
  info.stored_size = static_cast<uint32_t>(stored.size());
  info.record_count = open_records_;
  info.first_index = open_first_;
  info.last_index = open_last_;

  ByteWriter extent;
  extent.PutBytes(kExtentMagic);
  extent.PutU8(codec);
  extent.PutU8(0);
  extent.PutU8(0);
  extent.PutU8(0);  // reserved
  extent.PutU32(info.record_count);
  extent.PutU32(static_cast<uint32_t>(raw.size()));
  extent.PutU32(info.stored_size);
  extent.PutU32(Crc32(stored));
  extent.PutU64(info.first_index);
  extent.PutU64(info.last_index);
  extent.PutBytes(stored);

  // Reset the open-extent state before the write so a failed seal cannot be
  // retried into a double-append.
  pool_ids_.clear();
  open_records_ = 0;
  open_first_ = ExtentInfo::kNoIndex;
  open_last_ = ExtentInfo::kNoIndex;

  if (!WriteRaw(extent.buffer(), error)) {
    return false;
  }
  extents_.push_back(info);
  return true;
}

bool ExtentJournalWriter::Finalize(std::string* error) {
  if (out_ == nullptr) {
    if (error != nullptr) {
      *error = "journal is not open for writing";
    }
    return false;
  }
  if (!SealExtent(error)) {
    out_.reset();
    return false;
  }
  ByteWriter index;
  index.PutVarint(extents_.size());
  for (const ExtentInfo& extent : extents_) {
    index.PutVarint(extent.offset);
    index.PutVarint(extent.stored_size);
    index.PutVarint(extent.record_count);
    index.PutVarint(extent.first_index + 1);  // kNoIndex wraps to 0 = none
    index.PutVarint(extent.last_index + 1);
  }
  uint64_t footer_offset = offset_;
  ByteWriter footer;
  footer.PutBytes(kExtentFooterMagic);
  footer.PutU32(static_cast<uint32_t>(index.size()));
  uint32_t crc = Crc32(index.buffer());
  footer.PutBytes(index.buffer());
  footer.PutU32(crc);
  uint32_t footer_size = static_cast<uint32_t>(footer.size());
  footer.PutU64(footer_offset);
  footer.PutU32(footer_size);
  footer.PutBytes(kExtentTrailerMagic);
  bool ok = WriteRaw(footer.buffer(), error);
  out_.reset();
  return ok;
}

}  // namespace lfi
