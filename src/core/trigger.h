// The Trigger interface and registry (§3.1, §6).
//
// Triggers are pluggable predicates the LFI runtime consults to decide
// whether an intercepted library call should fail. A trigger may inspect any
// part of system state: the intercepted call's arguments, the virtual call
// stack, application globals, or anything reachable through the calling
// VirtualLibc (trigger-issued library calls bypass interception, like a
// dlsym(RTLD_NEXT) call under LD_PRELOAD).
//
// Deviations from the 2010 C++ surface, kept deliberately small:
//   - Eval receives the argument words as a vector instead of varargs; the
//     first parameter is still the intercepted function's name, and pointer
//     arguments are raw pointers cast to words (triggers that know the
//     function's signature cast them back, like the paper's va_arg code).
//   - Eval also receives the calling VirtualLibc, which plays the role of
//     "the process" (its globals, stack and errno are reached through it).
//   - Registration is completed by LFI_REGISTER_TRIGGER(Name) after the class
//     body; the paper's single-macro Registry variant relied on a static
//     member in the macro-generated class, which needs the complete type.

#ifndef LFI_CORE_TRIGGER_H_
#define LFI_CORE_TRIGGER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "vlib/interposer.h"
#include "xml/xml.h"

namespace lfi {

class Trigger {
 public:
  virtual ~Trigger() = default;

  // Called once, after construction and before the first Eval, with the
  // <args> element of the trigger's declaration (nullptr when absent).
  // Supports trigger parametrization (§4.1).
  virtual void Init(const XmlNode* init_data) { (void)init_data; }

  // Deterministic reseeding hook for randomized triggers. Called once per
  // instance, right after Init, when the scenario run carries a seed
  // (Runtime::Options::seed != 0); the value is derived from that seed and
  // the instance's declaration ordinal, so every instance gets an
  // independent, reproducible stream. Triggers whose <args> pin an explicit
  // seed keep it: the scenario author's choice wins over the harness.
  virtual void Reseed(uint64_t seed) { (void)seed; }

  // The injection decision. Called every time a function associated with
  // this trigger instance is intercepted. Must be efficient: it runs on the
  // application's fast path. `lib_func_name` is the runtime's interned
  // spelling (a stable reference -- no per-call copy), and `args` the
  // intercepted call's inline word-sized arguments.
  virtual bool Eval(VirtualLibc* libc, const std::string& lib_func_name,
                    const ArgSpan& args) = 0;
};

class TriggerRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Trigger>()>;

  static TriggerRegistry& Instance();

  // Registers a factory under `class_name`; later registrations win, so
  // tests may shadow stock triggers.
  void Register(const std::string& class_name, Factory factory);

  // Instantiates a trigger by class name; nullptr when unknown.
  std::unique_ptr<Trigger> Create(std::string_view class_name) const;

  bool Knows(std::string_view class_name) const;
  std::vector<std::string> RegisteredClasses() const;

 private:
  // Heterogeneous comparator: string_view callers probe without allocating.
  std::map<std::string, Factory, std::less<>> factories_;
};

// Helper whose construction performs the registration.
struct TriggerRegistrar {
  TriggerRegistrar(const char* class_name, TriggerRegistry::Factory factory);
};

// Opens a trigger class derived from Trigger, as in the paper:
//
//   DECLARE_TRIGGER(ReadPipe) {
//    public:
//     bool Eval(...) override { ... }
//   };
//   LFI_REGISTER_TRIGGER(ReadPipe);
#define DECLARE_TRIGGER(NAME) class NAME : public ::lfi::Trigger

#define LFI_REGISTER_TRIGGER(NAME)                                      \
  static ::lfi::TriggerRegistrar lfi_trigger_registrar_##NAME(          \
      #NAME, [] { return std::unique_ptr<::lfi::Trigger>(new NAME()); })

}  // namespace lfi

#endif  // LFI_CORE_TRIGGER_H_
