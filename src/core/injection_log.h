// The LFI test log (§2).
//
// Records every injected error together with the injected side effects and
// the events that triggered it: which trigger instances fired, the call
// count, and a snapshot of the virtual call stack. Developers use the log to
// match injections to observed program behaviour; ReplayScenario() turns a
// record into a deterministic call-count-based scenario that reproduces
// exactly that injection (the paper points at R2-style replay for the same
// purpose). The log round-trips through XML (ToXml/Parse) so campaign
// journal records can replay an injection from disk alone.

#ifndef LFI_CORE_INJECTION_LOG_H_
#define LFI_CORE_INJECTION_LOG_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "vlib/call_stack.h"

namespace lfi {

struct InjectionRecord {
  uint64_t sequence = 0;        // ordinal among all injections in the run
  std::string function;         // intercepted library function
  int64_t retval = 0;           // injected return value
  int errno_value = 0;          // injected errno (0 = untouched)
  std::vector<std::string> trigger_ids;  // triggers that fired, conjunction order
  uint64_t call_number = 0;     // how many interceptions of `function` so far
  std::vector<StackFrame> stack;  // call stack at injection time
  std::string process;          // process name (distinguishes replicas)

  bool operator==(const InjectionRecord& o) const = default;
};

class InjectionLog {
 public:
  void Record(InjectionRecord record) { records_.push_back(std::move(record)); }
  const std::vector<InjectionRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  void Clear() { records_.clear(); }

  // Human-readable rendering, one line per injection.
  std::string ToString() const;

  // Stable one-line digest of the injection sequence: every record's
  // (function, call number, retval, errno), order-sensitive. Two runs with
  // equal fingerprints exercised the same fault sequence, which is how the
  // exploration strategies deduplicate behaviourally equivalent scenarios.
  // Empty when nothing was injected.
  std::string Fingerprint() const;

  // A scenario that re-injects exactly record[index]'s fault on the same
  // call number, using the stock call-count trigger.
  Scenario ReplayScenario(size_t index) const;

  // A scenario that re-injects the run's whole fault sequence, one
  // call-count trigger per record. Re-injecting the full set pins every
  // divergence point, so the replayed execution tracks the original call
  // for call -- required to reproduce outcomes that are a property of the
  // sequence (a consistency corruption built up across several survived
  // faults), where replaying only the final injection leaves the earlier
  // calls un-faulted and the call numbering drifts away from the log.
  Scenario FullReplayScenario() const;

  // Serializes as a <log> child of `parent` (one <injection> element per
  // record, triggers and stack frames as children); ToXml() wraps the same
  // element in a document. FromNode/Parse are the exact inverses.
  void AppendXml(XmlNode* parent) const;
  std::string ToXml() const;
  static std::optional<InjectionLog> FromNode(const XmlNode& node,
                                              std::string* error = nullptr);
  static std::optional<InjectionLog> Parse(const std::string& xml,
                                           std::string* error = nullptr);

  bool operator==(const InjectionLog& o) const { return records_ == o.records_; }

 private:
  std::vector<InjectionRecord> records_;
};

}  // namespace lfi

#endif  // LFI_CORE_INJECTION_LOG_H_
