#include "core/injection_log.h"

#include "util/errno_codes.h"
#include "util/string_util.h"

namespace lfi {

std::string InjectionLog::ToString() const {
  std::string out;
  for (const auto& r : records_) {
    out += StrFormat("#%llu %s%s%s: injected retval=%lld",
                     static_cast<unsigned long long>(r.sequence),
                     r.process.empty() ? "" : (r.process + ":").c_str(), r.function.c_str(), "",
                     static_cast<long long>(r.retval));
    if (r.errno_value != 0) {
      out += " errno=" + ErrnoName(r.errno_value);
    }
    out += StrFormat(" (call %llu, triggers: %s)",
                     static_cast<unsigned long long>(r.call_number),
                     Join(r.trigger_ids, ",").c_str());
    if (!r.stack.empty()) {
      out += " stack:";
      for (auto it = r.stack.rbegin(); it != r.stack.rend(); ++it) {
        out += StrFormat(" %s!%s+0x%x", it->module.c_str(), it->function.c_str(), it->offset);
      }
    }
    out += "\n";
  }
  return out;
}

std::string InjectionLog::Fingerprint() const {
  std::string out;
  for (const InjectionRecord& r : records_) {
    if (!out.empty()) {
      out += ";";
    }
    out += StrFormat("%s@%llu=%lld/%d", r.function.c_str(),
                     static_cast<unsigned long long>(r.call_number),
                     static_cast<long long>(r.retval), r.errno_value);
  }
  return out;
}

Scenario InjectionLog::ReplayScenario(size_t index) const {
  Scenario scenario;
  if (index >= records_.size()) {
    return scenario;
  }
  const InjectionRecord& r = records_[index];

  TriggerDecl decl;
  decl.id = StrFormat("replay-%llu", static_cast<unsigned long long>(r.sequence));
  decl.class_name = "CallCountTrigger";
  auto args = std::make_unique<XmlNode>("args");
  args->AddChild("count")->set_text(
      StrFormat("%llu", static_cast<unsigned long long>(r.call_number)));
  decl.args = std::shared_ptr<XmlNode>(args.release());

  FunctionAssoc assoc;
  assoc.function = r.function;
  assoc.retval = r.retval;
  assoc.errno_value = r.errno_value;
  assoc.triggers.push_back(TriggerRef{decl.id, false});

  scenario.AddTrigger(std::move(decl));
  scenario.AddFunction(std::move(assoc));
  return scenario;
}

Scenario InjectionLog::FullReplayScenario() const {
  Scenario scenario;
  // One (trigger, association) pair per logged injection: triggers within an
  // association are a conjunction, but same-function associations form a
  // disjunction, and the call-count trigger reads the authoritative boundary
  // count, so exactly the logged call of each function fires its own pair.
  for (const InjectionRecord& r : records_) {
    TriggerDecl decl;
    decl.id = StrFormat("replay-%llu", static_cast<unsigned long long>(r.sequence));
    decl.class_name = "CallCountTrigger";
    auto args = std::make_unique<XmlNode>("args");
    args->AddChild("count")->set_text(
        StrFormat("%llu", static_cast<unsigned long long>(r.call_number)));
    decl.args = std::shared_ptr<XmlNode>(args.release());

    FunctionAssoc assoc;
    assoc.function = r.function;
    assoc.retval = r.retval;
    assoc.errno_value = r.errno_value;
    assoc.triggers.push_back(TriggerRef{decl.id, false});
    scenario.AddTrigger(std::move(decl));
    scenario.AddFunction(std::move(assoc));
  }
  return scenario;
}

void InjectionLog::AppendXml(XmlNode* parent) const {
  XmlNode* log = parent->AddChild("log");
  for (const InjectionRecord& r : records_) {
    XmlNode* node = log->AddChild("injection");
    node->SetAttr("sequence", StrFormat("%llu", static_cast<unsigned long long>(r.sequence)));
    node->SetAttr("function", r.function);
    node->SetAttr("retval", StrFormat("%lld", static_cast<long long>(r.retval)));
    if (r.errno_value != 0) {
      node->SetAttr("errno", ErrnoName(r.errno_value));
    }
    node->SetAttr("call", StrFormat("%llu", static_cast<unsigned long long>(r.call_number)));
    if (!r.process.empty()) {
      node->SetAttr("process", r.process);
    }
    for (const std::string& id : r.trigger_ids) {
      node->AddChild("trigger")->SetAttr("id", id);
    }
    for (const StackFrame& frame : r.stack) {
      XmlNode* f = node->AddChild("frame");
      f->SetAttr("module", frame.module);
      f->SetAttr("function", frame.function);
      f->SetAttr("offset", StrFormat("0x%x", frame.offset));
    }
  }
}

std::string InjectionLog::ToXml() const { return ToXmlElement(*this); }

std::optional<InjectionLog> InjectionLog::FromNode(const XmlNode& node, std::string* error) {
  auto fail = [&](std::string message) -> std::optional<InjectionLog> {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return std::nullopt;
  };
  if (node.name() != "log") {
    return fail("injection log element must be <log>");
  }
  InjectionLog log;
  for (const XmlNode* inj : node.Children("injection")) {
    InjectionRecord r;
    auto sequence = inj->IntAttr("sequence");
    auto retval = inj->IntAttr("retval");
    auto call = inj->IntAttr("call");
    r.function = inj->AttrOr("function", "");
    if (!sequence || !retval || !call || r.function.empty()) {
      return fail("<injection> requires sequence, function, retval, and call");
    }
    r.sequence = static_cast<uint64_t>(*sequence);
    r.retval = *retval;
    r.call_number = static_cast<uint64_t>(*call);
    std::string err = inj->AttrOr("errno", "");
    if (!err.empty()) {
      auto e = ErrnoFromName(err);
      if (!e) {
        return fail("unknown errno '" + err + "' in injection log");
      }
      r.errno_value = *e;
    }
    r.process = inj->AttrOr("process", "");
    for (const XmlNode* trigger : inj->Children("trigger")) {
      r.trigger_ids.push_back(trigger->AttrOr("id", ""));
    }
    for (const XmlNode* frame : inj->Children("frame")) {
      StackFrame f;
      f.module = frame->AttrOr("module", "");
      f.function = frame->AttrOr("function", "");
      f.offset = static_cast<uint32_t>(frame->IntAttr("offset").value_or(0));
      r.stack.push_back(std::move(f));
    }
    log.Record(std::move(r));
  }
  return log;
}

std::optional<InjectionLog> InjectionLog::Parse(const std::string& xml, std::string* error) {
  return ParseXmlElement<InjectionLog>(xml, error);
}

}  // namespace lfi
