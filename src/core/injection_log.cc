#include "core/injection_log.h"

#include "util/errno_codes.h"
#include "util/string_util.h"

namespace lfi {

std::string InjectionLog::ToString() const {
  std::string out;
  for (const auto& r : records_) {
    out += StrFormat("#%llu %s%s%s: injected retval=%lld",
                     static_cast<unsigned long long>(r.sequence),
                     r.process.empty() ? "" : (r.process + ":").c_str(), r.function.c_str(), "",
                     static_cast<long long>(r.retval));
    if (r.errno_value != 0) {
      out += " errno=" + ErrnoName(r.errno_value);
    }
    out += StrFormat(" (call %llu, triggers: %s)",
                     static_cast<unsigned long long>(r.call_number), r.trigger_ids.c_str());
    if (!r.stack.empty()) {
      out += " stack:";
      for (auto it = r.stack.rbegin(); it != r.stack.rend(); ++it) {
        out += StrFormat(" %s!%s+0x%x", it->module.c_str(), it->function.c_str(), it->offset);
      }
    }
    out += "\n";
  }
  return out;
}

std::string InjectionLog::Fingerprint() const {
  std::string out;
  for (const InjectionRecord& r : records_) {
    if (!out.empty()) {
      out += ";";
    }
    out += StrFormat("%s@%llu=%lld/%d", r.function.c_str(),
                     static_cast<unsigned long long>(r.call_number),
                     static_cast<long long>(r.retval), r.errno_value);
  }
  return out;
}

Scenario InjectionLog::ReplayScenario(size_t index) const {
  Scenario scenario;
  if (index >= records_.size()) {
    return scenario;
  }
  const InjectionRecord& r = records_[index];

  TriggerDecl decl;
  decl.id = StrFormat("replay-%llu", static_cast<unsigned long long>(r.sequence));
  decl.class_name = "CallCountTrigger";
  auto args = std::make_unique<XmlNode>("args");
  args->AddChild("count")->set_text(
      StrFormat("%llu", static_cast<unsigned long long>(r.call_number)));
  decl.args = std::shared_ptr<XmlNode>(args.release());

  FunctionAssoc assoc;
  assoc.function = r.function;
  assoc.retval = r.retval;
  assoc.errno_value = r.errno_value;
  assoc.triggers.push_back(TriggerRef{decl.id, false});

  scenario.AddTrigger(std::move(decl));
  scenario.AddFunction(std::move(assoc));
  return scenario;
}

}  // namespace lfi
