#include "core/scenario_gen.h"

#include <memory>

#include "util/string_util.h"

namespace lfi {
namespace {

void AppendSiteVariant(Scenario* scenario, const CallSiteReport& report, int64_t retval,
                       int errno_value, uint64_t call_count) {
  // Trigger id: the call-site offset in hex, like the paper's "8054a69".
  TriggerDecl decl;
  decl.id = StrFormat("%x", report.site.offset);
  decl.class_name = "CallStackTrigger";
  auto args = std::make_unique<XmlNode>("args");
  XmlNode* frame = args->AddChild("frame");
  frame->AddChild("module")->set_text(report.site.module);
  frame->AddChild("offset")->set_text(StrFormat("%x", report.site.offset));
  decl.args = std::shared_ptr<XmlNode>(args.release());

  FunctionAssoc assoc;
  assoc.function = report.site.function;
  assoc.retval = retval;
  assoc.errno_value = errno_value;
  assoc.triggers.push_back(TriggerRef{decl.id, false});
  scenario->AddTrigger(std::move(decl));

  if (call_count > 0) {
    // Conjunction order matters: the stack trigger runs first, so with
    // short-circuit evaluation the count trigger only advances on calls made
    // *at this site* -- "the n-th call here", not "the n-th call anywhere".
    TriggerDecl nth;
    nth.id = StrFormat("%x-n%llu", report.site.offset, (unsigned long long)call_count);
    nth.class_name = "CallCountTrigger";
    auto nth_args = std::make_unique<XmlNode>("args");
    nth_args->AddChild("count")->set_text(
        StrFormat("%llu", (unsigned long long)call_count));
    nth.args = std::shared_ptr<XmlNode>(nth_args.release());
    assoc.triggers.push_back(TriggerRef{nth.id, false});
    scenario->AddTrigger(std::move(nth));
  }

  scenario->AddFunction(std::move(assoc));
}

void AppendSite(Scenario* scenario, const CallSiteReport& report, const FaultProfile& profile) {
  const FunctionProfile* fn = profile.Find(report.site.function);
  if (fn == nullptr) {
    return;
  }
  int64_t retval;
  int errno_value;
  if (!PickSiteErrorMode(report, *fn, &retval, &errno_value)) {
    return;
  }
  AppendSiteVariant(scenario, report, retval, errno_value, /*call_count=*/0);
}

}  // namespace

bool PickSiteErrorMode(const CallSiteReport& report, const FunctionProfile& fn, int64_t* retval,
                       int* errno_value) {
  const ErrorSpec* chosen = nullptr;
  if (report.check_class == CheckClass::kPartial) {
    for (const ErrorSpec& e : fn.errors) {
      if (report.missing_codes.count(e.retval) != 0) {
        chosen = &e;
        break;
      }
    }
  }
  if (chosen == nullptr && !fn.errors.empty()) {
    chosen = &fn.errors.front();
  }
  if (chosen == nullptr) {
    return false;
  }
  *retval = chosen->retval;
  *errno_value = chosen->errnos.empty() ? 0 : chosen->errnos.front();
  return true;
}

Scenario GenerateSiteScenarioVariant(const CallSiteReport& report, int64_t retval,
                                     int errno_value, uint64_t call_count) {
  Scenario scenario;
  AppendSiteVariant(&scenario, report, retval, errno_value, call_count);
  return scenario;
}

GeneratedScenarios GenerateScenarios(const std::vector<CallSiteReport>& reports,
                                     const FaultProfile& profile) {
  GeneratedScenarios out;
  for (const CallSiteReport& report : reports) {
    switch (report.check_class) {
      case CheckClass::kNone:
        AppendSite(&out.unchecked, report, profile);
        break;
      case CheckClass::kPartial:
        AppendSite(&out.partial, report, profile);
        break;
      case CheckClass::kFull:
        break;
    }
  }
  return out;
}

Scenario GenerateSiteScenario(const CallSiteReport& report, const FaultProfile& profile) {
  Scenario scenario;
  AppendSite(&scenario, report, profile);
  return scenario;
}

}  // namespace lfi
