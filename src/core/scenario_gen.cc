#include "core/scenario_gen.h"

#include "util/string_util.h"

namespace lfi {
namespace {

// Picks the error mode to inject for a site: for partially checked sites a
// *missing* retval is preferred; otherwise the profile's first error mode.
bool PickErrorMode(const CallSiteReport& report, const FunctionProfile& fn, int64_t* retval,
                   int* errno_value) {
  const ErrorSpec* chosen = nullptr;
  if (report.check_class == CheckClass::kPartial) {
    for (const ErrorSpec& e : fn.errors) {
      if (report.missing_codes.count(e.retval) != 0) {
        chosen = &e;
        break;
      }
    }
  }
  if (chosen == nullptr && !fn.errors.empty()) {
    chosen = &fn.errors.front();
  }
  if (chosen == nullptr) {
    return false;
  }
  *retval = chosen->retval;
  *errno_value = chosen->errnos.empty() ? 0 : chosen->errnos.front();
  return true;
}

void AppendSite(Scenario* scenario, const CallSiteReport& report, const FaultProfile& profile) {
  const FunctionProfile* fn = profile.Find(report.site.function);
  if (fn == nullptr) {
    return;
  }
  int64_t retval;
  int errno_value;
  if (!PickErrorMode(report, *fn, &retval, &errno_value)) {
    return;
  }

  // Trigger id: the call-site offset in hex, like the paper's "8054a69".
  TriggerDecl decl;
  decl.id = StrFormat("%x", report.site.offset);
  decl.class_name = "CallStackTrigger";
  auto args = std::make_unique<XmlNode>("args");
  XmlNode* frame = args->AddChild("frame");
  frame->AddChild("module")->set_text(report.site.module);
  frame->AddChild("offset")->set_text(StrFormat("%x", report.site.offset));
  decl.args = std::shared_ptr<XmlNode>(args.release());

  FunctionAssoc assoc;
  assoc.function = report.site.function;
  assoc.retval = retval;
  assoc.errno_value = errno_value;
  assoc.triggers.push_back(TriggerRef{decl.id, false});

  scenario->AddTrigger(std::move(decl));
  scenario->AddFunction(std::move(assoc));
}

}  // namespace

GeneratedScenarios GenerateScenarios(const std::vector<CallSiteReport>& reports,
                                     const FaultProfile& profile) {
  GeneratedScenarios out;
  for (const CallSiteReport& report : reports) {
    switch (report.check_class) {
      case CheckClass::kNone:
        AppendSite(&out.unchecked, report, profile);
        break;
      case CheckClass::kPartial:
        AppendSite(&out.partial, report, profile);
        break;
      case CheckClass::kFull:
        break;
    }
  }
  return out;
}

Scenario GenerateSiteScenario(const CallSiteReport& report, const FaultProfile& profile) {
  Scenario scenario;
  AppendSite(&scenario, report, profile);
  return scenario;
}

}  // namespace lfi
