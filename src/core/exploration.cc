#include "core/exploration.h"

#include <algorithm>
#include <stdexcept>

#include "core/scenario_gen.h"
#include "util/string_util.h"

namespace lfi {
namespace {

// Seed mixing for per-job Runtime seeds: fold the plan coordinates into the
// strategy seed so every scheduled variant gets its own decorrelated stream.
uint64_t MixSeed(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

void ScenarioSource::OnFeedback(const CampaignJob& job, const RunFeedback& feedback) {
  (void)job;
  (void)feedback;
}

// --- RunFeedback XML --------------------------------------------------------

void RunFeedback::AppendXml(XmlNode* parent) const {
  XmlNode* node = parent->AddChild("feedback");
  if (new_bug) {
    node->SetAttr("new-bug", "true");
  }
  node->SetAttr("injections", StrFormat("%zu", injections));
  if (!fingerprint.empty()) {
    node->SetAttr("fingerprint", fingerprint);
  }
  for (const std::string& block : new_blocks) {
    node->AddChild("newblock")->SetAttr("id", block);
  }
}

std::string RunFeedback::ToXml() const { return ToXmlElement(*this); }

std::optional<RunFeedback> RunFeedback::FromNode(const XmlNode& node, std::string* error) {
  if (node.name() != "feedback") {
    if (error != nullptr) {
      *error = "feedback element must be <feedback>";
    }
    return std::nullopt;
  }
  RunFeedback feedback;
  feedback.new_bug = node.AttrOr("new-bug", "false") == "true";
  feedback.injections = static_cast<size_t>(node.IntAttr("injections").value_or(0));
  feedback.fingerprint = node.AttrOr("fingerprint", "");
  for (const XmlNode* block : node.Children("newblock")) {
    feedback.new_blocks.push_back(block->AttrOr("id", ""));
  }
  return feedback;
}

std::optional<RunFeedback> RunFeedback::Parse(const std::string& xml, std::string* error) {
  return ParseXmlElement<RunFeedback>(xml, error);
}

// --- FrontierState XML ------------------------------------------------------

namespace {

void AppendPlans(XmlNode* parent, const char* name,
                 const std::vector<FrontierState::Plan>& plans) {
  XmlNode* list = parent->AddChild(name);
  for (const FrontierState::Plan& plan : plans) {
    XmlNode* node = list->AddChild("plan");
    node->SetAttr("report", StrFormat("%zu", plan.report_index));
    node->SetAttr("retval", StrFormat("%lld", static_cast<long long>(plan.retval)));
    node->SetAttr("errno", StrFormat("%d", plan.errno_value));
    node->SetAttr("call", StrFormat("%llu", (unsigned long long)plan.call_count));
  }
}

bool ParsePlans(const XmlNode& parent, const char* name,
                std::vector<FrontierState::Plan>* out, std::string* error) {
  const XmlNode* list = parent.Child(name);
  if (list == nullptr) {
    if (error != nullptr) {
      *error = StrFormat("frontier is missing its <%s> list", name);
    }
    return false;
  }
  for (const XmlNode* node : list->Children("plan")) {
    FrontierState::Plan plan;
    plan.report_index = static_cast<size_t>(node->IntAttr("report").value_or(0));
    plan.retval = node->IntAttr("retval").value_or(0);
    plan.errno_value = static_cast<int>(node->IntAttr("errno").value_or(0));
    plan.call_count = static_cast<uint64_t>(node->IntAttr("call").value_or(0));
    out->push_back(plan);
  }
  return true;
}

}  // namespace

void FrontierState::AppendXml(XmlNode* parent) const {
  XmlNode* node = parent->AddChild("frontier");
  node->SetAttr("scheduled", StrFormat("%zu", scheduled));
  AppendPlans(node, "explore", explore);
  AppendPlans(node, "exploit", exploit);
  XmlNode* keys = node->AddChild("seen");
  for (const std::string& key : seen_keys) {
    keys->AddChild("key")->SetAttr("id", key);
  }
  XmlNode* fingerprints = node->AddChild("fingerprints");
  for (const std::string& fingerprint : seen_fingerprints) {
    fingerprints->AddChild("fp")->SetAttr("id", fingerprint);
  }
}

std::string FrontierState::ToXml() const { return ToXmlElement(*this); }

std::optional<FrontierState> FrontierState::FromNode(const XmlNode& node, std::string* error) {
  if (node.name() != "frontier") {
    if (error != nullptr) {
      *error = "frontier element must be <frontier>";
    }
    return std::nullopt;
  }
  FrontierState state;
  state.scheduled = static_cast<size_t>(node.IntAttr("scheduled").value_or(0));
  if (!ParsePlans(node, "explore", &state.explore, error) ||
      !ParsePlans(node, "exploit", &state.exploit, error)) {
    return std::nullopt;
  }
  if (const XmlNode* keys = node.Child("seen")) {
    for (const XmlNode* key : keys->Children("key")) {
      state.seen_keys.push_back(key->AttrOr("id", ""));
    }
  }
  if (const XmlNode* fingerprints = node.Child("fingerprints")) {
    for (const XmlNode* fingerprint : fingerprints->Children("fp")) {
      state.seen_fingerprints.push_back(fingerprint->AttrOr("id", ""));
    }
  }
  return state;
}

std::optional<FrontierState> FrontierState::Parse(const std::string& xml, std::string* error) {
  return ParseXmlElement<FrontierState>(xml, error);
}

// --- ExhaustiveSource -------------------------------------------------------

ExhaustiveSource::ExhaustiveSource(std::vector<CampaignJob> jobs, size_t budget)
    : jobs_(std::move(jobs)) {
  if (budget > 0 && budget < jobs_.size()) {
    jobs_.resize(budget);
  }
}

std::vector<CampaignJob> ExhaustiveSource::NextBatch(size_t max_jobs) {
  std::vector<CampaignJob> out;
  while (next_ < jobs_.size() && out.size() < max_jobs) {
    out.push_back(jobs_[next_++]);
  }
  return out;
}

// --- RandomSweepSource ------------------------------------------------------

RandomSweepSource::RandomSweepSource(const FaultProfile& profile,
                                     std::vector<std::string> functions, size_t budget,
                                     uint64_t seed)
    : profile_(&profile), functions_(std::move(functions)), budget_(budget), rng_(seed) {
  // Canonical sample space: the caller's order must not leak into the stream.
  std::sort(functions_.begin(), functions_.end());
  functions_.erase(std::unique(functions_.begin(), functions_.end()), functions_.end());
}

std::vector<CampaignJob> RandomSweepSource::NextBatch(size_t max_jobs) {
  std::vector<CampaignJob> out;
  if (functions_.empty()) {
    return out;
  }
  while (out.size() < max_jobs && emitted_ < budget_) {
    // Rejection-sample an unseen (function, error mode, ordinal) tuple. A
    // long dry streak means the space is (nearly) exhausted: stop the sweep
    // rather than spin -- deterministically, since the Rng drives both.
    bool produced = false;
    for (int attempt = 0; attempt < 64 && !produced; ++attempt) {
      const std::string& function = functions_[rng_.NextBelow(functions_.size())];
      const FunctionProfile* fn = profile_->Find(function);
      if (fn == nullptr || fn->errors.empty()) {
        continue;
      }
      const ErrorSpec& mode = fn->errors[rng_.NextBelow(fn->errors.size())];
      int errno_value =
          mode.errnos.empty() ? 0
                              : mode.errnos[rng_.NextBelow(mode.errnos.size())];
      uint64_t count = 1 + rng_.NextBelow(8);
      std::string key = StrFormat("%s:%lld:%d:%llu", function.c_str(),
                                  static_cast<long long>(mode.retval), errno_value,
                                  (unsigned long long)count);
      if (!seen_keys_.insert(key).second) {
        continue;
      }
      CampaignJob job;
      job.scenario = MakeCallCountScenario(function, count, mode.retval, errno_value);
      job.label = StrFormat("random-sweep %s#%llu=%lld errno=%d", function.c_str(),
                            (unsigned long long)count, static_cast<long long>(mode.retval),
                            errno_value);
      job.seed = rng_.Next() | 1;
      out.push_back(std::move(job));
      ++emitted_;
      produced = true;
    }
    if (!produced) {
      emitted_ = budget_;  // sample space exhausted; end the sweep
      break;
    }
  }
  return out;
}

// --- ShardSource ------------------------------------------------------------

ShardSource::ShardSource(ScenarioSource& inner, size_t shard_index, size_t shard_count) {
  if (shard_count == 0 || shard_index >= shard_count) {
    throw std::invalid_argument("ShardSource: shard_index must be < shard_count");
  }
  if (inner.needs_feedback()) {
    throw std::invalid_argument(
        "ShardSource: feedback-driven sources cannot be dealt across processes (their "
        "schedule depends on results the other shards hold); shard a recorded journal "
        "instead");
  }
  while (true) {
    std::vector<CampaignJob> batch = inner.NextBatch(64);
    if (batch.empty()) {
      break;
    }
    for (CampaignJob& job : batch) {
      size_t index = stream_size_++;
      if (job.stream_index == CampaignJob::kNoStreamIndex) {
        // An epoch-mode inner source stamps its own (epoch-global) stream
        // positions; anything else gets its drain position here.
        job.stream_index = index;
      }
      if (ScenarioShard(job.scenario, shard_count) != shard_index) {
        continue;
      }
      jobs_.push_back(std::move(job));
    }
  }
}

std::vector<CampaignJob> ShardSource::NextBatch(size_t max_jobs) {
  std::vector<CampaignJob> out;
  while (next_ < jobs_.size() && out.size() < max_jobs) {
    out.push_back(jobs_[next_++]);
  }
  return out;
}

// --- CoverageGuidedSource ---------------------------------------------------

CoverageGuidedSource::CoverageGuidedSource(std::vector<CallSiteReport> reports,
                                           const FaultProfile& profile, Options options)
    : reports_(std::move(reports)), profile_(&profile), options_(options) {
  // Initial frontier: every analyzable site exactly once, ordered so the
  // budget is spent where unseen recovery code is likeliest. Unchecked sites
  // beat partially checked beat fully checked, and within a class sites are
  // taken round-robin across enclosing functions: two sites in the same
  // function tend to guard the same recovery region, so diversity first.
  auto append_class = [this](CheckClass cls) {
    std::vector<std::string> group_order;                    // first-appearance order
    std::map<std::string, std::deque<size_t>> by_enclosing;  // pending indices
    for (size_t i = 0; i < reports_.size(); ++i) {
      if (reports_[i].check_class != cls) {
        continue;
      }
      auto [it, inserted] = by_enclosing.emplace(reports_[i].site.enclosing, std::deque<size_t>());
      if (inserted) {
        group_order.push_back(reports_[i].site.enclosing);
      }
      it->second.push_back(i);
    }
    bool drained = false;
    while (!drained) {
      drained = true;
      for (const std::string& enclosing : group_order) {
        std::deque<size_t>& pending = by_enclosing[enclosing];
        if (pending.empty()) {
          continue;
        }
        drained = false;
        size_t index = pending.front();
        pending.pop_front();
        const FunctionProfile* fn = profile_->Find(reports_[index].site.function);
        Plan plan;
        plan.report_index = index;
        if (fn == nullptr ||
            !PickSiteErrorMode(reports_[index], *fn, &plan.retval, &plan.errno_value)) {
          continue;  // nothing injectable at this site
        }
        explore_.push_back(plan);
      }
    }
  };
  append_class(CheckClass::kNone);
  append_class(CheckClass::kPartial);
  if (options_.include_checked_sites) {
    append_class(CheckClass::kFull);
  }
}

std::string CoverageGuidedSource::PlanKey(const Plan& plan) const {
  const CallSite& site = reports_[plan.report_index].site;
  return StrFormat("%x:%lld:%d:%llu", site.offset, static_cast<long long>(plan.retval),
                   plan.errno_value, (unsigned long long)plan.call_count);
}

bool CoverageGuidedSource::Schedule(const Plan& plan, std::vector<CampaignJob>* out) {
  // Mutations claimed their key at enqueue time; initial site plans claim it
  // here. Either way the key is marked before the job runs.
  seen_keys_.insert(PlanKey(plan));
  const CallSiteReport& report = reports_[plan.report_index];
  CampaignJob job;
  job.scenario =
      GenerateSiteScenarioVariant(report, plan.retval, plan.errno_value, plan.call_count);
  if (job.scenario.functions().empty()) {
    return false;
  }
  job.label = StrFormat("explore %s@%s+0x%x retval=%lld errno=%d", report.site.function.c_str(),
                        report.site.enclosing.c_str(), report.site.offset,
                        static_cast<long long>(plan.retval), plan.errno_value);
  if (plan.call_count > 0) {
    job.label += StrFormat(" call=%llu", (unsigned long long)plan.call_count);
  }
  uint64_t seed = MixSeed(options_.seed, report.site.offset + 1);
  seed = MixSeed(seed, static_cast<uint64_t>(plan.retval));
  seed = MixSeed(seed, static_cast<uint64_t>(plan.errno_value));
  seed = MixSeed(seed, plan.call_count);
  job.seed = seed | 1;
  // Stamp the job's position in the schedule stream. In a single process the
  // engine's merge index equals this position, so stamping changes nothing;
  // in an epoch shard child it is what lets MergeJournals restore exact
  // single-process order (scheduled_ continues from the imported frontier).
  job.stream_index = scheduled_;
  if (!options_.open_loop) {
    in_flight_[job.label] = plan;
  }
  out->push_back(std::move(job));
  ++scheduled_;
  return true;
}

std::vector<CampaignJob> CoverageGuidedSource::NextBatch(size_t max_jobs) {
  std::vector<CampaignJob> out;
  while (out.size() < max_jobs && scheduled_ < options_.budget &&
         (options_.schedule_limit == 0 || scheduled_ < options_.schedule_limit)) {
    Plan plan;
    if (!explore_.empty()) {
      plan = explore_.front();
      explore_.pop_front();
    } else if (!exploit_.empty()) {
      plan = exploit_.front();
      exploit_.pop_front();
    } else {
      break;
    }
    Schedule(plan, &out);  // false = nothing injectable; just move on
  }
  return out;
}

void CoverageGuidedSource::OnFeedback(const CampaignJob& job, const RunFeedback& feedback) {
  auto it = in_flight_.find(job.label);
  if (it == in_flight_.end()) {
    return;
  }
  Plan plan = it->second;
  in_flight_.erase(it);
  if (!feedback.fingerprint.empty() &&
      !seen_fingerprints_.insert(feedback.fingerprint).second) {
    // An already-observed fault sequence: the scenario is behaviourally
    // equivalent to an earlier one, so expanding it would re-explore the
    // same neighbourhood.
    return;
  }
  if (feedback.new_bug || !feedback.new_blocks.empty()) {
    EnqueueMutations(plan);
  }
}

void CoverageGuidedSource::EnqueueMutations(const Plan& plan) {
  const CallSiteReport& report = reports_[plan.report_index];
  const FunctionProfile* fn = profile_->Find(report.site.function);
  if (fn == nullptr) {
    return;
  }
  int enqueued = 0;
  auto offer = [&](int64_t retval, int errno_value, uint64_t call_count) {
    if (enqueued >= options_.max_mutations_per_run) {
      return;
    }
    Plan mutated = plan;
    mutated.retval = retval;
    mutated.errno_value = errno_value;
    mutated.call_count = call_count;
    // Claiming the key now (not at Schedule time) keeps a pending duplicate
    // from eating a second fruitful run's mutation slots.
    if (!seen_keys_.insert(PlanKey(mutated)).second) {
      return;
    }
    exploit_.push_back(mutated);
    ++enqueued;
  };
  // Other error modes of the same function, then later call ordinals at the
  // same site (a second fopen may guard a different recovery path than the
  // first).
  for (const ErrorSpec& mode : fn->errors) {
    if (mode.errnos.empty()) {
      offer(mode.retval, 0, plan.call_count);
    } else {
      for (int errno_value : mode.errnos) {
        offer(mode.retval, errno_value, plan.call_count);
      }
    }
  }
  for (uint64_t count = 2; count <= options_.max_call_count; ++count) {
    offer(plan.retval, plan.errno_value, count);
  }
}

FrontierState CoverageGuidedSource::ExportFrontier() const {
  if (!in_flight_.empty()) {
    throw std::logic_error(
        "CoverageGuidedSource::ExportFrontier: source is not quiescent (feedback is "
        "outstanding for scheduled jobs); export only at an epoch boundary");
  }
  FrontierState state;
  state.explore.assign(explore_.begin(), explore_.end());
  state.exploit.assign(exploit_.begin(), exploit_.end());
  state.seen_keys.assign(seen_keys_.begin(), seen_keys_.end());
  state.seen_fingerprints.assign(seen_fingerprints_.begin(), seen_fingerprints_.end());
  state.scheduled = scheduled_;
  return state;
}

void CoverageGuidedSource::ImportFrontier(const FrontierState& state) {
  explore_.assign(state.explore.begin(), state.explore.end());
  exploit_.assign(state.exploit.begin(), state.exploit.end());
  seen_keys_ = std::set<std::string>(state.seen_keys.begin(), state.seen_keys.end());
  seen_fingerprints_ =
      std::set<std::string>(state.seen_fingerprints.begin(), state.seen_fingerprints.end());
  in_flight_.clear();
  scheduled_ = state.scheduled;
}

}  // namespace lfi
