#include "core/warm_pool.h"

namespace lfi {

std::unique_ptr<WarmTarget> WarmPool::Checkout() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!idle_.empty()) {
      std::unique_ptr<WarmTarget> instance = std::move(idle_.back());
      idle_.pop_back();
      return instance;
    }
    ++stats_.builds;
  }
  // Build outside the lock: bring-up is the expensive part this pool exists
  // to amortize, and other workers should not serialize behind it.
  return factory_();
}

void WarmPool::Checkin(std::unique_ptr<WarmTarget> instance) {
  std::lock_guard<std::mutex> lock(mu_);
  idle_.push_back(std::move(instance));
}

JobResult WarmPool::RunJob(const CampaignJob& job) {
  std::unique_ptr<WarmTarget> instance = Checkout();
  JobResult result;
  try {
    result = instance->Run(job);
  } catch (...) {
    // The harness absorbs expected failures (SimCrash is caught inside
    // RunTest); anything that still unwinds leaves the instance in an
    // unknown state, so it must not be re-pooled.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.runs;
    ++stats_.dropped;
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.runs;
  }
  if (instance->Reset()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.resets;
    }
    Checkin(std::move(instance));
  } else {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.dropped;
  }
  return result;
}

}  // namespace lfi
