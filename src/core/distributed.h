// Distributed fault injection (§3.2, §7.3).
//
// A central controller receives information on intercepted calls from every
// node of a distributed system (replica processes attach it as a libc
// service) and decides, based on a global view, whether the remote trigger
// should fire. The three concrete controllers implement the failure policies
// of the paper's PBFT study: uniform random message loss (Figure 3), a full
// blackout of one replica, and the rotating 500-fault DoS attack on the
// reconfiguration protocol (§7.3).

#ifndef LFI_CORE_DISTRIBUTED_H_
#define LFI_CORE_DISTRIBUTED_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "util/rng.h"
#include "vlib/interposer.h"

namespace lfi {

class DistributedController {
 public:
  static constexpr const char* kServiceName = "lfi.distributed";

  virtual ~DistributedController() = default;

  // Global injection decision for an intercepted call on `node`.
  virtual bool ShouldInject(const std::string& node, const std::string& function,
                            const ArgSpan& args) = 0;

  uint64_t consultations() const { return consultations_; }

 protected:
  uint64_t consultations_ = 0;
};

// Fails communication calls on every node with a fixed probability:
// "simulating a degraded (but not malicious) network environment".
class RandomLossController : public DistributedController {
 public:
  RandomLossController(double probability, uint64_t seed)
      : probability_(probability), rng_(seed) {}

  bool ShouldInject(const std::string& node, const std::string& function,
                    const ArgSpan& args) override;

 private:
  double probability_;
  Rng rng_;
};

// Fails every communication call of one specific node, rendering it
// practically inactive (the first DoS scenario).
class BlackoutController : public DistributedController {
 public:
  explicit BlackoutController(std::string target) : target_(std::move(target)) {}

  bool ShouldInject(const std::string& node, const std::string& function,
                    const ArgSpan& args) override;

 private:
  std::string target_;
};

// Injects `burst` consecutive faults into node i's communication, then moves
// to node i+1, cyclically -- the reconfiguration-protocol attack.
class RotatingBlackoutController : public DistributedController {
 public:
  RotatingBlackoutController(std::vector<std::string> nodes, uint64_t burst)
      : nodes_(std::move(nodes)), burst_(burst) {}

  bool ShouldInject(const std::string& node, const std::string& function,
                    const ArgSpan& args) override;

  const std::string& current_target() const { return nodes_[current_]; }

 private:
  std::vector<std::string> nodes_;
  uint64_t burst_;
  size_t current_ = 0;
  uint64_t injected_in_burst_ = 0;
};

}  // namespace lfi

#endif  // LFI_CORE_DISTRIBUTED_H_
