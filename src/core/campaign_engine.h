// The parallel campaign engine.
//
// The §7.1 campaign ("LFI entirely on its own") is embarrassingly parallel:
// every generated scenario is an independent controller run against a fresh
// instance of the target. The engine exploits that. It takes a batch of
// CampaignJobs -- built from the analyzer's reports, a random-injection
// generator, or an explicit list -- shards them across a work-stealing
// worker pool, runs each through its own TestController, and merges the
// FoundBug results with the campaign's crash-site dedup.
//
// Determinism is load-bearing: results are merged in *job order* no matter
// which worker finishes first, and jobs carry a per-scenario RNG seed that
// Runtime::Options threads to the triggers, so an N-worker run returns a bug
// list bit-identical to the 1-worker (serial) baseline.
//
// Beyond the one-shot batch API, the engine can stream jobs from a
// ScenarioSource (core/exploration.h): it pulls fixed-size batches, runs
// them on the pool, merges each batch in job order, and feeds per-job
// RunFeedback -- the bugs, the injection fingerprint, and the coverage
// blocks that run covered for the first time -- back to the source before
// pulling the next batch. Feedback-driven strategies (coverage-guided
// exploration) close their loop through that channel. The batch size is
// independent of the worker count, so the same seed + strategy produces a
// bit-identical bug list at any parallelism.

#ifndef LFI_CORE_CAMPAIGN_ENGINE_H_
#define LFI_CORE_CAMPAIGN_ENGINE_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/runtime.h"
#include "core/scenario.h"
#include "coverage/coverage.h"
#include "image/image.h"
#include "profiler/fault_profile.h"

namespace lfi {

class ScenarioSource;

// Header fields of a campaign journal (core/journal.h): what a fresh journal
// records about the campaign's identity, and what `lfi_tool resume` reads
// back to reconstruct it.
using JournalMetadata = std::vector<std::pair<std::string, std::string>>;

// Epoch sentinel: "not part of an epoch-synchronized campaign". Epochs are
// the synchronization unit of distributed coverage-guided exploration
// (docs/architecture.md): feedback reaches the scenario source only at epoch
// boundaries, and journal records remember which epoch produced them so a
// resumed orchestrator can reconstruct the schedule.
inline constexpr size_t kNoEpoch = static_cast<size_t>(-1);

// On-disk encoding of a campaign journal. Both encodings carry the same
// records and metadata and are freely convertible (`lfi_tool journal
// convert`); readers auto-detect the encoding from the file's first bytes,
// so the format is a property of the artifact, never of the campaign
// identity. kExtent (core/extent_journal.h, docs/journal-format.md) is the
// default for new journals; kXml is kept as the human-readable debug and
// interchange encoding.
enum class JournalFormat {
  kExtent,  // binary: CRC-checked, optionally compressed extents + footer index
  kXml,     // the original append-only XML stream
};

const char* JournalFormatName(JournalFormat format);
std::optional<JournalFormat> ParseJournalFormat(const std::string& name);

// A bug exposed by the campaign, deduplicated by crash site: two injections
// crashing at the same place in the same system are one bug (Table 1 counts
// distinct sites, not distinct scenarios).
struct FoundBug {
  std::string system;    // "git", "mysql", "bind", "pbft", "bfs"
  std::string kind;      // "SIGSEGV", "double mutex unlock", "data loss", ...
  std::string where;     // crash site / corruption description
  std::string injected;  // the fault that exposed it, e.g. "opendir=NULL@list_branches"
  bool operator<(const FoundBug& o) const {
    return std::tie(system, kind, where) < std::tie(o.system, o.kind, o.where);
  }
  bool operator==(const FoundBug& o) const = default;

  // XML round trip (<bug system kind where injected/>), used by campaign
  // journal records.
  void AppendXml(XmlNode* parent) const;
  std::string ToXml() const;
  static std::optional<FoundBug> FromNode(const XmlNode& node, std::string* error = nullptr);
  static std::optional<FoundBug> Parse(const std::string& xml, std::string* error = nullptr);
};

// Thread-safe crash-site dedup. The first report of a site wins (later
// duplicates keep the original `injected` attribution, like the serial
// std::set-based campaigns did).
class BugSink {
 public:
  // Returns true when the bug was new (not a duplicate site).
  bool Report(const FoundBug& bug);
  void Report(const std::vector<FoundBug>& bugs);
  size_t size() const;
  std::vector<FoundBug> Sorted() const;

 private:
  mutable std::mutex mu_;
  std::set<FoundBug> bugs_;
};

// Everything one job's run reports back to the streaming engine: the bugs it
// exposed plus the observations the feedback loop runs on. The coverage map
// is the job's own (the application instance's), merged into the cumulative
// exploration map at the deterministic job-order merge point.
struct JobResult {
  std::vector<FoundBug> bugs;
  CoverageMap coverage;
  std::string fingerprint;  // InjectionLog::Fingerprint + crash site, "" = clean run
  size_t injections = 0;
  // The run's full injection log. Persisted by the campaign journal so any
  // recorded injection can be replayed from disk (InjectionLog::
  // ReplayScenario) without re-running the original campaign.
  InjectionLog log;
};

// One schedulable unit: a scenario plus everything needed to attribute and
// reproduce its outcome.
struct CampaignJob {
  static constexpr size_t kNoStreamIndex = static_cast<size_t>(-1);

  Scenario scenario;
  std::string label;  // FoundBug::injected for bugs this job exposes
  uint64_t seed = 0;  // Runtime::Options::seed; 0 = scenario's own seeds
  // Global position in the campaign's deterministic scenario stream. Sharded
  // sources (ShardSource) stamp it so a shard's journal remembers where each
  // job sat in the unsharded stream and MergeJournals can interleave shard
  // records back into single-process merge order. kNoStreamIndex makes the
  // journal fall back to the engine's own merge index.
  size_t stream_index = kNoStreamIndex;
  // Self-contained jobs (different workload or harness than the campaign
  // default) override the campaign-wide runner.
  std::function<std::vector<FoundBug>(const CampaignJob&)> run;
  // Same, for the streaming (ScenarioSource) entry point, which also wants
  // coverage and the injection fingerprint back.
  std::function<JobResult(const CampaignJob&)> explore;
  // Subject to CampaignEngine::Options::max_bugs: the job is skipped once
  // the bugs merged so far (in job order) reach the cap. Models the serial
  // campaigns' "keep fuzzing until N bugs" loops deterministically.
  bool skip_when_saturated = false;
};

// What a streamed run yields beyond the bug list: the union of every job's
// coverage map and how many scenarios actually executed (gated jobs do not
// count).
struct ExplorationResult {
  std::vector<FoundBug> bugs;
  CoverageMap coverage;
  size_t scenarios_run = 0;
};

class CampaignEngine {
 public:
  struct Options {
    // The batch size every spec-driven campaign runs with (CampaignSpec has
    // no batch-size knob): epoch arithmetic -- epoch_len is measured in
    // batches -- must agree between the engine and the distributed
    // orchestrator, so both read it here.
    static constexpr size_t kDefaultBatchSize = 8;

    int workers = 1;      // <= 0: one worker per hardware thread
    size_t max_bugs = 0;  // 0 = run everything; else gate skip_when_saturated jobs
    // Jobs pulled from a ScenarioSource per batch. Part of the determinism
    // contract: feedback reaches the source after each merged batch, so the
    // batch size -- never the worker count -- decides what a feedback-driven
    // strategy knows when it schedules the next jobs.
    size_t batch_size = kDefaultBatchSize;
    // Non-empty: persist every merged job -- scenario, injection log,
    // fingerprint, bugs, coverage delta -- to an append-only campaign
    // journal at this path (core/journal.h). Records are appended at the
    // deterministic merge point and flushed one by one, so a killed run
    // loses at most the record being written.
    std::string journal_path = {};
    // With journal_path set: load the journal first and replay its records
    // instead of executing the corresponding jobs -- the source still
    // streams and receives feedback exactly as live, so its state (dedup,
    // mutation queues, saturation) ends up where the killed run left off,
    // and execution resumes at the first unjournaled job. The final result
    // is bit-identical to an uninterrupted run at any worker count.
    bool resume = false;
    // Header fields for a fresh journal (campaign identity: system,
    // strategy, budget, seed). On resume the loaded header wins; a mismatch
    // with these values is an error.
    JournalMetadata journal_meta = {};
    // On-disk encoding for a *fresh* journal. Resume keeps whatever encoding
    // the existing file uses (auto-detected on load), so this never forks a
    // journal's format mid-campaign.
    JournalFormat journal_format = JournalFormat::kExtent;
    // Test hook for the kill-and-resume contract: exit the process (no
    // destructors, mid-campaign) right after this many records have been
    // appended in this run. 0 = off.
    size_t abort_after_records = 0;
    // Epoch-synchronized feedback (> 0, in batches): OnFeedback delivery to
    // a feedback-driven source is withheld until `epoch_len` merged batches
    // complete (or the source runs dry mid-epoch), then delivered in job
    // order all at once. This is the single-process reference semantics of
    // distributed coverage-guided exploration -- the orchestrator's
    // spawn/merge/reseed loop must produce the same stream, byte for byte --
    // and records are stamped with the epoch ordinal that produced them.
    size_t epoch_len = 0;
    // Stamps every record this run appends with one fixed epoch ordinal: an
    // epoch shard child's whole run lies inside a single epoch. kNoEpoch =
    // no stamp (the default for ordinary campaigns).
    size_t epoch = kNoEpoch;
    // Wall-clock budget per job (0 = none). A job still running past it --
    // a target hung under an injected fault -- is abandoned on its worker
    // thread and reported as a deterministic FoundBug kind "hang" whose
    // site and fingerprint derive from the job label alone, so the record
    // (and the journal bytes) are reproducible. Deliberately NOT part of
    // the campaign identity: the same campaign run under any timeout
    // resumes and byte-compares against any other, and resume replays hang
    // records from disk without re-waiting.
    uint64_t job_timeout_ms = 0;
    // System name attributed to hang bugs ("" falls back to "campaign").
    std::string system;
  };

  using JobRunner = std::function<std::vector<FoundBug>(const CampaignJob&)>;
  using ResultRunner = std::function<JobResult(const CampaignJob&)>;

  CampaignEngine() = default;
  explicit CampaignEngine(Options options) : options_(options) {}

  // Runs every job (job.run when set, `runner` otherwise) on the worker
  // pool and returns the deduplicated bug list. The merge happens in job
  // order, so the result -- including which scenario gets the `injected`
  // attribution for a shared crash site -- is identical for any worker
  // count.
  std::vector<FoundBug> Run(const std::vector<CampaignJob>& jobs, const JobRunner& runner) const;

  // Every job must carry its own `run`; throws std::logic_error otherwise.
  std::vector<FoundBug> Run(const std::vector<CampaignJob>& jobs) const;

  // The streaming entry point: pulls batches of Options::batch_size jobs
  // from `source` until it is exhausted, runs each batch on the worker pool
  // (job.explore when set, `runner` otherwise), merges results in job order,
  // and hands the source per-job RunFeedback after each merged batch.
  // Open-loop sources (needs_feedback() false) skip the batch barriers
  // entirely: the source is drained up front and everything runs through
  // one eager job-order merge, exactly like the batch API. The max_bugs
  // gate applies exactly as in Run(). Deterministic for any worker count:
  // batch boundaries, merge order, and feedback order depend only on the
  // source and the batch size.
  ExplorationResult Run(ScenarioSource& source, const ResultRunner& runner) const;

  // Every streamed job must carry its own `explore`; throws otherwise.
  ExplorationResult Run(ScenarioSource& source) const;

  const Options& options() const { return options_; }

 private:
  // The one true job-order merge: runs `jobs` on the pool, folds results
  // eagerly as the completion cursor advances (saturation skips take effect
  // mid-flight), and -- when `source` is non-null -- delivers RunFeedback in
  // job order. Both the batch API and the open-loop streaming path land
  // here, so dedup, attribution, and the max_bugs gate cannot diverge.
  ExplorationResult RunOrdered(const std::vector<CampaignJob>& jobs,
                               const ResultRunner& runner, ScenarioSource* source) const;

  Options options_;
};

// Runtime options carrying a job's deterministic seed.
inline Runtime::Options SeededOptions(uint64_t seed) {
  Runtime::Options options;
  options.seed = seed;
  return options;
}

// --- Scenario sources -------------------------------------------------------

// One job per not-fully-checked call site of `binary` against `profile`
// (reports come from the AnalysisCache, so repeated campaigns and concurrent
// workers share one analyzer pass). Labels are "function@enclosing+0xoff";
// per-job seeds derive from `seed_base` and the site offset.
std::vector<CampaignJob> AnalyzerJobs(const Image& binary, const FaultProfile& profile,
                                      uint64_t seed_base = 1);

// A single-site random-injection scenario: fail `function` with
// (retval, errno) at `probability` on every call, stream seeded by `seed`.
Scenario MakeRandomScenario(const std::string& function, int64_t retval, int errno_value,
                            double probability, uint64_t seed);

// Fails the `count`-th call to `function` with (retval, errno): the
// exhaustive-sweep building block (e.g. the BIND dst_lib_init malloc sweep).
Scenario MakeCallCountScenario(const std::string& function, uint64_t count, int64_t retval,
                               int errno_value);

}  // namespace lfi

#endif  // LFI_CORE_CAMPAIGN_ENGINE_H_
