#include "core/stock_triggers.h"

#include "core/distributed.h"
#include "util/string_util.h"
#include "vlib/virtual_libc.h"

namespace lfi {

// --- CallStackTrigger --------------------------------------------------------

void CallStackTrigger::Init(const XmlNode* init_data) {
  if (init_data == nullptr) {
    return;
  }
  for (const XmlNode* frame : init_data->Children("frame")) {
    FrameSpec spec;
    spec.module = frame->ChildText("module");
    spec.function = frame->ChildText("function");
    std::string offset = frame->ChildText("offset");
    if (!offset.empty()) {
      // Offsets are hexadecimal, as printed by the call-site analyzer
      // (the paper's PBFT example uses "8054a69").
      auto v = ParseInt(StartsWith(offset, "0x") ? offset : "0x" + offset);
      if (v) {
        spec.has_offset = true;
        spec.offset = static_cast<uint32_t>(*v);
      }
    }
    frames_.push_back(std::move(spec));
  }
}

bool CallStackTrigger::Eval(VirtualLibc* libc, const std::string& lib_func_name,
                            const ArgSpan& args) {
  (void)lib_func_name;
  (void)args;
  if (frames_.empty()) {
    return false;
  }
  const auto& stack = libc->stack().frames();
  // Every declared frame must match some active frame.
  for (const FrameSpec& spec : frames_) {
    bool matched = false;
    for (const StackFrame& frame : stack) {
      if (!spec.module.empty() && frame.module != spec.module) {
        continue;
      }
      if (!spec.function.empty() && frame.function != spec.function) {
        continue;
      }
      if (spec.has_offset && frame.offset != spec.offset) {
        continue;
      }
      matched = true;
      break;
    }
    if (!matched) {
      return false;
    }
  }
  return true;
}

// --- ProgramStateTrigger -------------------------------------------------------

void ProgramStateTrigger::Init(const XmlNode* init_data) {
  if (init_data == nullptr) {
    return;
  }
  var_ = init_data->ChildText("var");
  var2_ = init_data->ChildText("var2");
  op_ = init_data->ChildText("op", "eq");
  if (auto v = ParseInt(init_data->ChildText("value"))) {
    value_ = *v;
  }
}

bool ProgramStateTrigger::Eval(VirtualLibc* libc, const std::string& lib_func_name,
                               const ArgSpan& args) {
  (void)lib_func_name;
  (void)args;
  auto lhs = libc->GetGlobal(var_);
  if (!lhs) {
    return false;
  }
  int64_t rhs = value_;
  if (!var2_.empty()) {
    auto v2 = libc->GetGlobal(var2_);
    if (!v2) {
      return false;
    }
    rhs = *v2;
  }
  if (op_ == "eq") {
    return *lhs == rhs;
  }
  if (op_ == "ne") {
    return *lhs != rhs;
  }
  if (op_ == "lt") {
    return *lhs < rhs;
  }
  if (op_ == "le") {
    return *lhs <= rhs;
  }
  if (op_ == "gt") {
    return *lhs > rhs;
  }
  if (op_ == "ge") {
    return *lhs >= rhs;
  }
  return false;
}

// --- CallCountTrigger -------------------------------------------------------------

void CallCountTrigger::Init(const XmlNode* init_data) {
  if (init_data != nullptr) {
    if (auto v = ParseInt(init_data->ChildText("count"))) {
      target_ = static_cast<uint64_t>(*v);
    }
  }
}

bool CallCountTrigger::Eval(VirtualLibc* libc, const std::string& lib_func_name,
                            const ArgSpan& args) {
  (void)args;
  // "An injection should occur exactly on the n-th call to a function": the
  // boundary count is authoritative, so the trigger is exact even when it is
  // short-circuited away on some calls.
  return libc->CallCount(lib_func_name) == target_;
}

// --- SingletonTrigger ----------------------------------------------------------------

bool SingletonTrigger::Eval(VirtualLibc* libc, const std::string& lib_func_name,
                            const ArgSpan& args) {
  (void)libc;
  (void)lib_func_name;
  (void)args;
  if (fired_) {
    return false;
  }
  fired_ = true;
  return true;
}

// --- RandomTrigger --------------------------------------------------------------------

void RandomTrigger::Init(const XmlNode* init_data) {
  if (init_data == nullptr) {
    return;
  }
  std::string p = init_data->ChildText("probability");
  if (!p.empty()) {
    probability_ = std::strtod(p.c_str(), nullptr);
  }
  if (auto seed = ParseInt(init_data->ChildText("seed"))) {
    rng_ = Rng(static_cast<uint64_t>(*seed));
    seed_from_args_ = true;
  }
}

void RandomTrigger::Reseed(uint64_t seed) {
  if (!seed_from_args_) {
    rng_ = Rng(seed);
  }
}

bool RandomTrigger::Eval(VirtualLibc* libc, const std::string& lib_func_name,
                         const ArgSpan& args) {
  (void)libc;
  (void)lib_func_name;
  (void)args;
  return rng_.Chance(probability_);
}

// --- DistributedTrigger ------------------------------------------------------------------

bool DistributedTrigger::Eval(VirtualLibc* libc, const std::string& lib_func_name,
                              const ArgSpan& args) {
  auto* controller = static_cast<DistributedController*>(
      libc->GetService(DistributedController::kServiceName));
  if (controller == nullptr) {
    return false;
  }
  return controller->ShouldInject(libc->process_name(), lib_func_name, args);
}

LFI_REGISTER_TRIGGER(CallStackTrigger);
LFI_REGISTER_TRIGGER(ProgramStateTrigger);
LFI_REGISTER_TRIGGER(CallCountTrigger);
LFI_REGISTER_TRIGGER(SingletonTrigger);
LFI_REGISTER_TRIGGER(RandomTrigger);
LFI_REGISTER_TRIGGER(DistributedTrigger);

void EnsureStockTriggersRegistered() {}

}  // namespace lfi
