#include "core/analysis_cache.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/stat.h>
#include <unistd.h>
#define LFI_ANALYSIS_CACHE_PERSIST 1
#endif

#include "util/sha1.h"
#include "util/string_util.h"
#include "xml/xml.h"

namespace lfi {

AnalysisCache& AnalysisCache::Instance() {
  static AnalysisCache* cache = new AnalysisCache;
  return *cache;
}

const FaultProfile& AnalysisCache::Profile(const std::string& library,
                                           const ProfileFactory& make) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = profiles_.find(library);
    if (it != profiles_.end()) {
      ++stats_.profile_hits;
      return *it->second;
    }
  }
  // Compute outside the lock so a slow profile never serializes the workers;
  // losing the insertion race just discards one redundant (identical) copy.
  auto computed = std::make_unique<FaultProfile>(make());
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = profiles_.emplace(library, std::move(computed));
  if (inserted) {
    ++stats_.profile_misses;
  } else {
    ++stats_.profile_hits;
  }
  return *it->second;
}

namespace {

// Content fingerprint of a profile (FNV-1a over function names and error
// modes). Folded into the report cache key so two *different* profiles that
// happen to share a library() name cannot alias to one cached analysis.
uint64_t Fingerprint(const FaultProfile& profile) {
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](uint64_t v) { h = (h ^ v) * 0x100000001b3ull; };
  for (const auto& [name, fn] : profile.functions()) {
    for (char c : name) {
      mix(static_cast<uint64_t>(static_cast<unsigned char>(c)));
    }
    for (const ErrorSpec& e : fn.errors) {
      mix(static_cast<uint64_t>(e.retval));
      for (int errno_value : e.errnos) {
        mix(static_cast<uint64_t>(errno_value));
      }
    }
  }
  return h;
}

std::optional<CheckClass> ParseCheckClass(const std::string& name) {
  if (name == "checked") {
    return CheckClass::kFull;
  }
  if (name == "partially-checked") {
    return CheckClass::kPartial;
  }
  if (name == "unchecked") {
    return CheckClass::kNone;
  }
  return std::nullopt;
}

// The on-disk serialization of one cached analysis: a <reports> element with
// one <report> per call site. The record is self-checking (count attribute);
// anything that fails to parse is treated as a miss and recomputed.
std::string ReportsToXml(const std::vector<CallSiteReport>& reports) {
  XmlDocument doc("reports");
  doc.root()->SetAttr("count", StrFormat("%zu", reports.size()));
  for (const CallSiteReport& report : reports) {
    XmlNode* node = doc.root()->AddChild("report");
    node->SetAttr("module", report.site.module);
    node->SetAttr("offset", StrFormat("%u", report.site.offset));
    node->SetAttr("function", report.site.function);
    node->SetAttr("enclosing", report.site.enclosing);
    node->SetAttr("class", CheckClassName(report.check_class));
    if (report.has_ineq_check) {
      node->SetAttr("ineq", "true");
    }
    for (int64_t value : report.checked_eq) {
      node->AddChild("eq")->SetAttr("value", StrFormat("%lld", (long long)value));
    }
    for (int64_t value : report.checked_ineq) {
      node->AddChild("ineq")->SetAttr("value", StrFormat("%lld", (long long)value));
    }
    for (int64_t value : report.missing_codes) {
      node->AddChild("missing")->SetAttr("value", StrFormat("%lld", (long long)value));
    }
  }
  return doc.ToString();
}

bool ReportsFromXml(const std::string& xml, std::vector<CallSiteReport>* out) {
  auto doc = XmlParse(xml);
  if (!doc || doc->root() == nullptr || doc->root()->name() != "reports") {
    return false;
  }
  const XmlNode& root = *doc->root();
  auto count = root.IntAttr("count");
  std::vector<CallSiteReport> reports;
  for (const XmlNode* node : root.Children("report")) {
    CallSiteReport report;
    report.site.module = node->AttrOr("module", "");
    auto offset = node->IntAttr("offset");
    if (!offset || *offset < 0) {
      return false;
    }
    report.site.offset = static_cast<uint32_t>(*offset);
    report.site.function = node->AttrOr("function", "");
    report.site.enclosing = node->AttrOr("enclosing", "");
    auto check_class = ParseCheckClass(node->AttrOr("class", ""));
    if (!check_class) {
      return false;
    }
    report.check_class = *check_class;
    report.has_ineq_check = node->AttrOr("ineq", "false") == "true";
    for (const XmlNode* value : node->Children("eq")) {
      auto parsed = value->IntAttr("value");
      if (!parsed) {
        return false;
      }
      report.checked_eq.insert(*parsed);
    }
    for (const XmlNode* value : node->Children("ineq")) {
      auto parsed = value->IntAttr("value");
      if (!parsed) {
        return false;
      }
      report.checked_ineq.insert(*parsed);
    }
    for (const XmlNode* value : node->Children("missing")) {
      auto parsed = value->IntAttr("value");
      if (!parsed) {
        return false;
      }
      report.missing_codes.insert(*parsed);
    }
    reports.push_back(std::move(report));
  }
  if (!count || static_cast<size_t>(*count) != reports.size()) {
    return false;
  }
  *out = std::move(reports);
  return true;
}

bool LoadReportsFile(const std::string& path, std::vector<CallSiteReport>* out) {
  std::ifstream in(path);
  if (!in.good()) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReportsFromXml(buffer.str(), out);
}

// Atomic publication: write a uniquely named temp file, then rename it over
// the final path, so concurrent shard children sharing one cache directory
// never observe a half-written analysis. Best-effort -- a failed write just
// means the next process recomputes.
bool SaveReportsFile(const std::string& dir, const std::string& path,
                     const std::vector<CallSiteReport>& reports) {
#ifdef LFI_ANALYSIS_CACHE_PERSIST
  mkdir(dir.c_str(), 0755);  // EEXIST is the common case
  static std::atomic<unsigned> counter{0};
  std::string tmp = StrFormat("%s.%d.%u.tmp", path.c_str(), static_cast<int>(getpid()),
                              counter.fetch_add(1));
  {
    std::ofstream out(tmp);
    out << ReportsToXml(reports);
    if (!out.good()) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
#else
  (void)dir;
  (void)path;
  (void)reports;
  return false;
#endif
}

// Content key of one analysis: the SHA-1 of the binary's serialized image
// (any change to symbols, imports, or code changes the digest) plus the
// profile's content fingerprint.
std::string DiskKey(const Image& binary, const FaultProfile& profile) {
  std::vector<uint8_t> bytes = binary.Serialize();
  std::string digest = Sha1::HexDigest(
      std::string_view(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
  return StrFormat("%s-%s-%llu", digest.c_str(), profile.library().c_str(),
                   (unsigned long long)Fingerprint(profile));
}

}  // namespace

const std::vector<CallSiteReport>& AnalysisCache::Reports(const Image& binary,
                                                          const FaultProfile& profile) {
  std::pair<std::string, std::string> key(
      binary.module_name(),
      profile.library() + "#" + std::to_string(Fingerprint(profile)));
  std::string dir;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = reports_.find(key);
    if (it != reports_.end()) {
      ++stats_.report_hits;
      return *it->second;
    }
    dir = PersistDirLocked();
  }
  // In-memory miss: try the persistent cache before paying for Algorithm 1
  // (compute and file I/O both happen outside the lock so a slow analysis
  // never serializes the workers).
  std::string cache_file = dir.empty() ? "" : dir + "/" + DiskKey(binary, profile) + ".xml";
  auto computed = std::make_unique<std::vector<CallSiteReport>>();
  bool from_disk = !cache_file.empty() && LoadReportsFile(cache_file, computed.get());
  bool persisted = false;
  if (!from_disk) {
    CallSiteAnalyzer analyzer;
    for (const auto& [name, fn] : profile.functions()) {
      for (CallSiteReport& report : analyzer.Analyze(binary, name, fn.ErrorCodes())) {
        computed->push_back(std::move(report));
      }
    }
    persisted = !cache_file.empty() && SaveReportsFile(dir, cache_file, *computed);
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = reports_.emplace(std::move(key), std::move(computed));
  if (!inserted) {
    ++stats_.report_hits;
  } else if (from_disk) {
    ++stats_.report_disk_hits;
  } else {
    ++stats_.report_misses;
    stats_.report_disk_writes += persisted ? 1 : 0;
  }
  return *it->second;
}

void AnalysisCache::SetPersistDir(std::string dir) {
  std::lock_guard<std::mutex> lock(mu_);
  persist_dir_ = std::move(dir);
  persist_dir_resolved_ = true;
}

std::string AnalysisCache::persist_dir() const {
  std::lock_guard<std::mutex> lock(mu_);
  return PersistDirLocked();
}

std::string AnalysisCache::PersistDirLocked() const {
  if (!persist_dir_resolved_) {
    const char* env = std::getenv("LFI_ANALYSIS_CACHE");
    persist_dir_ = env != nullptr ? env : "";
    persist_dir_resolved_ = true;
  }
  return persist_dir_;
}

AnalysisCache::Stats AnalysisCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void AnalysisCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  profiles_.clear();
  reports_.clear();
  stats_ = Stats();
}

}  // namespace lfi
