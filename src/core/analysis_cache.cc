#include "core/analysis_cache.h"

namespace lfi {

AnalysisCache& AnalysisCache::Instance() {
  static AnalysisCache* cache = new AnalysisCache;
  return *cache;
}

const FaultProfile& AnalysisCache::Profile(const std::string& library,
                                           const ProfileFactory& make) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = profiles_.find(library);
    if (it != profiles_.end()) {
      ++stats_.profile_hits;
      return *it->second;
    }
  }
  // Compute outside the lock so a slow profile never serializes the workers;
  // losing the insertion race just discards one redundant (identical) copy.
  auto computed = std::make_unique<FaultProfile>(make());
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = profiles_.emplace(library, std::move(computed));
  if (inserted) {
    ++stats_.profile_misses;
  } else {
    ++stats_.profile_hits;
  }
  return *it->second;
}

namespace {

// Content fingerprint of a profile (FNV-1a over function names and error
// modes). Folded into the report cache key so two *different* profiles that
// happen to share a library() name cannot alias to one cached analysis.
uint64_t Fingerprint(const FaultProfile& profile) {
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](uint64_t v) { h = (h ^ v) * 0x100000001b3ull; };
  for (const auto& [name, fn] : profile.functions()) {
    for (char c : name) {
      mix(static_cast<uint64_t>(static_cast<unsigned char>(c)));
    }
    for (const ErrorSpec& e : fn.errors) {
      mix(static_cast<uint64_t>(e.retval));
      for (int errno_value : e.errnos) {
        mix(static_cast<uint64_t>(errno_value));
      }
    }
  }
  return h;
}

}  // namespace

const std::vector<CallSiteReport>& AnalysisCache::Reports(const Image& binary,
                                                          const FaultProfile& profile) {
  std::pair<std::string, std::string> key(
      binary.module_name(),
      profile.library() + "#" + std::to_string(Fingerprint(profile)));
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = reports_.find(key);
    if (it != reports_.end()) {
      ++stats_.report_hits;
      return *it->second;
    }
  }
  auto computed = std::make_unique<std::vector<CallSiteReport>>();
  CallSiteAnalyzer analyzer;
  for (const auto& [name, fn] : profile.functions()) {
    for (CallSiteReport& report : analyzer.Analyze(binary, name, fn.ErrorCodes())) {
      computed->push_back(std::move(report));
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = reports_.emplace(std::move(key), std::move(computed));
  if (inserted) {
    ++stats_.report_misses;
  } else {
    ++stats_.report_hits;
  }
  return *it->second;
}

AnalysisCache::Stats AnalysisCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void AnalysisCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  profiles_.clear();
  reports_.clear();
  stats_ = Stats();
}

}  // namespace lfi
