// Process-wide cache for the expensive static analyses.
//
// A campaign runs hundreds of scenarios against the same handful of modules,
// and with the parallel engine many workers want the same inputs at once:
// the library fault profiles (§2) and the call-site analyzer reports (§5)
// depend only on the module binaries, never on the scenario. This cache
// computes each once per module and hands out shared read-only references,
// so workers start injecting immediately instead of re-deriving profiles and
// re-running Algorithm 1 per scenario batch.
//
// Entries are never evicted and their addresses are stable, which is what
// makes the returned references safe to hold across threads. Clear() exists
// for tests only; it invalidates everything previously returned.
//
// The cache can additionally persist analyzer reports to disk (SetPersistDir,
// or the LFI_ANALYSIS_CACHE environment variable): every computed analysis is
// written to the directory keyed by the *content* of its inputs -- the SHA-1
// of the binary's serialized image plus the profile fingerprint -- and later
// processes satisfy their first miss from that file instead of re-running
// Algorithm 1. Distributed campaigns spawn one process per shard per epoch,
// so without this every child would pay the full analyzer pass at startup;
// the orchestrator points children at "<journal>.acache" and only the very
// first toucher of a binary computes.

#ifndef LFI_CORE_ANALYSIS_CACHE_H_
#define LFI_CORE_ANALYSIS_CACHE_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "analysis/callsite_analyzer.h"
#include "image/image.h"
#include "profiler/fault_profile.h"

namespace lfi {

class AnalysisCache {
 public:
  using ProfileFactory = std::function<FaultProfile()>;

  struct Stats {
    uint64_t profile_hits = 0;
    uint64_t profile_misses = 0;
    uint64_t report_hits = 0;
    uint64_t report_misses = 0;         // analyses actually computed
    uint64_t report_disk_hits = 0;      // misses served from the on-disk cache
    uint64_t report_disk_writes = 0;    // computed analyses persisted to disk
  };

  static AnalysisCache& Instance();

  // The fault profile for `library`, computed by `make` on first request.
  // Concurrent first requests may both run `make`; the first insertion wins,
  // so factories must be deterministic (they are: profiles derive from the
  // library binary alone).
  const FaultProfile& Profile(const std::string& library, const ProfileFactory& make);

  // Every call-site report of `binary` against `profile`: Algorithm 1 over
  // all profiled functions, in profile iteration order (the order the serial
  // campaigns used). Cached per (binary module, profile library) pair.
  const std::vector<CallSiteReport>& Reports(const Image& binary, const FaultProfile& profile);

  Stats stats() const;

  // Directory for the persistent report cache; "" disables persistence.
  // Defaults to the LFI_ANALYSIS_CACHE environment variable (read once, on
  // first use). Files are content-keyed, so any number of processes may
  // share one directory; writes are atomic (temp file + rename).
  void SetPersistDir(std::string dir);
  std::string persist_dir() const;

  // Test-only: drops every entry, invalidating all previously returned
  // references. Leaves the persist directory configuration untouched.
  void Clear();

 private:
  AnalysisCache() = default;

  // The persist directory under mu_, resolving the environment default on
  // first use.
  std::string PersistDirLocked() const;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<FaultProfile>> profiles_;
  std::map<std::pair<std::string, std::string>, std::unique_ptr<std::vector<CallSiteReport>>>
      reports_;
  Stats stats_;
  mutable bool persist_dir_resolved_ = false;
  mutable std::string persist_dir_;
};

}  // namespace lfi

#endif  // LFI_CORE_ANALYSIS_CACHE_H_
