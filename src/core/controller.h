// The LFI controller (§2).
//
// Coordinates one fault-injection test: installs the runtime (synthesized
// from the scenario) on the target process's libc, runs the developer-
// provided workload, and monitors how the target terminates -- normally or
// with a simulated crash -- collecting the information a developer needs to
// diagnose the bug: the exit status, the injection log, and for crashes the
// trap kind and location.

#ifndef LFI_CORE_CONTROLLER_H_
#define LFI_CORE_CONTROLLER_H_

#include <functional>
#include <memory>
#include <string>

#include "core/runtime.h"
#include "core/scenario.h"
#include "vlib/sim_crash.h"
#include "vlib/virtual_libc.h"

namespace lfi {

enum class ExitStatus {
  kNormal,       // workload returned
  kCrash,        // simulated SIGSEGV / SIGABRT / assertion / double unlock
  kWorkloadError,  // workload reported failure without crashing (bad exit code)
};

struct TestOutcome {
  ExitStatus status = ExitStatus::kNormal;
  CrashKind crash_kind = CrashKind::kSegfault;  // valid when status == kCrash
  std::string crash_where;
  size_t injections = 0;
  std::string log_text;

  bool crashed() const { return status == ExitStatus::kCrash; }
};

class TestController {
 public:
  // The workload returns true on success (the monitor checks the "exit
  // code"); throwing SimCrash models the process dying on a signal.
  using Workload = std::function<bool()>;

  explicit TestController(Scenario scenario)
      : TestController(std::move(scenario), Runtime::Options()) {}
  TestController(Scenario scenario, Runtime::Options options)
      : scenario_(std::move(scenario)), options_(options) {}

  // Runs `workload` with a fresh Runtime interposed on `libc`. The previous
  // interposer is restored afterwards. The runtime (and its log) from the
  // last run stays accessible via runtime().
  TestOutcome RunTest(VirtualLibc* libc, const Workload& workload);

  Runtime* runtime() { return runtime_.get(); }

 private:
  Scenario scenario_;
  Runtime::Options options_;
  std::unique_ptr<Runtime> runtime_;
};

}  // namespace lfi

#endif  // LFI_CORE_CONTROLLER_H_
