// The paper's running-example custom triggers.
//
// These are not part of the stock set; they are the custom triggers §3.1,
// §4.2 and §7.1 build to demonstrate the extension mechanism, shipped here so
// the tests, benchmarks and examples can exercise them:
//
//   ReadPipe1K4KwithMutex -- the §3.1 example: fail read() when the fd is a
//       pipe, the size is within [1 KB, 4 KB], and the caller holds a mutex;
//       tracks pthread_mutex_lock/unlock to know the lock state.
//   ReadPipe  -- the parametrized variant (§4.1): configurable <low>/<high>.
//   WithMutex -- fires for any call while the caller holds a mutex (§4.2).
//   CloseAfterMutexUnlock -- the Table 2 winner: fail close() calls that
//       happen within a configurable distance of the last mutex unlock,
//       targeting double-unlock cleanup bugs.

#ifndef LFI_CORE_CUSTOM_TRIGGERS_H_
#define LFI_CORE_CUSTOM_TRIGGERS_H_

#include <cstddef>
#include <cstdint>

#include "core/trigger.h"

namespace lfi {

DECLARE_TRIGGER(ReadPipe1K4KwithMutex) {
 public:
  bool Eval(VirtualLibc* libc, const std::string& lib_func_name, const ArgSpan& args) override;

 private:
  int lock_count_ = 0;
};

DECLARE_TRIGGER(ReadPipe) {
 public:
  void Init(const XmlNode* init_data) override;
  bool Eval(VirtualLibc* libc, const std::string& lib_func_name, const ArgSpan& args) override;

 private:
  uint64_t low_ = 1024;
  uint64_t high_ = 4096;
};

DECLARE_TRIGGER(WithMutex) {
 public:
  bool Eval(VirtualLibc* libc, const std::string& lib_func_name, const ArgSpan& args) override;

 private:
  int lock_count_ = 0;
};

DECLARE_TRIGGER(CloseAfterMutexUnlock) {
 public:
  void Init(const XmlNode* init_data) override;
  bool Eval(VirtualLibc* libc, const std::string& lib_func_name, const ArgSpan& args) override;

 private:
  // Maximum number of intercepted calls between the unlock and the close
  // (the paper's "distance in lines of code" measured at the library
  // boundary). The bug reproduces with distance 2.
  uint64_t max_distance_ = 2;
  uint64_t calls_since_unlock_ = UINT64_MAX;
};

// §7.4 Apache trigger 1: fires when the intercepted call's first argument is
// a file descriptor referring to a socket (checked via fstat, the analogue of
// the apr_stat probe).
DECLARE_TRIGGER(FdIsSocket) {
 public:
  bool Eval(VirtualLibc* libc, const std::string& lib_func_name, const ArgSpan& args) override;
};

// §7.4 MySQL trigger 1 generalized: fires when argument <index> equals
// <value> (e.g. fcntl's cmd == F_GETLK).
DECLARE_TRIGGER(ArgValue) {
 public:
  void Init(const XmlNode* init_data) override;
  bool Eval(VirtualLibc* libc, const std::string& lib_func_name, const ArgSpan& args) override;

 private:
  size_t index_ = 0;
  Word value_ = 0;
};

void EnsureCustomTriggersRegistered();

}  // namespace lfi

#endif  // LFI_CORE_CUSTOM_TRIGGERS_H_
