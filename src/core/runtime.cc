#include "core/runtime.h"

#include "util/string_util.h"
#include "vlib/virtual_libc.h"

namespace lfi {

Runtime::Runtime(const Scenario& scenario, Options options) : options_(options) {
  std::unordered_map<std::string, TriggerInstance*> by_id;
  for (const TriggerDecl& decl : scenario.triggers()) {
    auto instance = std::make_unique<TriggerInstance>();
    instance->decl = decl;
    instance->ordinal = instances_.size();
    instance->trigger = TriggerRegistry::Instance().Create(decl.class_name);
    if (instance->trigger == nullptr) {
      error_ += "unknown trigger class '" + decl.class_name + "'; ";
    }
    by_id[decl.id] = instance.get();
    instances_.push_back(std::move(instance));
  }
  for (const FunctionAssoc& spec : scenario.functions()) {
    Assoc assoc;
    assoc.spec = spec;
    for (const TriggerRef& ref : spec.triggers) {
      auto it = by_id.find(ref.ref);
      if (it == by_id.end()) {
        error_ += "unresolved trigger ref '" + ref.ref + "'; ";
        continue;
      }
      assoc.triggers.push_back(it->second);
      assoc.negate.push_back(ref.negate);
    }
    by_function_[spec.function].push_back(assocs_.size());
    assocs_.push_back(std::move(assoc));
  }
}

Runtime::~Runtime() = default;

uint64_t Runtime::call_count(const std::string& function) const {
  auto it = call_counts_.find(function);
  return it == call_counts_.end() ? 0 : it->second;
}

bool Runtime::EvalConjunction(Assoc& assoc, VirtualLibc* libc, const std::string& function,
                              const ArgVec& args, std::string* fired_ids) {
  bool verdict = true;
  for (size_t i = 0; i < assoc.triggers.size(); ++i) {
    TriggerInstance* instance = assoc.triggers[i];
    if (instance->trigger == nullptr) {
      return false;  // unknown class: conjunction cannot fire
    }
    if (!instance->initialized) {
      // Lazy initialization: first evaluation, not program startup (§4.3).
      instance->trigger->Init(instance->decl.args.get());
      if (options_.seed != 0) {
        // Golden-ratio stride decorrelates the per-instance streams; the
        // trigger's own Rng scrambles the raw value again.
        instance->trigger->Reseed(options_.seed +
                                  0x9e3779b97f4a7c15ull * (instance->ordinal + 1));
      }
      instance->initialized = true;
    }
    ++trigger_evaluations_;
    bool vote = instance->trigger->Eval(libc, function, args);
    if (assoc.negate[i]) {
      vote = !vote;
    }
    if (vote) {
      if (!fired_ids->empty()) {
        *fired_ids += ",";
      }
      *fired_ids += instance->decl.id;
    } else {
      verdict = false;
      if (!options_.disable_short_circuit) {
        return false;  // short-circuit: skip the remaining triggers
      }
    }
  }
  return verdict && !assoc.triggers.empty();
}

InjectionDecision Runtime::OnCall(VirtualLibc* libc, std::string_view function,
                                  const ArgVec& args) {
  InjectionDecision decision;
  std::string fn(function);

  const std::vector<size_t>* indices = nullptr;
  if (options_.linear_lookup) {
    // Ablation path: scan every association for a name match.
    static thread_local std::vector<size_t> scratch;
    scratch.clear();
    for (size_t i = 0; i < assocs_.size(); ++i) {
      if (assocs_[i].spec.function == fn) {
        scratch.push_back(i);
      }
    }
    if (scratch.empty()) {
      return decision;
    }
    indices = &scratch;
  } else {
    auto it = by_function_.find(fn);
    if (it == by_function_.end()) {
      return decision;  // not an intercepted function
    }
    indices = &it->second;
  }

  ++interceptions_;
  uint64_t call_number = ++call_counts_[fn];

  // Associations with the same function name form a disjunction: the first
  // conjunction that fires decides the injection.
  for (size_t index : *indices) {
    Assoc& assoc = assocs_[index];
    std::string fired_ids;
    if (!EvalConjunction(assoc, libc, fn, args, &fired_ids)) {
      continue;
    }
    if (assoc.spec.unused) {
      continue;  // observation-only association: triggers saw the call
    }
    if (!armed_) {
      continue;  // measurement mode: evaluate triggers but never inject
    }
    ++injections_;
    InjectionRecord record;
    record.sequence = ++sequence_;
    record.function = fn;
    record.retval = assoc.spec.retval;
    record.errno_value = assoc.spec.errno_value;
    record.trigger_ids = fired_ids;
    record.call_number = call_number;
    record.stack = libc->stack().frames();
    record.process = libc->process_name();
    log_.Record(std::move(record));

    decision.inject = true;
    decision.retval = assoc.spec.retval;
    decision.errno_value = assoc.spec.errno_value;
    return decision;
  }
  return decision;
}

}  // namespace lfi
