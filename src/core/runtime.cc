#include "core/runtime.h"

#include <atomic>

#include "util/string_util.h"
#include "vlib/virtual_libc.h"

namespace lfi {

namespace {
// Process-wide ablation defaults (SetLookupModeDefaults). Read once per
// Runtime construction, never on the per-call path.
std::atomic<bool> g_default_linear_lookup{false};
std::atomic<bool> g_default_string_keyed_reference{false};
}  // namespace

void Runtime::SetLookupModeDefaults(bool linear_lookup, bool string_keyed_reference) {
  g_default_linear_lookup.store(linear_lookup, std::memory_order_relaxed);
  g_default_string_keyed_reference.store(string_keyed_reference, std::memory_order_relaxed);
}

Runtime::Runtime(const Scenario& scenario, Options options) : options_(options) {
  options_.linear_lookup |= g_default_linear_lookup.load(std::memory_order_relaxed);
  options_.string_keyed_reference |=
      g_default_string_keyed_reference.load(std::memory_order_relaxed);

  std::unordered_map<std::string, TriggerInstance*> by_id;
  size_t longest_conjunction = 0;
  for (const TriggerDecl& decl : scenario.triggers()) {
    auto instance = std::make_unique<TriggerInstance>();
    instance->decl = decl;
    instance->ordinal = instances_.size();
    instance->trigger = TriggerRegistry::Instance().Create(decl.class_name);
    if (instance->trigger == nullptr) {
      error_ += "unknown trigger class '" + decl.class_name + "'; ";
    }
    by_id[decl.id] = instance.get();
    instances_.push_back(std::move(instance));
  }
  for (const FunctionAssoc& spec : scenario.functions()) {
    Assoc assoc;
    assoc.spec = spec;
    assoc.function_id = InternFunction(spec.function);
    for (const TriggerRef& ref : spec.triggers) {
      auto it = by_id.find(ref.ref);
      if (it == by_id.end()) {
        error_ += "unresolved trigger ref '" + ref.ref + "'; ";
        continue;
      }
      assoc.triggers.push_back(it->second);
      assoc.negate.push_back(ref.negate);
    }
    longest_conjunction = std::max(longest_conjunction, assoc.triggers.size());
    if (assoc.function_id >= by_function_.size()) {
      by_function_.resize(assoc.function_id + 1);
    }
    by_function_[assoc.function_id].push_back(assocs_.size());
    if (options_.string_keyed_reference) {
      ref_by_function_[spec.function].push_back(assocs_.size());
    }
    assocs_.push_back(std::move(assoc));
  }
  call_counts_.resize(by_function_.size(), 0);
  fired_scratch_.reserve(longest_conjunction);
}

Runtime::~Runtime() = default;

uint64_t Runtime::call_count(std::string_view function) const {
  if (options_.string_keyed_reference) {
    auto it = ref_call_counts_.find(std::string(function));
    return it == ref_call_counts_.end() ? 0 : it->second;
  }
  auto id = SymbolTable::Functions().Find(function);
  if (!id || *id >= call_counts_.size()) {
    return 0;
  }
  return call_counts_[*id];
}

bool Runtime::EvalConjunction(Assoc& assoc, VirtualLibc* libc, const std::string& function,
                              const ArgSpan& args) {
  bool verdict = true;
  fired_scratch_.clear();
  for (size_t i = 0; i < assoc.triggers.size(); ++i) {
    TriggerInstance* instance = assoc.triggers[i];
    if (instance->trigger == nullptr) {
      return false;  // unknown class: conjunction cannot fire
    }
    if (!instance->initialized) {
      // Lazy initialization: first evaluation, not program startup (§4.3).
      instance->trigger->Init(instance->decl.args.get());
      if (options_.seed != 0) {
        // Golden-ratio stride decorrelates the per-instance streams; the
        // trigger's own Rng scrambles the raw value again.
        instance->trigger->Reseed(options_.seed +
                                  0x9e3779b97f4a7c15ull * (instance->ordinal + 1));
      }
      instance->initialized = true;
    }
    ++trigger_evaluations_;
    bool vote = instance->trigger->Eval(libc, function, args);
    if (assoc.negate[i]) {
      vote = !vote;
    }
    if (vote) {
      fired_scratch_.push_back(instance);
    } else {
      verdict = false;
      if (!options_.disable_short_circuit) {
        return false;  // short-circuit: skip the remaining triggers
      }
    }
  }
  return verdict && !assoc.triggers.empty();
}

InjectionDecision Runtime::Dispatch(VirtualLibc* libc, const std::string& function,
                                    const ArgSpan& args, const std::vector<size_t>& indices,
                                    uint64_t call_number) {
  InjectionDecision decision;
  // Associations with the same function name form a disjunction: the first
  // conjunction that fires decides the injection.
  for (size_t index : indices) {
    Assoc& assoc = assocs_[index];
    if (!EvalConjunction(assoc, libc, function, args)) {
      continue;
    }
    if (assoc.spec.unused) {
      continue;  // observation-only association: triggers saw the call
    }
    if (!armed_) {
      continue;  // measurement mode: evaluate triggers but never inject
    }
    ++injections_;
    // Only now -- on an actual injection, the rare case -- does the record
    // pay for strings and the stack snapshot.
    std::vector<std::string> fired_ids;
    fired_ids.reserve(fired_scratch_.size());
    for (const TriggerInstance* fired : fired_scratch_) {
      fired_ids.push_back(fired->decl.id);
    }
    InjectionRecord record;
    record.sequence = ++sequence_;
    record.function = function;
    record.retval = assoc.spec.retval;
    record.errno_value = assoc.spec.errno_value;
    record.trigger_ids = std::move(fired_ids);
    record.call_number = call_number;
    record.stack = libc->stack().frames();
    record.process = libc->process_name();
    log_.Record(std::move(record));

    decision.inject = true;
    decision.retval = assoc.spec.retval;
    decision.errno_value = assoc.spec.errno_value;
    return decision;
  }
  return decision;
}

InjectionDecision Runtime::OnCall(VirtualLibc* libc, FunctionId function,
                                  const ArgSpan& args) {
  if (options_.string_keyed_reference) {
    // Reference ablation: the seed's exact per-call pattern -- materialize
    // the name, heap-allocate the argument vector, and probe two
    // string-keyed hash maps -- so bench_interpose_overhead can measure the
    // before/after of interning on one binary.
    std::string fn(FunctionName(function));
    ArgVec heap_args(args.begin(), args.end());
    auto it = ref_by_function_.find(fn);
    if (it == ref_by_function_.end()) {
      return InjectionDecision{};  // not an intercepted function
    }
    ++interceptions_;
    uint64_t call_number = ++ref_call_counts_[fn];
    return Dispatch(libc, fn, ArgSpan(heap_args), it->second, call_number);
  }

  InjectionDecision decision;
  const std::vector<size_t>* indices = nullptr;
  if (options_.linear_lookup) {
    // Ablation path: scan every association for an id match.
    static thread_local std::vector<size_t> scratch;
    scratch.clear();
    for (size_t i = 0; i < assocs_.size(); ++i) {
      if (assocs_[i].function_id == function) {
        scratch.push_back(i);
      }
    }
    if (scratch.empty()) {
      return decision;
    }
    indices = &scratch;
  } else {
    if (function >= by_function_.size() || by_function_[function].empty()) {
      return decision;  // not an intercepted function: one bounds check
    }
    indices = &by_function_[function];
  }

  ++interceptions_;
  // Any id that reached here matched an association, so it is < the
  // construction-time call_counts_ size: no growth on the hot path.
  uint64_t call_number = ++call_counts_[function];
  return Dispatch(libc, FunctionName(function), args, *indices, call_number);
}

}  // namespace lfi
