// The binary extent encoding of the campaign journal.
//
// XML journals (core/journal.h) parse the whole file to answer anything and
// spend most of their bytes re-spelling coverage block names; million-record
// campaigns need better. This encoding borrows the extent idea from the
// DataSeries structured-data format (Anderson et al., HP Labs; see
// docs/journal-format.md for the inline citation and the full byte-level
// spec): records are grouped into *extents* -- length-prefixed, CRC-32
// checked, optionally LZ-compressed blocks of up to kRecordsPerExtent
// records -- and a footer index written at Finalize() records every
// extent's byte offset, record count, and stream-index range, so readers
// seek straight to the extent they want instead of parsing the file.
//
// Within an extent, strings are interned into a per-extent pool: the first
// occurrence is spelled out, every repeat is a 1-2 byte back-reference.
// Coverage maps -- the bulk of every record -- therefore encode as deltas
// against the extent's accumulated dictionary: the ~16 records of an extent
// cover mostly the same blocks, so each block name is paid for once per
// extent instead of once per record. The pool resets at every extent
// boundary, which keeps extents self-contained and random-accessible.
//
// Torn-tail recovery is O(1) with a valid footer (the footer only exists if
// Finalize() completed, and everything before it is sealed) and O(#extents)
// without one: walk the extent headers, stop at the first missing magic,
// short payload, or CRC mismatch, and truncate to that extent boundary.
// Killed campaigns lose at most the open (unsealed) extent -- up to
// kRecordsPerExtent records, which resume re-executes; the resumed run
// seals at the same global record boundaries as an uninterrupted one, so
// the finalized journal is still bit-identical.
//
// CampaignJournal wraps this for every caller; the standalone entry points
// exist for tests and tools that want extent-granular access.

#ifndef LFI_CORE_EXTENT_JOURNAL_H_
#define LFI_CORE_EXTENT_JOURNAL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/journal.h"
#include "util/binary_io.h"

namespace lfi {

// Format constants (docs/journal-format.md fixes these byte-for-byte).
inline constexpr std::string_view kExtentFileMagic = "LFIJ";
inline constexpr std::string_view kExtentMagic = "XTNT";
inline constexpr std::string_view kExtentFooterMagic = "XIDX";
inline constexpr std::string_view kExtentTrailerMagic = "LFIE";
// v2 added the per-record epoch varint (epoch-synchronized distributed
// campaigns); v1 files predate it and are rejected by the version check.
inline constexpr uint8_t kExtentFormatVersion = 2;
inline constexpr uint8_t kExtentCodecRaw = 0;
inline constexpr uint8_t kExtentCodecLz = 1;
inline constexpr size_t kExtentHeaderBytes = 40;
inline constexpr size_t kExtentTrailerBytes = 16;

// Everything a parse recovers from extent journal bytes.
struct ExtentJournalData {
  JournalMetadata meta;
  std::vector<JournalRecord> records;
  std::vector<ExtentInfo> extents;
  // Bytes through the last sealed extent (excluding any footer): the
  // truncation point appends continue from.
  uint64_t intact_bytes = 0;
  // True when the footer index was present and valid (a finalized journal);
  // false means the extents were recovered by scanning.
  bool footer_valid = false;
};

// Does the buffer start like an extent journal? (The file-format dispatch
// CampaignJournal::Parse uses; XML journals start with '<'.)
bool IsExtentJournal(std::string_view bytes);

// Parses a whole extent journal from memory. Uses the footer index when the
// trailer validates; otherwise scans extent headers and silently drops the
// torn tail (the kill-mid-write artifact). Fails on bad header magic,
// version mismatches, checksum failures behind a valid footer, and
// undecodable sealed extents.
std::optional<ExtentJournalData> ParseExtentJournal(std::string_view bytes,
                                                    std::string* error = nullptr);

// Decodes one extent's records given the file bytes and its index entry --
// the random-access path the footer index exists for. Verifies the extent
// header and payload CRC before decoding.
bool DecodeExtentRecords(std::string_view file_bytes, const ExtentInfo& extent,
                         std::vector<JournalRecord>* out, std::string* error = nullptr);

// The append-side writer. CampaignJournal owns one per writable extent
// journal; Create/OpenAppend/Append/Finalize mirror its lifecycle.
class ExtentJournalWriter {
 public:
  // Records per sealed extent. Also the durability quantum: a kill loses at
  // most this many trailing records (resume re-executes them).
  static constexpr size_t kRecordsPerExtent = 16;
  // Oversized records (giant coverage maps) seal early so the open-extent
  // buffer stays bounded.
  static constexpr size_t kMaxOpenPayload = size_t{1} << 20;

  ExtentJournalWriter() = default;
  ~ExtentJournalWriter();  // best-effort Finalize when still open
  ExtentJournalWriter(const ExtentJournalWriter&) = delete;
  ExtentJournalWriter& operator=(const ExtentJournalWriter&) = delete;

  // Creates (truncating) `path` and writes the file header.
  bool Create(const std::string& path, const JournalMetadata& meta, std::string* error);

  // Reopens a parsed journal for appending: truncates everything past the
  // sealed extents (the torn tail and any footer) and continues the extent
  // stream. `loaded` is the parse of the same file.
  bool OpenAppend(const std::string& path, const ExtentJournalData& loaded,
                  std::string* error);

  // Buffers one record into the open extent, sealing (and flushing) the
  // extent when it reaches kRecordsPerExtent records or kMaxOpenPayload
  // encoded bytes.
  bool Append(const JournalRecord& record, std::string* error);

  // Seals the open extent, writes the footer index and trailer, flushes,
  // and closes. The writer is done afterwards.
  bool Finalize(std::string* error);

  bool open() const { return out_ != nullptr; }

 private:
  bool SealExtent(std::string* error);
  bool WriteRaw(std::string_view bytes, std::string* error);

  struct FileCloser {
    void operator()(std::FILE* f) const { std::fclose(f); }
  };
  std::unique_ptr<std::FILE, FileCloser> out_;
  std::string path_;
  uint64_t offset_ = 0;             // current end-of-file byte offset
  std::vector<ExtentInfo> extents_;  // sealed so far; becomes the footer index

  // Open (unsealed) extent state. The string pool resets with it.
  ByteWriter payload_;
  std::unordered_map<std::string, uint64_t> pool_ids_;
  uint32_t open_records_ = 0;
  uint64_t open_first_ = ExtentInfo::kNoIndex;
  uint64_t open_last_ = ExtentInfo::kNoIndex;
};

}  // namespace lfi

#endif  // LFI_CORE_EXTENT_JOURNAL_H_
