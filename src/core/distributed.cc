#include "core/distributed.h"

namespace lfi {

bool RandomLossController::ShouldInject(const std::string& node, const std::string& function,
                                        const ArgSpan& args) {
  (void)node;
  (void)function;
  (void)args;
  ++consultations_;
  return rng_.Chance(probability_);
}

bool BlackoutController::ShouldInject(const std::string& node, const std::string& function,
                                      const ArgSpan& args) {
  (void)function;
  (void)args;
  ++consultations_;
  return node == target_;
}

bool RotatingBlackoutController::ShouldInject(const std::string& node,
                                              const std::string& function, const ArgSpan& args) {
  (void)function;
  (void)args;
  ++consultations_;
  if (nodes_.empty()) {
    return false;
  }
  if (node != nodes_[current_]) {
    return false;
  }
  if (++injected_in_burst_ >= burst_) {
    injected_in_burst_ = 0;
    current_ = (current_ + 1) % nodes_.size();
  }
  return true;
}

}  // namespace lfi
