// Feedback-driven scenario exploration (§5/§7.1, grown into a loop).
//
// The paper generates injection scenarios once from the call-site analysis
// and runs the list. A ScenarioSource generalizes that: it yields
// CampaignJobs on demand and receives RunFeedback -- newly covered recovery
// blocks (CoverageMap::NewlyCoveredVersus), the injection-log fingerprint,
// bug/no-bug -- after every merged batch, so what ran can steer what runs
// next. Three strategies ship:
//
//   ExhaustiveSource      the paper's §7.1 behaviour: a prebuilt job list
//                         (typically AnalyzerJobs), streamed in order.
//   RandomSweepSource     seeded random sweep over the fault space: pick a
//                         profiled function, an error mode, and a call
//                         ordinal; deduplicate; repeat up to the budget.
//   CoverageGuidedSource  the feedback loop. Unexplored call sites first
//                         (unchecked > partially checked > checked, round-
//                         robin across enclosing functions for diversity);
//                         scenarios whose runs covered new blocks or exposed
//                         a new bug are mutated -- other (retval, errno)
//                         modes from the profile, later call ordinals at the
//                         same site -- while runs whose injection
//                         fingerprint was already observed are treated as
//                         equivalent and not expanded.
//
// Every strategy is deterministic given its seed: the engine's fixed batch
// size (not the worker count) decides when feedback arrives, so the same
// seed + strategy yields a bit-identical bug list at any parallelism.

#ifndef LFI_CORE_EXPLORATION_H_
#define LFI_CORE_EXPLORATION_H_

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/callsite_analyzer.h"
#include "core/campaign_engine.h"
#include "profiler/fault_profile.h"
#include "util/rng.h"

namespace lfi {

// What the engine observed running one job, delivered to the source at the
// deterministic job-order merge point.
struct RunFeedback {
  bool new_bug = false;     // the job reported a crash site not seen before
  size_t injections = 0;    // faults actually injected during the run
  std::string fingerprint;  // JobResult::fingerprint; "" = nothing injected
  // Coverage blocks this run covered for the first time across the whole
  // streamed campaign (CoverageMap::NewlyCoveredVersus the cumulative map).
  std::vector<std::string> new_blocks;

  bool operator==(const RunFeedback& o) const = default;

  // XML round trip (<feedback> with one <newblock> per new block), used by
  // campaign journal records. On resume the engine recomputes feedback from
  // the replayed coverage deltas; the serialized copy exists so a journal is
  // self-describing for offline mining.
  void AppendXml(XmlNode* parent) const;
  std::string ToXml() const;
  static std::optional<RunFeedback> FromNode(const XmlNode& node,
                                             std::string* error = nullptr);
  static std::optional<RunFeedback> Parse(const std::string& xml,
                                          std::string* error = nullptr);
};

// A pull-based producer of campaign jobs. NextBatch() returning an empty
// vector ends the campaign. The engine calls OnFeedback() once per merged
// job, in job order, after the job's batch completed -- a source never
// observes feedback for a batch it is still producing.
class ScenarioSource {
 public:
  virtual ~ScenarioSource() = default;

  // Up to `max_jobs` next jobs (fewer near budget exhaustion; empty = done).
  virtual std::vector<CampaignJob> NextBatch(size_t max_jobs) = 0;

  // Default: feedback is ignored (open-loop strategies).
  virtual void OnFeedback(const CampaignJob& job, const RunFeedback& feedback);

  // False (the default) declares the source open-loop: its schedule never
  // depends on feedback, so the engine may drain it up front and run
  // everything in one barrier-free pass. Feedback is still delivered.
  virtual bool needs_feedback() const { return false; }
};

// Streams a prebuilt job list in order: the paper's one-shot generation,
// expressed as a source. `budget` > 0 truncates to the first `budget` jobs.
class ExhaustiveSource : public ScenarioSource {
 public:
  explicit ExhaustiveSource(std::vector<CampaignJob> jobs, size_t budget = 0);
  std::vector<CampaignJob> NextBatch(size_t max_jobs) override;

 private:
  std::vector<CampaignJob> jobs_;
  size_t next_ = 0;
};

// Seeded random sweep over (function, error mode, call ordinal): the
// "random injection" phase of §7.1, budgeted and reproducible. Scenarios use
// the call-count trigger, so each one is a deterministic single fault.
class RandomSweepSource : public ScenarioSource {
 public:
  // `functions` is the sample space (typically the distinct functions the
  // analyzer found call sites for); unknown names are skipped. The profile
  // must outlive the source.
  RandomSweepSource(const FaultProfile& profile, std::vector<std::string> functions,
                    size_t budget, uint64_t seed);
  std::vector<CampaignJob> NextBatch(size_t max_jobs) override;

 private:
  const FaultProfile* profile_;
  std::vector<std::string> functions_;
  size_t budget_;
  size_t emitted_ = 0;
  Rng rng_;
  std::set<std::string> seen_keys_;  // (function, retval, errno, count) dedup
};

// Deals an open-loop source's deterministic job stream across shards for
// multi-process campaigns: drains `inner` up front, keeps only the jobs whose
// scenario fingerprint (ScenarioShard) lands on `shard_index`, and stamps
// every kept job's CampaignJob::stream_index with its position in the
// unsharded stream (a job the inner source already stamped — e.g. an
// epoch-mode CoverageGuidedSource, whose stream positions continue across
// epochs — keeps its stamp). Content-keyed dealing means N processes seeded
// with the same spec compute the same partition with no coordinator, and the
// recorded stream positions let MergeJournals interleave the per-shard
// journals back into exact single-process merge order.
//
// Feedback-driven sources (needs_feedback()) cannot be dealt this way --
// their schedule depends on results the other shards hold -- so the
// constructor rejects them (std::invalid_argument), as it does out-of-range
// shard coordinates.
class ShardSource : public ScenarioSource {
 public:
  ShardSource(ScenarioSource& inner, size_t shard_index, size_t shard_count);

  std::vector<CampaignJob> NextBatch(size_t max_jobs) override;

  size_t size() const { return jobs_.size(); }
  // How long the unsharded stream was (every shard sees the same value).
  size_t stream_size() const { return stream_size_; }

 private:
  std::vector<CampaignJob> jobs_;
  size_t stream_size_ = 0;
  size_t next_ = 0;
};

// The complete mutable state of a CoverageGuidedSource at a quiescent point
// (no feedback outstanding): the pending explore/exploit queues, the scenario
// and fingerprint dedup sets, and how many jobs have been scheduled so far.
// Plans reference call-site reports by index, which is stable across
// processes because the analyzer (and the report concatenation order the
// campaign driver uses) is deterministic for a given binary + profiles.
//
// This is the unit of frontier hand-off in epoch-synchronized distributed
// exploration: the orchestrator exports its master source's state at an
// epoch boundary, each shard child imports it and re-derives the epoch's job
// stream open-loop, and a source rebuilt this way is indistinguishable from
// one that absorbed the merged feedback prefix live (ImportFrontier after
// ExportFrontier round-trips exactly; operator== is the test hook).
struct FrontierState {
  // Mirrors CoverageGuidedSource's internal plan: a site plus the
  // (retval, errno, call-count) variant to inject there. call_count == 0 =
  // every call at the site.
  struct Plan {
    size_t report_index = 0;
    int64_t retval = 0;
    int errno_value = 0;
    uint64_t call_count = 0;

    bool operator==(const Plan& o) const = default;
  };

  std::vector<Plan> explore;                  // unexplored sites, in order
  std::vector<Plan> exploit;                  // pending mutations, in order
  std::vector<std::string> seen_keys;         // scenario dedup (sorted)
  std::vector<std::string> seen_fingerprints; // equivalent-run dedup (sorted)
  size_t scheduled = 0;                       // jobs scheduled so far

  bool operator==(const FrontierState& o) const = default;

  // XML round trip (<frontier>), the wire format the orchestrator hands to
  // epoch shard children.
  void AppendXml(XmlNode* parent) const;
  std::string ToXml() const;
  static std::optional<FrontierState> FromNode(const XmlNode& node,
                                               std::string* error = nullptr);
  static std::optional<FrontierState> Parse(const std::string& xml,
                                            std::string* error = nullptr);
};

// The coverage-guided feedback loop over a binary's analyzed call sites.
class CoverageGuidedSource : public ScenarioSource {
 public:
  struct Options {
    size_t budget = 64;  // total scenarios to schedule
    uint64_t seed = 1;   // per-job Runtime seeds derive from this
    // Also explore fully checked sites once the unchecked/partial frontier
    // drains. Checked calls are exactly where buggy *recovery* hides (the
    // MySQL close and BIND dst bugs), and injecting there is how Table 3
    // reaches recovery blocks no static classification flags.
    bool include_checked_sites = true;
    int max_mutations_per_run = 3;  // mutations enqueued per fruitful run
    uint64_t max_call_count = 3;    // call-ordinal mutations try 2..this
    // Epoch mode (one shard child's slice of a distributed campaign): the
    // source runs open-loop -- needs_feedback() turns false so ShardSource
    // accepts it and the engine drains it in one pass -- and stops
    // scheduling at `schedule_limit` total jobs (0 = no limit), i.e. at the
    // end of the epoch whose frontier was imported.
    bool open_loop = false;
    size_t schedule_limit = 0;
  };

  CoverageGuidedSource(std::vector<CallSiteReport> reports, const FaultProfile& profile,
                       Options options);

  std::vector<CampaignJob> NextBatch(size_t max_jobs) override;
  void OnFeedback(const CampaignJob& job, const RunFeedback& feedback) override;
  bool needs_feedback() const override { return !options_.open_loop; }

  size_t scheduled() const { return scheduled_; }

  // Snapshots / replaces the source's mutable state. Export requires
  // quiescence -- every scheduled job's feedback delivered (or the source
  // running open-loop, where nothing is ever in flight) -- and throws
  // std::logic_error otherwise: an in-flight plan is not representable and
  // silently dropping it would fork the schedule.
  FrontierState ExportFrontier() const;
  void ImportFrontier(const FrontierState& state);

 private:
  using Plan = FrontierState::Plan;

  std::string PlanKey(const Plan& plan) const;
  bool Schedule(const Plan& plan, std::vector<CampaignJob>* out);
  void EnqueueMutations(const Plan& plan);

  std::vector<CallSiteReport> reports_;
  const FaultProfile* profile_;
  Options options_;
  std::deque<Plan> explore_;  // unexplored call sites, priority-ordered
  std::deque<Plan> exploit_;  // mutations of fruitful scenarios
  std::map<std::string, Plan> in_flight_;    // job label -> plan awaiting feedback
  // Scenario dedup. A key is claimed when its plan is scheduled OR enqueued
  // as a mutation, so pending-but-unscheduled mutations never consume a
  // later fruitful run's mutation slots twice.
  std::set<std::string> seen_keys_;
  std::set<std::string> seen_fingerprints_;  // equivalent-run dedup
  size_t scheduled_ = 0;
};

}  // namespace lfi

#endif  // LFI_CORE_EXPLORATION_H_
