#include "core/custom_triggers.h"

#include "util/string_util.h"
#include "vlib/virtual_libc.h"

namespace lfi {

// --- ReadPipe1K4KwithMutex (§3.1, verbatim logic) ----------------------------

bool ReadPipe1K4KwithMutex::Eval(VirtualLibc* libc, const std::string& lib_func_name,
                                 const ArgSpan& args) {
  if (lib_func_name == "pthread_mutex_lock") {
    ++lock_count_;
  } else if (lib_func_name == "pthread_mutex_unlock") {
    --lock_count_;
  } else if (lib_func_name == "read") {
    if (lock_count_ > 0 && args.size() >= 3) {
      int fd = static_cast<int>(args[0]);
      uint64_t size = args[2];
      VStat st;
      // Trigger-issued call: bypasses interception, like dlsym(RTLD_NEXT).
      if (libc->Fstat(fd, &st) != 0) {
        return false;
      }
      return st.is_fifo && size >= 1024 && size <= 4096;
    }
  }
  return false;
}

// --- ReadPipe (parametrized, §4.1) --------------------------------------------

void ReadPipe::Init(const XmlNode* init_data) {
  if (init_data == nullptr) {
    return;
  }
  if (auto v = ParseInt(init_data->ChildText("low"))) {
    low_ = static_cast<uint64_t>(*v);
  }
  if (auto v = ParseInt(init_data->ChildText("high"))) {
    high_ = static_cast<uint64_t>(*v);
  }
}

bool ReadPipe::Eval(VirtualLibc* libc, const std::string& lib_func_name, const ArgSpan& args) {
  if (lib_func_name != "read" || args.size() < 3) {
    return false;
  }
  int fd = static_cast<int>(args[0]);
  uint64_t size = args[2];
  VStat st;
  if (libc->Fstat(fd, &st) != 0) {
    return false;
  }
  return st.is_fifo && size >= low_ && size <= high_;
}

// --- WithMutex (§4.2) -----------------------------------------------------------

bool WithMutex::Eval(VirtualLibc* libc, const std::string& lib_func_name, const ArgSpan& args) {
  (void)libc;
  (void)args;
  if (lib_func_name == "pthread_mutex_lock") {
    ++lock_count_;
    return false;
  }
  if (lib_func_name == "pthread_mutex_unlock") {
    --lock_count_;
    return false;
  }
  return lock_count_ > 0;
}

// --- CloseAfterMutexUnlock (Table 2 scenario 3) -----------------------------------

void CloseAfterMutexUnlock::Init(const XmlNode* init_data) {
  if (init_data == nullptr) {
    return;
  }
  if (auto v = ParseInt(init_data->ChildText("distance"))) {
    max_distance_ = static_cast<uint64_t>(*v);
  }
}

bool CloseAfterMutexUnlock::Eval(VirtualLibc* libc, const std::string& lib_func_name,
                                 const ArgSpan& args) {
  (void)libc;
  (void)args;
  if (lib_func_name == "pthread_mutex_unlock") {
    calls_since_unlock_ = 0;
    return false;
  }
  if (calls_since_unlock_ != UINT64_MAX) {
    ++calls_since_unlock_;
  }
  if (lib_func_name == "close") {
    return calls_since_unlock_ <= max_distance_;
  }
  return false;
}

// --- FdIsSocket (§7.4 Apache trigger 1) ---------------------------------------

bool FdIsSocket::Eval(VirtualLibc* libc, const std::string& lib_func_name, const ArgSpan& args) {
  (void)lib_func_name;
  if (args.empty()) {
    return false;
  }
  VStat st;
  if (libc->AprStat(&st, static_cast<int>(args[0])) != 0) {
    return false;
  }
  return st.is_socket;
}

// --- ArgValue (§7.4 MySQL trigger 1) ---------------------------------------------

void ArgValue::Init(const XmlNode* init_data) {
  if (init_data == nullptr) {
    return;
  }
  if (auto v = ParseInt(init_data->ChildText("index"))) {
    index_ = static_cast<size_t>(*v);
  }
  if (auto v = ParseInt(init_data->ChildText("value"))) {
    value_ = static_cast<Word>(*v);
  }
}

bool ArgValue::Eval(VirtualLibc* libc, const std::string& lib_func_name, const ArgSpan& args) {
  (void)libc;
  (void)lib_func_name;
  return index_ < args.size() && args[index_] == value_;
}

LFI_REGISTER_TRIGGER(ReadPipe1K4KwithMutex);
LFI_REGISTER_TRIGGER(ReadPipe);
LFI_REGISTER_TRIGGER(WithMutex);
LFI_REGISTER_TRIGGER(CloseAfterMutexUnlock);
LFI_REGISTER_TRIGGER(FdIsSocket);
LFI_REGISTER_TRIGGER(ArgValue);

void EnsureCustomTriggersRegistered() {}

}  // namespace lfi
