#include "core/journal.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <tuple>

#include "core/extent_journal.h"
#include "util/failpoint.h"
#include "util/string_util.h"

namespace lfi {
namespace {

// Seeds are full-range uint64 (MixSeed sets the top bit freely), which
// ParseInt's int64 range would reject; hex keeps the round trip exact.
std::string SeedToString(uint64_t seed) {
  return StrFormat("0x%llx", static_cast<unsigned long long>(seed));
}

uint64_t SeedFromString(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 0);
}

}  // namespace

// --- JournalRecord ----------------------------------------------------------

void JournalRecord::AppendXml(XmlNode* parent) const {
  XmlNode* node = parent->AddChild("record");
  node->SetAttr("label", label);
  node->SetAttr("seed", SeedToString(seed));
  if (stream_index != kNoStreamIndex) {
    node->SetAttr("index", StrFormat("%zu", stream_index));
  }
  if (epoch != kNoEpoch) {
    node->SetAttr("epoch", StrFormat("%zu", epoch));
  }
  if (gated) {
    node->SetAttr("gated", "true");
  }
  scenario.AppendXml(node);
  if (!gated) {
    XmlNode* result_node = node->AddChild("result");
    if (!result.fingerprint.empty()) {
      result_node->SetAttr("fingerprint", result.fingerprint);
    }
    result_node->SetAttr("injections", StrFormat("%zu", result.injections));
    for (const FoundBug& bug : result.bugs) {
      bug.AppendXml(result_node);
    }
    result.log.AppendXml(result_node);
    result.coverage.AppendXml(result_node);
    feedback.AppendXml(node);
  }
}

std::string JournalRecord::ToXml() const { return ToXmlElement(*this); }

std::optional<JournalRecord> JournalRecord::FromNode(const XmlNode& node, std::string* error) {
  auto fail = [&](std::string message) -> std::optional<JournalRecord> {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return std::nullopt;
  };
  if (node.name() != "record") {
    return fail("journal record element must be <record>");
  }
  JournalRecord record;
  record.label = node.AttrOr("label", "");
  record.seed = SeedFromString(node.AttrOr("seed", "0"));
  if (auto index = node.IntAttr("index"); index.has_value() && *index >= 0) {
    record.stream_index = static_cast<size_t>(*index);
  }
  if (auto epoch = node.IntAttr("epoch"); epoch.has_value() && *epoch >= 0) {
    record.epoch = static_cast<size_t>(*epoch);
  }
  record.gated = node.AttrOr("gated", "false") == "true";
  const XmlNode* scenario_node = node.Child("scenario");
  if (scenario_node == nullptr) {
    return fail("journal record '" + record.label + "' is missing its <scenario>");
  }
  auto scenario = Scenario::FromNode(*scenario_node, error);
  if (!scenario) {
    return std::nullopt;
  }
  record.scenario = std::move(*scenario);
  if (record.gated) {
    return record;
  }
  const XmlNode* result_node = node.Child("result");
  if (result_node == nullptr) {
    return fail("journal record '" + record.label + "' is missing its <result>");
  }
  record.result.fingerprint = result_node->AttrOr("fingerprint", "");
  record.result.injections =
      static_cast<size_t>(result_node->IntAttr("injections").value_or(0));
  for (const XmlNode* bug_node : result_node->Children("bug")) {
    auto bug = FoundBug::FromNode(*bug_node, error);
    if (!bug) {
      return std::nullopt;
    }
    record.result.bugs.push_back(std::move(*bug));
  }
  if (const XmlNode* log_node = result_node->Child("log")) {
    auto log = InjectionLog::FromNode(*log_node, error);
    if (!log) {
      return std::nullopt;
    }
    record.result.log = std::move(*log);
  }
  if (const XmlNode* coverage_node = result_node->Child("coverage")) {
    auto coverage = CoverageMap::FromNode(*coverage_node, error);
    if (!coverage) {
      return std::nullopt;
    }
    record.result.coverage = std::move(*coverage);
  }
  if (const XmlNode* feedback_node = node.Child("feedback")) {
    auto feedback = RunFeedback::FromNode(*feedback_node, error);
    if (!feedback) {
      return std::nullopt;
    }
    record.feedback = std::move(*feedback);
  }
  return record;
}

// --- CampaignJournal --------------------------------------------------------

const char* JournalFormatName(JournalFormat format) {
  return format == JournalFormat::kXml ? "xml" : "extent";
}

std::optional<JournalFormat> ParseJournalFormat(const std::string& name) {
  if (name == "extent") {
    return JournalFormat::kExtent;
  }
  if (name == "xml") {
    return JournalFormat::kXml;
  }
  return std::nullopt;
}

CampaignJournal::CampaignJournal() = default;
CampaignJournal::CampaignJournal(CampaignJournal&&) = default;
CampaignJournal& CampaignJournal::operator=(CampaignJournal&&) = default;

CampaignJournal::~CampaignJournal() {
  if (extent_out_ != nullptr && extent_out_->open()) {
    extent_out_->Finalize(nullptr);
  }
}

bool CampaignJournal::writable() const {
  return out_ != nullptr || (extent_out_ != nullptr && extent_out_->open());
}

std::optional<CampaignJournal> CampaignJournal::Load(const std::string& path,
                                                     std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot open journal " + path;
    }
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return Parse(text.str(), error);
}

std::optional<CampaignJournal> CampaignJournal::Parse(std::string_view text,
                                                      std::string* error) {
  auto fail = [&](std::string message) -> std::optional<CampaignJournal> {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return std::nullopt;
  };

  // Encoding dispatch: extent journals declare themselves in their first
  // four bytes; anything else is treated as the XML stream.
  if (IsExtentJournal(text)) {
    auto data = ParseExtentJournal(text, error);
    if (!data) {
      return std::nullopt;
    }
    CampaignJournal journal;
    journal.format_ = JournalFormat::kExtent;
    journal.meta_ = std::move(data->meta);
    journal.records_ = std::move(data->records);
    journal.extents_ = std::move(data->extents);
    journal.intact_bytes_ = static_cast<size_t>(data->intact_bytes);
    journal.sealed_ = data->footer_valid;
    return journal;
  }

  // A killed writer leaves at most one torn record at the tail. Everything
  // through the last complete record (or, in a record-less journal, the
  // header) is intact, because records are flushed whole; drop the rest.
  // "</record>" cannot occur inside the kept content -- every attribute
  // value and text run is XmlEscape()d, so a literal '<' never survives
  // serialization.
  size_t end = text.rfind("</record>");
  if (end != std::string_view::npos) {
    end += std::string_view("</record>").size();
  } else if ((end = text.rfind("</journal>")) != std::string_view::npos) {
    end += std::string_view("</journal>").size();
  } else if ((end = text.find("/>")) != std::string_view::npos) {
    // Self-closing (meta-less) header. The FIRST "/>" is the header's own
    // terminator; searching from the back instead would latch onto a
    // self-closing element inside a torn first record (a killed empty shard
    // leaves exactly this shape) and keep unparseable garbage.
    end += std::string_view("/>").size();
  } else {
    return fail("not a campaign journal (no header)");
  }
  if (end < text.size() && text[end] == '\n') {
    ++end;  // keep the record's own trailing newline intact
  }

  // The file is a header element followed by record elements; wrap them in a
  // synthetic root so the single-document XML parser takes the whole stream.
  std::string wrapped = "<journal-file>\n";
  wrapped.append(text.substr(0, end));
  wrapped.append("\n</journal-file>\n");
  XmlError xml_error;
  auto doc = XmlParse(wrapped, &xml_error);
  if (!doc || doc->root() == nullptr) {
    return fail(StrFormat("journal parse error at line %d: %s", xml_error.line,
                          xml_error.message.c_str()));
  }

  CampaignJournal journal;
  journal.format_ = JournalFormat::kXml;
  const XmlNode* header = doc->root()->Child("journal");
  if (header == nullptr) {
    return fail("journal is missing its <journal> header");
  }
  int64_t version = header->IntAttr("version").value_or(0);
  if (version != kVersion) {
    return fail(StrFormat("unsupported journal version %lld (this build reads %d)",
                          static_cast<long long>(version), kVersion));
  }
  for (const XmlNode* meta : header->Children("meta")) {
    journal.meta_.emplace_back(meta->AttrOr("key", ""), meta->AttrOr("value", ""));
  }
  std::string record_error;
  for (const XmlNode* child : doc->root()->Children("record")) {
    auto record = JournalRecord::FromNode(*child, &record_error);
    if (!record) {
      return fail("journal record " + std::to_string(journal.records_.size()) + ": " +
                  record_error);
    }
    journal.records_.push_back(std::move(*record));
  }
  journal.intact_bytes_ = end;
  return journal;
}

bool CampaignJournal::Create(const std::string& path, JournalMetadata meta,
                             std::string* error, JournalFormat format) {
  format_ = format;
  meta_ = std::move(meta);
  if (format == JournalFormat::kExtent) {
    extent_out_ = std::make_unique<ExtentJournalWriter>();
    return extent_out_->Create(path, meta_, error);
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot create journal " + path;
    }
    return false;
  }
  out_.reset(f);
  XmlNode header("journal");
  header.SetAttr("version", StrFormat("%d", kVersion));
  for (const auto& [key, value] : meta_) {
    XmlNode* m = header.AddChild("meta");
    m->SetAttr("key", key);
    m->SetAttr("value", value);
  }
  std::string text = header.ToString();
  std::fwrite(text.data(), 1, text.size(), out_.get());
  std::fflush(out_.get());
  return true;
}

bool CampaignJournal::OpenAppend(const std::string& path, std::string* error) {
  if (format_ == JournalFormat::kExtent) {
    // The writer truncates the torn tail and any old footer itself; hand it
    // the sealed-extent state Load() recovered.
    ExtentJournalData loaded;
    loaded.extents = extents_;
    loaded.intact_bytes = intact_bytes_;
    extent_out_ = std::make_unique<ExtentJournalWriter>();
    return extent_out_->OpenAppend(path, loaded, error);
  }
  // Drop the torn tail a kill may have left: appending after garbage would
  // leave an unparseable interior. intact_bytes_ came from Load()'s
  // last-complete-record scan.
  if (intact_bytes_ != 0) {
    std::error_code ec;
    if (std::filesystem::file_size(path, ec) > intact_bytes_ && !ec) {
      std::filesystem::resize_file(path, intact_bytes_, ec);
      if (ec) {
        if (error != nullptr) {
          *error = "cannot truncate torn journal tail in " + path + ": " + ec.message();
        }
        return false;
      }
    }
  }
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot append to journal " + path;
    }
    return false;
  }
  out_.reset(f);
  return true;
}

bool CampaignJournal::Append(const JournalRecord& record) {
  if (FailpointFired("journal.append")) {
    return false;  // scripted I/O failure: the caller's disk-full path runs
  }
  if (extent_out_ != nullptr && extent_out_->open()) {
    return extent_out_->Append(record, nullptr);
  }
  if (out_ == nullptr) {
    return false;
  }
  std::string text = record.ToXml();
  bool ok = std::fwrite(text.data(), 1, text.size(), out_.get()) == text.size();
  // One flush per record: the contract is that a kill loses at most the
  // record being written, never an already-appended one.
  return std::fflush(out_.get()) == 0 && ok;
}

bool CampaignJournal::Finalize(std::string* error) {
  if (writable() && FailpointFired("journal.finalize")) {
    if (error != nullptr) {
      *error = "failpoint journal.finalize fired";
    }
    return false;
  }
  if (extent_out_ != nullptr && extent_out_->open()) {
    bool ok = extent_out_->Finalize(error);
    extent_out_.reset();
    return ok;
  }
  if (out_ != nullptr) {
    bool ok = std::fflush(out_.get()) == 0;
    out_.reset();
    if (!ok && error != nullptr) {
      *error = "journal flush failed: disk full or I/O error";
    }
    return ok;
  }
  return true;  // nothing open: finalizing a read-only journal is a no-op
}

// --- JournalSource ----------------------------------------------------------

JournalSource::JournalSource(const CampaignJournal& journal, Options options) {
  if (options.shard_count == 0 || options.shard_index >= options.shard_count) {
    throw std::invalid_argument("JournalSource: shard_index must be < shard_count");
  }
  // Deal in record order so shards partition the stream deterministically:
  // the union of all shards is exactly the journal's scenario sequence.
  size_t dealt = 0;
  for (const JournalRecord& record : journal.records()) {
    if (record.gated && !options.include_gated) {
      continue;
    }
    size_t slot = dealt++ % options.shard_count;
    if (slot != options.shard_index) {
      continue;
    }
    CampaignJob job;
    job.scenario = record.scenario;
    job.label = record.label;
    job.seed = record.seed;
    jobs_.push_back(std::move(job));
  }
}

std::vector<CampaignJob> JournalSource::NextBatch(size_t max_jobs) {
  std::vector<CampaignJob> out;
  while (next_ < jobs_.size() && out.size() < max_jobs) {
    out.push_back(jobs_[next_++]);
  }
  return out;
}

// --- MergeJournals ----------------------------------------------------------

namespace {

// Campaign identity: the header keys that must agree across merge inputs and
// survive into the output, in the order a fresh single-process journal
// writes them (so the merged header is byte-identical to that journal's).
const char* const kIdentityKeys[] = {"command",   "system", "strategy",
                                     "budget",    "seed",   "epoch-len",
                                     "exhaustive"};
// Per-shard keys: meaningful only for one shard's (or one epoch slice's)
// artifact, dropped on merge.
const char* const kShardKeys[] = {"shard", "shards", "epoch"};

bool IsShardKey(const std::string& key) {
  for (const char* shard_key : kShardKeys) {
    if (key == shard_key) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool MergeRecordsInto(CampaignJournal& output, const std::vector<CampaignJournal>& inputs,
                      MergeFoldState* fold, std::string* error,
                      std::vector<JournalRecord>* merged_records) {
  auto fail = [&](std::string message) {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return false;
  };
  if (!output.writable()) {
    return fail("merge output journal is not open for appending");
  }

  // The deterministic interleave: records sorted by their recorded global
  // stream index. Records without one (pre-sharding journals) fall back to
  // their input-local position; ties break by the input's shard header then
  // local position, so permuting the input list cannot change the output.
  struct Keyed {
    size_t stream_index;
    size_t shard_index;
    size_t local_index;
    bool recorded_index;  // stream_index came from the record, not the fallback
    const JournalRecord* record;
  };
  std::vector<Keyed> keyed;
  for (const CampaignJournal& journal : inputs) {
    size_t shard_index = static_cast<size_t>(-1);
    std::string shard_meta = journal.Meta("shard", "");
    if (!shard_meta.empty()) {
      shard_index = static_cast<size_t>(std::strtoull(shard_meta.c_str(), nullptr, 0));
    }
    const std::vector<JournalRecord>& records = journal.records();
    for (size_t r = 0; r < records.size(); ++r) {
      bool recorded = records[r].stream_index != JournalRecord::kNoStreamIndex;
      keyed.push_back({recorded ? records[r].stream_index : r, shard_index, r, recorded,
                       &records[r]});
    }
  }
  std::sort(keyed.begin(), keyed.end(), [](const Keyed& a, const Keyed& b) {
    return std::tie(a.stream_index, a.shard_index, a.local_index) <
           std::tie(b.stream_index, b.shard_index, b.local_index);
  });
  // Disjointness: a campaign's shards partition the stream, so two records
  // both *recorded* at one stream position mean overlapping inputs -- the
  // same shard listed twice, shards of different campaigns, or an
  // already-merged journal next to one of its shards. Appending the
  // duplicates would double-count results and write a journal no resume can
  // align with its regenerated stream. Fallback (position-derived) keys may
  // legitimately collide across pre-sharding inputs and only collide within
  // one input when the same journal is listed twice. Incremental merges also
  // reject records at stream positions the fold already consumed (an epoch
  // fed to the orchestrator twice).
  for (size_t i = 0; i < keyed.size(); ++i) {
    if (i > 0 && keyed[i].stream_index == keyed[i - 1].stream_index &&
        ((keyed[i].recorded_index && keyed[i - 1].recorded_index) ||
         keyed[i].shard_index == keyed[i - 1].shard_index)) {
      return fail(StrFormat("merge inputs overlap: two records claim stream index %zu "
                            "(same journal listed twice, or a merged journal mixed with "
                            "its own shards?)",
                            keyed[i].stream_index));
    }
    if (fold->records > 0 && keyed[i].stream_index < fold->next_stream_index) {
      return fail(StrFormat("merge inputs overlap already-merged records: stream index %zu "
                            "was consumed by an earlier incremental merge (next expected "
                            "index is %zu)",
                            keyed[i].stream_index, fold->next_stream_index));
    }
  }

  // The engine's merge fold, continued from `fold`: crash-site
  // first-report-wins in stream order, and feedback recomputed against the
  // cumulative coverage (each input recorded feedback against its
  // shard-local state, which is stale in the merged stream).
  for (const Keyed& entry : keyed) {
    JournalRecord record = *entry.record;
    record.stream_index = entry.stream_index;
    if (!record.gated) {
      RunFeedback feedback;
      for (const FoundBug& bug : record.result.bugs) {
        feedback.new_bug |= fold->bugs.insert(bug).second;
      }
      feedback.injections = record.result.injections;
      feedback.fingerprint = record.result.fingerprint;
      feedback.new_blocks = record.result.coverage.NewlyCoveredVersus(fold->coverage);
      fold->coverage.Absorb(record.result.coverage);
      ++fold->scenarios_run;
      record.feedback = std::move(feedback);
    }
    if (!output.Append(record)) {
      return fail("merge append failed: disk full or I/O error");
    }
    ++fold->records;
    fold->next_stream_index = entry.stream_index + 1;
    if (merged_records != nullptr) {
      merged_records->push_back(std::move(record));
    }
  }
  return true;
}

std::optional<ExplorationResult> MergeJournals(const std::vector<std::string>& inputs,
                                               const std::string& output_path,
                                               std::string* error, JournalMetadata* metadata,
                                               std::vector<MergeInputStats>* stats,
                                               std::optional<JournalFormat> format) {
  auto fail = [&](std::string message) -> std::optional<ExplorationResult> {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return std::nullopt;
  };
  if (inputs.empty()) {
    return fail("merge needs at least one input journal");
  }
  if (std::FILE* f = std::fopen(output_path.c_str(), "rb")) {
    std::fclose(f);
    return fail("merge output " + output_path +
                " already exists; delete it or merge to a fresh path");
  }

  std::vector<CampaignJournal> journals;
  journals.reserve(inputs.size());
  for (const std::string& path : inputs) {
    auto journal = CampaignJournal::Load(path, error);
    if (!journal) {
      return std::nullopt;
    }
    journals.push_back(std::move(*journal));
  }

  // Identity check + output header. Any key an input carries must agree with
  // every other input carrying it; the agreed values are emitted in the
  // canonical key order, shard keys dropped.
  JournalMetadata out_meta;
  for (const char* key : kIdentityKeys) {
    const std::string* agreed = nullptr;
    size_t agreed_input = 0;
    for (size_t i = 0; i < journals.size(); ++i) {
      for (const auto& [k, v] : journals[i].metadata()) {
        if (k != key) {
          continue;
        }
        if (agreed == nullptr) {
          agreed = &v;
          agreed_input = i;
        } else if (*agreed != v) {
          return fail("cannot merge journals from different campaigns: " + inputs[agreed_input] +
                      " has " + key + "='" + *agreed + "' but " + inputs[i] + " has '" + v +
                      "'");
        }
      }
    }
    if (agreed != nullptr) {
      out_meta.emplace_back(key, *agreed);
    }
  }
  // Non-identity, non-shard keys (free-form annotations) ride along from
  // whichever inputs carry them, first occurrence wins.
  auto has_key = [](const JournalMetadata& meta, const std::string& key) {
    for (const auto& [k, v] : meta) {
      if (k == key) {
        return true;
      }
    }
    return false;
  };
  for (const CampaignJournal& journal : journals) {
    for (const auto& [key, value] : journal.metadata()) {
      if (!IsShardKey(key) && !has_key(out_meta, key)) {
        out_meta.emplace_back(key, value);
      }
    }
  }

  // Per-input accounting (independent of the fold).
  if (stats != nullptr) {
    stats->clear();
    for (size_t i = 0; i < journals.size(); ++i) {
      size_t shard_index = static_cast<size_t>(-1);
      std::string shard_meta = journals[i].Meta("shard", "");
      if (!shard_meta.empty()) {
        shard_index = static_cast<size_t>(std::strtoull(shard_meta.c_str(), nullptr, 0));
      }
      MergeInputStats input_stats;
      input_stats.path = inputs[i];
      input_stats.shard_index = shard_index;
      std::set<FoundBug> input_bugs;
      for (const JournalRecord& record : journals[i].records()) {
        ++input_stats.records;
        if (!record.gated) {
          ++input_stats.scenarios_run;
          input_bugs.insert(record.result.bugs.begin(), record.result.bugs.end());
        }
      }
      input_stats.bugs = input_bugs.size();
      stats->push_back(std::move(input_stats));
    }
  }

  // One-shot merge: the incremental step (sort, overlap rejection, engine
  // fold) from a fresh fold state into a fresh output file. Crash-atomic:
  // the merge writes and finalizes <output>.tmp, then renames it into
  // place, so a crash mid-merge never leaves a half-written journal where a
  // later resume would look for a complete one -- the final path either
  // does not exist or holds the fully finalized merge.
  CampaignJournal merged;
  JournalFormat out_format = format.value_or(journals.front().format());
  std::string tmp_path = output_path + ".tmp";
  if (!merged.Create(tmp_path, out_meta, error, out_format)) {
    return std::nullopt;
  }
  MergeFoldState fold;
  if (!MergeRecordsInto(merged, journals, &fold, error)) {
    return std::nullopt;
  }
  ExplorationResult out;
  out.bugs = {fold.bugs.begin(), fold.bugs.end()};
  out.coverage = std::move(fold.coverage);
  out.scenarios_run = fold.scenarios_run;
  if (!merged.Finalize(error)) {
    return std::nullopt;
  }
  if (FailpointFired("merge.rename")) {
    return fail("failpoint merge.rename fired between finalize and rename");
  }
  if (std::rename(tmp_path.c_str(), output_path.c_str()) != 0) {
    return fail("cannot rename " + tmp_path + " into place as " + output_path);
  }
  if (metadata != nullptr) {
    *metadata = std::move(out_meta);
  }
  return out;
}

// --- ConvertJournal ---------------------------------------------------------

bool ConvertJournal(const std::string& input_path, const std::string& output_path,
                    std::optional<JournalFormat> format, std::string* error,
                    size_t* records, JournalFormat* written) {
  auto fail = [&](std::string message) {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return false;
  };
  if (std::FILE* f = std::fopen(output_path.c_str(), "rb")) {
    std::fclose(f);
    return fail("convert output " + output_path +
                " already exists; delete it or convert to a fresh path");
  }
  auto journal = CampaignJournal::Load(input_path, error);
  if (!journal) {
    return false;
  }
  JournalFormat out_format = format.value_or(
      journal->format() == JournalFormat::kXml ? JournalFormat::kExtent : JournalFormat::kXml);
  // Same tmp+rename discipline as MergeJournals: the converted artifact
  // appears at output_path only complete and finalized.
  std::string tmp_path = output_path + ".tmp";
  CampaignJournal out;
  if (!out.Create(tmp_path, journal->metadata(), error, out_format)) {
    return false;
  }
  for (const JournalRecord& record : journal->records()) {
    if (!out.Append(record)) {
      return fail("convert append failed writing " + output_path +
                  ": disk full or I/O error");
    }
  }
  if (!out.Finalize(error)) {
    return false;
  }
  if (std::rename(tmp_path.c_str(), output_path.c_str()) != 0) {
    return fail("cannot rename " + tmp_path + " into place as " + output_path);
  }
  if (records != nullptr) {
    *records = journal->records().size();
  }
  if (written != nullptr) {
    *written = out_format;
  }
  return true;
}

}  // namespace lfi
