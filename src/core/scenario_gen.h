// Automatic scenario generation from call-site analysis (§5).
//
// Turns the analyzer's classification into runnable injection scenarios: one
// call-stack trigger per vulnerable site (identified by module + call-site
// offset, exactly what the PBFT example in §7.1 shows) associated with the
// target function and a (retval, errno) pair drawn from the library's fault
// profile. Two scenario sets are produced, one for the completely unchecked
// sites (C_not) and one for the partially checked ones (C_part); for the
// latter, the injected retval is one of the *missing* codes.

#ifndef LFI_CORE_SCENARIO_GEN_H_
#define LFI_CORE_SCENARIO_GEN_H_

#include <vector>

#include "analysis/callsite_analyzer.h"
#include "core/scenario.h"
#include "profiler/fault_profile.h"

namespace lfi {

struct GeneratedScenarios {
  Scenario unchecked;  // targets C_not
  Scenario partial;    // targets C_part
};

// `reports` must all concern functions present in `profile`.
GeneratedScenarios GenerateScenarios(const std::vector<CallSiteReport>& reports,
                                     const FaultProfile& profile);

// Generates one single-site scenario (used when iterating site by site, the
// way §7.1 runs the campaign). Returns an empty scenario when the profile
// lacks the function or has no suitable error mode.
Scenario GenerateSiteScenario(const CallSiteReport& report, const FaultProfile& profile);

// The §5 error-mode choice behind GenerateSiteScenario: for partially
// checked sites a *missing* retval is preferred, otherwise the profile's
// first error mode. Returns false when the profile offers no error mode.
bool PickSiteErrorMode(const CallSiteReport& report, const FunctionProfile& fn, int64_t* retval,
                       int* errno_value);

// A site scenario with an explicit (retval, errno) pair and an optional
// call-count conjunction: call_count == 0 injects on every call at the site,
// call_count == n only on the n-th. This is the mutation building block of
// the exploration strategies (vary the error mode and the occurrence of a
// fruitful scenario without touching its call-stack trigger).
Scenario GenerateSiteScenarioVariant(const CallSiteReport& report, int64_t retval,
                                     int errno_value, uint64_t call_count);

}  // namespace lfi

#endif  // LFI_CORE_SCENARIO_GEN_H_
