#include "core/controller.h"

namespace lfi {

TestOutcome TestController::RunTest(VirtualLibc* libc, const Workload& workload) {
  runtime_ = std::make_unique<Runtime>(scenario_, options_);
  Interposer* previous = libc->interposer();
  libc->ResetCallCounts();  // fresh-process semantics for call-count triggers
  libc->set_interposer(runtime_.get());

  TestOutcome outcome;
  try {
    bool ok = workload();
    outcome.status = ok ? ExitStatus::kNormal : ExitStatus::kWorkloadError;
  } catch (const SimCrash& crash) {
    outcome.status = ExitStatus::kCrash;
    outcome.crash_kind = crash.kind();
    outcome.crash_where = crash.where();
  }
  libc->set_interposer(previous);

  outcome.injections = runtime_->log().size();
  outcome.log_text = runtime_->log().ToString();
  return outcome;
}

}  // namespace lfi
