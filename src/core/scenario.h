// Fault injection scenarios and the XML description language (§4).
//
// A scenario has two constructs:
//   <trigger id="..." class="..."> [<args>...</args>] </trigger>
//       declares a named trigger instance of a registered trigger class,
//       optionally with initialization parameters;
//   <function name="..." argc="N" return="V" errno="E"> <reftrigger ref=.../>+
//       associates trigger instances with an intercepted library function.
//
// Composition semantics (§4.2): multiple <reftrigger> inside one <function>
// form a conjunction; multiple <function> elements with the same name form a
// disjunction; negate="true" on a <reftrigger> inverts that trigger's vote.
// return="unused" marks associations that exist only so a stateful trigger
// observes the calls (e.g. mutex lock/unlock) -- they never inject.
// Both `return` and `retval` attribute spellings are accepted (the paper uses
// both).

#ifndef LFI_CORE_SCENARIO_H_
#define LFI_CORE_SCENARIO_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "xml/xml.h"

namespace lfi {

struct TriggerDecl {
  std::string id;
  std::string class_name;
  std::shared_ptr<XmlNode> args;  // deep copy of the <args> element, if any

  // Structural equality; <args> subtrees compare by serialized form.
  bool operator==(const TriggerDecl& o) const;
};

struct TriggerRef {
  std::string ref;
  bool negate = false;
  bool operator==(const TriggerRef& o) const = default;
};

struct FunctionAssoc {
  std::string function;
  int argc = 0;
  bool unused = false;     // return="unused": observe only, never inject
  int64_t retval = 0;
  int errno_value = 0;     // 0 = leave errno untouched
  std::vector<TriggerRef> triggers;  // conjunction, evaluated in order
  bool operator==(const FunctionAssoc& o) const = default;
};

class Scenario {
 public:
  std::vector<TriggerDecl>& triggers() { return triggers_; }
  const std::vector<TriggerDecl>& triggers() const { return triggers_; }
  std::vector<FunctionAssoc>& functions() { return functions_; }
  const std::vector<FunctionAssoc>& functions() const { return functions_; }

  void AddTrigger(TriggerDecl decl) { triggers_.push_back(std::move(decl)); }
  void AddFunction(FunctionAssoc assoc) { functions_.push_back(std::move(assoc)); }
  const TriggerDecl* FindTrigger(const std::string& id) const;

  // Serializes to the XML description language.
  std::string ToXml() const;

  // Serializes as a <scenario> child of `parent` (the embedded form campaign
  // journal records use). ToXml() is this plus the document wrapper.
  void AppendXml(XmlNode* parent) const;

  // Parses a scenario document (root element <scenario> or <plan>). Returns
  // nullopt and fills *error on malformed input, including references to
  // undeclared trigger ids.
  static std::optional<Scenario> Parse(const std::string& xml, std::string* error = nullptr);

  // Parses from an already-parsed element (the inverse of AppendXml).
  static std::optional<Scenario> FromNode(const XmlNode& node, std::string* error = nullptr);

  bool operator==(const Scenario& o) const {
    return triggers_ == o.triggers_ && functions_ == o.functions_;
  }

  // Builds the canonical element tree under `root` -- the serializer core
  // ToXml/AppendXml wrap, and what ScenarioFingerprint streams into SHA-1
  // without materializing the document string.
  void WriteXmlInto(XmlNode* root) const;

 private:
  std::vector<TriggerDecl> triggers_;
  std::vector<FunctionAssoc> functions_;
};

// Deep-copies an XML node (used to retain <args> subtrees).
std::unique_ptr<XmlNode> CloneXml(const XmlNode& node);

// Stable content digest of a scenario: the SHA-1 of its canonical XML form,
// so equal scenarios share a fingerprint no matter how they were built.
// Multi-process sharding deals live work by this value -- every shard
// computes the same partition from the scenario alone, with no coordinator.
std::string ScenarioFingerprint(const Scenario& scenario);

// The fingerprint reduced to a shard assignment in [0, shard_count).
size_t ScenarioShard(const Scenario& scenario, size_t shard_count);

}  // namespace lfi

#endif  // LFI_CORE_SCENARIO_H_
