#include "image/image.h"

#include <cstring>

#include "util/string_util.h"

namespace lfi {
namespace {

constexpr uint32_t kMagic = 0x464c4553;  // "SELF" little-endian
constexpr uint32_t kVersion = 1;

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

void PutString(std::vector<uint8_t>* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  bool GetU32(uint32_t* out) {
    if (pos_ + 4 > bytes_.size()) {
      return false;
    }
    *out = static_cast<uint32_t>(bytes_[pos_]) | (static_cast<uint32_t>(bytes_[pos_ + 1]) << 8) |
           (static_cast<uint32_t>(bytes_[pos_ + 2]) << 16) |
           (static_cast<uint32_t>(bytes_[pos_ + 3]) << 24);
    pos_ += 4;
    return true;
  }

  bool GetString(std::string* out) {
    uint32_t len;
    if (!GetU32(&len) || pos_ + len > bytes_.size()) {
      return false;
    }
    out->assign(bytes_.begin() + static_cast<long>(pos_),
                bytes_.begin() + static_cast<long>(pos_ + len));
    pos_ += len;
    return true;
  }

  bool GetBytes(std::vector<uint8_t>* out, size_t n) {
    if (pos_ + n > bytes_.size()) {
      return false;
    }
    out->assign(bytes_.begin() + static_cast<long>(pos_),
                bytes_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return true;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t pos_ = 0;
};

}  // namespace

int Image::InternImport(const std::string& name) {
  int idx = ImportIndex(name);
  if (idx >= 0) {
    return idx;
  }
  imports_.push_back(name);
  return static_cast<int>(imports_.size()) - 1;
}

int Image::ImportIndex(const std::string& name) const {
  for (size_t i = 0; i < imports_.size(); ++i) {
    if (imports_[i] == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

const ImageSymbol* Image::FindSymbol(const std::string& name) const {
  for (const auto& s : symbols_) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

const ImageSymbol* Image::SymbolContaining(uint32_t addr) const {
  for (const auto& s : symbols_) {
    if (addr >= s.addr && addr < s.addr + s.size) {
      return &s;
    }
  }
  return nullptr;
}

std::string Image::Disassemble() const {
  std::string out = StrFormat("module %s\n", module_name_.c_str());
  for (size_t off = 0; off + kInstrSize <= text_.size(); off += kInstrSize) {
    const ImageSymbol* sym = SymbolContaining(static_cast<uint32_t>(off));
    if (sym != nullptr && sym->addr == off) {
      out += StrFormat("\n%s:\n", sym->name.c_str());
    }
    Instruction instr;
    if (!Decode(off, &instr)) {
      out += StrFormat("  %06zx  <bad>\n", off);
      continue;
    }
    std::string body;
    if (instr.op == Op::kCall && instr.flags == kCallImport &&
        instr.imm >= 0 && static_cast<size_t>(instr.imm) < imports_.size()) {
      body = StrFormat("call %s@plt", imports_[static_cast<size_t>(instr.imm)].c_str());
    } else if (instr.op == Op::kCall && instr.flags == kCallLocal) {
      const ImageSymbol* target = SymbolContaining(static_cast<uint32_t>(instr.imm));
      if (target != nullptr && target->addr == static_cast<uint32_t>(instr.imm)) {
        body = StrFormat("call %s", target->name.c_str());
      } else {
        body = FormatInstruction(instr);
      }
    } else {
      body = FormatInstruction(instr);
    }
    out += StrFormat("  %06zx  %s\n", off, body.c_str());
  }
  return out;
}

std::vector<uint8_t> Image::Serialize() const {
  std::vector<uint8_t> out;
  PutU32(&out, kMagic);
  PutU32(&out, kVersion);
  PutString(&out, module_name_);
  PutU32(&out, static_cast<uint32_t>(text_.size()));
  out.insert(out.end(), text_.begin(), text_.end());
  PutU32(&out, static_cast<uint32_t>(symbols_.size()));
  for (const auto& s : symbols_) {
    PutString(&out, s.name);
    PutU32(&out, s.addr);
    PutU32(&out, s.size);
  }
  PutU32(&out, static_cast<uint32_t>(imports_.size()));
  for (const auto& imp : imports_) {
    PutString(&out, imp);
  }
  return out;
}

std::optional<Image> Image::Deserialize(const std::vector<uint8_t>& bytes) {
  Reader reader(bytes);
  uint32_t magic;
  uint32_t version;
  if (!reader.GetU32(&magic) || magic != kMagic || !reader.GetU32(&version) ||
      version != kVersion) {
    return std::nullopt;
  }
  Image img;
  std::string name;
  if (!reader.GetString(&name)) {
    return std::nullopt;
  }
  img.set_module_name(name);
  uint32_t text_size;
  if (!reader.GetU32(&text_size) || text_size % kInstrSize != 0) {
    return std::nullopt;
  }
  if (!reader.GetBytes(&img.mutable_text(), text_size)) {
    return std::nullopt;
  }
  uint32_t nsyms;
  if (!reader.GetU32(&nsyms)) {
    return std::nullopt;
  }
  for (uint32_t i = 0; i < nsyms; ++i) {
    ImageSymbol sym;
    if (!reader.GetString(&sym.name) || !reader.GetU32(&sym.addr) || !reader.GetU32(&sym.size)) {
      return std::nullopt;
    }
    img.AddSymbol(std::move(sym));
  }
  uint32_t nimports;
  if (!reader.GetU32(&nimports)) {
    return std::nullopt;
  }
  for (uint32_t i = 0; i < nimports; ++i) {
    std::string imp;
    if (!reader.GetString(&imp)) {
      return std::nullopt;
    }
    img.InternImport(imp);
  }
  if (!reader.AtEnd()) {
    return std::nullopt;
  }
  return img;
}

}  // namespace lfi
