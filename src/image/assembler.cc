#include "image/assembler.h"

#include <map>
#include <vector>

#include "util/string_util.h"

namespace lfi {
namespace {

struct PendingBranch {
  size_t instr_offset;  // byte offset of the branch instruction
  std::string label;    // ".name", function-scoped
  int line;
};

struct PendingCall {
  size_t instr_offset;
  std::string callee;
  int line;
};

class Assembler {
 public:
  Assembler(std::string_view source, AsmError* error) : source_(source), error_(error) {}

  std::optional<Image> Run() {
    std::vector<std::string> lines = Split(source_, '\n');
    for (size_t i = 0; i < lines.size(); ++i) {
      line_no_ = static_cast<int>(i) + 1;
      if (!HandleLine(lines[i])) {
        return std::nullopt;
      }
    }
    if (in_func_) {
      return Fail("missing 'end' for function " + current_func_);
    }
    // Resolve calls: local symbol wins, otherwise import.
    for (const auto& call : pending_calls_) {
      line_no_ = call.line;
      Instruction instr;
      if (!image_.Decode(call.instr_offset, &instr)) {
        return Fail("internal: bad pending call encoding");
      }
      const ImageSymbol* sym = image_.FindSymbol(call.callee);
      if (sym != nullptr) {
        instr.flags = kCallLocal;
        instr.imm = static_cast<int32_t>(sym->addr);
      } else {
        instr.flags = kCallImport;
        instr.imm = image_.InternImport(call.callee);
      }
      Patch(call.instr_offset, instr);
    }
    return std::move(image_);
  }

 private:
  std::optional<Image> Fail(std::string message) {
    if (error_ != nullptr && error_->message.empty()) {
      error_->message = std::move(message);
      error_->line = line_no_;
    }
    return std::nullopt;
  }

  bool FailBool(std::string message) {
    Fail(std::move(message));
    return false;
  }

  void Patch(size_t offset, const Instruction& instr) {
    std::vector<uint8_t> bytes;
    EncodeInstruction(instr, &bytes);
    std::copy(bytes.begin(), bytes.end(), image_.mutable_text().begin() + static_cast<long>(offset));
  }

  void Emit(const Instruction& instr) {
    EncodeInstruction(instr, &image_.mutable_text());
  }

  size_t Here() const { return image_.text().size(); }

  static std::string StripComment(const std::string& line) {
    size_t pos = line.find_first_of(";#");
    return pos == std::string::npos ? line : line.substr(0, pos);
  }

  bool ParseReg(std::string_view tok, uint8_t* out) {
    std::string t = AsciiLower(Trim(tok));
    if (t == "rv") {
      *out = kRetReg;
      return true;
    }
    if (t == "sp") {
      *out = kSpReg;
      return true;
    }
    if (t == "err") {
      *out = kErrnoReg;
      return true;
    }
    if (t.size() >= 2 && t[0] == 'r') {
      auto n = ParseInt(t.substr(1));
      if (n && *n >= 0 && *n < kNumRegisters) {
        *out = static_cast<uint8_t>(*n);
        return true;
      }
    }
    return FailBool("bad register '" + std::string(tok) + "'");
  }

  bool ParseImm(std::string_view tok, int32_t* out) {
    auto v = ParseInt(Trim(tok));
    if (!v || *v < INT32_MIN || *v > INT32_MAX) {
      return FailBool("bad immediate '" + std::string(tok) + "'");
    }
    *out = static_cast<int32_t>(*v);
    return true;
  }

  // Parses "[rN+off]" / "[rN-off]" / "[rN]".
  bool ParseMem(std::string_view tok, uint8_t* reg, int32_t* off) {
    std::string t(Trim(tok));
    if (t.size() < 3 || t.front() != '[' || t.back() != ']') {
      return FailBool("bad memory operand '" + t + "'");
    }
    std::string inner = t.substr(1, t.size() - 2);
    size_t sep = inner.find_first_of("+-", 1);
    if (sep == std::string::npos) {
      *off = 0;
      return ParseReg(inner, reg);
    }
    if (!ParseReg(inner.substr(0, sep), reg)) {
      return false;
    }
    return ParseImm(inner.substr(sep), off);
  }

  // Splits an operand list on commas that are not inside brackets.
  static std::vector<std::string> SplitOperands(std::string_view s) {
    std::vector<std::string> out;
    std::string cur;
    int depth = 0;
    for (char c : s) {
      if (c == '[') {
        ++depth;
      } else if (c == ']') {
        --depth;
      }
      if (c == ',' && depth == 0) {
        out.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    if (!Trim(cur).empty() || !out.empty()) {
      out.push_back(cur);
    }
    return out;
  }

  bool EndFunction() {
    // Resolve branches to labels within the function that just closed.
    for (const auto& br : pending_branches_) {
      auto it = labels_.find(br.label);
      if (it == labels_.end()) {
        line_no_ = br.line;
        return FailBool("undefined label '" + br.label + "'");
      }
      Instruction instr;
      if (!image_.Decode(br.instr_offset, &instr)) {
        return FailBool("internal: bad pending branch encoding");
      }
      instr.imm = static_cast<int32_t>(it->second);
      Patch(br.instr_offset, instr);
    }
    pending_branches_.clear();
    labels_.clear();
    ImageSymbol sym;
    sym.name = current_func_;
    sym.addr = static_cast<uint32_t>(func_start_);
    sym.size = static_cast<uint32_t>(Here() - func_start_);
    if (sym.size == 0) {
      return FailBool("empty function " + current_func_);
    }
    image_.AddSymbol(std::move(sym));
    in_func_ = false;
    return true;
  }

  bool HandleLine(const std::string& raw) {
    std::string line(Trim(StripComment(raw)));
    if (line.empty()) {
      return true;
    }
    // Label?
    if (line[0] == '.' && line.back() == ':') {
      if (!in_func_) {
        return FailBool("label outside function");
      }
      std::string name = line.substr(0, line.size() - 1);
      if (labels_.count(name) != 0) {
        return FailBool("duplicate label '" + name + "'");
      }
      labels_[name] = Here();
      return true;
    }
    size_t sp = line.find_first_of(" \t");
    std::string mnemonic = AsciiLower(sp == std::string::npos ? line : line.substr(0, sp));
    std::string rest = sp == std::string::npos ? "" : std::string(Trim(line.substr(sp)));

    if (mnemonic == "module") {
      if (rest.empty()) {
        return FailBool("module requires a name");
      }
      image_.set_module_name(rest);
      return true;
    }
    if (mnemonic == "func") {
      if (in_func_) {
        return FailBool("nested 'func'");
      }
      if (rest.empty()) {
        return FailBool("func requires a name");
      }
      if (image_.FindSymbol(rest) != nullptr) {
        return FailBool("duplicate function '" + rest + "'");
      }
      current_func_ = rest;
      func_start_ = Here();
      in_func_ = true;
      return true;
    }
    if (mnemonic == "end") {
      if (!in_func_) {
        return FailBool("'end' outside function");
      }
      return EndFunction();
    }
    if (!in_func_) {
      return FailBool("instruction outside function");
    }
    return HandleInstruction(mnemonic, rest);
  }

  bool HandleInstruction(const std::string& mnemonic, const std::string& rest) {
    std::vector<std::string> ops = SplitOperands(rest);
    Instruction instr;

    auto need = [&](size_t n) {
      if (ops.size() != n) {
        return FailBool(StrFormat("'%s' expects %zu operand(s), got %zu", mnemonic.c_str(), n,
                                  ops.size()));
      }
      return true;
    };

    if (mnemonic == "nop" || mnemonic == "ret" || mnemonic == "halt") {
      if (!rest.empty()) {
        return FailBool("'" + mnemonic + "' takes no operands");
      }
      instr.op = mnemonic == "nop" ? Op::kNop : (mnemonic == "ret" ? Op::kRet : Op::kHalt);
      Emit(instr);
      return true;
    }
    if (mnemonic == "mov" || mnemonic == "add" || mnemonic == "sub" || mnemonic == "mul" ||
        mnemonic == "and" || mnemonic == "or" || mnemonic == "xor" || mnemonic == "cmp" ||
        mnemonic == "test") {
      if (!need(2)) {
        return false;
      }
      static const std::map<std::string, Op> kMap = {
          {"mov", Op::kMovRR}, {"add", Op::kAdd}, {"sub", Op::kSub},  {"mul", Op::kMul},
          {"and", Op::kAnd},   {"or", Op::kOr},   {"xor", Op::kXor}, {"cmp", Op::kCmpRR},
          {"test", Op::kTest}};
      instr.op = kMap.at(mnemonic);
      if (!ParseReg(ops[0], &instr.rd) || !ParseReg(ops[1], &instr.rs)) {
        return false;
      }
      Emit(instr);
      return true;
    }
    if (mnemonic == "movi" || mnemonic == "addi" || mnemonic == "cmpi") {
      if (!need(2)) {
        return false;
      }
      instr.op = mnemonic == "movi" ? Op::kMovRI : (mnemonic == "addi" ? Op::kAddI : Op::kCmpRI);
      if (!ParseReg(ops[0], &instr.rd) || !ParseImm(ops[1], &instr.imm)) {
        return false;
      }
      Emit(instr);
      return true;
    }
    if (mnemonic == "load") {
      if (!need(2)) {
        return false;
      }
      instr.op = Op::kLoad;
      if (!ParseReg(ops[0], &instr.rd) || !ParseMem(ops[1], &instr.rs, &instr.imm)) {
        return false;
      }
      Emit(instr);
      return true;
    }
    if (mnemonic == "store") {
      if (!need(2)) {
        return false;
      }
      instr.op = Op::kStore;
      if (!ParseMem(ops[0], &instr.rd, &instr.imm) || !ParseReg(ops[1], &instr.rs)) {
        return false;
      }
      Emit(instr);
      return true;
    }
    static const std::map<std::string, Op> kJumps = {
        {"jmp", Op::kJmp}, {"je", Op::kJe},   {"jne", Op::kJne}, {"jl", Op::kJl},
        {"jle", Op::kJle}, {"jg", Op::kJg},   {"jge", Op::kJge}, {"js", Op::kJs},
        {"jns", Op::kJns}};
    auto jump_it = kJumps.find(mnemonic);
    if (jump_it != kJumps.end()) {
      if (!need(1)) {
        return false;
      }
      std::string label(Trim(ops[0]));
      if (label.empty() || label[0] != '.') {
        return FailBool("jump target must be a .label");
      }
      instr.op = jump_it->second;
      pending_branches_.push_back({Here(), label, line_no_});
      Emit(instr);
      return true;
    }
    if (mnemonic == "call") {
      if (!need(1)) {
        return false;
      }
      std::string callee(Trim(ops[0]));
      if (callee.empty()) {
        return FailBool("call requires a target");
      }
      instr.op = Op::kCall;
      pending_calls_.push_back({Here(), callee, line_no_});
      Emit(instr);
      return true;
    }
    if (mnemonic == "callr") {
      if (!need(1)) {
        return false;
      }
      instr.op = Op::kCallR;
      if (!ParseReg(ops[0], &instr.rs)) {
        return false;
      }
      Emit(instr);
      return true;
    }
    if (mnemonic == "push" || mnemonic == "pop") {
      if (!need(1)) {
        return false;
      }
      instr.op = mnemonic == "push" ? Op::kPush : Op::kPop;
      if (!ParseReg(ops[0], &instr.rd)) {
        return false;
      }
      Emit(instr);
      return true;
    }
    return FailBool("unknown mnemonic '" + mnemonic + "'");
  }

  std::string_view source_;
  AsmError* error_;
  Image image_;
  int line_no_ = 0;
  bool in_func_ = false;
  std::string current_func_;
  size_t func_start_ = 0;
  std::map<std::string, size_t> labels_;
  std::vector<PendingBranch> pending_branches_;
  std::vector<PendingCall> pending_calls_;
};

}  // namespace

std::optional<Image> Assemble(std::string_view source, AsmError* error) {
  AsmError local;
  Assembler assembler(source, error ? error : &local);
  return assembler.Run();
}

}  // namespace lfi
