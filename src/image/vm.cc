#include "image/vm.h"

#include "util/string_util.h"

namespace lfi {

VmResult Vm::Run(const std::string& function, size_t max_instructions) {
  VmResult result;
  const ImageSymbol* sym = image_->FindSymbol(function);
  if (sym == nullptr) {
    result.trap = "unknown function " + function;
    return result;
  }

  int64_t regs[kNumRegisters] = {};
  for (const auto& [reg, value] : init_regs_) {
    if (reg >= 0 && reg < kNumRegisters) {
      regs[reg] = value;
    }
  }
  // The stack pointer starts in the middle of a scratch memory arena; the
  // errno base points at a distinguished cell.
  std::map<int64_t, int64_t> memory;
  constexpr int64_t kStackBase = 0x10000;
  constexpr int64_t kErrnoCell = 0x20000;
  regs[kSpReg] = kStackBase;
  regs[kErrnoReg] = kErrnoCell;

  std::vector<size_t> call_stack;
  std::vector<int64_t> data_stack;
  size_t pc = sym->addr;
  bool zf = false;
  bool sf = false;

  while (result.instructions < max_instructions) {
    Instruction instr;
    if (!image_->Decode(pc, &instr)) {
      result.trap = StrFormat("bad instruction at 0x%zx", pc);
      return result;
    }
    ++result.instructions;
    size_t next = pc + kInstrSize;
    switch (instr.op) {
      case Op::kNop:
        break;
      case Op::kHalt:
        result.ok = true;
        result.retval = regs[kRetReg];
        return result;
      case Op::kMovRR:
        regs[instr.rd] = regs[instr.rs];
        break;
      case Op::kMovRI:
        regs[instr.rd] = instr.imm;
        break;
      case Op::kLoad:
        regs[instr.rd] = memory[regs[instr.rs] + instr.imm];
        break;
      case Op::kStore: {
        int64_t addr = regs[instr.rd] + instr.imm;
        memory[addr] = regs[instr.rs];
        if (regs[instr.rd] == kErrnoCell) {
          result.errno_value = static_cast<int>(regs[instr.rs]);
        }
        break;
      }
      case Op::kAdd:
        regs[instr.rd] += regs[instr.rs];
        break;
      case Op::kSub:
        regs[instr.rd] -= regs[instr.rs];
        break;
      case Op::kMul:
        regs[instr.rd] *= regs[instr.rs];
        break;
      case Op::kAnd:
        regs[instr.rd] &= regs[instr.rs];
        break;
      case Op::kOr:
        regs[instr.rd] |= regs[instr.rs];
        break;
      case Op::kXor:
        regs[instr.rd] ^= regs[instr.rs];
        break;
      case Op::kAddI:
        regs[instr.rd] += instr.imm;
        break;
      case Op::kCmpRR: {
        int64_t diff = regs[instr.rd] - regs[instr.rs];
        zf = diff == 0;
        sf = diff < 0;
        break;
      }
      case Op::kCmpRI: {
        int64_t diff = regs[instr.rd] - instr.imm;
        zf = diff == 0;
        sf = diff < 0;
        break;
      }
      case Op::kTest: {
        int64_t v = regs[instr.rd] & regs[instr.rs];
        zf = v == 0;
        sf = v < 0;
        break;
      }
      case Op::kJmp:
        next = static_cast<size_t>(static_cast<uint32_t>(instr.imm));
        break;
      case Op::kJe:
        if (zf) {
          next = static_cast<size_t>(static_cast<uint32_t>(instr.imm));
        }
        break;
      case Op::kJne:
        if (!zf) {
          next = static_cast<size_t>(static_cast<uint32_t>(instr.imm));
        }
        break;
      case Op::kJl:
        if (sf) {
          next = static_cast<size_t>(static_cast<uint32_t>(instr.imm));
        }
        break;
      case Op::kJle:
        if (sf || zf) {
          next = static_cast<size_t>(static_cast<uint32_t>(instr.imm));
        }
        break;
      case Op::kJg:
        if (!sf && !zf) {
          next = static_cast<size_t>(static_cast<uint32_t>(instr.imm));
        }
        break;
      case Op::kJge:
        if (!sf) {
          next = static_cast<size_t>(static_cast<uint32_t>(instr.imm));
        }
        break;
      case Op::kJs:
        if (sf) {
          next = static_cast<size_t>(static_cast<uint32_t>(instr.imm));
        }
        break;
      case Op::kJns:
        if (!sf) {
          next = static_cast<size_t>(static_cast<uint32_t>(instr.imm));
        }
        break;
      case Op::kCall:
        if (instr.flags == kCallImport) {
          std::string name;
          if (instr.imm >= 0 && static_cast<size_t>(instr.imm) < image_->imports().size()) {
            name = image_->imports()[static_cast<size_t>(instr.imm)];
          }
          regs[kRetReg] = import_handler_ ? import_handler_(name) : 0;
          // Caller-saved registers are clobbered deterministically.
          for (int r = 1; r <= 5; ++r) {
            regs[r] = 0;
          }
        } else {
          call_stack.push_back(next);
          next = static_cast<size_t>(static_cast<uint32_t>(instr.imm));
        }
        break;
      case Op::kCallR:
        result.trap = "indirect call in VM";
        return result;
      case Op::kRet:
        if (call_stack.empty()) {
          result.ok = true;
          result.retval = regs[kRetReg];
          return result;
        }
        next = call_stack.back();
        call_stack.pop_back();
        break;
      case Op::kPush:
        data_stack.push_back(regs[instr.rd]);
        break;
      case Op::kPop:
        if (data_stack.empty()) {
          result.trap = "pop from empty stack";
          return result;
        }
        regs[instr.rd] = data_stack.back();
        data_stack.pop_back();
        break;
      case Op::kOpCount:
        result.trap = "bad opcode";
        return result;
    }
    pc = next;
  }
  result.trap = "out of fuel";
  return result;
}

}  // namespace lfi
