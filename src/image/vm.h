// A small interpreter for the virtual ISA.
//
// The analyses in this repository are purely static, like the paper's; the
// VM exists to *validate* them: executing a library stub under every
// environment selector must produce exactly the (retval, errno) modes the
// profiler inferred, and executing an application function must exercise the
// branches the call-site analyzer reasoned about. Tests use it as a ground-
// truth oracle.

#ifndef LFI_IMAGE_VM_H_
#define LFI_IMAGE_VM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "image/image.h"

namespace lfi {

struct VmResult {
  bool ok = false;            // false: trap (bad decode, stack underflow, fuel)
  int64_t retval = 0;         // r0 at the final ret
  std::optional<int> errno_value;  // last store through the errno base, if any
  size_t instructions = 0;    // executed count
  std::string trap;           // reason when !ok
};

class Vm {
 public:
  explicit Vm(const Image* image) : image_(image) {}

  // Pre-sets a register (e.g. r9, the stub environment selector).
  void SetRegister(int reg, int64_t value) { init_regs_[reg] = value; }

  // Handles calls to imported functions; returns the callee's r0. Default:
  // every import returns 0.
  using ImportHandler = std::function<int64_t(const std::string& name)>;
  void set_import_handler(ImportHandler handler) { import_handler_ = std::move(handler); }

  // Runs `function` until ret (with an empty call stack) or trap.
  VmResult Run(const std::string& function, size_t max_instructions = 100000);

 private:
  const Image* image_;
  std::map<int, int64_t> init_regs_;
  ImportHandler import_handler_;
};

}  // namespace lfi

#endif  // LFI_IMAGE_VM_H_
