// SimELF: the binary image format the LFI analyses consume.
//
// A module image holds one text section of fixed-width ISA instructions, a
// symbol table for the functions it defines, and an import table for the
// external library functions it calls (the analogue of an ELF dynamic symbol
// table + PLT). The call-site analyzer (§5) scans images for `call @import`
// instructions; the profiler (§2) analyzes the images of library modules.
// Images serialize to a simple container format so "binaries" can live on
// disk, mirroring the paper's setting where the tester only has binaries.

#ifndef LFI_IMAGE_IMAGE_H_
#define LFI_IMAGE_IMAGE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/isa.h"

namespace lfi {

struct ImageSymbol {
  std::string name;
  uint32_t addr = 0;  // byte offset of the first instruction in text
  uint32_t size = 0;  // size in bytes
};

class Image {
 public:
  const std::string& module_name() const { return module_name_; }
  void set_module_name(std::string name) { module_name_ = std::move(name); }

  const std::vector<uint8_t>& text() const { return text_; }
  std::vector<uint8_t>& mutable_text() { return text_; }
  size_t instruction_count() const { return text_.size() / kInstrSize; }

  const std::vector<ImageSymbol>& symbols() const { return symbols_; }
  void AddSymbol(ImageSymbol sym) { symbols_.push_back(std::move(sym)); }

  const std::vector<std::string>& imports() const { return imports_; }
  // Returns the index of `name` in the import table, adding it if new.
  int InternImport(const std::string& name);
  // Returns the import index or -1 when the module does not import `name`.
  int ImportIndex(const std::string& name) const;

  // Symbol lookup by name; nullptr when absent.
  const ImageSymbol* FindSymbol(const std::string& name) const;
  // The defined function containing byte offset `addr`; nullptr when none.
  const ImageSymbol* SymbolContaining(uint32_t addr) const;

  // Decodes the instruction at `offset`; false on failure.
  bool Decode(size_t offset, Instruction* out) const {
    return DecodeInstruction(text_, offset, out);
  }

  // Full-module disassembly listing (for logs and debugging).
  std::string Disassemble() const;

  // Container (de)serialization.
  std::vector<uint8_t> Serialize() const;
  static std::optional<Image> Deserialize(const std::vector<uint8_t>& bytes);

 private:
  std::string module_name_;
  std::vector<uint8_t> text_;
  std::vector<ImageSymbol> symbols_;
  std::vector<std::string> imports_;
};

}  // namespace lfi

#endif  // LFI_IMAGE_IMAGE_H_
