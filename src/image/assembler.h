// Two-pass assembler: textual assembly -> SimELF image.
//
// The application and library "binaries" in this repository are produced by
// assembling small programs (apps/*/binary.cc generates the text). Grammar,
// one statement per line, ';' or '#' start comments:
//
//   module NAME            -- module name (once, first)
//   func NAME              -- begin function
//   end                    -- end function
//   .label:                -- local label (scoped to the enclosing function)
//
//   mov   rd, rs           movi rd, imm        addi rd, imm
//   load  rd, [rs+off]     store [rd+off], rs
//   add/sub/mul/and/or/xor rd, rs
//   cmp   rd, rs           cmpi rd, imm        test rd, rs
//   jmp/je/jne/jl/jle/jg/jge/js/jns .label
//   call  NAME             -- local function if defined anywhere in the
//                             module, import otherwise
//   callr rs
//   push rd / pop rd / ret / nop / halt
//
// Registers: r0..r15, with aliases rv (r0), sp (r13), err (r14).

#ifndef LFI_IMAGE_ASSEMBLER_H_
#define LFI_IMAGE_ASSEMBLER_H_

#include <optional>
#include <string>
#include <string_view>

#include "image/image.h"

namespace lfi {

struct AsmError {
  std::string message;
  int line = 0;
};

// Assembles `source`. Returns nullopt and fills *error on failure.
std::optional<Image> Assemble(std::string_view source, AsmError* error = nullptr);

}  // namespace lfi

#endif  // LFI_IMAGE_ASSEMBLER_H_
