// Exploration efficiency: bugs found and recovery blocks covered per
// scenario budget, strategy vs. strategy.
//
// For each target system and each strategy (exhaustive, random sweep,
// coverage-guided) the bench runs the explore pipeline at increasing
// budgets and tabulates distinct bugs, covered recovery blocks, and
// scenarios actually executed. The interesting read is the coverage column:
// the exhaustive list plateaus once the analyzer's C_not sites are spent,
// while the feedback loop keeps converting budget into new recovery blocks.
//
//   bench_exploration_efficiency [seed] [budgets...] [--journal PREFIX]
//   (defaults: 1; 4 8 16 32)
//
// --journal PREFIX additionally persists each top-budget run's campaign
// journal to PREFIX-<system>-<strategy>.xml (core/journal.h), both to
// measure that journaling does not change any result and to produce
// resumable/replayable artifacts from the bench matrix.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/common/bug_campaign.h"

int main(int argc, char** argv) {
  uint64_t seed = 1;
  std::string journal_prefix;
  std::vector<size_t> budgets;
  int positionals = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--journal" && i + 1 < argc) {
      journal_prefix = argv[++i];
    } else if (++positionals == 1) {  // first positional is the seed
      seed = static_cast<uint64_t>(std::atoll(argv[i]));
    } else if (int budget = std::atoi(argv[i]); budget > 0) {
      budgets.push_back(static_cast<size_t>(budget));
    }
  }
  if (budgets.empty()) {
    budgets = {4, 8, 16, 32};
  }

  const char* systems[] = {"git", "mysql", "bind", "pbft"};
  const lfi::ExploreStrategy strategies[] = {lfi::ExploreStrategy::kExhaustive,
                                             lfi::ExploreStrategy::kRandom,
                                             lfi::ExploreStrategy::kCoverage};

  std::printf("exploration efficiency (seed %llu)\n\n", (unsigned long long)seed);
  std::printf("%-7s %-11s %-8s %-10s %-10s %s\n", "system", "strategy", "budget", "scenarios",
              "bugs", "recovery blocks covered");

  bool guided_never_worse = true;
  for (const char* system : systems) {
    size_t exhaustive_recovery = 0;
    for (lfi::ExploreStrategy strategy : strategies) {
      for (size_t budget : budgets) {
        lfi::ExploreConfig config;
        config.strategy = strategy;
        config.budget = budget;
        config.seed = seed;
        if (!journal_prefix.empty() && budget == budgets.back()) {
          config.journal_path = journal_prefix + "-" + system + "-" +
                                lfi::ExploreStrategyName(strategy) + ".xml";
          std::remove(config.journal_path.c_str());
        }
        auto result = lfi::ExploreCampaign(system, config);
        if (!result) {
          continue;
        }
        lfi::CoverageMap::Stats stats = result->coverage.ComputeStats();
        std::printf("%-7s %-11s %-8zu %-10zu %-10zu %zu/%zu\n", system,
                    lfi::ExploreStrategyName(strategy), budget, result->scenarios_run,
                    result->bugs.size(), stats.covered_recovery_blocks,
                    stats.recovery_blocks);
        if (strategy == lfi::ExploreStrategy::kExhaustive && budget == budgets.back()) {
          exhaustive_recovery = stats.covered_recovery_blocks;
        }
        if (strategy == lfi::ExploreStrategy::kCoverage && budget == budgets.back() &&
            stats.covered_recovery_blocks < exhaustive_recovery) {
          guided_never_worse = false;
        }
      }
    }
    std::printf("\n");
  }

  if (!guided_never_worse) {
    std::printf("ERROR: coverage-guided fell below exhaustive at the top budget\n");
    return 1;
  }
  std::printf("coverage-guided >= exhaustive at the top budget: ok\n");
  return 0;
}
