// Exploration efficiency: bugs found and recovery blocks covered per
// scenario budget, strategy vs. strategy.
//
// For each target system and each strategy (exhaustive, random sweep,
// coverage-guided) the bench runs the explore pipeline at increasing
// budgets and tabulates distinct bugs, covered recovery blocks, and
// scenarios actually executed. The interesting read is the coverage column:
// the exhaustive list plateaus once the analyzer's C_not sites are spent,
// while the feedback loop keeps converting budget into new recovery blocks.
//
//   bench_exploration_efficiency [seed] [budgets...]   (defaults: 1; 4 8 16 32)

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "apps/common/bug_campaign.h"

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? static_cast<uint64_t>(std::atoll(argv[1])) : 1;
  std::vector<size_t> budgets;
  for (int i = 2; i < argc; ++i) {
    int budget = std::atoi(argv[i]);
    if (budget > 0) {
      budgets.push_back(static_cast<size_t>(budget));
    }
  }
  if (budgets.empty()) {
    budgets = {4, 8, 16, 32};
  }

  const char* systems[] = {"git", "mysql", "bind", "pbft"};
  const lfi::ExploreStrategy strategies[] = {lfi::ExploreStrategy::kExhaustive,
                                             lfi::ExploreStrategy::kRandom,
                                             lfi::ExploreStrategy::kCoverage};

  std::printf("exploration efficiency (seed %llu)\n\n", (unsigned long long)seed);
  std::printf("%-7s %-11s %-8s %-10s %-10s %s\n", "system", "strategy", "budget", "scenarios",
              "bugs", "recovery blocks covered");

  bool guided_never_worse = true;
  for (const char* system : systems) {
    size_t exhaustive_recovery = 0;
    for (lfi::ExploreStrategy strategy : strategies) {
      for (size_t budget : budgets) {
        lfi::ExploreConfig config;
        config.strategy = strategy;
        config.budget = budget;
        config.seed = seed;
        auto result = lfi::ExploreCampaign(system, config);
        if (!result) {
          continue;
        }
        lfi::CoverageMap::Stats stats = result->coverage.ComputeStats();
        std::printf("%-7s %-11s %-8zu %-10zu %-10zu %zu/%zu\n", system,
                    lfi::ExploreStrategyName(strategy), budget, result->scenarios_run,
                    result->bugs.size(), stats.covered_recovery_blocks,
                    stats.recovery_blocks);
        if (strategy == lfi::ExploreStrategy::kExhaustive && budget == budgets.back()) {
          exhaustive_recovery = stats.covered_recovery_blocks;
        }
        if (strategy == lfi::ExploreStrategy::kCoverage && budget == budgets.back() &&
            stats.covered_recovery_blocks < exhaustive_recovery) {
          guided_never_worse = false;
        }
      }
    }
    std::printf("\n");
  }

  if (!guided_never_worse) {
    std::printf("ERROR: coverage-guided fell below exhaustive at the top budget\n");
    return 1;
  }
  std::printf("coverage-guided >= exhaustive at the top budget: ok\n");
  return 0;
}
