// Shard/merge scaling: what the multi-process campaign machinery costs.
//
// For each shard count the bench runs the same exploration spec as K
// in-process shards through CampaignDriver (deal by scenario fingerprint,
// one journal per shard, deterministic merge), times the end-to-end sharded
// run and the merge step alone, and verifies the merged campaign is
// bit-identical to the single-process baseline (bugs, coverage, journal
// bytes). On a single-core container the sharded wall time is dominated by
// the same scenario executions the baseline runs -- the interesting columns
// are the merge cost (pure I/O + re-dedup fold, what the `lfi_tool merge`
// parent pays) and the identical? check; on multi-machine deployments each
// shard is what one worker machine runs.
//
//   bench_shard_merge [budget] [seed] [shard counts...] [--json [path]]
//   (defaults: 24; 5; 2 4 8)
//
// Artifacts land in the working directory as BENCH_shard-*.xml.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/common/campaign_driver.h"
#include "bench_args.h"
#include "core/journal.h"
#include "util/string_util.h"

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void RemoveArtifacts(const std::string& base, size_t shards) {
  std::remove(base.c_str());
  for (size_t i = 0; i < shards; ++i) {
    std::remove((base + lfi::StrFormat(".shard%zu", i)).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  lfi_bench::JsonArgs args = lfi_bench::ParseJsonArgs(argc, argv, "BENCH_shard.json");
  size_t budget = 24;
  uint64_t seed = 5;
  std::vector<size_t> shard_counts;
  for (size_t i = 0; i < args.positional.size(); ++i) {
    long long value = std::atoll(args.positional[i]);
    if (value <= 0) {
      continue;
    }
    if (i == 0) {
      budget = static_cast<size_t>(value);
    } else if (i == 1) {
      seed = static_cast<uint64_t>(value);
    } else {
      shard_counts.push_back(static_cast<size_t>(value));
    }
  }
  if (shard_counts.empty()) {
    shard_counts = {2, 4, 8};
  }

  lfi::CampaignSpec spec;
  spec.system = "pbft";
  spec.mode = lfi::CampaignMode::kExplore;
  spec.strategy = lfi::ExploreStrategy::kRandom;
  spec.budget = budget;
  spec.seed = seed;

  // Single-process baseline.
  std::string single_path = "BENCH_shard-single.xml";
  std::remove(single_path.c_str());
  lfi::CampaignSpec single = spec;
  single.journal_path = single_path;
  std::string error;
  auto start = std::chrono::steady_clock::now();
  auto baseline = lfi::CampaignDriver(single).Run(&error);
  double single_ms = MsSince(start);
  if (!baseline) {
    std::fprintf(stderr, "baseline failed: %s\n", error.c_str());
    return 1;
  }
  std::string single_bytes = ReadFile(single_path);

  std::printf("shard/merge scaling: pbft random explore, budget %zu, seed %llu\n\n", budget,
              (unsigned long long)seed);
  std::printf("%-8s %-12s %-12s %-10s %-6s %s\n", "shards", "total ms", "merge ms", "bugs",
              "scen", "identical?");
  std::printf("%-8d %-12.1f %-12s %-10zu %-6zu %s\n", 1, single_ms, "-",
              baseline->bugs.size(), baseline->scenarios_run, "(baseline)");

  std::string rows_json;
  bool all_identical = true;
  for (size_t shards : shard_counts) {
    std::string merged_path = lfi::StrFormat("BENCH_shard-%zu.xml", shards);
    RemoveArtifacts(merged_path, shards);
    lfi::CampaignSpec sharded = spec;
    sharded.journal_path = merged_path;
    sharded.shard_count = shards;

    start = std::chrono::steady_clock::now();
    // In-process shards (no fork): the bench measures the machinery, not
    // process startup. The child runs execute sequentially, so total ms is
    // comparable to the baseline plus the dealing + journaling + merge cost.
    auto outcome = lfi::CampaignDriver(sharded).Run(&error);
    double total_ms = MsSince(start);
    if (!outcome) {
      std::fprintf(stderr, "sharded run (%zu) failed: %s\n", shards, error.c_str());
      return 1;
    }

    // Merge alone, re-run against the shard artifacts.
    std::vector<std::string> inputs;
    for (const lfi::MergeInputStats& shard : outcome->shards) {
      inputs.push_back(shard.path);
    }
    std::string remerged_path = merged_path + ".remerged";
    std::remove(remerged_path.c_str());
    start = std::chrono::steady_clock::now();
    auto remerged = lfi::MergeJournals(inputs, remerged_path, &error);
    double merge_ms = MsSince(start);
    if (!remerged) {
      std::fprintf(stderr, "re-merge (%zu) failed: %s\n", shards, error.c_str());
      return 1;
    }
    std::remove(remerged_path.c_str());

    bool identical = outcome->bugs == baseline->bugs &&
                     outcome->coverage.hits() == baseline->coverage.hits() &&
                     outcome->scenarios_run == baseline->scenarios_run &&
                     ReadFile(merged_path) == single_bytes;
    all_identical &= identical;
    std::printf("%-8zu %-12.1f %-12.1f %-10zu %-6zu %s\n", shards, total_ms, merge_ms,
                outcome->bugs.size(), outcome->scenarios_run, identical ? "yes" : "NO");
    if (!rows_json.empty()) {
      rows_json += ",";
    }
    rows_json += lfi::StrFormat(
        "{\"shards\":%zu,\"total_ms\":%.1f,\"merge_ms\":%.1f,\"bugs\":%zu,"
        "\"scenarios\":%zu,\"identical\":%s}",
        shards, total_ms, merge_ms, outcome->bugs.size(), outcome->scenarios_run,
        identical ? "true" : "false");
  }

  if (args.enabled) {
    std::ofstream out(args.path);
    out << lfi::StrFormat(
        "{\"bench\":\"shard_merge\",\"budget\":%zu,\"seed\":%llu,"
        "\"single_ms\":%.1f,\"runs\":[%s]}\n",
        budget, (unsigned long long)seed, single_ms, rows_json.c_str());
    std::printf("\nwrote %s\n", args.path.c_str());
  }
  if (!all_identical) {
    std::fprintf(stderr, "FAIL: a sharded campaign diverged from the baseline\n");
    return 1;
  }
  return 0;
}
