// Table 6: MySQL transactions/second with 0-4 LFI triggers (§7.4).
//
// SysBench-OLTP-style read-only and read/write transaction mixes against the
// mini-MySQL engine, with the paper's four fcntl triggers stacked
// cumulatively: (1) cmd == F_GETLK, (2) thread_count > 64, (3) the server is
// shutting down, (4) the call comes from the main application module.
// Injection is disarmed; the paper measured < 5% overhead throughout.

#include <benchmark/benchmark.h>

#include <memory>

#include "apps/mysql/mysql.h"
#include "core/custom_triggers.h"
#include "core/runtime.h"
#include "core/scenario.h"
#include "core/stock_triggers.h"
#include "util/rng.h"

namespace lfi {
namespace {

Scenario MysqlScenario(int trigger_count) {
  std::string xml = "<scenario>\n";
  const char* decls[4] = {
      R"(<trigger id="t1" class="ArgValue">
           <args><index>1</index><value>5</value></args></trigger>)",  // F_GETLK
      R"(<trigger id="t2" class="ProgramStateTrigger">
           <args><var>thread_count</var><op>gt</op><value>64</value></args></trigger>)",
      R"(<trigger id="t3" class="ProgramStateTrigger">
           <args><var>shutdown_in_progress</var><op>eq</op><value>1</value></args></trigger>)",
      R"(<trigger id="t4" class="CallStackTrigger">
           <args><frame><module>mini-mysql</module></frame></args></trigger>)",
  };
  for (int i = 0; i < trigger_count; ++i) {
    xml += decls[i];
    xml += "\n";
  }
  if (trigger_count > 0) {
    xml += R"(<function name="fcntl" argc="3" return="-1" errno="EDEADLK">)";
    for (int i = 0; i < trigger_count; ++i) {
      xml += "<reftrigger ref=\"t" + std::to_string(i + 1) + "\"/>";
    }
    xml += "</function>\n";
  }
  xml += "</scenario>";
  std::string error;
  auto scenario = Scenario::Parse(xml, &error);
  if (!scenario) {
    std::fprintf(stderr, "scenario parse error: %s\n", error.c_str());
    std::abort();
  }
  return *scenario;
}

void RunOltp(benchmark::State& state, bool read_only) {
  VirtualFs fs;
  VirtualNet net;
  MiniMysql mysql(&fs, &net, "/mysql");
  EnsureStockTriggersRegistered();
  EnsureCustomTriggersRegistered();
  if (!mysql.OltpInit(1000)) {
    state.SkipWithError("oltp init failed");
    return;
  }
  mysql.SetThreadCount(80);  // trigger 2 territory
  mysql.SetShutdownInProgress(false);

  int trigger_count = static_cast<int>(state.range(0));
  std::unique_ptr<Runtime> runtime;
  if (trigger_count > 0) {
    runtime = std::make_unique<Runtime>(MysqlScenario(trigger_count));
    runtime->set_armed(false);
    mysql.libc().set_interposer(runtime.get());
  }

  Rng rng(42);
  int64_t txns = 0;
  for (auto _ : state) {
    if (!mysql.OltpTransaction(&rng, read_only)) {
      state.SkipWithError("transaction failed");
      break;
    }
    ++txns;
  }
  state.SetItemsProcessed(txns);
  state.counters["txns/sec"] =
      benchmark::Counter(static_cast<double>(txns), benchmark::Counter::kIsRate);
  if (runtime != nullptr) {
    state.counters["triggerings"] = static_cast<double>(runtime->trigger_evaluations());
    mysql.libc().set_interposer(nullptr);
  }
}

void BM_MysqlOltpReadOnly(benchmark::State& state) { RunOltp(state, /*read_only=*/true); }
void BM_MysqlOltpReadWrite(benchmark::State& state) { RunOltp(state, /*read_only=*/false); }

BENCHMARK(BM_MysqlOltpReadOnly)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MysqlOltpReadWrite)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace lfi

BENCHMARK_MAIN();
