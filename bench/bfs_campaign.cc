// The bfs target's campaign numbers: what each exploration strategy buys at
// an equal scenario budget against the distributed client/server filesystem
// (apps/bfs, docs/architecture.md "Target systems"), and what the warm
// cluster pool saves over cold bring-up.
//
// Per strategy (exhaustive, random, coverage) the bench runs one explore
// campaign and reports scenarios run, crash bugs, consistency bugs (the
// remount-audit oracle's kind), and recovery-block coverage. The issue's
// acceptance gates are enforced: the coverage strategy must surface at least
// one crash bug AND at least one oracle consistency bug, and must cover at
// least as many recovery blocks as the exhaustive strategy at the same
// budget. The coverage campaign then reruns under --cold-start; warm and
// cold journals must be byte-identical, and both throughputs are reported.
//
//   bench_bfs_campaign [budget] [seed] [reps] [--json [path]]
//   (defaults: 96; 1; 3)
//
// Artifacts land in the working directory as BENCH_bfs-*.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/common/campaign_driver.h"
#include "apps/common/campaign_spec.h"
#include "bench_args.h"
#include "util/string_util.h"

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

struct Measured {
  double best_ms = 0.0;
  size_t scenarios = 0;
  size_t crash_bugs = 0;
  size_t consistency_bugs = 0;
  size_t covered_recovery = 0;
  size_t total_recovery = 0;
};

bool RunMeasured(const lfi::CampaignSpec& spec, size_t reps, Measured* out,
                 std::string* error) {
  for (size_t rep = 0; rep < reps; ++rep) {
    std::remove(spec.journal_path.c_str());
    auto start = std::chrono::steady_clock::now();
    auto outcome = lfi::CampaignDriver(spec).Run(error);
    double ms = MsSince(start);
    if (!outcome) {
      return false;
    }
    if (rep == 0 || ms < out->best_ms) {
      out->best_ms = ms;
    }
    out->scenarios = outcome->scenarios_run;
    out->crash_bugs = 0;
    out->consistency_bugs = 0;
    for (const lfi::FoundBug& bug : outcome->bugs) {
      if (bug.kind == "consistency") {
        ++out->consistency_bugs;
      } else {
        ++out->crash_bugs;
      }
    }
    lfi::CoverageMap::Stats stats = outcome->coverage.ComputeStats();
    out->covered_recovery = stats.covered_recovery_blocks;
    out->total_recovery = stats.recovery_blocks;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  lfi_bench::JsonArgs args = lfi_bench::ParseJsonArgs(argc, argv, "BENCH_bfs.json");
  size_t budget = 96;
  uint64_t seed = 1;
  size_t reps = 3;
  for (size_t i = 0; i < args.positional.size(); ++i) {
    long long value = std::atoll(args.positional[i]);
    if (value <= 0) {
      continue;
    }
    if (i == 0) {
      budget = static_cast<size_t>(value);
    } else if (i == 1) {
      seed = static_cast<uint64_t>(value);
    } else if (i == 2) {
      reps = static_cast<size_t>(value);
    }
  }

  std::printf("bfs explore campaign: budget %zu, seed %llu, best of %zu, 1 worker\n\n", budget,
              (unsigned long long)seed, reps);
  std::printf("%-12s %-9s %-11s %-7s %-13s %-13s %s\n", "strategy", "ms", "scenarios", "crash",
              "consistency", "recovery", "scenarios/s");

  lfi::CampaignSpec base;
  base.system = "bfs";
  base.mode = lfi::CampaignMode::kExplore;
  base.budget = budget;
  base.seed = seed;
  base.workers = 1;

  const std::pair<const char*, lfi::ExploreStrategy> kStrategies[] = {
      {"exhaustive", lfi::ExploreStrategy::kExhaustive},
      {"random", lfi::ExploreStrategy::kRandom},
      {"coverage", lfi::ExploreStrategy::kCoverage},
  };
  std::string rows_json;
  Measured exhaustive;
  Measured coverage;
  std::string coverage_warm_bytes;
  for (const auto& [name, strategy] : kStrategies) {
    lfi::CampaignSpec spec = base;
    spec.strategy = strategy;
    spec.journal_path = lfi::StrFormat("BENCH_bfs-%s.lfij", name);
    std::string error;
    Measured m;
    if (!RunMeasured(spec, reps, &m, &error)) {
      std::fprintf(stderr, "%s run failed: %s\n", name, error.c_str());
      return 1;
    }
    if (strategy == lfi::ExploreStrategy::kExhaustive) {
      exhaustive = m;
    }
    if (strategy == lfi::ExploreStrategy::kCoverage) {
      coverage = m;
      coverage_warm_bytes = ReadFile(spec.journal_path);
    }
    double rate = m.scenarios / (m.best_ms / 1000.0);
    std::printf("%-12s %-9.1f %-11zu %-7zu %-13zu %zu/%-11zu %.1f\n", name, m.best_ms,
                m.scenarios, m.crash_bugs, m.consistency_bugs, m.covered_recovery,
                m.total_recovery, rate);
    if (!rows_json.empty()) {
      rows_json += ",";
    }
    rows_json += lfi::StrFormat(
        "{\"strategy\":\"%s\",\"ms\":%.1f,\"scenarios\":%zu,\"crash_bugs\":%zu,"
        "\"consistency_bugs\":%zu,\"covered_recovery_blocks\":%zu,"
        "\"recovery_blocks\":%zu,\"scenarios_per_s\":%.1f}",
        name, m.best_ms, m.scenarios, m.crash_bugs, m.consistency_bugs, m.covered_recovery,
        m.total_recovery, rate);
  }

  // The warm/cold ablation on the coverage campaign: same bytes, and the
  // throughput delta is what the snapshot/reset cluster pool amortizes.
  lfi::CampaignSpec cold = base;
  cold.strategy = lfi::ExploreStrategy::kCoverage;
  cold.cold_start = true;
  cold.journal_path = "BENCH_bfs-coverage-cold.lfij";
  std::string error;
  Measured cold_m;
  if (!RunMeasured(cold, reps, &cold_m, &error)) {
    std::fprintf(stderr, "cold coverage run failed: %s\n", error.c_str());
    return 1;
  }
  bool identical =
      !coverage_warm_bytes.empty() && ReadFile(cold.journal_path) == coverage_warm_bytes;
  double warm_rate = coverage.scenarios / (coverage.best_ms / 1000.0);
  double cold_rate = cold_m.scenarios / (cold_m.best_ms / 1000.0);
  std::printf("\ncoverage warm %.1f scenarios/s vs cold %.1f scenarios/s (%.2fx), journals %s\n",
              warm_rate, cold_rate, cold_m.best_ms / coverage.best_ms,
              identical ? "byte-identical" : "DIVERGED");

  if (args.enabled) {
    std::ofstream out(args.path);
    out << lfi::StrFormat(
        "{\"bench\":\"bfs_campaign\",\"budget\":%zu,\"seed\":%llu,\"reps\":%zu,"
        "\"strategies\":[%s],\"warm_scenarios_per_s\":%.1f,\"cold_scenarios_per_s\":%.1f,"
        "\"warm_cold_identical\":%s}\n",
        budget, (unsigned long long)seed, reps, rows_json.c_str(), warm_rate, cold_rate,
        identical ? "true" : "false");
    std::printf("wrote %s\n", args.path.c_str());
  }

  // The issue's acceptance gates.
  if (coverage.crash_bugs < 1 || coverage.consistency_bugs < 1) {
    std::fprintf(stderr,
                 "FAIL: coverage strategy found %zu crash / %zu consistency bugs "
                 "(need >=1 of each)\n",
                 coverage.crash_bugs, coverage.consistency_bugs);
    return 1;
  }
  if (coverage.covered_recovery < exhaustive.covered_recovery) {
    std::fprintf(stderr, "FAIL: coverage recovery blocks %zu < exhaustive %zu at equal budget\n",
                 coverage.covered_recovery, exhaustive.covered_recovery);
    return 1;
  }
  if (!identical) {
    std::fprintf(stderr, "FAIL: warm coverage journal diverged from the cold baseline\n");
    return 1;
  }
  return 0;
}
