// Figure 3: PBFT slowdown under progressively worsening network conditions
// (§7.3).
//
// A stock distributed trigger randomly fails sendto/recvfrom on every replica
// with probability p (the injected "packet loss"); throughput is measured as
// completed requests per simulation tick, averaged over 7 trials, and
// reported as a slowdown factor relative to the no-loss baseline. The paper
// measured a gradual degradation up to 4.17x at 99% loss; the *shape*
// (monotonic, graceful degradation rather than collapse, thanks to
// retransmission) is the reproduced claim -- absolute factors depend on the
// timing model (discrete ticks here vs wall-clock there).

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "apps/pbft/pbft.h"
#include "core/distributed.h"
#include "core/runtime.h"
#include "core/scenario.h"
#include "core/stock_triggers.h"

namespace lfi {
namespace {

Scenario DistScenario() {
  std::string xml = R"(
<scenario>
  <trigger id="dist" class="DistributedTrigger"/>
  <function name="sendto" return="-1" errno="EIO"><reftrigger ref="dist"/></function>
  <function name="recvfrom" return="-1" errno="EIO"><reftrigger ref="dist"/></function>
</scenario>)";
  return *Scenario::Parse(xml);
}

// Completed requests per 1000 ticks at loss probability p (one trial).
double Throughput(double p, uint64_t seed) {
  VirtualFs fs;
  VirtualNet net(seed);
  PbftConfig config;
  config.debug_build = true;  // measurement run: halting beats crashing
  PbftCluster cluster(&fs, &net, config);
  if (!cluster.Start()) {
    return 0.0;
  }
  Scenario scenario = DistScenario();
  // The figure's x-axis is the probability that a network message is lost.
  // Faults are injected on both sendto and recvfrom, so the per-call
  // probability q satisfies 1-(1-q)^2 = p.
  double per_call = 1.0 - std::sqrt(1.0 - p);
  RandomLossController controller(per_call, seed * 7919);
  std::vector<std::unique_ptr<Runtime>> runtimes;
  for (int i = 0; i < cluster.n(); ++i) {
    cluster.replica(i).libc().SetService(DistributedController::kServiceName, &controller);
    runtimes.push_back(std::make_unique<Runtime>(scenario));
    cluster.replica(i).libc().set_interposer(runtimes.back().get());
  }
  // Heavier loss needs a longer window for a stable throughput estimate.
  const int ticks = p < 0.9 ? 4000 : (p < 0.99 ? 30000 : 100000);
  cluster.RunWorkload(/*requests=*/1000000, ticks);  // run for the full window
  return 1000.0 * cluster.client().completed() / ticks;
}

}  // namespace
}  // namespace lfi

int main() {
  lfi::EnsureStockTriggersRegistered();
  std::printf("=== Figure 3: PBFT slowdown vs injected packet-loss probability ===\n");
  std::printf("(7 trials per point; throughput = completed requests / tick)\n\n");
  std::printf("%-8s %14s %10s\n", "p(loss)", "throughput", "slowdown");

  const double kLossPoints[] = {0.0, 0.1, 0.8, 0.9, 0.95, 0.99};
  double baseline = 0.0;
  double prev = 1e30;
  bool monotone = true;
  double last_slowdown = 0.0;
  for (double p : kLossPoints) {
    double sum = 0.0;
    for (uint64_t trial = 1; trial <= 7; ++trial) {
      sum += lfi::Throughput(p, trial);
    }
    double avg = sum / 7.0;
    if (p == 0.0) {
      baseline = avg;
    }
    double slowdown = avg > 0 ? baseline / avg : 0.0;
    last_slowdown = slowdown;
    std::printf("%-8.2f %14.2f %9.2fx\n", p, avg, slowdown);
    if (avg > prev * 1.3) {  // tolerate counting noise at near-total loss
      monotone = false;
    }
    prev = avg;
  }
  std::printf("\nPaper: gradual degradation, max 4.17x at p=0.99. Measured max: %.2fx\n",
              last_slowdown);
  std::printf("(Absolute factors diverge: this simulation is latency-bound, while the\n"
              " paper's testbed ran all four replicas on one 4-core machine and was\n"
              " CPU-bound; see EXPERIMENTS.md. The low-loss region matches closely.)\n");
  std::printf("Monotonic degradation: %s\n", monotone ? "reproduced" : "NOT reproduced");
  return monotone ? 0 : 1;
}
