// §7.3's second study: simulated DoS attacks on PBFT replicas.
//
// Three configurations, as in the paper:
//   baseline  -- LFI intercepts every call but lets them all succeed;
//   blackout  -- all communication of one (non-primary) replica fails,
//                rendering it inactive: the paper measured ~12% *better*
//                end-to-end performance (less communication work);
//   rotation  -- 500 consecutive faults in R1's communication, then R2's,
//                then R3's, cyclically: targets the reconfiguration (view
//                change) protocol; the paper measured a 2.2x throughput drop.
//
// Two metrics are reported: request throughput per tick and communication
// work (datagrams delivered per completed request). The discrete-tick
// simulation has no per-message CPU cost, so the blackout speedup shows up
// in the *work* metric; the rotation slowdown shows up in both.

#include <cstdio>
#include <memory>
#include <vector>

#include "apps/pbft/pbft.h"
#include "core/distributed.h"
#include "core/runtime.h"
#include "core/scenario.h"
#include "core/stock_triggers.h"

namespace lfi {
namespace {

Scenario DistScenario() {
  std::string xml = R"(
<scenario>
  <trigger id="dist" class="DistributedTrigger"/>
  <function name="sendto" return="-1" errno="EIO"><reftrigger ref="dist"/></function>
  <function name="recvfrom" return="-1" errno="EIO"><reftrigger ref="dist"/></function>
</scenario>)";
  return *Scenario::Parse(xml);
}

// A controller that never injects: the baseline "LFI intercepting the calls
// but letting them all succeed".
class NeverController : public DistributedController {
 public:
  bool ShouldInject(const std::string&, const std::string&, const ArgSpan&) override {
    ++consultations_;
    return false;
  }
};

struct Result {
  double throughput = 0.0;   // completed requests per 1000 ticks
  double msgs_per_req = 0.0; // datagrams delivered per completed request
  int completed = 0;
  int view_changes = 0;
};

Result Run(DistributedController* controller, uint64_t seed) {
  VirtualFs fs;
  VirtualNet net(seed);
  PbftConfig config;
  config.debug_build = true;
  PbftCluster cluster(&fs, &net, config);
  if (!cluster.Start()) {
    return {};
  }
  Scenario scenario = DistScenario();
  std::vector<std::unique_ptr<Runtime>> runtimes;
  for (int i = 0; i < cluster.n(); ++i) {
    cluster.replica(i).libc().SetService(DistributedController::kServiceName, controller);
    runtimes.push_back(std::make_unique<Runtime>(scenario));
    cluster.replica(i).libc().set_interposer(runtimes.back().get());
  }
  const int kTicks = 4000;
  cluster.RunWorkload(1000000, kTicks);
  Result result;
  result.completed = cluster.client().completed();
  result.throughput = 1000.0 * result.completed / kTicks;
  result.msgs_per_req = result.completed > 0
                            ? static_cast<double>(net.delivered_count()) / result.completed
                            : 0.0;
  for (int i = 0; i < cluster.n(); ++i) {
    result.view_changes += cluster.replica(i).view_changes();
  }
  return result;
}

Result Average(const std::function<std::unique_ptr<DistributedController>()>& make) {
  Result sum;
  const int kTrials = 7;
  for (uint64_t trial = 1; trial <= kTrials; ++trial) {
    auto controller = make();
    Result r = Run(controller.get(), trial);
    sum.throughput += r.throughput;
    sum.msgs_per_req += r.msgs_per_req;
    sum.completed += r.completed;
    sum.view_changes += r.view_changes;
  }
  sum.throughput /= kTrials;
  sum.msgs_per_req /= kTrials;
  return sum;
}

}  // namespace
}  // namespace lfi

int main() {
  lfi::EnsureStockTriggersRegistered();
  std::printf("=== DoS study on PBFT (Section 7.3) ===\n(7 trials per configuration)\n\n");

  auto baseline = lfi::Average([] { return std::make_unique<lfi::NeverController>(); });
  auto blackout = lfi::Average([] {
    // Replica 2 is never the view-0 primary; blacking it out removes work.
    return std::make_unique<lfi::BlackoutController>("replica2");
  });
  auto rotation = lfi::Average([] {
    // Includes the view-0 primary, so each pass provokes the
    // reconfiguration (view change) protocol, as in the paper's attack.
    return std::make_unique<lfi::RotatingBlackoutController>(
        std::vector<std::string>{"replica0", "replica1", "replica2"}, 500);
  });

  std::printf("%-22s %12s %14s %12s\n", "Configuration", "reqs/1k ticks", "msgs/request",
              "view changes");
  std::printf("%-22s %12.1f %14.1f %12d\n", "baseline (no faults)", baseline.throughput,
              baseline.msgs_per_req, baseline.view_changes);
  std::printf("%-22s %12.1f %14.1f %12d\n", "one-replica blackout", blackout.throughput,
              blackout.msgs_per_req, blackout.view_changes);
  std::printf("%-22s %12.1f %14.1f %12d\n", "rotating 500-fault DoS", rotation.throughput,
              rotation.msgs_per_req, rotation.view_changes);

  double work_saving = 100.0 * (1.0 - blackout.msgs_per_req / baseline.msgs_per_req);
  double rotation_slowdown = rotation.throughput > 0
                                 ? baseline.throughput / rotation.throughput
                                 : 0.0;
  std::printf("\nBlackout reduces communication work by %.0f%% (paper: ~12%% perf gain)\n",
              work_saving);
  std::printf("Rotating DoS slows throughput by %.2fx (paper: 2.2x)\n", rotation_slowdown);
  bool shape = blackout.msgs_per_req < baseline.msgs_per_req &&
               rotation.throughput < baseline.throughput;
  std::printf("Rotation hurts more than blackout: %s\n",
              shape ? "reproduced" : "NOT reproduced");
  return shape ? 0 : 1;
}
