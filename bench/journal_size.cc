// Journal encoding cost: bytes/record and load time, XML vs extent.
//
// Runs one pbft random exploration journaled in the extent encoding (the
// default), tiles its records into a ~1k-record journal (pbft's random
// scenario space saturates at a few hundred uniques; million-record
// campaigns are this shape repeated), converts that artifact to the XML
// debug encoding (conversion is bit-equivalent to a live XML-mode run, see
// extent_journal_test.cc), and measures what `lfi_tool journal info` pays
// on each: file size per record and full-load wall time (header + every
// record + cumulative coverage -- the info/resume/merge read path). The
// acceptance bars from the extent journal work are enforced as the exit
// status: the extent encoding must be at least 5x smaller per record and at
// least 10x faster to load than XML.
//
//   bench_journal_size [records] [seed] [reps] [--json [path]]
//   (defaults: 1000; 5; 5)
//
// Artifacts land in the working directory as BENCH_journal-*.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "apps/common/campaign_driver.h"
#include "bench_args.h"
#include "core/journal.h"
#include "util/string_util.h"

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

size_t FileSize(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  return in ? static_cast<size_t>(in.tellg()) : 0;
}

// The `journal info` read path: load the file, touch every record. Returns
// the best-of-reps wall time; best (not mean) because the bench shares its
// container with whatever else CI runs.
double LoadMs(const std::string& path, int reps, size_t* records) {
  double best = 1e18;
  for (int rep = 0; rep < reps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    std::string error;
    auto journal = lfi::CampaignJournal::Load(path, &error);
    double ms = MsSince(start);
    if (!journal) {
      std::fprintf(stderr, "load %s failed: %s\n", path.c_str(), error.c_str());
      std::exit(1);
    }
    *records = journal->records().size();
    if (ms < best) {
      best = ms;
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  lfi_bench::JsonArgs args = lfi_bench::ParseJsonArgs(argc, argv, "BENCH_journal.json");
  size_t target = 1000;
  uint64_t seed = 5;
  int reps = 5;
  for (size_t i = 0; i < args.positional.size(); ++i) {
    long long value = std::atoll(args.positional[i]);
    if (value <= 0) {
      continue;
    }
    if (i == 0) {
      target = static_cast<size_t>(value);
    } else if (i == 1) {
      seed = static_cast<uint64_t>(value);
    } else {
      reps = static_cast<int>(value);
    }
  }

  std::string campaign_path = "BENCH_journal-campaign.lfij";
  std::string extent_path = "BENCH_journal-extent.lfij";
  std::string xml_path = "BENCH_journal-xml.xml";
  std::remove(campaign_path.c_str());
  std::remove(extent_path.c_str());
  std::remove(xml_path.c_str());

  lfi::CampaignSpec spec;
  spec.system = "pbft";
  spec.mode = lfi::CampaignMode::kExplore;
  spec.strategy = lfi::ExploreStrategy::kRandom;
  spec.budget = target;  // saturates at the unique-scenario count
  spec.seed = seed;
  spec.journal_path = campaign_path;

  std::string error;
  auto start = std::chrono::steady_clock::now();
  auto outcome = lfi::CampaignDriver(spec).Run(&error);
  double campaign_ms = MsSince(start);
  if (!outcome) {
    std::fprintf(stderr, "campaign failed: %s\n", error.c_str());
    return 1;
  }
  auto campaign = lfi::CampaignJournal::Load(campaign_path, &error);
  if (!campaign || campaign->records().empty()) {
    std::fprintf(stderr, "campaign journal unusable: %s\n", error.c_str());
    return 1;
  }

  // Tile the real records up to the target size, renumbering the stream so
  // the result is a plausible `target`-record campaign artifact.
  {
    lfi::CampaignJournal big;
    if (!big.Create(extent_path, campaign->metadata(), &error,
                    lfi::JournalFormat::kExtent)) {
      std::fprintf(stderr, "create failed: %s\n", error.c_str());
      return 1;
    }
    for (size_t i = 0; i < target; ++i) {
      lfi::JournalRecord record = campaign->records()[i % campaign->records().size()];
      record.stream_index = i;
      if (!big.Append(record)) {
        std::fprintf(stderr, "append failed\n");
        return 1;
      }
    }
    if (!big.Finalize(&error)) {
      std::fprintf(stderr, "finalize failed: %s\n", error.c_str());
      return 1;
    }
  }
  if (!lfi::ConvertJournal(extent_path, xml_path, lfi::JournalFormat::kXml, &error)) {
    std::fprintf(stderr, "convert failed: %s\n", error.c_str());
    return 1;
  }

  size_t extent_records = 0;
  size_t xml_records = 0;
  size_t extent_bytes = FileSize(extent_path);
  size_t xml_bytes = FileSize(xml_path);
  double extent_ms = LoadMs(extent_path, reps, &extent_records);
  double xml_ms = LoadMs(xml_path, reps, &xml_records);
  if (extent_records != target || xml_records != target) {
    std::fprintf(stderr, "record count mismatch: extent %zu, xml %zu, want %zu\n",
                 extent_records, xml_records, target);
    return 1;
  }

  double extent_per_record = static_cast<double>(extent_bytes) / target;
  double xml_per_record = static_cast<double>(xml_bytes) / target;
  double size_ratio = xml_per_record / extent_per_record;
  double load_ratio = xml_ms / extent_ms;

  std::printf("journal encoding cost: pbft random explore, %zu records (campaign %.0f ms)\n\n",
              target, campaign_ms);
  std::printf("%-8s %-12s %-14s %-12s\n", "format", "bytes", "bytes/record", "load ms");
  std::printf("%-8s %-12zu %-14.1f %-12.2f\n", "xml", xml_bytes, xml_per_record, xml_ms);
  std::printf("%-8s %-12zu %-14.1f %-12.2f\n", "extent", extent_bytes, extent_per_record,
              extent_ms);
  std::printf("\nextent vs xml: %.1fx smaller, %.1fx faster to load\n", size_ratio,
              load_ratio);

  if (args.enabled) {
    std::ofstream out(args.path);
    out << lfi::StrFormat(
        "{\"bench\":\"journal_size\",\"records\":%zu,\"seed\":%llu,\"reps\":%d,"
        "\"xml\":{\"bytes\":%zu,\"bytes_per_record\":%.1f,\"load_ms\":%.2f},"
        "\"extent\":{\"bytes\":%zu,\"bytes_per_record\":%.1f,\"load_ms\":%.2f},"
        "\"size_ratio\":%.2f,\"load_ratio\":%.2f}\n",
        target, (unsigned long long)seed, reps, xml_bytes, xml_per_record, xml_ms,
        extent_bytes, extent_per_record, extent_ms, size_ratio, load_ratio);
    std::printf("wrote %s\n", args.path.c_str());
  }

  if (size_ratio < 5.0) {
    std::fprintf(stderr, "FAIL: extent journal is only %.1fx smaller (need 5x)\n", size_ratio);
    return 1;
  }
  if (load_ratio < 10.0) {
    std::fprintf(stderr, "FAIL: extent journal loads only %.1fx faster (need 10x)\n",
                 load_ratio);
    return 1;
  }
  return 0;
}
