// §7.2 efficiency: the call-site analyzer is fast (1-10 s on BIND-sized
// binaries in 2010) and its running time scales with program size and the
// number of call sites. This benchmark sweeps synthetic binaries with a
// growing number of call sites and also times the real application binaries.

#include <benchmark/benchmark.h>

#include "analysis/callsite_analyzer.h"
#include "apps/bind/bind.h"
#include "apps/git/git.h"
#include "apps/common/app_binary.h"
#include "util/string_util.h"
#include "vlib/library_profiles.h"

namespace lfi {
namespace {

AppBinary SyntheticBinary(int sites) {
  AppBinaryBuilder b(StrFormat("synthetic-%d", sites));
  for (int i = 0; i < sites; ++i) {
    CheckPattern pattern;
    switch (i % 3) {
      case 0:
        pattern = CheckPattern::kCheckEqAll;
        break;
      case 1:
        pattern = CheckPattern::kCheckIneq;
        break;
      default:
        pattern = CheckPattern::kNoCheck;
        break;
    }
    b.AddSite({StrFormat("s%05d", i), StrFormat("fn_%d", i / 10), "read", pattern, {-1}});
  }
  return b.Build();
}

void BM_AnalyzeSyntheticBinary(benchmark::State& state) {
  AppBinary binary = SyntheticBinary(static_cast<int>(state.range(0)));
  CallSiteAnalyzer analyzer;
  std::set<int64_t> codes = {-1};
  size_t sites = 0;
  for (auto _ : state) {
    AnalyzerStats stats;
    auto reports = analyzer.Analyze(binary.image(), "read", codes, &stats);
    benchmark::DoNotOptimize(reports);
    sites = stats.call_sites;
  }
  state.counters["sites"] = static_cast<double>(sites);
  state.counters["sites/sec"] = benchmark::Counter(
      static_cast<double>(sites) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_AnalyzeGitBinary(benchmark::State& state) {
  const AppBinary& binary = GitBinary();
  FaultProfile profile = LibcProfile();
  CallSiteAnalyzer analyzer;
  for (auto _ : state) {
    size_t total = 0;
    for (const auto& [name, fn] : profile.functions()) {
      total += analyzer.Analyze(binary.image(), name, fn.ErrorCodes()).size();
    }
    benchmark::DoNotOptimize(total);
  }
}

void BM_AnalyzeBindBinary(benchmark::State& state) {
  const AppBinary& binary = BindBinary();
  FaultProfile profile = LibcProfile();
  CallSiteAnalyzer analyzer;
  for (auto _ : state) {
    size_t total = 0;
    for (const auto& [name, fn] : profile.functions()) {
      total += analyzer.Analyze(binary.image(), name, fn.ErrorCodes()).size();
    }
    benchmark::DoNotOptimize(total);
  }
}

BENCHMARK(BM_AnalyzeSyntheticBinary)->RangeMultiplier(4)->Range(16, 4096)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AnalyzeGitBinary)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AnalyzeBindBinary)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lfi

BENCHMARK_MAIN();
