// Table 5: Apache running time with 0-5 LFI triggers (§7.4).
//
// The five triggers are stacked cumulatively on apr_file_read, exactly as in
// the paper: (1) fd-is-a-socket via apr_stat, (2) caller is Apache core
// (call-stack), (3) ap_process_request_internal on the stack, (4) the
// request is a POST (application-state on request_rec.method_number),
// (5) caller holds a mutex. Injection is disarmed so the measurement
// isolates the trigger-evaluation cost; the paper found it negligible.

#include <benchmark/benchmark.h>

#include <memory>

#include "apps/httpd/httpd.h"
#include "core/custom_triggers.h"
#include "core/runtime.h"
#include "core/scenario.h"
#include "core/stock_triggers.h"

namespace lfi {
namespace {

Scenario ApacheScenario(int trigger_count) {
  std::string xml = "<scenario>\n";
  const char* decls[5] = {
      R"(<trigger id="t1" class="FdIsSocket"/>)",
      R"(<trigger id="t2" class="CallStackTrigger">
           <args><frame><module>httpd-core</module></frame></args></trigger>)",
      R"(<trigger id="t3" class="CallStackTrigger">
           <args><frame><function>ap_process_request_internal</function></frame></args></trigger>)",
      R"(<trigger id="t4" class="ProgramStateTrigger">
           <args><var>request.method_number</var><op>eq</op><value>1</value></args></trigger>)",
      R"(<trigger id="t5" class="WithMutex"/>)",
  };
  for (int i = 0; i < trigger_count; ++i) {
    xml += decls[i];
    xml += "\n";
  }
  if (trigger_count > 0) {
    xml += R"(<function name="apr_file_read" argc="3" return="-1" errno="EIO">)";
    for (int i = 0; i < trigger_count; ++i) {
      xml += "<reftrigger ref=\"t" + std::to_string(i + 1) + "\"/>";
    }
    xml += "</function>\n";
    if (trigger_count >= 5) {
      xml += R"(<function name="pthread_mutex_lock" return="unused" errno="unused">
                  <reftrigger ref="t5"/></function>
                <function name="pthread_mutex_unlock" return="unused" errno="unused">
                  <reftrigger ref="t5"/></function>)";
    }
  }
  xml += "</scenario>";
  std::string error;
  auto scenario = Scenario::Parse(xml, &error);
  if (!scenario) {
    std::fprintf(stderr, "scenario parse error: %s\n", error.c_str());
    std::abort();
  }
  return *scenario;
}

struct Fixture {
  Fixture() : httpd(&fs, &net, "/www") {
    EnsureStockTriggersRegistered();
    EnsureCustomTriggersRegistered();
    fs.MkDir("/www/ext");
    httpd.InstallDefaultSite();
  }
  VirtualFs fs;
  VirtualNet net;
  MiniHttpd httpd;
};

void RunWorkload(benchmark::State& state, bool php) {
  Fixture fx;
  int trigger_count = static_cast<int>(state.range(0));
  std::unique_ptr<Runtime> runtime;
  if (trigger_count > 0) {
    runtime = std::make_unique<Runtime>(ApacheScenario(trigger_count));
    runtime->set_armed(false);  // measure trigger evaluation, not recovery
    fx.httpd.libc().set_interposer(runtime.get());
  }
  const int kRequestsPerIter = php ? 20 : 200;  // AB-style batches
  RequestRec get{php ? "/page.php" : "/index.html", kMethodGet, ""};
  RequestRec post{php ? "/page.php" : "/index.html", kMethodPost, "payload"};
  for (auto _ : state) {
    for (int i = 0; i < kRequestsPerIter; ++i) {
      benchmark::DoNotOptimize(fx.httpd.ProcessRequest(i % 4 == 0 ? post : get));
    }
  }
  state.SetItemsProcessed(state.iterations() * kRequestsPerIter);
  if (runtime != nullptr) {
    state.counters["triggerings"] = static_cast<double>(runtime->trigger_evaluations());
    fx.httpd.libc().set_interposer(nullptr);
  }
}

void BM_ApacheStaticHtml(benchmark::State& state) { RunWorkload(state, /*php=*/false); }
void BM_ApachePhp(benchmark::State& state) { RunWorkload(state, /*php=*/true); }

BENCHMARK(BM_ApacheStaticHtml)->DenseRange(0, 5)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ApachePhp)->DenseRange(0, 5)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace lfi

BENCHMARK_MAIN();
