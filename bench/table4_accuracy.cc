// Table 4: call-site analysis accuracy (§7.2).
//
// Runs the analyzer over the application binaries and scores it against the
// ground-truth site tables (the confusion matrix of the paper: FP = the
// analyzer says unchecked but the code actually checks; FN = the analyzer
// says checked but the code does not). Paper: 100% on every row except
// BIND/open at 83% (one false positive -- a check performed inside a helper
// function, invisible to the intra-procedural dataflow).

#include <cstdio>
#include <map>

#include "analysis/callsite_analyzer.h"
#include "apps/bind/bind.h"
#include "apps/git/git.h"
#include "apps/mysql/mysql.h"
#include "apps/pbft/pbft.h"
#include "vlib/library_profiles.h"

namespace lfi {
namespace {

struct Row {
  int tp_tn = 0;
  int fn = 0;
  int fp = 0;
  double Accuracy() const {
    int total = tp_tn + fn + fp;
    return total == 0 ? 0.0 : 100.0 * tp_tn / total;
  }
};

Row Score(const AppBinary& binary, const std::string& function, const FaultProfile& profile) {
  Row row;
  CallSiteAnalyzer analyzer;
  const FunctionProfile* fn = profile.Find(function);
  auto reports = analyzer.Analyze(binary.image(), function, fn->ErrorCodes());
  std::map<uint32_t, const CallSiteReport*> by_offset;
  for (const auto& r : reports) {
    by_offset[r.site.offset] = &r;
  }
  for (const CallSiteSpec& site : binary.sites()) {
    if (site.function != function) {
      continue;
    }
    auto it = by_offset.find(binary.SiteOffset(site.site_name));
    if (it == by_offset.end()) {
      continue;  // should not happen; counted as neither
    }
    bool lfi_says_checked = it->second->check_class != CheckClass::kNone;
    bool actually_checked = site.actually_checked();
    if (lfi_says_checked == actually_checked) {
      ++row.tp_tn;
    } else if (lfi_says_checked && !actually_checked) {
      ++row.fn;  // LFI says checked, actually not
    } else {
      ++row.fp;  // LFI says not checked, actually checked
    }
  }
  return row;
}

void Print(const char* system, const char* function, const Row& row, const char* paper) {
  std::printf("%-8s %-10s %6d %4d %4d   %5.0f%%   (paper: %s)\n", system, function, row.tp_tn,
              row.fn, row.fp, row.Accuracy(), paper);
}

}  // namespace
}  // namespace lfi

int main() {
  std::printf("=== Table 4: call-site analysis accuracy ===\n\n");
  std::printf("%-8s %-10s %6s %4s %4s   %6s\n", "System", "Function", "TP+TN", "FN", "FP",
              "Acc");
  lfi::FaultProfile profile = lfi::LibcProfile();

  bool ok = true;
  auto check = [&](const char* system, const char* function, const lfi::AppBinary& binary,
                   const char* paper, double expected) {
    lfi::Row row = lfi::Score(binary, function, profile);
    lfi::Print(system, function, row, paper);
    if (row.Accuracy() < expected - 0.5 || row.Accuracy() > expected + 0.5) {
      ok = false;
    }
  };

  check("BIND", "malloc", lfi::BindBinary(), "100% (17 sites)", 100);
  check("BIND", "unlink", lfi::BindBinary(), "100% (6 sites)", 100);
  check("BIND", "open", lfi::BindBinary(), "83% (5+1FP)", 83.333);
  check("BIND", "close", lfi::BindBinary(), "100% (39 sites)", 100);
  check("Git", "malloc", lfi::GitBinary(), "100% (25 sites)", 100);
  check("Git", "close", lfi::GitBinary(), "100% (127 sites)", 100);
  check("Git", "readlink", lfi::GitBinary(), "100% (7 sites)", 100);
  check("PBFT", "fopen", lfi::PbftBinary(), "100% (6 sites)", 100);

  std::printf("\nAccuracy pattern matches Table 4: %s\n", ok ? "reproduced" : "NOT reproduced");
  return ok ? 0 : 1;
}
