// Epoch-synchronized distributed exploration: what the spawn -> merge ->
// reseed protocol costs and buys (docs/architecture.md).
//
// The bench runs the same coverage-guided pbft exploration as a
// single-process --epoch-len baseline and as an epoch-synchronized
// distributed campaign at each shard count (in-process shard children, one
// thread per shard), then verifies the distributed runs are bit-identical to
// the baseline -- same bug set, same coverage, same merged journal bytes.
// Determinism is asserted everywhere; the >= 1.5x wall-clock speedup at 4
// shards is asserted only on hosts with >= 4 hardware threads (a single-core
// container serializes the shard threads, so the protocol overhead -- epoch
// journaling, frontier snapshots, incremental merge -- is the honest column
// there).
//
// It also measures what the persistent analysis cache saves each spawned
// shard child at startup: the cold call-site analysis (Algorithm 1) versus
// reloading the same analysis from the content-keyed disk cache.
//
//   bench_distributed_explore [budget] [seed] [epoch_len] [shard counts...]
//                             [--json [path]]
//   (defaults: 48; 7; 2; 2 4)
//
// Artifacts land in the working directory as BENCH_distexplore-*.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/common/campaign_driver.h"
#include "apps/common/campaign_spec.h"
#include "apps/pbft/pbft.h"
#include "bench_args.h"
#include "core/analysis_cache.h"
#include "core/journal.h"
#include "profiler/profiler.h"
#include "profiler/stub_gen.h"
#include "util/string_util.h"
#include "vlib/library_profiles.h"

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void RemoveArtifacts(const std::string& base, size_t shards) {
  std::remove(base.c_str());
  for (size_t epoch = 0; epoch < 32; ++epoch) {
    std::remove((base + lfi::StrFormat(".epoch%zu.frontier", epoch)).c_str());
    for (size_t shard = 0; shard < shards; ++shard) {
      std::remove((base + lfi::StrFormat(".epoch%zu.shard%zu", epoch, shard)).c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  lfi_bench::JsonArgs args = lfi_bench::ParseJsonArgs(argc, argv, "BENCH_distexplore.json");
  size_t budget = 48;
  uint64_t seed = 7;
  size_t epoch_len = 2;
  std::vector<size_t> shard_counts;
  for (size_t i = 0; i < args.positional.size(); ++i) {
    long long value = std::atoll(args.positional[i]);
    if (value <= 0) {
      continue;
    }
    if (i == 0) {
      budget = static_cast<size_t>(value);
    } else if (i == 1) {
      seed = static_cast<uint64_t>(value);
    } else if (i == 2) {
      epoch_len = static_cast<size_t>(value);
    } else {
      shard_counts.push_back(static_cast<size_t>(value));
    }
  }
  if (shard_counts.empty()) {
    shard_counts = {2, 4};
  }
  unsigned hw_threads = std::thread::hardware_concurrency();

  // --- the analysis cache's per-child startup saving ------------------------
  // A spawned shard child's first act is the call-site analysis of its
  // system binary. Cold = Algorithm 1; warm = the content-keyed disk cache
  // the orchestrator shares with its children.
  lfi::AnalysisCache& cache = lfi::AnalysisCache::Instance();
  std::string acache_dir = "BENCH_distexplore.acache";
  cache.SetPersistDir(acache_dir);
  cache.Clear();
  lfi::FaultProfile libc_profile =
      lfi::LibraryProfiler().Profile(lfi::GenerateLibraryImage(lfi::LibcProfile()));
  const lfi::Image& pbft_image = lfi::PbftBinary().image();
  auto start = std::chrono::steady_clock::now();
  size_t report_count = cache.Reports(pbft_image, libc_profile).size();
  double analyze_cold_ms = MsSince(start);
  cache.Clear();  // a "new process": empty memory, warm disk
  start = std::chrono::steady_clock::now();
  cache.Reports(pbft_image, libc_profile);
  double analyze_warm_ms = MsSince(start);
  bool warm_from_disk = cache.stats().report_disk_hits == 1;

  std::printf("epoch-synchronized distributed explore: pbft coverage, budget %zu, seed %llu, "
              "epoch-len %zu (%u hardware thread(s))\n\n",
              budget, (unsigned long long)seed, epoch_len, hw_threads);
  std::printf("analysis cache: %zu report(s), cold %.1f ms, warm (disk) %.1f ms%s\n\n",
              report_count, analyze_cold_ms, analyze_warm_ms,
              warm_from_disk ? "" : "  [WARM MISSED THE DISK CACHE]");

  lfi::CampaignSpec spec;
  spec.system = "pbft";
  spec.mode = lfi::CampaignMode::kExplore;
  spec.strategy = lfi::ExploreStrategy::kCoverage;
  spec.budget = budget;
  spec.seed = seed;
  spec.epoch_len = epoch_len;

  // Single-process baseline with the same epoch schedule.
  std::string single_path = "BENCH_distexplore-single.lfij";
  RemoveArtifacts(single_path, 0);
  lfi::CampaignSpec single = spec;
  single.journal_path = single_path;
  std::string error;
  start = std::chrono::steady_clock::now();
  auto baseline = lfi::CampaignDriver(single).Run(&error);
  double single_ms = MsSince(start);
  if (!baseline) {
    std::fprintf(stderr, "baseline failed: %s\n", error.c_str());
    return 1;
  }
  std::string single_bytes = ReadFile(single_path);
  double single_rate = baseline->scenarios_run / (single_ms / 1000.0);

  std::printf("%-8s %-12s %-14s %-10s %-6s %-10s %s\n", "shards", "wall ms", "scenarios/s",
              "speedup", "bugs", "epochs", "identical?");
  size_t single_epochs = 0;
  {
    auto journal = lfi::CampaignJournal::Load(single_path, &error);
    if (journal && !journal->records().empty()) {
      single_epochs = journal->records().back().epoch + 1;
    }
  }
  std::printf("%-8d %-12.1f %-14.1f %-10s %-6zu %-10zu %s\n", 1, single_ms, single_rate, "-",
              baseline->bugs.size(), single_epochs, "(baseline)");

  std::string rows_json;
  bool all_identical = true;
  double speedup_at_4 = 0.0;
  for (size_t shards : shard_counts) {
    std::string merged_path = lfi::StrFormat("BENCH_distexplore-%zu.lfij", shards);
    RemoveArtifacts(merged_path, shards);
    lfi::CampaignSpec distributed = spec;
    distributed.journal_path = merged_path;
    distributed.shard_count = shards;

    start = std::chrono::steady_clock::now();
    // In-process shard children, one thread per shard: same artifacts as
    // spawned `lfi_tool run-spec` processes, minus the exec/startup cost.
    auto outcome = lfi::CampaignDriver(distributed).Run(&error);
    double total_ms = MsSince(start);
    if (!outcome) {
      std::fprintf(stderr, "distributed run (%zu shards) failed: %s\n", shards, error.c_str());
      return 1;
    }

    bool identical = outcome->bugs == baseline->bugs &&
                     outcome->coverage.hits() == baseline->coverage.hits() &&
                     outcome->scenarios_run == baseline->scenarios_run &&
                     ReadFile(merged_path) == single_bytes;
    all_identical &= identical;
    double rate = outcome->scenarios_run / (total_ms / 1000.0);
    double speedup = single_ms / total_ms;
    if (shards == 4) {
      speedup_at_4 = speedup;
    }
    std::printf("%-8zu %-12.1f %-14.1f %-10.2f %-6zu %-10zu %s\n", shards, total_ms, rate,
                speedup, outcome->bugs.size(), single_epochs, identical ? "yes" : "NO");
    if (!rows_json.empty()) {
      rows_json += ",";
    }
    rows_json += lfi::StrFormat(
        "{\"shards\":%zu,\"wall_ms\":%.1f,\"scenarios_per_s\":%.1f,\"speedup\":%.3f,"
        "\"bugs\":%zu,\"identical\":%s}",
        shards, total_ms, rate, outcome->bugs.size(), identical ? "true" : "false");
  }

  if (args.enabled) {
    std::ofstream out(args.path);
    out << lfi::StrFormat(
        "{\"bench\":\"distributed_explore\",\"budget\":%zu,\"seed\":%llu,"
        "\"epoch_len\":%zu,\"hardware_threads\":%u,\"epochs\":%zu,"
        "\"analyze_cold_ms\":%.1f,\"analyze_warm_ms\":%.1f,\"warm_from_disk\":%s,"
        "\"single_ms\":%.1f,\"single_scenarios_per_s\":%.1f,\"runs\":[%s]}\n",
        budget, (unsigned long long)seed, epoch_len, hw_threads, single_epochs,
        analyze_cold_ms, analyze_warm_ms, warm_from_disk ? "true" : "false", single_ms,
        single_rate, rows_json.c_str());
    std::printf("\nwrote %s\n", args.path.c_str());
  }
  if (!all_identical) {
    std::fprintf(stderr, "FAIL: a distributed campaign diverged from the baseline\n");
    return 1;
  }
  if (!warm_from_disk) {
    std::fprintf(stderr, "FAIL: the warm analysis pass missed the persistent cache\n");
    return 1;
  }
  // The scaling bar from the issue: >= 1.5x at 4 shards, but only where the
  // host can actually run 4 shard threads at once.
  if (hw_threads >= 4 && speedup_at_4 != 0.0 && speedup_at_4 < 1.5) {
    std::fprintf(stderr, "FAIL: 4-shard speedup %.2fx < 1.5x on a %u-thread host\n",
                 speedup_at_4, hw_threads);
    return 1;
  }
  return 0;
}
