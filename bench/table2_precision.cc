// Table 2: precision of three triggers targeting the MySQL close bug (§7.1).
//
// Reproduces the paper's custom-trigger walkthrough: 100 runs of the
// merge-big workload under (1) random 10% injection in every close, (2) the
// same restricted by a call-stack trigger to the file containing the bug
// (mi_create), and (3) the close-after-mutex-unlock trigger with distance 2.
// Precision = fraction of runs in which the double-unlock bug was activated.
// Paper: 16% / 45% / 100%.

#include <cstdio>
#include <memory>

#include "apps/mysql/mysql.h"
#include "core/controller.h"
#include "core/custom_triggers.h"
#include "core/stock_triggers.h"
#include "util/errno_codes.h"
#include "util/string_util.h"

namespace lfi {
namespace {

Scenario RandomCloseScenario(uint64_t seed) {
  Scenario s;
  TriggerDecl decl;
  decl.id = "rand";
  decl.class_name = "RandomTrigger";
  auto args = std::make_unique<XmlNode>("args");
  args->AddChild("probability")->set_text("0.1");
  args->AddChild("seed")->set_text(StrFormat("%llu", (unsigned long long)seed));
  decl.args = std::shared_ptr<XmlNode>(args.release());
  s.AddTrigger(std::move(decl));
  FunctionAssoc assoc;
  assoc.function = "close";
  assoc.retval = -1;
  assoc.errno_value = kEIO;
  assoc.triggers.push_back(TriggerRef{"rand", false});
  s.AddFunction(std::move(assoc));
  return s;
}

Scenario FileScopedScenario(uint64_t seed) {
  Scenario s = RandomCloseScenario(seed);
  // Conjunction with a call-stack trigger scoped to the file (function)
  // containing the bug.
  TriggerDecl stack;
  stack.id = "inFile";
  stack.class_name = "CallStackTrigger";
  auto args = std::make_unique<XmlNode>("args");
  XmlNode* frame = args->AddChild("frame");
  frame->AddChild("module")->set_text(MiniMysql::kModule);
  frame->AddChild("function")->set_text("mi_create");
  stack.args = std::shared_ptr<XmlNode>(args.release());
  s.AddTrigger(std::move(stack));
  // Evaluation order matters for precision, not semantics: scope first.
  s.functions()[0].triggers.insert(s.functions()[0].triggers.begin(),
                                   TriggerRef{"inFile", false});
  return s;
}

Scenario CloseAfterUnlockScenario() {
  Scenario s;
  TriggerDecl decl;
  decl.id = "prox";
  decl.class_name = "CloseAfterMutexUnlock";
  auto args = std::make_unique<XmlNode>("args");
  args->AddChild("distance")->set_text("2");
  decl.args = std::shared_ptr<XmlNode>(args.release());
  s.AddTrigger(std::move(decl));
  FunctionAssoc close_assoc;
  close_assoc.function = "close";
  close_assoc.retval = -1;
  close_assoc.errno_value = kEIO;
  close_assoc.triggers.push_back(TriggerRef{"prox", false});
  s.AddFunction(std::move(close_assoc));
  // The trigger must observe the unlocks.
  FunctionAssoc unlock_assoc;
  unlock_assoc.function = "pthread_mutex_unlock";
  unlock_assoc.unused = true;
  unlock_assoc.triggers.push_back(TriggerRef{"prox", false});
  s.AddFunction(std::move(unlock_assoc));
  return s;
}

int RunTrials(const char* label, const std::function<Scenario(uint64_t)>& make_scenario,
              const char* paper) {
  const int kTrials = 100;
  int activated = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    VirtualFs fs;
    VirtualNet net;
    MiniMysql mysql(&fs, &net, "/mysql");
    TestController controller(make_scenario(static_cast<uint64_t>(trial) + 1));
    TestOutcome outcome = controller.RunTest(&mysql.libc(), [&] { return mysql.MergeBig(); });
    if (outcome.crashed() && outcome.crash_kind == CrashKind::kDoubleUnlock) {
      ++activated;
    }
  }
  std::printf("%-38s %3d%%   (paper: %s)\n", label, activated, paper);
  return activated;
}

}  // namespace
}  // namespace lfi

int main() {
  lfi::EnsureStockTriggersRegistered();
  lfi::EnsureCustomTriggersRegistered();
  std::printf("=== Table 2: trigger precision on the MySQL close bug ===\n");
  std::printf("(100 merge-big runs per scenario; %% of runs activating the bug)\n\n");
  int p1 = lfi::RunTrials("Random (10%)",
                          [](uint64_t seed) { return lfi::RandomCloseScenario(seed); }, "16%");
  int p2 = lfi::RunTrials("Random (10%) within bug's file",
                          [](uint64_t seed) { return lfi::FileScopedScenario(seed); }, "45%");
  int p3 = lfi::RunTrials("Close after mutex unlock (distance 2)",
                          [](uint64_t) { return lfi::CloseAfterUnlockScenario(); }, "100%");
  bool shape = p1 < p2 && p2 < p3 && p3 == 100;
  std::printf("\nOrdering random < file-scoped < domain-specific: %s\n",
              shape ? "reproduced" : "NOT reproduced");
  return shape ? 0 : 1;
}
